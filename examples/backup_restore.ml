(* Backups: full + incremental, validated restore, point-in-time recovery
   (paper Section 2 / the backup-store design of [23]).

   Run with: dune exec examples/backup_restore.exe *)

type note = { day : int; mutable text : string }

let note_cls : note Tdb.Obj_class.t =
  let module P = Tdb.Pickle in
  Tdb.Obj_class.define ~name:"bk.note"
    ~pickle:(fun w n -> P.int w n.day; P.string w n.text)
    ~unpickle:(fun ~version:_ r ->
      let day = P.read_int r in
      let text = P.read_string r in
      { day; text })
    ()

let by_day = Tdb.Indexer.make ~name:"day" ~key:Tdb.Gkey.int ~extract:(fun n -> n.day) ~unique:true ()

let add_note db day text =
  Tdb.with_ctxn db (fun ct ->
      let notes = Tdb.Cstore.open_collection ct ~name:"notes" ~schema:note_cls ~indexers:[ Tdb.Indexer.Generic by_day ] in
      ignore (Tdb.Cstore.insert ct notes { day; text }))

let dump db label =
  Tdb.with_ctxn db (fun ct ->
      let notes = Tdb.Cstore.open_collection ct ~name:"notes" ~schema:note_cls ~indexers:[ Tdb.Indexer.Generic by_day ] in
      Printf.printf "%s:\n" label;
      let it = Tdb.Cstore.scan ct notes by_day in
      while not (Tdb.Cstore.at_end it) do
        let n = Tdb.Cstore.read it in
        Printf.printf "  day %d: %s\n" n.day n.text;
        Tdb.Cstore.advance it
      done;
      Tdb.Cstore.close it)

let () =
  let _attacker, device = Tdb.Device.in_memory ~seed:"backup-example" () in
  let db = Tdb.create device in
  Tdb.with_ctxn db (fun ct ->
      ignore (Tdb.Cstore.create_collection ct ~name:"notes" ~schema:note_cls by_day));

  (* day 1: write data, take a full backup *)
  add_note db 1 "bought blockbuster.mp4";
  let b1 = Tdb.backup_full db in
  Printf.printf "day 1: full backup #%d (snapshot-based, foreground work keeps running)\n" b1;

  (* days 2..3: small changes, cheap incrementals (Merkle-pruned diffs) *)
  add_note db 2 "played hit-single.mp3 x3";
  let b2 = Tdb.backup_incremental db in
  add_note db 3 "renewed subscription";
  let b3 = Tdb.backup_incremental db in
  Printf.printf "days 2-3: incremental backups #%d and #%d\n" b2 b3;

  (* the archival store shows the streams *)
  List.iter
    (fun name ->
      let size = String.length (Option.get (Tdb.Archival_store.get device.Tdb.Device.archive ~name)) in
      Printf.printf "  archive %-16s %6d bytes\n" name size)
    (Tdb.Archival_store.list device.Tdb.Device.archive);
  Tdb.close db;

  (* the device dies; restore onto a replacement (same secret store) *)
  let _, fresh_store = Tdb.Untrusted_store.open_mem () in
  let _, fresh_counter = Tdb.One_way_counter.open_mem () in
  let replacement =
    { device with Tdb.Device.store = fresh_store; counter = fresh_counter }
  in
  let db2 = Tdb.restore ~from:device replacement in
  dump db2 "restored (latest)";
  Tdb.close db2;

  (* point-in-time: restore only up to backup #2 *)
  let _, pit_store = Tdb.Untrusted_store.open_mem () in
  let _, pit_counter = Tdb.One_way_counter.open_mem () in
  let pit_device = { device with Tdb.Device.store = pit_store; counter = pit_counter } in
  let db3 = Tdb.restore ~upto:b2 ~from:device pit_device in
  dump db3 "restored (as of backup #2)";
  Tdb.close db3;

  (* validation: a tampered stream is rejected, never silently applied *)
  print_endline "corrupting backup #2 in the archive...";
  let name = List.nth (Tdb.Archival_store.list device.Tdb.Device.archive) 1 in
  let data = Option.get (Tdb.Archival_store.get device.Tdb.Device.archive ~name) in
  let b = Bytes.of_string data in
  Bytes.set b (String.length data / 2) 'X';
  Tdb.Archival_store.put device.Tdb.Device.archive ~name (Bytes.to_string b);
  let _, s4 = Tdb.Untrusted_store.open_mem () in
  let _, c4 = Tdb.One_way_counter.open_mem () in
  (match Tdb.restore ~from:device { device with Tdb.Device.store = s4; counter = c4 } with
  | _ -> print_endline "restore succeeded (broken!)"
  | exception Tdb.Backup_store.Invalid_backup msg -> Printf.printf "restore refused: %s\n" msg);
  print_endline "backup_restore: ok"
