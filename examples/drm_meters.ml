(* DRM contract enforcement — the paper's motivating scenario (Section 1).

   A device stores licenses for digital goods. Each license carries a
   contract: Pay_per_view (debits a prepaid balance), Free_after_paid
   ("free after first ten paid views"), or Subscription. Consuming a good
   updates meters, the account balance and an audit trail in ONE
   transaction — the state that must survive crashes and resist tampering.

   Run with: dune exec examples/drm_meters.exe *)

type contract =
  | Pay_per_view of int (* price in cents *)
  | Free_after_paid of { price : int; paid_quota : int }
  | Subscription

type license = {
  content_id : string;
  contract : contract;
  mutable view_count : int;
  content_key : string; (* decryption key for the good: must never leak *)
}

type account = { mutable balance : int }
type audit = { seq : int; event : string }

(* --- persistent classes --- *)

let license_cls : license Tdb.Obj_class.t =
  let module P = Tdb.Pickle in
  Tdb.Obj_class.define ~name:"drm.license"
    ~pickle:(fun w l ->
      P.string w l.content_id;
      (match l.contract with
      | Pay_per_view price -> P.byte w 0; P.int w price
      | Free_after_paid { price; paid_quota } -> P.byte w 1; P.int w price; P.int w paid_quota
      | Subscription -> P.byte w 2);
      P.int w l.view_count;
      P.string w l.content_key)
    ~unpickle:(fun ~version:_ r ->
      let content_id = P.read_string r in
      let contract =
        match P.read_byte r with
        | 0 -> Pay_per_view (P.read_int r)
        | 1 ->
            let price = P.read_int r in
            let paid_quota = P.read_int r in
            Free_after_paid { price; paid_quota }
        | _ -> Subscription
      in
      let view_count = P.read_int r in
      let content_key = P.read_string r in
      { content_id; contract; view_count; content_key })
    ()

let account_cls : account Tdb.Obj_class.t =
  Tdb.Obj_class.define ~name:"drm.account"
    ~pickle:(fun w a -> Tdb.Pickle.int w a.balance)
    ~unpickle:(fun ~version:_ r -> { balance = Tdb.Pickle.read_int r })
    ()

let audit_cls : audit Tdb.Obj_class.t =
  let module P = Tdb.Pickle in
  Tdb.Obj_class.define ~name:"drm.audit"
    ~pickle:(fun w a -> P.int w a.seq; P.string w a.event)
    ~unpickle:(fun ~version:_ r ->
      let seq = P.read_int r in
      let event = P.read_string r in
      { seq; event })
    ()

(* --- indexes --- *)

let by_content =
  Tdb.Indexer.make ~name:"content" ~key:Tdb.Gkey.string ~extract:(fun l -> l.content_id) ~unique:true
    ~impl:Tdb.Indexer.Hash ()

(* a functional index on a *derived* value: how many views remain free *)
let by_views = Tdb.Indexer.make ~name:"views" ~key:Tdb.Gkey.int ~extract:(fun l -> l.view_count) ()
let license_ixs = [ Tdb.Indexer.Generic by_content; Tdb.Indexer.Generic by_views ]
let audit_ix = Tdb.Indexer.make ~name:"seq" ~key:Tdb.Gkey.int ~extract:(fun a -> a.seq) ~impl:Tdb.Indexer.List ()

exception Payment_required of string
exception Insufficient_funds

(* --- the consume operation: one atomic transaction --- *)

let consume db (content_id : string) : string =
  Tdb.with_ctxn db (fun ct ->
      let licenses = Tdb.Cstore.open_collection ct ~name:"licenses" ~schema:license_cls ~indexers:license_ixs in
      let audits = Tdb.Cstore.open_collection ct ~name:"audit" ~schema:audit_cls ~indexers:[ Tdb.Indexer.Generic audit_ix ] in
      let it = Tdb.Cstore.exact ct licenses by_content content_id in
      if Tdb.Cstore.at_end it then begin
        Tdb.Cstore.close it;
        raise (Payment_required (content_id ^ ": no license"))
      end;
      let l = Tdb.Cstore.write it in
      let price =
        match l.contract with
        | Subscription -> 0
        | Pay_per_view p -> p
        | Free_after_paid { price; paid_quota } -> if l.view_count < paid_quota then price else 0
      in
      if price > 0 then begin
        let acct_oid = Option.get (Tdb.Object_store.root (Tdb.Cstore.txn ct) "account") in
        let acct = Tdb.Object_store.deref (Tdb.Object_store.open_writable (Tdb.Cstore.txn ct) account_cls acct_oid) in
        if acct.balance < price then begin
          Tdb.Cstore.close it;
          raise Insufficient_funds
        end;
        acct.balance <- acct.balance - price
      end;
      l.view_count <- l.view_count + 1;
      let key = l.content_key in
      Tdb.Cstore.advance it;
      Tdb.Cstore.close it;
      ignore
        (Tdb.Cstore.insert ct audits
           { seq = Tdb.Cstore.size ct audits; event = Printf.sprintf "view %s (charged %d)" content_id price });
      key)

let balance db =
  Tdb.with_txn db (fun t ->
      let oid = Option.get (Tdb.Object_store.root t "account") in
      (Tdb.Object_store.deref (Tdb.Object_store.open_readonly t account_cls oid)).balance)

let () =
  let _attacker, device = Tdb.Device.in_memory ~seed:"drm-device" () in
  let db = Tdb.create device in

  (* provision the device: account + licenses *)
  Tdb.with_ctxn db (fun ct ->
      let licenses = Tdb.Cstore.create_collection ct ~name:"licenses" ~schema:license_cls by_content in
      Tdb.Cstore.create_index ct licenses by_views;
      ignore (Tdb.Cstore.create_collection ct ~name:"audit" ~schema:audit_cls audit_ix);
      ignore
        (Tdb.Cstore.insert ct licenses
           { content_id = "blockbuster.mp4"; contract = Pay_per_view 399; view_count = 0; content_key = "k1" });
      ignore
        (Tdb.Cstore.insert ct licenses
           {
             content_id = "hit-single.mp3";
             contract = Free_after_paid { price = 99; paid_quota = 3 };
             view_count = 0;
             content_key = "k2";
           });
      ignore
        (Tdb.Cstore.insert ct licenses
           { content_id = "newspaper.pdf"; contract = Subscription; view_count = 0; content_key = "k3" });
      let acct = Tdb.Object_store.insert (Tdb.Cstore.txn ct) account_cls { balance = 1000 } in
      Tdb.Object_store.set_root (Tdb.Cstore.txn ct) "account" (Some acct));

  Printf.printf "balance: %d cents\n" (balance db);

  (* consume goods under their contracts *)
  ignore (consume db "blockbuster.mp4");
  Printf.printf "watched blockbuster (pay-per-view): balance %d\n" (balance db);

  for i = 1 to 5 do
    ignore (consume db "hit-single.mp3");
    Printf.printf "played hit-single #%d: balance %d\n" i (balance db)
  done;

  ignore (consume db "newspaper.pdf");
  Printf.printf "read newspaper (subscription): balance %d\n" (balance db);

  (* contract enforcement: drain the balance and watch payment fail *)
  (match
     for _ = 1 to 10 do
       ignore (consume db "blockbuster.mp4")
     done
   with
  | () -> ()
  | exception Insufficient_funds -> print_endline "payment correctly refused once the balance ran out");

  (* report usage: range query over the derived views index *)
  Tdb.with_ctxn db (fun ct ->
      let licenses = Tdb.Cstore.open_collection ct ~name:"licenses" ~schema:license_cls ~indexers:license_ixs in
      let it = Tdb.Cstore.range ct licenses by_views ~min:(Some 1) ~max:None in
      print_endline "usage report (goods with at least one view):";
      while not (Tdb.Cstore.at_end it) do
        let l = Tdb.Cstore.read it in
        Printf.printf "  %-18s %d views\n" l.content_id l.view_count;
        Tdb.Cstore.advance it
      done;
      Tdb.Cstore.close it);

  (* the usage data has monetary value: back it up *)
  let backup_id = Tdb.backup_full db in
  Printf.printf "backup %d written to the archival store\n" backup_id;
  Tdb.close db;
  print_endline "drm_meters: ok"
