(* The attacker's afternoon — TDB's raison d'être (paper Sections 1 and 3).

   The consumer owns the device and the storage. They can read the database
   file, flip bits in it, and — the classic attack — save a copy before
   spending credits and restore it afterwards. This example runs all three
   attacks against an in-memory device and shows each one detected.

   Run with: dune exec examples/tamper_detection.exe *)

type wallet = { mutable credits : int }

let wallet_cls : wallet Tdb.Obj_class.t =
  Tdb.Obj_class.define ~name:"attack.wallet"
    ~pickle:(fun w v -> Tdb.Pickle.int w v.credits)
    ~unpickle:(fun ~version:_ r -> { credits = Tdb.Pickle.read_int r })
    ()

let read_credits db oid =
  Tdb.with_txn db (fun t -> (Tdb.Object_store.deref (Tdb.Object_store.open_readonly t wallet_cls oid)).credits)

let spend db oid n =
  Tdb.with_txn db (fun t ->
      let w = Tdb.Object_store.deref (Tdb.Object_store.open_writable t wallet_cls oid) in
      w.credits <- w.credits - n)

let () =
  let attacker, device = Tdb.Device.in_memory ~seed:"victim-device" () in
  let db = Tdb.create device in
  let oid =
    Tdb.with_txn db (fun t ->
        let oid = Tdb.Object_store.insert t wallet_cls { credits = 100 } in
        Tdb.Object_store.set_root t "wallet" (Some oid);
        oid)
  in
  Printf.printf "wallet holds %d credits\n" (read_credits db oid);

  (* Attack 1: read the raw medium looking for secrets. *)
  let image = Tdb.Untrusted_store.Mem.contents attacker in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Printf.printf "attack 1 - scan the medium for the class name %S: %s\n" "attack.wallet"
    (if contains image "attack.wallet" then "FOUND (broken!)" else "nothing readable (encrypted)");

  (* Attack 2: the replay. Save the database, spend, restore the copy. *)
  Tdb.close db;
  let saved = Tdb.Untrusted_store.Mem.snapshot attacker in
  let db = Tdb.open_existing device in
  spend db oid 60;
  Printf.printf "spent 60 credits; wallet now %d\n" (read_credits db oid);
  Tdb.close db;
  Tdb.Untrusted_store.Mem.restore attacker saved;
  Printf.printf "attack 2 - restored the pre-purchase image; reopening...\n";
  (match Tdb.open_existing device with
  | _ -> print_endline "  database opened (broken!)"
  | exception Tdb.Tamper_detected msg -> Printf.printf "  REPLAY DETECTED: %s\n" msg);

  (* Fresh database for attack 3. *)
  let attacker, device = Tdb.Device.in_memory ~seed:"victim-2" () in
  let db = Tdb.create device in
  let oid =
    Tdb.with_txn db (fun t ->
        let oid = Tdb.Object_store.insert t wallet_cls { credits = 100 } in
        Tdb.Object_store.set_root t "wallet" (Some oid);
        oid)
  in
  Tdb.close db;

  (* Attack 3: flip one bit in the first log record (the log area starts
     right after the two anchor slots). *)
  let log_base = 2 * Tdb.Chunk_config.default.Tdb.Chunk_config.anchor_slot_size in
  Tdb.Untrusted_store.Mem.corrupt attacker ~off:(log_base + 10) ~len:1 ~mask:0x04;
  Printf.printf "attack 3 - flipped one bit in the stored database; reopening...\n";
  (match
     let db = Tdb.open_existing device in
     read_credits db oid
   with
  | _ -> print_endline "  read succeeded (broken!)"
  | exception Tdb.Tamper_detected msg -> Printf.printf "  TAMPERING DETECTED: %s\n" msg
  | exception Tdb.Chunk_store.Recovery_failed msg -> Printf.printf "  TAMPERING DETECTED (anchor): %s\n" msg);
  print_endline "tamper_detection: ok"
