(* Quickstart: define a persistent class, store objects in an indexed
   collection, query them, and survive a restart.

   Run with: dune exec examples/quickstart.exe *)

(* 1. Define an application class — the OCaml equivalent of subclassing the
   paper's Object with pickle/unpickle methods. *)
type meter = { good : string; mutable views : int }

let meter_cls : meter Tdb.Obj_class.t =
  Tdb.Obj_class.define ~name:"quickstart.meter"
    ~pickle:(fun w m ->
      Tdb.Pickle.string w m.good;
      Tdb.Pickle.int w m.views)
    ~unpickle:(fun ~version:_ r ->
      let good = Tdb.Pickle.read_string r in
      let views = Tdb.Pickle.read_int r in
      { good; views })
    ()

(* 2. Functional indexes: keys are extracted by pure functions. *)
let by_good = Tdb.Indexer.make ~name:"good" ~key:Tdb.Gkey.string ~extract:(fun m -> m.good) ~unique:true ()
let by_views = Tdb.Indexer.make ~name:"views" ~key:Tdb.Gkey.int ~extract:(fun m -> m.views) ()
let indexers = [ Tdb.Indexer.Generic by_good; Tdb.Indexer.Generic by_views ]

let () =
  (* 3. A device bundles the platform stores; in-memory here, use
     Tdb.Device.at_dir for a durable one. *)
  let _attacker, device = Tdb.Device.in_memory ~seed:"quickstart" () in
  let db = Tdb.create device in

  (* 4. Create a collection and insert objects, transactionally. *)
  Tdb.with_ctxn db (fun ct ->
      let meters = Tdb.Cstore.create_collection ct ~name:"meters" ~schema:meter_cls by_good in
      Tdb.Cstore.create_index ct meters by_views;
      List.iter
        (fun (good, views) -> ignore (Tdb.Cstore.insert ct meters { good; views }))
        [ ("symphony-no-5.mp3", 3); ("guide-to-ocaml.epub", 12); ("noir-film.mp4", 0) ]);

  (* 5. Query: exact match on the unique index, then update through an
     iterator (indexes follow automatically). *)
  Tdb.with_ctxn db (fun ct ->
      let meters = Tdb.Cstore.open_collection ct ~name:"meters" ~schema:meter_cls ~indexers in
      let it = Tdb.Cstore.exact ct meters by_good "symphony-no-5.mp3" in
      let m = Tdb.Cstore.write it in
      m.views <- m.views + 1;
      Tdb.Cstore.advance it;
      Tdb.Cstore.close it);

  (* 6. Range query on the derived index. *)
  Tdb.with_ctxn db (fun ct ->
      let meters = Tdb.Cstore.open_collection ct ~name:"meters" ~schema:meter_cls ~indexers in
      let it = Tdb.Cstore.range ct meters by_views ~min:(Some 4) ~max:None in
      print_endline "goods with at least 4 views:";
      while not (Tdb.Cstore.at_end it) do
        let m = Tdb.Cstore.read it in
        Printf.printf "  %-22s %d views\n" m.good m.views;
        Tdb.Cstore.advance it
      done;
      Tdb.Cstore.close it);

  (* 7. Close and reopen: recovery validates the whole database against
     the anchor and the one-way counter. *)
  Tdb.close db;
  let db = Tdb.open_existing device in
  Tdb.with_ctxn db (fun ct ->
      let meters = Tdb.Cstore.open_collection ct ~name:"meters" ~schema:meter_cls ~indexers in
      Printf.printf "after restart: %d meters, symphony views = %d\n" (Tdb.Cstore.size ct meters)
        (let it = Tdb.Cstore.exact ct meters by_good "symphony-no-5.mp3" in
         let v = (Tdb.Cstore.read it).views in
         Tdb.Cstore.close it;
         v));
  Tdb.close db;
  print_endline "quickstart: ok"
