(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Sections 6-7), plus micro-benchmarks and ablations.

    - [footprint]   Figure 8 (code footprint table)
    - [tpcb]        Figure 9 (schema table) + Figure 10 (response times)
    - [utilization] Figure 11 (response time & database size vs utilization)
    - [micro]       Bechamel micro-benchmarks (crypto, chunk ops)
    - [ablation]    design-choice ablations (idle cleaning, durability, security)
    - [all]         everything above at the default scale

    Absolute times come from measured CPU plus the calibrated disk model
    (see {!Tdb_tpcb.Sim_disk}); the paper's numbers are printed alongside
    every result. *)

open Tdb_tpcb

let pick_scale = function
  | "quick" -> Workload.quick_scale
  | "default" -> Workload.default_scale
  | "paper" -> Workload.paper_scale
  | s -> invalid_arg (Printf.sprintf "unknown scale %S (quick|default|paper)" s)

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json): the perf trajectory artifacts      *)
(* ------------------------------------------------------------------ *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let json_of_result (r : Runner.result) : string =
  Printf.sprintf
    "    { \"label\": %S, \"txns\": %d, \"avg_ms\": %.4f, \"p95_ms\": %.4f,\n\
    \      \"cpu_avg_ms\": %.4f, \"io_avg_ms\": %.4f, \"ops_per_s\": %.1f,\n\
    \      \"bytes_per_txn\": %.1f, \"store_writes_per_txn\": %.2f, \"store_bytes_per_txn\": %.1f,\n\
    \      \"db_size\": %d, \"live_bytes\": %d,\n\
    \      \"alloc_words_per_txn\": %.0f,\n\
    \      \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f }"
    r.Runner.label r.Runner.txns r.Runner.avg_ms r.Runner.p95_ms r.Runner.cpu_avg_ms r.Runner.io_avg_ms
    (if r.Runner.avg_ms > 0. then 1000. /. r.Runner.avg_ms else 0.)
    r.Runner.bytes_per_txn r.Runner.store_writes_per_txn r.Runner.store_bytes_per_txn
    r.Runner.db_size r.Runner.live_bytes r.Runner.alloc_words_per_txn
    r.Runner.cache_hits r.Runner.cache_misses (Runner.hit_rate r)

let json_of_shard_result (r : Runner.result) : string =
  Printf.sprintf
    "    { \"label\": %S, \"shards\": %d, \"txns\": %d, \"avg_ms\": %.4f, \"p95_ms\": %.4f,\n\
    \      \"cpu_avg_ms\": %.4f, \"io_avg_ms\": %.4f, \"ops_per_s\": %.1f,\n\
    \      \"cross_txn_fraction\": %.4f,\n\
    \      \"bytes_per_txn\": %.1f, \"store_writes_per_txn\": %.2f, \"db_size\": %d }"
    r.Runner.label r.Runner.shards r.Runner.txns r.Runner.avg_ms r.Runner.p95_ms r.Runner.cpu_avg_ms
    r.Runner.io_avg_ms
    (if r.Runner.avg_ms > 0. then 1000. /. r.Runner.avg_ms else 0.)
    r.Runner.cross_txn_fraction r.Runner.bytes_per_txn r.Runner.store_writes_per_txn r.Runner.db_size

let write_tpcb_json ~(scale_name : string) ~(idle : bool) (scale : Workload.scale)
    (results : Runner.result list) : unit =
  let body = String.concat ",\n" (List.map json_of_result results) in
  write_file "BENCH_TPCB.json"
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"tpcb\",\n\
       \  \"scale\": { \"name\": %S, \"accounts\": %d, \"tellers\": %d, \"branches\": %d,\n\
       \             \"transactions\": %d, \"measured\": %d, \"cache_bytes\": %d },\n\
       \  \"idle_maintenance\": %b,\n\
       \  \"systems\": [\n%s\n  ]\n}\n"
       scale_name scale.Workload.accounts scale.Workload.tellers scale.Workload.branches
       scale.Workload.transactions scale.Workload.measured scale.Workload.cache_bytes idle body)

let write_micro_json (results : (string * float) list) : unit =
  let body =
    String.concat ",\n"
      (List.map (fun (name, ns) -> Printf.sprintf "    { \"name\": %S, \"ns_per_op\": %.0f }" name ns) results)
  in
  write_file "BENCH_MICRO.json" (Printf.sprintf "{\n  \"bench\": \"micro\",\n  \"results\": [\n%s\n  ]\n}\n" body)

(* ------------------------------------------------------------------ *)
(* Figure 9 + Figure 10                                                *)
(* ------------------------------------------------------------------ *)

let figure9 (scale : Workload.scale) =
  Printf.printf "== Figure 9: TPC-B tables and sizes ==\n\n";
  Printf.printf "%-12s %10s %10s\n" "Collection" "this run" "paper";
  Printf.printf "%-12s %10d %10d\n" "Account" scale.Workload.accounts 100_000;
  Printf.printf "%-12s %10d %10d\n" "Teller" scale.Workload.tellers 1_000;
  Printf.printf "%-12s %10d %10d\n" "Branch" scale.Workload.branches 100;
  Printf.printf "%-12s %10d %10d  (grows during the run)\n" "History" scale.Workload.transactions 252_000;
  Printf.printf "(transactions: %d, measured: trailing %d, cache: %d KB)\n\n" scale.Workload.transactions
    scale.Workload.measured
    (scale.Workload.cache_bytes / 1024)

let figure10 ?(idle = true) (scale : Workload.scale) : Runner.result list =
  figure9 scale;
  Printf.printf "== Figure 10: average response time per TPC-B transaction ==\n\n";
  let idle_every = if idle then Some 500 else None in
  let progress label r =
    Printf.printf "  [done] %s\n%!" (Format.asprintf "%a" Runner.pp_result r);
    ignore label;
    r
  in
  let bdb = progress "bdb" (Runner.run_bdb scale) in
  let tdb = progress "tdb" (Runner.run_tdb ~security:false ?idle_every scale) in
  let tdbs = progress "tdbs" (Runner.run_tdb ~security:true ?idle_every scale) in
  Printf.printf "%-12s %12s %12s %10s %12s %12s\n" "system" "avg ms" "paper ms" "ratio" "B/txn" "paper B/txn";
  Printf.printf "%-12s %12.2f %12.1f %10s %12.0f %12s\n" "BerkeleyDB" bdb.Runner.avg_ms 6.8 "1.00"
    bdb.Runner.bytes_per_txn "~1100";
  Printf.printf "%-12s %12.2f %12.1f %10.2f %12.0f %12s\n" "TDB" tdb.Runner.avg_ms 3.8
    (tdb.Runner.avg_ms /. bdb.Runner.avg_ms) tdb.Runner.bytes_per_txn "~523";
  Printf.printf "%-12s %12.2f %12.1f %10.2f %12.0f %12s\n" "TDB-S" tdbs.Runner.avg_ms 5.8
    (tdbs.Runner.avg_ms /. bdb.Runner.avg_ms) tdbs.Runner.bytes_per_txn "-";
  Printf.printf "\npaper ratios: TDB/BDB = 0.56, TDB-S/BDB = 0.85%s\n"
    (if idle then "  (run includes idle-period maintenance every 500 txns, as DRM workloads have)"
     else "  (no idle periods: cleaning competes with transactions)");
  Printf.printf "detail: %s\n        %s\n        %s\n\n"
    (Format.asprintf "%a" Runner.pp_result bdb)
    (Format.asprintf "%a" Runner.pp_result tdb)
    (Format.asprintf "%a" Runner.pp_result tdbs);
  [ bdb; tdb; tdbs ]

(* ------------------------------------------------------------------ *)
(* Figure 11                                                           *)
(* ------------------------------------------------------------------ *)

let figure11 (scale : Workload.scale) =
  Printf.printf "== Figure 11: TDB performance and database size vs utilization ==\n\n";
  let bdb = Runner.run_bdb scale in
  Printf.printf "%-12s %12s %14s %14s\n" "max util" "avg ms" "db size MB" "live MB";
  let results =
    List.map
      (fun u ->
        let r = Runner.run_tdb ~security:false ~max_utilization:u scale in
        Printf.printf "%-12.2f %12.2f %14.2f %14.2f\n%!" u r.Runner.avg_ms
          (float_of_int r.Runner.db_size /. 1048576.)
          (float_of_int r.Runner.live_bytes /. 1048576.);
        (u, r))
      [ 0.5; 0.6; 0.7; 0.8; 0.9 ]
  in
  Printf.printf "%-12s %12.2f %14.2f %14s  (no log checkpointing, as in the paper)\n" "BerkeleyDB"
    bdb.Runner.avg_ms
    (float_of_int bdb.Runner.db_size /. 1048576.)
    "-";
  let first, last =
    match (results, List.rev results) with
    | (_, f) :: _, (_, l) :: _ -> (f, l)
    | _ -> failwith "utilization sweep returned no results"
  in
  Printf.printf "\nshape: response flat early then climbing (%.2f -> %.2f ms); paper: ~3.7 -> ~6.5 ms\n"
    first.Runner.avg_ms last.Runner.avg_ms;
  Printf.printf "shape: database size decreases with utilization (%.2f -> %.2f MB); BDB far larger (%.2f MB)\n\n"
    (float_of_int first.Runner.db_size /. 1048576.)
    (float_of_int last.Runner.db_size /. 1048576.)
    (float_of_int bdb.Runner.db_size /. 1048576.)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro () : (string * float) list =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "== Micro-benchmarks (Bechamel) ==\n\n";
  let data_1k = String.make 1024 'x' in
  let aes_key = Tdb_crypto.Aes.of_secret (String.make 16 'k') in
  let aes3_key = Tdb_crypto.Triple.Aes3.of_secret (String.make 48 'k') in
  let xtea3_key = Tdb_crypto.Triple.Xtea3.of_secret (String.make 48 'k') in
  let block16 = Bytes.make 16 'p' in
  let block8 = Bytes.make 8 'p' in
  let cbc = Tdb_crypto.Cbc.make (module Tdb_crypto.Aes) ~secret:(String.make 16 's') in
  let sealed = Tdb_crypto.Cbc.encrypt cbc ~iv:(String.make 16 'i') data_1k in
  let _, store = Tdb_platform.Untrusted_store.open_mem () in
  let _, counter = Tdb_platform.One_way_counter.open_mem () in
  let cs =
    Tdb_chunk.Chunk_store.create ~secret:(Tdb_platform.Secret_store.of_seed "bench") ~counter store
  in
  let cid = Tdb_chunk.Chunk_store.allocate cs in
  Tdb_chunk.Chunk_store.write cs cid data_1k;
  Tdb_chunk.Chunk_store.commit cs;
  (* same store shape with the verified-chunk cache disabled: the cold
     read path (fetch + decrypt + hash check) for comparison *)
  let _, store0 = Tdb_platform.Untrusted_store.open_mem () in
  let _, counter0 = Tdb_platform.One_way_counter.open_mem () in
  let cs0 =
    Tdb_chunk.Chunk_store.create
      ~config:{ Tdb_chunk.Config.default with Tdb_chunk.Config.chunk_cache_bytes = 0 }
      ~secret:(Tdb_platform.Secret_store.of_seed "bench") ~counter:counter0 store0
  in
  let cid0 = Tdb_chunk.Chunk_store.allocate cs0 in
  Tdb_chunk.Chunk_store.write cs0 cid0 data_1k;
  Tdb_chunk.Chunk_store.commit cs0;
  (* seal/unseal pipeline axis: the same batched commit and batched read
     at widths 1 and 4, cache disabled so every read unseals. On one
     core the d4 rows bound pool coordination overhead; with cores to
     spare they fall toward the d1 cost over the width. *)
  let par_store domains =
    let _, st = Tdb_platform.Untrusted_store.open_mem () in
    let _, ct = Tdb_platform.One_way_counter.open_mem () in
    let cs =
      Tdb_chunk.Chunk_store.create
        ~config:{ Tdb_chunk.Config.default with Tdb_chunk.Config.chunk_cache_bytes = 0; domains }
        ~secret:(Tdb_platform.Secret_store.of_seed "bench") ~counter:ct st
    in
    let ids = Array.init 32 (fun _ -> Tdb_chunk.Chunk_store.allocate cs) in
    Array.iter (fun id -> Tdb_chunk.Chunk_store.write cs id data_1k) ids;
    Tdb_chunk.Chunk_store.commit ~durable:false cs;
    (cs, ids)
  in
  let cs_d1, ids_d1 = par_store 1 in
  let cs_d4, ids_d4 = par_store 4 in
  let batch_commit cs ids () =
    Array.iter (fun id -> Tdb_chunk.Chunk_store.write cs id data_1k) ids;
    Tdb_chunk.Chunk_store.commit ~durable:false cs
  in
  let batch_read cs ids () = Tdb_chunk.Chunk_store.read_many cs (Array.to_list ids) in
  let mac_key = Tdb_crypto.Hmac.precompute (module Tdb_crypto.Sha256) ~key:"k" in
  let tests =
    [
      Test.make ~name:"sha1/1KiB" (Staged.stage (fun () -> Tdb_crypto.Sha1.digest data_1k));
      Test.make ~name:"sha256/1KiB" (Staged.stage (fun () -> Tdb_crypto.Sha256.digest data_1k));
      Test.make ~name:"hmac-sha256/1KiB" (Staged.stage (fun () -> Tdb_crypto.Hmac.sha256 ~key:"k" data_1k));
      Test.make ~name:"hmac-sha256-pre/1KiB" (Staged.stage (fun () -> Tdb_crypto.Hmac.mac mac_key data_1k));
      Test.make ~name:"aes128/block"
        (Staged.stage (fun () ->
             Tdb_crypto.Aes.encrypt_block aes_key ~src:block16 ~src_off:0 ~dst:block16 ~dst_off:0));
      Test.make ~name:"3aes/block"
        (Staged.stage (fun () ->
             Tdb_crypto.Triple.Aes3.encrypt_block aes3_key ~src:block16 ~src_off:0 ~dst:block16 ~dst_off:0));
      Test.make ~name:"3xtea/block"
        (Staged.stage (fun () ->
             Tdb_crypto.Triple.Xtea3.encrypt_block xtea3_key ~src:block8 ~src_off:0 ~dst:block8 ~dst_off:0));
      Test.make ~name:"cbc-aes-encrypt/1KiB"
        (Staged.stage (fun () -> Tdb_crypto.Cbc.encrypt cbc ~iv:(String.make 16 'i') data_1k));
      Test.make ~name:"cbc-aes-decrypt/1KiB" (Staged.stage (fun () -> Tdb_crypto.Cbc.decrypt cbc sealed));
      Test.make ~name:"chunk-read/1KiB" (Staged.stage (fun () -> Tdb_chunk.Chunk_store.read cs cid));
      Test.make ~name:"chunk-read-nocache/1KiB" (Staged.stage (fun () -> Tdb_chunk.Chunk_store.read cs0 cid0));
      Test.make ~name:"chunk-write+commit/1KiB"
        (Staged.stage (fun () ->
             Tdb_chunk.Chunk_store.write cs cid data_1k;
             Tdb_chunk.Chunk_store.commit ~durable:false cs));
      Test.make ~name:"commit-batch32x1KiB/d1" (Staged.stage (batch_commit cs_d1 ids_d1));
      Test.make ~name:"commit-batch32x1KiB/d4" (Staged.stage (batch_commit cs_d4 ids_d4));
      Test.make ~name:"read_many-batch32x1KiB/d1" (Staged.stage (batch_read cs_d1 ids_d1));
      Test.make ~name:"read_many-batch32x1KiB/d4" (Staged.stage (batch_read cs_d4 ids_d4));
    ]
  in
  let run test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 256) () in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"tdb" [ test ]) in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Instance.monotonic_clock raw
    in
    Hashtbl.fold
      (fun name est acc ->
        let v = match Analyze.OLS.estimates est with Some [ x ] -> x | _ -> nan in
        Printf.printf "%-32s %12.0f ns/op\n%!" name v;
        (name, v) :: acc)
      ols []
  in
  let results = List.concat_map run tests in
  Printf.printf
    "\n(compare the block-cipher costs against the ~3.5 ms log force that\n\
     dominates a transaction: crypto CPU is a small fraction, matching the\n\
     paper's < 10%% claim)\n\n";
  results

(* ------------------------------------------------------------------ *)
(* Domain sweep: TDB-S vs seal/unseal pipeline width                   *)
(* ------------------------------------------------------------------ *)

let domains_sweep ?(json = false) (scale : Workload.scale) =
  Printf.printf "== TDB-S vs seal/unseal pipeline width (Config.domains) ==\n\n";
  let results =
    List.map
      (fun w ->
        let r = Runner.run_tdb ~security:true ~idle_every:500 ~domains:w scale in
        let r = { r with Runner.label = Printf.sprintf "tdbs/d%d" w } in
        Printf.printf "  [done] %s\n%!" (Format.asprintf "%a" Runner.pp_result r);
        (w, r))
      [ 1; 2; 4; 8 ]
  in
  Printf.printf "\n%-8s %10s %12s %12s %10s\n" "domains" "avg ms" "cpu avg ms" "ops/s" "cpu vs d1";
  (match results with
  | (_, r1) :: _ ->
      List.iter
        (fun (w, r) ->
          Printf.printf "%-8d %10.3f %12.4f %12.1f %9.2fx\n" w r.Runner.avg_ms r.Runner.cpu_avg_ms
            (if r.Runner.avg_ms > 0. then 1000. /. r.Runner.avg_ms else 0.)
            (if r.Runner.cpu_avg_ms > 0. then r1.Runner.cpu_avg_ms /. r.Runner.cpu_avg_ms else 0.))
        results
  | [] -> ());
  Printf.printf
    "\n(the pool only overlaps seals across cores that exist: on a single-core\n\
    \ host expect ~1.0x with a small coordination tax at d>1; see EXPERIMENTS.md)\n\n";
  if json then
    let body = String.concat ",\n" (List.map (fun (_, r) -> json_of_result r) results) in
    write_file "BENCH_DOMAINS.json"
      (Printf.sprintf "{\n  \"bench\": \"domains\",\n  \"widths\": [1, 2, 4, 8],\n  \"systems\": [\n%s\n  ]\n}\n"
         body)

(* ------------------------------------------------------------------ *)
(* Shard sweep: TDB-S vs chunk-store shard width (Config.shards)       *)
(* ------------------------------------------------------------------ *)

let shards_sweep ?(json = false) ?(widths = [ 1; 2; 4 ]) ~(scale_name : string)
    (scale : Workload.scale) =
  Printf.printf "== TDB-S vs chunk-store shard width (Config.shards) ==\n\n";
  Printf.printf
    "(branch-partitioned TPC-B with branch-affine inputs at every width, so the\n\
    \ ~15%% remote-account rate — the cross-shard 2PC fraction — is comparable;\n\
    \ on one simulated disk sharding adds 2PC log forces without adding\n\
    \ bandwidth, so expect a slowdown here: see EXPERIMENTS.md)\n\n";
  let results =
    List.map
      (fun w ->
        let r = Runner.run_tdb ~security:true ~idle_every:500 ~shards:w ~affine:true scale in
        let r = { r with Runner.label = (if w = 1 then "tdbs" else Printf.sprintf "tdbs/s%d" w) } in
        Printf.printf "  [done] %s  cross %.1f%%\n%!"
          (Format.asprintf "%a" Runner.pp_result r)
          (100. *. r.Runner.cross_txn_fraction);
        (w, r))
      widths
  in
  Printf.printf "\n%-8s %10s %12s %12s %12s\n" "shards" "avg ms" "ops/s" "cross txn" "vs s1";
  (match results with
  | (_, r1) :: _ ->
      List.iter
        (fun (w, r) ->
          Printf.printf "%-8d %10.3f %12.1f %11.1f%% %9.2fx\n" w r.Runner.avg_ms
            (if r.Runner.avg_ms > 0. then 1000. /. r.Runner.avg_ms else 0.)
            (100. *. r.Runner.cross_txn_fraction)
            (if r.Runner.avg_ms > 0. then r1.Runner.avg_ms /. r.Runner.avg_ms else 0.))
        results
  | [] -> ());
  Printf.printf "\n";
  if json then
    let body = String.concat ",\n" (List.map (fun (_, r) -> json_of_shard_result r) results) in
    write_file "BENCH_SHARDS.json"
      (Printf.sprintf
         "{\n\
         \  \"bench\": \"shards\",\n\
         \  \"scale\": %S,\n\
         \  \"widths\": [%s],\n\
         \  \"systems\": [\n%s\n  ]\n}\n"
         scale_name
         (String.concat ", " (List.map string_of_int (List.map fst results)))
         body)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation (scale : Workload.scale) =
  Printf.printf "== Ablations (design choices called out in DESIGN.md) ==\n\n";
  let with_idle = Runner.run_tdb ~security:true ~idle_every:500 scale in
  let without = Runner.run_tdb ~security:true scale in
  Printf.printf "idle-period maintenance:  with %.2f ms/txn   without %.2f ms/txn\n" with_idle.Runner.avg_ms
    without.Runner.avg_ms;
  let plain = Runner.run_tdb ~security:false ~idle_every:500 scale in
  Printf.printf "security on/off:          TDB-S %.2f ms  vs TDB %.2f ms  (crypto + counter cost %.2f ms)\n"
    with_idle.Runner.avg_ms plain.Runner.avg_ms
    (with_idle.Runner.avg_ms -. plain.Runner.avg_ms);
  (* durability: nondurable commits skip the log force and the counter *)
  let t = Tdb_driver.setup ~security:true scale in
  let rng = Tdb_crypto.Drbg.create ~seed:"abl" in
  let time_txns n ~durable =
    ignore durable;
    let t0 = Unix.gettimeofday () and s0 = Tdb_driver.sim_time t in
    for _ = 1 to n do
      ignore (Tdb_driver.txn t (Workload.gen_txn rng scale))
    done;
    (Unix.gettimeofday () -. t0 +. (Tdb_driver.sim_time t -. s0)) /. float_of_int n *. 1000.
  in
  let dur = time_txns 500 ~durable:true in
  Printf.printf "durable commits:          %.2f ms/txn (forces log + one-way counter each txn)\n" dur;
  (* cipher choice *)
  let c3x = Runner.run_tdb ~security:true ~idle_every:500 scale in
  Printf.printf "cipher (3xtea, default): %.2f ms/txn; see `micro` for per-block 3aes/aes costs\n\n"
    c3x.Runner.avg_ms

(* ------------------------------------------------------------------ *)
(* Network service: throughput scaling vs clients, group commit on/off  *)
(* ------------------------------------------------------------------ *)

let server_bench ?(txns_per_client = 50) ?(client_counts = [ 1; 2; 4; 8 ]) () =
  Printf.printf "== Network service: TPC-B throughput vs clients (group commit on/off) ==\n\n";
  Printf.printf "(durable commit cost emulated: 2 ms log force + 1 ms counter bump;\n";
  Printf.printf " %d transactions per client; tables %d/%d/%d)\n\n" txns_per_client
    Net_driver.net_scale.Workload.accounts Net_driver.net_scale.Workload.tellers
    Net_driver.net_scale.Workload.branches;
  Printf.printf "%-8s %14s %14s %9s %24s\n" "clients" "tps (gc off)" "tps (gc on)" "speedup" "barriers (off -> on)";
  List.iter
    (fun clients ->
      let off = Net_driver.run ~clients ~txns_per_client ~group_commit:false () in
      let on = Net_driver.run ~clients ~txns_per_client ~group_commit:true () in
      if not (off.Net_driver.balance_ok && on.Net_driver.balance_ok) then
        failwith "server bench: balance invariant violated";
      Printf.printf "%-8d %14.0f %14.0f %8.2fx %11d -> %d\n%!" clients off.Net_driver.tps
        on.Net_driver.tps
        (on.Net_driver.tps /. off.Net_driver.tps)
        off.Net_driver.barriers on.Net_driver.barriers)
    client_counts;
  Printf.printf
    "\n(each durable commit requests durability; with group commit a shared barrier\n\
    \ covers every session that committed in the window — fewer log forces and\n\
    \ one-way-counter bumps than durable commits, so throughput scales with clients)\n\n"

(* ------------------------------------------------------------------ *)
(* Replication: follower lag and ingest rate vs emission interval      *)
(* ------------------------------------------------------------------ *)

type replica_row = {
  rr_interval : int;
  rr_txns : int;
  rr_backups : int;
  rr_stream_bytes : int;
  rr_avg_lag : float;  (* commits behind, sampled after every txn *)
  rr_max_lag : int;
  rr_tail_ms : float;  (* convergence tail after the last commit *)
  rr_ingest_mb_s : float;
}

let replica_one ~every ~accounts ~txns : replica_row =
  let record_ix () : (Workload.record, int) Tdb.Indexer.t =
    Tdb.Indexer.make ~name:"id" ~key:Tdb.Gkey.int
      ~extract:(fun (r : Workload.record) -> r.Workload.id)
      ~unique:true ~impl:Tdb.Indexer.Hash ()
  in
  let expose srv =
    Tdb.Server.expose_collection srv ~name:"account" ~schema:Workload.account_cls
      ~indexers:[ Tdb.Indexer.Generic (record_ix ()) ]
      ~mutations:
        [ ("add", fun (r : Workload.record) rd -> r.Workload.balance <- r.Workload.balance + Tdb.Pickle.read_int rd) ]
      ()
  in
  let seed = "bench-replica" in
  let _, pdev = Tdb.Device.in_memory ~seed () in
  let pdb =
    Tdb.create
      ~config:{ Tdb.Chunk_config.default with Tdb.Chunk_config.replica_interval_commits = every }
      pdev
  in
  let psrv = Tdb.Server.create ~backups:pdb.Tdb.backups pdb.Tdb.objects (Tdb.Server.Tcp ("127.0.0.1", 0)) in
  expose psrv;
  Tdb.Server.start psrv;
  let paddr = Tdb.Server.Tcp ("127.0.0.1", Tdb.Server.port psrv) in
  let _, fdev = Tdb.Device.in_memory ~seed () in
  let fdb = Tdb.create fdev in
  let rep =
    Tdb.Replica.start
      ~config:{ Tdb.Replica.default_config with Tdb.Replica.poll = 0.01 }
      ~os:fdb.Tdb.objects ~backups:fdb.Tdb.backups ~from:paddr ()
  in
  let c = Tdb.Client.connect paddr in
  Fun.protect
    ~finally:(fun () ->
      Tdb.Client.close c;
      Tdb.Replica.stop rep;
      Tdb.Server.stop psrv)
    (fun () ->
      Tdb.Client.begin_ c;
      for id = 0 to accounts - 1 do
        ignore (Tdb.Client.coll_insert c ~coll:"account" Workload.account_cls (Workload.make_record ~id ~balance:0))
      done;
      Tdb.Client.commit ~durable:false c;
      let rng = Tdb_crypto.Drbg.create ~seed:"bench-replica-txn" in
      let lag_sum = ref 0 and lag_max = ref 0 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to txns do
        Tdb.Client.begin_ c;
        ignore
          (Tdb.Client.coll_mutate c ~coll:"account" ~index:"id" ~mutation:"add" Tdb.Gkey.int
             (Tdb_crypto.Drbg.int rng accounts) Workload.account_cls
             ~arg:(fun w -> Tdb.Pickle.int w 7));
        Tdb.Client.commit ~durable:true c;
        let lag =
          max 0 (Tdb.Shard_store.commit_seq pdb.Tdb.chunks - (Tdb.Replica.status rep).Tdb.Replica.applied_seq)
        in
        lag_sum := !lag_sum + lag;
        if lag > !lag_max then lag_max := lag
      done;
      let t_load = Unix.gettimeofday () in
      if not (Tdb.Replica.wait_converged ~timeout:60. rep) then failwith "replica bench: no convergence";
      let t_conv = Unix.gettimeofday () in
      let archive = pdev.Tdb.Device.archive in
      let stream_bytes =
        List.fold_left
          (fun acc name ->
            match Tdb.Archival_store.get archive ~name with Some s -> acc + String.length s | None -> acc)
          0
          (Tdb.Archival_store.list archive)
      in
      let backups = (Tdb.Backup_store.chain_state pdb.Tdb.backups).Tdb.Backup_store.last_id in
      {
        rr_interval = every;
        rr_txns = txns;
        rr_backups = backups;
        rr_stream_bytes = stream_bytes;
        rr_avg_lag = float_of_int !lag_sum /. float_of_int txns;
        rr_max_lag = !lag_max;
        rr_tail_ms = (t_conv -. t_load) *. 1000.;
        rr_ingest_mb_s =
          (if t_conv -. t0 > 0. then float_of_int stream_bytes /. 1048576. /. (t_conv -. t0) else 0.);
      })

let replica_bench ?(json = false) () =
  Printf.printf "== Replication: follower lag and ingest rate vs emission interval ==\n\n";
  Printf.printf "(in-process primary server + follower over loopback TCP; %s)\n\n"
    "single-core hosts timeshare the follower with the primary — see EXPERIMENTS.md";
  let rows = List.map (fun every -> replica_one ~every ~accounts:64 ~txns:256) [ 1; 8; 32 ] in
  Printf.printf "%-10s %8s %9s %12s %12s %10s %14s %12s\n" "interval" "txns" "backups" "stream KB"
    "avg lag" "max lag" "tail conv ms" "ingest MB/s";
  List.iter
    (fun r ->
      Printf.printf "%-10d %8d %9d %12.1f %12.2f %10d %14.1f %12.2f\n" r.rr_interval r.rr_txns
        r.rr_backups
        (float_of_int r.rr_stream_bytes /. 1024.)
        r.rr_avg_lag r.rr_max_lag r.rr_tail_ms r.rr_ingest_mb_s)
    rows;
  Printf.printf
    "\n(lag is commits-behind sampled after every primary commit; small intervals\n\
    \ emit more, smaller frames — lower lag, more stream bytes per txn)\n\n";
  if json then begin
    let body =
      String.concat ",\n"
        (List.map
           (fun r ->
             Printf.sprintf
               "    { \"interval\": %d, \"txns\": %d, \"backups\": %d, \"stream_bytes\": %d,\n\
               \      \"avg_lag_commits\": %.3f, \"max_lag_commits\": %d, \"tail_converge_ms\": %.2f,\n\
               \      \"ingest_mb_per_s\": %.3f }"
               r.rr_interval r.rr_txns r.rr_backups r.rr_stream_bytes r.rr_avg_lag r.rr_max_lag
               r.rr_tail_ms r.rr_ingest_mb_s)
           rows)
    in
    write_file "BENCH_REPLICA.json"
      (Printf.sprintf "{\n  \"bench\": \"replica\",\n  \"intervals\": [1, 8, 32],\n  \"rows\": [\n%s\n  ]\n}\n" body)
  end

(* ------------------------------------------------------------------ *)
(* Meter: cleaner write amplification vs Zipf skew and Config.tiers    *)
(* ------------------------------------------------------------------ *)

let pick_meter_scale = function
  | "quick" -> Meter.quick_scale
  | "default" | "paper" -> Meter.default_scale
  | s -> invalid_arg (Printf.sprintf "unknown scale %S (quick|default|paper)" s)

let json_of_meter_row (r : Meter.result) : string =
  Printf.sprintf
    "    { \"alpha\": %.1f, \"tiers\": %d, \"write_amp\": %.4f,\n\
    \      \"bytes_relocated\": %d, \"bytes_committed\": %d,\n\
    \      \"clean_passes\": %d, \"segments_cleaned\": %d, \"chunks_relocated\": %d,\n\
    \      \"tier_segments\": [%s],\n\
    \      \"db_size\": %d, \"live_bytes\": %d, \"cache_hit_rate\": %.4f,\n\
    \      \"cpu_s\": %.3f, \"io_s\": %.3f }"
    r.Meter.m_alpha r.Meter.m_tiers r.Meter.m_write_amp r.Meter.m_bytes_relocated
    r.Meter.m_bytes_committed r.Meter.m_clean_passes r.Meter.m_segments_cleaned
    r.Meter.m_chunks_relocated
    (String.concat ", " (List.map string_of_int r.Meter.m_tier_segments))
    r.Meter.m_db_size r.Meter.m_live_bytes r.Meter.m_cache_hit_rate r.Meter.m_cpu_s r.Meter.m_io_s

let meter_bench ?(json = false) ~(scale_name : string) () =
  let s = pick_meter_scale scale_name in
  Printf.printf "== Meter: cleaner write amplification vs Zipf skew and Config.tiers ==\n\n";
  Printf.printf
    "(%d tiny meters, %d Zipf(alpha) updates, chunk cache %d KB — DB many times the\n\
    \ cache; write amp = cleaner bytes relocated / meter bytes committed)\n\n"
    s.Meter.meters s.Meter.updates (s.Meter.cache_bytes / 1024);
  let rows =
    List.concat_map
      (fun alpha ->
        List.map
          (fun tiers ->
            let r = Meter.run ~tiers ~alpha s in
            Printf.printf "  [done] %s\n%!" (Format.asprintf "%a" Meter.pp_result r);
            r)
          [ 1; 2; 3 ])
      [ 0.0; 0.8; 1.2 ]
  in
  Printf.printf "\n%-8s %8s %12s %14s %14s %10s\n" "alpha" "tiers" "write amp" "relocated MB" "committed MB" "passes";
  List.iter
    (fun (r : Meter.result) ->
      Printf.printf "%-8.1f %8d %12.2f %14.2f %14.2f %10d\n" r.Meter.m_alpha r.Meter.m_tiers
        r.Meter.m_write_amp
        (float_of_int r.Meter.m_bytes_relocated /. 1048576.)
        (float_of_int r.Meter.m_bytes_committed /. 1048576.)
        r.Meter.m_clean_passes)
    rows;
  Printf.printf
    "\n(generational cleaning pays off with skew: at alpha = 1.2 the tiers >= 2 rows\n\
    \ relocate fewer bytes than tiers = 1 — cold meters settle into cold segments\n\
    \ the per-tier threshold stops recopying. At low skew there is no hot/cold\n\
    \ split to exploit; there the tiered cleaner trades write amplification for a\n\
    \ denser store — compare the db sizes in BENCH_METER.json)\n\n";
  if json then begin
    let body = String.concat ",\n" (List.map json_of_meter_row rows) in
    write_file "BENCH_METER.json"
      (Printf.sprintf
         "{\n\
         \  \"bench\": \"meter\",\n\
         \  \"scale\": { \"name\": %S, \"meters\": %d, \"updates\": %d, \"batch\": %d, \"cache_bytes\": %d },\n\
         \  \"alphas\": [0.0, 0.8, 1.2],\n\
         \  \"tiers\": [1, 2, 3],\n\
         \  \"rows\": [\n%s\n  ]\n}\n"
         scale_name s.Meter.meters s.Meter.updates s.Meter.batch s.Meter.cache_bytes body)
  end

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: bench/main.exe [all|footprint|tpcb|utilization|micro|ablation|server|domains|shards|replica|meter] \
     [--scale quick|default|paper] [--no-idle] [--json] [--shards 1,2,4]";
  exit 1

let () =
  let args = match Array.to_list Sys.argv with _exe :: rest -> rest | [] -> [] in
  let scale = ref "default" and idle = ref true and json = ref false and cmds = ref [] in
  let shard_widths = ref None in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := v;
        parse rest
    | "--no-idle" :: rest ->
        idle := false;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--shards" :: v :: rest ->
        shard_widths := Some (List.map int_of_string (String.split_on_char ',' v));
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | c :: rest ->
        cmds := c :: !cmds;
        parse rest
  in
  parse args;
  let cmds = match List.rev !cmds with [] -> [ "all" ] | l -> l in
  let scale_name = !scale in
  let scale = pick_scale scale_name in
  let tpcb () =
    (* `tpcb --shards 1,2,4` runs the shard-width sweep instead of the
       three-system Figure 10 comparison *)
    match !shard_widths with
    | Some widths -> shards_sweep ~json:!json ~widths ~scale_name scale
    | None ->
        let rs = figure10 ~idle:!idle scale in
        if !json then write_tpcb_json ~scale_name ~idle:!idle scale rs
  in
  let micro_bench () =
    let rs = micro () in
    if !json then write_micro_json rs
  in
  List.iter
    (fun cmd ->
      match cmd with
      | "all" ->
          Footprint.run ();
          tpcb ();
          figure11 scale;
          micro_bench ();
          ablation scale
      | "footprint" -> Footprint.run ()
      | "tpcb" | "figure10" -> tpcb ()
      | "utilization" | "figure11" -> figure11 scale
      | "micro" -> micro_bench ()
      | "ablation" -> ablation scale
      | "server" -> server_bench ()
      | "domains" -> domains_sweep ~json:!json scale
      | "shards" ->
          shards_sweep ~json:!json ?widths:!shard_widths ~scale_name scale
      | "replica" -> replica_bench ~json:!json ()
      | "meter" -> meter_bench ~json:!json ~scale_name ()
      | _ -> usage ())
    cmds
