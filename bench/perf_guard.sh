#!/bin/sh
# Perf-regression guard over the TPC-B bench JSON artifacts.
#
#   bench/perf_guard.sh BASELINE.json FRESH.json [TOLERANCE]
#
# For every system label present in both files, fail (exit 1) if the
# fresh run's ops_per_s drops more than TOLERANCE (default 0.15) below
# the baseline, or its store_writes_per_txn rises more than TOLERANCE
# above it. The baseline is typically the committed BENCH_TPCB.json
# (default scale); the fresh run may be quick scale — ops_per_s is
# dominated by the simulated disk model, so the two scales agree to
# within a few percent, well inside the tolerance. A baseline that
# predates the store_writes_per_txn field skips that check.
set -eu

baseline=${1:?usage: perf_guard.sh BASELINE.json FRESH.json [TOLERANCE]}
fresh=${2:?usage: perf_guard.sh BASELINE.json FRESH.json [TOLERANCE]}
tol=${3:-0.15}

# Flatten a bench JSON so each system object is one line, then print the
# line for the given label.
sys_line() {
    tr '\n' ' ' < "$1" | sed 's/{ *"label"/\
{ "label"/g' | grep -F "\"label\": \"$2\"" | head -n 1
}

# Extract a numeric field from a flattened system line (empty if absent).
field() {
    printf '%s\n' "$1" | sed -n "s/.*\"$2\": \([0-9][0-9.eE+-]*\).*/\1/p"
}

labels=$(tr '\n' ' ' < "$fresh" | sed 's/{ *"label"/\
{ "label"/g' | sed -n 's/.*"label": "\([^"]*\)".*/\1/p')

status=0
for label in $labels; do
    base_line=$(sys_line "$baseline" "$label") || true
    if [ -z "$base_line" ]; then
        echo "perf_guard: $label: not in baseline, skipping"
        continue
    fi
    fresh_line=$(sys_line "$fresh" "$label")

    b_ops=$(field "$base_line" ops_per_s)
    f_ops=$(field "$fresh_line" ops_per_s)
    if [ -n "$b_ops" ] && [ -n "$f_ops" ]; then
        if awk -v f="$f_ops" -v b="$b_ops" -v t="$tol" \
               'BEGIN { exit !(f < (1 - t) * b) }'; then
            echo "perf_guard: FAIL $label: ops_per_s $f_ops < $(awk -v b="$b_ops" -v t="$tol" 'BEGIN { printf "%.1f", (1-t)*b }') (baseline $b_ops, tolerance $tol)"
            status=1
        else
            echo "perf_guard: ok   $label: ops_per_s $f_ops (baseline $b_ops)"
        fi
    fi

    b_w=$(field "$base_line" store_writes_per_txn)
    f_w=$(field "$fresh_line" store_writes_per_txn)
    if [ -z "$b_w" ]; then
        echo "perf_guard: $label: baseline has no store_writes_per_txn, skipping write check"
        continue
    fi
    if [ -n "$f_w" ]; then
        if awk -v f="$f_w" -v b="$b_w" -v t="$tol" \
               'BEGIN { exit !(f > (1 + t) * b) }'; then
            echo "perf_guard: FAIL $label: store_writes_per_txn $f_w > $(awk -v b="$b_w" -v t="$tol" 'BEGIN { printf "%.2f", (1+t)*b }') (baseline $b_w, tolerance $tol)"
            status=1
        else
            echo "perf_guard: ok   $label: store_writes_per_txn $f_w (baseline $b_w)"
        fi
    fi
done

exit $status
