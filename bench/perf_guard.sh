#!/bin/sh
# Perf-regression guard over the TPC-B bench JSON artifacts.
#
#   bench/perf_guard.sh BASELINE.json FRESH.json [TOLERANCE]
#
# For every system label present in both files, fail (exit 1) if the
# fresh run's ops_per_s drops more than TOLERANCE (default 0.15) below
# the baseline, or its store_writes_per_txn rises more than TOLERANCE
# above it. The baseline is typically the committed BENCH_TPCB.json
# (default scale); the fresh run may be quick scale — ops_per_s is
# dominated by the simulated disk model, so the two scales agree to
# within a few percent, well inside the tolerance. A baseline that
# predates the store_writes_per_txn field skips that check.
#
# Micro files ("bench": "micro", rows keyed by "name" with "ns_per_op")
# are guarded too: each ns_per_op may rise at most TOLERANCE (default
# 0.50 for micro — wall-clock micro numbers are noisy across hosts)
# above the baseline. The micro rows include the seal/unseal
# domain-count axis (…/d1 vs …/d4), so pool-overhead regressions on the
# batched commit and read paths trip the same guard.
#
# Label files that carry the domain sweep (tdbs/d1 … tdbs/d8) get one
# extra cross-width check: tdbs/d4 ops_per_s must stay within TOLERANCE
# of tdbs/d1 in the SAME fresh run, so widening the pool may never cost
# more than the tolerance even on a single-core host.
#
# Meter files ("bench": "meter", rows keyed by alpha x tiers) gate the
# cleaner's write amplification. Rows are compared against the baseline
# only when both files ran the SAME scale — quick-scale meter runs clean
# almost nothing, so cross-scale write-amp ratios are meaningless, unlike
# the disk-model-dominated TPC-B numbers. At any scale the skew axis is
# checked within the fresh run itself: at the highest alpha the tiered
# (max tiers) row's write_amp may not exceed the tiers=1 row by more
# than TOLERANCE — the generational cleaner must keep paying for itself
# exactly where it claims to.
#
# Shard-sweep files ("bench": "shards", labels tdbs / tdbs/s2 / tdbs/s4)
# gate only the shards=1 axis: the fresh "tdbs" row (shards = 1) is held
# within TOLERANCE of the baseline's "TDB-S" row, so the sharding layer
# may never tax the sequential path. The multi-shard rows are reported
# but NOT gated against shards=1 — cross-shard 2PC on one simulated disk
# pays for extra barriers and prepare records by design; the sweep exists
# to measure that tax, not to bound it.
set -eu

baseline=${1:?usage: perf_guard.sh BASELINE.json FRESH.json [TOLERANCE]}
fresh=${2:?usage: perf_guard.sh BASELINE.json FRESH.json [TOLERANCE]}

# Flatten a bench JSON so each system object is one line, then print the
# line for the given label (key is "label" or, for micro files, "name").
sys_line() {
    tr '\n' ' ' < "$1" | sed "s/{ *\"$3\"/\\
{ \"$3\"/g" | grep -F "\"$3\": \"$2\"" | head -n 1
}

# Extract a numeric field from a flattened system line (empty if absent).
field() {
    printf '%s\n' "$1" | sed -n "s/.*\"$2\": \([0-9][0-9.eE+-]*\).*/\1/p"
}

if grep -q '"bench": "micro"' "$fresh"; then
    tol=${3:-0.50}
    status=0
    names=$(tr '\n' ' ' < "$fresh" | sed 's/{ *"name"/\
{ "name"/g' | sed -n 's/.*"name": "\([^"]*\)".*/\1/p')
    for name in $names; do
        base_line=$(sys_line "$baseline" "$name" name) || true
        if [ -z "$base_line" ]; then
            echo "perf_guard: $name: not in baseline, skipping"
            continue
        fi
        fresh_line=$(sys_line "$fresh" "$name" name)
        b_ns=$(field "$base_line" ns_per_op)
        f_ns=$(field "$fresh_line" ns_per_op)
        [ -n "$b_ns" ] && [ -n "$f_ns" ] || continue
        if awk -v f="$f_ns" -v b="$b_ns" -v t="$tol" \
               'BEGIN { exit !(f > (1 + t) * b) }'; then
            echo "perf_guard: FAIL $name: ns_per_op $f_ns > $(awk -v b="$b_ns" -v t="$tol" 'BEGIN { printf "%.0f", (1+t)*b }') (baseline $b_ns, tolerance $tol)"
            status=1
        else
            echo "perf_guard: ok   $name: ns_per_op $f_ns (baseline $b_ns)"
        fi
    done
    exit $status
fi

if grep -q '"bench": "meter"' "$fresh"; then
    tol=${3:-0.15}
    status=0
    # One meter row per line, keyed by the "alpha": A, "tiers": T prefix.
    meter_row() {
        tr '\n' ' ' < "$1" | sed 's/{ *"alpha"/\
{ "alpha"/g' | grep -F "\"alpha\": $2, \"tiers\": $3" | head -n 1
    }
    scale_of() {
        sed -n 's/.*"scale": { "name": "\([^"]*\)".*/\1/p' "$1" | head -n 1
    }
    pairs=$(tr '\n' ' ' < "$fresh" | sed 's/{ *"alpha"/\
{ "alpha"/g' | sed -n 's/.*"alpha": \([0-9.]*\), "tiers": \([0-9]*\).*/\1:\2/p')
    b_scale=$(scale_of "$baseline"); f_scale=$(scale_of "$fresh")
    if [ "$b_scale" = "$f_scale" ]; then
        for pair in $pairs; do
            alpha=${pair%:*}; tiers=${pair#*:}
            base_line=$(meter_row "$baseline" "$alpha" "$tiers") || true
            if [ -z "$base_line" ]; then
                echo "perf_guard: meter alpha=$alpha tiers=$tiers: not in baseline, skipping"
                continue
            fi
            fresh_line=$(meter_row "$fresh" "$alpha" "$tiers")
            b_wa=$(field "$base_line" write_amp)
            f_wa=$(field "$fresh_line" write_amp)
            [ -n "$b_wa" ] && [ -n "$f_wa" ] || continue
            # +0.02 absolute slack: rows that barely clean have write_amp
            # near 0, where a pure ratio gate would trip on noise
            if awk -v f="$f_wa" -v b="$b_wa" -v t="$tol" \
                   'BEGIN { exit !(f > (1 + t) * b + 0.02) }'; then
                echo "perf_guard: FAIL meter alpha=$alpha tiers=$tiers: write_amp $f_wa > $(awk -v b="$b_wa" -v t="$tol" 'BEGIN { printf "%.4f", (1+t)*b+0.02 }') (baseline $b_wa, tolerance $tol)"
                status=1
            else
                echo "perf_guard: ok   meter alpha=$alpha tiers=$tiers: write_amp $f_wa (baseline $b_wa)"
            fi
        done
    else
        echo "perf_guard: meter scales differ (baseline $b_scale, fresh $f_scale): row checks skipped, gating the skew axis only"
    fi
    # Skew axis, within the fresh run: at the highest alpha, tiering must
    # not cost write amplification relative to the classic cleaner.
    hi_alpha=$(printf '%s\n' $pairs | sed 's/:.*//' | sort -g | tail -n 1)
    hi_tiers=$(printf '%s\n' $pairs | grep "^$hi_alpha:" | sed 's/.*://' | sort -n | tail -n 1)
    t1_line=$(meter_row "$fresh" "$hi_alpha" 1) || true
    tn_line=$(meter_row "$fresh" "$hi_alpha" "$hi_tiers") || true
    if [ -n "$t1_line" ] && [ -n "$tn_line" ] && [ "$hi_tiers" -gt 1 ]; then
        t1_wa=$(field "$t1_line" write_amp)
        tn_wa=$(field "$tn_line" write_amp)
        if [ -n "$t1_wa" ] && [ -n "$tn_wa" ]; then
            if awk -v f="$tn_wa" -v b="$t1_wa" -v t="$tol" \
                   'BEGIN { exit !(f > (1 + t) * b + 0.02) }'; then
                echo "perf_guard: FAIL meter skew axis: alpha=$hi_alpha tiers=$hi_tiers write_amp $tn_wa > $(awk -v b="$t1_wa" -v t="$tol" 'BEGIN { printf "%.4f", (1+t)*b+0.02 }') (tiers=1 $t1_wa, tolerance $tol)"
                status=1
            else
                echo "perf_guard: ok   meter skew axis: alpha=$hi_alpha write_amp tiers=$hi_tiers $tn_wa vs tiers=1 $t1_wa"
            fi
        fi
    fi
    exit $status
fi

tol=${3:-0.15}

labels=$(tr '\n' ' ' < "$fresh" | sed 's/{ *"label"/\
{ "label"/g' | sed -n 's/.*"label": "\([^"]*\)".*/\1/p')

status=0
for label in $labels; do
    base_line=$(sys_line "$baseline" "$label" label) || true
    if [ -z "$base_line" ]; then
        echo "perf_guard: $label: not in baseline, skipping"
        continue
    fi
    fresh_line=$(sys_line "$fresh" "$label" label)

    b_ops=$(field "$base_line" ops_per_s)
    f_ops=$(field "$fresh_line" ops_per_s)
    if [ -n "$b_ops" ] && [ -n "$f_ops" ]; then
        if awk -v f="$f_ops" -v b="$b_ops" -v t="$tol" \
               'BEGIN { exit !(f < (1 - t) * b) }'; then
            echo "perf_guard: FAIL $label: ops_per_s $f_ops < $(awk -v b="$b_ops" -v t="$tol" 'BEGIN { printf "%.1f", (1-t)*b }') (baseline $b_ops, tolerance $tol)"
            status=1
        else
            echo "perf_guard: ok   $label: ops_per_s $f_ops (baseline $b_ops)"
        fi
    fi

    b_w=$(field "$base_line" store_writes_per_txn)
    f_w=$(field "$fresh_line" store_writes_per_txn)
    if [ -z "$b_w" ]; then
        echo "perf_guard: $label: baseline has no store_writes_per_txn, skipping write check"
        continue
    fi
    if [ -n "$f_w" ]; then
        if awk -v f="$f_w" -v b="$b_w" -v t="$tol" \
               'BEGIN { exit !(f > (1 + t) * b) }'; then
            echo "perf_guard: FAIL $label: store_writes_per_txn $f_w > $(awk -v b="$b_w" -v t="$tol" 'BEGIN { printf "%.2f", (1+t)*b }') (baseline $b_w, tolerance $tol)"
            status=1
        else
            echo "perf_guard: ok   $label: store_writes_per_txn $f_w (baseline $b_w)"
        fi
    fi
done

# Domain-count axis: within the fresh run, widening the seal/unseal
# pipeline from 1 to 4 domains may not cost more than the tolerance.
d1_line=$(sys_line "$fresh" "tdbs/d1" label) || true
d4_line=$(sys_line "$fresh" "tdbs/d4" label) || true
if [ -n "$d1_line" ] && [ -n "$d4_line" ]; then
    d1_ops=$(field "$d1_line" ops_per_s)
    d4_ops=$(field "$d4_line" ops_per_s)
    if [ -n "$d1_ops" ] && [ -n "$d4_ops" ]; then
        if awk -v f="$d4_ops" -v b="$d1_ops" -v t="$tol" \
               'BEGIN { exit !(f < (1 - t) * b) }'; then
            echo "perf_guard: FAIL domains axis: tdbs/d4 ops_per_s $d4_ops < $(awk -v b="$d1_ops" -v t="$tol" 'BEGIN { printf "%.1f", (1-t)*b }') (tdbs/d1 $d1_ops, tolerance $tol)"
            status=1
        else
            echo "perf_guard: ok   domains axis: tdbs/d4 ops_per_s $d4_ops vs tdbs/d1 $d1_ops"
        fi
    fi
fi

# Shard axis: the shards=1 row of a shard sweep is the sequential path
# and must match the baseline's secure TPC-B row ("TDB-S"). Wider rows
# (tdbs/s2, tdbs/s4) are intentionally not gated — see header.
if grep -q '"bench": "shards"' "$fresh"; then
    s1_line=$(sys_line "$fresh" "tdbs" label) || true
    base_line=$(sys_line "$baseline" "TDB-S" label) || true
    if [ -n "$s1_line" ] && [ -n "$base_line" ]; then
        b_ops=$(field "$base_line" ops_per_s)
        f_ops=$(field "$s1_line" ops_per_s)
        if [ -n "$b_ops" ] && [ -n "$f_ops" ]; then
            if awk -v f="$f_ops" -v b="$b_ops" -v t="$tol" \
                   'BEGIN { exit !(f < (1 - t) * b) }'; then
                echo "perf_guard: FAIL shards axis: tdbs (shards=1) ops_per_s $f_ops < $(awk -v b="$b_ops" -v t="$tol" 'BEGIN { printf "%.1f", (1-t)*b }') (baseline TDB-S $b_ops, tolerance $tol)"
                status=1
            else
                echo "perf_guard: ok   shards axis: tdbs (shards=1) ops_per_s $f_ops vs baseline TDB-S $b_ops"
            fi
        fi
        b_w=$(field "$base_line" store_writes_per_txn)
        f_w=$(field "$s1_line" store_writes_per_txn)
        if [ -n "$b_w" ] && [ -n "$f_w" ]; then
            if awk -v f="$f_w" -v b="$b_w" -v t="$tol" \
                   'BEGIN { exit !(f > (1 + t) * b) }'; then
                echo "perf_guard: FAIL shards axis: tdbs (shards=1) store_writes_per_txn $f_w > $(awk -v b="$b_w" -v t="$tol" 'BEGIN { printf "%.2f", (1+t)*b }') (baseline TDB-S $b_w, tolerance $tol)"
                status=1
            else
                echo "perf_guard: ok   shards axis: tdbs (shards=1) store_writes_per_txn $f_w (baseline TDB-S $b_w)"
            fi
        fi
    fi
    echo "perf_guard: shards axis: multi-shard rows measured, not gated (2PC tax is by design)"
fi

exit $status
