(** Figure 8: code footprint.

    The paper compares the .text segment of TDB's x86 build against other
    embedded engines (Berkeley DB 186 KB, C-ISAM 344 KB, Faircom 211 KB,
    RDB 284 KB; TDB 250 KB total split across its layers). We report the
    analogous measures for this reproduction: source lines per layer and
    the size of each compiled library archive (the .a files dune produces),
    with the paper's numbers printed alongside for comparison. *)

type layer = { name : string; paper_kb : int option; dirs : string list }

let layers =
  [
    { name = "collection store"; paper_kb = Some 45; dirs = [ "lib/collection" ] };
    { name = "object store"; paper_kb = Some 41; dirs = [ "lib/objstore" ] };
    { name = "backup store"; paper_kb = Some 22; dirs = [ "lib/backup" ] };
    { name = "chunk store"; paper_kb = Some 115; dirs = [ "lib/chunk" ] };
    { name = "support utilities"; paper_kb = Some 27; dirs = [ "lib/crypto"; "lib/pickle"; "lib/platform"; "lib/core" ] };
  ]

let others = [ ("Berkeley DB", 186, "lib/baseline"); ("C-ISAM", 344, ""); ("Faircom", 211, ""); ("RDB", 284, "") ]

(** Find the repository root by walking up until dune-project appears. *)
let repo_root () : string option =
  let rec go dir depth =
    if depth > 6 then None
    else if Sys.file_exists (Filename.concat dir "dune-project") && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else go (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  go (Sys.getcwd ()) 0

let loc_of_file path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if not (String.equal (String.trim line) "") then incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let loc_of_dirs root dirs =
  List.fold_left
    (fun acc dir ->
      let d = Filename.concat root dir in
      if Sys.file_exists d && Sys.is_directory d then
        Array.fold_left
          (fun acc f ->
            if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli" then
              acc + loc_of_file (Filename.concat d f)
            else acc)
          acc (Sys.readdir d)
      else acc)
    0 dirs

let archive_kb root dirs =
  (* dune puts lib archives under _build/default/<dir>/<libname>.a *)
  List.fold_left
    (fun acc dir ->
      let d = Filename.concat (Filename.concat root "_build/default") dir in
      if Sys.file_exists d && Sys.is_directory d then
        Array.fold_left
          (fun acc f ->
            if Filename.check_suffix f ".a" then acc + (Unix.stat (Filename.concat d f)).Unix.st_size
            else acc)
          acc (Sys.readdir d)
      else acc)
    0 dirs
  / 1024

let run () =
  Printf.printf "== Figure 8: code footprint ==\n\n";
  match repo_root () with
  | None ->
      Printf.printf "(source tree not found from %s; run from the repository root)\n" (Sys.getcwd ())
  | Some root ->
      Printf.printf "%-22s %10s %12s %14s\n" "layer" "LoC" "archive KB" "paper .text KB";
      let total_loc = ref 0 and total_kb = ref 0 in
      List.iter
        (fun l ->
          let loc = loc_of_dirs root l.dirs in
          let kb = archive_kb root l.dirs in
          total_loc := !total_loc + loc;
          total_kb := !total_kb + kb;
          Printf.printf "%-22s %10d %12d %14s\n" l.name loc kb
            (match l.paper_kb with Some k -> string_of_int k | None -> "-"))
        layers;
      Printf.printf "%-22s %10d %12d %14d\n" "TDB total" !total_loc !total_kb 250;
      (* the paper's minimal configuration: chunk store + support only *)
      let min_loc = loc_of_dirs root [ "lib/chunk"; "lib/crypto"; "lib/pickle"; "lib/platform" ] in
      let min_kb = archive_kb root [ "lib/chunk"; "lib/crypto"; "lib/pickle"; "lib/platform" ] in
      Printf.printf "%-22s %10d %12d %14d  (chunk store + support)\n\n" "TDB minimal" min_loc min_kb 142;
      Printf.printf "%-22s %10s %12s %14s\n" "comparison engines" "LoC" "archive KB" "paper .text KB";
      List.iter
        (fun (name, paper, dir) ->
          if String.equal dir "" then Printf.printf "%-22s %10s %12s %14d\n" name "-" "-" paper
          else
            Printf.printf "%-22s %10d %12d %14d\n" (name ^ " (ours)") (loc_of_dirs root [ dir ])
              (archive_kb root [ dir ]) paper)
        others;
      Printf.printf
        "\nShape check: TDB's footprint is of the same order as the baseline\n\
         engine while providing tamper detection, encryption, backups and\n\
         typed collections — the paper's Figure 8 claim. (OCaml archives are\n\
         not directly comparable to 2001 x86 .text bytes; LoC and relative\n\
         sizes are the meaningful comparison.)\n"
