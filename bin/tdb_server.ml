(* tdb_server — serve a TDB database directory over a socket.

   The served schema is the repo's demo application schema (the TPC-B
   tables from lib/tpcb): collections account/teller/branch of balance
   records with a unique hash index on id and an "add" mutation, plus the
   append-only history collection. Raw typed object and root operations
   are exposed for the same classes. *)

open Cmdliner

let dir_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Database directory.")

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP $(docv) (loopback).")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Numeric address to bind with --port.")

let fresh_arg = Arg.(value & flag & info [ "fresh" ] ~doc:"Create a fresh database (overwrites any existing one).")

let no_gc_arg =
  Arg.(value & flag & info [ "no-group-commit" ] ~doc:"Commit each session's durable commits individually.")

let idle_arg =
  Arg.(value & opt float 0. & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc:"Drop sessions idle longer than $(docv) (0 = never).")

let record_indexers () : Tdb_tpcb.Workload.record Tdb.Indexer.generic list =
  [ Tdb.Indexer.Generic
      (Tdb.Indexer.make ~name:"id" ~key:Tdb.Gkey.int
         ~extract:(fun (r : Tdb_tpcb.Workload.record) -> r.Tdb_tpcb.Workload.id)
         ~unique:true ~impl:Tdb.Indexer.Hash ()) ]

let history_indexers () : Tdb_tpcb.Workload.history Tdb.Indexer.generic list =
  [ Tdb.Indexer.Generic
      (Tdb.Indexer.make ~name:"id" ~key:Tdb.Gkey.int
         ~extract:(fun (h : Tdb_tpcb.Workload.history) -> h.Tdb_tpcb.Workload.h_id)
         ~unique:false ~impl:Tdb.Indexer.List ()) ]

let add_mutation (r : Tdb_tpcb.Workload.record) (rd : Tdb.Pickle.reader) : unit =
  r.Tdb_tpcb.Workload.balance <- r.Tdb_tpcb.Workload.balance + Tdb.Pickle.read_int rd

(** Expose the demo schema on [srv]. *)
let expose_demo_schema (srv : Tdb.Server.t) : unit =
  List.iter
    (fun (name, schema) ->
      Tdb.Server.expose_collection srv ~name ~schema ~indexers:(record_indexers ())
        ~mutations:[ ("add", add_mutation) ] ())
    [
      ("account", Tdb_tpcb.Workload.account_cls);
      ("teller", Tdb_tpcb.Workload.teller_cls);
      ("branch", Tdb_tpcb.Workload.branch_cls);
    ];
  Tdb.Server.expose_collection srv ~name:"history" ~schema:Tdb_tpcb.Workload.history_cls
    ~indexers:(history_indexers ()) ()

let serve_cmd =
  let run dir socket port host fresh no_gc idle_timeout =
    let addr =
      match (socket, port) with
      | Some path, None -> Tdb.Server.Unix_path path
      | None, Some p -> Tdb.Server.Tcp (host, p)
      | None, None -> Tdb.Server.Unix_path (Filename.concat dir "tdb.sock")
      | Some _, Some _ ->
          prerr_endline "tdb_server: --socket and --port are mutually exclusive";
          exit 2
    in
    let device = Tdb.Device.at_dir dir in
    let db = if fresh then Tdb.create device else Tdb.open_existing device in
    let config =
      { Tdb.Server.default_config with Tdb.Server.group_commit = not no_gc; idle_timeout }
    in
    let srv = Tdb.Server.create ~config ~backups:db.Tdb.backups db.Tdb.objects addr in
    expose_demo_schema srv;
    (match addr with
    | Tdb.Server.Unix_path p -> Printf.printf "tdb_server: listening on %s" p
    | Tdb.Server.Tcp (h, _) -> Printf.printf "tdb_server: listening on %s:%d" h (Tdb.Server.port srv));
    Printf.printf " (group commit %s, idle timeout %s)\n%!"
      (if no_gc then "off" else "on")
      (if idle_timeout > 0. then Printf.sprintf "%.0fs" idle_timeout else "off");
    Tdb.Server.serve srv;
    Tdb.close db
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve a database over a Unix-domain or TCP socket.")
    Term.(const run $ dir_arg $ socket_arg $ port_arg $ host_arg $ fresh_arg $ no_gc_arg $ idle_arg)

(* Follower mode: tail a primary's archive feed into a local database
   directory and serve it read-only over a socket of its own. The
   follower's directory must hold a copy of the primary's secret file
   (frames verify against the shared platform secret). *)
let replicate_cmd =
  let from_socket =
    Arg.(value & opt (some string) None & info [ "from-socket" ] ~docv:"PATH" ~doc:"Primary's Unix-domain socket.")
  in
  let from_port =
    Arg.(value & opt (some int) None & info [ "from-port" ] ~docv:"PORT" ~doc:"Primary's TCP port.")
  in
  let from_host =
    Arg.(value & opt string "127.0.0.1" & info [ "from-host" ] ~docv:"HOST" ~doc:"Primary's numeric address with --from-port.")
  in
  let poll_arg =
    Arg.(value & opt float 0.2 & info [ "poll" ] ~docv:"SECONDS" ~doc:"Reconnect backoff.")
  in
  let run dir socket port host fresh from_socket from_port from_host poll idle_timeout =
    let from =
      match (from_socket, from_port) with
      | Some path, None -> Tdb.Server.Unix_path path
      | None, Some p -> Tdb.Server.Tcp (from_host, p)
      | None, None | Some _, Some _ ->
          prerr_endline "tdb_server: replicate needs exactly one of --from-socket / --from-port";
          exit 2
    in
    let addr =
      match (socket, port) with
      | Some path, None -> Tdb.Server.Unix_path path
      | None, Some p -> Tdb.Server.Tcp (host, p)
      | None, None -> Tdb.Server.Unix_path (Filename.concat dir "tdb.sock")
      | Some _, Some _ ->
          prerr_endline "tdb_server: --socket and --port are mutually exclusive";
          exit 2
    in
    if not (Sys.file_exists (Filename.concat dir "secret")) then begin
      Printf.eprintf "tdb_server: %s/secret not found — copy the primary's secret file there first\n" dir;
      exit 2
    end;
    (* probe before [at_dir]: opening the device creates an empty [db] file *)
    let existing = Sys.file_exists (Filename.concat dir "db") in
    let device = Tdb.Device.at_dir dir in
    let db = if fresh || not existing then Tdb.create device else Tdb.open_existing device in
    let rep =
      Tdb.Replica.start
        ~config:{ Tdb.Replica.default_config with Tdb.Replica.poll }
        ~os:db.Tdb.objects ~backups:db.Tdb.backups ~from ()
    in
    let config = { Tdb.Server.default_config with Tdb.Server.read_only = true; idle_timeout } in
    let srv = Tdb.Server.create ~config ~backups:db.Tdb.backups db.Tdb.objects addr in
    expose_demo_schema srv;
    (match addr with
    | Tdb.Server.Unix_path p -> Printf.printf "tdb_server: follower listening on %s (read-only)\n%!" p
    | Tdb.Server.Tcp (h, _) ->
        Printf.printf "tdb_server: follower listening on %s:%d (read-only)\n%!" h (Tdb.Server.port srv));
    Tdb.Server.serve srv;
    Tdb.Replica.stop rep;
    Tdb.close db
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:"Tail a primary's replication feed into $(docv) and serve it read-only.")
    Term.(const run $ dir_arg $ socket_arg $ port_arg $ host_arg $ fresh_arg $ from_socket $ from_port
          $ from_host $ poll_arg $ idle_arg)

let () =
  let doc = "TDB network service: sessions, transactions and group commit over a socket" in
  exit (Cmd.eval (Cmd.group ~default:Term.(ret (const (`Help (`Pager, None)))) (Cmd.info "tdb_server" ~doc ~version:"0.1.0") [ serve_cmd; replicate_cmd ]))
