(* Crashpoint fault-injection sweep over the chunk store.

   Replays a deterministic TPC-B-style workload, crashes it at every
   write/sync boundary under seeded subsets of surviving unsynced writes,
   reopens and checks recovery invariants, then bit-flips the committed
   image and checks tamper detection. Exits 1 if any invariant is
   violated. See DESIGN.md, "Crash model". *)

let () =
  let txns = ref Tdb_faultsim.Crashfuzz.default_trace.Tdb_faultsim.Crashfuzz.txns in
  let seeds = ref 8 in
  let stride = ref 1 in
  let tamper_stride = ref 7 in
  let mask = ref 0x10 in
  let json = ref false in
  let quiet = ref false in
  let no_gc = ref false in
  let no_flush = ref false in
  let no_demote = ref false in
  let no_replica = ref false in
  let no_shard = ref false in
  let shards = ref 0 in
  let seed = ref Tdb_faultsim.Crashfuzz.default_trace.Tdb_faultsim.Crashfuzz.seed in
  let spec =
    [
      ("--txns", Arg.Set_int txns, "N  transactions in the recorded trace (default 24)");
      ("--seeds", Arg.Set_int seeds, "N  persistence-subset seeds per crashpoint (default 8)");
      ("--stride", Arg.Set_int stride, "N  crash at every N-th boundary (default 1: every boundary)");
      ("--tamper-stride", Arg.Set_int tamper_stride, "N  bit-flip every N-th image byte (default 7)");
      ("--mask", Arg.Set_int mask, "M  XOR mask for the tamper sweep (default 0x10)");
      ("--seed", Arg.Set_string seed, "S  trace seed (default tdb-crashfuzz)");
      ("--no-group-commit", Arg.Set no_gc, "  skip the group-commit (staged barrier) sweep");
      ("--no-commit-flush", Arg.Set no_flush, "  skip the coalesced commit-flush (fragment boundary) sweep");
      ("--no-demote", Arg.Set no_demote, "  skip the tiered-cleaner demotion sweep");
      ("--no-replica", Arg.Set no_replica, "  skip the replication-ingest crash and stream-tamper sweeps");
      ("--no-shard", Arg.Set no_shard, "  skip the cross-shard 2PC crash and tamper sweeps");
      ("--shards", Arg.Set_int shards, "N  shard width for the 2PC sweep (default: max 2 TDB_SHARDS)");
      ("--json", Arg.Set json, "  emit the JSON summary on stdout");
      ("--quiet", Arg.Set quiet, "  no progress output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "tdb_crashfuzz [options]: crashpoint fault-injection sweep";
  let trace = { Tdb_faultsim.Crashfuzz.default_trace with Tdb_faultsim.Crashfuzz.txns = !txns; seed = !seed } in
  let progress k n = if not !quiet then Printf.eprintf "\rcrashpoint %d/%d%!" k n in
  let crash = Tdb_faultsim.Crashfuzz.sweep_crashpoints ~progress ~trace ~seeds:!seeds ~stride:!stride () in
  if not !quiet then Printf.eprintf "\rcrash sweep done: %d runs over %d boundaries\n%!" crash.runs crash.boundaries;
  let gc =
    if !no_gc then None
    else begin
      let r = Tdb_faultsim.Crashfuzz.sweep_group_commit ~progress ~trace ~seeds:!seeds ~stride:!stride () in
      if not !quiet then
        Printf.eprintf "\rgroup-commit sweep done: %d runs over %d boundaries\n%!" r.runs r.boundaries;
      Some r
    end
  in
  let flush =
    if !no_flush then None
    else begin
      let r = Tdb_faultsim.Crashfuzz.sweep_commit_flush ~progress ~trace ~seeds:!seeds ~stride:!stride () in
      if not !quiet then
        Printf.eprintf "\rcommit-flush sweep done: %d runs over %d boundaries\n%!" r.runs r.boundaries;
      Some r
    end
  in
  let demote =
    if !no_demote then None
    else begin
      let r = Tdb_faultsim.Crashfuzz.sweep_demote ~progress ~trace ~seeds:!seeds ~stride:!stride () in
      if not !quiet then
        Printf.eprintf "\rdemote sweep done: %d runs over %d boundaries\n%!" r.runs r.boundaries;
      Some r
    end
  in
  let replica =
    if !no_replica then None
    else begin
      let r = Tdb_faultsim.Crashfuzz.sweep_replica ~progress ~trace ~seeds:!seeds ~stride:!stride () in
      if not !quiet then
        Printf.eprintf "\rreplica sweep done: %d runs over %d boundaries\n%!" r.runs r.boundaries;
      Some r
    end
  in
  let replica_tamper =
    if !no_replica then None
    else begin
      let r = Tdb_faultsim.Crashfuzz.sweep_replica_tamper ~mask:!mask ~trace () in
      if not !quiet then
        Printf.eprintf "replica tamper sweep done: %d flips (%d detected, %d harmless)\n%!" r.flips
          r.detected r.harmless;
      Some r
    end
  in
  let shard_width = if !shards > 0 then Some !shards else None in
  let shard_2pc =
    if !no_shard then None
    else begin
      let r =
        Tdb_faultsim.Crashfuzz.sweep_shard_2pc ~progress ?shards:shard_width ~trace ~seeds:!seeds
          ~stride:!stride ()
      in
      if not !quiet then
        Printf.eprintf "\rshard-2PC sweep done: %d runs over %d boundaries\n%!" r.runs r.boundaries;
      Some r
    end
  in
  let shard_tamper =
    if !no_shard then None
    else begin
      let r =
        Tdb_faultsim.Crashfuzz.sweep_shard_tamper ~stride:!tamper_stride ~mask:!mask ?shards:shard_width
          ~trace ()
      in
      if not !quiet then
        Printf.eprintf "shard tamper sweep done: %d flips (%d detected, %d harmless)\n%!" r.flips
          r.detected r.harmless;
      Some r
    end
  in
  let tamper = Tdb_faultsim.Crashfuzz.sweep_tamper ~stride:!tamper_stride ~mask:!mask ~trace () in
  if not !quiet then
    Printf.eprintf "tamper sweep done: %d flips (%d detected, %d harmless)\n%!" tamper.flips tamper.detected
      tamper.harmless;
  let gc_violations = match gc with None -> [] | Some r -> r.Tdb_faultsim.Crashfuzz.violations in
  let flush_violations = match flush with None -> [] | Some r -> r.Tdb_faultsim.Crashfuzz.violations in
  let demote_violations = match demote with None -> [] | Some r -> r.Tdb_faultsim.Crashfuzz.violations in
  let replica_violations = match replica with None -> [] | Some r -> r.Tdb_faultsim.Crashfuzz.violations in
  let shard_violations = match shard_2pc with None -> [] | Some r -> r.Tdb_faultsim.Crashfuzz.violations in
  if !json then
    print_endline
      (Tdb_faultsim.Crashfuzz.json_summary ?group_commit:gc ?commit_flush:flush ?demote ?replica
         ?replica_tamper ?shard_2pc ?shard_tamper ~trace ~crash ~tamper ())
  else begin
    Printf.printf "boundaries=%d crashpoints=%d seeds=%d runs=%d crashes=%d recoveries=%d violations=%d\n"
      crash.boundaries crash.crashpoints crash.seeds crash.runs crash.crashes crash.recoveries
      (List.length crash.violations);
    (match gc with
    | None -> ()
    | Some r ->
        Printf.printf
          "group-commit: boundaries=%d crashpoints=%d runs=%d crashes=%d recoveries=%d violations=%d\n"
          r.Tdb_faultsim.Crashfuzz.boundaries r.Tdb_faultsim.Crashfuzz.crashpoints
          r.Tdb_faultsim.Crashfuzz.runs r.Tdb_faultsim.Crashfuzz.crashes r.Tdb_faultsim.Crashfuzz.recoveries
          (List.length r.Tdb_faultsim.Crashfuzz.violations));
    (match flush with
    | None -> ()
    | Some r ->
        Printf.printf
          "commit-flush: boundaries=%d crashpoints=%d runs=%d crashes=%d recoveries=%d violations=%d\n"
          r.Tdb_faultsim.Crashfuzz.boundaries r.Tdb_faultsim.Crashfuzz.crashpoints
          r.Tdb_faultsim.Crashfuzz.runs r.Tdb_faultsim.Crashfuzz.crashes r.Tdb_faultsim.Crashfuzz.recoveries
          (List.length r.Tdb_faultsim.Crashfuzz.violations));
    (match demote with
    | None -> ()
    | Some r ->
        Printf.printf
          "demote: boundaries=%d crashpoints=%d runs=%d crashes=%d recoveries=%d violations=%d\n"
          r.Tdb_faultsim.Crashfuzz.boundaries r.Tdb_faultsim.Crashfuzz.crashpoints
          r.Tdb_faultsim.Crashfuzz.runs r.Tdb_faultsim.Crashfuzz.crashes r.Tdb_faultsim.Crashfuzz.recoveries
          (List.length r.Tdb_faultsim.Crashfuzz.violations));
    (match replica with
    | None -> ()
    | Some r ->
        Printf.printf
          "replica: boundaries=%d crashpoints=%d runs=%d crashes=%d recoveries=%d violations=%d\n"
          r.Tdb_faultsim.Crashfuzz.boundaries r.Tdb_faultsim.Crashfuzz.crashpoints
          r.Tdb_faultsim.Crashfuzz.runs r.Tdb_faultsim.Crashfuzz.crashes r.Tdb_faultsim.Crashfuzz.recoveries
          (List.length r.Tdb_faultsim.Crashfuzz.violations));
    (match replica_tamper with
    | None -> ()
    | Some r ->
        Printf.printf "replica-tamper: flips=%d detected=%d harmless=%d silent=%d\n"
          r.Tdb_faultsim.Crashfuzz.flips r.Tdb_faultsim.Crashfuzz.detected
          r.Tdb_faultsim.Crashfuzz.harmless r.Tdb_faultsim.Crashfuzz.silent);
    (match shard_2pc with
    | None -> ()
    | Some r ->
        Printf.printf
          "shard-2pc: boundaries=%d crashpoints=%d runs=%d crashes=%d recoveries=%d violations=%d\n"
          r.Tdb_faultsim.Crashfuzz.boundaries r.Tdb_faultsim.Crashfuzz.crashpoints
          r.Tdb_faultsim.Crashfuzz.runs r.Tdb_faultsim.Crashfuzz.crashes r.Tdb_faultsim.Crashfuzz.recoveries
          (List.length r.Tdb_faultsim.Crashfuzz.violations));
    (match shard_tamper with
    | None -> ()
    | Some r ->
        Printf.printf "shard-tamper: flips=%d detected=%d harmless=%d silent=%d\n"
          r.Tdb_faultsim.Crashfuzz.flips r.Tdb_faultsim.Crashfuzz.detected
          r.Tdb_faultsim.Crashfuzz.harmless r.Tdb_faultsim.Crashfuzz.silent);
    Printf.printf "tamper: flips=%d detected=%d harmless=%d silent=%d\n" tamper.flips tamper.detected
      tamper.harmless tamper.silent;
    List.iter
      (fun v ->
        Printf.printf "VIOLATION %s %s: %s\n" v.Tdb_faultsim.Crashfuzz.v_run v.Tdb_faultsim.Crashfuzz.v_kind
          v.Tdb_faultsim.Crashfuzz.v_detail)
      (crash.violations @ gc_violations @ flush_violations @ demote_violations @ replica_violations
     @ shard_violations)
  end;
  let bad =
    (match
       crash.violations @ gc_violations @ flush_violations @ demote_violations @ replica_violations
       @ shard_violations
     with
    | [] -> false
    | _ :: _ -> true)
    || tamper.silent > 0
    || (match replica_tamper with None -> false | Some r -> r.Tdb_faultsim.Crashfuzz.silent > 0)
    || (match shard_tamper with None -> false | Some r -> r.Tdb_faultsim.Crashfuzz.silent > 0)
  in
  exit (if bad then 1 else 0)
