(* tdb — command-line administration for TDB databases on disk.

   A database lives in a directory holding the untrusted store ([db]), the
   emulated one-way counter ([counter]), the secret-store image ([secret])
   and the backup archive ([backups/]). *)

open Cmdliner

let dir_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Database directory.")

let open_db dir = Tdb.open_existing (Tdb.Device.at_dir dir)

let human_bytes n =
  if n > 1_048_576 then Printf.sprintf "%.2f MiB" (float_of_int n /. 1_048_576.)
  else if n > 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%d B" n

(* --- init --- *)

let init_cmd =
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"Partition the store into $(docv) shards, each with its own log, anchor and counter (default: \\$TDB_SHARDS or 1).")
  in
  let run dir shards =
    let device = Tdb.Device.at_dir ?shards dir in
    let db = Tdb.create device in
    let n = Tdb.Shard_store.shards db.Tdb.chunks in
    Tdb.close db;
    Printf.printf "initialized TDB database in %s (%d shard%s)\n" dir n (if n = 1 then "" else "s")
  in
  Cmd.v (Cmd.info "init" ~doc:"Create a fresh database (overwrites any existing one).")
    Term.(const run $ dir_arg $ shards)

(* --- status --- *)

let status_cmd =
  let run dir =
    let db = open_db dir in
    let cs = db.Tdb.chunks in
    let st = Tdb.Shard_store.stats cs in
    Printf.printf "database:     %s\n" dir;
    Printf.printf "security:     %s\n" (if Tdb.Shard_store.security_enabled cs then "on (encrypted, tamper-evident)" else "off");
    Printf.printf "live data:    %s\n" (human_bytes (Tdb.Shard_store.live_bytes cs));
    Printf.printf "capacity:     %s (utilization %.0f%%)\n"
      (human_bytes (Tdb.Shard_store.capacity cs))
      (100. *. Tdb.Shard_store.utilization cs);
    Printf.printf "store size:   %s\n" (human_bytes (Tdb.Shard_store.store_size cs));
    let n = Tdb.Shard_store.shards cs in
    if n > 1 then begin
      Printf.printf "shards:       %d (%d cross-shard commits of %d)\n" n
        (Tdb.Shard_store.cross_commits cs) (Tdb.Shard_store.txn_commits cs);
      let counters = Tdb.Shard_store.shard_counters cs
      and seqs = Tdb.Shard_store.shard_seqs cs
      and sizes = Tdb.Shard_store.shard_sizes cs in
      Array.iteri
        (fun s c ->
          Printf.printf "  shard %d:    counter %Ld, log tail seq %d, %s on disk\n" s c seqs.(s)
            (human_bytes sizes.(s)))
        counters;
      Printf.printf "counter:      %Ld (sum of shard counters)\n" (Tdb.Shard_store.counter_value cs)
    end
    else Printf.printf "counter:      %Ld\n" (Tdb.One_way_counter.read db.Tdb.device.Tdb.Device.counter);
    Printf.printf "backups:      %s\n"
      (match Tdb.Archival_store.list db.Tdb.device.Tdb.Device.archive with
      | [] -> "(none)"
      | l -> String.concat ", " l);
    (let bid = st.Tdb.Chunk_store.backup_last_id in
     Printf.printf "backup chain: %s\n"
       (if bid = 0 then "(none)"
        else
          Printf.sprintf "#%d, chain %s%s" bid
            (String.sub (Tdb.Crypto.Hex.of_string st.Tdb.Chunk_store.backup_chain) 0 12)
            (if st.Tdb.Chunk_store.backup_base_snapshot >= 0 then ""
             else " (follower: applied, not emitted)")));
    Printf.printf "session:      %d commits, %d checkpoints, %d cleaning passes\n" st.Tdb.Chunk_store.commits
      st.Tdb.Chunk_store.checkpoints st.Tdb.Chunk_store.clean_passes;
    (let tiers = (Tdb.Shard_store.config cs).Tdb.Chunk_config.tiers in
     Printf.printf "cleaner:      %d tier%s [%s], %d segments cleaned, %d chunks (%s) relocated\n" tiers
       (if tiers > 1 then "s" else "")
       (String.concat " " (List.map string_of_int st.Tdb.Chunk_store.tier_segments))
       st.Tdb.Chunk_store.segments_cleaned st.Tdb.Chunk_store.chunks_relocated
       (human_bytes st.Tdb.Chunk_store.bytes_relocated));
    let ch = st.Tdb.Chunk_store.cache_hits and cm = st.Tdb.Chunk_store.cache_misses in
    let sum f = Array.fold_left (fun acc s -> acc + f (Tdb.Shard_store.shard_store cs s)) 0 (Array.init n Fun.id) in
    Printf.printf "chunk cache:  %s of %s (%d chunks), %d hits / %d misses%s, %d evictions\n"
      (human_bytes (sum Tdb.Chunk_store.cache_bytes))
      (human_bytes (sum Tdb.Chunk_store.cache_budget))
      (sum Tdb.Chunk_store.cache_resident) ch cm
      (if ch + cm > 0 then Printf.sprintf " (%.0f%% hit)" (100. *. float_of_int ch /. float_of_int (ch + cm)) else "")
      st.Tdb.Chunk_store.cache_evictions;
    Printf.printf "parallelism:  %d domains, %d pool batches (%d tasks), %.1f ms waited\n"
      (Tdb.Shard_store.domains cs) st.Tdb.Chunk_store.par_batches st.Tdb.Chunk_store.par_tasks
      (float_of_int st.Tdb.Chunk_store.par_wait_ns /. 1e6);
    Tdb.close db
  in
  Cmd.v (Cmd.info "status" ~doc:"Open a database (running recovery + tamper checks) and print its state.")
    Term.(const run $ dir_arg)

(* --- verify --- *)

let verify_cmd =
  let run dir =
    match
      let db = open_db dir in
      (* walk every chunk through the Merkle tree *)
      let snap = Tdb.Shard_store.snapshot db.Tdb.chunks in
      let n =
        Tdb.Shard_store.fold_snapshot db.Tdb.chunks snap ~init:0 ~f:(fun acc _cid _data -> acc + 1)
      in
      Tdb.Shard_store.release_snapshot db.Tdb.chunks snap;
      Tdb.close db;
      n
    with
    | n ->
        Printf.printf "OK: %d chunks validated against the Merkle tree, anchor and counter\n" n
    | exception Tdb.Tamper_detected msg ->
        Printf.printf "TAMPER DETECTED: %s\n" msg;
        exit 2
    | exception Tdb.Chunk_store.Recovery_failed msg ->
        Printf.printf "UNRECOVERABLE: %s\n" msg;
        exit 2
  in
  Cmd.v (Cmd.info "verify" ~doc:"Validate every chunk in the database against its hash tree.")
    Term.(const run $ dir_arg)

(* --- clean --- *)

let clean_cmd =
  let run dir =
    let db = open_db dir in
    let before = Tdb.Shard_store.capacity db.Tdb.chunks in
    Tdb.idle_maintenance db;
    let after = Tdb.Shard_store.capacity db.Tdb.chunks in
    Printf.printf "cleaned: capacity %s -> %s\n" (human_bytes before) (human_bytes after);
    Tdb.close db
  in
  Cmd.v (Cmd.info "clean" ~doc:"Run idle-time log cleaning.") Term.(const run $ dir_arg)

(* --- backup --- *)

let backup_cmd =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Force a full backup (default: incremental).") in
  let run dir full =
    let db = open_db dir in
    let id = if full then Tdb.backup_full db else Tdb.backup_incremental db in
    Printf.printf "backup #%d written to %s/backups\n" id dir;
    Tdb.close db
  in
  Cmd.v (Cmd.info "backup" ~doc:"Create a backup in the database's archival store.")
    Term.(const run $ dir_arg $ full)

(* --- restore --- *)

let restore_cmd =
  let src = Arg.(required & pos 0 (some string) None & info [] ~docv:"FROM" ~doc:"Source database directory (its backups/ archive is read).") in
  let dst = Arg.(required & pos 1 (some string) None & info [] ~docv:"TO" ~doc:"Destination directory for the restored database.") in
  let upto = Arg.(value & opt (some int) None & info [ "upto" ] ~docv:"N" ~doc:"Restore only up to backup N (point-in-time).") in
  let run src dst upto =
    (* the restored database must live under the same secret as the source:
       copy the key file before the destination device materializes one *)
    if not (Sys.file_exists dst) then Unix.mkdir dst 0o700;
    let src_key = Filename.concat src "secret" and dst_key = Filename.concat dst "secret" in
    if Sys.file_exists src_key && not (Sys.file_exists dst_key) then begin
      let ic = open_in_bin src_key in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600 dst_key in
      output_string oc data;
      close_out oc
    end;
    let from = Tdb.Device.at_dir src in
    let target = Tdb.Device.at_dir dst in
    match Tdb.restore ?upto ~from target with
    | db ->
        Printf.printf "restored into %s\n" dst;
        Tdb.close db
    | exception Tdb.Backup_store.Invalid_backup msg ->
        Printf.printf "restore refused: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "restore" ~doc:"Restore a database from validated backups (newest, or --upto N).")
    Term.(const run $ src $ dst $ upto)

(* --- client mode: talk to a running tdb_server --- *)

let addr_term =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc:"Connect to a Unix-domain socket at $(docv).")
  in
  let port =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc:"Connect to TCP $(docv).")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Numeric address for --port.")
  in
  let build socket port host =
    match (socket, port) with
    | Some path, None -> `Ok (Tdb.Server.Unix_path path)
    | None, Some p -> `Ok (Tdb.Server.Tcp (host, p))
    | None, None -> `Error (false, "one of --socket or --port is required")
    | Some _, Some _ -> `Error (false, "--socket and --port are mutually exclusive")
  in
  Term.(ret (const build $ socket $ port $ host))

let with_client addr f =
  match Tdb.Client.connect addr with
  | c ->
      Fun.protect ~finally:(fun () -> Tdb.Client.close c) (fun () -> f c)
  | exception Unix.Unix_error (e, _, _) ->
      Printf.printf "cannot connect: %s\n" (Unix.error_message e);
      exit 2

let remote_status_cmd =
  let run addr =
    with_client addr (fun c ->
        let s = Tdb.Client.stats c in
        Printf.printf "sessions:        %d live, %d total\n" s.Tdb.Proto.s_sessions s.Tdb.Proto.s_sessions_total;
        Printf.printf "transactions:    %d committed, %d aborted\n" s.Tdb.Proto.s_committed s.Tdb.Proto.s_aborted;
        Printf.printf "chunk commits:   %d (%d durable)\n" s.Tdb.Proto.s_commits s.Tdb.Proto.s_durable_commits;
        Printf.printf "one-way counter: %Ld\n" s.Tdb.Proto.s_counter;
        Printf.printf "group commit:    %d barriers covering %d commits\n" s.Tdb.Proto.s_gc_batches
          s.Tdb.Proto.s_gc_coalesced;
        let ch = s.Tdb.Proto.s_cache_hits and cm = s.Tdb.Proto.s_cache_misses in
        Printf.printf "chunk cache:     %d hits / %d misses%s, %d evictions\n" ch cm
          (if ch + cm > 0 then Printf.sprintf " (%.0f%% hit)" (100. *. float_of_int ch /. float_of_int (ch + cm)) else "")
          s.Tdb.Proto.s_cache_evictions;
        Printf.printf "parallelism:     %d domains, %d pool batches (%d tasks), %.1f ms waited\n"
          s.Tdb.Proto.s_domains s.Tdb.Proto.s_par_batches s.Tdb.Proto.s_par_tasks
          (float_of_int s.Tdb.Proto.s_par_wait_us /. 1e3);
        Printf.printf "cleaner:         %d tier%s [%s], %d passes, %d segments cleaned, %s relocated%s\n"
          s.Tdb.Proto.s_tiers
          (if s.Tdb.Proto.s_tiers > 1 then "s" else "")
          (String.concat " " (List.map string_of_int s.Tdb.Proto.s_tier_segments))
          s.Tdb.Proto.s_clean_passes s.Tdb.Proto.s_segments_cleaned
          (human_bytes s.Tdb.Proto.s_bytes_relocated)
          (if s.Tdb.Proto.s_bytes_data > s.Tdb.Proto.s_bytes_relocated then
             Printf.sprintf " (write amp %.2f)"
               (float_of_int s.Tdb.Proto.s_bytes_relocated
               /. float_of_int (s.Tdb.Proto.s_bytes_data - s.Tdb.Proto.s_bytes_relocated))
           else "");
        Printf.printf "backup chain:    %s\n"
          (if s.Tdb.Proto.s_backup_last_id = 0 then "(none)"
           else
             Printf.sprintf "#%d, chain %s" s.Tdb.Proto.s_backup_last_id
               (String.sub (Tdb.Crypto.Hex.of_string s.Tdb.Proto.s_backup_chain) 0 12));
        if s.Tdb.Proto.s_shards > 1 then begin
          Printf.printf "shards:          %d (%d cross-shard commits of %d durable)\n"
            s.Tdb.Proto.s_shards s.Tdb.Proto.s_cross_commits s.Tdb.Proto.s_durable_commits;
          let seqs = Array.of_list s.Tdb.Proto.s_shard_seqs
          and sizes = Array.of_list s.Tdb.Proto.s_shard_sizes
          and barriers = Array.of_list s.Tdb.Proto.s_shard_barriers in
          let nth a i = if i < Array.length a then a.(i) else 0 in
          List.iteri
            (fun i ctr ->
              Printf.printf "  shard %d:       counter %Ld, log tail seq %d, %s on disk, %d barriers\n"
                i ctr (nth seqs i)
                (human_bytes (nth sizes i))
                (nth barriers i))
            s.Tdb.Proto.s_shard_counters
        end)
  in
  Cmd.v
    (Cmd.info "remote-status" ~doc:"Print a running server's session, commit and group-commit counters.")
    Term.(const run $ addr_term)

(* Remote point-in-time restore: pull the archive off a running server
   and rebuild a local database from it. The streams are opaque sealed
   frames — everything is re-verified locally under the operator's copy
   of the device secret, so neither the server nor the wire is trusted. *)
let remote_restore_cmd =
  let dst = Arg.(required & pos 0 (some string) None & info [] ~docv:"TO" ~doc:"Destination directory for the restored database.") in
  let upto = Arg.(value & opt (some int) None & info [ "upto" ] ~docv:"N" ~doc:"Restore only up to backup N (point-in-time).") in
  let secret =
    Arg.(value & opt (some string) None & info [ "secret" ] ~docv:"PATH"
           ~doc:"Device secret file matching the server's (copied to TO/secret). The fetched streams are sealed under it; without the matching key the restore fails verification.")
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"Shard width for the restored database (default: \\$TDB_SHARDS or 1; need not match the server's).")
  in
  let run addr dst upto secret shards =
    if not (Sys.file_exists dst) then Unix.mkdir dst 0o700;
    (match secret with
    | None -> ()
    | Some src_key ->
        let dst_key = Filename.concat dst "secret" in
        if not (Sys.file_exists dst_key) then begin
          let ic = open_in_bin src_key in
          let data = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600 dst_key in
          output_string oc data;
          close_out oc
        end);
    let fetched =
      with_client addr (fun c ->
          match Tdb.Client.list_backups c with
          | index ->
              let index =
                match upto with None -> index | Some n -> List.filter (fun (id, _) -> id <= n) index
              in
              List.map (fun (id, name) -> (id, name, Tdb.Client.fetch_backup c ~name)) index
          | exception Tdb.Client.Server_error { tag; msg } ->
              Printf.printf "server refused: %s (%s)\n" msg tag;
              exit 2)
    in
    (match fetched with
    | [] ->
        Printf.printf "no backups on the server%s\n"
          (match upto with None -> "" | Some n -> Printf.sprintf " at or below #%d" n);
        exit 2
    | _ :: _ -> ());
    (* stage the streams into TO/backups so the local validated-restore
       path (full + chained incrementals) runs over them unchanged *)
    let bdir = Filename.concat dst "backups" in
    if not (Sys.file_exists bdir) then Unix.mkdir bdir 0o700;
    List.iter
      (fun (_, name, stream) ->
        let oc =
          open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600
            (Filename.concat bdir (Filename.basename name))
        in
        output_string oc stream;
        close_out oc)
      fetched;
    let device = Tdb.Device.at_dir ?shards dst in
    match Tdb.restore ?upto ~from:device device with
    | db ->
        Printf.printf "fetched %d stream%s; restored into %s\n" (List.length fetched)
          (match fetched with [ _ ] -> "" | _ -> "s")
          dst;
        Tdb.close db
    | exception Tdb.Backup_store.Invalid_backup msg ->
        Printf.printf "restore refused: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "remote-restore"
       ~doc:"Fetch a running server's backup archive and restore it locally (newest, or --upto N).")
    Term.(const run $ addr_term $ dst $ upto $ secret $ shards)

let remote_balance_cmd =
  let account = Arg.(required & pos 0 (some int) None & info [] ~docv:"ACCOUNT" ~doc:"Account id.") in
  let run addr account =
    with_client addr (fun c ->
        Tdb.Client.with_txn ~durable:false c (fun () ->
            match
              Tdb.Client.coll_find c ~coll:"account" ~index:"id" Tdb.Gkey.int account
                Tdb_tpcb.Workload.account_cls
            with
            | Some (oid, r) ->
                Printf.printf "account %d (oid %d): balance %d\n" account oid r.Tdb_tpcb.Workload.balance
            | None ->
                Printf.printf "no account %d\n" account;
                exit 1))
  in
  Cmd.v
    (Cmd.info "remote-balance" ~doc:"Look up an account balance on a running server (demo schema).")
    Term.(const run $ addr_term $ account)

(* A bounded TPC-B load driver against a running server's demo schema —
   what the CI end-to-end replication job drives the primary with. *)
let remote_tpcb_cmd =
  let txns = Arg.(value & opt int 100 & info [ "txns" ] ~docv:"N" ~doc:"Transactions to commit durably.") in
  let setup = Arg.(value & flag & info [ "setup" ] ~doc:"Create the demo records first (nondurable bulk load).") in
  let accounts = Arg.(value & opt int 100 & info [ "accounts" ] ~docv:"N" ~doc:"Accounts (with --setup).") in
  let seed = Arg.(value & opt string "cli-tpcb" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic input seed.") in
  let run addr txns setup accounts seed =
    let scale =
      { Tdb_tpcb.Workload.quick_scale with
        Tdb_tpcb.Workload.accounts;
        tellers = max 1 (accounts / 10);
        branches = max 1 (accounts / 20);
      }
    in
    with_client addr (fun c ->
        if setup then
          Tdb.Client.with_txn ~durable:false c (fun () ->
              let load coll cls n =
                for id = 0 to n - 1 do
                  ignore
                    (Tdb.Client.coll_insert c ~coll cls (Tdb_tpcb.Workload.make_record ~id ~balance:0))
                done
              in
              load "account" Tdb_tpcb.Workload.account_cls scale.Tdb_tpcb.Workload.accounts;
              load "teller" Tdb_tpcb.Workload.teller_cls scale.Tdb_tpcb.Workload.tellers;
              load "branch" Tdb_tpcb.Workload.branch_cls scale.Tdb_tpcb.Workload.branches);
        let rng = Tdb.Crypto.Drbg.create ~seed in
        let retries = ref 0 in
        for j = 0 to txns - 1 do
          let input = Tdb_tpcb.Workload.gen_txn rng scale in
          let rec attempt () =
            match
              Tdb.Client.begin_ c;
              let add coll cls id delta =
                ignore
                  (Tdb.Client.coll_mutate c ~coll ~index:"id" ~mutation:"add" Tdb.Gkey.int id cls
                     ~arg:(fun w -> Tdb.Pickle.int w delta))
              in
              add "account" Tdb_tpcb.Workload.account_cls input.Tdb_tpcb.Workload.account
                input.Tdb_tpcb.Workload.delta;
              add "teller" Tdb_tpcb.Workload.teller_cls input.Tdb_tpcb.Workload.teller
                input.Tdb_tpcb.Workload.delta;
              add "branch" Tdb_tpcb.Workload.branch_cls input.Tdb_tpcb.Workload.branch
                input.Tdb_tpcb.Workload.delta;
              ignore
                (Tdb.Client.coll_insert c ~coll:"history" Tdb_tpcb.Workload.history_cls
                   (Tdb_tpcb.Workload.make_history ~h_id:j ~input));
              Tdb.Client.commit ~durable:true c
            with
            | () -> ()
            | exception Tdb.Client.Server_error { tag; msg = _ } when String.equal tag "lock_timeout" ->
                incr retries;
                attempt ()
          in
          attempt ()
        done;
        Printf.printf "committed %d TPC-B transactions (%d lock-timeout retries)\n" txns !retries)
  in
  Cmd.v
    (Cmd.info "remote-tpcb" ~doc:"Drive bounded TPC-B transactions against a running server (demo schema).")
    Term.(const run $ addr_term $ txns $ setup $ accounts $ seed)

(* Balance sums + history size: a cheap whole-database digest for
   comparing a primary and its replication follower. *)
let remote_sum_cmd =
  let run addr =
    with_client addr (fun c ->
        Tdb.Client.with_txn ~durable:false c (fun () ->
            let sum coll cls =
              List.fold_left
                (fun acc (_, r) -> acc + r.Tdb_tpcb.Workload.balance)
                0
                (Tdb.Client.coll_scan c ~coll ~index:"id" Tdb.Gkey.int cls)
            in
            Printf.printf "account %d teller %d branch %d history %d\n"
              (sum "account" Tdb_tpcb.Workload.account_cls)
              (sum "teller" Tdb_tpcb.Workload.teller_cls)
              (sum "branch" Tdb_tpcb.Workload.branch_cls)
              (Tdb.Client.coll_size c ~coll:"history")))
  in
  Cmd.v
    (Cmd.info "remote-sum"
       ~doc:"Print balance sums and history size (demo schema) — a digest to compare replicas with.")
    Term.(const run $ addr_term)

let () =
  let doc = "TDB: a trusted database system for Digital Rights Management" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "tdb" ~doc ~version:"0.1.0")
          [ init_cmd; status_cmd; verify_cmd; clean_cmd; backup_cmd; restore_cmd;
            remote_status_cmd; remote_restore_cmd; remote_balance_cmd; remote_tpcb_cmd;
            remote_sum_cmd ]))
