(** tdb_lint — static analysis over TDB's own sources, enforcing the
    trust invariants the paper's security argument depends on.

    Usage: [tdb_lint [--root DIR] [--allow FILE] [DIR ...]]

    Lints every [.ml] under the given directories (default [lib]),
    prints violations as [file:line: [RULE] message], and exits nonzero
    if any survive the allowlist — or if the allowlist itself has stale
    entries. Run it via [dune build @lint]. *)

module Engine = Tdb_lint_engine.Engine
module Allowlist = Tdb_lint_engine.Allowlist
module Driver = Tdb_lint_engine.Driver

let usage = "usage: tdb_lint [--root DIR] [--allow FILE] [DIR ...]"

let () =
  let root = ref "." in
  let allow = ref "" in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root the lint paths are relative to (default .)");
      ("--allow", Arg.Set_string allow, "FILE allowlist of file:line:RULE suppressions");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = match List.rev !dirs with [] -> [ "lib" ] | ds -> ds in
  match
    let report = Driver.scan ~root:!root dirs in
    let entries = if String.equal !allow "" then [] else Allowlist.load !allow in
    (report, entries)
  with
  | exception Failure msg ->
      Printf.eprintf "tdb_lint: %s\n" msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "tdb_lint: %s\n" msg;
      exit 2
  | { Driver.files_checked; violations }, entries ->
      let kept, stale = Allowlist.filter entries violations in
      List.iter
        (fun v ->
          Printf.printf "%s:%d: [%s] %s\n" v.Engine.v_file v.Engine.v_line
            (Engine.rule_id v.Engine.v_rule) v.Engine.v_msg)
        kept;
      List.iter
        (fun (e : Allowlist.entry) ->
          Printf.eprintf "tdb_lint: stale allowlist entry at %s: %s:%d:%s matches nothing\n"
            e.Allowlist.a_source e.Allowlist.a_file e.Allowlist.a_line (Engine.rule_id e.Allowlist.a_rule))
        stale;
      Printf.eprintf "tdb_lint: %d file(s), %d violation(s), %d allowlisted, %d stale allow entr(ies)\n"
        files_checked (List.length kept)
        (List.length violations - List.length kept)
        (List.length stale);
      (match (kept, stale) with [], [] -> exit 0 | _ -> exit 1)
