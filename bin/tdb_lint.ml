(** tdb_lint — static analysis over TDB's own sources, enforcing the
    trust invariants the paper's security argument depends on.

    Usage: [tdb_lint [--root DIR] [--allow FILE] [--refresh-allow]
                     [--json FILE] [--dot FILE] [DIR ...]]

    Lints every [.ml] under the given directories (default [lib]) with
    the syntactic rules R1-R5 and the interprocedural analyses R6
    (secret taint) and R7 (lock discipline), prints violations as
    [file:line: [RULE] message], and exits nonzero if any survive the
    allowlist — or if the allowlist itself has stale entries.

    [--refresh-allow] instead rewrites the allowlist in place,
    re-pointing entries whose line numbers drifted at the nearest
    surviving violation of the same file and rule (justification
    comments preserved) and failing if any entry matches nothing.

    [--json FILE] writes a machine-readable report (per-rule counts,
    call-graph and lock-graph sizes); [--dot FILE] writes the lock-order
    graph in Graphviz format. CI uploads both as build artifacts.

    Run the lint itself via [dune build @lint]. *)

module Engine = Tdb_lint_engine.Engine
module Allowlist = Tdb_lint_engine.Allowlist
module Driver = Tdb_lint_engine.Driver

let usage =
  "usage: tdb_lint [--root DIR] [--allow FILE] [--refresh-allow] [--json FILE] [--dot FILE] [DIR \
   ...]"

let all_rules = [ Engine.R1; R2; R3; R4; R5; R6; R7 ]

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json file (report : Driver.report) ~kept ~allowlisted ~stale =
  let count rule vs = List.length (List.filter (fun v -> Engine.rule_equal v.Engine.v_rule rule) vs) in
  let rule_counts vs =
    String.concat ", "
      (List.map (fun r -> Printf.sprintf "\"%s\": %d" (Engine.rule_id r) (count r vs)) all_rules)
  in
  let lock_edges =
    String.concat ", "
      (List.map
         (fun (a, b) -> Printf.sprintf "[\"%s\", \"%s\"]" (json_escape a) (json_escape b))
         report.Driver.stats.Driver.st_lock_edges)
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"files_checked\": %d,\n\
        \  \"definitions\": %d,\n\
        \  \"call_edges\": %d,\n\
        \  \"violations_total\": {%s},\n\
        \  \"violations_kept\": {%s},\n\
        \  \"allowlisted\": %d,\n\
        \  \"stale_allow_entries\": %d,\n\
        \  \"lock_order_edges\": [%s]\n\
         }\n"
        report.Driver.files_checked report.Driver.stats.Driver.st_defs
        report.Driver.stats.Driver.st_call_edges
        (rule_counts report.Driver.violations)
        (rule_counts kept) allowlisted stale lock_edges)

let write_dot file (report : Driver.report) =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "digraph lock_order {\n";
      List.iter
        (fun (a, b) -> Printf.fprintf oc "  \"%s\" -> \"%s\";\n" a b)
        report.Driver.stats.Driver.st_lock_edges;
      output_string oc "}\n")

let () =
  let root = ref "." in
  let allow = ref "" in
  let refresh = ref false in
  let json = ref "" in
  let dot = ref "" in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root the lint paths are relative to (default .)");
      ("--allow", Arg.Set_string allow, "FILE allowlist of file:line:RULE suppressions");
      ( "--refresh-allow",
        Arg.Set refresh,
        " rewrite the allowlist, re-pointing drifted line numbers (requires --allow)" );
      ("--json", Arg.Set_string json, "FILE write a machine-readable lint report");
      ("--dot", Arg.Set_string dot, "FILE write the lock-order graph (Graphviz)");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = match List.rev !dirs with [] -> [ "lib" ] | ds -> ds in
  if !refresh && String.equal !allow "" then begin
    prerr_endline "tdb_lint: --refresh-allow requires --allow FILE";
    exit 2
  end;
  match Driver.scan ~root:!root dirs with
  | exception Failure msg ->
      Printf.eprintf "tdb_lint: %s\n" msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "tdb_lint: %s\n" msg;
      exit 2
  | report when !refresh -> (
      match Allowlist.refresh !allow report.Driver.violations with
      | exception Failure msg ->
          Printf.eprintf "tdb_lint: %s\n" msg;
          exit 2
      | { Allowlist.r_lines; r_updated; r_unmatched } ->
          let oc = open_out !allow in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> List.iter (fun l -> Printf.fprintf oc "%s\n" l) r_lines);
          List.iter
            (fun (e : Allowlist.entry) ->
              Printf.eprintf
                "tdb_lint: allowlist entry at %s (%s:%d:%s) matches no violation — delete it or \
                 fix the path/rule\n"
                e.Allowlist.a_source e.Allowlist.a_file e.Allowlist.a_line
                (Engine.rule_id e.Allowlist.a_rule))
            r_unmatched;
          Printf.eprintf "tdb_lint: refreshed %s: %d entr(ies) re-pointed, %d unmatched\n" !allow
            r_updated (List.length r_unmatched);
          exit (if r_unmatched = [] then 0 else 1))
  | report ->
      let entries = if String.equal !allow "" then [] else Allowlist.load !allow in
      let kept, stale = Allowlist.filter entries report.Driver.violations in
      if not (String.equal !json "") then
        write_json !json report ~kept
          ~allowlisted:(List.length report.Driver.violations - List.length kept)
          ~stale:(List.length stale);
      if not (String.equal !dot "") then write_dot !dot report;
      List.iter
        (fun v ->
          Printf.printf "%s:%d: [%s] %s\n" v.Engine.v_file v.Engine.v_line
            (Engine.rule_id v.Engine.v_rule) v.Engine.v_msg)
        kept;
      List.iter
        (fun (e : Allowlist.entry) ->
          Printf.eprintf "tdb_lint: stale allowlist entry at %s: %s:%d:%s matches nothing\n"
            e.Allowlist.a_source e.Allowlist.a_file e.Allowlist.a_line
            (Engine.rule_id e.Allowlist.a_rule))
        stale;
      Printf.eprintf
        "tdb_lint: %d file(s), %d def(s), %d call edge(s), %d lock edge(s), %d violation(s), %d \
         allowlisted, %d stale allow entr(ies)\n"
        report.Driver.files_checked report.Driver.stats.Driver.st_defs
        report.Driver.stats.Driver.st_call_edges
        (List.length report.Driver.stats.Driver.st_lock_edges)
        (List.length kept)
        (List.length report.Driver.violations - List.length kept)
        (List.length stale);
      (match (kept, stale) with [], [] -> exit 0 | _ -> exit 1)
