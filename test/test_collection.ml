(* Collection store tests: functional indexes over B-tree / hash / list,
   queries, insensitive iterators, deferred index maintenance, uniqueness
   enforcement, schema ops. Mirrors paper Section 5 (Figure 7 scenario). *)

open Tdb_platform
open Tdb_chunk
open Tdb_objstore
open Tdb_collection

let cfg =
  { Config.default with Config.segment_size = 16384; initial_segments = 8; checkpoint_every = 128;
    anchor_slot_size = 4096 }

(* The paper's modified Meter class (Figure 7): unique id + usage counts. *)
type meter = { mutable id : int; mutable view_count : int; mutable print_count : int }

let meter_cls : meter Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Obj_class.define ~name:"ctest.meter"
    ~pickle:(fun w m ->
      P.int w m.id;
      P.int w m.view_count;
      P.int w m.print_count)
    ~unpickle:(fun ~version:_ r ->
      let id = P.read_int r in
      let view_count = P.read_int r in
      let print_count = P.read_int r in
      { id; view_count; print_count })
    ()

let id_ix ?(impl = Indexer.Hash) () =
  Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun m -> m.id) ~unique:true ~impl ()

(* functional index on a *derived* value, as in Figure 7 *)
let usage_ix ?(impl = Indexer.Btree) () =
  Indexer.make ~name:"usage" ~key:Gkey.int ~extract:(fun m -> m.view_count + m.print_count) ~impl ()

type env = { mem : Untrusted_store.Mem.handle; store : Untrusted_store.t; secret : Secret_store.t; ctr : One_way_counter.t }

let fresh_env () =
  let mem, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  { mem; store; secret = Secret_store.of_seed "ctest"; ctr }

let fresh env =
  Object_store.of_chunk_store (Chunk_store.create ~config:cfg ~secret:env.secret ~counter:env.ctr env.store)

let reopen env =
  Object_store.of_chunk_store (Chunk_store.open_existing ~config:cfg ~secret:env.secret ~counter:env.ctr env.store)

let setup ?(n = 10) ?(id_impl = Indexer.Hash) () =
  let env = fresh_env () in
  let os = fresh env in
  let ct = Cstore.begin_ os in
  let c = Cstore.create_collection ct ~name:"profile" ~schema:meter_cls (id_ix ~impl:id_impl ()) in
  Cstore.create_index ct c (usage_ix ());
  for i = 0 to n - 1 do
    ignore (Cstore.insert ct c { id = i; view_count = i; print_count = 0 })
  done;
  Cstore.commit ct;
  (env, os)

let collect it =
  let acc = ref [] in
  while not (Cstore.at_end it) do
    acc := Cstore.read it :: !acc;
    Cstore.advance it
  done;
  Cstore.close it;
  List.rev !acc

(* --- basics --- *)

let test_insert_and_exact () =
  let _, os = setup () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let it = Cstore.exact ct c (id_ix ()) 7 in
  let ms = collect it in
  Alcotest.(check int) "one hit" 1 (List.length ms);
  Alcotest.(check int) "right object" 7 (List.hd ms).id;
  let it2 = Cstore.exact ct c (id_ix ()) 999 in
  Alcotest.(check int) "no hit" 0 (List.length (collect it2));
  Cstore.commit ct

let test_scan_btree_in_key_order () =
  let _, os = setup ~n:50 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let usages = List.map (fun m -> m.view_count + m.print_count) (collect (Cstore.scan ct c (usage_ix ()))) in
  Alcotest.(check int) "all" 50 (List.length usages);
  Alcotest.(check bool) "sorted" true (List.sort compare usages = usages);
  Cstore.commit ct

let test_range_query () =
  let _, os = setup ~n:30 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let ms = collect (Cstore.range ct c (usage_ix ()) ~min:(Some 10) ~max:(Some 19)) in
  Alcotest.(check int) "inclusive range" 10 (List.length ms);
  List.iter (fun m -> Alcotest.(check bool) "in range" true (m.view_count >= 10 && m.view_count <= 19)) ms;
  (* open-ended ranges *)
  Alcotest.(check int) "min open" 20 (List.length (collect (Cstore.range ct c (usage_ix ()) ~min:None ~max:(Some 19))));
  Alcotest.(check int) "max open" 10 (List.length (collect (Cstore.range ct c (usage_ix ()) ~min:(Some 20) ~max:None)));
  Cstore.commit ct

let test_range_on_hash_unsupported () =
  let _, os = setup () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  Alcotest.(check bool) "raises" true
    (match Cstore.range ct c (id_ix ()) ~min:(Some 1) ~max:(Some 2) with
    | exception Index.Unsupported_query _ -> true
    | _ -> false);
  Cstore.abort ct

let test_unique_violation_on_insert () =
  let _, os = setup () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let size_before = Cstore.size ct c in
  Alcotest.(check bool) "duplicate id rejected" true
    (match Cstore.insert ct c { id = 3; view_count = 0; print_count = 0 } with
    | exception Index.Duplicate_key { index = "id"; _ } -> true
    | _ -> false);
  Alcotest.(check int) "collection unchanged" size_before (Cstore.size ct c);
  (* the rejected object is fully gone: its usage key is not in the index *)
  let ms = collect (Cstore.exact ct c (usage_ix ()) 0) in
  Alcotest.(check int) "no phantom entries" 1 (List.length ms);
  Cstore.commit ct

(* --- iterator update semantics (Figure 7: reset all counters >= 100) --- *)

let test_update_via_iterator_moves_index () =
  let _, os = setup ~n:5 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  (* bump meter 2's usage to 100 via iterator *)
  let it = Cstore.exact ct c (id_ix ()) 2 in
  let m = Cstore.write it in
  m.view_count <- 100;
  Cstore.advance it;
  Cstore.close it;
  (* after close, the usage index reflects the new derived key *)
  let hits = collect (Cstore.exact ct c (usage_ix ()) 100) in
  Alcotest.(check int) "new key present" 1 (List.length hits);
  Alcotest.(check int) "old key gone" 0 (List.length (collect (Cstore.exact ct c (usage_ix ()) 2)));
  Cstore.commit ct

let test_iterator_insensitive () =
  (* Halloween protection: updating the key being iterated must not change
     the iteration (paper Section 5.2.2). *)
  let _, os = setup ~n:10 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let it = Cstore.range ct c (usage_ix ()) ~min:(Some 0) ~max:None in
  let seen = ref 0 in
  while not (Cstore.at_end it) do
    let m = Cstore.write it in
    (* push every key upward — with a sensitive iterator this never ends *)
    m.view_count <- m.view_count + 1000;
    incr seen;
    Cstore.advance it
  done;
  Cstore.close it;
  Alcotest.(check int) "each object enumerated exactly once" 10 !seen;
  Cstore.commit ct

let test_updates_invisible_until_close () =
  let _, os = setup ~n:3 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let it = Cstore.exact ct c (id_ix ()) 1 in
  let m = Cstore.write it in
  m.view_count <- 500;
  (* before close: the usage index still finds the object under the old key *)
  Cstore.advance it;
  Cstore.close it;
  let it2 = Cstore.exact ct c (usage_ix ()) 500 in
  Alcotest.(check int) "visible after close" 1 (List.length (collect it2));
  Cstore.commit ct

let test_concurrent_iterators_blocked_on_write () =
  let _, os = setup () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let it1 = Cstore.scan ct c (usage_ix ()) in
  let it2 = Cstore.scan ct c (usage_ix ()) in
  (* two read iterators are fine *)
  ignore (Cstore.read it1);
  ignore (Cstore.read it2);
  (* writable deref with another iterator open violates constraint 2 *)
  Alcotest.(check bool) "write blocked" true
    (match Cstore.write it1 with exception Cstore.Concurrent_iterators -> true | _ -> false);
  Cstore.close it2;
  (* now allowed *)
  let m = Cstore.write it1 in
  m.print_count <- m.print_count + 1;
  Cstore.advance it1;
  Cstore.close it1;
  Cstore.commit ct

let test_delete_via_iterator () =
  let _, os = setup ~n:6 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let it = Cstore.scan ct c (usage_ix ()) in
  (* delete meters with even usage *)
  while not (Cstore.at_end it) do
    let m = Cstore.read it in
    if m.view_count mod 2 = 0 then Cstore.delete it;
    Cstore.advance it
  done;
  Cstore.close it;
  Alcotest.(check int) "half deleted" 3 (Cstore.size ct c);
  Alcotest.(check int) "scan agrees" 3 (List.length (collect (Cstore.scan ct c (usage_ix ()))));
  Alcotest.(check int) "hash index agrees" 0 (List.length (collect (Cstore.exact ct c (id_ix ()) 2)));
  Cstore.commit ct

let test_unique_violation_at_close_removes_object () =
  (* deferred maintenance surfaces duplicates only at close; the violator
     is removed and reported so the app can re-integrate it *)
  let env = fresh_env () in
  let os = fresh env in
  let ct = Cstore.begin_ os in
  let c = Cstore.create_collection ct ~name:"u" ~schema:meter_cls (id_ix ()) in
  let _o1 = Cstore.insert ct c { id = 1; view_count = 0; print_count = 0 } in
  let o2 = Cstore.insert ct c { id = 2; view_count = 0; print_count = 0 } in
  let it = Cstore.exact ct c (id_ix ()) 2 in
  let m = Cstore.write it in
  m.view_count <- 77;
  (* collides with object 1 in the unique id index *)
  let m = Cstore.write it in
  ignore m;
  (Cstore.write it).id <- 1;
  Cstore.advance it;
  (match Cstore.close it with
  | () -> Alcotest.fail "expected Unique_violation"
  | exception Cstore.Unique_violation { index = "id"; removed } ->
      Alcotest.(check (list int)) "violator removed" [ o2 ] removed);
  Alcotest.(check int) "collection shrank" 1 (Cstore.size ct c);
  (* object 1 still findable and intact *)
  Alcotest.(check int) "survivor" 1 (List.length (collect (Cstore.exact ct c (id_ix ()) 1)));
  Cstore.commit ct

(* --- index management --- *)

let test_create_index_on_nonempty_and_remove () =
  let _, os = setup ~n:20 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let view_ix = Indexer.make ~name:"views" ~key:Gkey.int ~extract:(fun m -> m.view_count) ~impl:Indexer.Btree () in
  Cstore.create_index ct c view_ix;
  Alcotest.(check int) "new index works" 1 (List.length (collect (Cstore.exact ct c view_ix 13)));
  Cstore.remove_index ct c ~name:"views";
  Alcotest.(check bool) "index gone" true
    (match Cstore.exact ct c view_ix 13 with exception Cstore.Unknown_index _ -> true | _ -> false);
  Cstore.commit ct

let test_create_unique_index_duplicates_rejected () =
  let env = fresh_env () in
  let os = fresh env in
  let ct = Cstore.begin_ os in
  let c = Cstore.create_collection ct ~name:"dups" ~schema:meter_cls (id_ix ()) in
  ignore (Cstore.insert ct c { id = 1; view_count = 5; print_count = 0 });
  ignore (Cstore.insert ct c { id = 2; view_count = 5; print_count = 0 });
  let uniq_usage =
    Indexer.make ~name:"uu" ~key:Gkey.int ~extract:(fun m -> m.view_count) ~unique:true ~impl:Indexer.Btree ()
  in
  Alcotest.(check bool) "rejected" true
    (match Cstore.create_index ct c uniq_usage with exception Index.Duplicate_key _ -> true | _ -> false);
  Cstore.commit ct

let test_remove_last_index_rejected () =
  let env = fresh_env () in
  let os = fresh env in
  let ct = Cstore.begin_ os in
  let c = Cstore.create_collection ct ~name:"solo" ~schema:meter_cls (id_ix ()) in
  Alcotest.(check bool) "last index protected" true
    (match Cstore.remove_index ct c ~name:"id" with exception Cstore.Last_index -> true | _ -> false);
  Cstore.commit ct

let test_remove_collection () =
  let env = fresh_env () in
  let os = fresh env in
  let ct = Cstore.begin_ os in
  let c = Cstore.create_collection ct ~name:"doomed" ~schema:meter_cls (id_ix ()) in
  let oids = List.init 5 (fun i -> Cstore.insert ct c { id = i; view_count = 0; print_count = 0 }) in
  Cstore.commit ct;
  let ct2 = Cstore.begin_ os in
  Cstore.remove_collection ct2 ~name:"doomed" ~schema:meter_cls ~indexers:[ Indexer.Generic (id_ix ()) ];
  Cstore.commit ct2;
  let ct3 = Cstore.begin_ os in
  Alcotest.(check bool) "gone" false (Cstore.collection_exists ct3 ~name:"doomed");
  (* the member objects are gone from the object store too *)
  List.iter
    (fun oid ->
      Alcotest.(check bool) "object deleted" true
        (match Object_store.open_readonly (Cstore.txn ct3) meter_cls oid with
        | exception Object_store.Unknown_object _ -> true
        | _ -> false))
    oids;
  Cstore.abort ct3

(* --- all three index implementations at scale --- *)

let test_index_impls_at_scale () =
  List.iter
    (fun impl ->
      let env = fresh_env () in
      let os = fresh env in
      let ct = Cstore.begin_ os in
      let name = "scale-" ^ Indexer.impl_name impl in
      let ix = Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (m : meter) -> m.id) ~unique:true ~impl () in
      let c = Cstore.create_collection ct ~name ~schema:meter_cls ix in
      let n = 300 (* forces B-tree splits, hash bucket splits, list chaining *) in
      for i = 0 to n - 1 do
        ignore (Cstore.insert ct c { id = i * 7 mod n (* shuffled-ish, still unique: gcd(7,300)=1 *); view_count = i; print_count = 0 })
      done;
      Alcotest.(check int) "size" n (Cstore.size ct c);
      (* every key findable *)
      for k = 0 to n - 1 do
        let hits = collect (Cstore.exact ct c ix k) in
        if List.length hits <> 1 then Alcotest.failf "%s: key %d -> %d hits" name k (List.length hits)
      done;
      Alcotest.(check int) "scan size" n (List.length (collect (Cstore.scan ct c ix)));
      (* delete a third, re-check *)
      let it = Cstore.scan ct c ix in
      let i = ref 0 in
      while not (Cstore.at_end it) do
        if !i mod 3 = 0 then Cstore.delete it;
        incr i;
        Cstore.advance it
      done;
      Cstore.close it;
      Alcotest.(check int) "after delete" (n - ((n + 2) / 3)) (Cstore.size ct c);
      Cstore.commit ct)
    [ Indexer.Btree; Indexer.Hash; Indexer.List ]

(* --- persistence --- *)

let test_collection_persists () =
  let env, os = setup ~n:15 () in
  Object_store.close os;
  let os2 = reopen env in
  let ct = Cstore.begin_ os2 in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  Alcotest.(check int) "size" 15 (Cstore.size ct c);
  Alcotest.(check int) "exact" 1 (List.length (collect (Cstore.exact ct c (id_ix ()) 11)));
  Alcotest.(check int) "range" 5 (List.length (collect (Cstore.range ct c (usage_ix ()) ~min:(Some 0) ~max:(Some 4))));
  Cstore.commit ct

let test_abort_discards_everything () =
  let _, os = setup ~n:5 () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  ignore (Cstore.insert ct c { id = 100; view_count = 0; print_count = 0 });
  let it = Cstore.exact ct c (id_ix ()) 1 in
  (Cstore.write it).view_count <- 999;
  Cstore.advance it;
  Cstore.close it;
  Cstore.abort ct;
  let ct2 = Cstore.begin_ os in
  let c2 = Cstore.open_collection ct2 ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  Alcotest.(check int) "insert discarded" 5 (Cstore.size ct2 c2);
  Alcotest.(check int) "update discarded" 0 (List.length (collect (Cstore.exact ct2 c2 (usage_ix ()) 999)));
  Cstore.commit ct2

let test_commit_with_open_iterator_rejected () =
  let _, os = setup () in
  let ct = Cstore.begin_ os in
  let c = Cstore.open_collection ct ~name:"profile" ~schema:meter_cls
      ~indexers:[ Indexer.Generic (id_ix ()); Indexer.Generic (usage_ix ()) ] in
  let it = Cstore.scan ct c (usage_ix ()) in
  Alcotest.(check bool) "rejected" true
    (match Cstore.commit ct with exception Invalid_argument _ -> true | _ -> false);
  Cstore.close it;
  Cstore.commit ct

let test_immutable_key_optimization () =
  (* declaring the id key immutable skips its pre-update snapshot; updates
     and deletes through iterators must still maintain every index *)
  let env = fresh_env () in
  let os = fresh env in
  let ct = Cstore.begin_ os in
  let id_imm =
    Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (m : meter) -> m.id) ~unique:true
      ~impl:Indexer.Hash ~immutable:true ()
  in
  let c = Cstore.create_collection ct ~name:"imm" ~schema:meter_cls id_imm in
  Cstore.create_index ct c (usage_ix ());
  for i = 0 to 9 do
    ignore (Cstore.insert ct c { id = i; view_count = i; print_count = 0 })
  done;
  (* mutable key update still moves the usage index *)
  let it = Cstore.exact ct c id_imm 4 in
  (Cstore.write it).view_count <- 400;
  Cstore.advance it;
  Cstore.close it;
  Alcotest.(check int) "new usage key" 1 (List.length (collect (Cstore.exact ct c (usage_ix ()) 400)));
  Alcotest.(check int) "old usage key gone" 0 (List.length (collect (Cstore.exact ct c (usage_ix ()) 4)));
  Alcotest.(check int) "immutable index intact" 1 (List.length (collect (Cstore.exact ct c id_imm 4)));
  (* delete maintains the immutable index too *)
  let it = Cstore.exact ct c id_imm 7 in
  Cstore.delete it;
  Cstore.close it;
  Alcotest.(check int) "deleted from immutable index" 0 (List.length (collect (Cstore.exact ct c id_imm 7)));
  Alcotest.(check int) "deleted from mutable index" 0 (List.length (collect (Cstore.exact ct c (usage_ix ()) 7)));
  Cstore.commit ct

let qcheck_model_equivalence =
  (* random inserts/updates/deletes tracked against a model keyed by id *)
  QCheck.Test.make ~name:"collection matches model" ~count:12
    QCheck.(list (triple (int_range 0 30) (int_range 0 100) (int_range 0 2)))
    (fun ops ->
      let env = fresh_env () in
      let os = fresh env in
      let model = Hashtbl.create 16 in
      Cstore.with_ctxn os (fun ct ->
          let c = Cstore.create_collection ct ~name:"m" ~schema:meter_cls (id_ix ()) in
          Cstore.create_index ct c (usage_ix ());
          List.iter
            (fun (id, usage, op) ->
              match op with
              | 0 (* insert *) ->
                  if not (Hashtbl.mem model id) then begin
                    ignore (Cstore.insert ct c { id; view_count = usage; print_count = 0 });
                    Hashtbl.replace model id usage
                  end
              | 1 (* update via iterator *) ->
                  if Hashtbl.mem model id then begin
                    let it = Cstore.exact ct c (id_ix ()) id in
                    if not (Cstore.at_end it) then begin
                      (Cstore.write it).view_count <- usage;
                      Hashtbl.replace model id usage
                    end;
                    Cstore.close it
                  end
              | _ (* delete *) ->
                  if Hashtbl.mem model id then begin
                    let it = Cstore.exact ct c (id_ix ()) id in
                    if not (Cstore.at_end it) then begin
                      Cstore.delete it;
                      Hashtbl.remove model id
                    end;
                    Cstore.close it
                  end)
            ops;
          (* verify *)
          Hashtbl.fold
            (fun id usage ok ->
              let it = Cstore.exact ct c (id_ix ()) id in
              let hit = if Cstore.at_end it then None else Some (Cstore.read it) in
              Cstore.close it;
              ok && match hit with Some m -> m.view_count = usage | None -> false)
            model
            (Cstore.size ct c = Hashtbl.length model)))

let () =
  Alcotest.run "tdb_collection"
    [
      ( "queries",
        [
          Alcotest.test_case "insert/exact" `Quick test_insert_and_exact;
          Alcotest.test_case "btree scan ordered" `Quick test_scan_btree_in_key_order;
          Alcotest.test_case "range" `Quick test_range_query;
          Alcotest.test_case "range on hash rejected" `Quick test_range_on_hash_unsupported;
        ] );
      ( "uniqueness",
        [
          Alcotest.test_case "violation on insert" `Quick test_unique_violation_on_insert;
          Alcotest.test_case "violation at close" `Quick test_unique_violation_at_close_removes_object;
          Alcotest.test_case "unique index on dups" `Quick test_create_unique_index_duplicates_rejected;
        ] );
      ( "iterators",
        [
          Alcotest.test_case "update moves index" `Quick test_update_via_iterator_moves_index;
          Alcotest.test_case "insensitive (Halloween)" `Quick test_iterator_insensitive;
          Alcotest.test_case "deferred visibility" `Quick test_updates_invisible_until_close;
          Alcotest.test_case "concurrent iterators" `Quick test_concurrent_iterators_blocked_on_write;
          Alcotest.test_case "delete" `Quick test_delete_via_iterator;
          Alcotest.test_case "open iterator blocks commit" `Quick test_commit_with_open_iterator_rejected;
        ] );
      ( "schema",
        [
          Alcotest.test_case "create/remove index" `Quick test_create_index_on_nonempty_and_remove;
          Alcotest.test_case "immutable keys" `Quick test_immutable_key_optimization;
          Alcotest.test_case "last index" `Quick test_remove_last_index_rejected;
          Alcotest.test_case "remove collection" `Quick test_remove_collection;
        ] );
      ( "scale+persistence",
        [
          Alcotest.test_case "all impls at scale" `Slow test_index_impls_at_scale;
          Alcotest.test_case "persists across reopen" `Quick test_collection_persists;
          Alcotest.test_case "abort discards" `Quick test_abort_discards_everything;
        ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_model_equivalence ]);
    ]
