(* Chunk store tests: API semantics, durability/recovery, tamper and replay
   detection, cleaning and the utilization policy, snapshots and diffs. *)

open Tdb_platform
open Tdb_chunk

let cfg ?(security = true) ?(segment_size = 4096) ?(initial_segments = 8) ?(max_utilization = 0.6)
    ?(checkpoint_every = 64) () =
  { Config.default with Config.security; segment_size; initial_segments; max_utilization; checkpoint_every;
    anchor_slot_size = 2048; clean_batch = 2; checkpoint_residual_bytes = 4 * segment_size }

type env = {
  mem : Untrusted_store.Mem.handle;
  store : Untrusted_store.t;
  secret : Secret_store.t;
  ctr_h : One_way_counter.Mem.handle;
  ctr : One_way_counter.t;
}

let fresh_env () =
  let mem, store = Untrusted_store.open_mem () in
  let ctr_h, ctr = One_way_counter.open_mem () in
  { mem; store; secret = Secret_store.of_seed "test-device"; ctr_h; ctr }

let create ?(config = cfg ()) env = Chunk_store.create ~config ~secret:env.secret ~counter:env.ctr env.store
let reopen ?(config = cfg ()) env = Chunk_store.open_existing ~config ~secret:env.secret ~counter:env.ctr env.store

(* --- basic API semantics (paper Figure 2) --- *)

let test_write_read () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  let b = Chunk_store.allocate cs in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Chunk_store.write cs a "alpha";
  Chunk_store.write cs b "beta";
  Chunk_store.commit cs;
  Alcotest.(check string) "read a" "alpha" (Chunk_store.read cs a);
  Alcotest.(check string) "read b" "beta" (Chunk_store.read cs b)

(* The vectored write path: a commit's records — chunk data and the commit
   record — reach the store as a single coalesced flush, while every record
   edge stays an individually losable fragment for the crash model. *)
let test_commit_single_flush () =
  let env = fresh_env () in
  let cs = create env in
  Chunk_store.commit cs (* settle any creation-time writes *);
  let ids = List.init 6 (fun _ -> Chunk_store.allocate cs) in
  List.iteri
    (fun i cid -> Chunk_store.write cs cid (Printf.sprintf "payload-%d-%s" i (String.make 64 'p')))
    ids;
  let st = Untrusted_store.stats env.store in
  let w0 = st.Untrusted_store.writes and f0 = st.Untrusted_store.fragments in
  Chunk_store.commit ~durable:true cs;
  let dw = st.Untrusted_store.writes - w0 and df = st.Untrusted_store.fragments - f0 in
  Alcotest.(check bool) (Printf.sprintf "one coalesced flush (%d write calls)" dw) true (dw >= 1 && dw <= 2);
  Alcotest.(check bool) (Printf.sprintf "record edges stay fragments (%d)" df) true (df >= 13);
  List.iteri
    (fun i cid ->
      Alcotest.(check string) "readback" (Printf.sprintf "payload-%d-%s" i (String.make 64 'p'))
        (Chunk_store.read cs cid))
    ids

(* A crash can preserve stale [Next_segment] bytes from a segment's
   previous incarnation, so the residual chain on the store may contain a
   cycle. scan_chain must treat the revisit as the end of the chain (the
   durable-prefix rule truncates there) rather than loop forever — found
   by the crashfuzz commit-flush sweep at a fragment boundary whose
   surviving-writes subset kept an old marker intact. *)
let test_scan_chain_cycle () =
  let _, store = Untrusted_store.open_mem () in
  let log = Log.create store (cfg ()) in
  let seg_size = Log.segment_size log in
  let seg_start s = log.Log.log_base + (s * seg_size) in
  let header kind len =
    let h = Bytes.create Log.header_size in
    Bytes.set h 0 Log.magic_byte;
    Bytes.set h 1 (Char.chr (Types.kind_to_byte kind));
    Bytes.set h 2 (Char.chr ((len lsr 24) land 0xff));
    Bytes.set h 3 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set h 4 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set h 5 (Char.chr (len land 0xff));
    Bytes.to_string h
  in
  let marker next =
    header Types.Next_segment 4
    ^ String.init 4 (fun i -> Char.chr ((next lsr (8 * (3 - i))) land 0xff))
  in
  let data s = header Types.Data_chunk (String.length s) ^ s in
  (* segment 0 chains to 1; segment 1 holds stale debris chaining back to 0 *)
  Untrusted_store.write store ~off:(seg_start 0) (data "aaaa" ^ marker 1);
  Untrusted_store.write store ~off:(seg_start 1) (data "bbbb" ^ marker 0);
  let seen = ref [] in
  Log.scan_chain log ~seg:0 ~off:0 ~f:(fun _ _ payload -> seen := payload :: !seen);
  Alcotest.(check (list string)) "each segment's records visited once" [ "aaaa"; "bbbb" ]
    (List.rev !seen)

let test_read_uncommitted_batch () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "pending";
  Alcotest.(check string) "pending visible" "pending" (Chunk_store.read cs a)

let test_unallocated_signals () =
  let env = fresh_env () in
  let cs = create env in
  Alcotest.(check bool) "write unallocated" true
    (match Chunk_store.write cs 999 "x" with exception Types.Not_allocated 999 -> true | _ -> false);
  Alcotest.(check bool) "read unwritten" true
    (match Chunk_store.read cs 999 with exception Types.Not_written 999 -> true | _ -> false);
  Alcotest.(check bool) "dealloc unallocated" true
    (match Chunk_store.deallocate cs 999 with exception Types.Not_allocated 999 -> true | _ -> false)

let test_overwrite_and_resize () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "short";
  Chunk_store.commit cs;
  Chunk_store.write cs a (String.make 500 'x');
  Chunk_store.commit cs;
  Alcotest.(check int) "resized" 500 (String.length (Chunk_store.read cs a));
  Chunk_store.write cs a "";
  Chunk_store.commit cs;
  Alcotest.(check string) "empty state" "" (Chunk_store.read cs a)

let test_deallocate () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "gone soon";
  Chunk_store.commit cs;
  Chunk_store.deallocate cs a;
  Chunk_store.commit cs;
  Alcotest.(check bool) "read after dealloc" true
    (match Chunk_store.read cs a with exception Types.Not_written _ -> true | _ -> false);
  Alcotest.(check bool) "double dealloc" true
    (match Chunk_store.deallocate cs a with exception Types.Not_allocated _ -> true | _ -> false)

let test_dealloc_never_written () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.deallocate cs a;
  Alcotest.(check bool) "gone" true
    (match Chunk_store.write cs a "x" with exception Types.Not_allocated _ -> true | _ -> false)

let test_abort_batch () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "keep";
  Chunk_store.commit cs;
  Chunk_store.write cs a "discard";
  Chunk_store.abort_batch cs;
  Alcotest.(check string) "old state" "keep" (Chunk_store.read cs a)

let test_chunk_too_large () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Alcotest.(check bool) "too large" true
    (match Chunk_store.write cs a (String.make 8192 'x') with
    | exception Types.Chunk_too_large _ -> true
    | _ -> false)

let test_variable_sizes_roundtrip () =
  let env = fresh_env () in
  let cs = create env in
  let rng = Tdb_crypto.Drbg.create ~seed:"sizes" in
  let ids =
    List.init 60 (fun i ->
        let cid = Chunk_store.allocate cs in
        let data = Tdb_crypto.Drbg.generate rng (i * 17 mod 900) in
        Chunk_store.write cs cid data;
        (cid, data))
  in
  Chunk_store.commit cs;
  List.iter (fun (cid, data) -> Alcotest.(check string) "roundtrip" data (Chunk_store.read cs cid)) ids

(* --- persistence and recovery --- *)

let test_reopen () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "persistent";
  Chunk_store.commit cs;
  Chunk_store.close cs;
  let cs2 = reopen env in
  Alcotest.(check string) "after reopen" "persistent" (Chunk_store.read cs2 a)

let test_crash_before_commit () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "committed";
  Chunk_store.commit cs;
  (* a second write is buffered but never committed *)
  Chunk_store.write cs a "lost";
  Untrusted_store.Mem.crash_hard env.mem;
  let cs2 = reopen env in
  Alcotest.(check string) "old value" "committed" (Chunk_store.read cs2 a)

let test_crash_after_durable_commit () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "v1";
  Chunk_store.commit cs;
  Chunk_store.write cs a "v2";
  Chunk_store.commit ~durable:true cs;
  Untrusted_store.Mem.crash_hard env.mem;
  let cs2 = reopen env in
  Alcotest.(check string) "durable survives" "v2" (Chunk_store.read cs2 a)

let test_nondurable_commit_lost_on_crash () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "v1";
  Chunk_store.commit ~durable:true cs;
  Chunk_store.write cs a "v2";
  Chunk_store.commit ~durable:false cs;
  Untrusted_store.Mem.crash_hard env.mem;
  let cs2 = reopen env in
  Alcotest.(check string) "nondurable rolled back" "v1" (Chunk_store.read cs2 a)

let test_nondurable_then_durable_survives () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  let b = Chunk_store.allocate cs in
  Chunk_store.write cs a "v1";
  Chunk_store.commit ~durable:true cs;
  Chunk_store.write cs a "v2";
  Chunk_store.commit ~durable:false cs;
  Chunk_store.write cs b "other";
  Chunk_store.commit ~durable:true cs;
  Untrusted_store.Mem.crash_hard env.mem;
  let cs2 = reopen env in
  Alcotest.(check string) "nondurable sealed by durable" "v2" (Chunk_store.read cs2 a);
  Alcotest.(check string) "durable" "other" (Chunk_store.read cs2 b)

let test_crash_recovery_randomized () =
  (* Deterministic pseudo-random crash storm: committed state must always
     be recovered exactly; trailing nondurable commits may be lost. *)
  let rng = Tdb_crypto.Drbg.create ~seed:"crashstorm" in
  for round = 1 to 12 do
    let env = fresh_env () in
    let cs = ref (create env) in
    let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
    let committed = Hashtbl.copy model in
    let ids = ref [] in
    for step = 1 to 40 do
      let c = !cs in
      (match Tdb_crypto.Drbg.int rng 10 with
      | 0 when !ids <> [] ->
          (* deallocate a random chunk *)
          let cid = List.nth !ids (Tdb_crypto.Drbg.int rng (List.length !ids)) in
          if Hashtbl.mem model cid then begin
            Chunk_store.deallocate c cid;
            Hashtbl.remove model cid
          end
      | 1 | 2 | 3 ->
          let cid = Chunk_store.allocate c in
          ids := cid :: !ids;
          let data = Tdb_crypto.Drbg.generate rng (Tdb_crypto.Drbg.int rng 300) in
          Chunk_store.write c cid data;
          Hashtbl.replace model cid data
      | _ when !ids <> [] ->
          let cid = List.nth !ids (Tdb_crypto.Drbg.int rng (List.length !ids)) in
          if Hashtbl.mem model cid then begin
            let data = Tdb_crypto.Drbg.generate rng (Tdb_crypto.Drbg.int rng 300) in
            Chunk_store.write c cid data;
            Hashtbl.replace model cid data
          end
      | _ -> ());
      if step mod 5 = 0 then begin
        Chunk_store.commit ~durable:true c;
        Hashtbl.reset committed;
        Hashtbl.iter (fun k v -> Hashtbl.replace committed k v) model
      end
    done;
    (* crash with partial persistence of unsynced writes *)
    Untrusted_store.Mem.crash ~persist_prob:0.5 ~rng:(fun n -> Tdb_crypto.Drbg.int rng n) env.mem;
    let c2 = reopen env in
    Hashtbl.iter
      (fun cid data ->
        Alcotest.(check string) (Printf.sprintf "round %d chunk %d" round cid) data (Chunk_store.read c2 cid))
      committed;
    cs := c2
  done

let test_layout_mismatch_rejected () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "x";
  Chunk_store.commit cs;
  Chunk_store.close cs;
  Alcotest.(check bool) "clear error on layout mismatch" true
    (match reopen ~config:(cfg ~segment_size:8192 ()) env with
    | exception Chunk_store.Recovery_failed msg ->
        String.length msg > 6 && String.sub msg 0 6 = "layout"
    | _ -> false)

let test_open_missing_anchor_fails () =
  let env = fresh_env () in
  Alcotest.(check bool) "no anchor" true
    (match reopen env with exception Chunk_store.Recovery_failed _ -> true | _ -> false)

(* --- tamper detection --- *)

let committed_db () =
  let env = fresh_env () in
  let cs = create env in
  let ids =
    List.init 30 (fun i ->
        let cid = Chunk_store.allocate cs in
        Chunk_store.write cs cid (Printf.sprintf "secret-record-%03d" i);
        cid)
  in
  Chunk_store.commit cs;
  Chunk_store.checkpoint cs;
  (env, cs, ids)

let test_tamper_data_detected () =
  let env, cs, ids = committed_db () in
  ignore cs;
  (* flip a bit in every byte of the log body (leaving the anchor intact);
     every surviving read must either return intact data or signal
     tampering — and at least one must signal *)
  let size = Untrusted_store.size env.store in
  Untrusted_store.Mem.corrupt env.mem ~off:4096 ~len:(size - 4096) ~mask:0x20;
  let tampered = ref false in
  (match reopen env with
  | exception Types.Tamper_detected _ -> tampered := true
  | exception Chunk_store.Recovery_failed _ -> tampered := true
  | cs2 ->
      List.iteri
        (fun i cid ->
          match Chunk_store.read cs2 cid with
          | data -> Alcotest.(check string) "clean read intact" (Printf.sprintf "secret-record-%03d" i) data
          | exception Types.Tamper_detected _ -> tampered := true)
        ids);
  Alcotest.(check bool) "tamper signalled somewhere" true !tampered

let test_tamper_single_bit_detected () =
  (* the finest-grained attack: one bit, in the middle of the live data *)
  let env, cs, ids = committed_db () in
  ignore cs;
  Untrusted_store.Mem.corrupt env.mem ~off:(4096 + 300) ~len:1 ~mask:0x01;
  let tampered = ref false in
  (match reopen env with
  | exception Types.Tamper_detected _ -> tampered := true
  | exception Chunk_store.Recovery_failed _ -> tampered := true
  | cs2 ->
      List.iter
        (fun cid ->
          match Chunk_store.read cs2 cid with
          | _ -> ()
          | exception Types.Tamper_detected _ -> tampered := true)
        ids);
  Alcotest.(check bool) "single bit flip detected" true !tampered

let test_tamper_anchor_detected () =
  let env, cs, _ = committed_db () in
  ignore cs;
  (* corrupt both anchor slots: open must fail, not silently start empty *)
  Untrusted_store.Mem.corrupt env.mem ~off:0 ~len:4096 ~mask:0xff;
  Alcotest.(check bool) "anchor gone" true
    (match reopen env with
    | exception Chunk_store.Recovery_failed _ -> true
    | exception Types.Tamper_detected _ -> true
    | _ -> false)

let test_replay_attack_detected () =
  (* the paper's canonical attack: save the database, spend, restore *)
  let env = fresh_env () in
  let cs = create env in
  let balance = Chunk_store.allocate cs in
  Chunk_store.write cs balance "balance=100";
  Chunk_store.commit cs;
  Chunk_store.close cs;
  let saved = Untrusted_store.Mem.snapshot env.mem in
  let cs = reopen env in
  Chunk_store.write cs balance "balance=0";
  Chunk_store.commit cs;
  Chunk_store.close cs;
  (* attacker restores the old image; one-way counter has moved on *)
  Untrusted_store.Mem.restore env.mem saved;
  Alcotest.(check bool) "replay detected" true
    (match reopen env with exception Types.Tamper_detected _ -> true | _ -> false)

let test_counter_rollback_detected () =
  (* A rollback of exactly one step is indistinguishable from the legal
     crash-between-sync-and-increment window and gets repaired; any larger
     rollback of the (supposedly one-way) counter must be flagged. *)
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  for i = 1 to 3 do
    Chunk_store.write cs a (string_of_int i);
    Chunk_store.commit cs
  done;
  Chunk_store.close cs;
  One_way_counter.Mem.rollback env.ctr_h 0L;
  Alcotest.(check bool) "rollback detected" true
    (match reopen env with exception Types.Tamper_detected _ -> true | _ -> false)

let test_counter_one_behind_repaired () =
  (* the legal crash window: counter one behind the database is repaired *)
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "v";
  Chunk_store.commit cs;
  Chunk_store.close cs;
  let v = One_way_counter.read env.ctr in
  One_way_counter.Mem.rollback env.ctr_h (Int64.sub v 1L);
  let cs2 = reopen env in
  Alcotest.(check string) "state intact" "v" (Chunk_store.read cs2 a);
  Alcotest.(check int64) "counter repaired" v (One_way_counter.read env.ctr)

let test_exhaustive_bitflip_sweep () =
  (* The core security claim, certified by brute force: flipping ANY single
     bit anywhere in the stored image must never let a read return wrong
     data — every flip is either harmless (hits garbage or a slack region;
     reads return the original values) or raises Tamper_detected /
     Recovery_failed. *)
  let env = fresh_env () in
  let config = cfg ~segment_size:2048 ~initial_segments:4 () in
  let cs = create ~config env in
  let ids =
    List.init 12 (fun i ->
        let cid = Chunk_store.allocate cs in
        Chunk_store.write cs cid (Printf.sprintf "value-%04d" i);
        cid)
  in
  Chunk_store.commit cs;
  Chunk_store.close cs;
  let pristine = Untrusted_store.Mem.snapshot env.mem in
  let size = Bytes.length pristine in
  let detected = ref 0 and harmless = ref 0 and silent = ref 0 in
  let stride = 3 in
  let pos = ref 0 in
  while !pos < size do
    Untrusted_store.Mem.corrupt env.mem ~off:!pos ~len:1 ~mask:0x10;
    (match reopen ~config env with
    | exception (Types.Tamper_detected _ | Chunk_store.Recovery_failed _) -> incr detected
    | cs2 -> (
        match
          List.iteri
            (fun i cid ->
              if Chunk_store.read cs2 cid <> Printf.sprintf "value-%04d" i then raise Exit)
            ids
        with
        | () -> incr harmless
        | exception (Types.Tamper_detected _ | Chunk_store.Recovery_failed _) -> incr detected
        | exception Exit -> incr silent ));
    Untrusted_store.Mem.restore env.mem pristine;
    pos := !pos + stride
  done;
  Alcotest.(check int) "no silent corruption anywhere in the image" 0 !silent;
  Alcotest.(check bool) "flips in live data are detected" true (!detected > 0);
  Alcotest.(check bool) "flips in garbage are harmless" true (!harmless > 0)

let test_no_plaintext_on_media () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  let secret = "TOP-SECRET-CONTENT-KEY-0xDEADBEEF" in
  Chunk_store.write cs a secret;
  Chunk_store.commit cs;
  Chunk_store.checkpoint cs;
  let image = Untrusted_store.Mem.contents env.mem in
  (* the secret must not appear in the raw image (encrypted storage) *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no plaintext" false (contains image secret)

let test_plaintext_visible_without_security () =
  let env = fresh_env () in
  let cs = create ~config:(cfg ~security:false ()) env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "VISIBLE-WITHOUT-SECURITY";
  Chunk_store.commit cs;
  let image = Untrusted_store.Mem.contents env.mem in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "plaintext there" true (contains image "VISIBLE-WITHOUT-SECURITY");
  (* and the counter is never touched in this mode *)
  Alcotest.(check int64) "counter untouched" 0L (One_way_counter.read env.ctr)

(* --- cleaning and utilization --- *)

let churn cs ~rounds ~chunks ~size =
  let ids = Array.init chunks (fun _ -> Chunk_store.allocate cs) in
  Array.iter (fun cid -> Chunk_store.write cs cid (String.make size 'i')) ids;
  Chunk_store.commit cs;
  for r = 1 to rounds do
    Array.iteri (fun i cid -> if (i + r) mod 3 = 0 then Chunk_store.write cs cid (String.make size 'u')) ids;
    Chunk_store.commit cs
  done;
  ids

let test_cleaning_reclaims_space () =
  (* Fragmentation workload: long-lived chunks pepper every segment while
     short-lived neighbours churn, so segments never empty on their own and
     only the cleaner can reclaim them. *)
  let env = fresh_env () in
  let config = cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.8 ~checkpoint_every:8 () in
  let cs = create ~config env in
  let stable = Array.init 40 (fun _ -> Chunk_store.allocate cs) in
  let hot = Array.init 20 (fun _ -> Chunk_store.allocate cs) in
  for r = 0 to 79 do
    if r = 0 then Array.iteri (fun i cid -> Chunk_store.write cs cid (Printf.sprintf "stable-%03d" i)) stable;
    Array.iter (fun cid -> Chunk_store.write cs cid (String.make 150 (Char.chr (Char.code 'a' + (r mod 26))))) hot;
    Chunk_store.commit cs
  done;
  let st = Chunk_store.stats cs in
  Alcotest.(check bool) "cleaner ran" true (st.Chunk_store.clean_passes > 0);
  Alcotest.(check bool) "chunks relocated" true (st.Chunk_store.chunks_relocated > 0);
  Array.iteri
    (fun i cid -> Alcotest.(check string) "stable intact" (Printf.sprintf "stable-%03d" i) (Chunk_store.read cs cid))
    stable;
  Array.iter (fun cid -> Alcotest.(check int) "hot intact" 150 (String.length (Chunk_store.read cs cid))) hot;
  Alcotest.(check bool) "utilization bounded" true (Chunk_store.utilization cs < 0.95)

let test_cleaning_survives_reopen () =
  let env = fresh_env () in
  let config = cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.8 ~checkpoint_every:8 () in
  let cs = create ~config env in
  let ids = churn cs ~rounds:40 ~chunks:30 ~size:120 in
  Chunk_store.close cs;
  let cs2 = reopen ~config env in
  Array.iter
    (fun cid ->
      let v = Chunk_store.read cs2 cid in
      Alcotest.(check bool) "intact" true (String.length v = 120))
    ids

let test_low_utilization_grows_instead () =
  let env = fresh_env () in
  let config = cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.3 ~checkpoint_every:1000 () in
  let cs = create ~config env in
  ignore (churn cs ~rounds:30 ~chunks:30 ~size:100);
  let low_size = Chunk_store.capacity cs in
  let env2 = fresh_env () in
  let config2 = cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.9 ~checkpoint_every:1000 () in
  let cs2 = create ~config:config2 env2 in
  ignore (churn cs2 ~rounds:30 ~chunks:30 ~size:100);
  let high_size = Chunk_store.capacity cs2 in
  Alcotest.(check bool)
    (Printf.sprintf "db smaller at high utilization (%d < %d)" high_size low_size)
    true (high_size <= low_size)

let test_explicit_idle_clean () =
  let env = fresh_env () in
  let config = cfg ~segment_size:4096 ~initial_segments:16 ~max_utilization:0.9 ~checkpoint_every:1000 () in
  let cs = create ~config env in
  ignore (churn cs ~rounds:20 ~chunks:20 ~size:200);
  Chunk_store.checkpoint cs;
  let before = Chunk_store.live_bytes cs in
  Chunk_store.clean cs;
  (* cleaning moves data, it must not create or destroy live bytes (small
     slack: rewritten map nodes can change size by a few entries) *)
  Alcotest.(check bool) "live bytes preserved by cleaning" true
    (abs (Chunk_store.live_bytes cs - before) < 1024);
  Alcotest.(check bool) "cleaned" true ((Chunk_store.stats cs).Chunk_store.segments_cleaned > 0)

let test_clean_lowest_utilization_first () =
  (* One commit per cohort of four quarter-segment chunks, so cohort k
     fills segment k exactly; a sloped deallocation pattern then leaves
     segment k with k+1 live chunks. Cleaning one segment at a time must
     harvest the emptiest first, so successive per-pass relocation counts
     never decrease — the observable signature of lowest-utilization-first
     candidate order. *)
  let env = fresh_env () in
  let config =
    { (cfg ~segment_size:8192 ~initial_segments:12 ~max_utilization:0.95 ~checkpoint_every:1000 ()) with
      Config.tiers = 1 }
  in
  let cs = create ~config env in
  let ids = Array.init 16 (fun _ -> Chunk_store.allocate cs) in
  for k = 0 to 3 do
    for j = 0 to 3 do
      let i = (4 * k) + j in
      Chunk_store.write cs ids.(i) (Printf.sprintf "%04d:%s" i (String.make 1750 'd'))
    done;
    Chunk_store.commit cs
  done;
  (* cohort k = chunks [4k .. 4k+3]: drop 3 from cohort 0, 2 from cohort 1,
     1 from cohort 2, none from cohort 3 *)
  for k = 0 to 2 do
    for j = 0 to 2 - k do
      Chunk_store.deallocate cs ids.((4 * k) + j)
    done
  done;
  Chunk_store.commit cs;
  Chunk_store.checkpoint cs;
  let per_pass = ref [] in
  for _ = 1 to 3 do
    let before = (Chunk_store.stats cs).Chunk_store.segments_cleaned in
    let rel_before = (Chunk_store.stats cs).Chunk_store.chunks_relocated in
    Chunk_store.clean ~max_segments:1 cs;
    Alcotest.(check int) "one segment per pass" (before + 1)
      (Chunk_store.stats cs).Chunk_store.segments_cleaned;
    per_pass := ((Chunk_store.stats cs).Chunk_store.chunks_relocated - rel_before) :: !per_pass
  done;
  (match List.rev !per_pass with
  | [ a; b; c ] ->
      Alcotest.(check bool)
        (Printf.sprintf "relocation work never decreases (%d <= %d <= %d)" a b c)
        true (a <= b && b <= c);
      Alcotest.(check bool) (Printf.sprintf "emptiest strictly first (%d < %d)" a c) true (a < c)
  | _ -> Alcotest.fail "expected three passes");
  (* survivors all intact *)
  for k = 0 to 3 do
    for j = (if k <= 2 then 3 - k else 0) to 3 do
      let i = (4 * k) + j in
      Alcotest.(check string) "survivor intact"
        (Printf.sprintf "%04d:%s" i (String.make 1750 'd'))
        (Chunk_store.read cs ids.(i))
    done
  done

(* --- tiered cleaning --- *)

let test_tiered_demotion_preserves_cache () =
  let env = fresh_env () in
  let config =
    { (cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.9 ~checkpoint_every:1000 ()) with
      Config.tiers = 3 }
  in
  let cs = create ~config env in
  let cids = List.init 8 (fun _ -> Chunk_store.allocate cs) in
  List.iteri (fun i cid -> Chunk_store.write cs cid (Printf.sprintf "meter-%03d" i)) cids;
  Chunk_store.commit cs;
  (* churn the even chunks so segments holding the odd survivors carry
     garbage — the demotion case *)
  for round = 1 to 12 do
    List.iteri
      (fun i cid -> if i mod 2 = 0 then Chunk_store.write cs cid (Printf.sprintf "meter-%03d-r%d" i round))
      cids;
    Chunk_store.commit cs
  done;
  List.iter (fun cid -> ignore (Chunk_store.read cs cid)) cids;
  (* [stats] returns the live record: capture scalars before cleaning *)
  let passes0 = (Chunk_store.stats cs).Chunk_store.clean_passes in
  let misses0 = (Chunk_store.stats cs).Chunk_store.cache_misses in
  Chunk_store.clean cs;
  Chunk_store.clean cs;
  let st = Chunk_store.stats cs in
  Alcotest.(check bool) "cleaner ran" true (st.Chunk_store.clean_passes > passes0);
  Alcotest.(check bool) "survivors were demoted out of the hot tier" true
    (match st.Chunk_store.tier_segments with _ :: colder -> List.exists (fun n -> n > 0) colder | [] -> false);
  (* demotion relocates ciphertext verbatim, preserving versions: every
     cached entry stays valid, so re-reading costs no new misses *)
  List.iteri
    (fun i cid ->
      let expect = if i mod 2 = 0 then Printf.sprintf "meter-%03d-r12" i else Printf.sprintf "meter-%03d" i in
      Alcotest.(check string) "post-demotion read" expect (Chunk_store.read cs cid))
    cids;
  Alcotest.(check int) "no new misses across demotion" misses0
    (Chunk_store.stats cs).Chunk_store.cache_misses

let test_tiers1_image_opens_under_tiered_config () =
  (* A store written at [tiers = 1] is byte-wise the seed format (no tier
     table in the anchor); it must open under a tiered config with every
     segment in the hot tier — and carry on cleaning from there. *)
  let env = fresh_env () in
  let config = { (cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.8 ~checkpoint_every:8 ()) with Config.tiers = 1 } in
  let cs = create ~config env in
  let ids = churn cs ~rounds:40 ~chunks:30 ~size:120 in
  Alcotest.(check bool) "single-tier store cleaned" true
    ((Chunk_store.stats cs).Chunk_store.clean_passes > 0);
  Alcotest.(check (list int)) "single-tier stats stay single-tier"
    [ List.hd (Chunk_store.stats cs).Chunk_store.tier_segments ]
    (Chunk_store.stats cs).Chunk_store.tier_segments;
  Chunk_store.close cs;
  let cs2 = reopen ~config:{ config with Config.tiers = 3 } env in
  (match (Chunk_store.stats cs2).Chunk_store.tier_segments with
  | _ :: colder -> Alcotest.(check (list int)) "opens all-hot" [ 0; 0 ] colder
  | [] -> Alcotest.fail "no tier stats");
  Array.iter
    (fun cid -> Alcotest.(check int) "intact under tiered open" 120 (String.length (Chunk_store.read cs2 cid)))
    ids;
  Chunk_store.clean cs2;
  Chunk_store.clean cs2;
  Alcotest.(check bool) "demotion proceeds from a seed image" true
    (match (Chunk_store.stats cs2).Chunk_store.tier_segments with
    | _ :: colder -> List.exists (fun n -> n > 0) colder
    | [] -> false)

let test_tiered_store_survives_reopen () =
  let env = fresh_env () in
  let config =
    { (cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.8 ~checkpoint_every:8 ()) with
      Config.tiers = 3 }
  in
  let cs = create ~config env in
  let ids = churn cs ~rounds:40 ~chunks:30 ~size:120 in
  Chunk_store.clean cs;
  Chunk_store.clean cs;
  let tiers_before = (Chunk_store.stats cs).Chunk_store.tier_segments in
  Alcotest.(check bool) "demoted before close" true
    (match tiers_before with _ :: colder -> List.exists (fun n -> n > 0) colder | [] -> false);
  Chunk_store.close cs;
  let cs2 = reopen ~config env in
  Alcotest.(check (list int)) "tier table survives reopen" tiers_before
    (Chunk_store.stats cs2).Chunk_store.tier_segments;
  Array.iter
    (fun cid -> Alcotest.(check int) "intact" 120 (String.length (Chunk_store.read cs2 cid)))
    ids

(* --- snapshots and diffs --- *)

let test_snapshot_isolation () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "old";
  Chunk_store.commit cs;
  let snap = Chunk_store.snapshot cs in
  Chunk_store.write cs a "new";
  Chunk_store.commit cs;
  let contents = Chunk_store.fold_snapshot cs snap ~init:[] ~f:(fun acc cid data -> (cid, data) :: acc) in
  Alcotest.(check (list (pair int string))) "snapshot sees old" [ (a, "old") ] contents;
  Alcotest.(check string) "live sees new" "new" (Chunk_store.read cs a);
  Chunk_store.release_snapshot cs snap

let test_snapshot_diff () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  let b = Chunk_store.allocate cs in
  let c = Chunk_store.allocate cs in
  Chunk_store.write cs a "a1";
  Chunk_store.write cs b "b1";
  Chunk_store.write cs c "c1";
  Chunk_store.commit cs;
  let s1 = Chunk_store.snapshot cs in
  Chunk_store.write cs b "b2";
  Chunk_store.deallocate cs c;
  let d = Chunk_store.allocate cs in
  Chunk_store.write cs d "d1";
  Chunk_store.commit cs;
  let s2 = Chunk_store.snapshot cs in
  let changed = ref [] and removed = ref [] in
  Chunk_store.diff_snapshots cs ~old_id:s1 ~new_id:s2
    ~changed:(fun cid data -> changed := (cid, data) :: !changed)
    ~removed:(fun cid -> removed := cid :: !removed);
  Alcotest.(check (list (pair int string))) "changed" [ (b, "b2"); (d, "d1") ] (List.sort compare !changed);
  Alcotest.(check (list int)) "removed" [ c ] !removed;
  Chunk_store.release_snapshot cs s1;
  Chunk_store.release_snapshot cs s2

let test_snapshot_survives_reopen () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "snapped";
  Chunk_store.commit cs;
  let snap = Chunk_store.snapshot cs in
  Chunk_store.write cs a "moved on";
  Chunk_store.commit cs;
  Chunk_store.close cs;
  let cs2 = reopen env in
  let contents = Chunk_store.fold_snapshot cs2 snap ~init:[] ~f:(fun acc cid data -> (cid, data) :: acc) in
  Alcotest.(check (list (pair int string))) "snapshot persisted" [ (a, "snapped") ] contents;
  Chunk_store.release_snapshot cs2 snap

let test_snapshot_protects_from_cleaner () =
  let env = fresh_env () in
  let config = cfg ~segment_size:4096 ~initial_segments:8 ~max_utilization:0.85 ~checkpoint_every:16 () in
  let cs = create ~config env in
  let ids = Array.init 20 (fun _ -> Chunk_store.allocate cs) in
  Array.iteri (fun i cid -> Chunk_store.write cs cid (Printf.sprintf "orig-%d" i)) ids;
  Chunk_store.commit cs;
  let snap = Chunk_store.snapshot cs in
  (* churn hard so the cleaner wants those segments *)
  for r = 1 to 50 do
    Array.iter (fun cid -> Chunk_store.write cs cid (Printf.sprintf "new-%d" r)) ids;
    Chunk_store.commit cs
  done;
  let contents = Chunk_store.fold_snapshot cs snap ~init:[] ~f:(fun acc _ d -> d :: acc) in
  Alcotest.(check int) "all snapshot chunks readable" 20 (List.length contents);
  List.iter (fun d -> Alcotest.(check bool) "original data" true (String.length d >= 6 && String.sub d 0 4 = "orig")) contents;
  Chunk_store.release_snapshot cs snap

(* --- checkpoint cadence --- *)

let test_periodic_checkpoint () =
  let env = fresh_env () in
  let config = cfg ~checkpoint_every:5 () in
  let cs = create ~config env in
  let a = Chunk_store.allocate cs in
  for i = 1 to 12 do
    Chunk_store.write cs a (string_of_int i);
    Chunk_store.commit cs
  done;
  Alcotest.(check bool) "checkpoints happened" true ((Chunk_store.stats cs).Chunk_store.checkpoints >= 2)

(* --- verified-chunk read cache --- *)

let cache_counters cs =
  let st = Chunk_store.stats cs in
  (st.Chunk_store.cache_hits, st.Chunk_store.cache_misses, st.Chunk_store.cache_evictions)

let test_cache_hits_after_commit () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "payload";
  Chunk_store.commit cs;
  (* commit write-through seeds the cache: both reads hit *)
  Alcotest.(check string) "read 1" "payload" (Chunk_store.read cs a);
  Alcotest.(check string) "read 2" "payload" (Chunk_store.read cs a);
  let hits, misses, _ = cache_counters cs in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 0 misses;
  Alcotest.(check int) "resident" 1 (Chunk_store.cache_resident cs)

let test_cache_read_after_write_coherence () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "v1";
  Chunk_store.commit cs;
  Alcotest.(check string) "v1" "v1" (Chunk_store.read cs a);
  (* pending overwrite is visible before commit (bypasses the cache) *)
  Chunk_store.write cs a "v2";
  Alcotest.(check string) "pending v2" "v2" (Chunk_store.read cs a);
  Chunk_store.commit cs;
  Alcotest.(check string) "committed v2" "v2" (Chunk_store.read cs a);
  (* an aborted batch must not poison the cache *)
  Chunk_store.write cs a "v3";
  Chunk_store.abort_batch cs;
  Alcotest.(check string) "abort keeps v2" "v2" (Chunk_store.read cs a)

let test_cache_dealloc_coherence () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "doomed";
  Chunk_store.commit cs;
  Alcotest.(check string) "cached" "doomed" (Chunk_store.read cs a);
  Chunk_store.deallocate cs a;
  Chunk_store.commit cs;
  Alcotest.(check bool) "read after dealloc fails" true
    (match Chunk_store.read cs a with exception Types.Not_written _ -> true | _ -> false)

let test_cache_eviction_under_budget () =
  let env = fresh_env () in
  (* room for ~2 entries of 100 bytes (+64 overhead each) *)
  let config = { (cfg ()) with Config.chunk_cache_bytes = 400 } in
  let cs = create ~config env in
  let cids = List.init 6 (fun _ -> Chunk_store.allocate cs) in
  List.iteri (fun i cid -> Chunk_store.write cs cid (String.make 100 (Char.chr (Char.code 'a' + i)))) cids;
  Chunk_store.commit cs;
  List.iteri
    (fun i cid ->
      Alcotest.(check string) "intact" (String.make 100 (Char.chr (Char.code 'a' + i))) (Chunk_store.read cs cid))
    cids;
  let _, _, evictions = cache_counters cs in
  Alcotest.(check bool) "evictions happened" true (evictions > 0);
  Alcotest.(check bool) "within budget" true (Chunk_store.cache_bytes cs <= Chunk_store.cache_budget cs)

let test_cache_zero_budget_disables () =
  let env = fresh_env () in
  let config = { (cfg ()) with Config.chunk_cache_bytes = 0 } in
  let cs = create ~config env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "plain path";
  Chunk_store.commit cs;
  Alcotest.(check string) "read 1" "plain path" (Chunk_store.read cs a);
  Alcotest.(check string) "read 2" "plain path" (Chunk_store.read cs a);
  let hits, misses, _ = cache_counters cs in
  Alcotest.(check int) "no hits" 0 hits;
  Alcotest.(check int) "all misses" 2 misses;
  Alcotest.(check int) "nothing resident" 0 (Chunk_store.cache_resident cs)

let test_cache_survives_cleaning () =
  let env = fresh_env () in
  let cs = create env in
  let cids = List.init 8 (fun _ -> Chunk_store.allocate cs) in
  List.iteri (fun i cid -> Chunk_store.write cs cid (Printf.sprintf "record-%03d" i)) cids;
  Chunk_store.commit cs;
  (* churn to give the cleaner something to relocate *)
  for round = 1 to 12 do
    List.iteri
      (fun i cid -> if i mod 2 = 0 then Chunk_store.write cs cid (Printf.sprintf "record-%03d-r%d" i round))
      cids;
    Chunk_store.commit cs
  done;
  List.iter (fun cid -> ignore (Chunk_store.read cs cid)) cids;
  let _, misses_before, _ = cache_counters cs in
  Chunk_store.clean cs;
  Alcotest.(check bool) "cleaner ran" true ((Chunk_store.stats cs).Chunk_store.clean_passes > 0);
  (* relocation preserves versions, so cached entries stay valid: re-reading
     everything adds no misses *)
  List.iteri
    (fun i cid ->
      let expect = if i mod 2 = 0 then Printf.sprintf "record-%03d-r12" i else Printf.sprintf "record-%03d" i in
      Alcotest.(check string) "post-clean read" expect (Chunk_store.read cs cid))
    cids;
  let _, misses_after, _ = cache_counters cs in
  Alcotest.(check int) "no new misses across clean" misses_before misses_after

let test_cache_cold_after_reopen () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "durable data";
  Chunk_store.commit ~durable:true cs;
  ignore (Chunk_store.read cs a);
  Alcotest.(check bool) "warm before crash" true (Chunk_store.cache_resident cs > 0);
  (* recovery builds a fresh store: nothing cached until re-read *)
  let cs2 = reopen env in
  Alcotest.(check int) "cold after recovery" 0 (Chunk_store.cache_resident cs2);
  let hits0, misses0, _ = cache_counters cs2 in
  Alcotest.(check string) "first read refetches" "durable data" (Chunk_store.read cs2 a);
  Alcotest.(check string) "second read hits" "durable data" (Chunk_store.read cs2 a);
  let hits, misses, _ = cache_counters cs2 in
  Alcotest.(check int) "one miss" (misses0 + 1) misses;
  Alcotest.(check int) "one hit" (hits0 + 1) hits

let test_cache_set_budget_runtime () =
  let env = fresh_env () in
  let cs = create env in
  let cids = List.init 4 (fun _ -> Chunk_store.allocate cs) in
  List.iter (fun cid -> Chunk_store.write cs cid (String.make 200 'z')) cids;
  Chunk_store.commit cs;
  Alcotest.(check bool) "warm" true (Chunk_store.cache_resident cs >= 4);
  Chunk_store.set_cache_budget cs 300;
  Alcotest.(check bool) "shrunk immediately" true (Chunk_store.cache_bytes cs <= 300);
  Alcotest.(check bool) "entries evicted" true (Chunk_store.cache_resident cs <= 1)

(* A checkpoint that promotes nondurable commits to durable is itself a
   durability event: it must bump the one-way counter, or flipping the
   fresh anchor slot would silently roll the promotion back (the crashfuzz
   `silent=17` bug). *)
let test_checkpoint_promotion_bumps_counter () =
  let env = fresh_env () in
  let cs = create env in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "durable base";
  Chunk_store.commit ~durable:true cs;
  let c0 = One_way_counter.read env.ctr in
  Chunk_store.write cs a "promoted by checkpoint";
  Chunk_store.commit ~durable:false cs;
  Alcotest.(check bool) "no bump on nondurable commit" true (Int64.equal (One_way_counter.read env.ctr) c0);
  Chunk_store.checkpoint cs;
  Alcotest.(check bool) "promotion bumps counter" true
    (Int64.equal (One_way_counter.read env.ctr) (Int64.add c0 1L));
  (* a second checkpoint has nothing to promote: no further bump *)
  Chunk_store.checkpoint cs;
  Alcotest.(check bool) "idempotent" true (Int64.equal (One_way_counter.read env.ctr) (Int64.add c0 1L));
  (* and the promoted state is durable: recovery keeps it *)
  let cs2 = reopen env in
  Alcotest.(check string) "promoted state survives" "promoted by checkpoint" (Chunk_store.read cs2 a)

let qcheck_commit_batches =
  (* arbitrary batches of writes applied atomically match a model *)
  QCheck.Test.make ~name:"random batched workload matches model" ~count:15
    QCheck.(list (small_list (pair (int_range 0 20) (string_of_size QCheck.Gen.(0 -- 200)))))
    (fun batches ->
      let env = fresh_env () in
      let cs = create env in
      let key_to_cid = Hashtbl.create 16 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun batch ->
          List.iter
            (fun (k, v) ->
              let cid =
                match Hashtbl.find_opt key_to_cid k with
                | Some cid -> cid
                | None ->
                    let cid = Chunk_store.allocate cs in
                    Hashtbl.replace key_to_cid k cid;
                    cid
              in
              Chunk_store.write cs cid v;
              Hashtbl.replace model k v)
            batch;
          Chunk_store.commit cs)
        batches;
      Hashtbl.fold (fun k v ok -> ok && Chunk_store.read cs (Hashtbl.find key_to_cid k) = v) model true)

let () =
  Alcotest.run "tdb_chunk"
    [
      ( "api",
        [
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "commit is one coalesced flush" `Quick test_commit_single_flush;
          Alcotest.test_case "scan_chain terminates on a marker cycle" `Quick test_scan_chain_cycle;
          Alcotest.test_case "pending batch visible" `Quick test_read_uncommitted_batch;
          Alcotest.test_case "unallocated signals" `Quick test_unallocated_signals;
          Alcotest.test_case "overwrite/resize" `Quick test_overwrite_and_resize;
          Alcotest.test_case "deallocate" `Quick test_deallocate;
          Alcotest.test_case "dealloc unwritten" `Quick test_dealloc_never_written;
          Alcotest.test_case "abort batch" `Quick test_abort_batch;
          Alcotest.test_case "chunk too large" `Quick test_chunk_too_large;
          Alcotest.test_case "variable sizes" `Quick test_variable_sizes_roundtrip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reopen" `Quick test_reopen;
          Alcotest.test_case "crash before commit" `Quick test_crash_before_commit;
          Alcotest.test_case "crash after durable commit" `Quick test_crash_after_durable_commit;
          Alcotest.test_case "nondurable lost on crash" `Quick test_nondurable_commit_lost_on_crash;
          Alcotest.test_case "nondurable sealed by durable" `Quick test_nondurable_then_durable_survives;
          Alcotest.test_case "randomized crash storm" `Slow test_crash_recovery_randomized;
          Alcotest.test_case "missing anchor" `Quick test_open_missing_anchor_fails;
          Alcotest.test_case "layout mismatch" `Quick test_layout_mismatch_rejected;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "data corruption detected" `Quick test_tamper_data_detected;
          Alcotest.test_case "single bit flip detected" `Quick test_tamper_single_bit_detected;
          Alcotest.test_case "exhaustive bit-flip sweep" `Slow test_exhaustive_bitflip_sweep;
          Alcotest.test_case "anchor corruption detected" `Quick test_tamper_anchor_detected;
          Alcotest.test_case "replay attack detected" `Quick test_replay_attack_detected;
          Alcotest.test_case "counter rollback detected" `Quick test_counter_rollback_detected;
          Alcotest.test_case "counter one-behind repaired" `Quick test_counter_one_behind_repaired;
          Alcotest.test_case "no plaintext on media" `Quick test_no_plaintext_on_media;
          Alcotest.test_case "security off is plaintext" `Quick test_plaintext_visible_without_security;
        ] );
      ( "cleaning",
        [
          Alcotest.test_case "reclaims space" `Quick test_cleaning_reclaims_space;
          Alcotest.test_case "survives reopen" `Quick test_cleaning_survives_reopen;
          Alcotest.test_case "grow vs clean policy" `Quick test_low_utilization_grows_instead;
          Alcotest.test_case "explicit idle clean" `Quick test_explicit_idle_clean;
          Alcotest.test_case "lowest utilization first" `Quick test_clean_lowest_utilization_first;
          Alcotest.test_case "demotion preserves cache" `Quick test_tiered_demotion_preserves_cache;
          Alcotest.test_case "tiers=1 image opens tiered" `Quick test_tiers1_image_opens_under_tiered_config;
          Alcotest.test_case "tiered survives reopen" `Quick test_tiered_store_survives_reopen;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "diff" `Quick test_snapshot_diff;
          Alcotest.test_case "survives reopen" `Quick test_snapshot_survives_reopen;
          Alcotest.test_case "protected from cleaner" `Quick test_snapshot_protects_from_cleaner;
        ] );
      ("checkpoint", [ Alcotest.test_case "periodic" `Quick test_periodic_checkpoint;
                       Alcotest.test_case "promotion bumps counter" `Quick test_checkpoint_promotion_bumps_counter ]);
      ( "cache",
        [
          Alcotest.test_case "hits after commit" `Quick test_cache_hits_after_commit;
          Alcotest.test_case "read-after-write coherence" `Quick test_cache_read_after_write_coherence;
          Alcotest.test_case "dealloc coherence" `Quick test_cache_dealloc_coherence;
          Alcotest.test_case "eviction under budget" `Quick test_cache_eviction_under_budget;
          Alcotest.test_case "zero budget disables" `Quick test_cache_zero_budget_disables;
          Alcotest.test_case "survives cleaning" `Quick test_cache_survives_cleaning;
          Alcotest.test_case "cold after reopen" `Quick test_cache_cold_after_reopen;
          Alcotest.test_case "runtime budget shrink" `Quick test_cache_set_budget_runtime;
        ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_commit_batches ]);
    ]
