(* Network service tests: RPC round trips, transactional semantics over
   the wire, session hygiene (abrupt disconnect, idle timeout), and the
   end-to-end acceptance run — concurrent client sessions committing
   interleaved transactions with group commit coalescing their durable
   barriers. *)

open Tdb_platform
open Tdb_chunk
open Tdb_objstore
open Tdb_collection
open Tdb_server

let chunk_cfg =
  { Config.default with Config.segment_size = 8192; initial_segments = 8; checkpoint_every = 64;
    anchor_slot_size = 2048 }

type item = { id : int; mutable qty : int; label : string }

let item_cls : item Obj_class.t =
  Obj_class.define ~name:"test.server.item"
    ~pickle:(fun w (i : item) ->
      Tdb_pickle.Pickle.int w i.id;
      Tdb_pickle.Pickle.int w i.qty;
      Tdb_pickle.Pickle.string w i.label)
    ~unpickle:(fun ~version:_ r ->
      let id = Tdb_pickle.Pickle.read_int r in
      let qty = Tdb_pickle.Pickle.read_int r in
      let label = Tdb_pickle.Pickle.read_string r in
      { id; qty; label })
    ()

let item_ix () : (item, int) Indexer.t =
  Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (i : item) -> i.id) ~unique:true
    ~impl:Indexer.Hash ()

type env = { os : Object_store.t; srv : Server.t; addr : Server.addr }

let with_server ?(config = Server.default_config) ?(lock_timeout = 1.0) f =
  let _, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  let cs =
    Chunk_store.create ~config:chunk_cfg ~secret:(Secret_store.of_seed "server-test") ~counter:ctr
      store
  in
  let os =
    Object_store.of_chunk_store
      ~config:{ Object_store.default_config with Object_store.lock_timeout }
      cs
  in
  let srv = Server.create ~config os (Server.Tcp ("127.0.0.1", 0)) in
  Server.expose_class srv item_cls;
  Server.expose_collection srv ~name:"item" ~schema:item_cls
    ~indexers:[ Indexer.Generic (item_ix ()) ]
    ~mutations:[ ("bump", fun (i : item) rd -> i.qty <- i.qty + Tdb_pickle.Pickle.read_int rd) ]
    ();
  Server.start srv;
  let env = { os; srv; addr = Server.Tcp ("127.0.0.1", Server.port srv) } in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f env)

(* --- typed objects and roots over the wire --- *)

let test_rpc_objects () =
  with_server (fun env ->
      let c = Client.connect env.addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let oid =
            Client.with_txn c (fun () ->
                let oid = Client.insert c item_cls { id = 1; qty = 10; label = "first" } in
                Client.set_root c "main" (Some oid);
                oid)
          in
          Alcotest.(check (option int)) "root visible" (Some oid) (Client.get_root c "main");
          Client.with_txn c (fun () ->
              let v = Client.read c item_cls oid in
              Alcotest.(check int) "read qty" 10 v.qty;
              Alcotest.(check string) "read label" "first" v.label;
              Client.update c item_cls oid { v with qty = 11 });
          (* aborted writes stay invisible *)
          Client.begin_ c;
          Client.update c item_cls oid { id = 1; qty = 999; label = "first" };
          Client.abort c;
          Client.with_txn c (fun () ->
              Alcotest.(check int) "abort rolled back" 11 (Client.read c item_cls oid).qty;
              Client.remove c oid);
          Client.with_txn c (fun () ->
              match Client.read c item_cls oid with
              | _ -> Alcotest.fail "removed object still readable"
              | exception Client.Server_error _ -> ())))

let test_rpc_collections () =
  with_server (fun env ->
      let c = Client.connect env.addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.with_txn c (fun () ->
              for id = 0 to 9 do
                ignore (Client.coll_insert c ~coll:"item" item_cls { id; qty = id; label = "x" })
              done);
          Alcotest.(check int) "size" 10 (Client.with_txn c (fun () -> Client.coll_size c ~coll:"item"));
          Client.with_txn c (fun () ->
              (match Client.coll_find c ~coll:"item" ~index:"id" Gkey.int 7 item_cls with
              | Some (_, i) -> Alcotest.(check int) "find" 7 i.qty
              | None -> Alcotest.fail "item 7 missing");
              Alcotest.(check (option (pair int int)))
                "find miss" None
                (Option.map (fun (o, (i : item)) -> (o, i.qty))
                   (Client.coll_find c ~coll:"item" ~index:"id" Gkey.int 42 item_cls)));
          (* a named mutation is a one-round-trip read-modify-write *)
          let updated =
            Client.with_txn c (fun () ->
                Client.coll_mutate c ~coll:"item" ~index:"id" ~mutation:"bump" Gkey.int 7 item_cls
                  ~arg:(fun w -> Tdb_pickle.Pickle.int w 5))
          in
          Alcotest.(check int) "mutated" 12 updated.qty;
          (* unique index violations surface as typed wire errors *)
          Client.begin_ c;
          (match Client.coll_insert c ~coll:"item" item_cls { id = 3; qty = 0; label = "dup" } with
          | _ -> Alcotest.fail "duplicate key accepted"
          | exception Client.Server_error { tag = "duplicate_key"; _ } -> ());
          Client.abort c;
          let all =
            Client.with_txn c (fun () -> Client.coll_scan c ~coll:"item" ~index:"id" Gkey.int item_cls)
          in
          Alcotest.(check int) "scan size" 10 (List.length all)))

(* --- session hygiene --- *)

(* A client that vanishes mid-transaction must not strand its locks: the
   server aborts the session on disconnect, and a second client gets the
   exclusive lock well within its timeout. *)
let test_disconnect_releases_locks () =
  with_server ~lock_timeout:5.0 (fun env ->
      let c0 = Client.connect env.addr in
      let oid =
        Client.with_txn c0 (fun () -> Client.insert c0 item_cls { id = 0; qty = 0; label = "l" })
      in
      Client.close c0;
      let a = Client.connect env.addr in
      Client.begin_ a;
      Client.update a item_cls oid { id = 0; qty = 666; label = "a" };
      (* [a] now holds the exclusive lock — and dies without a word *)
      Client.disconnect_abruptly a;
      let b = Client.connect env.addr in
      Fun.protect
        ~finally:(fun () -> Client.close b)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          Client.with_txn b (fun () -> Client.update b item_cls oid { id = 0; qty = 1; label = "b" });
          Alcotest.(check bool) "lock released promptly" true (Unix.gettimeofday () -. t0 < 4.0);
          Client.with_txn b (fun () ->
              let v = Client.read b item_cls oid in
              Alcotest.(check int) "dead session's write discarded" 1 v.qty));
      Alcotest.(check int) "no locks held" 0 (Object_store.held_count env.os))

(* An idle session is reaped after [idle_timeout] and its transaction is
   aborted. *)
let test_idle_timeout () =
  with_server
    ~config:{ Server.default_config with Server.idle_timeout = 0.3 }
    ~lock_timeout:5.0
    (fun env ->
      let c0 = Client.connect env.addr in
      let oid =
        Client.with_txn c0 (fun () -> Client.insert c0 item_cls { id = 0; qty = 0; label = "l" })
      in
      Client.close c0;
      let a = Client.connect env.addr in
      Client.begin_ a;
      Client.update a item_cls oid { id = 0; qty = 666; label = "a" };
      Thread.delay 1.0;
      (* the server has dropped [a]; its lock is gone *)
      let b = Client.connect env.addr in
      Fun.protect
        ~finally:(fun () -> Client.close b)
        (fun () ->
          Client.with_txn b (fun () -> Client.update b item_cls oid { id = 0; qty = 2; label = "b" }));
      Alcotest.(check bool) "reaped session errors out" true
        (match Client.begin_ a with _ -> false | exception _ -> true);
      Alcotest.(check int) "no locks held" 0 (Object_store.held_count env.os))

(* --- the acceptance run: concurrent sessions + group commit --- *)

(* Four client sessions commit interleaved TPC-B transactions durably over
   the wire. The balances must add up (serializable interleaving), and
   with group commit on, the coalesced barriers must cost fewer one-way
   counter bumps than there were durable commits. *)
let test_e2e_group_commit () =
  let r = Tdb_tpcb.Net_driver.run ~clients:4 ~txns_per_client:12 ~group_commit:true () in
  Alcotest.(check int) "all transactions committed" 48 r.Tdb_tpcb.Net_driver.committed;
  Alcotest.(check bool) "balances consistent" true r.Tdb_tpcb.Net_driver.balance_ok;
  Alcotest.(check bool)
    (Printf.sprintf "coalesced: %d barriers for %d durable commits" r.Tdb_tpcb.Net_driver.barriers
       r.Tdb_tpcb.Net_driver.durable_requests)
    true
    (r.Tdb_tpcb.Net_driver.barriers < r.Tdb_tpcb.Net_driver.durable_requests)

(* Control: with group commit off every durable commit pays its own
   barrier. *)
let test_e2e_no_group_commit () =
  let r = Tdb_tpcb.Net_driver.run ~clients:4 ~txns_per_client:4 ~group_commit:false () in
  Alcotest.(check bool) "balances consistent" true r.Tdb_tpcb.Net_driver.balance_ok;
  Alcotest.(check int) "one barrier per durable commit" r.Tdb_tpcb.Net_driver.durable_requests
    r.Tdb_tpcb.Net_driver.barriers

let test_stats_counters () =
  with_server (fun env ->
      let clients = List.init 4 (fun _ -> Client.connect env.addr) in
      List.iteri
        (fun i c ->
          Client.with_txn c (fun () ->
              ignore (Client.coll_insert c ~coll:"item" item_cls { id = i; qty = i; label = "s" })))
        clients;
      let s =
        match clients with c :: _ -> Client.stats c | [] -> Alcotest.fail "no clients"
      in
      Alcotest.(check bool) "live sessions" true (s.Proto.s_sessions >= 4);
      Alcotest.(check bool) "sessions counted" true (s.Proto.s_sessions_total >= 4);
      Alcotest.(check bool) "commits counted" true (s.Proto.s_committed >= 4);
      Alcotest.(check int) "unsharded store reports width 1" 1 s.Proto.s_shards;
      Alcotest.(check int) "one per-shard counter" 1 (List.length s.Proto.s_shard_counters);
      List.iter Client.close clients;
      ignore (Sys.opaque_identity env.srv))

(* --- remote restore: pull the archive over the wire, rebuild locally --- *)

(* A server without an archive refuses the backup opcodes with a typed
   error rather than dropping the session. *)
let test_no_archive_refused () =
  with_server (fun env ->
      let c = Client.connect env.addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.list_backups c with
          | _ -> Alcotest.fail "archive listed without an archive"
          | exception Client.Server_error { tag = "no_archive"; _ } -> ());
          match Client.fetch_backup c ~name:"backup-000001-full" with
          | _ -> Alcotest.fail "stream served without an archive"
          | exception Client.Server_error { tag = "no_archive"; _ } -> ()))

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600 dst in
  output_string oc data;
  close_out oc

(* End-to-end remote point-in-time restore, the flow behind
   [tdb remote-restore --upto]: a primary on disk takes a full backup and
   two incrementals, a client lists and fetches the streams over the wire,
   stages them into a fresh directory next to a copy of the device secret,
   and the ordinary validated restore rebuilds the database — cut at
   backup 2 ([--upto]) and at the newest. *)
let test_remote_restore () =
  let tmp = Filename.temp_file "tdb-remote-restore" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  Fun.protect
    ~finally:(fun () -> rm_rf tmp)
    (fun () ->
      let pdir = Filename.concat tmp "primary" in
      Unix.mkdir pdir 0o700;
      let db = Tdb.create (Tdb.Device.at_dir pdir) in
      let ix = item_ix () in
      Tdb.with_ctxn db (fun ct ->
          let coll = Tdb.Cstore.create_collection ct ~name:"item" ~schema:item_cls ix in
          ignore (Tdb.Cstore.insert ct coll { id = 1; qty = 1; label = "pit" }));
      let set_qty q =
        Tdb.with_ctxn db (fun ct ->
            let coll =
              Tdb.Cstore.open_collection ct ~name:"item" ~schema:item_cls
                ~indexers:[ Tdb.Indexer.Generic ix ]
            in
            let it = Tdb.Cstore.exact ct coll ix 1 in
            (Tdb.Cstore.write it).qty <- q;
            Tdb.Cstore.advance it;
            Tdb.Cstore.close it)
      in
      Alcotest.(check int) "full backup id" 1 (Tdb.backup_full db);
      set_qty 2;
      Alcotest.(check int) "incremental id" 2 (Tdb.backup_incremental db);
      set_qty 3;
      Alcotest.(check int) "incremental id" 3 (Tdb.backup_incremental db);
      let srv = Server.create ~backups:db.Tdb.backups db.Tdb.objects (Server.Tcp ("127.0.0.1", 0)) in
      Server.start srv;
      let fetched =
        Fun.protect
          ~finally:(fun () -> Server.stop srv)
          (fun () ->
            let c = Client.connect (Server.Tcp ("127.0.0.1", Server.port srv)) in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let index = Client.list_backups c in
                Alcotest.(check (list int)) "archive index ids" [ 1; 2; 3 ] (List.map fst index);
                (match Client.fetch_backup c ~name:"no-such-stream" with
                | _ -> Alcotest.fail "bogus stream name served"
                | exception Client.Server_error { tag = "not_found"; _ } -> ());
                List.map (fun (id, name) -> (id, name, Client.fetch_backup c ~name)) index))
      in
      Tdb.close db;
      let qty_at dir =
        let rdb = Tdb.open_existing (Tdb.Device.at_dir dir) in
        Fun.protect
          ~finally:(fun () -> Tdb.close rdb)
          (fun () ->
            Tdb.with_ctxn rdb (fun ct ->
                let coll =
                  Tdb.Cstore.open_collection ct ~name:"item" ~schema:item_cls
                    ~indexers:[ Tdb.Indexer.Generic ix ]
                in
                let it = Tdb.Cstore.exact ct coll ix 1 in
                let q = (Tdb.Cstore.read it).qty in
                Tdb.Cstore.close it;
                q))
      in
      let stage dir keep =
        Unix.mkdir dir 0o700;
        copy_file (Filename.concat pdir "secret") (Filename.concat dir "secret");
        let bdir = Filename.concat dir "backups" in
        Unix.mkdir bdir 0o700;
        List.iter
          (fun (id, name, stream) ->
            if keep id then begin
              let oc =
                open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600
                  (Filename.concat bdir name)
              in
              output_string oc stream;
              close_out oc
            end)
          fetched
      in
      let pit = Filename.concat tmp "pit" in
      stage pit (fun id -> id <= 2);
      let device = Tdb.Device.at_dir pit in
      Tdb.close (Tdb.restore ~upto:2 ~from:device device);
      Alcotest.(check int) "point-in-time state (--upto 2)" 2 (qty_at pit);
      let full = Filename.concat tmp "full" in
      stage full (fun _ -> true);
      let device = Tdb.Device.at_dir full in
      Tdb.close (Tdb.restore ~from:device device);
      Alcotest.(check int) "newest state" 3 (qty_at full))

let () =
  Alcotest.run "tdb_server"
    [
      ( "rpc",
        [
          Alcotest.test_case "typed objects + roots" `Quick test_rpc_objects;
          Alcotest.test_case "collections + mutations" `Quick test_rpc_collections;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "disconnect releases locks" `Quick test_disconnect_releases_locks;
          Alcotest.test_case "idle timeout reaps session" `Slow test_idle_timeout;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "4 concurrent clients, group commit" `Slow test_e2e_group_commit;
          Alcotest.test_case "group commit off control" `Slow test_e2e_no_group_commit;
        ] );
      ( "archive",
        [
          Alcotest.test_case "no archive refused" `Quick test_no_archive_refused;
          Alcotest.test_case "remote point-in-time restore" `Quick test_remote_restore;
        ] );
    ]
