(* Baseline (Berkeley DB-style) engine tests: KV semantics, B+tree splits,
   cursors, WAL recovery, checkpoints. *)

open Tdb_platform
open Tdb_baseline

type env = {
  data_h : Untrusted_store.Mem.handle;
  data : Untrusted_store.t;
  wal_h : Untrusted_store.Mem.handle;
  wal : Untrusted_store.t;
}

let fresh_env () =
  let data_h, data = Untrusted_store.open_mem () in
  let wal_h, wal = Untrusted_store.open_mem () in
  { data_h; data; wal_h; wal }

let open_db ?config env = Bdb.open_ ?config ~data:env.data ~wal:env.wal ()

let put1 db ~table ~key ~value =
  let x = Bdb.begin_ db in
  Bdb.put x ~table ~key ~value;
  Bdb.commit x

let get1 db ~table ~key =
  let x = Bdb.begin_ db in
  let v = Bdb.get x ~table ~key in
  Bdb.abort x;
  v

let test_put_get_del () =
  let db = open_db (fresh_env ()) in
  put1 db ~table:"t" ~key:"a" ~value:"1";
  Alcotest.(check (option string)) "get" (Some "1") (get1 db ~table:"t" ~key:"a");
  Alcotest.(check (option string)) "missing" None (get1 db ~table:"t" ~key:"b");
  put1 db ~table:"t" ~key:"a" ~value:"2";
  Alcotest.(check (option string)) "overwrite" (Some "2") (get1 db ~table:"t" ~key:"a");
  let x = Bdb.begin_ db in
  Bdb.del x ~table:"t" ~key:"a";
  Bdb.commit x;
  Alcotest.(check (option string)) "deleted" None (get1 db ~table:"t" ~key:"a")

let test_txn_isolation_overlay () =
  let db = open_db (fresh_env ()) in
  put1 db ~table:"t" ~key:"k" ~value:"old";
  let x = Bdb.begin_ db in
  Bdb.put x ~table:"t" ~key:"k" ~value:"new";
  Alcotest.(check (option string)) "txn sees own write" (Some "new") (Bdb.get x ~table:"t" ~key:"k");
  Bdb.abort x;
  Alcotest.(check (option string)) "abort discards" (Some "old") (get1 db ~table:"t" ~key:"k")

let test_multi_table () =
  let db = open_db (fresh_env ()) in
  put1 db ~table:"accounts" ~key:"1" ~value:"a";
  put1 db ~table:"tellers" ~key:"1" ~value:"t";
  Alcotest.(check (option string)) "table separation" (Some "a") (get1 db ~table:"accounts" ~key:"1");
  Alcotest.(check (option string)) "table separation" (Some "t") (get1 db ~table:"tellers" ~key:"1")

let key_of i = Printf.sprintf "%08d" i

let test_btree_splits_and_cursor () =
  let db = open_db (fresh_env ()) in
  let n = 2000 (* forces multi-level splits with 4K pages *) in
  let x = Bdb.begin_ db in
  for i = 0 to n - 1 do
    Bdb.put x ~table:"big" ~key:(key_of (i * 7919 mod n)) ~value:(String.make 50 'v')
  done;
  Bdb.commit x;
  (* all present *)
  for i = 0 to n - 1 do
    if get1 db ~table:"big" ~key:(key_of i) = None then Alcotest.failf "missing key %d" i
  done;
  (* cursor in order *)
  let keys = Bdb.fold db ~table:"big" ~f:(fun acc k _ -> k :: acc) [] in
  Alcotest.(check int) "count" n (List.length keys);
  Alcotest.(check bool) "sorted" true (List.rev keys = List.sort compare keys);
  (* bounded scan *)
  let slice =
    Bdb.fold db ~table:"big" ~min:(key_of 100) ~max:(key_of 109) ~f:(fun acc _ _ -> acc + 1) 0
  in
  Alcotest.(check int) "range" 10 slice

let test_recovery_from_wal () =
  let env = fresh_env () in
  let db = open_db env in
  put1 db ~table:"t" ~key:"committed" ~value:"yes";
  (* crash without checkpoint: data file holds nothing yet *)
  Untrusted_store.Mem.crash ~persist_prob:1.0 ~rng:(fun _ -> 0) env.data_h;
  Untrusted_store.Mem.crash ~persist_prob:1.0 ~rng:(fun _ -> 0) env.wal_h;
  let db2 = open_db env in
  Alcotest.(check (option string)) "replayed" (Some "yes") (get1 db2 ~table:"t" ~key:"committed")

let test_recovery_uncommitted_lost () =
  let env = fresh_env () in
  let db = open_db env in
  put1 db ~table:"t" ~key:"a" ~value:"1";
  let x = Bdb.begin_ db in
  Bdb.put x ~table:"t" ~key:"b" ~value:"2";
  (* never committed; hard crash loses unsynced state *)
  Untrusted_store.Mem.crash_hard env.data_h;
  Untrusted_store.Mem.crash_hard env.wal_h;
  let db2 = open_db env in
  Alcotest.(check (option string)) "committed survives" (Some "1") (get1 db2 ~table:"t" ~key:"a");
  Alcotest.(check (option string)) "uncommitted lost" None (get1 db2 ~table:"t" ~key:"b")

let test_recovery_after_checkpoint () =
  let env = fresh_env () in
  let db = open_db env in
  for i = 0 to 99 do
    put1 db ~table:"t" ~key:(key_of i) ~value:(string_of_int i)
  done;
  Bdb.checkpoint db;
  for i = 100 to 149 do
    put1 db ~table:"t" ~key:(key_of i) ~value:(string_of_int i)
  done;
  Untrusted_store.Mem.crash_hard env.data_h;
  Untrusted_store.Mem.crash_hard env.wal_h;
  let db2 = open_db env in
  for i = 0 to 149 do
    Alcotest.(check (option string)) (Printf.sprintf "key %d" i) (Some (string_of_int i))
      (get1 db2 ~table:"t" ~key:(key_of i))
  done

let test_checkpoint_truncates_wal () =
  let env = fresh_env () in
  let db = open_db env in
  for i = 0 to 50 do
    put1 db ~table:"t" ~key:(key_of i) ~value:"x"
  done;
  Alcotest.(check bool) "wal grew" true (Untrusted_store.size env.wal > 0);
  Bdb.checkpoint db;
  Alcotest.(check int) "wal truncated" 0 (Untrusted_store.size env.wal)

let test_auto_checkpoint () =
  let env = fresh_env () in
  let db = open_db ~config:{ Bdb.default_config with Bdb.checkpoint_wal_bytes = Some 2048 } env in
  for i = 0 to 200 do
    put1 db ~table:"t" ~key:(key_of i) ~value:(String.make 64 'x')
  done;
  let _, checkpoints, _ = Bdb.stats db in
  Alcotest.(check bool) "auto checkpoints" true (checkpoints > 0)

let test_page_write_amplification () =
  (* the effect the paper measures: small record updates cost full pages *)
  let env = fresh_env () in
  let db = open_db env in
  put1 db ~table:"t" ~key:"k" ~value:(String.make 100 'v');
  Bdb.checkpoint db;
  let written_before = (Untrusted_store.stats env.data).Untrusted_store.bytes_written in
  put1 db ~table:"t" ~key:"k" ~value:(String.make 100 'w');
  Bdb.checkpoint db;
  let written_after = (Untrusted_store.stats env.data).Untrusted_store.bytes_written in
  Alcotest.(check bool) "page-sized write for 100-byte update" true
    (written_after - written_before >= Tdb_baseline.Page.page_size)

let qcheck_model =
  QCheck.Test.make ~name:"kv model equivalence" ~count:30
    QCheck.(list (triple (int_range 0 50) (string_of_size Gen.(0 -- 30)) bool))
    (fun ops ->
      let db = open_db (fresh_env ()) in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v, is_put) ->
          let key = key_of k in
          let x = Bdb.begin_ db in
          if is_put then begin
            Bdb.put x ~table:"m" ~key ~value:v;
            Hashtbl.replace model key v
          end
          else begin
            Bdb.del x ~table:"m" ~key;
            Hashtbl.remove model key
          end;
          Bdb.commit ~durable:false x)
        ops;
      Hashtbl.fold (fun k v ok -> ok && get1 db ~table:"m" ~key:k = Some v) model true)

let () =
  Alcotest.run "tdb_baseline"
    [
      ( "kv",
        [
          Alcotest.test_case "put/get/del" `Quick test_put_get_del;
          Alcotest.test_case "txn overlay" `Quick test_txn_isolation_overlay;
          Alcotest.test_case "multi table" `Quick test_multi_table;
          Alcotest.test_case "splits + cursor" `Quick test_btree_splits_and_cursor;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "wal replay" `Quick test_recovery_from_wal;
          Alcotest.test_case "uncommitted lost" `Quick test_recovery_uncommitted_lost;
          Alcotest.test_case "after checkpoint" `Quick test_recovery_after_checkpoint;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "truncates wal" `Quick test_checkpoint_truncates_wal;
          Alcotest.test_case "auto" `Quick test_auto_checkpoint;
          Alcotest.test_case "write amplification" `Quick test_page_write_amplification;
        ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_model ]);
    ]
