(* Object store tests: typed storage, transactional semantics, locking,
   cache behaviour, persistence. Mirrors the paper's Section 4 guarantees. *)

open Tdb_platform
open Tdb_chunk
open Tdb_objstore

let cfg =
  { Config.default with Config.segment_size = 8192; initial_segments = 8; checkpoint_every = 64;
    anchor_slot_size = 2048 }

(* --- application classes (the paper's Meter/Profile example) --- *)

type meter = { mutable view_count : int; mutable print_count : int; good : string }

let meter_cls : meter Obj_class.t =
  Obj_class.define ~name:"test.meter"
    ~pickle:(fun w m ->
      Tdb_pickle.Pickle.int w m.view_count;
      Tdb_pickle.Pickle.int w m.print_count;
      Tdb_pickle.Pickle.string w m.good)
    ~unpickle:(fun ~version:_ r ->
      let view_count = Tdb_pickle.Pickle.read_int r in
      let print_count = Tdb_pickle.Pickle.read_int r in
      let good = Tdb_pickle.Pickle.read_string r in
      { view_count; print_count; good })
    ()

type profile = { mutable meters : Object_store.oid list }

let profile_cls : profile Obj_class.t =
  Obj_class.define ~name:"test.profile"
    ~pickle:(fun w p -> Tdb_pickle.Pickle.list w (fun w o -> Tdb_pickle.Pickle.uint w o) p.meters)
    ~unpickle:(fun ~version:_ r -> { meters = Tdb_pickle.Pickle.read_list r Tdb_pickle.Pickle.read_uint })
    ()

type env = { mem : Untrusted_store.Mem.handle; store : Untrusted_store.t; secret : Secret_store.t; ctr : One_way_counter.t }

let fresh_env () =
  let mem, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  { mem; store; secret = Secret_store.of_seed "objstore"; ctr }

let fresh ?(config = Object_store.default_config) env =
  Object_store.of_chunk_store ~config (Chunk_store.create ~config:cfg ~secret:env.secret ~counter:env.ctr env.store)

let reopen ?(config = Object_store.default_config) env =
  Object_store.of_chunk_store ~config
    (Chunk_store.open_existing ~config:cfg ~secret:env.secret ~counter:env.ctr env.store)

(* --- basic typed storage --- *)

let test_insert_open () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 1; print_count = 2; good = "song" } in
  Object_store.commit x;
  let x2 = Object_store.begin_ os in
  let m = Object_store.deref (Object_store.open_readonly x2 meter_cls oid) in
  Alcotest.(check int) "view" 1 m.view_count;
  Alcotest.(check string) "good" "song" m.good;
  Object_store.commit x2

let test_type_mismatch () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "g" } in
  Object_store.commit x;
  let x2 = Object_store.begin_ os in
  Alcotest.(check bool) "wrong class rejected" true
    (match Object_store.open_readonly x2 profile_cls oid with
    | exception Obj_class.Type_mismatch { expected = "test.profile"; actual = "test.meter" } -> true
    | _ -> false);
  Object_store.abort x2

let test_stale_ref () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 5; print_count = 0; good = "g" } in
  Object_store.commit x;
  let x2 = Object_store.begin_ os in
  let r = Object_store.open_readonly x2 meter_cls oid in
  Object_store.commit x2;
  Alcotest.(check bool) "stale after commit" true
    (match Object_store.deref r with exception Object_store.Stale_ref -> true | _ -> false);
  let x3 = Object_store.begin_ os in
  let r3 = Object_store.open_writable x3 meter_cls oid in
  Object_store.abort x3;
  Alcotest.(check bool) "stale after abort" true
    (match Object_store.deref r3 with exception Object_store.Stale_ref -> true | _ -> false)

let test_update_via_writable () =
  let env = fresh_env () in
  let os = fresh env in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "movie" } in
  Object_store.commit x;
  (* the paper's increment-view-count transaction *)
  let x2 = Object_store.begin_ os in
  let m = Object_store.deref (Object_store.open_writable x2 meter_cls oid) in
  m.view_count <- m.view_count + 1;
  Object_store.commit x2;
  let os2 = reopen env in
  let x3 = Object_store.begin_ os2 in
  let m3 = Object_store.deref (Object_store.open_readonly x3 meter_cls oid) in
  Alcotest.(check int) "persisted increment" 1 m3.view_count;
  Object_store.abort x3

let test_abort_rolls_back () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 10; print_count = 0; good = "g" } in
  Object_store.commit x;
  let x2 = Object_store.begin_ os in
  let m = Object_store.deref (Object_store.open_writable x2 meter_cls oid) in
  m.view_count <- 999;
  Object_store.abort x2;
  let x3 = Object_store.begin_ os in
  let m3 = Object_store.deref (Object_store.open_readonly x3 meter_cls oid) in
  Alcotest.(check int) "dirty state evicted on abort" 10 m3.view_count;
  Object_store.abort x3

let test_abort_insert_gone () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "g" } in
  Object_store.abort x;
  let x2 = Object_store.begin_ os in
  Alcotest.(check bool) "inserted object gone" true
    (match Object_store.open_readonly x2 meter_cls oid with
    | exception Object_store.Unknown_object _ -> true
    | _ -> false);
  Object_store.abort x2

let test_remove () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "g" } in
  Object_store.commit x;
  let x2 = Object_store.begin_ os in
  Object_store.remove x2 oid;
  Alcotest.(check bool) "open after remove in txn" true
    (match Object_store.open_readonly x2 meter_cls oid with
    | exception Object_store.Removed_in_transaction _ -> true
    | _ -> false);
  Object_store.commit x2;
  let x3 = Object_store.begin_ os in
  Alcotest.(check bool) "gone after commit" true
    (match Object_store.open_readonly x3 meter_cls oid with
    | exception Object_store.Unknown_object _ -> true
    | _ -> false);
  Object_store.abort x3

let test_remove_rolled_back_by_abort () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 7; print_count = 0; good = "g" } in
  Object_store.commit x;
  let x2 = Object_store.begin_ os in
  Object_store.remove x2 oid;
  Object_store.abort x2;
  let x3 = Object_store.begin_ os in
  let m = Object_store.deref (Object_store.open_readonly x3 meter_cls oid) in
  Alcotest.(check int) "still there" 7 m.view_count;
  Object_store.abort x3

(* --- roots --- *)

let test_roots () =
  let env = fresh_env () in
  let os = fresh env in
  let x = Object_store.begin_ os in
  let p = Object_store.insert x profile_cls { meters = [] } in
  Object_store.set_root x "profile" (Some p);
  Alcotest.(check (option int)) "visible in txn" (Some p) (Object_store.root x "profile");
  Object_store.commit x;
  Alcotest.(check (option int)) "committed" (Some p) (Object_store.get_root os "profile");
  let os2 = reopen env in
  Alcotest.(check (option int)) "persistent" (Some p) (Object_store.get_root os2 "profile");
  (* clearing *)
  let x2 = Object_store.begin_ os2 in
  Object_store.set_root x2 "profile" None;
  Object_store.commit x2;
  Alcotest.(check (option int)) "cleared" None (Object_store.get_root os2 "profile")

let test_root_update_aborted () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let p = Object_store.insert x profile_cls { meters = [] } in
  Object_store.set_root x "r" (Some p);
  Object_store.abort x;
  Alcotest.(check (option int)) "abort discards root" None (Object_store.get_root os "r")

(* --- the paper's Figure 4 scenario --- *)

let test_paper_figure4 () =
  let env = fresh_env () in
  let os = fresh env in
  (* Add a new Meter to the Profile registered as root object. *)
  let t = Object_store.begin_ os in
  let profile_id = Object_store.insert t profile_cls { meters = [] } in
  Object_store.set_root t "root" (Some profile_id);
  let meter_id = Object_store.insert t meter_cls { view_count = 0; print_count = 0; good = "book" } in
  let profile = Object_store.deref (Object_store.open_writable t profile_cls profile_id) in
  profile.meters <- profile.meters @ [ meter_id ];
  Object_store.commit t;
  (* Increment view count for first good. *)
  let t2 = Object_store.begin_ os in
  let profile_id = Option.get (Object_store.root t2 "root") in
  let profile = Object_store.deref (Object_store.open_readonly t2 profile_cls profile_id) in
  let meter_id = List.hd profile.meters in
  let meter = Object_store.deref (Object_store.open_writable t2 meter_cls meter_id) in
  meter.view_count <- meter.view_count + 1;
  Object_store.commit t2;
  (* verify across restart *)
  let os2 = reopen env in
  let t3 = Object_store.begin_ os2 in
  let profile_id = Option.get (Object_store.root t3 "root") in
  let profile = Object_store.deref (Object_store.open_readonly t3 profile_cls profile_id) in
  let m = Object_store.deref (Object_store.open_readonly t3 meter_cls (List.hd profile.meters)) in
  Alcotest.(check int) "view count" 1 m.view_count;
  Object_store.abort t3

(* --- concurrency --- *)

let test_concurrent_increments () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "g" } in
  Object_store.commit x;
  let nthreads = 4 and per_thread = 25 in
  let threads =
    List.init nthreads (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do
              let rec attempt () =
                let t = Object_store.begin_ os in
                match
                  let m = Object_store.deref (Object_store.open_writable t meter_cls oid) in
                  m.view_count <- m.view_count + 1;
                  Object_store.commit ~durable:false t
                with
                | () -> ()
                | exception Lock_manager.Lock_timeout _ ->
                    Object_store.abort t;
                    attempt ()
              in
              attempt ()
            done)
          ())
  in
  List.iter Thread.join threads;
  let t = Object_store.begin_ os in
  let m = Object_store.deref (Object_store.open_readonly t meter_cls oid) in
  Alcotest.(check int) "serializable increments" (nthreads * per_thread) m.view_count;
  Object_store.abort t

(* Multi-object transfers under contention: N threads move amounts
   between random pairs of accounts (two exclusive locks per txn, random
   order — plenty of deadlock opportunities for the timeout breaker),
   while another thread runs durable barriers through the staged path a
   group-commit coordinator uses. Money is conserved iff 2PL serialized
   every transfer and no lock was ever double-granted. *)
let test_concurrent_transfer_stress () =
  let config = { Object_store.default_config with Object_store.lock_timeout = 0.1 } in
  let env = fresh_env () in
  let os = fresh ~config env in
  let n_accounts = 8 and nthreads = 4 and per_thread = 40 and initial = 1000 in
  let oids =
    let x = Object_store.begin_ os in
    let oids =
      Array.init n_accounts (fun i ->
          Object_store.insert x meter_cls { view_count = initial; print_count = i; good = "acct" })
    in
    Object_store.commit x;
    oids
  in
  let retries = Array.make nthreads 0 in
  let stop = ref false in
  let barrier_thread =
    Thread.create
      (fun () ->
        while not !stop do
          Object_store.durable_barrier os;
          Thread.delay 0.002
        done)
      ()
  in
  let threads =
    List.init nthreads (fun ti ->
        Thread.create
          (fun () ->
            let rng = Tdb_crypto.Drbg.create ~seed:(Printf.sprintf "transfer-%d" ti) in
            for _ = 1 to per_thread do
              let a = Tdb_crypto.Drbg.int rng n_accounts in
              let b = (a + 1 + Tdb_crypto.Drbg.int rng (n_accounts - 1)) mod n_accounts in
              let amount = 1 + Tdb_crypto.Drbg.int rng 50 in
              let rec attempt () =
                let t = Object_store.begin_ os in
                match
                  let src = Object_store.deref (Object_store.open_writable t meter_cls oids.(a)) in
                  let dst = Object_store.deref (Object_store.open_writable t meter_cls oids.(b)) in
                  src.view_count <- src.view_count - amount;
                  dst.view_count <- dst.view_count + amount;
                  Object_store.commit ~durable:false t
                with
                | () -> ()
                | exception Lock_manager.Lock_timeout _ ->
                    Object_store.abort t;
                    retries.(ti) <- retries.(ti) + 1;
                    attempt ()
              in
              attempt ()
            done)
          ())
  in
  List.iter Thread.join threads;
  stop := true;
  Thread.join barrier_thread;
  Alcotest.(check int) "all locks released" 0 (Object_store.held_count os);
  let x = Object_store.begin_ os in
  let total =
    Array.fold_left
      (fun acc oid -> acc + (Object_store.deref (Object_store.open_readonly x meter_cls oid)).view_count)
      0 oids
  in
  Object_store.abort x;
  Alcotest.(check int) "money conserved" (n_accounts * initial) total;
  (* the barriers promoted the nondurable transfers: they survive reopen *)
  let os2 = reopen env in
  let x2 = Object_store.begin_ os2 in
  let total2 =
    Array.fold_left
      (fun acc oid -> acc + (Object_store.deref (Object_store.open_readonly x2 meter_cls oid)).view_count)
      0 oids
  in
  Object_store.abort x2;
  Alcotest.(check int) "conserved after reopen" (n_accounts * initial) total2

let test_deadlock_broken_by_timeout () =
  let config = { Object_store.default_config with Object_store.lock_timeout = 0.1 } in
  let os = fresh ~config (fresh_env ()) in
  let x = Object_store.begin_ os in
  let a = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "a" } in
  let b = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "b" } in
  Object_store.commit x;
  let timeouts = ref 0 in
  let mu = Mutex.create () in
  let worker (first, second) =
    let t = Object_store.begin_ os in
    match
      ignore (Object_store.open_writable t meter_cls first);
      Thread.delay 0.05;
      ignore (Object_store.open_writable t meter_cls second);
      Object_store.commit ~durable:false t
    with
    | () -> ()
    | exception Lock_manager.Lock_timeout _ ->
        Mutex.lock mu;
        incr timeouts;
        Mutex.unlock mu;
        Object_store.abort t
  in
  let t1 = Thread.create worker (a, b) in
  let t2 = Thread.create worker (b, a) in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check bool) "at least one victim" true (!timeouts >= 1)

let test_shared_locks_concurrent_reads () =
  let os = fresh (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 3; print_count = 0; good = "g" } in
  Object_store.commit x;
  (* two transactions hold shared locks simultaneously *)
  let t1 = Object_store.begin_ os in
  let t2 = Object_store.begin_ os in
  let m1 = Object_store.deref (Object_store.open_readonly t1 meter_cls oid) in
  let m2 = Object_store.deref (Object_store.open_readonly t2 meter_cls oid) in
  Alcotest.(check int) "t1 reads" 3 m1.view_count;
  Alcotest.(check int) "t2 reads" 3 m2.view_count;
  Object_store.commit t1;
  Object_store.commit t2

let test_writer_blocks_reader () =
  let config = { Object_store.default_config with Object_store.lock_timeout = 0.05 } in
  let os = fresh ~config (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "g" } in
  Object_store.commit x;
  let t1 = Object_store.begin_ os in
  ignore (Object_store.open_writable t1 meter_cls oid);
  let t2 = Object_store.begin_ os in
  Alcotest.(check bool) "reader times out" true
    (match Object_store.open_readonly t2 meter_cls oid with
    | exception Lock_manager.Lock_timeout _ -> true
    | _ -> false);
  Object_store.abort t2;
  Object_store.commit t1

let test_locking_disabled () =
  let config = { Object_store.default_config with Object_store.locking = false } in
  let os = fresh ~config (fresh_env ()) in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 0; print_count = 0; good = "g" } in
  Object_store.commit x;
  (* with locking off, overlapping opens do not block *)
  let t1 = Object_store.begin_ os in
  ignore (Object_store.open_writable t1 meter_cls oid);
  let t2 = Object_store.begin_ os in
  ignore (Object_store.open_readonly t2 meter_cls oid);
  Object_store.commit t1;
  Object_store.abort t2

(* --- cache --- *)

let test_cache_eviction_and_reload () =
  let config = { Object_store.default_config with Object_store.cache_budget = 512 } in
  let env = fresh_env () in
  let os = fresh ~config env in
  let x = Object_store.begin_ os in
  let oids =
    List.init 50 (fun i -> Object_store.insert x meter_cls { view_count = i; print_count = 0; good = String.make 40 'g' })
  in
  Object_store.commit x;
  (* read them all back: far more data than the budget, so eviction + reload
     must work *)
  let t = Object_store.begin_ os in
  List.iteri
    (fun i oid ->
      let m = Object_store.deref (Object_store.open_readonly t meter_cls oid) in
      Alcotest.(check int) "value" i m.view_count)
    oids;
  Object_store.abort t;
  let _, misses, evictions = Object_store.cache_stats os in
  Alcotest.(check bool) "evictions happened" true (evictions > 0);
  Alcotest.(check bool) "misses happened" true (misses > 0)

let test_cache_hit_no_io () =
  let env = fresh_env () in
  let os = fresh env in
  let x = Object_store.begin_ os in
  let oid = Object_store.insert x meter_cls { view_count = 42; print_count = 0; good = "g" } in
  Object_store.commit x;
  let t = Object_store.begin_ os in
  ignore (Object_store.deref (Object_store.open_readonly t meter_cls oid));
  Object_store.commit t;
  let reads_before = (Untrusted_store.stats env.store).Untrusted_store.reads in
  let t2 = Object_store.begin_ os in
  ignore (Object_store.deref (Object_store.open_readonly t2 meter_cls oid));
  Object_store.commit t2;
  let reads_after = (Untrusted_store.stats env.store).Untrusted_store.reads in
  Alcotest.(check int) "cached read does no store I/O" reads_before reads_after

(* Two-level cache: when the object cache is too small to hold the working
   set, re-reads fall through to the chunk store — and hit its
   verified-chunk cache instead of paying fetch + decrypt + verify. *)
let test_two_level_cache () =
  let config = { Object_store.default_config with Object_store.cache_budget = 500 } in
  let env = fresh_env () in
  let os = fresh ~config env in
  let x = Object_store.begin_ os in
  let oids =
    List.init 50 (fun i -> Object_store.insert x meter_cls { view_count = i; print_count = 0; good = String.make 40 'g' })
  in
  Object_store.commit x;
  let read_all () =
    let t = Object_store.begin_ os in
    List.iteri
      (fun i oid ->
        let m = Object_store.deref (Object_store.open_readonly t meter_cls oid) in
        Alcotest.(check int) "value" i m.view_count)
      oids;
    Object_store.abort t
  in
  read_all ();
  read_all ();
  let _, obj_misses, _ = Object_store.cache_stats os in
  let chunk_hits, _, _ = Object_store.chunk_cache_stats os in
  Alcotest.(check bool) "object cache thrashes" true (obj_misses > 0);
  Alcotest.(check bool) "chunk cache absorbs the fall-through" true (chunk_hits > 0);
  (* disabling the lower tier turns the same traffic into pure misses *)
  Object_store.set_chunk_cache_budget os 0;
  let hits0, _, _ = Object_store.chunk_cache_stats os in
  read_all ();
  let hits1, misses1, _ = Object_store.chunk_cache_stats os in
  Alcotest.(check int) "no hits with cache off" hits0 hits1;
  Alcotest.(check bool) "misses counted" true (misses1 > 0)

(* --- persistence of many objects + crash --- *)

let test_crash_recovery_objects () =
  let env = fresh_env () in
  let os = fresh env in
  let x = Object_store.begin_ os in
  let oids = List.init 20 (fun i -> Object_store.insert x meter_cls { view_count = i; print_count = 0; good = "g" }) in
  Object_store.commit x;
  (* uncommitted transaction lost in crash *)
  let x2 = Object_store.begin_ os in
  let m = Object_store.deref (Object_store.open_writable x2 meter_cls (List.hd oids)) in
  m.view_count <- 12345;
  Untrusted_store.Mem.crash_hard env.mem;
  let os2 = reopen env in
  let t = Object_store.begin_ os2 in
  List.iteri
    (fun i oid ->
      let m = Object_store.deref (Object_store.open_readonly t meter_cls oid) in
      Alcotest.(check int) "committed state" i m.view_count)
    oids;
  Object_store.abort t

(* --- schema evolution: version-aware unpickling --- *)

type profile_v2 = { mutable meters2 : Object_store.oid list; mutable plan : string }

let test_schema_evolution () =
  let env = fresh_env () in
  (* write data under the v1 class *)
  let os = fresh env in
  let oid =
    Object_store.with_txn os (fun t -> Object_store.insert t profile_cls { meters = [ 42; 43 ] })
  in
  Object_store.close os;
  (* the application is upgraded: same class name, version 2 adds a field;
     unpickle branches on the stored version *)
  Obj_class.undefine "test.profile";
  let v2_cls : profile_v2 Obj_class.t =
    let module P = Tdb_pickle.Pickle in
    Obj_class.define ~name:"test.profile" ~version:2
      ~pickle:(fun w p ->
        P.list w (fun w o -> P.uint w o) p.meters2;
        P.string w p.plan)
      ~unpickle:(fun ~version r ->
        let meters2 = P.read_list r P.read_uint in
        let plan = if version >= 2 then P.read_string r else "legacy" in
        { meters2; plan })
      ()
  in
  let os2 = reopen env in
  let t = Object_store.begin_ os2 in
  let p = Object_store.deref (Object_store.open_writable t v2_cls oid) in
  Alcotest.(check (list int)) "v1 data readable" [ 42; 43 ] p.meters2;
  Alcotest.(check string) "v1 default" "legacy" p.plan;
  p.plan <- "premium";
  Object_store.commit t;
  (* now stored as v2 *)
  let t2 = Object_store.begin_ os2 in
  let p2 = Object_store.deref (Object_store.open_readonly t2 v2_cls oid) in
  Alcotest.(check string) "v2 roundtrip" "premium" p2.plan;
  Object_store.abort t2;
  (* restore the original class for other tests *)
  Obj_class.undefine "test.profile";
  ignore (Obj_class.define ~name:"test.profile"
    ~pickle:(fun w (p : profile) -> Tdb_pickle.Pickle.list w (fun w o -> Tdb_pickle.Pickle.uint w o) p.meters)
    ~unpickle:(fun ~version:_ r -> ({ meters = Tdb_pickle.Pickle.read_list r Tdb_pickle.Pickle.read_uint } : profile))
    () : profile Obj_class.t)

let qcheck_random_objects =
  QCheck.Test.make ~name:"random object workload matches model" ~count:10
    QCheck.(list_of_size Gen.(1 -- 8) (small_list (pair (int_range 0 8) small_int)))
    (fun batches ->
      let os = fresh (fresh_env ()) in
      let key_to_oid = Hashtbl.create 8 in
      let model = Hashtbl.create 8 in
      List.iter
        (fun batch ->
          let t = Object_store.begin_ os in
          List.iter
            (fun (k, v) ->
              (match Hashtbl.find_opt key_to_oid k with
              | None ->
                  let oid = Object_store.insert t meter_cls { view_count = v; print_count = 0; good = "q" } in
                  Hashtbl.replace key_to_oid k oid
              | Some oid ->
                  let m = Object_store.deref (Object_store.open_writable t meter_cls oid) in
                  m.view_count <- v);
              Hashtbl.replace model k v)
            batch;
          Object_store.commit t)
        batches;
      let t = Object_store.begin_ os in
      let ok =
        Hashtbl.fold
          (fun k v acc ->
            let oid = Hashtbl.find key_to_oid k in
            let m = Object_store.deref (Object_store.open_readonly t meter_cls oid) in
            acc && m.view_count = v)
          model true
      in
      Object_store.abort t;
      ok)

let () =
  Alcotest.run "tdb_objstore"
    [
      ( "typed-storage",
        [
          Alcotest.test_case "insert/open" `Quick test_insert_open;
          Alcotest.test_case "type mismatch" `Quick test_type_mismatch;
          Alcotest.test_case "stale refs" `Quick test_stale_ref;
          Alcotest.test_case "figure 4 scenario" `Quick test_paper_figure4;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "update" `Quick test_update_via_writable;
          Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
          Alcotest.test_case "abort insert" `Quick test_abort_insert_gone;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remove aborted" `Quick test_remove_rolled_back_by_abort;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery_objects;
          Alcotest.test_case "schema evolution" `Quick test_schema_evolution;
        ] );
      ( "roots",
        [
          Alcotest.test_case "set/get/clear" `Quick test_roots;
          Alcotest.test_case "aborted update" `Quick test_root_update_aborted;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "serializable increments" `Slow test_concurrent_increments;
          Alcotest.test_case "concurrent transfer stress" `Slow test_concurrent_transfer_stress;
          Alcotest.test_case "deadlock timeout" `Slow test_deadlock_broken_by_timeout;
          Alcotest.test_case "shared reads" `Quick test_shared_locks_concurrent_reads;
          Alcotest.test_case "writer blocks reader" `Quick test_writer_blocks_reader;
          Alcotest.test_case "locking disabled" `Quick test_locking_disabled;
        ] );
      ( "cache",
        [
          Alcotest.test_case "eviction + reload" `Quick test_cache_eviction_and_reload;
          Alcotest.test_case "hits avoid I/O" `Quick test_cache_hit_no_io;
          Alcotest.test_case "two-level fall-through" `Quick test_two_level_cache;
        ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_random_objects ]);
    ]
