(* Tests for the tdb_lint rule engine: each rule must fire on a minimal bad
   fixture and stay silent on the corresponding good one, the allowlist
   must drop matched violations and report stale entries, and the real
   source tree must lint clean against the checked-in allowlist. *)

open Tdb_lint_engine

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let rules_at ~path src =
  List.map (fun v -> Engine.rule_id v.Engine.v_rule) (Engine.check_source ~path src)

let fires rule ~path src = List.mem rule (rules_at ~path src)

let check_fires name rule ~path src =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " fires") true (fires rule ~path src)

let check_silent name rule ~path src =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " silent") false (fires rule ~path src)

(* ------------------------------------------------------------------ *)
(* R1: polymorphic comparison                                          *)
(* ------------------------------------------------------------------ *)

let lib = "lib/collection/fixture.ml"

let test_r1 () =
  check_fires "poly =" "R1" ~path:lib "let f a b = a = b";
  check_fires "poly <>" "R1" ~path:lib "let f a b = a <> b";
  check_fires "applied compare" "R1" ~path:lib "let f a b = compare a b";
  check_fires "compare as value" "R1" ~path:lib "let f l = List.sort compare l";
  check_fires "Stdlib.compare" "R1" ~path:lib "let f a b = Stdlib.compare a b";
  check_fires "Hashtbl.hash" "R1" ~path:lib "let f x = Hashtbl.hash x";
  check_silent "String.equal" "R1" ~path:lib "let f a b = String.equal a b";
  check_silent "Int.compare as value" "R1" ~path:lib "let f l = List.sort Int.compare l";
  check_silent "int literal operand" "R1" ~path:lib "let f a = a = 0";
  check_silent "None operand" "R1" ~path:lib "let f a = a = None";
  check_silent "bool literal operand" "R1" ~path:lib "let f a = a = true";
  check_silent "nil operand" "R1" ~path:lib "let f a = a = []";
  check_silent "length result operand" "R1" ~path:lib "let f s = String.length s = 3";
  check_silent "compare-to-zero idiom" "R1" ~path:lib "let f a b = String.compare a b = 0"

(* ------------------------------------------------------------------ *)
(* R2: constant-time comparison of secret-derived values               *)
(* ------------------------------------------------------------------ *)

let test_r2 () =
  let crypto = "lib/crypto/fixture.ml" and chunk = "lib/chunk/fixture.ml" in
  check_fires "String.equal on mac" "R2" ~path:crypto "let ok mac expected = String.equal mac expected";
  check_fires "= on digest" "R2" ~path:chunk "let ok digest expected = digest = expected";
  check_fires "record field mac" "R2" ~path:chunk "let ok r e = String.equal r.mac e";
  check_fires "suffix ident" "R2" ~path:crypto "let ok commit_mac e = String.equal commit_mac e";
  check_silent "Ct.equal_string" "R2" ~path:crypto "let ok mac expected = Ct.equal_string mac expected";
  check_silent "component boundary (stage)" "R2" ~path:crypto "let ok stage e = String.equal stage e";
  (* Outside the constant-time scope the same code is acceptable. *)
  check_silent "outside ct dirs" "R2" ~path:"lib/tpcb/fixture.ml"
    "let ok mac expected = String.equal mac expected"

(* ------------------------------------------------------------------ *)
(* R3: banned modules in the trusted layers                            *)
(* ------------------------------------------------------------------ *)

let test_r3 () =
  let chunk = "lib/chunk/fixture.ml" in
  check_fires "Random in trusted" "R3" ~path:chunk "let x () = Random.int 5";
  check_fires "Obj.magic in trusted" "R3" ~path:"lib/crypto/fixture.ml" "let f x = Obj.magic x";
  check_fires "Marshal in trusted" "R3" ~path:"lib/objstore/fixture.ml"
    "let f x = Marshal.to_string x []";
  check_fires "open Random" "R3" ~path:chunk "open Random\nlet x () = int 5";
  check_silent "Random outside trusted" "R3" ~path:"lib/tpcb/fixture.ml" "let x () = Random.int 5";
  check_silent "Drbg is fine" "R3" ~path:chunk "let x d = Drbg.generate d 16"

(* ------------------------------------------------------------------ *)
(* R4: partial/unsafe functions and catch-all handlers                 *)
(* ------------------------------------------------------------------ *)

let test_r4 () =
  check_fires "List.hd" "R4" ~path:lib "let f l = List.hd l";
  check_fires "List.nth" "R4" ~path:lib "let f l = List.nth l 3";
  check_fires "Option.get" "R4" ~path:lib "let f o = Option.get o";
  check_fires "Bytes.unsafe_get" "R4" ~path:lib "let f b = Bytes.unsafe_get b 0";
  check_fires "Bytes.unsafe_to_string" "R4" ~path:lib "let f b = Bytes.unsafe_to_string b";
  check_fires "catch-all try" "R4" ~path:lib "let f g = try g () with _ -> ()";
  check_silent "pattern match" "R4" ~path:lib "let f l = match l with [] -> 0 | x :: _ -> x";
  check_silent "List.nth_opt" "R4" ~path:lib "let f l = List.nth_opt l 3";
  check_silent "specific exception" "R4" ~path:lib "let f g = try g () with Not_found -> ()";
  check_silent "Bytes.get" "R4" ~path:lib "let f b = Bytes.get b 0"

(* ------------------------------------------------------------------ *)
(* R5 + Driver.scan over a synthetic tree                              *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let test_r5_scan () =
  let root = Filename.temp_file "tdb_lint" "" in
  Sys.remove root;
  Unix.mkdir root 0o700;
  Unix.mkdir (Filename.concat root "lib") 0o700;
  let p name = Filename.concat (Filename.concat root "lib") name in
  write_file (p "good.ml") "let x = 1";
  write_file (p "good.mli") "val x : int";
  write_file (p "bare.ml") "let y = 2";
  let report = Driver.scan ~root [ "lib" ] in
  Alcotest.(check int) "files checked" 2 report.Driver.files_checked;
  let r5 =
    List.filter (fun v -> Engine.rule_equal v.Engine.v_rule Engine.R5) report.Driver.violations
  in
  Alcotest.(check int) "one missing interface" 1 (List.length r5);
  (match r5 with
  | [ v ] -> Alcotest.(check string) "names the bare module" "lib/bare.ml" v.Engine.v_file
  | _ -> Alcotest.fail "expected exactly one R5 violation")

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)
(* ------------------------------------------------------------------ *)

let test_allowlist () =
  let file = Filename.temp_file "tdb_allow" ".txt" in
  write_file file
    "# comment\n\nlib/a.ml:3:R1  # grandfathered\nlib/b.ml:9:R4\n";
  let entries = Allowlist.load file in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let v_hit =
    { Engine.v_file = "lib/a.ml"; v_line = 3; v_col = 0; v_rule = Engine.R1; v_msg = "m" }
  in
  let v_miss =
    { Engine.v_file = "lib/a.ml"; v_line = 4; v_col = 0; v_rule = Engine.R1; v_msg = "m" }
  in
  let kept, stale = Allowlist.filter entries [ v_hit; v_miss ] in
  Alcotest.(check int) "only the unmatched violation kept" 1 (List.length kept);
  (match kept with
  | [ v ] -> Alcotest.(check int) "kept the line-4 one" 4 v.Engine.v_line
  | _ -> Alcotest.fail "expected one kept violation");
  Alcotest.(check int) "lib/b.ml entry is stale" 1 (List.length stale);
  (* wrong rule does not match *)
  let wrong_rule = { v_hit with Engine.v_rule = Engine.R4 } in
  let kept', _ = Allowlist.filter entries [ wrong_rule ] in
  Alcotest.(check int) "rule must match too" 1 (List.length kept');
  (* malformed entries are hard errors *)
  write_file file "lib/a.ml:notanumber:R1\n";
  Alcotest.(check bool) "malformed line raises" true
    (match Allowlist.load file with exception Failure _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* The real tree lints clean                                           *)
(* ------------------------------------------------------------------ *)

let test_real_tree_clean () =
  (* `dune runtest` runs from test/, `dune exec` from the project root. *)
  let root = if Sys.file_exists "lib" && Sys.is_directory "lib" then "." else ".." in
  let report = Driver.scan ~root [ "lib" ] in
  Alcotest.(check bool) "scanned a real tree" true (report.Driver.files_checked > 30);
  let entries = Allowlist.load (Filename.concat root "lint_allow.txt") in
  let kept, stale = Allowlist.filter entries report.Driver.violations in
  let show vs =
    String.concat "; "
      (List.map (fun v -> Printf.sprintf "%s:%d:%s" v.Engine.v_file v.Engine.v_line
                    (Engine.rule_id v.Engine.v_rule)) vs)
  in
  Alcotest.(check string) "no unallowed violations" "" (show kept);
  Alcotest.(check int) "no stale allow entries" 0 (List.length stale)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 polymorphic comparison" `Quick test_r1;
          Alcotest.test_case "R2 constant-time comparison" `Quick test_r2;
          Alcotest.test_case "R3 banned modules" `Quick test_r3;
          Alcotest.test_case "R4 partial functions" `Quick test_r4;
        ] );
      ( "driver",
        [
          Alcotest.test_case "R5 via scan" `Quick test_r5_scan;
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "real tree clean" `Quick test_real_tree_clean;
        ] );
    ]
