(* Tests for the tdb_lint rule engine: each rule must fire on a minimal bad
   fixture and stay silent on the corresponding good one, the allowlist
   must drop matched violations and report stale entries, and the real
   source tree must lint clean against the checked-in allowlist. *)

open Tdb_lint_engine

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let rules_at ~path src =
  List.map (fun v -> Engine.rule_id v.Engine.v_rule) (Engine.check_source ~path src)

let fires rule ~path src = List.mem rule (rules_at ~path src)

let check_fires name rule ~path src =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " fires") true (fires rule ~path src)

let check_silent name rule ~path src =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " silent") false (fires rule ~path src)

(* ------------------------------------------------------------------ *)
(* R1: polymorphic comparison                                          *)
(* ------------------------------------------------------------------ *)

let lib = "lib/collection/fixture.ml"

let test_r1 () =
  check_fires "poly =" "R1" ~path:lib "let f a b = a = b";
  check_fires "poly <>" "R1" ~path:lib "let f a b = a <> b";
  check_fires "applied compare" "R1" ~path:lib "let f a b = compare a b";
  check_fires "compare as value" "R1" ~path:lib "let f l = List.sort compare l";
  check_fires "Stdlib.compare" "R1" ~path:lib "let f a b = Stdlib.compare a b";
  check_fires "Hashtbl.hash" "R1" ~path:lib "let f x = Hashtbl.hash x";
  check_silent "String.equal" "R1" ~path:lib "let f a b = String.equal a b";
  check_silent "Int.compare as value" "R1" ~path:lib "let f l = List.sort Int.compare l";
  check_silent "int literal operand" "R1" ~path:lib "let f a = a = 0";
  check_silent "None operand" "R1" ~path:lib "let f a = a = None";
  check_silent "bool literal operand" "R1" ~path:lib "let f a = a = true";
  check_silent "nil operand" "R1" ~path:lib "let f a = a = []";
  check_silent "length result operand" "R1" ~path:lib "let f s = String.length s = 3";
  check_silent "compare-to-zero idiom" "R1" ~path:lib "let f a b = String.compare a b = 0"

(* ------------------------------------------------------------------ *)
(* R2: constant-time comparison of secret-derived values               *)
(* ------------------------------------------------------------------ *)

let test_r2 () =
  let crypto = "lib/crypto/fixture.ml" and chunk = "lib/chunk/fixture.ml" in
  check_fires "String.equal on mac" "R2" ~path:crypto "let ok mac expected = String.equal mac expected";
  check_fires "= on digest" "R2" ~path:chunk "let ok digest expected = digest = expected";
  check_fires "record field mac" "R2" ~path:chunk "let ok r e = String.equal r.mac e";
  check_fires "suffix ident" "R2" ~path:crypto "let ok commit_mac e = String.equal commit_mac e";
  check_silent "Ct.equal_string" "R2" ~path:crypto "let ok mac expected = Ct.equal_string mac expected";
  check_silent "component boundary (stage)" "R2" ~path:crypto "let ok stage e = String.equal stage e";
  (* Outside the constant-time scope the same code is acceptable. *)
  check_silent "outside ct dirs" "R2" ~path:"lib/tpcb/fixture.ml"
    "let ok mac expected = String.equal mac expected"

(* ------------------------------------------------------------------ *)
(* R3: banned modules in the trusted layers                            *)
(* ------------------------------------------------------------------ *)

let test_r3 () =
  let chunk = "lib/chunk/fixture.ml" in
  check_fires "Random in trusted" "R3" ~path:chunk "let x () = Random.int 5";
  check_fires "Obj.magic in trusted" "R3" ~path:"lib/crypto/fixture.ml" "let f x = Obj.magic x";
  check_fires "Marshal in trusted" "R3" ~path:"lib/objstore/fixture.ml"
    "let f x = Marshal.to_string x []";
  check_fires "open Random" "R3" ~path:chunk "open Random\nlet x () = int 5";
  check_silent "Random outside trusted" "R3" ~path:"lib/tpcb/fixture.ml" "let x () = Random.int 5";
  check_silent "Drbg is fine" "R3" ~path:chunk "let x d = Drbg.generate d 16"

(* ------------------------------------------------------------------ *)
(* R4: partial/unsafe functions and catch-all handlers                 *)
(* ------------------------------------------------------------------ *)

let test_r4 () =
  check_fires "List.hd" "R4" ~path:lib "let f l = List.hd l";
  check_fires "List.nth" "R4" ~path:lib "let f l = List.nth l 3";
  check_fires "Option.get" "R4" ~path:lib "let f o = Option.get o";
  check_fires "Bytes.unsafe_get" "R4" ~path:lib "let f b = Bytes.unsafe_get b 0";
  check_fires "Bytes.unsafe_to_string" "R4" ~path:lib "let f b = Bytes.unsafe_to_string b";
  check_fires "catch-all try" "R4" ~path:lib "let f g = try g () with _ -> ()";
  check_silent "pattern match" "R4" ~path:lib "let f l = match l with [] -> 0 | x :: _ -> x";
  check_silent "List.nth_opt" "R4" ~path:lib "let f l = List.nth_opt l 3";
  check_silent "specific exception" "R4" ~path:lib "let f g = try g () with Not_found -> ()";
  check_silent "Bytes.get" "R4" ~path:lib "let f b = Bytes.get b 0"

(* ------------------------------------------------------------------ *)
(* R5 + Driver.scan over a synthetic tree                              *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let test_r5_scan () =
  let root = Filename.temp_file "tdb_lint" "" in
  Sys.remove root;
  Unix.mkdir root 0o700;
  Unix.mkdir (Filename.concat root "lib") 0o700;
  let p name = Filename.concat (Filename.concat root "lib") name in
  write_file (p "good.ml") "let x = 1";
  write_file (p "good.mli") "val x : int";
  write_file (p "bare.ml") "let y = 2";
  let report = Driver.scan ~root [ "lib" ] in
  Alcotest.(check int) "files checked" 2 report.Driver.files_checked;
  let r5 =
    List.filter (fun v -> Engine.rule_equal v.Engine.v_rule Engine.R5) report.Driver.violations
  in
  Alcotest.(check int) "one missing interface" 1 (List.length r5);
  (match r5 with
  | [ v ] -> Alcotest.(check string) "names the bare module" "lib/bare.ml" v.Engine.v_file
  | _ -> Alcotest.fail "expected exactly one R5 violation")

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)
(* ------------------------------------------------------------------ *)

let test_allowlist () =
  let file = Filename.temp_file "tdb_allow" ".txt" in
  write_file file
    "# comment\n\nlib/a.ml:3:R1  # grandfathered\nlib/b.ml:9:R4\n";
  let entries = Allowlist.load file in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let v_hit =
    { Engine.v_file = "lib/a.ml"; v_line = 3; v_col = 0; v_rule = Engine.R1; v_msg = "m" }
  in
  let v_miss =
    { Engine.v_file = "lib/a.ml"; v_line = 4; v_col = 0; v_rule = Engine.R1; v_msg = "m" }
  in
  let kept, stale = Allowlist.filter entries [ v_hit; v_miss ] in
  Alcotest.(check int) "only the unmatched violation kept" 1 (List.length kept);
  (match kept with
  | [ v ] -> Alcotest.(check int) "kept the line-4 one" 4 v.Engine.v_line
  | _ -> Alcotest.fail "expected one kept violation");
  Alcotest.(check int) "lib/b.ml entry is stale" 1 (List.length stale);
  (* wrong rule does not match *)
  let wrong_rule = { v_hit with Engine.v_rule = Engine.R4 } in
  let kept', _ = Allowlist.filter entries [ wrong_rule ] in
  Alcotest.(check int) "rule must match too" 1 (List.length kept');
  (* malformed entries are hard errors *)
  write_file file "lib/a.ml:notanumber:R1\n";
  Alcotest.(check bool) "malformed line raises" true
    (match Allowlist.load file with exception Failure _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* R6: interprocedural secret taint (via Driver.check_program)         *)
(* ------------------------------------------------------------------ *)

let prog_violations units =
  (Driver.check_program units).Driver.violations

let prog_fires name rule units =
  Alcotest.(check bool) (name ^ ": " ^ rule ^ " fires") true
    (List.exists
       (fun v -> String.equal (Engine.rule_id v.Engine.v_rule) rule)
       (prog_violations units))

let prog_silent name rule units =
  let hits =
    List.filter
      (fun v -> String.equal (Engine.rule_id v.Engine.v_rule) rule)
      (prog_violations units)
  in
  Alcotest.(check string) (name ^ ": " ^ rule ^ " silent") ""
    (String.concat "; "
       (List.map (fun v -> Printf.sprintf "%s:%d %s" v.Engine.v_file v.Engine.v_line v.Engine.v_msg) hits))

let chunk_fix = "lib/chunk/fixture.ml"

let test_r6 () =
  (* A derived key shipped to the untrusted store, verbatim. *)
  prog_fires "key to store write" "R6"
    [ (chunk_fix, "let leak st = Untrusted_store.write st 0 (Secret_store.derive ())") ];
  (* The seal pipeline sanitizes: unseal -> seal -> write is the design. *)
  prog_silent "seal sanitizes" "R6"
    [
      ( chunk_fix,
        "let roundtrip st sec buf =\n\
        \  let pt = Security.unseal sec buf in\n\
        \  let sealed = Security.seal sec pt in\n\
        \  Untrusted_store.write st 0 sealed" );
    ];
  (* ... but writing the plaintext itself is a violation. *)
  prog_fires "unseal to store write" "R6"
    [
      ( chunk_fix,
        "let bad st sec buf =\n\
        \  let pt = Security.unseal sec buf in\n\
        \  Untrusted_store.write st 0 pt" );
    ];
  (* Taint survives a tuple and two helper hops: the projection helper
     returns its tainted component, the stash helper forwards its
     argument to the sink, and the violation lands at the call site. *)
  prog_fires "taint through tuple + helpers" "R6"
    [
      ( chunk_fix,
        "let second (_, b) = b\n\
         let stash st x = Untrusted_store.write st 0 x\n\
         let bad st sec buf =\n\
        \  let pair = (1, Security.unseal sec buf) in\n\
        \  stash st (second pair)" );
    ];
  (* Same shape, clean payload: no violation. *)
  prog_silent "clean value through helpers" "R6"
    [
      ( chunk_fix,
        "let second (_, b) = b\n\
         let stash st x = Untrusted_store.write st 0 x\n\
         let ok st buf =\n\
        \  let pair = (1, buf) in\n\
        \  stash st (second pair)" );
    ];
  (* MACs and digests are one-way: safe to ship. *)
  prog_silent "digest sanitizes" "R6"
    [
      ( chunk_fix,
        "let ok st sec buf =\n\
        \  let pt = Security.unseal sec buf in\n\
        \  Untrusted_store.write st 0 (Sha256.digest pt)" );
    ];
  (* Interprocedural across files: the helper lives in another module. *)
  prog_fires "cross-module taint" "R6"
    [
      ("lib/chunk/helper.ml", "let stash st x = Untrusted_store.write st 0 x");
      ( chunk_fix,
        "let bad st sec buf = Helper.stash st (Security.unseal sec buf)" );
    ];
  (* Outside the report dirs the same flow is not an error (lib/platform
     implements the boundary). *)
  prog_silent "platform is below the line" "R6"
    [
      ( "lib/platform/fixture.ml",
        "let leak st = Untrusted_store.write st 0 (Secret_store.derive ())" );
    ]

(* ------------------------------------------------------------------ *)
(* R7: lock discipline (via Driver.check_program)                      *)
(* ------------------------------------------------------------------ *)

let server_fix = "lib/server/fixture.ml"

let test_r7 () =
  let prelude =
    "let mu = Mutex.create ()\nlet mu2 = Mutex.create ()\nlet cond = Condition.create ()\n"
  in
  (* Balanced lock/unlock, and waiting on the mutex actually held: fine. *)
  prog_silent "balanced + correct wait" "R7"
    [
      ( server_fix,
        prelude
        ^ "let ok () = Mutex.lock mu; Mutex.unlock mu\n\
           let ok2 () = Mutex.lock mu; Condition.wait cond mu; Mutex.unlock mu" );
    ];
  (* Condition.wait on a mutex other than the one held. *)
  prog_fires "wait on wrong mutex" "R7"
    [
      ( server_fix,
        prelude ^ "let bad () = Mutex.lock mu; Condition.wait cond mu2; Mutex.unlock mu" );
    ];
  (* Blocking store I/O while holding a non-exempt mutex. *)
  prog_fires "blocking sync under mutex" "R7"
    [
      ( server_fix,
        prelude ^ "let bad st = Mutex.lock mu; Untrusted_store.sync st; Mutex.unlock mu" );
    ];
  (* The same I/O under a documented io-lock (Object_store.mu — the
     canonical name comes from the defining file) is the design, not a
     violation. *)
  prog_silent "io-exempt lock" "R7"
    [
      ( "lib/objstore/object_store.ml",
        "let sync_under_mu (t : t) st = Mutex.lock t.mu; Untrusted_store.sync st; Mutex.unlock t.mu" );
    ];
  (* Re-locking a mutex already held. *)
  prog_fires "self deadlock" "R7"
    [ (server_fix, prelude ^ "let bad () = Mutex.lock mu; Mutex.lock mu; Mutex.unlock mu") ];
  (* A wrapper in the with_mu style: the thunk's body runs under the
     wrapper's lock, so blocking inside the lambda is caught. *)
  prog_fires "blocking inside wrapped thunk" "R7"
    [
      ( server_fix,
        prelude
        ^ "let with_mu f = Mutex.lock mu; Fun.protect ~finally:(fun () -> Mutex.unlock mu) f\n\
           let bad () = with_mu (fun () -> Thread.delay 0.1)" );
    ];
  (* A cross-module lock-order cycle, visible only through summaries:
     Alpha locks its mutex then calls Beta (which locks Beta's), and
     vice versa. *)
  let alpha =
    "let mu = Mutex.create ()\n\
     let touch () = Mutex.lock mu; Mutex.unlock mu\n\
     let ab () = Mutex.lock mu; Beta.poke (); Mutex.unlock mu"
  in
  let beta =
    "let mu = Mutex.create ()\n\
     let poke () = Mutex.lock mu; Mutex.unlock mu\n\
     let ba () = Mutex.lock mu; Alpha.touch (); Mutex.unlock mu"
  in
  let vs =
    prog_violations [ ("lib/server/alpha.ml", alpha); ("lib/server/beta.ml", beta) ]
  in
  Alcotest.(check bool) "lock-order cycle detected" true
    (List.exists
       (fun v ->
         Engine.rule_equal v.Engine.v_rule Engine.R7
         && String.length v.Engine.v_msg >= 16
         && String.equal (String.sub v.Engine.v_msg 0 16) "lock-order cycle")
       vs);
  (* Consistent ordering (both paths lock Alpha before Beta): no cycle. *)
  let beta_ok =
    "let mu = Mutex.create ()\nlet poke () = Mutex.lock mu; Mutex.unlock mu"
  in
  prog_silent "consistent order" "R7"
    [ ("lib/server/alpha.ml", alpha); ("lib/server/beta.ml", beta_ok) ]

(* R7, domain rules: spawned bodies, coordinator-only effects, spinning. *)
let test_r7_domains () =
  let prelude = "let mu = Mutex.create ()\n" in
  (* Pure work on a spawned domain: fine. *)
  prog_silent "pure domain body" "R7"
    [ (chunk_fix, "let ok buf = Domain.spawn (fun () -> Sha256.digest buf)") ];
  (* A DRBG draw inside a spawned body destroys IV-draw ordering. *)
  prog_fires "drbg draw in domain body" "R7"
    [ (chunk_fix, "let bad g = Domain.spawn (fun () -> Drbg.generate g 16)") ];
  (* Same misuse, hidden behind a helper: the l_draws summary carries it. *)
  prog_fires "transitive seal in domain body" "R7"
    [
      ( chunk_fix,
        "let seal_one sec x = Security.seal sec x\n\
         let bad sec x = Domain.spawn (fun () -> seal_one sec x)" );
    ];
  (* The coordinator itself may draw freely. *)
  prog_silent "draw on the coordinator" "R7"
    [ (chunk_fix, "let ok g = Drbg.generate g 16") ];
  (* Domain.join is a blocking call: not allowed under a choreography
     mutex. *)
  prog_fires "domain join under mutex" "R7"
    [
      ( chunk_fix,
        prelude ^ "let bad d = Mutex.lock mu; let r = Domain.join d in Mutex.unlock mu; r" );
    ];
  (* Spinning on an Atomic while holding a mutex burns the hold time. *)
  prog_fires "atomic spin under mutex" "R7"
    [
      ( chunk_fix,
        prelude
        ^ "let bad flag = Mutex.lock mu; while Atomic.get flag do () done; Mutex.unlock mu" );
    ];
  (* The same spin without a lock held is ordinary lock-free waiting. *)
  prog_silent "atomic spin unlocked" "R7"
    [ (chunk_fix, "let ok flag = while Atomic.get flag do () done") ]

(* ------------------------------------------------------------------ *)
(* Allowlist refresh                                                   *)
(* ------------------------------------------------------------------ *)

let test_refresh () =
  let file = Filename.temp_file "tdb_allow" ".txt" in
  write_file file
    "# Header comment survives verbatim.\n\n\
     lib/a.ml:3:R1  # grandfathered comparison\n\
     lib/b.ml:9:R4\n";
  let v l rule = { Engine.v_file = "lib/a.ml"; v_line = l; v_col = 0; v_rule = rule; v_msg = "m" } in
  (* The R1 site drifted from line 3 to line 7; the R4 entry's violation
     is gone entirely. *)
  let { Allowlist.r_lines; r_updated; r_unmatched } =
    Allowlist.refresh file [ v 7 Engine.R1 ]
  in
  Alcotest.(check int) "one entry re-pointed" 1 r_updated;
  Alcotest.(check int) "one entry unmatched" 1 (List.length r_unmatched);
  (match r_unmatched with
  | [ e ] -> Alcotest.(check string) "the dead grant is the R4 one" "lib/b.ml" e.Allowlist.a_file
  | _ -> Alcotest.fail "expected exactly one unmatched entry");
  Alcotest.(check (list string)) "file regenerated, comments preserved"
    [
      "# Header comment survives verbatim.";
      "";
      "lib/a.ml:7:R1  # grandfathered comparison";
      "lib/b.ml:9:R4";
    ]
    r_lines;
  (* An exact match outranks a nearer violation of the same rule: entry
     at line 3 stays put even with a drifted candidate at line 4. *)
  write_file file "lib/a.ml:3:R1  # exact\n";
  let { Allowlist.r_lines; r_updated; _ } =
    Allowlist.refresh file [ v 4 Engine.R1; v 3 Engine.R1 ]
  in
  Alcotest.(check int) "exact match not re-pointed" 0 r_updated;
  Alcotest.(check (list string)) "line untouched" [ "lib/a.ml:3:R1  # exact" ] r_lines

(* ------------------------------------------------------------------ *)
(* The real tree lints clean                                           *)
(* ------------------------------------------------------------------ *)

let test_real_tree_clean () =
  (* `dune runtest` runs from test/, `dune exec` from the project root. *)
  let root = if Sys.file_exists "lib" && Sys.is_directory "lib" then "." else ".." in
  let report = Driver.scan ~root [ "lib"; "bin"; "bench" ] in
  Alcotest.(check bool) "scanned a real tree" true (report.Driver.files_checked > 30);
  Alcotest.(check bool) "built a real call graph" true (report.Driver.stats.Driver.st_call_edges > 200);
  let entries = Allowlist.load (Filename.concat root "lint_allow.txt") in
  let kept, stale = Allowlist.filter entries report.Driver.violations in
  let show vs =
    String.concat "; "
      (List.map (fun v -> Printf.sprintf "%s:%d:%s" v.Engine.v_file v.Engine.v_line
                    (Engine.rule_id v.Engine.v_rule)) vs)
  in
  Alcotest.(check string) "no unallowed violations" "" (show kept);
  Alcotest.(check int) "no stale allow entries" 0 (List.length stale)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 polymorphic comparison" `Quick test_r1;
          Alcotest.test_case "R2 constant-time comparison" `Quick test_r2;
          Alcotest.test_case "R3 banned modules" `Quick test_r3;
          Alcotest.test_case "R4 partial functions" `Quick test_r4;
          Alcotest.test_case "R6 secret taint" `Quick test_r6;
          Alcotest.test_case "R7 lock discipline" `Quick test_r7;
          Alcotest.test_case "R7 domain rules" `Quick test_r7_domains;
        ] );
      ( "driver",
        [
          Alcotest.test_case "R5 via scan" `Quick test_r5_scan;
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "allowlist refresh" `Quick test_refresh;
          Alcotest.test_case "real tree clean" `Quick test_real_tree_clean;
        ] );
    ]
