(* Fault-injection regression tests: the crash scenarios behind the
   recovery / counter / restore fixes, each pinned deterministically, plus
   a bounded crashfuzz sweep as a smoke test. *)

open Tdb_platform
open Tdb_chunk
open Tdb_faultsim

let cfg =
  { Config.default with Config.cipher = Config.Aes128; hash = Config.Sha1; segment_size = 2048;
    anchor_slot_size = 1024; initial_segments = 4; checkpoint_every = 8;
    checkpoint_residual_bytes = 4 * 2048; clean_batch = 2 }

(* --- recovery: a crash-torn nondurable chain is a crash, not tampering --- *)

(* A bulk-sized nondurable batch splits into a chain of sub-commits; a
   crash may lose any single unsynced write (record header, payload or
   commit record) from ANY link of the chain. Recovery must treat every
   such image as an honest crash: reopen, roll back to the durable
   baseline, stay usable. The pre-fix code excused only the literal final
   record and raised Tamper_detected for the rest. *)
let test_torn_nondurable_chain () =
  let n_chunks = 20 in
  let run_with_drop drop =
    let mem, store = Untrusted_store.open_mem () in
    let _, ctr = One_way_counter.open_mem () in
    let secret = Secret_store.of_seed "torn-chain" in
    let cs = Chunk_store.create ~config:cfg ~secret ~counter:ctr store in
    let base = Chunk_store.allocate cs in
    Chunk_store.write cs base "durable-baseline";
    Chunk_store.commit ~durable:true cs;
    (* count fragments, not write calls: the batch lands as a few vectored
       flushes, but each record edge is still a separately losable fragment
       (one pending entry, one Mem.crash rng draw) *)
    let frags_before = (Untrusted_store.stats store).Untrusted_store.fragments in
    let ids =
      List.init n_chunks (fun i ->
          let cid = Chunk_store.allocate cs in
          Chunk_store.write cs cid (Printf.sprintf "bulk-%03d-%s" i (String.make 80 'x'));
          cid)
    in
    Chunk_store.commit ~durable:false cs;
    let unsynced = (Untrusted_store.stats store).Untrusted_store.fragments - frags_before in
    (* survive every unsynced write except the [drop]-th *)
    let w = ref (-1) in
    Untrusted_store.Mem.crash ~persist_prob:0.5
      ~rng:(fun _ ->
        incr w;
        if Int.equal !w drop then 999 else 0)
      mem;
    (match Chunk_store.open_existing ~config:cfg ~secret ~counter:ctr store with
    | cs2 ->
        (* rolled back to the durable baseline, batch all-or-nothing *)
        Alcotest.(check string) "baseline survives" "durable-baseline" (Chunk_store.read cs2 base);
        List.iter
          (fun cid ->
            match Chunk_store.read cs2 cid with
            | _ -> Alcotest.failf "drop %d: chunk %d visible from a discarded batch" drop cid
            | exception Types.Not_written _ -> ()
            | exception Types.Not_allocated _ -> ())
          ids;
        (* still usable: a fresh durable commit goes through *)
        let c = Chunk_store.allocate cs2 in
        Chunk_store.write cs2 c "post-crash";
        Chunk_store.commit ~durable:true cs2;
        Alcotest.(check string) "post-crash write" "post-crash" (Chunk_store.read cs2 c)
    | exception Types.Tamper_detected m -> Alcotest.failf "drop %d misclassified as tampering: %s" drop m);
    unsynced
  in
  let unsynced = run_with_drop 0 in
  Alcotest.(check bool) "batch is a chained multi-commit" true (unsynced > 10);
  for drop = 1 to unsynced - 1 do
    ignore (run_with_drop drop)
  done

(* --- counter: a torn slot write must never lose monotonicity --- *)

(* After four increments the maximum sits in slot 0; a reopened handle's
   next increment must target slot 1 (the slot NOT holding the max), so a
   torn write costs at most the in-flight increment. The pre-fix blind
   alternation restarted at slot 0 after reopen and let the torn write
   destroy the maximum. *)
let test_torn_counter_slot () =
  let mem, raw = Untrusted_store.open_mem () in
  let plan = Fault_plan.create () in
  let inst = Fault_plan.instrument plan raw in
  let c1 = One_way_counter.open_store inst in
  for _ = 1 to 4 do
    ignore (One_way_counter.increment c1)
  done;
  Alcotest.(check int64) "counter at 4" 4L (One_way_counter.read c1);
  (* reopen, then tear the very next slot write *)
  let c2 = One_way_counter.open_store inst in
  Fault_plan.arm plan ~at:0 ~tear:Fault_plan.Torn;
  (match One_way_counter.increment c2 with
  | v -> Alcotest.failf "increment survived the crashpoint (%Ld)" v
  | exception Fault_plan.Crash_point -> ());
  Fault_plan.reset plan;
  (* the torn write reached the medium; the sync after it did not *)
  Untrusted_store.Mem.crash ~persist_prob:1.0 ~rng:(fun _ -> 0) mem;
  let c3 = One_way_counter.open_store raw in
  let v = One_way_counter.read c3 in
  Alcotest.(check bool) (Printf.sprintf "monotone after torn write (read %Ld)" v) true
    (Int64.compare v 4L >= 0);
  (* and the counter still works *)
  let v' = One_way_counter.increment c3 in
  Alcotest.(check bool) "increment advances" true (Int64.compare v' v > 0)

(* the same window swept across every boundary of the counter protocol *)
let test_counter_crash_sweep () =
  let boundaries_per_increment = 2 (* slot write + sync *) in
  for k = 0 to (4 * boundaries_per_increment) - 1 do
    List.iter
      (fun tear ->
        let mem, raw = Untrusted_store.open_mem () in
        let plan = Fault_plan.create () in
        let inst = Fault_plan.instrument plan raw in
        let c1 = One_way_counter.open_store inst in
        for _ = 1 to 4 do
          ignore (One_way_counter.increment c1)
        done;
        let c2 = One_way_counter.open_store inst in
        Fault_plan.arm plan ~at:k ~tear;
        let floor = ref 4L in
        (try
           for _ = 1 to 4 do
             let v = One_way_counter.increment c2 in
             floor := v
           done
         with Fault_plan.Crash_point -> ());
        Fault_plan.reset plan;
        Untrusted_store.Mem.crash ~persist_prob:1.0 ~rng:(fun _ -> 0) mem;
        let v = One_way_counter.read (One_way_counter.open_store raw) in
        if Int64.compare v !floor < 0 then
          Alcotest.failf "k=%d: counter rolled back to %Ld (floor %Ld)" k v !floor)
      [ Fault_plan.Skip; Fault_plan.Torn; Fault_plan.Applied ]
  done

(* --- restore: oversized backup records surface as typed errors --- *)

let test_oversized_restore_chunk () =
  let _, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  let secret = Secret_store.of_seed "oversize" in
  let cs = Chunk_store.create ~config:cfg ~secret ~counter:ctr store in
  let big = String.make (Config.max_chunk_size cfg + 1) 'z' in
  (match Chunk_store.restore_chunk cs 42 big with
  | () -> Alcotest.fail "oversized restore_chunk accepted"
  | exception Types.Chunk_too_large { cid; size; max } ->
      Alcotest.(check int) "offending id" 42 cid;
      Alcotest.(check int) "offending size" (String.length big) size;
      Alcotest.(check bool) "limit positive" true (max > 0));
  (* the store is untouched and usable *)
  Chunk_store.commit cs;
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "fine";
  Chunk_store.commit cs;
  Alcotest.(check string) "store usable" "fine" (Chunk_store.read cs a)

let test_oversized_backup_restore () =
  let open Tdb_backup in
  let big_cfg = { cfg with Config.segment_size = 8192; checkpoint_residual_bytes = 4 * 8192 } in
  let _, src_store = Untrusted_store.open_mem () in
  let _, src_ctr = One_way_counter.open_mem () in
  let secret = Secret_store.of_seed "backup-oversize" in
  let _, archive = Archival_store.open_mem () in
  let src = Chunk_store.create ~config:big_cfg ~secret ~counter:src_ctr src_store in
  let bs = Backup_store.create ~secret ~archive (Shard_store.wrap src) in
  let a = Chunk_store.allocate src in
  Chunk_store.write src a (String.make 3000 'b');
  Chunk_store.commit src;
  ignore (Backup_store.backup_full bs);
  (* restore into a store whose segments cannot hold that record *)
  let _, tgt_store = Untrusted_store.open_mem () in
  let _, tgt_ctr = One_way_counter.open_mem () in
  let tgt = Chunk_store.create ~config:cfg ~secret ~counter:tgt_ctr tgt_store in
  (match Backup_store.restore ~secret ~archive ~into:(Shard_store.wrap tgt) () with
  | n -> Alcotest.failf "restore of an impossible record succeeded (%d)" n
  | exception Backup_store.Invalid_backup _ -> ());
  (* the aborted restore left the target clean... *)
  Alcotest.(check bool) "no residue of the oversized chunk" true
    (match Chunk_store.read tgt a with
    | _ -> false
    | exception Types.Not_written _ -> true
    | exception Types.Not_allocated _ -> true);
  (* ...and usable *)
  let c = Chunk_store.allocate tgt in
  Chunk_store.write tgt c "clean";
  Chunk_store.commit tgt;
  Alcotest.(check string) "target usable" "clean" (Chunk_store.read tgt c)

(* --- bounded crashfuzz sweep as a regression smoke test --- *)

let test_crashfuzz_smoke () =
  let report =
    Crashfuzz.sweep_crashpoints ~trace:Crashfuzz.smoke_trace ~seeds:2 ~stride:17 ()
  in
  Alcotest.(check bool) "swept a real trace" true (report.Crashfuzz.boundaries > 50);
  Alcotest.(check bool) "crashed and recovered" true (report.Crashfuzz.recoveries > 0);
  (match report.Crashfuzz.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%d violations, first: %s %s: %s"
        (List.length report.Crashfuzz.violations)
        v.Crashfuzz.v_run v.Crashfuzz.v_kind v.Crashfuzz.v_detail)

(* Same sweep over the server's group-commit schedule: nondurable session
   commits coalesced by a staged barrier, crashed at every boundary —
   including inside the barrier's sync window, where further commits land
   after the barrier record. *)
let test_crashfuzz_group_commit () =
  let report = Crashfuzz.sweep_group_commit ~trace:Crashfuzz.smoke_trace ~seeds:2 ~stride:17 () in
  Alcotest.(check bool) "swept a real trace" true (report.Crashfuzz.boundaries > 50);
  Alcotest.(check bool) "crashed and recovered" true (report.Crashfuzz.recoveries > 0);
  (match report.Crashfuzz.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%d violations, first: %s %s: %s"
        (List.length report.Crashfuzz.violations)
        v.Crashfuzz.v_run v.Crashfuzz.v_kind v.Crashfuzz.v_detail)

(* Same sweep with every commit a large durable multi-chunk commit: each
   flush is one coalesced vectored write, decomposed by the fault plan
   into per-fragment crash boundaries — header/payload splits, record
   seams and chain markers of a single commit flush. *)
let test_crashfuzz_commit_flush () =
  let report = Crashfuzz.sweep_commit_flush ~trace:Crashfuzz.smoke_trace ~seeds:2 ~stride:17 () in
  Alcotest.(check bool) "swept a real trace" true (report.Crashfuzz.boundaries > 50);
  Alcotest.(check bool) "crashed and recovered" true (report.Crashfuzz.recoveries > 0);
  (match report.Crashfuzz.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%d violations, first: %s %s: %s"
        (List.length report.Crashfuzz.violations)
        v.Crashfuzz.v_run v.Crashfuzz.v_kind v.Crashfuzz.v_detail)

let test_tamper_smoke () =
  let report = Crashfuzz.sweep_tamper ~stride:41 ~trace:Crashfuzz.smoke_trace () in
  Alcotest.(check int) "no silent corruption" 0 report.Crashfuzz.silent;
  Alcotest.(check bool) "flips in live data detected" true (report.Crashfuzz.detected > 0);
  Alcotest.(check bool) "flips in garbage harmless" true (report.Crashfuzz.harmless > 0)

(* Same sweep through a shard router: transfers spanning two shards commit
   through the cross-shard 2PC, crashed at every store boundary between
   prepare and commit — after recovery every shard must agree on each
   transaction's outcome (no partial application). *)
let test_crashfuzz_shard_2pc () =
  let report =
    Crashfuzz.sweep_shard_2pc ~shards:2 ~trace:Crashfuzz.smoke_trace ~seeds:2 ~stride:29 ()
  in
  Alcotest.(check bool) "swept a real trace" true (report.Crashfuzz.boundaries > 50);
  Alcotest.(check bool) "crashed and recovered" true (report.Crashfuzz.recoveries > 0);
  (match report.Crashfuzz.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%d violations, first: %s %s: %s"
        (List.length report.Crashfuzz.violations)
        v.Crashfuzz.v_run v.Crashfuzz.v_kind v.Crashfuzz.v_detail)

let test_shard_tamper_smoke () =
  let report = Crashfuzz.sweep_shard_tamper ~stride:53 ~shards:2 ~trace:Crashfuzz.smoke_trace () in
  Alcotest.(check int) "no silent corruption" 0 report.Crashfuzz.silent;
  Alcotest.(check bool) "flips in live data detected" true (report.Crashfuzz.detected > 0)

let () =
  Alcotest.run "faultsim"
    [
      ( "recovery",
        [ Alcotest.test_case "torn nondurable chain is a crash" `Quick test_torn_nondurable_chain ] );
      ( "counter",
        [
          Alcotest.test_case "torn slot write stays monotone" `Quick test_torn_counter_slot;
          Alcotest.test_case "crash sweep over counter protocol" `Quick test_counter_crash_sweep;
        ] );
      ( "restore",
        [
          Alcotest.test_case "oversized restore_chunk" `Quick test_oversized_restore_chunk;
          Alcotest.test_case "oversized backup restore" `Quick test_oversized_backup_restore;
        ] );
      ( "crashfuzz",
        [
          Alcotest.test_case "bounded crashpoint sweep" `Slow test_crashfuzz_smoke;
          Alcotest.test_case "bounded group-commit sweep" `Slow test_crashfuzz_group_commit;
          Alcotest.test_case "bounded commit-flush sweep" `Slow test_crashfuzz_commit_flush;
          Alcotest.test_case "bounded tamper sweep" `Slow test_tamper_smoke;
          Alcotest.test_case "bounded cross-shard 2PC sweep" `Slow test_crashfuzz_shard_2pc;
          Alcotest.test_case "bounded shard tamper sweep" `Slow test_shard_tamper_smoke;
        ] );
    ]
