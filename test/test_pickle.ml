(* Pickle format tests: roundtrips for each combinator, varint edge cases,
   truncation/overrun detection. *)

open Tdb_pickle

let roundtrip write read v =
  let w = Pickle.writer () in
  write w v;
  let r = Pickle.reader (Pickle.contents w) in
  let v' = read r in
  Pickle.expect_end r;
  v'

let test_int_edges () =
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (roundtrip Pickle.int Pickle.read_int v))
    [ 0; 1; -1; 63; 64; -64; -65; 127; 128; 16383; 16384; max_int; min_int; max_int - 1; min_int + 1 ]

let test_int_compact () =
  (* small magnitudes take one byte *)
  let size v =
    let w = Pickle.writer () in
    Pickle.int w v;
    Pickle.writer_length w
  in
  Alcotest.(check int) "0" 1 (size 0);
  Alcotest.(check int) "-1" 1 (size (-1));
  Alcotest.(check int) "63" 1 (size 63);
  Alcotest.(check int) "64" 2 (size 64);
  Alcotest.(check bool) "max_int <= 10 bytes" true (size max_int <= 10)

let test_uint_negative_rejected () =
  let w = Pickle.writer () in
  Alcotest.check_raises "negative" (Pickle.Error "Pickle.uint: negative") (fun () -> Pickle.uint w (-1))

let test_int64_float () =
  List.iter
    (fun v -> Alcotest.(check int64) "i64" v (roundtrip Pickle.int64 Pickle.read_int64 v))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0xdeadbeefL ];
  List.iter
    (fun v ->
      let v' = roundtrip Pickle.float Pickle.read_float v in
      Alcotest.(check bool) "float" true (v = v' || (Float.is_nan v && Float.is_nan v')))
    [ 0.0; -0.0; 1.5; -3.25e300; Float.nan; Float.infinity; Float.epsilon ]

let test_string_bytes () =
  List.iter
    (fun s -> Alcotest.(check string) "str" s (roundtrip Pickle.string Pickle.read_string s))
    [ ""; "a"; String.make 1000 '\xff'; "embedded\000null" ]

let test_composites () =
  let v = [ Some (1, "a"); None; Some (-5, "") ] in
  let wr w l = Pickle.list w (fun w o -> Pickle.option w (fun w p -> Pickle.pair w Pickle.int Pickle.string p) o) l in
  let rd r = Pickle.read_list r (fun r -> Pickle.read_option r (fun r -> Pickle.read_pair r Pickle.read_int Pickle.read_string)) in
  Alcotest.(check bool) "list/option/pair" true (roundtrip wr rd v = v);
  let t = (1, "two", 3.0) in
  let wr w v = Pickle.triple w Pickle.int Pickle.string Pickle.float v in
  let rd r = Pickle.read_triple r Pickle.read_int Pickle.read_string Pickle.read_float in
  Alcotest.(check bool) "triple" true (roundtrip wr rd t = t)

let test_truncation () =
  let w = Pickle.writer () in
  Pickle.string w "hello world";
  let full = Pickle.contents w in
  for cut = 0 to String.length full - 1 do
    let r = Pickle.reader (String.sub full 0 cut) in
    match Pickle.read_string r with
    | exception Pickle.Error _ -> ()
    | s -> Alcotest.failf "truncated read at %d returned %S" cut s
  done

let test_trailing_detected () =
  let w = Pickle.writer () in
  Pickle.int w 5;
  Pickle.int w 6;
  let r = Pickle.reader (Pickle.contents w) in
  ignore (Pickle.read_int r);
  Alcotest.check_raises "trailing" (Pickle.Error "Pickle: 1 trailing bytes") (fun () -> Pickle.expect_end r)

let test_sub_reader () =
  let data = "XX" ^ (let w = Pickle.writer () in Pickle.int w 42; Pickle.contents w) ^ "YY" in
  let r = Pickle.reader ~off:2 ~len:(String.length data - 4) data in
  Alcotest.(check int) "windowed" 42 (Pickle.read_int r);
  Alcotest.(check bool) "at end" true (Pickle.at_end r)

let qcheck_int_roundtrip =
  QCheck.Test.make ~name:"int roundtrip" ~count:1000 QCheck.int (fun v ->
      roundtrip Pickle.int Pickle.read_int v = v)

let qcheck_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:500 QCheck.string (fun s ->
      roundtrip Pickle.string Pickle.read_string s = s)

let qcheck_mixed_sequence =
  (* Any sequence of (int|string|bool) writes reads back identically. *)
  let gen = QCheck.(small_list (oneof [ map (fun i -> `I i) int; map (fun s -> `S s) printable_string; map (fun b -> `B b) bool ])) in
  QCheck.Test.make ~name:"mixed sequence roundtrip" ~count:300 gen (fun ops ->
      let w = Pickle.writer () in
      List.iter (function `I i -> Pickle.int w i | `S s -> Pickle.string w s | `B b -> Pickle.bool w b) ops;
      let r = Pickle.reader (Pickle.contents w) in
      let ok =
        List.for_all
          (function
            | `I i -> Pickle.read_int r = i
            | `S s -> Pickle.read_string r = s
            | `B b -> Pickle.read_bool r = b)
          ops
      in
      ok && Pickle.at_end r)

let () =
  Alcotest.run "tdb_pickle"
    [
      ( "scalars",
        [
          Alcotest.test_case "int edges" `Quick test_int_edges;
          Alcotest.test_case "int compact" `Quick test_int_compact;
          Alcotest.test_case "uint negative" `Quick test_uint_negative_rejected;
          Alcotest.test_case "int64/float" `Quick test_int64_float;
          Alcotest.test_case "string/bytes" `Quick test_string_bytes;
        ] );
      ( "composites",
        [
          Alcotest.test_case "list/option/pair/triple" `Quick test_composites;
          Alcotest.test_case "sub reader" `Quick test_sub_reader;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_detected;
        ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest [ qcheck_int_roundtrip; qcheck_string_roundtrip; qcheck_mixed_sequence ] );
    ]
