(* Backup store tests: full/incremental roundtrips, validated restore,
   sequencing enforcement, tampered-archive rejection. *)

open Tdb_platform
open Tdb_chunk
open Tdb_backup

let cfg =
  { Config.default with Config.segment_size = 4096; initial_segments = 8; checkpoint_every = 64;
    anchor_slot_size = 2048 }

type env = {
  store : Untrusted_store.t;
  secret : Secret_store.t;
  ctr : One_way_counter.t;
  arch_h : Archival_store.Mem.handle;
  archive : Archival_store.t;
}

let fresh_env () =
  let _, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  let arch_h, archive = Archival_store.open_mem () in
  { store; secret = Secret_store.of_seed "backup-device"; ctr; arch_h; archive }

let fresh_cs env = Chunk_store.create ~config:cfg ~secret:env.secret ~counter:env.ctr env.store

let fresh_target env =
  let _, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  Chunk_store.create ~config:cfg ~secret:env.secret ~counter:ctr store

let dump cs ids = List.filter_map (fun cid -> match Chunk_store.read cs cid with d -> Some (cid, d) | exception Types.Not_written _ -> None) ids

let test_full_roundtrip () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let ids = List.init 20 (fun i ->
      let cid = Chunk_store.allocate cs in
      Chunk_store.write cs cid (Printf.sprintf "record-%d" i);
      cid)
  in
  Chunk_store.commit cs;
  let id = Backup_store.backup_full bs in
  Alcotest.(check int) "first backup id" 1 id;
  let target = fresh_target env in
  ignore (Backup_store.restore ~secret:env.secret ~archive:env.archive ~into:(Shard_store.wrap target) ());
  Alcotest.(check (list (pair int string))) "restored contents" (dump cs ids) (dump target ids)

let test_incremental_roundtrip () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let a = Chunk_store.allocate cs and b = Chunk_store.allocate cs and c = Chunk_store.allocate cs in
  Chunk_store.write cs a "a1"; Chunk_store.write cs b "b1"; Chunk_store.write cs c "c1";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_full bs);
  Chunk_store.write cs b "b2";
  Chunk_store.deallocate cs c;
  Chunk_store.commit cs;
  ignore (Backup_store.backup_incremental bs);
  let d = Chunk_store.allocate cs in
  Chunk_store.write cs d "d1";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_incremental bs);
  let target = fresh_target env in
  ignore (Backup_store.restore ~secret:env.secret ~archive:env.archive ~into:(Shard_store.wrap target) ());
  Alcotest.(check (list (pair int string))) "final state" (dump cs [ a; b; c; d ]) (dump target [ a; b; c; d ]);
  Alcotest.(check bool) "c removed" true
    (match Chunk_store.read target c with exception Types.Not_written _ -> true | _ -> false)

let test_incremental_without_base_is_full () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "x";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_incremental bs);
  Alcotest.(check bool) "stored as full" true
    (List.exists (fun n -> String.length n >= 4 && String.sub n (String.length n - 4) 4 = "full")
       (Archival_store.list env.archive))

let test_restore_upto () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "v1";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_full bs);
  Chunk_store.write cs a "v2";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_incremental bs);
  Chunk_store.write cs a "v3";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_incremental bs);
  let t1 = fresh_target env in
  ignore (Backup_store.restore ~secret:env.secret ~archive:env.archive ~upto:2 ~into:(Shard_store.wrap t1) ());
  Alcotest.(check string) "point-in-time" "v2" (Chunk_store.read t1 a);
  let t2 = fresh_target env in
  ignore (Backup_store.restore ~secret:env.secret ~archive:env.archive ~into:(Shard_store.wrap t2) ());
  Alcotest.(check string) "latest" "v3" (Chunk_store.read t2 a)

let test_missing_incremental_detected () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "v1"; Chunk_store.commit cs;
  ignore (Backup_store.backup_full bs);
  Chunk_store.write cs a "v2"; Chunk_store.commit cs;
  let id2 = Backup_store.backup_incremental bs in
  Chunk_store.write cs a "v3"; Chunk_store.commit cs;
  ignore (Backup_store.backup_incremental bs);
  (* attacker deletes the middle incremental: restore must not silently
     skip it *)
  Archival_store.delete env.archive ~name:(Printf.sprintf "tdb-%06d-incr" id2);
  let target = fresh_target env in
  Alcotest.(check bool) "gap detected" true
    (match Backup_store.restore ~secret:env.secret ~archive:env.archive ~into:(Shard_store.wrap target) () with
    | exception Backup_store.Invalid_backup _ -> true
    | _ -> false)

let test_tampered_backup_rejected () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "premium-credits=100";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_full bs);
  (* corrupt one byte in the middle of the stream *)
  let name = List.hd (Archival_store.list env.archive) in
  let len = String.length (Option.get (Archival_store.get env.archive ~name)) in
  Archival_store.Mem.corrupt env.arch_h ~name ~pos:(len / 2) ~mask:0x10;
  let target = fresh_target env in
  Alcotest.(check bool) "rejected" true
    (match Backup_store.restore ~secret:env.secret ~archive:env.archive ~into:(Shard_store.wrap target) () with
    | exception Backup_store.Invalid_backup _ -> true
    | _ -> false)

let test_backup_encrypted () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let a = Chunk_store.allocate cs in
  let secret_data = "SECRET-LICENSE-KEY-42" in
  Chunk_store.write cs a secret_data;
  Chunk_store.commit cs;
  ignore (Backup_store.backup_full bs);
  let name = List.hd (Archival_store.list env.archive) in
  let stream = Option.get (Archival_store.get env.archive ~name) in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no plaintext in archive" false (contains stream secret_data)

let test_wrong_device_cannot_restore () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let a = Chunk_store.allocate cs in
  Chunk_store.write cs a "x";
  Chunk_store.commit cs;
  ignore (Backup_store.backup_full bs);
  let other = Secret_store.of_seed "attacker-device" in
  let _, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  let target = Chunk_store.create ~config:cfg ~secret:other ~counter:ctr store in
  Alcotest.(check bool) "foreign secret fails" true
    (match Backup_store.restore ~secret:other ~archive:env.archive ~into:(Shard_store.wrap target) () with
    | exception Backup_store.Invalid_backup _ -> true
    | _ -> false)

let test_restore_preserves_ids_across_reopen () =
  let env = fresh_env () in
  let cs = fresh_cs env in
  let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
  let ids = List.init 10 (fun i ->
      let cid = Chunk_store.allocate cs in
      Chunk_store.write cs cid (string_of_int i);
      cid)
  in
  Chunk_store.commit cs;
  ignore (Backup_store.backup_full bs);
  let _, store2 = Untrusted_store.open_mem () in
  let _, ctr2 = One_way_counter.open_mem () in
  let target = Chunk_store.create ~config:cfg ~secret:env.secret ~counter:ctr2 store2 in
  ignore (Backup_store.restore ~secret:env.secret ~archive:env.archive ~into:(Shard_store.wrap target) ());
  (* new allocations in the restored database must not collide *)
  let fresh = Chunk_store.allocate target in
  Alcotest.(check bool) "no id collision" true (not (List.mem fresh ids));
  List.iteri (fun i cid -> Alcotest.(check string) "id preserved" (string_of_int i) (Chunk_store.read target cid)) ids

let test_many_incrementals_qcheck =
  QCheck.Test.make ~name:"random backup/restore equivalence" ~count:10
    QCheck.(list_of_size Gen.(1 -- 6) (small_list (pair (int_range 0 10) (string_of_size Gen.(0 -- 50)))))
    (fun epochs ->
      let env = fresh_env () in
      let cs = fresh_cs env in
      let bs = Backup_store.create ~secret:env.secret ~archive:env.archive (Shard_store.wrap cs) in
      let key_to_cid = Hashtbl.create 16 in
      List.iteri
        (fun i batch ->
          List.iter
            (fun (k, v) ->
              let cid =
                match Hashtbl.find_opt key_to_cid k with
                | Some c -> c
                | None ->
                    let c = Chunk_store.allocate cs in
                    Hashtbl.replace key_to_cid k c;
                    c
              in
              Chunk_store.write cs cid v)
            batch;
          Chunk_store.commit cs;
          if i = 0 then ignore (Backup_store.backup_full bs) else ignore (Backup_store.backup_incremental bs))
        epochs;
      let target = fresh_target env in
      ignore (Backup_store.restore ~secret:env.secret ~archive:env.archive ~into:(Shard_store.wrap target) ());
      Hashtbl.fold
        (fun _ cid ok -> ok && Chunk_store.read cs cid = Chunk_store.read target cid)
        key_to_cid true)

let () =
  Alcotest.run "tdb_backup"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "full" `Quick test_full_roundtrip;
          Alcotest.test_case "incremental" `Quick test_incremental_roundtrip;
          Alcotest.test_case "incremental w/o base" `Quick test_incremental_without_base_is_full;
          Alcotest.test_case "point-in-time" `Quick test_restore_upto;
          Alcotest.test_case "ids preserved" `Quick test_restore_preserves_ids_across_reopen;
        ] );
      ( "validation",
        [
          Alcotest.test_case "missing incremental" `Quick test_missing_incremental_detected;
          Alcotest.test_case "tampered stream" `Quick test_tampered_backup_rejected;
          Alcotest.test_case "encrypted at rest" `Quick test_backup_encrypted;
          Alcotest.test_case "device binding" `Quick test_wrong_device_cannot_restore;
        ] );
      ("qcheck", [ QCheck_alcotest.to_alcotest test_many_incrementals_qcheck ]);
    ]
