(* Full-stack integration tests through the Tdb facade: collections over
   objects over chunks over the attacker-controlled store, plus the TPC-B
   drivers run differentially against the baseline engine. *)

type item = { sku : int; mutable qty : int; mutable tag : string }

let item_cls : item Tdb.Obj_class.t =
  let module P = Tdb.Pickle in
  Tdb.Obj_class.define ~name:"itest.item"
    ~pickle:(fun w i ->
      P.int w i.sku;
      P.int w i.qty;
      P.string w i.tag)
    ~unpickle:(fun ~version:_ r ->
      let sku = P.read_int r in
      let qty = P.read_int r in
      let tag = P.read_string r in
      { sku; qty; tag })
    ()

let by_sku = Tdb.Indexer.make ~name:"sku" ~key:Tdb.Gkey.int ~extract:(fun i -> i.sku) ~unique:true ()
let by_qty = Tdb.Indexer.make ~name:"qty" ~key:Tdb.Gkey.int ~extract:(fun i -> i.qty) ()
let ixs = [ Tdb.Indexer.Generic by_sku; Tdb.Indexer.Generic by_qty ]

let with_db f =
  let mem, device = Tdb.Device.in_memory ~seed:"itest" () in
  let db = Tdb.create device in
  Tdb.with_ctxn db (fun ct ->
      let c = Tdb.Cstore.create_collection ct ~name:"items" ~schema:item_cls by_sku in
      Tdb.Cstore.create_index ct c by_qty);
  f mem device db

let open_items ct = Tdb.Cstore.open_collection ct ~name:"items" ~schema:item_cls ~indexers:ixs

let add db sku qty =
  Tdb.with_ctxn db (fun ct -> ignore (Tdb.Cstore.insert ct (open_items ct) { sku; qty; tag = "t" }))

let qty_of db sku =
  Tdb.with_ctxn db (fun ct ->
      let it = Tdb.Cstore.exact ct (open_items ct) by_sku sku in
      let v = if Tdb.Cstore.at_end it then None else Some (Tdb.Cstore.read it).qty in
      Tdb.Cstore.close it;
      v)

(* --- facade lifecycle --- *)

let test_full_stack_roundtrip () =
  with_db (fun _mem device db ->
      List.iter (fun i -> add db i (i * 10)) [ 1; 2; 3; 4; 5 ];
      Tdb.close db;
      let db = Tdb.open_existing device in
      Alcotest.(check (option int)) "sku 3" (Some 30) (qty_of db 3);
      Tdb.with_ctxn db (fun ct ->
          Alcotest.(check int) "size" 5 (Tdb.Cstore.size ct (open_items ct)));
      Tdb.close db)

let test_crash_mid_collection_txn () =
  with_db (fun mem device db ->
      add db 1 100;
      (* an update reaches the cache but the transaction never commits *)
      let ct = Tdb.begin_ctxn db in
      let it = Tdb.Cstore.exact ct (open_items ct) by_sku 1 in
      (Tdb.Cstore.write it).qty <- 999;
      Tdb.Cstore.advance it;
      Tdb.Cstore.close it;
      (* crash: everything unsynced is lost *)
      Tdb.Untrusted_store.Mem.crash_hard mem;
      let db2 = Tdb.open_existing device in
      Alcotest.(check (option int)) "update rolled back" (Some 100) (qty_of db2 1);
      Alcotest.(check (option int)) "committed row intact" (Some 100) (qty_of db2 1))

let test_crash_storm_over_collections () =
  let rng = Tdb_crypto.Drbg.create ~seed:"istorm" in
  with_db (fun mem device db ->
      let model = Hashtbl.create 16 in
      let dbr = ref db in
      for round = 1 to 8 do
        let db = !dbr in
        for sku = 0 to 9 do
          if Tdb_crypto.Drbg.int rng 2 = 0 then begin
            let qty = Tdb_crypto.Drbg.int rng 1000 in
            (if Hashtbl.mem model sku then
               Tdb.with_ctxn db (fun ct ->
                   let it = Tdb.Cstore.exact ct (open_items ct) by_sku sku in
                   (Tdb.Cstore.write it).qty <- qty;
                   Tdb.Cstore.advance it;
                   Tdb.Cstore.close it)
             else add db sku qty);
            Hashtbl.replace model sku qty
          end
        done;
        (* all the above committed durably; crash and verify *)
        Tdb.Untrusted_store.Mem.crash ~persist_prob:0.3 ~rng:(fun n -> Tdb_crypto.Drbg.int rng n) mem;
        let db = Tdb.open_existing device in
        dbr := db;
        Hashtbl.iter
          (fun sku qty ->
            Alcotest.(check (option int)) (Printf.sprintf "round %d sku %d" round sku) (Some qty) (qty_of db sku))
          model
      done)

let test_backup_of_collections () =
  with_db (fun _mem device db ->
      List.iter (fun i -> add db i i) [ 1; 2; 3 ];
      ignore (Tdb.backup_full db);
      add db 4 4;
      ignore (Tdb.backup_incremental db);
      Tdb.close db;
      let _, store = Tdb.Untrusted_store.open_mem () in
      let _, counter = Tdb.One_way_counter.open_mem () in
      let db2 = Tdb.restore ~from:device { device with Tdb.Device.store; counter } in
      Alcotest.(check (option int)) "restored collection works" (Some 4) (qty_of db2 4);
      Tdb.with_ctxn db2 (fun ct ->
          Alcotest.(check int) "all rows" 4 (Tdb.Cstore.size ct (open_items ct)));
      (* and the restored database is fully writable *)
      add db2 5 5;
      Alcotest.(check (option int)) "writable after restore" (Some 5) (qty_of db2 5))

let test_tamper_detected_through_stack () =
  with_db (fun mem device db ->
      List.iter (fun i -> add db i i) (List.init 20 (fun i -> i));
      Tdb.close db;
      let log_base = 2 * Tdb.Chunk_config.default.Tdb.Chunk_config.anchor_slot_size in
      let size = Tdb.Untrusted_store.size device.Tdb.Device.store in
      (* corrupt the whole log body (sparing the anchor): at least one
         access must hit poisoned live data *)
      Tdb.Untrusted_store.Mem.corrupt mem ~off:log_base ~len:(size - log_base) ~mask:0x20;
      Alcotest.(check bool) "detected" true
        (match
           let db = Tdb.open_existing device in
           List.init 20 (fun i -> qty_of db i)
         with
        | _ -> false
        | exception Tdb.Tamper_detected _ -> true
        | exception Tdb.Chunk_store.Recovery_failed _ -> true))

let test_replay_detected_through_stack () =
  with_db (fun mem device db ->
      add db 1 100;
      Tdb.close db;
      let saved = Tdb.Untrusted_store.Mem.snapshot mem in
      let db = Tdb.open_existing device in
      add db 2 200;
      Tdb.close db;
      Tdb.Untrusted_store.Mem.restore mem saved;
      Alcotest.(check bool) "replay detected" true
        (match Tdb.open_existing device with
        | _ -> false
        | exception Tdb.Tamper_detected _ -> true))

let test_idle_maintenance_preserves_data () =
  with_db (fun _mem device db ->
      List.iter (fun i -> add db i i) (List.init 50 (fun i -> i));
      for round = 1 to 5 do
        Tdb.with_ctxn db (fun ct ->
            let it = Tdb.Cstore.scan ct (open_items ct) by_sku in
            while not (Tdb.Cstore.at_end it) do
              (Tdb.Cstore.write it).qty <- round;
              Tdb.Cstore.advance it
            done;
            Tdb.Cstore.close it);
        Tdb.idle_maintenance db
      done;
      Tdb.close db;
      let db = Tdb.open_existing device in
      for i = 0 to 49 do
        Alcotest.(check (option int)) "after cleaning" (Some 5) (qty_of db i)
      done)

(* --- differential TPC-B: both engines must agree --- *)

let test_tpcb_engines_agree () =
  let scale = { Tdb_tpcb.Workload.quick_scale with Tdb_tpcb.Workload.transactions = 300 } in
  let tdb = Tdb_tpcb.Tdb_driver.setup ~security:true scale in
  let bdb = Tdb_tpcb.Bdb_driver.setup scale in
  let rng1 = Tdb_crypto.Drbg.create ~seed:"diff" in
  let rng2 = Tdb_crypto.Drbg.create ~seed:"diff" in
  for i = 1 to 300 do
    let i1 = Tdb_tpcb.Workload.gen_txn rng1 scale in
    let i2 = Tdb_tpcb.Workload.gen_txn rng2 scale in
    let b1 = Tdb_tpcb.Tdb_driver.txn tdb i1 in
    let b2 = Tdb_tpcb.Bdb_driver.txn bdb i2 in
    if b1 <> b2 then Alcotest.failf "balances diverge at txn %d: tdb %d vs bdb %d" i b1 b2
  done

let () =
  Alcotest.run "tdb_integration"
    [
      ( "facade",
        [
          Alcotest.test_case "roundtrip + restart" `Quick test_full_stack_roundtrip;
          Alcotest.test_case "crash mid-txn" `Quick test_crash_mid_collection_txn;
          Alcotest.test_case "crash storm" `Slow test_crash_storm_over_collections;
          Alcotest.test_case "idle maintenance" `Quick test_idle_maintenance_preserves_data;
        ] );
      ( "security",
        [
          Alcotest.test_case "tamper through stack" `Quick test_tamper_detected_through_stack;
          Alcotest.test_case "replay through stack" `Quick test_replay_detected_through_stack;
        ] );
      ("backup", [ Alcotest.test_case "collections restored" `Quick test_backup_of_collections ]);
      ("tpcb", [ Alcotest.test_case "engines agree" `Slow test_tpcb_engines_agree ]);
    ]
