(* Parallel seal/unseal tests: pool semantics, cross-domain safety of the
   crypto paths, the determinism contract (same trace at domains=1 and
   domains=4 => byte-identical store images), and the thread-safety
   regression tests for the chunk cache, HMAC precomputed keys and the
   DRBG. *)

open Tdb_platform
open Tdb_crypto
open Tdb_chunk
module Pool = Tdb_parallel.Pool

(* --- pool semantics --- *)

let test_pool_map () =
  let input = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) input in
  Alcotest.(check (array int)) "domains=1 inline" expect (Pool.map ~domains:1 input (fun i -> i * i));
  Alcotest.(check (array int)) "domains=4 pooled" expect (Pool.map ~domains:4 input (fun i -> i * i));
  Alcotest.(check (array int)) "domains=8 pooled" expect (Pool.map ~domains:8 input (fun i -> i * i));
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~domains:4 [||] (fun i -> i * i));
  Alcotest.(check (array int)) "singleton" [| 49 |] (Pool.map ~domains:4 [| 7 |] (fun i -> i * i))

exception Boom of int

let test_pool_exception () =
  (* The lowest-index failure is re-raised, like a sequential map. *)
  let input = Array.init 50 (fun i -> i) in
  let run domains =
    match Pool.map ~domains input (fun i -> if i mod 20 = 13 then raise (Boom i) else i) with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> i
  in
  Alcotest.(check int) "sequential lowest index" 13 (run 1);
  Alcotest.(check int) "pooled lowest index" 13 (run 4);
  (* The pool survives a failed batch and keeps serving. *)
  Alcotest.(check (array int)) "pool still works" [| 0; 2; 4 |]
    (Pool.map ~domains:4 [| 0; 1; 2 |] (fun i -> 2 * i))

let test_pool_stats () =
  let s0 = Pool.stats () in
  ignore (Pool.map ~domains:4 (Array.init 32 (fun i -> i)) (fun i -> i + 1));
  let s1 = Pool.stats () in
  Alcotest.(check bool) "tasks counted" true (s1.Pool.p_tasks - s0.Pool.p_tasks >= 32);
  Alcotest.(check bool) "batch counted" true (s1.Pool.p_batches - s0.Pool.p_batches >= 1);
  Alcotest.(check bool) "workers capped" true (s1.Pool.p_workers >= 1 && s1.Pool.p_workers <= 7)

let test_default_domains () =
  Unix.putenv "TDB_DOMAINS" "3";
  Alcotest.(check int) "TDB_DOMAINS honored" 3 (Pool.default_domains ());
  Unix.putenv "TDB_DOMAINS" "64";
  Alcotest.(check bool) "clamped to pool cap" true (Pool.default_domains () <= 8);
  Unix.putenv "TDB_DOMAINS" "zero";
  (match Pool.default_domains () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Unix.putenv "TDB_DOMAINS" "1"

(* --- chunk-store fixtures (mirrors test_chunk.ml) --- *)

let cfg ?(domains = 1) () =
  {
    Config.default with
    Config.security = true;
    segment_size = 4096;
    initial_segments = 8;
    max_utilization = 0.6;
    checkpoint_every = 8;
    anchor_slot_size = 2048;
    clean_batch = 2;
    checkpoint_residual_bytes = 4 * 4096;
    domains;
  }

type env = {
  mem : Untrusted_store.Mem.handle;
  store : Untrusted_store.t;
  secret : Secret_store.t;
  ctr : One_way_counter.t;
}

let fresh_env () =
  let mem, store = Untrusted_store.open_mem () in
  let _ctr_h, ctr = One_way_counter.open_mem () in
  { mem; store; secret = Secret_store.of_seed "par-test-device"; ctr }

(* Tiny deterministic generator for trace data (not Random: traces must be
   identical across runs and domain counts). *)
let lcg = ref 42

let next_int bound =
  lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
  !lcg mod bound

(* One deterministic workload: enough writes per batch to force sub-commit
   splitting (commit-record budget is segment_size/4), interleaved
   deallocations, nondurable commits, a reopen (recovery) and reads. *)
let run_trace (cs0 : Chunk_store.t) (env : env) ~(config : Config.t) : Chunk_store.t * string list =
  lcg := 42;
  let cs = ref cs0 in
  let live = ref [] in
  for round = 0 to 4 do
    let ids = List.init 25 (fun _ -> Chunk_store.allocate !cs) in
    List.iteri
      (fun i cid ->
        let n = 16 + next_int 200 in
        Chunk_store.write !cs cid (Printf.sprintf "r%d-i%d-%s" round i (String.make n 'x')))
      ids;
    live := !live @ ids;
    (* every third round, drop a few of the oldest survivors mid-batch *)
    if round mod 3 = 2 then begin
      match !live with
      | a :: b :: rest ->
          Chunk_store.deallocate !cs a;
          Chunk_store.deallocate !cs b;
          live := rest
      | _ -> ()
    end;
    Chunk_store.commit ~durable:(round mod 2 = 0) !cs;
    if round = 3 then begin
      (* recovery mid-trace: parallel label validation runs here *)
      Chunk_store.close !cs;
      cs := Chunk_store.open_existing ~config ~secret:env.secret ~counter:env.ctr env.store
    end
  done;
  Chunk_store.commit ~durable:true !cs;
  let data = Chunk_store.read_many !cs !live in
  (!cs, data)

let test_deterministic_images () =
  (* The same trace at domains=1 and domains=4 must produce byte-identical
     store images — the determinism contract of the parallel pipeline. *)
  let run domains =
    let config = cfg ~domains () in
    let env = fresh_env () in
    let cs = Chunk_store.create ~config ~secret:env.secret ~counter:env.ctr env.store in
    let cs, data = run_trace cs env ~config in
    Chunk_store.close cs;
    (Untrusted_store.Mem.contents env.mem, data)
  in
  let img1, data1 = run 1 in
  let img4, data4 = run 4 in
  Alcotest.(check int) "image sizes equal" (String.length img1) (String.length img4);
  Alcotest.(check bool) "images byte-identical" true (String.equal img1 img4);
  Alcotest.(check (list string)) "reads identical" data1 data4

let test_read_many () =
  let config = cfg ~domains:4 () in
  let env = fresh_env () in
  let cs = Chunk_store.create ~config ~secret:env.secret ~counter:env.ctr env.store in
  let ids = List.init 40 (fun _ -> Chunk_store.allocate cs) in
  List.iteri (fun i cid -> Chunk_store.write cs cid (Printf.sprintf "item-%d-%s" i (String.make (i * 7) 'y'))) ids;
  Chunk_store.commit cs;
  (* batched = sequential, including buffered (uncommitted) writes *)
  let fresh = Chunk_store.allocate cs in
  Chunk_store.write cs fresh "buffered";
  let all = ids @ [ fresh ] in
  Alcotest.(check (list string)) "read_many = map read" (List.map (Chunk_store.read cs) all)
    (Chunk_store.read_many cs all);
  (* misses decrypt in parallel after a cache wipe *)
  Chunk_store.set_cache_budget cs 0;
  Chunk_store.set_cache_budget cs (1 lsl 20);
  Alcotest.(check (list string)) "read_many after cache wipe" (List.map (Chunk_store.read cs) all)
    (Chunk_store.read_many cs all);
  let st = Chunk_store.stats cs in
  Alcotest.(check bool) "pool was used" true (st.Chunk_store.par_tasks > 0);
  (match Chunk_store.read_many cs [ 999999 ] with
  | _ -> Alcotest.fail "expected Not_written"
  | exception Tdb_chunk.Types.Not_written _ -> ());
  Chunk_store.close cs

(* --- regression: chunk cache is single-writer (owner assertion) --- *)

let test_cache_ownership () =
  let c = Chunk_cache.create ~budget:4096 in
  Chunk_cache.put c 1 ~version:1 "payload";
  Alcotest.(check (option string)) "owner reads fine" (Some "payload") (Chunk_cache.find c 1 ~version:1);
  (* Before the single-writer fix a foreign domain could mutate the LRU
     links and counters unsynchronized; now the ownership assertion kills
     it loudly. *)
  let foreign_find =
    Domain.spawn (fun () ->
        match Chunk_cache.find c 1 ~version:1 with
        | _ -> false
        | exception Assert_failure _ -> true)
  in
  Alcotest.(check bool) "foreign find asserts" true (Domain.join foreign_find);
  let foreign_put =
    Domain.spawn (fun () ->
        match Chunk_cache.put c 2 ~version:1 "intruder" with
        | () -> false
        | exception Assert_failure _ -> true)
  in
  Alcotest.(check bool) "foreign put asserts" true (Domain.join foreign_put);
  (* read-only accessors stay callable from anywhere *)
  let foreign_stats = Domain.spawn (fun () -> Chunk_cache.stats c) in
  ignore (Domain.join foreign_stats)

(* --- regression: precomputed HMAC keys are immutable across domains --- *)

let test_hmac_precompute_parallel () =
  let key = String.init 37 (fun i -> Char.chr ((i * 11) land 0xff)) in
  let pre = Hmac.precompute (module Sha256) ~key in
  let messages = Array.init 64 (fun i -> Printf.sprintf "msg-%d-%s" i (String.make (i * 3) 'm')) in
  let expect = Array.map (fun m -> Hmac.sha256 ~key m) messages in
  (* Before the midstate fix, [precompute] shared two mutable contexts that
     every [mac] call reset and advanced — a data race across domains. Now
     each call resumes private copies from immutable midstates. *)
  let hammer () =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for round = 0 to 200 do
              let i = (round + d) mod Array.length messages in
              if not (String.equal (Hmac.mac pre messages.(i)) expect.(i)) then ok := false
            done;
            !ok))
    |> Array.map Domain.join
  in
  Array.iteri (fun d ok -> Alcotest.(check bool) (Printf.sprintf "domain %d consistent" d) true ok) (hammer ())

(* --- regression: the DRBG never hands two callers the same bytes --- *)

let test_drbg_parallel () =
  let g = Drbg.create ~seed:"parallel-drbg-test" in
  let draws_per_domain = 2000 in
  let outputs =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () -> Array.init draws_per_domain (fun _ -> Drbg.generate g 8)))
    |> Array.map Domain.join
  in
  let seen = Hashtbl.create (4 * draws_per_domain) in
  let dups = ref 0 in
  Array.iter
    (Array.iter (fun s ->
         if Hashtbl.mem seen s then incr dups else Hashtbl.replace seen s ()))
    outputs;
  (* Before the mutex fix, two domains could snapshot the same state and
     emit identical "random" bytes — fatal for IV uniqueness. *)
  Alcotest.(check int) "no duplicate draws" 0 !dups;
  Alcotest.(check int) "all draws accounted" (4 * draws_per_domain) (Hashtbl.length seen);
  (* sequential stream is unchanged: same seed => same bytes, and split
     still derives an independent child deterministically *)
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  Alcotest.(check string) "deterministic stream" (Drbg.generate a 32) (Drbg.generate b 32);
  let ca = Drbg.split a "child" and cb = Drbg.split b "child" in
  Alcotest.(check string) "deterministic split" (Drbg.generate ca 16) (Drbg.generate cb 16);
  Alcotest.(check string) "parent advanced identically" (Drbg.generate a 16) (Drbg.generate b 16)

(* --- crashfuzz with the pool enabled --- *)

let test_crashfuzz_with_domains () =
  (* Config.default picks up TDB_DOMAINS (set to 4 here): the bounded
     sweep exercises parallel sealing and recovery validation under
     injected crashes. *)
  Unix.putenv "TDB_DOMAINS" "4";
  let report = Tdb_faultsim.Crashfuzz.sweep_crashpoints ~trace:Tdb_faultsim.Crashfuzz.smoke_trace ~seeds:1 ~stride:29 () in
  Unix.putenv "TDB_DOMAINS" "1";
  Alcotest.(check int) "no violations" 0 (List.length report.Tdb_faultsim.Crashfuzz.violations);
  Alcotest.(check bool) "ran crashpoints" true (report.Tdb_faultsim.Crashfuzz.crashpoints > 0)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "exceptions" `Quick test_pool_exception;
          Alcotest.test_case "stats" `Quick test_pool_stats;
          Alcotest.test_case "default_domains" `Quick test_default_domains;
        ] );
      ( "store",
        [
          Alcotest.test_case "deterministic images" `Quick test_deterministic_images;
          Alcotest.test_case "read_many" `Quick test_read_many;
          Alcotest.test_case "crashfuzz with domains" `Slow test_crashfuzz_with_domains;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "cache ownership" `Quick test_cache_ownership;
          Alcotest.test_case "hmac precompute" `Quick test_hmac_precompute_parallel;
          Alcotest.test_case "drbg" `Quick test_drbg_parallel;
        ] );
    ]
