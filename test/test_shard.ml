(* Shard router tests: chunk-id routing, 1-shard byte compatibility with
   the unsharded store format, cross-shard 2PC (commit, veto/abort,
   crash recovery, per-shard counter enforcement), the object-level
   abort path under concurrent transfers, and the barrier-skip guarantee
   for single-shard commits. *)

open Tdb_platform
open Tdb_chunk
open Tdb_objstore

let secret () = Secret_store.of_seed "shard-test"

let cfg n =
  { Config.default with Config.segment_size = 4096; initial_segments = 8; checkpoint_every = 32;
    anchor_slot_size = 2048; shards = n }

type env = {
  store_mems : Untrusted_store.Mem.handle array;
  stores : Untrusted_store.t array;
  ctr_mems : One_way_counter.Mem.handle array;
  ctrs : One_way_counter.t array;
}

let make_env n =
  let s = Array.init n (fun _ -> Untrusted_store.open_mem ()) in
  let c = Array.init n (fun _ -> One_way_counter.open_mem ()) in
  {
    store_mems = Array.map fst s;
    stores = Array.map snd s;
    ctr_mems = Array.map fst c;
    ctrs = Array.map snd c;
  }

(* --- 1-shard byte compatibility --- *)

(* A database written through a 1-shard router opens as a plain unsharded
   chunk store, and vice versa: at n = 1 the router is the identity. *)
let test_single_shard_byte_compat () =
  let env = make_env 1 in
  let sec = secret () in
  let ss = Shard_store.create ~config:(cfg 1) ~secret:sec ~counters:env.ctrs env.stores in
  let ids =
    List.init 5 (fun i ->
        let cid = Shard_store.allocate ss in
        Shard_store.write ss cid (Printf.sprintf "payload-%d" i);
        cid)
  in
  Shard_store.commit ~durable:true ss;
  Shard_store.close ss;
  let cs = Chunk_store.open_existing ~config:(cfg 1) ~secret:sec ~counter:env.ctrs.(0) env.stores.(0) in
  List.iteri
    (fun i cid ->
      Alcotest.(check string) "readable unsharded" (Printf.sprintf "payload-%d" i) (Chunk_store.read cs cid))
    ids;
  let extra = Chunk_store.allocate cs in
  Chunk_store.write cs extra "written-unsharded";
  Chunk_store.commit ~durable:true cs;
  Chunk_store.close cs;
  let ss = Shard_store.open_existing ~config:(cfg 1) ~secret:sec ~counters:env.ctrs env.stores in
  Alcotest.(check string) "readable through the router" "written-unsharded" (Shard_store.read ss extra);
  List.iteri
    (fun i cid ->
      Alcotest.(check string) "old chunk intact" (Printf.sprintf "payload-%d" i) (Shard_store.read ss cid))
    ids;
  Shard_store.close ss

(* --- routing --- *)

let test_routing () =
  let n = 4 in
  let env = make_env n in
  let sec = secret () in
  let ss = Shard_store.create ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  let payload i = Printf.sprintf "s%d-%d" (i mod n) i in
  let cids =
    Array.init 16 (fun i ->
        let cid = Shard_store.allocate ~shard:(i mod n) ss in
        Shard_store.write ss cid (payload i);
        cid)
  in
  Shard_store.commit ~durable:true ss;
  Array.iteri
    (fun i cid -> Alcotest.(check string) "read back" (payload i) (Shard_store.read ss cid))
    cids;
  Alcotest.(check int) "global ids distinct" 16
    (List.length (List.sort_uniq compare (Array.to_list cids)));
  (* the published encoding stripes shard [s] over ids congruent to [s] *)
  Array.iteri
    (fun i cid ->
      Alcotest.(check bool) "above the reserved range" true (cid >= 8);
      Alcotest.(check int) "stripe" (i mod n) ((cid - 8) mod n))
    cids;
  Shard_store.close ss;
  let ss = Shard_store.open_existing ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  Array.iteri
    (fun i cid -> Alcotest.(check string) "persisted" (payload i) (Shard_store.read ss cid))
    cids;
  Shard_store.close ss;
  (* opening at the wrong width is refused, not served partially *)
  match
    Shard_store.open_existing ~config:(cfg 2) ~secret:sec
      ~counters:(Array.sub env.ctrs 0 2)
      (Array.sub env.stores 0 2)
  with
  | _ -> Alcotest.fail "opened 4-shard store at width 2"
  | exception Chunk_store.Recovery_failed _ -> ()

(* --- cross-shard 2PC --- *)

(* A durable cross-shard commit survives a crash of every shard with
   all-or-nothing visibility; a nondurable single-shard commit after it
   is rolled back cleanly, exactly as in the unsharded store. *)
let test_cross_shard_recovery () =
  let n = 2 in
  let env = make_env n in
  let sec = secret () in
  let ss = Shard_store.create ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  let a = Shard_store.allocate ~shard:0 ss and b = Shard_store.allocate ~shard:1 ss in
  Shard_store.write ss a "a0";
  Shard_store.write ss b "b0";
  Shard_store.commit ~durable:true ss;
  Shard_store.write ss a "a1";
  Shard_store.write ss b "b1";
  Shard_store.commit ~durable:true ss;
  Alcotest.(check bool) "took the 2PC path" true (Shard_store.cross_commits ss >= 1);
  Array.iter Untrusted_store.Mem.crash_hard env.store_mems;
  let ss = Shard_store.open_existing ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  Alcotest.(check string) "shard 0 applied" "a1" (Shard_store.read ss a);
  Alcotest.(check string) "shard 1 applied" "b1" (Shard_store.read ss b);
  Shard_store.write ss a "a2";
  Shard_store.commit ~durable:false ss;
  Array.iter Untrusted_store.Mem.crash_hard env.store_mems;
  let ss = Shard_store.open_existing ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  Alcotest.(check string) "nondurable rolled back" "a1" (Shard_store.read ss a);
  Alcotest.(check string) "other shard untouched" "b1" (Shard_store.read ss b);
  Shard_store.close ss

(* One participant votes no: the transaction raises [Vetoed], every
   participant rolls back, and the router stays fully usable. *)
let test_veto_rolls_back () =
  let n = 2 in
  let env = make_env n in
  let sec = secret () in
  let ss = Shard_store.create ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  let a = Shard_store.allocate ~shard:0 ss and b = Shard_store.allocate ~shard:1 ss in
  Shard_store.write ss a "a0";
  Shard_store.write ss b "b0";
  Shard_store.commit ~durable:true ss;
  Shard_store.set_prepare_hook ss (Some (fun s -> not (Int.equal s 1)));
  Shard_store.write ss a "ax";
  Shard_store.write ss b "bx";
  (match Shard_store.commit ~durable:true ss with
  | () -> Alcotest.fail "vetoed commit succeeded"
  | exception Shard_store.Vetoed s -> Alcotest.(check int) "vetoing shard" 1 s);
  Shard_store.set_prepare_hook ss None;
  Alcotest.(check string) "shard 0 rolled back" "a0" (Shard_store.read ss a);
  Alcotest.(check string) "shard 1 rolled back" "b0" (Shard_store.read ss b);
  Shard_store.write ss a "a1";
  Shard_store.write ss b "b1";
  Shard_store.commit ~durable:true ss;
  Shard_store.close ss;
  let ss = Shard_store.open_existing ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  Alcotest.(check string) "retry persisted on shard 0" "a1" (Shard_store.read ss a);
  Alcotest.(check string) "retry persisted on shard 1" "b1" (Shard_store.read ss b);
  Shard_store.close ss

(* Each shard's one-way counter is enforced independently: rolling back a
   single shard's counter is flagged as tampering at open. *)
let test_counter_rollback_detected () =
  let n = 2 in
  let env = make_env n in
  let sec = secret () in
  let ss = Shard_store.create ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  let a = Shard_store.allocate ~shard:0 ss and b = Shard_store.allocate ~shard:1 ss in
  Shard_store.write ss a "a0";
  Shard_store.write ss b "b0";
  Shard_store.commit ~durable:true ss;
  Shard_store.close ss;
  One_way_counter.Mem.rollback env.ctr_mems.(1) 0L;
  match Shard_store.open_existing ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores with
  | _ -> Alcotest.fail "rolled-back shard counter accepted"
  | exception Tdb_chunk.Types.Tamper_detected _ -> ()

(* --- barrier skip --- *)

(* The point of sharding: a commit confined to one shard must not drag
   the other shards' barriers (or counters) along. *)
let test_barrier_skips_clean_shards () =
  let n = 4 in
  let env = make_env n in
  let sec = secret () in
  let ss = Shard_store.create ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  (* settle every shard with one durable commit each *)
  for s = 0 to n - 1 do
    let cid = Shard_store.allocate ~shard:s ss in
    Shard_store.write ss cid (Printf.sprintf "seed-%d" s);
    Shard_store.commit ~durable:true ss
  done;
  let cross_before = Shard_store.cross_commits ss in
  let barriers_before = Array.copy (Shard_store.shard_barriers ss) in
  let counters_before = Array.copy (Shard_store.shard_counters ss) in
  let cid = Shard_store.allocate ~shard:2 ss in
  Shard_store.write ss cid "only-shard-2";
  Shard_store.commit ~durable:false ss;
  Shard_store.durable_barrier ss;
  Alcotest.(check int) "single-shard commit is not a 2PC" cross_before (Shard_store.cross_commits ss);
  let barriers_after = Shard_store.shard_barriers ss in
  let counters_after = Shard_store.shard_counters ss in
  Array.iteri
    (fun s before ->
      if Int.equal s 2 then begin
        Alcotest.(check bool) "dirty shard ran its barrier" true (barriers_after.(2) > before);
        Alcotest.(check bool) "dirty shard's counter advanced" true
          (Int64.compare counters_after.(2) counters_before.(2) > 0)
      end
      else begin
        Alcotest.(check int) (Printf.sprintf "clean shard %d skipped the barrier" s) before
          barriers_after.(s);
        Alcotest.(check int64)
          (Printf.sprintf "clean shard %d's counter untouched" s)
          counters_before.(s) counters_after.(s)
      end)
    barriers_before;
  Shard_store.close ss

(* --- object-level abort path under concurrent transfers --- *)

type acct = { bal : int }

let acct_cls : acct Obj_class.t =
  Obj_class.define ~name:"shardtest.acct"
    ~pickle:(fun w (a : acct) -> Tdb_pickle.Pickle.int w a.bal)
    ~unpickle:(fun ~version:_ r -> { bal = Tdb_pickle.Pickle.read_int r })
    ()

(* Concurrent transfer stress over a sharded store with a prepare hook
   vetoing a slice of the cross-shard transactions: every veto must roll
   the whole transfer back (money conserved), release its 2PL locks, and
   leave the router healthy — including across a close/reopen. *)
let test_concurrent_transfers_with_veto () =
  let n = 2 in
  let env = make_env n in
  let sec = secret () in
  let ss = Shard_store.create ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  let os =
    Object_store.of_shard_store
      ~config:{ Object_store.default_config with Object_store.lock_timeout = 5.0 }
      ss
  in
  let naccts = 8 in
  let initial = 1000 in
  let oids =
    Object_store.with_txn os (fun x ->
        Array.init naccts (fun i ->
            Object_store.set_alloc_shard x (Some (i mod n));
            Object_store.insert x acct_cls { bal = initial }))
  in
  let hook_calls = Atomic.make 0 and vetoes = Atomic.make 0 in
  Shard_store.set_prepare_hook ss
    (Some (fun _ -> not (Int.equal (Atomic.fetch_and_add hook_calls 1) 8)));
  (* the 9th prepare vote (and only it) is a no: one deterministic veto *)
  let timeouts = Atomic.make 0 in
  let worker k =
    let rng = Tdb_crypto.Drbg.create ~seed:(Printf.sprintf "xfer-%d" k) in
    for i = 0 to 24 do
      let a = Tdb_crypto.Drbg.int rng naccts in
      let b = (a + 1 + Tdb_crypto.Drbg.int rng (naccts - 1)) mod naccts in
      (* lock in oid order so transfers cannot deadlock each other *)
      let a, b = if a < b then (a, b) else (b, a) in
      let amt = 1 + Tdb_crypto.Drbg.int rng 50 in
      match
        Object_store.with_txn ~durable:(Int.equal (i mod 3) 0) os (fun x ->
            let va = Object_store.deref (Object_store.open_readonly x acct_cls oids.(a)) in
            let vb = Object_store.deref (Object_store.open_readonly x acct_cls oids.(b)) in
            Object_store.update x acct_cls oids.(a) { bal = va.bal - amt };
            Object_store.update x acct_cls oids.(b) { bal = vb.bal + amt })
      with
      | () -> ()
      | exception Shard_store.Vetoed _ -> Atomic.incr vetoes
      | exception Lock_manager.Lock_timeout _ -> Atomic.incr timeouts
    done
  in
  let threads = List.init 4 (fun k -> Thread.create worker k) in
  List.iter Thread.join threads;
  Shard_store.set_prepare_hook ss None;
  let sum os =
    Object_store.with_txn ~durable:false os (fun x ->
        Array.fold_left
          (fun acc oid -> acc + (Object_store.deref (Object_store.open_readonly x acct_cls oid)).bal)
          0 oids)
  in
  Alcotest.(check int) "money conserved" (naccts * initial) (sum os);
  Alcotest.(check int) "all 2PL locks released" 0 (Object_store.held_count os);
  Alcotest.(check bool) "cross-shard transfers happened" true (Shard_store.cross_commits ss > 0);
  Alcotest.(check int) "the veto fired exactly once" 1 (Atomic.get vetoes);
  Object_store.close os;
  let ss = Shard_store.open_existing ~config:(cfg n) ~secret:sec ~counters:env.ctrs env.stores in
  let os = Object_store.of_shard_store ss in
  Alcotest.(check int) "conserved after reopen" (naccts * initial) (sum os);
  Object_store.close os

let () =
  Alcotest.run "tdb_shard"
    [
      ( "routing",
        [
          Alcotest.test_case "1-shard byte compatibility" `Quick test_single_shard_byte_compat;
          Alcotest.test_case "striping + width check" `Quick test_routing;
        ] );
      ( "2pc",
        [
          Alcotest.test_case "crash recovery all-or-nothing" `Quick test_cross_shard_recovery;
          Alcotest.test_case "veto rolls back every participant" `Quick test_veto_rolls_back;
          Alcotest.test_case "per-shard counter rollback detected" `Quick test_counter_rollback_detected;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "single-shard commit skips clean barriers" `Quick
            test_barrier_skips_clean_shards;
          Alcotest.test_case "concurrent transfers + veto abort path" `Slow
            test_concurrent_transfers_with_veto;
        ] );
    ]
