(* Platform substrate tests: untrusted store semantics (including crash and
   tamper injection), one-way counter monotonicity and torn-write safety,
   secret store derivation, archival store. *)

open Tdb_platform

let with_tmpdir f =
  let dir = Filename.temp_file "tdbtest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))) (fun () -> f dir)

(* --- untrusted store (mem) --- *)

let test_mem_rw () =
  let _h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "hello";
  Untrusted_store.write s ~off:5 " world";
  Alcotest.(check string) "read" "hello world" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:11));
  Alcotest.(check int) "size" 11 (Untrusted_store.size s);
  Untrusted_store.write s ~off:100 "far";
  Alcotest.(check int) "sparse grows" 103 (Untrusted_store.size s);
  (* hole reads as zeros *)
  Alcotest.(check string) "hole" (String.make 3 '\000') (Bytes.to_string (Untrusted_store.read s ~off:50 ~len:3))

let test_mem_bounds () =
  let _h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "abc";
  Alcotest.(check bool) "oob read raises" true
    (match Untrusted_store.read s ~off:0 ~len:4 with exception Invalid_argument _ -> true | _ -> false)

let test_mem_crash_loses_unsynced () =
  let h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "stable!!";
  Untrusted_store.sync s;
  Untrusted_store.write s ~off:0 "volatile";
  Untrusted_store.Mem.crash_hard h;
  Alcotest.(check string) "reverted" "stable!!" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:8))

let test_mem_crash_partial_persistence () =
  (* with persist_prob 1.0 every unsynced write survives *)
  let h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "aaaa";
  Untrusted_store.sync s;
  Untrusted_store.write s ~off:0 "bbbb";
  Untrusted_store.Mem.crash ~persist_prob:1.0 ~rng:(fun _ -> 0) h;
  Alcotest.(check string) "all survive" "bbbb" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:4))

let test_mem_tamper_and_snapshot () =
  let h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "sensitive-data";
  Untrusted_store.sync s;
  let img = Untrusted_store.Mem.snapshot h in
  Untrusted_store.Mem.corrupt h ~off:0 ~len:1 ~mask:0xff;
  Alcotest.(check bool) "corrupted" true (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:14) <> "sensitive-data");
  Untrusted_store.Mem.restore h img;
  Alcotest.(check string) "replayed" "sensitive-data" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:14))

let test_mem_stats () =
  let _h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "12345";
  ignore (Untrusted_store.read s ~off:0 ~len:2);
  Untrusted_store.sync s;
  let st = Untrusted_store.stats s in
  Alcotest.(check int) "writes" 1 st.Untrusted_store.writes;
  Alcotest.(check int) "bytes written" 5 st.Untrusted_store.bytes_written;
  Alcotest.(check int) "bytes read" 2 st.Untrusted_store.bytes_read;
  Alcotest.(check int) "syncs" 1 st.Untrusted_store.syncs

(* --- vectored writes --- *)

let test_mem_writev () =
  let _h, s = Untrusted_store.open_mem () in
  Untrusted_store.writev s ~off:0 [ "head"; ""; "-"; "tail" ];
  Alcotest.(check string) "concatenated" "head-tail" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:9));
  let st = Untrusted_store.stats s in
  Alcotest.(check int) "one write call" 1 st.Untrusted_store.writes;
  Alcotest.(check int) "three fragments (empties skipped)" 3 st.Untrusted_store.fragments;
  Alcotest.(check int) "bytes" 9 st.Untrusted_store.bytes_written;
  (* hole-extension: a writev past the end grows the store, hole zeroed *)
  Untrusted_store.writev s ~off:20 [ "far"; "away" ];
  Alcotest.(check int) "sparse grows" 27 (Untrusted_store.size s);
  Alcotest.(check string) "hole zeros" (String.make 5 '\000')
    (Bytes.to_string (Untrusted_store.read s ~off:10 ~len:5));
  Alcotest.(check string) "far data" "faraway" (Bytes.to_string (Untrusted_store.read s ~off:20 ~len:7));
  (* empty fragment list: no-op, no stats *)
  let w = (Untrusted_store.stats s).Untrusted_store.writes in
  Untrusted_store.writev s ~off:1000 [];
  Untrusted_store.writev s ~off:1000 [ ""; "" ];
  Alcotest.(check int) "empty writev is a no-op" w (Untrusted_store.stats s).Untrusted_store.writes;
  Alcotest.(check int) "size unchanged" 27 (Untrusted_store.size s)

let test_mem_writev_crash_fragment_suffix () =
  (* a crash may lose an arbitrary fragment suffix of an unsynced writev:
     each fragment is a separate pending entry, so with an rng keeping the
     first k draws, exactly the first k fragments survive *)
  let n_frags = 4 in
  let frags = List.init n_frags (fun i -> String.make 4 (Char.chr (Char.code 'a' + i))) in
  for k = 0 to n_frags do
    let h, s = Untrusted_store.open_mem () in
    Untrusted_store.write s ~off:0 (String.make (4 * n_frags) '.');
    Untrusted_store.sync s;
    Untrusted_store.writev s ~off:0 frags;
    let drawn = ref 0 in
    Untrusted_store.Mem.crash ~persist_prob:0.5
      ~rng:(fun _ ->
        incr drawn;
        if !drawn <= k then 0 else 999)
      h;
    let expect =
      String.concat ""
        (List.mapi (fun i f -> if i < k then f else String.make 4 '.') frags)
    in
    Alcotest.(check string)
      (Printf.sprintf "first %d fragments survive" k)
      expect
      (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:(4 * n_frags)))
  done

let test_writev_interpose_boundaries () =
  (* interpose decomposes a writev into per-fragment boundaries, skipping
     empty fragments, with prior fragments applied individually *)
  let _h, raw = Untrusted_store.open_mem () in
  let seen = ref [] in
  let s =
    Untrusted_store.interpose raw ~before:(fun op ->
        match op with
        | Untrusted_store.Op_write { off; data } -> seen := (off, data) :: !seen
        | _ -> ())
  in
  Untrusted_store.writev s ~off:10 [ "aa"; ""; "bbb"; "c" ];
  Alcotest.(check (list (pair int string)))
    "per-fragment boundaries, empties skipped"
    [ (10, "aa"); (12, "bbb"); (15, "c") ]
    (List.rev !seen);
  Alcotest.(check string) "all fragments applied" "aabbbc"
    (Bytes.to_string (Untrusted_store.read raw ~off:10 ~len:6));
  (* a hook that raises at fragment k leaves exactly k fragments applied *)
  let count = ref 0 in
  let s2 =
    Untrusted_store.interpose raw ~before:(fun op ->
        match op with
        | Untrusted_store.Op_write _ ->
            incr count;
            if !count > 2 then failwith "crash"
        | _ -> ())
  in
  (match Untrusted_store.writev s2 ~off:100 [ "11"; "22"; "33"; "44" ] with
  | () -> Alcotest.fail "hook did not crash"
  | exception Failure _ -> ());
  Alcotest.(check string) "prefix fragments applied" "1122"
    (Bytes.to_string (Untrusted_store.read raw ~off:100 ~len:4));
  Alcotest.(check int) "suffix never written" 104 (Untrusted_store.size raw)

let test_file_writev () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "db" in
      let s = Untrusted_store.open_file path in
      Untrusted_store.write s ~off:0 "0123456789";
      Untrusted_store.writev s ~off:4 [ "AB"; ""; "CD" ];
      let st = Untrusted_store.stats s in
      Alcotest.(check int) "two write calls" 2 st.Untrusted_store.writes;
      Alcotest.(check int) "fragments" 3 st.Untrusted_store.fragments;
      Untrusted_store.sync s;
      Untrusted_store.close s;
      let s2 = Untrusted_store.open_file path in
      Alcotest.(check string) "reopen sees coalesced write" "0123ABCD89"
        (Bytes.to_string (Untrusted_store.read s2 ~off:0 ~len:10));
      (* extension via writev *)
      Untrusted_store.writev s2 ~off:10 [ "xx"; "yy" ];
      Alcotest.(check int) "extends" 14 (Untrusted_store.size s2);
      Alcotest.(check string) "tail" "xxyy" (Bytes.to_string (Untrusted_store.read s2 ~off:10 ~len:4));
      Untrusted_store.close s2)

(* --- untrusted store (file) --- *)

let test_file_store () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "db" in
      let s = Untrusted_store.open_file path in
      Untrusted_store.write s ~off:0 "persist me";
      Untrusted_store.sync s;
      Untrusted_store.close s;
      let s2 = Untrusted_store.open_file path in
      Alcotest.(check string) "reopen" "persist me" (Bytes.to_string (Untrusted_store.read s2 ~off:0 ~len:10));
      Untrusted_store.set_size s2 4;
      Alcotest.(check int) "truncate" 4 (Untrusted_store.size s2);
      Untrusted_store.set_size s2 8;
      Alcotest.(check string) "extend zeros" "pers\000\000\000\000"
        (Bytes.to_string (Untrusted_store.read s2 ~off:0 ~len:8));
      Untrusted_store.close s2)

(* --- one-way counter --- *)

let test_counter_mem () =
  let _h, c = One_way_counter.open_mem () in
  Alcotest.(check int64) "initial" 0L (One_way_counter.read c);
  Alcotest.(check int64) "inc" 1L (One_way_counter.increment c);
  Alcotest.(check int64) "inc" 2L (One_way_counter.increment c);
  Alcotest.(check int64) "read" 2L (One_way_counter.read c)

let test_counter_file_persistence () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "ctr" in
      let c = One_way_counter.open_file path in
      for _ = 1 to 5 do
        ignore (One_way_counter.increment c)
      done;
      let c2 = One_way_counter.open_file path in
      Alcotest.(check int64) "survives reopen" 5L (One_way_counter.read c2))

let test_counter_file_torn_write () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "ctr" in
      let c = One_way_counter.open_file path in
      ignore (One_way_counter.increment c);
      ignore (One_way_counter.increment c);
      (* corrupt the slot that would be written next (slot 0 holds an older
         value now); counter must still report the max valid slot *)
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let slot_len = String.length contents / 2 in
      let broken = String.make slot_len 'X' ^ String.sub contents slot_len slot_len in
      let oc = open_out_gen [ Open_wronly; Open_binary ] 0o600 path in
      output_string oc broken;
      close_out oc;
      let c2 = One_way_counter.open_file path in
      Alcotest.(check bool) "still >= 1" true (One_way_counter.read c2 >= 1L))

let test_counter_monotonic_qcheck =
  QCheck.Test.make ~name:"counter strictly monotonic" ~count:50
    QCheck.(int_range 1 100)
    (fun n ->
      let _h, c = One_way_counter.open_mem () in
      let vals = List.init n (fun _ -> One_way_counter.increment c) in
      let rec increasing = function a :: (b :: _ as r) -> a < b && increasing r | _ -> true in
      increasing vals)

(* --- secret store --- *)

let test_secret_derivation () =
  let s = Secret_store.of_seed "device-42" in
  let k1 = Secret_store.derive s "chunk-encryption" in
  let k2 = Secret_store.derive s "anchor-mac" in
  Alcotest.(check int) "32 bytes" 32 (String.length k1);
  Alcotest.(check bool) "purpose-bound" true (k1 <> k2);
  let s' = Secret_store.of_seed "device-42" in
  Alcotest.(check bool) "deterministic" true (Secret_store.derive s' "chunk-encryption" = k1);
  let s2 = Secret_store.of_seed "device-43" in
  Alcotest.(check bool) "device-bound" true (Secret_store.derive s2 "chunk-encryption" <> k1);
  Alcotest.(check int) "derive_len" 48 (String.length (Secret_store.derive_len s "cipher" 48))

let test_secret_file () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "rom" in
      let s = Secret_store.of_file path in
      let s2 = Secret_store.of_file path in
      Alcotest.(check bool) "stable across opens" true
        (Secret_store.derive s "x" = Secret_store.derive s2 "x"))

let test_secret_zeroize () =
  let s = Secret_store.of_seed "z" in
  let z = Secret_store.zeroize s in
  Alcotest.(check bool) "keys gone" true (Secret_store.derive z "x" <> Secret_store.derive s "x")

(* --- archival store --- *)

let test_archive_mem () =
  let h, a = Archival_store.open_mem () in
  Archival_store.put a ~name:"full-1" "data1";
  Archival_store.put a ~name:"incr-2" "data2";
  Alcotest.(check (list string)) "list" [ "full-1"; "incr-2" ] (Archival_store.list a);
  Alcotest.(check (option string)) "get" (Some "data1") (Archival_store.get a ~name:"full-1");
  Archival_store.Mem.corrupt h ~name:"full-1" ~pos:0 ~mask:1;
  Alcotest.(check bool) "corrupted" true (Archival_store.get a ~name:"full-1" <> Some "data1");
  Archival_store.delete a ~name:"full-1";
  Alcotest.(check (option string)) "deleted" None (Archival_store.get a ~name:"full-1")

let test_archive_dir () =
  with_tmpdir (fun dir ->
      let a = Archival_store.open_dir (Filename.concat dir "arch") in
      Archival_store.put a ~name:"b1" "payload";
      Alcotest.(check (option string)) "roundtrip" (Some "payload") (Archival_store.get a ~name:"b1");
      Alcotest.(check (option string)) "missing" None (Archival_store.get a ~name:"nope");
      Alcotest.(check bool) "bad name rejected" true
        (match Archival_store.put a ~name:"../evil" "x" with exception Invalid_argument _ -> true | _ -> false))

let () =
  Alcotest.run "tdb_platform"
    [
      ( "untrusted-mem",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "crash loses unsynced" `Quick test_mem_crash_loses_unsynced;
          Alcotest.test_case "crash partial persistence" `Quick test_mem_crash_partial_persistence;
          Alcotest.test_case "tamper + replay" `Quick test_mem_tamper_and_snapshot;
          Alcotest.test_case "stats" `Quick test_mem_stats;
          Alcotest.test_case "writev" `Quick test_mem_writev;
          Alcotest.test_case "writev crash loses fragment suffix" `Quick test_mem_writev_crash_fragment_suffix;
          Alcotest.test_case "writev interpose boundaries" `Quick test_writev_interpose_boundaries;
        ] );
      ( "untrusted-file",
        [
          Alcotest.test_case "file roundtrip" `Quick test_file_store;
          Alcotest.test_case "file writev" `Quick test_file_writev;
        ] );
      ( "one-way-counter",
        [
          Alcotest.test_case "mem" `Quick test_counter_mem;
          Alcotest.test_case "file persistence" `Quick test_counter_file_persistence;
          Alcotest.test_case "torn write" `Quick test_counter_file_torn_write;
          QCheck_alcotest.to_alcotest test_counter_monotonic_qcheck;
        ] );
      ( "secret-store",
        [
          Alcotest.test_case "derivation" `Quick test_secret_derivation;
          Alcotest.test_case "file" `Quick test_secret_file;
          Alcotest.test_case "zeroize" `Quick test_secret_zeroize;
        ] );
      ( "archival-store",
        [
          Alcotest.test_case "mem" `Quick test_archive_mem;
          Alcotest.test_case "dir" `Quick test_archive_dir;
        ] );
    ]
