(* Platform substrate tests: untrusted store semantics (including crash and
   tamper injection), one-way counter monotonicity and torn-write safety,
   secret store derivation, archival store. *)

open Tdb_platform

let with_tmpdir f =
  let dir = Filename.temp_file "tdbtest" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))) (fun () -> f dir)

(* --- untrusted store (mem) --- *)

let test_mem_rw () =
  let _h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "hello";
  Untrusted_store.write s ~off:5 " world";
  Alcotest.(check string) "read" "hello world" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:11));
  Alcotest.(check int) "size" 11 (Untrusted_store.size s);
  Untrusted_store.write s ~off:100 "far";
  Alcotest.(check int) "sparse grows" 103 (Untrusted_store.size s);
  (* hole reads as zeros *)
  Alcotest.(check string) "hole" (String.make 3 '\000') (Bytes.to_string (Untrusted_store.read s ~off:50 ~len:3))

let test_mem_bounds () =
  let _h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "abc";
  Alcotest.(check bool) "oob read raises" true
    (match Untrusted_store.read s ~off:0 ~len:4 with exception Invalid_argument _ -> true | _ -> false)

let test_mem_crash_loses_unsynced () =
  let h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "stable!!";
  Untrusted_store.sync s;
  Untrusted_store.write s ~off:0 "volatile";
  Untrusted_store.Mem.crash_hard h;
  Alcotest.(check string) "reverted" "stable!!" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:8))

let test_mem_crash_partial_persistence () =
  (* with persist_prob 1.0 every unsynced write survives *)
  let h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "aaaa";
  Untrusted_store.sync s;
  Untrusted_store.write s ~off:0 "bbbb";
  Untrusted_store.Mem.crash ~persist_prob:1.0 ~rng:(fun _ -> 0) h;
  Alcotest.(check string) "all survive" "bbbb" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:4))

let test_mem_tamper_and_snapshot () =
  let h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "sensitive-data";
  Untrusted_store.sync s;
  let img = Untrusted_store.Mem.snapshot h in
  Untrusted_store.Mem.corrupt h ~off:0 ~len:1 ~mask:0xff;
  Alcotest.(check bool) "corrupted" true (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:14) <> "sensitive-data");
  Untrusted_store.Mem.restore h img;
  Alcotest.(check string) "replayed" "sensitive-data" (Bytes.to_string (Untrusted_store.read s ~off:0 ~len:14))

let test_mem_stats () =
  let _h, s = Untrusted_store.open_mem () in
  Untrusted_store.write s ~off:0 "12345";
  ignore (Untrusted_store.read s ~off:0 ~len:2);
  Untrusted_store.sync s;
  let st = Untrusted_store.stats s in
  Alcotest.(check int) "writes" 1 st.Untrusted_store.writes;
  Alcotest.(check int) "bytes written" 5 st.Untrusted_store.bytes_written;
  Alcotest.(check int) "bytes read" 2 st.Untrusted_store.bytes_read;
  Alcotest.(check int) "syncs" 1 st.Untrusted_store.syncs

(* --- untrusted store (file) --- *)

let test_file_store () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "db" in
      let s = Untrusted_store.open_file path in
      Untrusted_store.write s ~off:0 "persist me";
      Untrusted_store.sync s;
      Untrusted_store.close s;
      let s2 = Untrusted_store.open_file path in
      Alcotest.(check string) "reopen" "persist me" (Bytes.to_string (Untrusted_store.read s2 ~off:0 ~len:10));
      Untrusted_store.set_size s2 4;
      Alcotest.(check int) "truncate" 4 (Untrusted_store.size s2);
      Untrusted_store.set_size s2 8;
      Alcotest.(check string) "extend zeros" "pers\000\000\000\000"
        (Bytes.to_string (Untrusted_store.read s2 ~off:0 ~len:8));
      Untrusted_store.close s2)

(* --- one-way counter --- *)

let test_counter_mem () =
  let _h, c = One_way_counter.open_mem () in
  Alcotest.(check int64) "initial" 0L (One_way_counter.read c);
  Alcotest.(check int64) "inc" 1L (One_way_counter.increment c);
  Alcotest.(check int64) "inc" 2L (One_way_counter.increment c);
  Alcotest.(check int64) "read" 2L (One_way_counter.read c)

let test_counter_file_persistence () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "ctr" in
      let c = One_way_counter.open_file path in
      for _ = 1 to 5 do
        ignore (One_way_counter.increment c)
      done;
      let c2 = One_way_counter.open_file path in
      Alcotest.(check int64) "survives reopen" 5L (One_way_counter.read c2))

let test_counter_file_torn_write () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "ctr" in
      let c = One_way_counter.open_file path in
      ignore (One_way_counter.increment c);
      ignore (One_way_counter.increment c);
      (* corrupt the slot that would be written next (slot 0 holds an older
         value now); counter must still report the max valid slot *)
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let slot_len = String.length contents / 2 in
      let broken = String.make slot_len 'X' ^ String.sub contents slot_len slot_len in
      let oc = open_out_gen [ Open_wronly; Open_binary ] 0o600 path in
      output_string oc broken;
      close_out oc;
      let c2 = One_way_counter.open_file path in
      Alcotest.(check bool) "still >= 1" true (One_way_counter.read c2 >= 1L))

let test_counter_monotonic_qcheck =
  QCheck.Test.make ~name:"counter strictly monotonic" ~count:50
    QCheck.(int_range 1 100)
    (fun n ->
      let _h, c = One_way_counter.open_mem () in
      let vals = List.init n (fun _ -> One_way_counter.increment c) in
      let rec increasing = function a :: (b :: _ as r) -> a < b && increasing r | _ -> true in
      increasing vals)

(* --- secret store --- *)

let test_secret_derivation () =
  let s = Secret_store.of_seed "device-42" in
  let k1 = Secret_store.derive s "chunk-encryption" in
  let k2 = Secret_store.derive s "anchor-mac" in
  Alcotest.(check int) "32 bytes" 32 (String.length k1);
  Alcotest.(check bool) "purpose-bound" true (k1 <> k2);
  let s' = Secret_store.of_seed "device-42" in
  Alcotest.(check bool) "deterministic" true (Secret_store.derive s' "chunk-encryption" = k1);
  let s2 = Secret_store.of_seed "device-43" in
  Alcotest.(check bool) "device-bound" true (Secret_store.derive s2 "chunk-encryption" <> k1);
  Alcotest.(check int) "derive_len" 48 (String.length (Secret_store.derive_len s "cipher" 48))

let test_secret_file () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "rom" in
      let s = Secret_store.of_file path in
      let s2 = Secret_store.of_file path in
      Alcotest.(check bool) "stable across opens" true
        (Secret_store.derive s "x" = Secret_store.derive s2 "x"))

let test_secret_zeroize () =
  let s = Secret_store.of_seed "z" in
  let z = Secret_store.zeroize s in
  Alcotest.(check bool) "keys gone" true (Secret_store.derive z "x" <> Secret_store.derive s "x")

(* --- archival store --- *)

let test_archive_mem () =
  let h, a = Archival_store.open_mem () in
  Archival_store.put a ~name:"full-1" "data1";
  Archival_store.put a ~name:"incr-2" "data2";
  Alcotest.(check (list string)) "list" [ "full-1"; "incr-2" ] (Archival_store.list a);
  Alcotest.(check (option string)) "get" (Some "data1") (Archival_store.get a ~name:"full-1");
  Archival_store.Mem.corrupt h ~name:"full-1" ~pos:0 ~mask:1;
  Alcotest.(check bool) "corrupted" true (Archival_store.get a ~name:"full-1" <> Some "data1");
  Archival_store.delete a ~name:"full-1";
  Alcotest.(check (option string)) "deleted" None (Archival_store.get a ~name:"full-1")

let test_archive_dir () =
  with_tmpdir (fun dir ->
      let a = Archival_store.open_dir (Filename.concat dir "arch") in
      Archival_store.put a ~name:"b1" "payload";
      Alcotest.(check (option string)) "roundtrip" (Some "payload") (Archival_store.get a ~name:"b1");
      Alcotest.(check (option string)) "missing" None (Archival_store.get a ~name:"nope");
      Alcotest.(check bool) "bad name rejected" true
        (match Archival_store.put a ~name:"../evil" "x" with exception Invalid_argument _ -> true | _ -> false))

let () =
  Alcotest.run "tdb_platform"
    [
      ( "untrusted-mem",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "crash loses unsynced" `Quick test_mem_crash_loses_unsynced;
          Alcotest.test_case "crash partial persistence" `Quick test_mem_crash_partial_persistence;
          Alcotest.test_case "tamper + replay" `Quick test_mem_tamper_and_snapshot;
          Alcotest.test_case "stats" `Quick test_mem_stats;
        ] );
      ("untrusted-file", [ Alcotest.test_case "file roundtrip" `Quick test_file_store ]);
      ( "one-way-counter",
        [
          Alcotest.test_case "mem" `Quick test_counter_mem;
          Alcotest.test_case "file persistence" `Quick test_counter_file_persistence;
          Alcotest.test_case "torn write" `Quick test_counter_file_torn_write;
          QCheck_alcotest.to_alcotest test_counter_monotonic_qcheck;
        ] );
      ( "secret-store",
        [
          Alcotest.test_case "derivation" `Quick test_secret_derivation;
          Alcotest.test_case "file" `Quick test_secret_file;
          Alcotest.test_case "zeroize" `Quick test_secret_zeroize;
        ] );
      ( "archival-store",
        [
          Alcotest.test_case "mem" `Quick test_archive_mem;
          Alcotest.test_case "dir" `Quick test_archive_dir;
        ] );
    ]
