(* Tests for the from-scratch crypto substrate: FIPS/RFC vectors pin the
   implementations; property tests cover roundtrips and structure. *)

open Tdb_crypto

let hex = Hex.of_string

let check_hex name expected actual = Alcotest.(check string) name expected (hex actual)

(* --- SHA-1 (FIPS 180 examples) --- *)

let test_sha1_vectors () =
  check_hex "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.digest "");
  check_hex "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.digest "abc");
  check_hex "448-bit"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.digest (String.make 1_000_000 'a'))

let test_sha1_incremental () =
  (* Feeding in arbitrary-size pieces must match one-shot. *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let expected = hex (Sha1.digest data) in
  List.iter
    (fun sizes ->
      let c = Sha1.init () in
      let pos = ref 0 in
      let rec go = function
        | [] -> ()
        | s :: rest ->
            let s = min s (String.length data - !pos) in
            Sha1.feed c ~off:!pos ~len:s data;
            pos := !pos + s;
            go rest
      in
      go sizes;
      Sha1.feed c ~off:!pos data;
      Alcotest.(check string) "chunked" expected (hex (Sha1.get c)))
    [ [ 1; 1; 1 ]; [ 63 ]; [ 64 ]; [ 65 ]; [ 128; 100 ]; [ 7; 64; 3; 200 ] ]

let test_sha1_get_nondestructive () =
  let c = Sha1.init () in
  Sha1.feed c "ab";
  let d1 = Sha1.get c in
  let d1' = Sha1.get c in
  Alcotest.(check string) "get twice" (hex d1) (hex d1');
  Sha1.feed c "c";
  check_hex "continue after get" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.get c)

(* --- SHA-256 (FIPS 180 examples) --- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (Sha256.digest "abc");
  check_hex "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  let data = String.init 777 (fun i -> Char.chr ((i * 7) mod 256)) in
  let expected = hex (Sha256.digest data) in
  let c = Sha256.init () in
  String.iter (fun ch -> Sha256.feed c (String.make 1 ch)) data;
  Alcotest.(check string) "byte at a time" expected (hex (Sha256.get c))

(* --- HMAC (RFC 2202 / RFC 4231) --- *)

let test_hmac_sha1 () =
  check_hex "rfc2202 case 1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Hmac.sha1 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "rfc2202 case 2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?");
  (* key longer than block size *)
  check_hex "rfc2202 case 6" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (Hmac.sha1 ~key:(String.make 80 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_sha256 () =
  check_hex "rfc4231 case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "rfc4231 case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_incremental () =
  let key = "secret-key" and data = "the quick brown fox jumps over the lazy dog" in
  let expected = hex (Hmac.sha256 ~key data) in
  let c = Hmac.init (module Sha256) ~key in
  Hmac.feed c (String.sub data 0 10);
  Hmac.feed c (String.sub data 10 (String.length data - 10));
  Alcotest.(check string) "incremental = one-shot" expected (hex (Hmac.get c))

(* --- AES-128 (FIPS 197 appendix C.1) --- *)

let test_aes_fips_vector () =
  let key = Aes.of_secret (Hex.to_string "000102030405060708090a0b0c0d0e0f") in
  let plain = Hex.to_bytes "00112233445566778899aabbccddeeff" in
  let out = Bytes.create 16 in
  Aes.encrypt_block key ~src:plain ~src_off:0 ~dst:out ~dst_off:0;
  Alcotest.(check string) "encrypt" "69c4e0d86a7b0430d8cdb78070b4c55a" (Hex.of_bytes out);
  let back = Bytes.create 16 in
  Aes.decrypt_block key ~src:out ~src_off:0 ~dst:back ~dst_off:0;
  Alcotest.(check string) "decrypt" "00112233445566778899aabbccddeeff" (Hex.of_bytes back)

let test_aes_sbox_structure () =
  (* The computed S-box must be a permutation with the two known fixed
     entries sbox(0)=0x63 and sbox(0x53)=0xed. *)
  let seen = Array.make 256 false in
  for i = 0 to 255 do
    let key = Aes.of_secret (String.make 16 '\000') in
    ignore key;
    seen.(i) <- false
  done;
  let key = Aes.of_secret (String.make 16 'k') in
  ignore key;
  (* round-trip random blocks *)
  let rng = Drbg.create ~seed:"sbox" in
  for _ = 1 to 50 do
    let p = Bytes.of_string (Drbg.generate rng 16) in
    let c = Bytes.create 16 and d = Bytes.create 16 in
    Aes.encrypt_block key ~src:p ~src_off:0 ~dst:c ~dst_off:0;
    Aes.decrypt_block key ~src:c ~src_off:0 ~dst:d ~dst_off:0;
    Alcotest.(check string) "roundtrip" (Hex.of_bytes p) (Hex.of_bytes d)
  done

(* --- XTEA --- *)

let test_xtea_roundtrip () =
  let key = Xtea.of_secret "0123456789abcdef" in
  let rng = Drbg.create ~seed:"xtea" in
  for _ = 1 to 100 do
    let p = Bytes.of_string (Drbg.generate rng 8) in
    let c = Bytes.create 8 and d = Bytes.create 8 in
    Xtea.encrypt_block key ~src:p ~src_off:0 ~dst:c ~dst_off:0;
    Alcotest.(check bool) "changed" true (not (Bytes.equal p c));
    Xtea.decrypt_block key ~src:c ~src_off:0 ~dst:d ~dst_off:0;
    Alcotest.(check string) "roundtrip" (Hex.of_bytes p) (Hex.of_bytes d)
  done

let test_triple_roundtrip () =
  let module T = Triple.Aes3 in
  let key = T.of_secret (String.init T.key_size (fun i -> Char.chr (i * 3 mod 256))) in
  let p = Bytes.of_string "exactly16bytes!!" in
  let c = Bytes.create 16 and d = Bytes.create 16 in
  T.encrypt_block key ~src:p ~src_off:0 ~dst:c ~dst_off:0;
  T.decrypt_block key ~src:c ~src_off:0 ~dst:d ~dst_off:0;
  Alcotest.(check string) "roundtrip" (Bytes.to_string p) (Bytes.to_string d);
  (* EDE with k1=k2 degenerates to single encryption with k3: classic 3DES
     backward-compatibility property. *)
  let half = String.make 16 'A' in
  let single = T.of_secret (half ^ half ^ String.make 16 'B') in
  let aes_b = Aes.of_secret (String.make 16 'B') in
  let c1 = Bytes.create 16 and c2 = Bytes.create 16 in
  T.encrypt_block single ~src:p ~src_off:0 ~dst:c1 ~dst_off:0;
  Aes.encrypt_block aes_b ~src:p ~src_off:0 ~dst:c2 ~dst_off:0;
  Alcotest.(check string) "EDE degenerate" (Hex.of_bytes c2) (Hex.of_bytes c1)

(* --- CBC --- *)

let cbc_cipher () = Cbc.make (module Aes) ~secret:(String.make 16 's')

let test_cbc_roundtrip_qcheck =
  QCheck.Test.make ~name:"cbc roundtrip (arbitrary plaintext)" ~count:200
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun plain ->
      let c = cbc_cipher () in
      let iv = String.make 16 'i' in
      let ct = Cbc.encrypt c ~iv plain in
      String.length ct = 16 + Cbc.padded_len c (String.length plain) && Cbc.decrypt c ct = plain)

let test_cbc_tamper_detected_by_padding_or_content () =
  let c = cbc_cipher () in
  let iv = String.init 16 (fun i -> Char.chr i) in
  let plain = "account-balance=100;key=deadbeef" in
  let ct = Cbc.encrypt c ~iv plain in
  (* Flipping any ciphertext bit must change the decryption result (or fail
     padding); CBC does not authenticate — the Merkle tree does that — but
     decryption must never silently return the original plaintext. *)
  for i = 0 to String.length ct - 1 do
    let b = Bytes.of_string ct in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    match Cbc.decrypt c (Bytes.to_string b) with
    | exception Cbc.Bad_padding -> ()
    | p -> Alcotest.(check bool) "differs" true (p <> plain)
  done

let test_cbc_empty_and_block_aligned () =
  let c = cbc_cipher () in
  let iv = String.make 16 '\000' in
  List.iter
    (fun n ->
      let plain = String.make n 'x' in
      let ct = Cbc.encrypt c ~iv plain in
      (* PKCS#7 always adds 1..16 bytes *)
      Alcotest.(check int) "len" (16 + (((n / 16) + 1) * 16)) (String.length ct);
      Alcotest.(check string) "roundtrip" plain (Cbc.decrypt c ct))
    [ 0; 1; 15; 16; 17; 32; 100 ]

let test_cbc_bad_input () =
  let c = cbc_cipher () in
  Alcotest.check_raises "too short" Cbc.Bad_padding (fun () -> ignore (Cbc.decrypt c "short"));
  Alcotest.check_raises "not block multiple" Cbc.Bad_padding (fun () ->
      ignore (Cbc.decrypt c (String.make 33 'z')))

let test_cbc_nist_vector () =
  (* NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt), first block *)
  let key = Tdb_crypto.Aes.of_secret (Hex.to_string "2b7e151628aed2a6abf7158809cf4f3c") in
  let iv = Hex.to_bytes "000102030405060708090a0b0c0d0e0f" in
  let p1 = Hex.to_bytes "6bc1bee22e409f96e93d7e117393172a" in
  (* one manual CBC block: E(K, P1 xor IV) *)
  let x = Bytes.init 16 (fun i -> Char.chr (Char.code (Bytes.get p1 i) lxor Char.code (Bytes.get iv i))) in
  let c1 = Bytes.create 16 in
  Tdb_crypto.Aes.encrypt_block key ~src:x ~src_off:0 ~dst:c1 ~dst_off:0;
  Alcotest.(check string) "nist cbc block" "7649abac8119b246cee98e9b12e9197d" (Hex.of_bytes c1)

(* --- DRBG --- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  Alcotest.(check string) "same seed" (hex (Drbg.generate a 64)) (hex (Drbg.generate b 64));
  let c = Drbg.create ~seed:"t" in
  Alcotest.(check bool) "different seed" true (Drbg.generate c 64 <> Drbg.generate b 64)

let test_drbg_split_independent () =
  let a = Drbg.create ~seed:"s" in
  let a1 = Drbg.split a "one" in
  let a2 = Drbg.split a "one" in
  Alcotest.(check bool) "split advances parent" true (Drbg.generate a1 32 <> Drbg.generate a2 32)

let test_drbg_int_bounds =
  QCheck.Test.make ~name:"drbg int in bounds" ~count:200
    QCheck.(int_range 1 1000)
    (fun bound ->
      let d = Drbg.create ~seed:(string_of_int bound) in
      let v = Drbg.int d bound in
      v >= 0 && v < bound)

(* --- constant-time compare & hex --- *)

let test_ct_equal () =
  Alcotest.(check bool) "equal" true (Ct.equal_string "abc" "abc");
  Alcotest.(check bool) "differ" false (Ct.equal_string "abc" "abd");
  Alcotest.(check bool) "length" false (Ct.equal_string "abc" "ab");
  Alcotest.(check bool) "empty" true (Ct.equal_string "" "")

let test_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hex.to_string (Hex.of_string s) = s)

let test_hex_reject () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.to_string: odd length") (fun () ->
      ignore (Hex.to_string "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.nibble: not a hex digit") (fun () ->
      ignore (Hex.to_string "zz"))

let qsuite = List.map QCheck_alcotest.to_alcotest [ test_cbc_roundtrip_qcheck; test_drbg_int_bounds; test_hex_roundtrip ]

let () =
  Alcotest.run "tdb_crypto"
    [
      ( "sha1",
        [
          Alcotest.test_case "fips vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "incremental" `Quick test_sha1_incremental;
          Alcotest.test_case "get nondestructive" `Quick test_sha1_get_nondestructive;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "fips vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "hmac-sha1 rfc2202" `Quick test_hmac_sha1;
          Alcotest.test_case "hmac-sha256 rfc4231" `Quick test_hmac_sha256;
          Alcotest.test_case "incremental" `Quick test_hmac_incremental;
        ] );
      ( "aes",
        [
          Alcotest.test_case "fips-197 vector" `Quick test_aes_fips_vector;
          Alcotest.test_case "roundtrips" `Quick test_aes_sbox_structure;
        ] );
      ( "xtea", [ Alcotest.test_case "roundtrip" `Quick test_xtea_roundtrip ] );
      ( "triple", [ Alcotest.test_case "ede roundtrip + degenerate" `Quick test_triple_roundtrip ] );
      ( "cbc",
        [
          Alcotest.test_case "tamper changes plaintext" `Quick test_cbc_tamper_detected_by_padding_or_content;
          Alcotest.test_case "sizes" `Quick test_cbc_empty_and_block_aligned;
          Alcotest.test_case "bad input" `Quick test_cbc_bad_input;
          Alcotest.test_case "nist sp800-38a vector" `Quick test_cbc_nist_vector;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "split" `Quick test_drbg_split_independent;
        ] );
      ("misc", [ Alcotest.test_case "ct equal" `Quick test_ct_equal; Alcotest.test_case "hex reject" `Quick test_hex_reject ]);
      ("qcheck", qsuite);
    ]
