(* Direct unit tests for internal modules that the integration suites only
   exercise indirectly: location map, log, anchor, security context, cache,
   lock manager, index structures, disk model, workload encodings. *)

open Tdb_platform
open Tdb_chunk

let test_cfg =
  { Config.default with Config.segment_size = 4096; initial_segments = 8; anchor_slot_size = 2048;
    checkpoint_every = 1000; checkpoint_residual_bytes = 4 * 4096; clean_batch = 2 }

let sec_on () = Security.create test_cfg (Secret_store.of_seed "units")
let sec_off () = Security.create { test_cfg with Config.security = false } (Secret_store.of_seed "units")

(* ------------------------------------------------------------------ *)
(* Security context                                                    *)
(* ------------------------------------------------------------------ *)

let test_security_seal_roundtrip () =
  let sec = sec_on () in
  let plain = "the plaintext" in
  let sealed = Security.seal sec plain in
  Alcotest.(check bool) "actually encrypted" true (sealed <> plain);
  Alcotest.(check string) "roundtrip" plain (Security.unseal sec sealed);
  (* two seals of the same plaintext differ (fresh IVs) *)
  Alcotest.(check bool) "iv freshness" true (Security.seal sec plain <> sealed)

let test_security_label_and_mac () =
  let sec = sec_on () in
  let l = Security.label sec "data" in
  Alcotest.(check int) "sha1 label" 20 (String.length l);
  Security.check_label sec ~expected:l "data" ~what:"x";
  Alcotest.(check bool) "bad label raises" true
    (match Security.check_label sec ~expected:l "datb" ~what:"x" with
    | exception Types.Tamper_detected _ -> true
    | () -> false);
  Alcotest.(check bool) "mac verifies" true (Security.check_mac sec ~expected:(Security.mac sec "m") "m" ~what:"x");
  Alcotest.(check bool) "mac rejects" false (Security.check_mac sec ~expected:(Security.mac sec "m") "n" ~what:"x")

let test_security_disabled_is_transparent () =
  let sec = sec_off () in
  Alcotest.(check string) "no encryption" "abc" (Security.seal sec "abc");
  Alcotest.(check string) "no label" "" (Security.label sec "abc");
  Security.check_label sec ~expected:"" "anything" ~what:"x";
  Alcotest.(check int) "no seal overhead" 0 (Security.seal_overhead sec 100)

(* ------------------------------------------------------------------ *)
(* Location map                                                        *)
(* ------------------------------------------------------------------ *)

(* a fake store for map nodes: payloads held in a table, entries index it *)
let fake_fetch (tbl : (int, string) Hashtbl.t) : Location_map.fetch =
 fun ~what:_ (e : Types.entry) -> Hashtbl.find tbl e.Types.off

let fake_writer (tbl : (int, string) Hashtbl.t) =
  let next = ref 0 in
  fun payload ->
    incr next;
    Hashtbl.replace tbl !next payload;
    { Types.seg = 0; off = !next; len = String.length payload; hash = ""; version = 0 }

let entry_for i = { Types.seg = 1; off = 1000 + i; len = 10; hash = ""; version = i }

let test_map_set_find_remove () =
  let tbl = Hashtbl.create 16 in
  let fetch = fake_fetch tbl in
  let m = Location_map.create ~fanout:4 ~depth:3 (* 64 ids *) in
  Alcotest.(check bool) "empty" true (Location_map.find m fetch 5 = None);
  for i = 0 to 63 do
    ignore (Location_map.set m fetch i (entry_for i))
  done;
  for i = 0 to 63 do
    match Location_map.find m fetch i with
    | Some e -> Alcotest.(check int) "found" i e.Types.version
    | None -> Alcotest.failf "missing %d" i
  done;
  let old, _ = Location_map.remove m fetch 7 in
  Alcotest.(check bool) "removed returns old" true (old <> None);
  Alcotest.(check bool) "gone" true (Location_map.find m fetch 7 = None);
  Alcotest.(check bool) "id out of range" true
    (match Location_map.find m fetch 64 with exception Invalid_argument _ -> true | _ -> false)

let test_map_checkpoint_and_reload () =
  let tbl = Hashtbl.create 16 in
  let fetch = fake_fetch tbl in
  let write_node = fake_writer tbl in
  let m = Location_map.create ~fanout:4 ~depth:3 in
  for i = 0 to 20 do
    ignore (Location_map.set m fetch i (entry_for i))
  done;
  let root = Location_map.checkpoint m ~write_node ~obsolete:(fun _ -> ()) in
  Alcotest.(check bool) "root written" true (root <> None);
  Alcotest.(check bool) "clean root exposed" true (Location_map.root_entry m <> None);
  (* reload the tree fresh from the fake store *)
  let m2 = Location_map.create ~fanout:4 ~depth:3 in
  let root_e = Option.get root in
  let root_node = Location_map.node_of_payload ~fanout:4 (fetch ~what:"r" root_e) in
  root_node.Location_map.disk <- Some root_e;
  m2.Location_map.root <- root_node;
  for i = 0 to 20 do
    match Location_map.find m2 fetch i with
    | Some e -> Alcotest.(check int) "reloaded" i e.Types.version
    | None -> Alcotest.failf "missing %d after reload" i
  done;
  (* incremental checkpoint: only dirty paths are rewritten *)
  let writes = ref 0 in
  let counting_writer payload =
    incr writes;
    write_node payload
  in
  ignore (Location_map.set m fetch 3 (entry_for 99));
  ignore (Location_map.checkpoint m ~write_node:counting_writer ~obsolete:(fun _ -> ()));
  Alcotest.(check bool) "only the dirty path rewritten" true (!writes <= 3)

let test_map_count_dirty () =
  let tbl = Hashtbl.create 16 in
  let fetch = fake_fetch tbl in
  let m = Location_map.create ~fanout:4 ~depth:3 in
  Alcotest.(check int) "fresh root is dirty" 1 (Location_map.count_dirty m);
  ignore (Location_map.set m fetch 0 (entry_for 0));
  Alcotest.(check bool) "dirty path counted" true (Location_map.count_dirty m >= 2);
  ignore (Location_map.checkpoint m ~write_node:(fake_writer tbl) ~obsolete:(fun _ -> ()));
  Alcotest.(check int) "clean after checkpoint" 0 (Location_map.count_dirty m)

let test_map_diff_trees () =
  let tbl = Hashtbl.create 16 in
  let fetch = fake_fetch tbl in
  let write_node = fake_writer tbl in
  let m = Location_map.create ~fanout:4 ~depth:3 in
  for i = 0 to 10 do
    ignore (Location_map.set m fetch i (entry_for i))
  done;
  let r1 = Location_map.checkpoint m ~write_node ~obsolete:(fun _ -> ()) in
  ignore (Location_map.set m fetch 3 (entry_for 333));
  ignore (Location_map.remove m fetch 9);
  ignore (Location_map.set m fetch 40 (entry_for 40));
  let r2 = Location_map.checkpoint m ~write_node ~obsolete:(fun _ -> ()) in
  let changed = ref [] and removed = ref [] in
  Location_map.diff_trees ~fanout:4 fetch ~old_root:r1 ~new_root:r2
    ~changed:(fun cid e -> changed := (cid, e.Types.version) :: !changed)
    ~removed:(fun cid -> removed := cid :: !removed);
  Alcotest.(check (list (pair int int))) "changed" [ (3, 333); (40, 40) ] (List.sort compare !changed);
  Alcotest.(check (list int)) "removed" [ 9 ] !removed

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_append_and_scan () =
  let _, store = Untrusted_store.open_mem () in
  let log = Log.create store test_cfg in
  let recs = List.init 20 (fun i -> String.make (50 + (i * 13 mod 200)) (Char.chr (65 + i))) in
  let positions = List.map (fun r -> Log.append log Types.Data_chunk r) recs in
  (* read back by position *)
  List.iter2
    (fun r (seg, off) ->
      Alcotest.(check string) "payload" r
        (Log.read_payload log { Types.seg; off; len = String.length r; hash = ""; version = 0 }))
    recs positions;
  (* segment scan parses the same records *)
  let scanned = Log.scan_segment log 0 in
  Alcotest.(check bool) "scan found records" true (List.length scanned > 0);
  List.iteri
    (fun i (kind, _, payload) ->
      Alcotest.(check bool) "kind" true (kind = Types.Data_chunk);
      Alcotest.(check string) "scan payload" (List.nth recs i) payload)
    scanned

let test_log_segment_chaining () =
  let _, store = Untrusted_store.open_mem () in
  let log = Log.create store test_cfg in
  (* write more than one segment's worth *)
  let big = String.make 1000 'x' in
  let n = 12 (* 12 KB > 1 segment *) in
  for _ = 1 to n do
    ignore (Log.append log Types.Data_chunk big)
  done;
  (* chain scan from the start sees all data records *)
  let count = ref 0 in
  Log.scan_chain log ~seg:0 ~off:0 ~f:(fun kind _ _ -> if kind = Types.Data_chunk then incr count);
  Alcotest.(check int) "all records via chain" n !count

let test_log_usage_and_barrier () =
  let _, store = Untrusted_store.open_mem () in
  let log = Log.create store test_cfg in
  let payload = String.make 500 'x' in
  let entries =
    List.init 14 (fun _ ->
        let seg, off = Log.append log Types.Data_chunk payload in
        { Types.seg; off; len = 500; hash = ""; version = 0 })
  in
  Alcotest.(check int) "usage counts everything" (14 * Log.record_space 500) (Log.live_bytes log);
  (* obsolete all the records that landed in segment 0 *)
  let seg0, rest = List.partition (fun e -> e.Types.seg = 0) entries in
  Alcotest.(check bool) "multiple segments used" true (rest <> []);
  List.iter (Log.obsolete_entry log) seg0;
  Log.end_checkpoint log;
  (* the emptied segment is no longer a cleaning candidate, and the live
     accounting matches the surviving records exactly *)
  Alcotest.(check bool) "segment 0 not a candidate" true (not (List.mem 0 (Log.clean_candidates log)));
  Alcotest.(check int) "usage tracks live" (List.length rest * Log.record_space 500) (Log.live_bytes log)

let test_log_clean_candidate_order () =
  let _, store = Untrusted_store.open_mem () in
  let log = Log.create store { test_cfg with Config.tiers = 1 } in
  let payload = String.make 500 'x' in
  let entries =
    List.init 28 (fun _ ->
        let seg, off = Log.append log Types.Data_chunk payload in
        { Types.seg; off; len = 500; hash = ""; version = 0 })
  in
  let tail, _ = Log.tail_pos log in
  Alcotest.(check bool) "several full segments" true (tail >= 3);
  let segs = List.init tail Fun.id in
  (* leave MORE live data in LOWER segments, so utilization order is the
     reverse of segment order: the single-tier cleaner must pick the
     emptiest segment first, not the lowest-numbered *)
  List.iter
    (fun s ->
      let in_seg = List.filter (fun e -> e.Types.seg = s) entries in
      let keep = tail - s in
      List.iteri (fun i e -> if i >= keep then Log.obsolete_entry log e) in_seg)
    segs;
  Log.end_checkpoint log;
  Alcotest.(check (list int)) "emptiest segment first" (List.rev segs) (Log.clean_candidates log)

let test_log_pinning () =
  let _, store = Untrusted_store.open_mem () in
  let log = Log.create store test_cfg in
  Log.pin log 3;
  Log.pin log 3;
  Alcotest.(check bool) "pinned" true (Log.is_pinned log 3);
  Log.unpin log 3;
  Alcotest.(check bool) "still pinned" true (Log.is_pinned log 3);
  Log.unpin log 3;
  Alcotest.(check bool) "unpinned" false (Log.is_pinned log 3);
  Alcotest.(check bool) "overunpin rejected" true
    (match Log.unpin log 3 with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Anchor                                                              *)
(* ------------------------------------------------------------------ *)

let anchor_payload epoch =
  {
    Anchor.epoch;
    segment_size = test_cfg.Config.segment_size;
    map_fanout = test_cfg.Config.map_fanout;
    map_depth = test_cfg.Config.map_depth;
    seq = 42;
    root = Some { Types.seg = 1; off = 2; len = 3; hash = "h"; version = 4 };
    tail_seg = 5;
    tail_off = 6;
    counter = 7L;
    next_id = 8;
    chain = "chainvalue";
    snapshots = [ (1, Some { Types.seg = 9; off = 10; len = 11; hash = "s"; version = 12 }, 13) ];
    tiers = [ (3, 1); (4, 2) ];
  }

let test_anchor_roundtrip_and_epoch () =
  let sec = sec_on () in
  let _, store = Untrusted_store.open_mem () in
  Untrusted_store.set_size store (2 * 2048);
  Anchor.write sec store ~slot_size:2048 (anchor_payload 1);
  Anchor.write sec store ~slot_size:2048 (anchor_payload 2);
  (match Anchor.read sec store ~slot_size:2048 with
  | Some p ->
      Alcotest.(check int) "newest epoch wins" 2 p.Anchor.epoch;
      Alcotest.(check int) "payload intact" 42 p.Anchor.seq;
      Alcotest.(check int64) "counter" 7L p.Anchor.counter
  | None -> Alcotest.fail "no anchor");
  (* torn write of the newest slot: the older one still loads *)
  Untrusted_store.write store ~off:0 (String.make 64 '\xff');
  (match Anchor.read sec store ~slot_size:2048 with
  | Some p -> Alcotest.(check int) "fallback to valid slot" 1 (p.Anchor.epoch land 1)
  | None -> Alcotest.fail "anchor lost after single-slot corruption")

let test_anchor_seed_format_identity () =
  (* A single-tier anchor (empty tier table) must encode byte-identically
     to the pre-tier seed format — here rebuilt by hand, field by field —
     and seed-format bytes must decode to an empty tier table. *)
  let p = { (anchor_payload 1) with Anchor.tiers = [] } in
  let seed_bytes =
    let module P = Tdb_pickle.Pickle in
    let w = P.writer () in
    P.uint w p.Anchor.epoch;
    P.uint w p.Anchor.segment_size;
    P.uint w p.Anchor.map_fanout;
    P.uint w p.Anchor.map_depth;
    P.uint w p.Anchor.seq;
    P.option w (fun w e -> Location_map.write_entry w e) p.Anchor.root;
    P.uint w p.Anchor.tail_seg;
    P.uint w p.Anchor.tail_off;
    P.int64 w p.Anchor.counter;
    P.uint w p.Anchor.next_id;
    P.string w p.Anchor.chain;
    P.list w
      (fun w (id, e, seq) ->
        P.uint w id;
        P.option w (fun w e -> Location_map.write_entry w e) e;
        P.uint w seq)
      p.Anchor.snapshots;
    P.contents w
  in
  Alcotest.(check string) "single-tier anchor = seed bytes" seed_bytes (Anchor.encode p);
  let d = Anchor.decode seed_bytes in
  Alcotest.(check bool) "seed bytes decode to an empty tier table" true (d.Anchor.tiers = []);
  Alcotest.(check int) "seed bytes decode intact" p.Anchor.seq d.Anchor.seq

let test_anchor_wrong_key_rejected () =
  let sec = sec_on () in
  let _, store = Untrusted_store.open_mem () in
  Untrusted_store.set_size store (2 * 2048);
  Anchor.write sec store ~slot_size:2048 (anchor_payload 1);
  let other = Security.create test_cfg (Secret_store.of_seed "attacker") in
  Alcotest.(check bool) "foreign key sees no anchor" true (Anchor.read other store ~slot_size:2048 = None)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

type blob = { v : int }

let blob_cls : blob Tdb_objstore.Obj_class.t =
  Tdb_objstore.Obj_class.define ~name:"units.blob"
    ~pickle:(fun w b -> Tdb_pickle.Pickle.int w b.v)
    ~unpickle:(fun ~version:_ r -> { v = Tdb_pickle.Pickle.read_int r })
    ()

let dummy_value i = Tdb_objstore.Obj_class.Value (blob_cls, { v = i })

let test_cache_lru_eviction () =
  let open Tdb_objstore in
  let c = Cache.create ~budget:1000 in
  for i = 0 to 9 do
    ignore (Cache.put c i (dummy_value i) ~size:200)
  done;
  (* only ~5 fit; the oldest were evicted *)
  Alcotest.(check bool) "bounded" true (Cache.resident c <= 5);
  Alcotest.(check bool) "newest present" true (Cache.find c 9 <> None);
  Alcotest.(check bool) "oldest evicted" true (Cache.find c 0 = None)

let test_cache_pin_blocks_eviction () =
  let open Tdb_objstore in
  let c = Cache.create ~budget:400 in
  let e0 = Cache.put c 0 (dummy_value 0) ~size:200 in
  Cache.pin e0;
  for i = 1 to 9 do
    ignore (Cache.put c i (dummy_value i) ~size:200)
  done;
  Alcotest.(check bool) "pinned survives" true (Cache.find c 0 <> None);
  Cache.unpin c e0;
  for i = 10 to 14 do
    ignore (Cache.put c i (dummy_value i) ~size:200)
  done;
  Alcotest.(check bool) "evictable once unpinned" true (Cache.find c 0 = None)

let test_cache_touch_refreshes () =
  let open Tdb_objstore in
  let c = Cache.create ~budget:600 in
  for i = 0 to 2 do
    ignore (Cache.put c i (dummy_value i) ~size:200)
  done;
  ignore (Cache.find c 0);
  (* 0 is now MRU *)
  ignore (Cache.put c 3 (dummy_value 3) ~size:200);
  Alcotest.(check bool) "refreshed entry kept" true (Cache.find c 0 <> None);
  Alcotest.(check bool) "true LRU evicted" true (Cache.find c 1 = None)

(* ------------------------------------------------------------------ *)
(* Lock manager                                                        *)
(* ------------------------------------------------------------------ *)

let test_locks_shared_compatible () =
  let open Tdb_objstore in
  let lm = Lock_manager.create () in
  let mu = Mutex.create () in
  Mutex.lock mu;
  Lock_manager.acquire lm ~mu ~txn:1 ~oid:7 ~mode:Lock_manager.Shared ~timeout:0.05;
  Lock_manager.acquire lm ~mu ~txn:2 ~oid:7 ~mode:Lock_manager.Shared ~timeout:0.05;
  Alcotest.(check bool) "both shared" true (Lock_manager.mode_of lm ~txn:2 ~oid:7 = Some Lock_manager.Shared);
  (* exclusive blocked while the other holder exists *)
  Alcotest.(check bool) "upgrade blocked" true
    (match Lock_manager.acquire lm ~mu ~txn:1 ~oid:7 ~mode:Lock_manager.Exclusive ~timeout:0.05 with
    | exception Lock_manager.Lock_timeout _ -> true
    | () -> false);
  Lock_manager.release_all lm ~txn:2;
  (* now the upgrade succeeds *)
  Lock_manager.acquire lm ~mu ~txn:1 ~oid:7 ~mode:Lock_manager.Exclusive ~timeout:0.05;
  Alcotest.(check bool) "upgraded" true (Lock_manager.mode_of lm ~txn:1 ~oid:7 = Some Lock_manager.Exclusive);
  Lock_manager.release_all lm ~txn:1;
  Alcotest.(check int) "table empty" 0 (Lock_manager.held_count lm);
  Mutex.unlock mu

let test_locks_reentrant () =
  let open Tdb_objstore in
  let lm = Lock_manager.create () in
  let mu = Mutex.create () in
  Mutex.lock mu;
  Lock_manager.acquire lm ~mu ~txn:1 ~oid:1 ~mode:Lock_manager.Exclusive ~timeout:0.05;
  Lock_manager.acquire lm ~mu ~txn:1 ~oid:1 ~mode:Lock_manager.Exclusive ~timeout:0.05;
  Lock_manager.acquire lm ~mu ~txn:1 ~oid:1 ~mode:Lock_manager.Shared ~timeout:0.05;
  Alcotest.(check bool) "still exclusive" true (Lock_manager.mode_of lm ~txn:1 ~oid:1 = Some Lock_manager.Exclusive);
  Mutex.unlock mu

(* ------------------------------------------------------------------ *)
(* Index structures (directly, over an object store)                   *)
(* ------------------------------------------------------------------ *)

let fresh_os () =
  let _, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  Tdb_objstore.Object_store.of_chunk_store
    (Chunk_store.create ~config:test_cfg ~secret:(Secret_store.of_seed "ix") ~counter:ctr store)

let test_btree_index_ordering () =
  let open Tdb_collection in
  let os = fresh_os () in
  let x = Tdb_objstore.Object_store.begin_ os in
  let anchor = Index.create_anchor x Indexer.Btree in
  let ops = Index.ops_of ~index_name:"t" ~unique:false ~impl:Indexer.Btree Gkey.int in
  (* insert shuffled keys, some duplicated *)
  let n = 200 in
  for i = 0 to n - 1 do
    let k = i * 37 mod n in
    Index.insert x ops anchor ~key:(Gkey.to_bytes Gkey.int k) ~oid:(1000 + i)
  done;
  Alcotest.(check int) "count" n (Index.count x anchor);
  let all = Index.scan x ops anchor in
  Alcotest.(check int) "scan count" n (List.length all);
  (* range [50,59] *)
  let r =
    Index.range x ops anchor ~min:(Some (Gkey.to_bytes Gkey.int 50)) ~max:(Some (Gkey.to_bytes Gkey.int 59))
  in
  Alcotest.(check int) "range" 10 (List.length r);
  (* delete one (key, oid) pair and re-check *)
  let victim_oid = List.hd (Index.exact x ops anchor ~key:(Gkey.to_bytes Gkey.int 55)) in
  Index.delete x ops anchor ~key:(Gkey.to_bytes Gkey.int 55) ~oid:victim_oid;
  Alcotest.(check int) "one fewer" (n - 1) (Index.count x anchor);
  Alcotest.(check bool) "specific pair gone" true
    (not (List.mem victim_oid (Index.exact x ops anchor ~key:(Gkey.to_bytes Gkey.int 55))));
  Tdb_objstore.Object_store.commit x

let test_hash_index_growth () =
  let open Tdb_collection in
  let os = fresh_os () in
  let x = Tdb_objstore.Object_store.begin_ os in
  let anchor = Index.create_anchor x Indexer.Hash in
  let ops = Index.ops_of ~index_name:"h" ~unique:true ~impl:Indexer.Hash Gkey.int in
  let n = 500 (* forces many bucket splits and directory-segment growth *) in
  for i = 0 to n - 1 do
    Index.insert x ops anchor ~key:(Gkey.to_bytes Gkey.int i) ~oid:(5000 + i)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check (list int)) "exact" [ 5000 + i ] (Index.exact x ops anchor ~key:(Gkey.to_bytes Gkey.int i))
  done;
  Alcotest.(check bool) "dup rejected" true
    (match Index.insert x ops anchor ~key:(Gkey.to_bytes Gkey.int 3) ~oid:9 with
    | exception Index.Duplicate_key _ -> true
    | () -> false);
  Alcotest.(check int) "scan" n (List.length (Index.scan x ops anchor));
  Tdb_objstore.Object_store.commit x

let test_list_index_order_preserved () =
  let open Tdb_collection in
  let os = fresh_os () in
  let x = Tdb_objstore.Object_store.begin_ os in
  let anchor = Index.create_anchor x Indexer.List in
  let ops = Index.ops_of ~index_name:"l" ~unique:false ~impl:Indexer.List Gkey.int in
  for i = 0 to 199 do
    Index.insert x ops anchor ~key:(Gkey.to_bytes Gkey.int i) ~oid:(100 + i)
  done;
  let all = Index.scan x ops anchor in
  Alcotest.(check int) "count" 200 (List.length all);
  Alcotest.(check (list int)) "insertion order" (List.init 200 (fun i -> 100 + i)) all;
  Tdb_objstore.Object_store.commit x

(* ------------------------------------------------------------------ *)
(* Sim disk & workload                                                 *)
(* ------------------------------------------------------------------ *)

let test_sim_disk_charges () =
  let open Tdb_tpcb in
  let clock = Sim_disk.clock () in
  let m = Sim_disk.paper_platform in
  let _, raw = Untrusted_store.open_mem () in
  let s = Sim_disk.wrap_store m clock raw in
  Untrusted_store.write s ~off:0 (String.make 100 'x');
  let after_first = clock.Sim_disk.elapsed in
  Alcotest.(check bool) "first write pays positioning" true (after_first >= m.Sim_disk.position_s);
  Untrusted_store.write s ~off:100 (String.make 100 'x');
  Alcotest.(check bool) "sequential write is cheap" true
    (clock.Sim_disk.elapsed -. after_first < m.Sim_disk.position_s /. 2.);
  let before_sync = clock.Sim_disk.elapsed in
  Untrusted_store.sync s;
  Alcotest.(check bool) "sync with pending pays force" true
    (clock.Sim_disk.elapsed -. before_sync >= m.Sim_disk.force_s);
  let before = clock.Sim_disk.elapsed in
  Untrusted_store.sync s;
  Alcotest.(check bool) "idle sync free" true (clock.Sim_disk.elapsed = before)

let test_workload_flat_roundtrip () =
  let open Tdb_tpcb in
  let r = Workload.make_record ~id:77 ~balance:(-12345) in
  let flat = Workload.flat_of_record r in
  Alcotest.(check int) "100 bytes" Workload.record_size (String.length flat);
  let r' = Workload.record_of_flat flat in
  Alcotest.(check int) "id" 77 r'.Workload.id;
  Alcotest.(check int) "negative balance" (-12345) r'.Workload.balance

let test_workload_record_pickled_size () =
  let open Tdb_tpcb in
  let w = Tdb_pickle.Pickle.writer () in
  Workload.pickle_record w (Workload.make_record ~id:1 ~balance:0);
  Alcotest.(check int) "pickled record is 100 bytes" Workload.record_size
    (Tdb_pickle.Pickle.writer_length w)

let test_workload_txn_gen_in_bounds () =
  let open Tdb_tpcb in
  let rng = Tdb_crypto.Drbg.create ~seed:"wl" in
  let s = Workload.default_scale in
  for _ = 1 to 500 do
    let t = Workload.gen_txn rng s in
    assert (t.Workload.account >= 0 && t.Workload.account < s.Workload.accounts);
    assert (t.Workload.teller >= 0 && t.Workload.teller < s.Workload.tellers);
    assert (t.Workload.branch >= 0 && t.Workload.branch < s.Workload.branches);
    assert (abs t.Workload.delta <= 999_999)
  done

(* ------------------------------------------------------------------ *)
(* Baseline page serialization                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_page_roundtrip =
  QCheck.Test.make ~name:"page node roundtrip" ~count:100
    QCheck.(
      pair bool (small_list (pair (string_of_size Gen.(1 -- 20)) (string_of_size Gen.(0 -- 60)))))
    (fun (leaf, items) ->
      let open Tdb_baseline in
      let node =
        if leaf then Page.Leaf { items = List.sort compare items; next = 7 }
        else
          Page.Internal
            { keys = List.map fst items; kids = List.init (List.length items + 1) (fun i -> i + 1) }
      in
      QCheck.assume (Page.estimate node <= Page.content_budget);
      let s = Page.serialize node in
      String.length s = Page.page_size
      &&
      match (node, Page.deserialize s) with
      | Page.Leaf { items = i1; next = n1 }, Page.Leaf { items = i2; next = n2 } -> i1 = i2 && n1 = n2
      | Page.Internal { keys = k1; kids = c1 }, Page.Internal { keys = k2; kids = c2 } -> k1 = k2 && c1 = c2
      | _ -> false)

let qcheck_pickle_array =
  QCheck.Test.make ~name:"pickle array roundtrip" ~count:100
    QCheck.(array small_int)
    (fun a ->
      let w = Tdb_pickle.Pickle.writer () in
      Tdb_pickle.Pickle.array w Tdb_pickle.Pickle.int a;
      let r = Tdb_pickle.Pickle.reader (Tdb_pickle.Pickle.contents w) in
      let l = Tdb_pickle.Pickle.read_list r Tdb_pickle.Pickle.read_int in
      Tdb_pickle.Pickle.at_end r && l = Array.to_list a)

(* ------------------------------------------------------------------ *)
(* Concurrency torture: threads over collections with locking on       *)
(* ------------------------------------------------------------------ *)

let test_concurrent_collection_torture () =
  let _, store = Untrusted_store.open_mem () in
  let _, ctr = One_way_counter.open_mem () in
  let os =
    Tdb_objstore.Object_store.of_chunk_store
      ~config:{ Tdb_objstore.Object_store.default_config with Tdb_objstore.Object_store.lock_timeout = 0.2 }
      (Chunk_store.create ~config:test_cfg ~secret:(Secret_store.of_seed "torture") ~counter:ctr store)
  in
  let open Tdb_collection in
  let ix = Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (b : blob) -> b.v mod 100) ~impl:Indexer.Btree () in
  Cstore.with_ctxn os (fun ct ->
      let c = Cstore.create_collection ct ~name:"torture" ~schema:blob_cls ix in
      for i = 0 to 19 do
        ignore (Cstore.insert ct c { v = i })
      done);
  let errors = ref 0 and emu = Mutex.create () in
  let worker tid =
    for _ = 1 to 25 do
      let rec attempt retries =
        if retries > 0 then
          match
            Cstore.with_ctxn ~durable:false os (fun ct ->
                let c = Cstore.open_collection ct ~name:"torture" ~schema:blob_cls ~indexers:[ Indexer.Generic ix ] in
                ignore (Cstore.insert ct c { v = (tid * 1000) + retries + 100 }))
          with
          | () -> ()
          | exception Tdb_objstore.Lock_manager.Lock_timeout _ -> attempt (retries - 1)
      in
      attempt 20
    done
  in
  let threads = List.init 4 (fun tid -> Thread.create worker tid) in
  List.iter Thread.join threads;
  ignore (Mutex.try_lock emu);
  Alcotest.(check int) "no unexpected errors" 0 !errors;
  (* everything readable and the index consistent *)
  Cstore.with_ctxn os (fun ct ->
      let c = Cstore.open_collection ct ~name:"torture" ~schema:blob_cls ~indexers:[ Indexer.Generic ix ] in
      let it = Cstore.scan ct c ix in
      let n = ref 0 in
      while not (Cstore.at_end it) do
        ignore (Cstore.read it);
        incr n;
        Cstore.advance it
      done;
      Cstore.close it;
      Alcotest.(check int) "all inserts present" (20 + (4 * 25)) !n;
      Alcotest.(check int) "size agrees" !n (Cstore.size ct c))

(* ------------------------------------------------------------------ *)
(* QCheck model tests for the index structures                         *)
(* ------------------------------------------------------------------ *)

let index_model_test impl name =
  QCheck.Test.make ~name ~count:20
    QCheck.(list (triple (int_range 0 40) (int_range 0 5) bool))
    (fun ops ->
      let open Tdb_collection in
      let os = fresh_os () in
      let x = Tdb_objstore.Object_store.begin_ os in
      let anchor = Index.create_anchor x impl in
      let iops = Index.ops_of ~index_name:"m" ~unique:false ~impl Gkey.int in
      (* model: multiset of (key, oid) pairs *)
      let model : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (k, salt, is_insert) ->
          let oid = (k * 10) + salt in
          let kb = Gkey.to_bytes Gkey.int k in
          if is_insert then begin
            if not (Hashtbl.mem model (k, oid)) then begin
              Index.insert x iops anchor ~key:kb ~oid;
              Hashtbl.replace model (k, oid) ()
            end
          end
          else if Hashtbl.mem model (k, oid) then begin
            Index.delete x iops anchor ~key:kb ~oid;
            Hashtbl.remove model (k, oid)
          end)
        ops;
      (* exact queries agree with the model for every key *)
      let ok = ref (Index.count x anchor = Hashtbl.length model) in
      for k = 0 to 40 do
        let expect =
          Hashtbl.fold (fun (k', o) () acc -> if k' = k then o :: acc else acc) model []
          |> List.sort compare
        in
        let got = Index.exact x iops anchor ~key:(Gkey.to_bytes Gkey.int k) |> List.sort compare in
        if expect <> got then ok := false
      done;
      (* scan covers exactly the model *)
      let scanned = Index.scan x iops anchor |> List.sort compare in
      let all = Hashtbl.fold (fun (_, o) () acc -> o :: acc) model [] |> List.sort compare in
      Tdb_objstore.Object_store.commit x;
      !ok && scanned = all)

let qcheck_btree_model = index_model_test Tdb_collection.Indexer.Btree "btree matches model"
let qcheck_hash_model = index_model_test Tdb_collection.Indexer.Hash "hash matches model"
let qcheck_list_model = index_model_test Tdb_collection.Indexer.List "list matches model"

let () =
  Alcotest.run "tdb_units"
    [
      ( "security",
        [
          Alcotest.test_case "seal roundtrip" `Quick test_security_seal_roundtrip;
          Alcotest.test_case "label + mac" `Quick test_security_label_and_mac;
          Alcotest.test_case "disabled transparent" `Quick test_security_disabled_is_transparent;
        ] );
      ( "location-map",
        [
          Alcotest.test_case "set/find/remove" `Quick test_map_set_find_remove;
          Alcotest.test_case "checkpoint + reload" `Quick test_map_checkpoint_and_reload;
          Alcotest.test_case "count dirty" `Quick test_map_count_dirty;
          Alcotest.test_case "diff trees" `Quick test_map_diff_trees;
        ] );
      ( "log",
        [
          Alcotest.test_case "append/scan" `Quick test_log_append_and_scan;
          Alcotest.test_case "segment chaining" `Quick test_log_segment_chaining;
          Alcotest.test_case "usage + barrier" `Quick test_log_usage_and_barrier;
          Alcotest.test_case "clean candidate order" `Quick test_log_clean_candidate_order;
          Alcotest.test_case "pinning" `Quick test_log_pinning;
        ] );
      ( "anchor",
        [
          Alcotest.test_case "roundtrip + epochs" `Quick test_anchor_roundtrip_and_epoch;
          Alcotest.test_case "seed format identity" `Quick test_anchor_seed_format_identity;
          Alcotest.test_case "wrong key" `Quick test_anchor_wrong_key_rejected;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "pinning" `Quick test_cache_pin_blocks_eviction;
          Alcotest.test_case "touch refreshes" `Quick test_cache_touch_refreshes;
        ] );
      ( "locks",
        [
          Alcotest.test_case "shared/exclusive" `Quick test_locks_shared_compatible;
          Alcotest.test_case "reentrant" `Quick test_locks_reentrant;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "btree ordering" `Quick test_btree_index_ordering;
          Alcotest.test_case "hash growth" `Quick test_hash_index_growth;
          Alcotest.test_case "list order" `Quick test_list_index_order_preserved;
        ] );
      ( "baseline-page",
        [
          QCheck_alcotest.to_alcotest qcheck_page_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_pickle_array;
        ] );
      ( "torture",
        [ Alcotest.test_case "threads over collections" `Slow test_concurrent_collection_torture ] );
      ( "index-models",
        List.map QCheck_alcotest.to_alcotest [ qcheck_btree_model; qcheck_hash_model; qcheck_list_model ] );
      ( "tpcb-support",
        [
          Alcotest.test_case "sim disk charges" `Quick test_sim_disk_charges;
          Alcotest.test_case "flat record roundtrip" `Quick test_workload_flat_roundtrip;
          Alcotest.test_case "pickled record size" `Quick test_workload_record_pickled_size;
          Alcotest.test_case "txn gen bounds" `Quick test_workload_txn_gen_in_bounds;
        ] );
    ]
