(* Replication tests: a primary serving its archive feed, a follower
   ingesting it — from-empty and stale-chain convergence, reconnection,
   torn and bit-flipped frames leaving the follower readable at its
   previous snapshot, read-only session semantics on the follower, and
   end-to-end content equality between primary and converged follower. *)

module B = Tdb_backup.Backup_store
module R = Tdb_replica.Replica

let chunk_cfg every =
  {
    Tdb.Chunk_config.default with
    Tdb.Chunk_config.segment_size = 8192;
    initial_segments = 8;
    checkpoint_every = 64;
    anchor_slot_size = 2048;
    replica_interval_commits = every;
  }

type item = { id : int; mutable qty : int; label : string }

let item_cls : item Tdb.Obj_class.t =
  Tdb.Obj_class.define ~name:"test.replica.item"
    ~pickle:(fun w (i : item) ->
      Tdb.Pickle.int w i.id;
      Tdb.Pickle.int w i.qty;
      Tdb.Pickle.string w i.label)
    ~unpickle:(fun ~version:_ r ->
      let id = Tdb.Pickle.read_int r in
      let qty = Tdb.Pickle.read_int r in
      let label = Tdb.Pickle.read_string r in
      { id; qty; label })
    ()

let item_ix () : (item, int) Tdb.Indexer.t =
  Tdb.Indexer.make ~name:"id" ~key:Tdb.Gkey.int ~extract:(fun (i : item) -> i.id) ~unique:true
    ~impl:Tdb.Indexer.Hash ()

(* Shared secret seed: primary and follower are the same *device* in the
   paper's sense, scaled out. *)
let device_seed = "replica-test-device"

let make_device () =
  let _, store = Tdb.Untrusted_store.open_mem () in
  let _, counter = Tdb.One_way_counter.open_mem () in
  let ah, archive = Tdb.Archival_store.open_mem () in
  ( ah,
    {
      Tdb.Device.store;
      secret = Tdb.Secret_store.of_seed device_seed;
      counter;
      archive;
      extra = [||];
    } )

let expose srv =
  Tdb.Server.expose_collection srv ~name:"item" ~schema:item_cls
    ~indexers:[ Tdb.Indexer.Generic (item_ix ()) ]
    ~mutations:[ ("bump", fun (i : item) rd -> i.qty <- i.qty + Tdb.Pickle.read_int rd) ]
    ()

type primary = { pdb : Tdb.t; psrv : Tdb.Server.t; paddr : Tdb.Server.addr; parchive : Tdb.Archival_store.Mem.handle }

let start_primary ?(every = 1) () : primary =
  let ah, device = make_device () in
  let pdb = Tdb.create ~config:(chunk_cfg every) device in
  let psrv = Tdb.Server.create ~backups:pdb.Tdb.backups pdb.Tdb.objects (Tdb.Server.Tcp ("127.0.0.1", 0)) in
  expose psrv;
  Tdb.Server.start psrv;
  { pdb; psrv; paddr = Tdb.Server.Tcp ("127.0.0.1", Tdb.Server.port psrv); parchive = ah }

type follower = { fdb : Tdb.t; fsrv : Tdb.Server.t; faddr : Tdb.Server.addr }

let start_follower () : follower =
  let _, device = make_device () in
  let fdb = Tdb.create device in
  let config = { Tdb.Server.default_config with Tdb.Server.read_only = true } in
  let fsrv = Tdb.Server.create ~config ~backups:fdb.Tdb.backups fdb.Tdb.objects (Tdb.Server.Tcp ("127.0.0.1", 0)) in
  expose fsrv;
  Tdb.Server.start fsrv;
  { fdb; fsrv; faddr = Tdb.Server.Tcp ("127.0.0.1", Tdb.Server.port fsrv) }

let with_primary ?every f =
  let p = start_primary ?every () in
  Fun.protect ~finally:(fun () -> Tdb.Server.stop p.psrv) (fun () -> f p)

let with_follower p f =
  let fo = start_follower () in
  let rep =
    R.start
      ~config:{ R.default_config with R.poll = 0.02 }
      ~os:fo.fdb.Tdb.objects ~backups:fo.fdb.Tdb.backups ~from:p.paddr ()
  in
  Fun.protect
    ~finally:(fun () ->
      R.stop rep;
      Tdb.Server.stop fo.fsrv)
    (fun () -> f fo rep)

let with_client addr f =
  let c = Tdb.Client.connect addr in
  Fun.protect ~finally:(fun () -> Tdb.Client.close c) (fun () -> f c)

let load_items c n =
  Tdb.Client.begin_ c;
  for id = 0 to n - 1 do
    ignore (Tdb.Client.coll_insert c ~coll:"item" item_cls { id; qty = id * 10; label = "it" })
  done;
  Tdb.Client.commit ~durable:true c

let bump c id delta =
  Tdb.Client.begin_ c;
  ignore
    (Tdb.Client.coll_mutate c ~coll:"item" ~index:"id" ~mutation:"bump" Tdb.Gkey.int id item_cls
       ~arg:(fun w -> Tdb.Pickle.int w delta));
  Tdb.Client.commit ~durable:true c

let read_qty c id =
  Tdb.Client.with_txn ~durable:false c (fun () ->
      match Tdb.Client.coll_find c ~coll:"item" ~index:"id" Tdb.Gkey.int id item_cls with
      | Some (_, i) -> Some i.qty
      | None -> None)

(* --- from-empty convergence, content equality, read-only sessions --- *)

let test_from_empty_and_read_only () =
  with_primary (fun p ->
      with_client p.paddr (fun cp ->
          load_items cp 20;
          bump cp 3 5;
          bump cp 7 7;
          with_follower p (fun fo rep ->
              Alcotest.(check bool) "converged" true (R.wait_converged ~timeout:30. rep);
              let st = R.status rep in
              Alcotest.(check bool) "frames applied" true (st.R.frames_applied > 0);
              Alcotest.(check int) "no rejects" 0 st.R.frames_rejected;
              with_client fo.faddr (fun cf ->
                  (* every object the primary has, at the same contents *)
                  for id = 0 to 19 do
                    Alcotest.(check (option int))
                      (Printf.sprintf "item %d equal" id)
                      (read_qty cp id) (read_qty cf id)
                  done;
                  (* writes are refused with the typed read_only error *)
                  Tdb.Client.begin_ cf;
                  (match
                     Tdb.Client.coll_insert cf ~coll:"item" item_cls { id = 99; qty = 0; label = "w" }
                   with
                  | _ -> Alcotest.fail "follower accepted an insert"
                  | exception Tdb.Client.Server_error { tag; _ } ->
                      Alcotest.(check string) "insert tag" "read_only" tag);
                  Tdb.Client.abort cf;
                  (* durable commits are refused too (they would advance the
                     follower's log independently of the feed) *)
                  Tdb.Client.begin_ cf;
                  (match Tdb.Client.commit ~durable:true cf with
                  | () -> Alcotest.fail "follower accepted a durable commit"
                  | exception Tdb.Client.Server_error { tag; _ } ->
                      Alcotest.(check string) "commit tag" "read_only" tag);
                  Tdb.Client.abort cf;
                  (* the chain position shows up in the follower's stats *)
                  let s = Tdb.Client.stats cf in
                  Alcotest.(check bool) "stats chain advanced" true (s.Tdb.Proto.s_backup_last_id > 0)))))

(* --- stale chain: follower restarts after the primary moved on --- *)

let test_stale_chain_and_reconnect () =
  with_primary (fun p ->
      with_client p.paddr (fun cp ->
          load_items cp 10;
          let fo = start_follower () in
          Fun.protect
            ~finally:(fun () -> Tdb.Server.stop fo.fsrv)
            (fun () ->
              let rep1 =
                R.start
                  ~config:{ R.default_config with R.poll = 0.02 }
                  ~os:fo.fdb.Tdb.objects ~backups:fo.fdb.Tdb.backups ~from:p.paddr ()
              in
              Alcotest.(check bool) "first convergence" true (R.wait_converged ~timeout:30. rep1);
              R.stop rep1;
              (* primary advances while the follower is down; include a
                 fresh full mid-chain so the restart exercises the in-place
                 re-bootstrap path as well as incremental catch-up *)
              bump cp 1 100;
              bump cp 2 200;
              Tdb.Object_store.with_store p.pdb.Tdb.objects (fun _ ->
                  ignore (Tdb.Backup_store.backup_full p.pdb.Tdb.backups));
              bump cp 3 300;
              let rep2 =
                R.start
                  ~config:{ R.default_config with R.poll = 0.02 }
                  ~os:fo.fdb.Tdb.objects ~backups:fo.fdb.Tdb.backups ~from:p.paddr ()
              in
              Fun.protect
                ~finally:(fun () -> R.stop rep2)
                (fun () ->
                  Alcotest.(check bool) "stale convergence" true (R.wait_converged ~timeout:30. rep2);
                  with_client fo.faddr (fun cf ->
                      Alcotest.(check (option int)) "bumped 1" (read_qty cp 1) (read_qty cf 1);
                      Alcotest.(check (option int)) "bumped 3" (read_qty cp 3) (read_qty cf 3))))))

(* --- torn / bit-flipped streams at the ingest layer --- *)

let archive_streams (db : Tdb.t) : (int * string) list =
  let archive = db.Tdb.device.Tdb.Device.archive in
  Tdb.Archival_store.list archive
  |> List.filter_map (fun name ->
         match B.parse_name name with
         | Some (id, _) -> (
             match Tdb.Archival_store.get archive ~name with Some s -> Some (id, s) | None -> None)
         | None -> None)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let flip s pos =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
  Bytes.to_string b

let ingest (fdb : Tdb.t) stream =
  Tdb.Object_store.ingest fdb.Tdb.objects (fun _ -> B.apply_stream fdb.Tdb.backups stream)

let follower_qty (fdb : Tdb.t) id =
  Tdb.with_ctxn ~durable:false fdb (fun ct ->
      let coll =
        Tdb.Cstore.open_collection ~indexers:[ Tdb.Indexer.Generic (item_ix ()) ] ct ~name:"item"
          ~schema:item_cls
      in
      let it = Tdb.Cstore.exact ct coll (item_ix ()) id in
      let r = if Tdb.Cstore.at_end it then None else Some (Tdb.Cstore.read it).qty in
      Tdb.Cstore.close it;
      r)

let test_tampered_and_torn_frames () =
  let _, pdev = make_device () in
  let pdb = Tdb.create pdev in
  Tdb.with_ctxn ~durable:true pdb (fun ct ->
      let coll = Tdb.Cstore.create_collection ct ~name:"item" ~schema:item_cls (item_ix ()) in
      for id = 0 to 9 do
        ignore (Tdb.Cstore.insert ct coll { id; qty = id; label = "t" })
      done);
  ignore (Tdb.backup_full pdb);
  Tdb.with_ctxn ~durable:true pdb (fun ct ->
      let coll =
        Tdb.Cstore.open_collection ~indexers:[ Tdb.Indexer.Generic (item_ix ()) ] ct ~name:"item"
          ~schema:item_cls
      in
      let it = Tdb.Cstore.exact ct coll (item_ix ()) 5 in
      let v = Tdb.Cstore.write it in
      v.qty <- 500;
      Tdb.Cstore.close it);
  ignore (Tdb.backup_incremental pdb);
  let streams = List.map snd (archive_streams pdb) in
  let full, incr = match streams with [ f; i ] -> (f, i) | _ -> Alcotest.fail "expected 2 streams" in
  let _, fdev = make_device () in
  let fdb = Tdb.create fdev in
  (match ingest fdb full with Some _ -> () | None -> Alcotest.fail "full refused");
  Alcotest.(check (option int)) "snapshot 1 visible" (Some 5) (follower_qty fdb 5);
  (* a bit-flipped incremental must be rejected with the store unchanged *)
  List.iter
    (fun pos ->
      match ingest fdb (flip incr pos) with
      | Some _ -> Alcotest.fail (Printf.sprintf "tampered frame (flip at %d) accepted" pos)
      | None -> Alcotest.fail "quiesce refused with no readers"
      | exception B.Invalid_backup _ -> ()
      | exception Tdb.Pickle.Error _ -> ())
    [ 2; 40; String.length incr - 3 ];
  (* a torn (truncated) incremental likewise *)
  List.iter
    (fun len ->
      match ingest fdb (String.sub incr 0 len) with
      | Some _ -> Alcotest.fail "torn frame accepted"
      | None -> Alcotest.fail "quiesce refused with no readers"
      | exception B.Invalid_backup _ -> ()
      | exception Tdb.Pickle.Error _ -> ())
    [ 0; 10; String.length incr / 2; String.length incr - 1 ];
  Alcotest.(check (option int)) "still at snapshot 1" (Some 5) (follower_qty fdb 5);
  Alcotest.(check int) "chain unmoved" 1 (B.chain_state fdb.Tdb.backups).B.last_id;
  (* the genuine frame still applies afterwards *)
  (match ingest fdb incr with Some _ -> () | None -> Alcotest.fail "genuine incr refused");
  Alcotest.(check (option int)) "snapshot 2 visible" (Some 500) (follower_qty fdb 5);
  Alcotest.(check int) "chain advanced" 2 (B.chain_state fdb.Tdb.backups).B.last_id

(* --- tampered frame on the wire: reject, stay readable, self-heal --- *)

let read_qty_follower fo id = follower_qty fo.fdb id

let test_wire_tamper_self_heal () =
  with_primary (fun p ->
      with_client p.paddr (fun cp ->
          load_items cp 8;
          bump cp 1 10;
          bump cp 2 20;
          (* corrupt the newest incremental in the primary's archive *)
          let names = archive_streams p.pdb in
          let last_id = List.fold_left (fun m (id, _) -> max m id) 0 names in
          Alcotest.(check bool) "several backups" true (last_id >= 3);
          let name = Printf.sprintf "tdb-%06d-incr" last_id in
          Tdb.Archival_store.Mem.corrupt p.parchive ~name ~pos:12 ~mask:0x40;
          with_follower p (fun fo rep ->
              (* the follower must reject the damaged frame and stay
                 readable at the boundary before it *)
              let deadline = Unix.gettimeofday () +. 30. in
              let rec wait_reject () =
                let st = R.status rep in
                if st.R.frames_rejected >= 1 then st
                else if Unix.gettimeofday () >= deadline then Alcotest.fail "no rejection observed"
                else begin
                  Thread.delay 0.01;
                  wait_reject ()
                end
              in
              let st = wait_reject () in
              Alcotest.(check int) "stalled just before damaged frame" (last_id - 1) st.R.applied_id;
              (* backup 2 (bump of item 1) is applied; backup 3 (bump of
                 item 2) is the damaged one, so item 2 still reads its
                 pre-bump value *)
              Alcotest.(check (option int)) "applied frame visible" (Some 20) (read_qty_follower fo 1);
              Alcotest.(check (option int)) "readable at previous snapshot" (Some 20)
                (read_qty_follower fo 2);
              (* heal the archive (XOR is its own inverse); the follower's
                 retry-from-chain-state resubscription then converges *)
              Tdb.Archival_store.Mem.corrupt p.parchive ~name ~pos:12 ~mask:0x40;
              Alcotest.(check bool) "healed convergence" true (R.wait_converged ~timeout:30. rep);
              Alcotest.(check (option int)) "bumped 1" (read_qty cp 1) (read_qty_follower fo 1);
              Alcotest.(check (option int)) "bumped 2" (read_qty cp 2) (read_qty_follower fo 2))))

let () =
  Alcotest.run "replica"
    [
      ( "replica",
        [
          Alcotest.test_case "from-empty convergence + read-only" `Quick test_from_empty_and_read_only;
          Alcotest.test_case "stale chain + reconnect" `Quick test_stale_chain_and_reconnect;
          Alcotest.test_case "tampered and torn frames" `Quick test_tampered_and_torn_frames;
          Alcotest.test_case "wire tamper self-heal" `Quick test_wire_tamper_self_heal;
        ] );
    ]
