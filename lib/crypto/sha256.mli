(** SHA-256 (FIPS 180-4), implemented from scratch; round constants are
    derived (fractional bits of cube roots of primes) rather than typed in,
    and the FIPS vectors pin correctness. TDB uses SHA-256 for HMACs (the
    anchor, the commit chain, backups). *)

include Hash.S
