(** Hexadecimal encoding/decoding, used by tests, tools and debug output. *)

let of_string (s : string) : string =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  let digit k = "0123456789abcdef".[k] in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) (digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.to_string out

let of_bytes (b : bytes) : string = of_string (Bytes.to_string b)

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.nibble: not a hex digit"

let to_string (s : string) : string =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.to_string: odd length";
  String.init (n / 2) (fun i -> Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let to_bytes (s : string) : bytes = Bytes.of_string (to_string s)
