(** CBC mode with PKCS#7 padding over any {!Block.CIPHER}. The chunk store
    prepends a fresh IV to every sealed payload; the padding reproduces the
    per-chunk storage overhead the paper measures for TDB-S. CBC does not
    authenticate — the Merkle tree does. *)

exception Bad_padding

type cipher
(** A cipher packaged with its expanded key (run-time selectable). *)

val make : (module Block.CIPHER) -> secret:string -> cipher
val cipher_name : cipher -> string
val block_size : cipher -> int

val padded_len : cipher -> int -> int
(** Ciphertext length (excluding IV) for an n-byte plaintext. *)

val encrypt : cipher -> iv:string -> string -> string
(** Returns [IV ^ ciphertext]. @raise Invalid_argument unless the IV is
    exactly one block. *)

val decrypt : cipher -> string -> string
(** Inverse of {!encrypt}. @raise Bad_padding on malformed input. *)
