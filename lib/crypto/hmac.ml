(** HMAC (RFC 2104) over any hash from this library.

    TDB signs the anchor and the commit chain with [hmac_sha256] keyed by a
    key derived from the platform secret store. *)

let compute (module H : Hash.S) ~(key : string) (data : string) : string =
  let key = if String.length key > H.block_size then H.digest key else key in
  let pad c =
    String.init H.block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  let ipad = pad 0x36 and opad = pad 0x5c in
  let inner =
    let c = H.init () in
    H.feed c ipad;
    H.feed c data;
    H.get c
  in
  let c = H.init () in
  H.feed c opad;
  H.feed c inner;
  H.get c

let sha1 ~key data = compute (module Sha1) ~key data
let sha256 ~key data = compute (module Sha256) ~key data

(** Incremental HMAC, used to MAC streams (e.g. backups) without
    materializing them. *)
type ctx = Ctx : (module Hash.S with type ctx = 'c) * 'c * string -> ctx

let init (module H : Hash.S) ~(key : string) : ctx =
  let key = if String.length key > H.block_size then H.digest key else key in
  let pad c =
    String.init H.block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  let inner = H.init () in
  H.feed inner (pad 0x36);
  Ctx ((module H), inner, pad 0x5c)

let feed (Ctx ((module H), inner, _) : ctx) (data : string) : unit = H.feed inner data

let get (Ctx ((module H), inner, opad) : ctx) : string =
  let inner_digest = H.get inner in
  let o = H.init () in
  H.feed o opad;
  H.feed o inner_digest;
  H.get o
