(** HMAC (RFC 2104) over any hash from this library.

    TDB signs the anchor and the commit chain with [hmac_sha256] keyed by a
    key derived from the platform secret store. Those MACs recompute under
    the {e same} key on every commit, so {!precompute} exposes the classic
    HMAC optimization: hash the ipad/opad key blocks once and clone the
    resulting contexts per message, saving two block compressions (and the
    pad allocations) per MAC — half the work for short inputs like commit
    records. *)

(* Both key pads, with an over-long key digested first per the RFC. *)
let pads (module H : Hash.S) ~(key : string) : string * string =
  let key = if String.length key > H.block_size then H.digest key else key in
  let pad c =
    String.init H.block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  (pad 0x36, pad 0x5c)

(** A prepared key: frozen {e midstates} of the inner context primed with
    [key xor ipad] and the outer context primed with [key xor opad].
    Midstates are immutable, so one prepared key can serve any number of
    domains concurrently; each {!mac} resumes them into fresh private
    contexts. (The previous representation held live mutable contexts
    cloned via [Hash.S.copy] — a data race the moment two domains shared
    the key, safe only under the runtime lock.) *)
type key = Key : (module Hash.S with type midstate = 'm) * 'm * 'm -> key

let precompute (module H : Hash.S) ~(key : string) : key =
  let ipad, opad = pads (module H) ~key in
  let inner = H.init () in
  H.feed inner ipad;
  let outer = H.init () in
  H.feed outer opad;
  Key ((module H), H.save inner, H.save outer)

let mac (Key ((module H), inner0, outer0) : key) (data : string) : string =
  let inner = H.resume inner0 in
  H.feed inner data;
  let outer = H.resume outer0 in
  H.feed outer (H.get inner);
  H.get outer

let compute (module H : Hash.S) ~(key : string) (data : string) : string =
  let ipad, opad = pads (module H) ~key in
  let c = H.init () in
  H.feed c ipad;
  H.feed c data;
  let inner = H.get c in
  let o = H.init () in
  H.feed o opad;
  H.feed o inner;
  H.get o

let sha1 ~key data = compute (module Sha1) ~key data
let sha256 ~key data = compute (module Sha256) ~key data

(** Incremental HMAC, used to MAC streams (e.g. backups) without
    materializing them. *)
type ctx = Ctx : (module Hash.S with type ctx = 'c) * 'c * string -> ctx

let init (module H : Hash.S) ~(key : string) : ctx =
  let ipad, opad = pads (module H) ~key in
  let inner = H.init () in
  H.feed inner ipad;
  Ctx ((module H), inner, opad)

let feed (Ctx ((module H), inner, _) : ctx) (data : string) : unit = H.feed inner data

let get (Ctx ((module H), inner, opad) : ctx) : string =
  let inner_digest = H.get inner in
  let o = H.init () in
  H.feed o opad;
  H.feed o inner_digest;
  H.get o
