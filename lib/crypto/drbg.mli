(** Deterministic random bit generator built on SHA-256 (hash-DRBG style).
    Deterministic seeding keeps tests and benchmarks reproducible;
    production embedders reseed from the secret store plus device entropy. *)

type t

val create : seed:string -> t
val generate : t -> int -> string

val split : t -> string -> t
(** Derive an independent generator; advances the parent. *)

val int : t -> int -> int
(** Uniform-ish value in [0, bound). @raise Invalid_argument on bound <= 0. *)
