(** Deterministic random bit generator built on SHA-256 (hash-DRBG style).
    Deterministic seeding keeps tests and benchmarks reproducible;
    production embedders reseed from the secret store plus device entropy.

    Thread-safe: state advance is a short critical section under an
    internal mutex (block expansion happens outside it), so concurrent
    callers each get a distinct, never-overlapping slice of the stream.
    The {e sequence} of values then depends on scheduling — order-
    sensitive users (IV assignment in the seal pipeline) must draw from a
    single coordinator domain, which lint rule R7 checks statically. *)

type t

val create : seed:string -> t
val generate : t -> int -> string

val split : t -> string -> t
(** Derive an independent generator; advances the parent. *)

val int : t -> int -> int
(** Uniform-ish value in [0, bound). @raise Invalid_argument on bound <= 0. *)
