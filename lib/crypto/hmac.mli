(** HMAC (RFC 2104) over any hash from this library; pinned by the RFC
    2202/4231 vectors. TDB signs the anchor and commit chain with
    {!sha256} keyed from the platform secret store. *)

val compute : (module Hash.S) -> key:string -> string -> string
val sha1 : key:string -> string -> string
val sha256 : key:string -> string -> string

(** {1 Incremental HMAC} (for streams, e.g. backups) *)

type ctx

val init : (module Hash.S) -> key:string -> ctx
val feed : ctx -> string -> unit
val get : ctx -> string
