(** HMAC (RFC 2104) over any hash from this library; pinned by the RFC
    2202/4231 vectors. TDB signs the anchor and commit chain with
    {!sha256} keyed from the platform secret store. *)

val compute : (module Hash.S) -> key:string -> string -> string
val sha1 : key:string -> string -> string
val sha256 : key:string -> string -> string

(** {1 Precomputed keys}

    The anchor/commit-chain MACs reuse one key for the lifetime of the
    store; preparing it once hashes the ipad/opad blocks ahead of time, so
    each {!mac} resumes the primed state instead of recompressing the key
    pads — two block compressions saved per MAC. A [key] holds only
    immutable {!Hash.S.midstate}s, so one precomputed key may be used
    from any number of domains concurrently; each {!mac} works on fresh
    private contexts. *)

type key

val precompute : (module Hash.S) -> key:string -> key

val mac : key -> string -> string
(** [mac k data] = [compute h ~key data] for the [h]/[key] given to
    {!precompute}, at roughly half the cost for short inputs. *)

(** {1 Incremental HMAC} (for streams, e.g. backups) *)

type ctx

val init : (module Hash.S) -> key:string -> ctx
val feed : ctx -> string -> unit
val get : ctx -> string
