(** AES-128 (FIPS 197), implemented from first principles.

    Instead of a hard-coded S-box, the substitution table is computed from
    its mathematical definition (multiplicative inverse in GF(2^8) followed
    by the affine transform), and the round constants by repeated doubling
    in the field. The FIPS-197 appendix vector pins correctness in the test
    suite.

    TDB's paper used 3DES; we substitute AES (and {!Triple} over it for a
    3DES-like three-pass cost profile) — see DESIGN.md, "Substitutions". *)

let name = "aes128"
let block_size = 16
let key_size = 16

(* --- GF(2^8) arithmetic with the AES reduction polynomial x^8+x^4+x^3+x+1 --- *)

let xtime x =
  let x2 = x lsl 1 in
  if x land 0x80 <> 0 then (x2 lxor 0x1b) land 0xff else x2

let gmul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

let ginv =
  (* brute-force inverse table; ginv.(0) = 0 by AES convention *)
  let t = Array.make 256 0 in
  for x = 1 to 255 do
    let y = ref 1 in
    while gmul x !y <> 1 do
      incr y
    done;
    t.(x) <- !y
  done;
  t

let sbox =
  let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xff in
  Array.init 256 (fun x ->
      let b = ginv.(x) in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i s -> t.(s) <- i) sbox;
  t

(* Precomputed GF(2^8) multiplication tables for the hot paths. *)
let mul2 = Array.init 256 (fun x -> gmul x 2)
let mul3 = Array.init 256 (fun x -> gmul x 3)
let mul9 = Array.init 256 (fun x -> gmul x 9)
let mul11 = Array.init 256 (fun x -> gmul x 11)
let mul13 = Array.init 256 (fun x -> gmul x 13)
let mul14 = Array.init 256 (fun x -> gmul x 14)

type key = { enc : int array (* 44 32-bit words *) }

let of_secret secret =
  if String.length secret <> key_size then invalid_arg "Aes.of_secret: need 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code secret.[4 * i] lsl 24)
      lor (Char.code secret.[(4 * i) + 1] lsl 16)
      lor (Char.code secret.[(4 * i) + 2] lsl 8)
      lor Char.code secret.[(4 * i) + 3]
  done;
  let sub_word x =
    (sbox.((x lsr 24) land 0xff) lsl 24)
    lor (sbox.((x lsr 16) land 0xff) lsl 16)
    lor (sbox.((x lsr 8) land 0xff) lsl 8)
    lor sbox.(x land 0xff)
  in
  let rot_word x = ((x lsl 8) lor (x lsr 24)) land 0xFFFFFFFF in
  let rcon = ref 1 in
  for i = 4 to 43 do
    let t = w.(i - 1) in
    let t = if i mod 4 = 0 then sub_word (rot_word t) lxor (!rcon lsl 24) else t in
    if i mod 4 = 0 then rcon := xtime !rcon;
    w.(i) <- w.(i - 4) lxor t
  done;
  { enc = w }

(* State as 16-element int array, state.(r + 4*c) = byte at row r column c. *)

let add_round_key st (w : int array) round =
  for c = 0 to 3 do
    let word = w.((4 * round) + c) in
    st.(4 * c) <- st.(4 * c) lxor ((word lsr 24) land 0xff);
    st.((4 * c) + 1) <- st.((4 * c) + 1) lxor ((word lsr 16) land 0xff);
    st.((4 * c) + 2) <- st.((4 * c) + 2) lxor ((word lsr 8) land 0xff);
    st.((4 * c) + 3) <- st.((4 * c) + 3) lxor (word land 0xff)
  done

let shift_rows st =
  (* row r of column c lives at st.(4*c + r) *)
  let tmp = Array.copy st in
  for c = 0 to 3 do
    for r = 1 to 3 do
      st.((4 * c) + r) <- tmp.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows st =
  let tmp = Array.copy st in
  for c = 0 to 3 do
    for r = 1 to 3 do
      st.((4 * ((c + r) mod 4)) + r) <- tmp.((4 * c) + r)
    done
  done

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c)
    and a1 = st.((4 * c) + 1)
    and a2 = st.((4 * c) + 2)
    and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- mul2.(a0) lxor mul3.(a1) lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor mul2.(a1) lxor mul3.(a2) lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor mul2.(a2) lxor mul3.(a3);
    st.((4 * c) + 3) <- mul3.(a0) lxor a1 lxor a2 lxor mul2.(a3)
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c)
    and a1 = st.((4 * c) + 1)
    and a2 = st.((4 * c) + 2)
    and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- mul14.(a0) lxor mul11.(a1) lxor mul13.(a2) lxor mul9.(a3);
    st.((4 * c) + 1) <- mul9.(a0) lxor mul14.(a1) lxor mul11.(a2) lxor mul13.(a3);
    st.((4 * c) + 2) <- mul13.(a0) lxor mul9.(a1) lxor mul14.(a2) lxor mul11.(a3);
    st.((4 * c) + 3) <- mul11.(a0) lxor mul13.(a1) lxor mul9.(a2) lxor mul14.(a3)
  done

let encrypt_block { enc = w } ~src ~src_off ~dst ~dst_off =
  let st = Array.init 16 (fun i -> Char.code (Bytes.get src (src_off + i))) in
  add_round_key st w 0;
  for round = 1 to 9 do
    for i = 0 to 15 do
      st.(i) <- sbox.(st.(i))
    done;
    shift_rows st;
    mix_columns st;
    add_round_key st w round
  done;
  for i = 0 to 15 do
    st.(i) <- sbox.(st.(i))
  done;
  shift_rows st;
  add_round_key st w 10;
  for i = 0 to 15 do
    Bytes.set dst (dst_off + i) (Char.chr st.(i))
  done

let decrypt_block { enc = w } ~src ~src_off ~dst ~dst_off =
  let st = Array.init 16 (fun i -> Char.code (Bytes.get src (src_off + i))) in
  add_round_key st w 10;
  for round = 9 downto 1 do
    inv_shift_rows st;
    for i = 0 to 15 do
      st.(i) <- inv_sbox.(st.(i))
    done;
    add_round_key st w round;
    inv_mix_columns st
  done;
  inv_shift_rows st;
  for i = 0 to 15 do
    st.(i) <- inv_sbox.(st.(i))
  done;
  add_round_key st w 0;
  for i = 0 to 15 do
    Bytes.set dst (dst_off + i) (Char.chr st.(i))
  done
