(** SHA-1 (FIPS 180-4), implemented from scratch and pinned by the FIPS
    test vectors in the test suite. TDB uses SHA-1 for the Merkle hash tree
    embedded in the chunk-store location map, matching the paper's
    configuration (Section 7.3). *)

include Hash.S
