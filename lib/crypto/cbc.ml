(** CBC mode with PKCS#7 padding over any {!Block.CIPHER}.

    The chunk store encrypts every chunk in CBC with a fresh IV prepended to
    the ciphertext. PKCS#7 padding reproduces the per-chunk "padding for
    block encryption" storage overhead the paper measures for TDB-S.

    This is the storage hot path: every sealed record passes through here
    once per write and once per (cache-missing) read, so both directions
    work in a single output buffer with no per-block temporaries. The
    in-place [encrypt] relies on a {!Block.CIPHER} contract every cipher in
    this library honours: [encrypt_block]/[decrypt_block] load the whole
    source block before storing the destination, so [src] and [dst] may
    alias at the same offset. *)

exception Bad_padding

(** A cipher instance packaged with its expanded key, so upper layers can
    select the cipher at run time (TDB's modular configuration). *)
type cipher = Cipher : (module Block.CIPHER with type key = 'k) * 'k -> cipher

let make (module C : Block.CIPHER) ~(secret : string) : cipher =
  Cipher ((module C), C.of_secret secret)

let cipher_name (Cipher ((module C), _)) = C.name
let block_size (Cipher ((module C), _)) = C.block_size

(** [padded_len c n] is the ciphertext length (excluding IV) for an [n]-byte
    plaintext: next multiple of the block size, always adding 1..bs bytes. *)
let padded_len (Cipher ((module C), _)) n = n + C.block_size - (n mod C.block_size)

(** [encrypt c ~iv plain] returns [iv-sized IV ^ ciphertext]. The IV must be
    exactly one block. *)
let encrypt (Cipher ((module C), key)) ~(iv : string) (plain : string) : string =
  let bs = C.block_size in
  if String.length iv <> bs then invalid_arg "Cbc.encrypt: IV must be one block";
  let n = String.length plain in
  let pad = bs - (n mod bs) in
  (* One buffer holds IV ^ padded plaintext and becomes IV ^ ciphertext:
     block b XORs against the previous block — already ciphertext (or the
     IV) — then encrypts in place. *)
  let out = Bytes.create (bs + n + pad) in
  Bytes.blit_string iv 0 out 0 bs;
  Bytes.blit_string plain 0 out bs n;
  Bytes.fill out (bs + n) pad (Char.chr pad);
  let nblocks = (n + pad) / bs in
  for b = 0 to nblocks - 1 do
    let off = bs + (b * bs) in
    let prev = off - bs in
    for i = 0 to bs - 1 do
      (* in bounds: off + i < bs + n + pad = length out *)
      Bytes.unsafe_set out (off + i)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get out (off + i)) lxor Char.code (Bytes.unsafe_get out (prev + i))))
    done;
    C.encrypt_block key ~src:out ~src_off:off ~dst:out ~dst_off:off
  done;
  Bytes.unsafe_to_string out

(** Inverse of {!encrypt}. Padding is validated in constant time (the
    classic CBC padding-oracle countermeasure): every candidate pad byte is
    inspected with {!Ct} masks and a single data-independent branch decides
    validity at the end. @raise Bad_padding on malformed input. *)
let decrypt (Cipher ((module C), key)) (data : string) : string =
  let bs = C.block_size in
  let total = String.length data in
  if total < 2 * bs || (total - bs) mod bs <> 0 then raise Bad_padding;
  let nblocks = (total - bs) / bs in
  (* Read-only view: [decrypt_block] only loads from [src], and the XOR
     below only reads [data] through string accessors, so the ciphertext
     is never copied. *)
  let src = Bytes.unsafe_of_string data in
  let n = total - bs in
  let out = Bytes.create n in
  for b = 0 to nblocks - 1 do
    let doff = b * bs in
    C.decrypt_block key ~src ~src_off:(bs + doff) ~dst:out ~dst_off:doff;
    (* XOR with previous ciphertext block (or IV for the first block). *)
    for i = 0 to bs - 1 do
      (* in bounds: doff + i < n and doff + i < total *)
      Bytes.unsafe_set out (doff + i)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get out (doff + i)) lxor Char.code (String.unsafe_get data (doff + i))))
    done
  done;
  let pad = Char.code (Bytes.unsafe_get out (n - 1)) in
  (* bad <> 0 iff pad is out of [1, bs] or any of the last [pad] bytes
     differs from [pad]; the loop always scans a full block. *)
  let bad = ref (Ct.lt_mask pad 1 lor Ct.lt_mask bs pad) in
  for i = 0 to bs - 1 do
    let byte = Char.code (Bytes.unsafe_get out (n - 1 - i)) in
    bad := !bad lor (Ct.lt_mask i pad land (byte lxor pad))
  done;
  if !bad <> 0 then raise Bad_padding;
  Bytes.sub_string out 0 (n - pad)
