(** CBC mode with PKCS#7 padding over any {!Block.CIPHER}.

    The chunk store encrypts every chunk in CBC with a fresh IV prepended to
    the ciphertext. PKCS#7 padding reproduces the per-chunk "padding for
    block encryption" storage overhead the paper measures for TDB-S. *)

exception Bad_padding

(** A cipher instance packaged with its expanded key, so upper layers can
    select the cipher at run time (TDB's modular configuration). *)
type cipher = Cipher : (module Block.CIPHER with type key = 'k) * 'k -> cipher

let make (module C : Block.CIPHER) ~(secret : string) : cipher =
  Cipher ((module C), C.of_secret secret)

let cipher_name (Cipher ((module C), _)) = C.name
let block_size (Cipher ((module C), _)) = C.block_size

(** [padded_len c n] is the ciphertext length (excluding IV) for an [n]-byte
    plaintext: next multiple of the block size, always adding 1..bs bytes. *)
let padded_len (Cipher ((module C), _)) n = n + C.block_size - (n mod C.block_size)

(** [encrypt c ~iv plain] returns [iv-sized IV ^ ciphertext]. The IV must be
    exactly one block. *)
let encrypt (Cipher ((module C), key)) ~(iv : string) (plain : string) : string =
  let bs = C.block_size in
  if String.length iv <> bs then invalid_arg "Cbc.encrypt: IV must be one block";
  let n = String.length plain in
  let pad = bs - (n mod bs) in
  let buf = Bytes.create (n + pad) in
  Bytes.blit_string plain 0 buf 0 n;
  Bytes.fill buf n pad (Char.chr pad);
  let prev = Bytes.of_string iv in
  let out = Bytes.create (bs + n + pad) in
  Bytes.blit_string iv 0 out 0 bs;
  let nblocks = (n + pad) / bs in
  for b = 0 to nblocks - 1 do
    let off = b * bs in
    for i = 0 to bs - 1 do
      Bytes.set buf (off + i) (Char.chr (Char.code (Bytes.get buf (off + i)) lxor Char.code (Bytes.get prev i)))
    done;
    C.encrypt_block key ~src:buf ~src_off:off ~dst:out ~dst_off:(bs + off);
    Bytes.blit out (bs + off) prev 0 bs
  done;
  Bytes.unsafe_to_string out

(** Inverse of {!encrypt}. @raise Bad_padding on malformed input. *)
let decrypt (Cipher ((module C), key)) (data : string) : string =
  let bs = C.block_size in
  let total = String.length data in
  if total < 2 * bs || (total - bs) mod bs <> 0 then raise Bad_padding;
  let nblocks = (total - bs) / bs in
  let src = Bytes.of_string data in
  let out = Bytes.create (total - bs) in
  for b = 0 to nblocks - 1 do
    let coff = bs + (b * bs) in
    C.decrypt_block key ~src ~src_off:coff ~dst:out ~dst_off:(b * bs);
    (* XOR with previous ciphertext block (or IV for the first block). *)
    let poff = coff - bs in
    for i = 0 to bs - 1 do
      Bytes.set out ((b * bs) + i)
        (Char.chr (Char.code (Bytes.get out ((b * bs) + i)) lxor Char.code (Bytes.get src (poff + i))))
    done
  done;
  let padded = Bytes.unsafe_to_string out in
  let pad = Char.code padded.[String.length padded - 1] in
  if pad < 1 || pad > bs || pad > String.length padded then raise Bad_padding;
  for i = String.length padded - pad to String.length padded - 1 do
    if Char.code padded.[i] <> pad then raise Bad_padding
  done;
  String.sub padded 0 (String.length padded - pad)
