(** Constant-time comparison, for MAC verification. *)

val equal_string : string -> string -> bool
val equal_bytes : bytes -> bytes -> bool
