(** Constant-time primitives, for MAC verification and padding checks. *)

val equal_string : string -> string -> bool
val equal_bytes : bytes -> bytes -> bool

(** {1 Mask combinators}

    Branch-free predicates over small non-negative ints (byte values,
    block sizes — magnitudes far below [2^(int_size-2)]). The result is
    [-1] (all ones) when the predicate holds and [0] otherwise, so checks
    compose with [land]/[lor] and a single data-independent branch at the
    end. *)

val lt_mask : int -> int -> int
(** [lt_mask a b] is [-1] iff [a < b]. *)

val eq_mask : int -> int -> int
(** [eq_mask a b] is [-1] iff [a = b]. *)
