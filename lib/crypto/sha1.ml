(** SHA-1 (FIPS 180-4), implemented from scratch.

    TDB uses SHA-1 for the Merkle hash tree embedded in the chunk-store
    location map, matching the paper's configuration (Section 7.3). All
    arithmetic is done on the native [int] masked to 32 bits. *)

let digest_size = 20
let block_size = 64

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable total : int; (* total bytes fed *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    total = 0;
    buf = Bytes.create block_size;
    buf_len = 0;
    w = Array.make 80 0;
  }

let copy c = { c with buf = Bytes.copy c.buf; w = Array.copy c.w }
let mask = 0xFFFFFFFF
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

(* Process one 64-byte block starting at [off] in [b]. The single bounds
   check up front licenses the unsafe loads in the loops below — [w] is
   always 80 wide, and every index is a compile-time-bounded function of
   the loop counter. *)
let process ctx (b : string) (off : int) =
  if off < 0 || off + block_size > String.length b then invalid_arg "Sha1.process";
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (String.unsafe_get b i) lsl 24)
      lor (Char.code (String.unsafe_get b (i + 1)) lsl 16)
      lor (Char.code (String.unsafe_get b (i + 2)) lsl 8)
      lor Char.code (String.unsafe_get b (i + 3)))
  done;
  for t = 16 to 79 do
    Array.unsafe_set w t
      (rotl
         (Array.unsafe_get w (t - 3)
         lxor Array.unsafe_get w (t - 8)
         lxor Array.unsafe_get w (t - 14)
         lxor Array.unsafe_get w (t - 16))
         1)
  done;
  let a = ref ctx.h0
  and b' = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for t = 0 to 79 do
    let f, k =
      if t < 20 then (!b' land !c lor (lnot !b' land !d) land mask, 0x5A827999)
      else if t < 40 then (!b' lxor !c lxor !d, 0x6ED9EBA1)
      else if t < 60 then (!b' land !c lor (!b' land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!b' lxor !c lxor !d, 0xCA62C1D6)
    in
    let tmp = (rotl !a 5 + (f land mask) + !e + k + Array.unsafe_get w t) land mask in
    e := !d;
    d := !c;
    c := rotl !b' 30;
    b' := !a;
    a := tmp
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask;
  ctx.h1 <- (ctx.h1 + !b') land mask;
  ctx.h2 <- (ctx.h2 + !c) land mask;
  ctx.h3 <- (ctx.h3 + !d) land mask;
  ctx.h4 <- (ctx.h4 + !e) land mask

let feed ctx ?(off = 0) ?len (s : string) =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then invalid_arg "Sha1.feed";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if Int.equal ctx.buf_len block_size then begin
      process ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    process ctx s !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed_bytes ctx ?off ?len (b : bytes) = feed ctx ?off ?len (Bytes.unsafe_to_string b)

let finalize ctx =
  let total_bits = ctx.total * 8 in
  (* Append 0x80, pad with zeros to 56 mod 64, append 64-bit length. *)
  let pad_len =
    let r = (ctx.total + 1) mod block_size in
    if r <= 56 then 56 - r else block_size + 56 - r
  in
  let tail = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (1 + pad_len + i) (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  feed_bytes ctx tail;
  let out = Bytes.create digest_size in
  let put i h =
    Bytes.set out (4 * i) (Char.chr ((h lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((h lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((h lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (h land 0xff))
  in
  put 0 ctx.h0;
  put 1 ctx.h1;
  put 2 ctx.h2;
  put 3 ctx.h3;
  put 4 ctx.h4;
  Bytes.unsafe_to_string out

let get ctx = finalize (copy ctx)

let digest s =
  let c = init () in
  feed c s;
  finalize c

let digest_bytes b = digest (Bytes.unsafe_to_string b)

(* Frozen running state: chaining words + length + pending partial block,
   all immutable — safe to share across domains, unlike a [ctx]. *)
type midstate = { ms_h : string; ms_total : int; ms_buf : string }

let save (c : ctx) : midstate =
  let b = Bytes.create digest_size in
  let put i h =
    Bytes.set b (4 * i) (Char.chr ((h lsr 24) land 0xff));
    Bytes.set b ((4 * i) + 1) (Char.chr ((h lsr 16) land 0xff));
    Bytes.set b ((4 * i) + 2) (Char.chr ((h lsr 8) land 0xff));
    Bytes.set b ((4 * i) + 3) (Char.chr (h land 0xff))
  in
  put 0 c.h0;
  put 1 c.h1;
  put 2 c.h2;
  put 3 c.h3;
  put 4 c.h4;
  { ms_h = Bytes.to_string b; ms_total = c.total; ms_buf = Bytes.sub_string c.buf 0 c.buf_len }

let resume (m : midstate) : ctx =
  let word i =
    (Char.code m.ms_h.[4 * i] lsl 24)
    lor (Char.code m.ms_h.[(4 * i) + 1] lsl 16)
    lor (Char.code m.ms_h.[(4 * i) + 2] lsl 8)
    lor Char.code m.ms_h.[(4 * i) + 3]
  in
  let c = init () in
  c.h0 <- word 0;
  c.h1 <- word 1;
  c.h2 <- word 2;
  c.h3 <- word 3;
  c.h4 <- word 4;
  c.total <- m.ms_total;
  Bytes.blit_string m.ms_buf 0 c.buf 0 (String.length m.ms_buf);
  c.buf_len <- String.length m.ms_buf;
  c
