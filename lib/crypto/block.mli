(** Common signature for block ciphers. *)

module type CIPHER = sig
  val name : string

  val block_size : int
  (** Block size in bytes. *)

  val key_size : int
  (** Key size in bytes expected by {!of_secret}. *)

  type key

  val of_secret : string -> key
  (** Expands raw key material into round keys.
      @raise Invalid_argument if the secret has the wrong length. *)

  val encrypt_block : key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit
  val decrypt_block : key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit
end
