(** Deterministic random bit generator built on SHA-256.

    A simple hash-DRBG: each request rekeys the state as
    [state_{i+1} = H(0x01 || state_i)] and produces output blocks
    [H(0x02 || state_i || counter)]. Deterministic seeding keeps tests and
    benchmarks reproducible; production embedders reseed from the platform
    secret store plus device entropy. *)

type t = { mutable state : string; mutable reqs : int }

let create ~(seed : string) : t = { state = Sha256.digest ("tdb-drbg-seed" ^ seed); reqs = 0 }

let generate (t : t) (n : int) : string =
  if n < 0 then invalid_arg "Drbg.generate";
  let buf = Buffer.create n in
  let ctr = ref 0 in
  while Buffer.length buf < n do
    let block = Sha256.digest (Printf.sprintf "\x02%s%d.%d" t.state t.reqs !ctr) in
    Buffer.add_string buf block;
    incr ctr
  done;
  t.reqs <- t.reqs + 1;
  t.state <- Sha256.digest ("\x01" ^ t.state);
  Buffer.sub buf 0 n

(** Derive an independent generator, e.g. one per chunk-store instance. *)
let split (t : t) (label : string) : t =
  let d = create ~seed:(t.state ^ "/" ^ label) in
  t.state <- Sha256.digest ("\x01" ^ t.state);
  d

(** 63-bit non-negative integer in [0, bound). *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Drbg.int";
  let s = generate t 8 in
  let v = ref 0 in
  String.iter (fun c -> v := ((!v lsl 8) lor Char.code c) land max_int) s;
  !v mod bound
