(** Deterministic random bit generator built on SHA-256.

    A simple hash-DRBG: each request rekeys the state as
    [state_{i+1} = H(0x01 || state_i)] and produces output blocks
    [H(0x02 || state_i || counter)]. Deterministic seeding keeps tests and
    benchmarks reproducible; production embedders reseed from the platform
    secret store plus device entropy.

    Thread safety: the mutable [(state, reqs)] pair is guarded by a
    per-instance mutex. Without it, two domains can read the same state
    and emit {e identical} output — fatal for IV generation (the old code
    was safe only because [threads.posix] serialized everything under the
    runtime lock). The critical section covers just the state advance;
    output blocks are computed from the reserved snapshot outside the
    lock, so concurrent callers each derive from a distinct request
    number and single-threaded output is byte-for-byte unchanged. *)

type t = { mu : Mutex.t; mutable state : string; mutable reqs : int }

let create ~(seed : string) : t =
  { mu = Mutex.create (); state = Sha256.digest ("tdb-drbg-seed" ^ seed); reqs = 0 }

(* Reserve the current (state, reqs) for one request and advance. *)
let reserve (t : t) : string * int =
  Mutex.lock t.mu;
  let state = t.state and reqs = t.reqs in
  t.reqs <- t.reqs + 1;
  t.state <- Sha256.digest ("\x01" ^ state);
  Mutex.unlock t.mu;
  (state, reqs)

let generate (t : t) (n : int) : string =
  if n < 0 then invalid_arg "Drbg.generate";
  let state, reqs = reserve t in
  let buf = Buffer.create n in
  let ctr = ref 0 in
  while Buffer.length buf < n do
    let block = Sha256.digest (Printf.sprintf "\x02%s%d.%d" state reqs !ctr) in
    Buffer.add_string buf block;
    incr ctr
  done;
  Buffer.sub buf 0 n

(** Derive an independent generator, e.g. one per chunk-store instance. *)
let split (t : t) (label : string) : t =
  Mutex.lock t.mu;
  let state = t.state in
  t.state <- Sha256.digest ("\x01" ^ state);
  Mutex.unlock t.mu;
  create ~seed:(state ^ "/" ^ label)

(** 63-bit non-negative integer in [0, bound). *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Drbg.int";
  let s = generate t 8 in
  let v = ref 0 in
  String.iter (fun c -> v := ((!v lsl 8) lor Char.code c) land max_int) s;
  !v mod bound
