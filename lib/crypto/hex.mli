(** Hexadecimal encoding/decoding (tests, tools, debug output). *)

val of_string : string -> string
val of_bytes : bytes -> string

val to_string : string -> string
(** @raise Invalid_argument on odd length or non-hex digits. *)

val to_bytes : string -> bytes
val nibble : char -> int
