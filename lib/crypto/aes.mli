(** AES-128 (FIPS 197), implemented from first principles: the S-box is
    computed from its definition (GF(2^8) inverse + affine map) instead of
    a hard-coded table, and the FIPS-197 appendix vector pins correctness.
    Stands in for the paper's 3DES (see DESIGN.md, "Substitutions"). *)

include Block.CIPHER
