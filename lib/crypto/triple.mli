(** Triple-cipher EDE construction, generic over any block cipher:
    [E_k3 (D_k2 (E_k1 x))], the classic 3DES composition. [Aes3] / [Xtea3]
    reproduce the three-pass CPU cost of the paper's 3DES configuration
    with ciphers we can verify offline (DESIGN.md, "Substitutions"). *)

module Make (_ : Block.CIPHER) : Block.CIPHER

module Aes3 : Block.CIPHER
module Xtea3 : Block.CIPHER
