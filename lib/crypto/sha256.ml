(** SHA-256 (FIPS 180-4), implemented from scratch.

    The round constants and initial hash values are *derived* (fractional
    bits of cube/square roots of the first primes) rather than hard-coded,
    which makes the implementation verifiable without a table to mistype;
    correctness is pinned by the FIPS test vectors in the test suite.

    TDB uses SHA-256 for HMAC authentication of the anchor and the commit
    chain; the Merkle tree itself uses SHA-1 as in the paper (configurable). *)

let digest_size = 32
let block_size = 64
let mask = 0xFFFFFFFF

let first_primes n =
  let rec is_prime k d = d * d > k || (k mod d <> 0 && is_prime k (d + 1)) in
  let rec go acc k = if List.length acc = n then List.rev acc else go (if is_prime k 2 then k :: acc else acc) (k + 1) in
  go [] 2

let frac_bits32 (f : float) : int =
  (* first 32 fractional bits of f *)
  let fr = f -. Float.of_int (int_of_float f) in
  int_of_float (fr *. 4294967296.0) land mask

let k : int array =
  Array.of_list (List.map (fun p -> frac_bits32 (Float.cbrt (float_of_int p))) (first_primes 64))

let h_init : int array =
  Array.of_list (List.map (fun p -> frac_bits32 (sqrt (float_of_int p))) (first_primes 8))

type ctx = {
  h : int array;
  mutable total : int;
  buf : Bytes.t;
  mutable buf_len : int;
  w : int array;
}

let init () = { h = Array.copy h_init; total = 0; buf = Bytes.create block_size; buf_len = 0; w = Array.make 64 0 }
let copy c = { c with h = Array.copy c.h; buf = Bytes.copy c.buf; w = Array.copy c.w }
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* One bounds check per block licenses the unsafe loads below; [w] is
   always 64 wide and [k] 64 wide, every index bounded by the loop. *)
let process ctx (s : string) (off : int) =
  if off < 0 || off + block_size > String.length s then invalid_arg "Sha256.process";
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (String.unsafe_get s i) lsl 24)
      lor (Char.code (String.unsafe_get s (i + 1)) lsl 16)
      lor (Char.code (String.unsafe_get s (i + 2)) lsl 8)
      lor Char.code (String.unsafe_get s (i + 3)))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land mask)
  done;
  let h = ctx.h in
  let a = ref h.(0)
  and b = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4)
  and f = ref h.(5)
  and g = ref h.(6)
  and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g land mask) in
    let t1 = (!hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let feed ctx ?(off = 0) ?len (s : string) =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then invalid_arg "Sha256.feed";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if Int.equal ctx.buf_len block_size then begin
      process ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    process ctx s !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed_bytes ctx ?off ?len (b : bytes) = feed ctx ?off ?len (Bytes.unsafe_to_string b)

let finalize ctx =
  let total_bits = ctx.total * 8 in
  let pad_len =
    let r = (ctx.total + 1) mod block_size in
    if r <= 56 then 56 - r else block_size + 56 - r
  in
  let tail = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (1 + pad_len + i) (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  feed_bytes ctx tail;
  let out = Bytes.create digest_size in
  Array.iteri
    (fun i h ->
      Bytes.set out (4 * i) (Char.chr ((h lsr 24) land 0xff));
      Bytes.set out ((4 * i) + 1) (Char.chr ((h lsr 16) land 0xff));
      Bytes.set out ((4 * i) + 2) (Char.chr ((h lsr 8) land 0xff));
      Bytes.set out ((4 * i) + 3) (Char.chr (h land 0xff)))
    ctx.h;
  Bytes.unsafe_to_string out

let get ctx = finalize (copy ctx)

let digest s =
  let c = init () in
  feed c s;
  finalize c

let digest_bytes b = digest (Bytes.unsafe_to_string b)

(* Frozen running state: chaining words + length + pending partial block,
   all immutable — safe to share across domains, unlike a [ctx]. *)
type midstate = { ms_h : string; ms_total : int; ms_buf : string }

let save (c : ctx) : midstate =
  let b = Bytes.create digest_size in
  for i = 0 to 7 do
    let h = c.h.(i) in
    Bytes.set b (4 * i) (Char.chr ((h lsr 24) land 0xff));
    Bytes.set b ((4 * i) + 1) (Char.chr ((h lsr 16) land 0xff));
    Bytes.set b ((4 * i) + 2) (Char.chr ((h lsr 8) land 0xff));
    Bytes.set b ((4 * i) + 3) (Char.chr (h land 0xff))
  done;
  { ms_h = Bytes.to_string b; ms_total = c.total; ms_buf = Bytes.sub_string c.buf 0 c.buf_len }

let resume (m : midstate) : ctx =
  let c = init () in
  for i = 0 to 7 do
    c.h.(i) <-
      (Char.code m.ms_h.[4 * i] lsl 24)
      lor (Char.code m.ms_h.[(4 * i) + 1] lsl 16)
      lor (Char.code m.ms_h.[(4 * i) + 2] lsl 8)
      lor Char.code m.ms_h.[(4 * i) + 3]
  done;
  c.total <- m.ms_total;
  Bytes.blit_string m.ms_buf 0 c.buf 0 (String.length m.ms_buf);
  c.buf_len <- String.length m.ms_buf;
  c
