(** Constant-time primitives, for MAC verification and padding checks. *)

(* Mask combinators over small non-negative ints (byte values, block
   sizes): all-ones / all-zeros results compose with [land]/[lor] without
   branching on secret data. *)

let lt_mask (a : int) (b : int) : int = (a - b) asr (Sys.int_size - 1)

let eq_mask (a : int) (b : int) : int =
  let x = a lxor b in
  lnot ((x lor -x) asr (Sys.int_size - 1))

let equal_string (a : string) (b : string) : bool =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let equal_bytes (a : bytes) (b : bytes) : bool =
  if Bytes.length a <> Bytes.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to Bytes.length a - 1 do
      acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
    done;
    !acc = 0
  end
