(** Constant-time comparison, for MAC verification. *)

let equal_string (a : string) (b : string) : bool =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let equal_bytes (a : bytes) (b : bytes) : bool =
  if Bytes.length a <> Bytes.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to Bytes.length a - 1 do
      acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
    done;
    !acc = 0
  end
