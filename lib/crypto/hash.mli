(** Common signature implemented by the hash functions in this library. *)

module type S = sig
  val digest_size : int
  (** Size of the digest in bytes. *)

  val block_size : int
  (** Internal block size in bytes (needed by HMAC). *)

  type ctx
  (** Incremental hashing context. *)

  val init : unit -> ctx

  val copy : ctx -> ctx
  (** Independent clone of the running state (HMAC key-context reuse). *)

  type midstate
  (** Frozen running state: an immutable value, safe to share across
      domains (a [ctx] is mutable and single-owner). *)

  val save : ctx -> midstate
  (** Freeze the current state; the context stays usable. *)

  val resume : midstate -> ctx
  (** A fresh private context continuing from the frozen state. *)

  val feed : ctx -> ?off:int -> ?len:int -> string -> unit
  val feed_bytes : ctx -> ?off:int -> ?len:int -> bytes -> unit

  val get : ctx -> string
  (** Finalize a copy of the context; the context stays usable. *)

  val digest : string -> string
  (** One-shot digest. *)

  val digest_bytes : bytes -> string
end
