(** Triple-cipher EDE construction, generic over any block cipher.

    [Triple.Make (C)] encrypts as [E_k3 (D_k2 (E_k1 x))], the classic 3DES
    composition. The paper configures TDB-S with 3DES; [Make (Aes)] (or
    [Make (Xtea)]) reproduces the three-pass CPU cost of that configuration
    with a cipher we can verify offline (see DESIGN.md, "Substitutions"). *)

module Make (C : Block.CIPHER) : Block.CIPHER = struct
  let name = "3" ^ C.name
  let block_size = C.block_size
  let key_size = 3 * C.key_size

  type key = { k1 : C.key; k2 : C.key; k3 : C.key }

  let of_secret secret =
    if String.length secret <> key_size then
      invalid_arg (Printf.sprintf "Triple(%s).of_secret: need %d bytes" C.name key_size);
    {
      k1 = C.of_secret (String.sub secret 0 C.key_size);
      k2 = C.of_secret (String.sub secret C.key_size C.key_size);
      k3 = C.of_secret (String.sub secret (2 * C.key_size) C.key_size);
    }

  let encrypt_block { k1; k2; k3 } ~src ~src_off ~dst ~dst_off =
    let tmp = Bytes.create block_size in
    C.encrypt_block k1 ~src ~src_off ~dst:tmp ~dst_off:0;
    C.decrypt_block k2 ~src:tmp ~src_off:0 ~dst:tmp ~dst_off:0;
    C.encrypt_block k3 ~src:tmp ~src_off:0 ~dst ~dst_off

  let decrypt_block { k1; k2; k3 } ~src ~src_off ~dst ~dst_off =
    let tmp = Bytes.create block_size in
    C.decrypt_block k3 ~src ~src_off ~dst:tmp ~dst_off:0;
    C.encrypt_block k2 ~src:tmp ~src_off:0 ~dst:tmp ~dst_off:0;
    C.decrypt_block k1 ~src:tmp ~src_off:0 ~dst ~dst_off
end

module Aes3 = Make (Aes)
module Xtea3 = Make (Xtea)
