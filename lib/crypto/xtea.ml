(** XTEA (Needham & Wheeler, 1997): a 64-bit-block, 128-bit-key cipher.

    Provided as the small-code-footprint cipher option — TDB trades
    functionality for footprint (Section 6), and XTEA is a few dozen lines
    against AES's few hundred. Its 8-byte block also mirrors DES's block
    size, so padding overhead per chunk matches the paper's 3DES setup. *)

let name = "xtea"
let block_size = 8
let key_size = 16
let rounds = 32
let delta = 0x9E3779B9
let mask = 0xFFFFFFFF

type key = int array (* 4 32-bit words *)

let of_secret secret =
  if String.length secret <> key_size then invalid_arg "Xtea.of_secret: need 16 bytes";
  Array.init 4 (fun i ->
      (Char.code secret.[4 * i] lsl 24)
      lor (Char.code secret.[(4 * i) + 1] lsl 16)
      lor (Char.code secret.[(4 * i) + 2] lsl 8)
      lor Char.code secret.[(4 * i) + 3])

let get32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let put32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let encrypt_block (k : key) ~src ~src_off ~dst ~dst_off =
  let v0 = ref (get32 src src_off) and v1 = ref (get32 src (src_off + 4)) in
  let sum = ref 0 in
  for _ = 1 to rounds do
    v0 := (!v0 + ((((!v1 lsl 4) lxor (!v1 lsr 5)) + !v1) lxor (!sum + k.(!sum land 3)))) land mask;
    sum := (!sum + delta) land mask;
    v1 := (!v1 + ((((!v0 lsl 4) lxor (!v0 lsr 5)) + !v0) lxor (!sum + k.((!sum lsr 11) land 3)))) land mask
  done;
  put32 dst dst_off !v0;
  put32 dst (dst_off + 4) !v1

let decrypt_block (k : key) ~src ~src_off ~dst ~dst_off =
  let v0 = ref (get32 src src_off) and v1 = ref (get32 src (src_off + 4)) in
  let sum = ref (delta * rounds land mask) in
  for _ = 1 to rounds do
    v1 := (!v1 - ((((!v0 lsl 4) lxor (!v0 lsr 5)) + !v0) lxor (!sum + k.((!sum lsr 11) land 3)))) land mask;
    sum := (!sum - delta) land mask;
    v0 := (!v0 - ((((!v1 lsl 4) lxor (!v1 lsr 5)) + !v1) lxor (!sum + k.(!sum land 3)))) land mask
  done;
  put32 dst dst_off !v0;
  put32 dst (dst_off + 4) !v1
