(** XTEA (Needham & Wheeler, 1997): 64-bit blocks, 128-bit keys, 32
    rounds — the small-code-footprint cipher option, whose 8-byte block
    mirrors DES/3DES (so CBC padding overhead matches the paper's setup). *)

include Block.CIPHER
