(** Write-ahead log for the baseline engine: one checksummed record per
    committed transaction, fsynced on durable commit, truncated at
    checkpoints. Recovery replays committed records over the last
    checkpointed page image; operations are idempotent puts/deletes, so
    replay over a partially newer image is harmless. *)

(* Berkeley DB logs both images so transactions can be undone as well as
   redone; carrying the before-image reproduces its per-transaction log
   volume (the paper measures ~1100 bytes/txn against TDB's ~523). Replay
   only needs the after-image. *)
type op =
  | Put of { table : string; key : string; old : string option; value : string }
  | Del of { table : string; key : string; old : string option }

type t = { store : Tdb_platform.Untrusted_store.t; mutable tail : int; mutable records : int }

let magic = '\xB7'

let create (store : Tdb_platform.Untrusted_store.t) : t =
  { store; tail = Tdb_platform.Untrusted_store.size store; records = 0 }

let encode_ops (ops : op list) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.list w
    (fun w op ->
      match op with
      | Put { table; key; old; value } ->
          P.byte w 1;
          P.string w table;
          P.string w key;
          P.option w P.string old;
          P.string w value
      | Del { table; key; old } ->
          P.byte w 2;
          P.string w table;
          P.string w key;
          P.option w P.string old)
    ops;
  P.contents w

let decode_ops (s : string) : op list =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  let ops =
    P.read_list r (fun r ->
        match P.read_byte r with
        | 1 ->
            let table = P.read_string r in
            let key = P.read_string r in
            let old = P.read_option r P.read_string in
            let value = P.read_string r in
            Put { table; key; old; value }
        | 2 ->
            let table = P.read_string r in
            let key = P.read_string r in
            let old = P.read_option r P.read_string in
            Del { table; key; old }
        | b -> failwith (Printf.sprintf "Wal: bad op tag %d" b))
  in
  P.expect_end r;
  ops

let checksum (s : string) : string = String.sub (Tdb_crypto.Sha1.digest s) 0 8

(** Append one committed transaction; syncs iff [durable]. *)
let append t ~(durable : bool) (ops : op list) : unit =
  let body = encode_ops ops in
  let framed =
    let len = String.length body in
    let hdr = Bytes.create 5 in
    Bytes.set hdr 0 magic;
    Bytes.set hdr 1 (Char.chr ((len lsr 24) land 0xff));
    Bytes.set hdr 2 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set hdr 3 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set hdr 4 (Char.chr (len land 0xff));
    Bytes.to_string hdr ^ body ^ checksum body
  in
  Tdb_platform.Untrusted_store.write t.store ~off:t.tail framed;
  t.tail <- t.tail + String.length framed;
  t.records <- t.records + 1;
  if durable then Tdb_platform.Untrusted_store.sync t.store

(** Replay all intact records from the start; stops at the first torn or
    missing record (crash tail). *)
let replay t ~(f : op list -> unit) : unit =
  let size = Tdb_platform.Untrusted_store.size t.store in
  let pos = ref 0 and stop = ref false in
  while not !stop do
    if !pos + 5 > size then stop := true
    else begin
      let hdr = Bytes.to_string (Tdb_platform.Untrusted_store.read t.store ~off:!pos ~len:5) in
      if not (Char.equal hdr.[0] magic) then stop := true
      else begin
        let len =
          (Char.code hdr.[1] lsl 24) lor (Char.code hdr.[2] lsl 16) lor (Char.code hdr.[3] lsl 8)
          lor Char.code hdr.[4]
        in
        if len < 0 || !pos + 5 + len + 8 > size then stop := true
        else begin
          let body = Bytes.to_string (Tdb_platform.Untrusted_store.read t.store ~off:(!pos + 5) ~len) in
          let sum = Bytes.to_string (Tdb_platform.Untrusted_store.read t.store ~off:(!pos + 5 + len) ~len:8) in
          if not (String.equal sum (checksum body)) then stop := true
          else begin
            (match decode_ops body with ops -> f ops | exception _ -> stop := true);
            if not !stop then pos := !pos + 5 + len + 8
          end
        end
      end
    end
  done;
  t.tail <- !pos

(** Truncate after a checkpoint has made the page image durable. *)
let reset t : unit =
  Tdb_platform.Untrusted_store.set_size t.store 0;
  Tdb_platform.Untrusted_store.sync t.store;
  t.tail <- 0

let size t = t.tail
