(** B+tree over the pager: the baseline's one-index-per-table access method
    (Berkeley DB's data model supports a single index per collection with
    immutable keys — paper Sections 7.1 and 8).

    Keys are compared with [String.compare] explicitly: node layout on disk
    depends on key order, so the ordering must stay monomorphic and stable
    (lint rule R1). *)

open Page

let malformed what = failwith ("Btree: malformed node: " ^ what)

let nth_kid kids slot =
  match List.nth_opt kids slot with Some kid -> kid | None -> malformed "kid slot out of range"

let rec search (pager : Pager.t) (page_id : int) (key : string) : string option =
  match (Pager.get pager page_id).Pager.node with
  | Leaf l -> List.assoc_opt key l.items
  | Internal n ->
      let rec pick keys kids =
        match (keys, kids) with
        | [], [ kid ] -> kid
        | k :: krest, kid :: kidrest -> if String.compare key k < 0 then kid else pick krest kidrest
        | _ -> malformed "keys/kids arity"
      in
      search pager (pick n.keys n.kids) key

(* split helpers *)
let split_at l n =
  let rec go acc i = function
    | rest when Int.equal i n -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (i + 1) rest
  in
  go [] 0 l

(** Insert/overwrite; returns [Some (sep, right_page)] on split. *)
let rec insert_rec pager page_id key value : (string * int) option =
  let frame = Pager.get pager page_id in
  match frame.Pager.node with
  | Leaf l ->
      let rec place = function
        | [] -> [ (key, value) ]
        | (k, v) :: rest ->
            let c = String.compare key k in
            if Int.equal c 0 then (key, value) :: rest
            else if c < 0 then (key, value) :: (k, v) :: rest
            else (k, v) :: place rest
      in
      l.items <- place l.items;
      Pager.mark_dirty frame;
      if estimate frame.Pager.node <= content_budget then None
      else begin
        let at = List.length l.items / 2 in
        let left, right = split_at l.items at in
        match right with
        | [] -> malformed "split produced empty right leaf"
        | (sep, _) :: _ ->
            let rf = Pager.alloc pager (Leaf { items = right; next = l.next }) in
            l.items <- left;
            l.next <- rf.Pager.page_id;
            Some (sep, rf.Pager.page_id)
      end
  | Internal n ->
      let rec pick i keys =
        match keys with
        | [] -> i
        | k :: rest -> if String.compare key k < 0 then i else pick (i + 1) rest
      in
      let slot = pick 0 n.keys in
      let child = nth_kid n.kids slot in
      (match insert_rec pager child key value with
      | None -> None
      | Some (sep, right) ->
          let ks1, ks2 = split_at n.keys slot in
          let kd1, kd2 = split_at n.kids (slot + 1) in
          n.keys <- ks1 @ (sep :: ks2);
          n.kids <- kd1 @ (right :: kd2);
          Pager.mark_dirty frame;
          if estimate frame.Pager.node <= content_budget then None
          else begin
            let at = List.length n.keys / 2 in
            let lk, rest = split_at n.keys at in
            match rest with
            | [] -> malformed "split produced empty separator list"
            | sep' :: rk ->
                let lkid, rkid = split_at n.kids (at + 1) in
                let rf = Pager.alloc pager (Internal { keys = rk; kids = rkid }) in
                n.keys <- lk;
                n.kids <- lkid;
                Some (sep', rf.Pager.page_id)
          end)

(** Insert into the tree rooted at [root]; returns the (possibly new) root
    page id. *)
let insert pager ~(root : int) (key : string) (value : string) : int =
  match insert_rec pager root key value with
  | None -> root
  | Some (sep, right) ->
      (Pager.alloc pager (Internal { keys = [ sep ]; kids = [ root; right ] })).Pager.page_id

(** Delete a key (lazy: no rebalancing). *)
let rec delete pager (page_id : int) (key : string) : unit =
  let frame = Pager.get pager page_id in
  match frame.Pager.node with
  | Leaf l ->
      if List.mem_assoc key l.items then begin
        l.items <- List.remove_assoc key l.items;
        Pager.mark_dirty frame
      end
  | Internal n ->
      let rec pick keys kids =
        match (keys, kids) with
        | [], [ kid ] -> kid
        | k :: krest, kid :: kidrest -> if String.compare key k < 0 then kid else pick krest kidrest
        | _ -> malformed "keys/kids arity"
      in
      delete pager (pick n.keys n.kids) key

(** In-order fold over [min, max] (inclusive; [None] = open). *)
let fold pager ~(root : int) ?(min : string option) ?(max : string option) ~(init : 'a)
    ~(f : 'a -> string -> string -> 'a) : 'a =
  (* descend to the first relevant leaf *)
  let rec seek page_id =
    match (Pager.get pager page_id).Pager.node with
    | Leaf _ -> page_id
    | Internal n ->
        let rec pick keys kids =
          match (keys, kids) with
          | [], [ kid ] -> kid
          | k :: krest, kid :: kidrest -> (
              match min with
              | Some m when String.compare m k >= 0 -> pick krest kidrest
              | _ -> kid)
          | _ -> malformed "keys/kids arity"
        in
        seek (pick n.keys n.kids)
  in
  let acc = ref init in
  let rec walk page_id =
    match (Pager.get pager page_id).Pager.node with
    | Internal _ -> malformed "leaf chain reached internal node"
    | Leaf l ->
        List.iter
          (fun (k, v) ->
            let below = match min with Some m -> String.compare k m < 0 | None -> false in
            let above = match max with Some m -> String.compare k m > 0 | None -> false in
            if above then raise Exit;
            if not below then acc := f !acc k v)
          l.items;
        if l.next <> 0 then walk l.next
  in
  (try walk (seek root) with Exit -> ());
  !acc
