(** B+tree over the pager: the baseline's one-index-per-table access
    method (Berkeley DB's single-index, immutable-key data model). Keys
    order lexicographically; deletion is lazy (no rebalancing). *)

val search : Pager.t -> int -> string -> string option

val insert : Pager.t -> root:int -> string -> string -> int
(** Insert/overwrite; returns the (possibly new) root page id. *)

val delete : Pager.t -> int -> string -> unit

val fold :
  Pager.t ->
  root:int ->
  ?min:string ->
  ?max:string ->
  init:'a ->
  f:('a -> string -> string -> 'a) ->
  'a
(** In-order fold over the inclusive bounds. *)
