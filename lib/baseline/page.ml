(** Page layout for the baseline engine.

    The baseline models Berkeley DB's architecture (paper Section 7): a
    conventional page-oriented store — fixed-size pages, a buffer pool, a
    write-ahead log — in contrast to TDB's log-structured variable-sized
    chunks. Pages hold B+tree nodes serialized into fixed slots; a page is
    the unit of I/O, so a 100-byte record update dirties (and eventually
    writes) a full page, which is precisely the overhead the paper measures
    against. *)

let page_size = 4096

(** Soft budget for node contents; nodes split before serialization could
    overflow the page. *)
let content_budget = page_size - 96

type node =
  | Leaf of { mutable items : (string * string) list (* sorted by key *); mutable next : int (* 0 = none *) }
  | Internal of { mutable keys : string list; mutable kids : int list (* |kids| = |keys|+1 *) }

(** Rough serialized-size estimate used for split decisions. *)
let estimate = function
  | Leaf l -> List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v + 8) 16 l.items
  | Internal n ->
      List.fold_left (fun acc k -> acc + String.length k + 8) 16 n.keys + (8 * List.length n.kids)

let serialize (n : node) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  (match n with
  | Leaf l ->
      P.byte w 1;
      P.uint w l.next;
      P.list w
        (fun w (k, v) ->
          P.string w k;
          P.string w v)
        l.items
  | Internal i ->
      P.byte w 2;
      P.list w P.string i.keys;
      P.list w (fun w kid -> P.uint w kid) i.kids);
  let body = P.contents w in
  if String.length body > page_size then
    failwith (Printf.sprintf "Page.serialize: node overflows page (%d bytes)" (String.length body));
  body ^ String.make (page_size - String.length body) '\000'

let deserialize (s : string) : node =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  match P.read_byte r with
  | 1 ->
      let next = P.read_uint r in
      let items =
        P.read_list r (fun r ->
            let k = P.read_string r in
            let v = P.read_string r in
            (k, v))
      in
      Leaf { items; next }
  | 2 ->
      let keys = P.read_list r P.read_string in
      let kids = P.read_list r P.read_uint in
      Internal { keys; kids }
  | b -> failwith (Printf.sprintf "Page.deserialize: bad node tag %d" b)
