(** Buffer pool for the baseline engine: caches deserialized pages, tracks
    dirty ones, steals (writes back) the LRU frame when over budget — the
    random in-place page writes the paper's comparison hinges on — and
    flushes everything at checkpoints. *)

type frame = {
  page_id : int;
  mutable node : Page.node;
  mutable dirty : bool;
  mutable lru_tick : int;
}

type t = {
  store : Tdb_platform.Untrusted_store.t;
  frames : (int, frame) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable next_page : int;
  mutable meta_tables : (string * int) list;
  mutable pages_written : int;
  mutable page_misses : int;
}

val meta_page_id : int
val create : Tdb_platform.Untrusted_store.t -> cache_pages:int -> t
val get : t -> int -> frame
val alloc : t -> Page.node -> frame
val mark_dirty : frame -> unit
val dirty_count : t -> int

val flush_all : t -> unit
(** Flush every dirty page + the meta page, then sync (checkpoint half). *)

val table_root : t -> string -> int option
val set_table_root : t -> string -> int -> unit
val data_size : t -> int
