(** Buffer pool for the baseline engine: caches deserialized pages, tracks
    dirty ones, and flushes them to the data file at checkpoints.

    Between checkpoints dirty pages are retained in memory (no-steal at
    checkpoint granularity), so the on-disk image always corresponds to the
    last checkpoint and the write-ahead log carries everything since. *)

type frame = {
  page_id : int;
  mutable node : Page.node;
  mutable dirty : bool;
  mutable lru_tick : int;
}

type t = {
  store : Tdb_platform.Untrusted_store.t;
  frames : (int, frame) Hashtbl.t;
  capacity : int; (* max clean frames kept *)
  mutable tick : int;
  mutable next_page : int; (* persisted in the meta page *)
  mutable meta_tables : (string * int) list; (* table -> root page *)
  mutable pages_written : int;
  mutable page_misses : int;
}

let meta_page_id = 0

let encode_meta (t : t) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.string w "BDBM";
  P.uint w t.next_page;
  P.list w
    (fun w (name, root) ->
      P.string w name;
      P.uint w root)
    t.meta_tables;
  let body = P.contents w in
  body ^ String.make (Page.page_size - String.length body) '\000'

let decode_meta (s : string) : int * (string * int) list =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  if not (String.equal (P.read_string r) "BDBM") then failwith "Pager: bad meta page";
  let next_page = P.read_uint r in
  let tables =
    P.read_list r (fun r ->
        let name = P.read_string r in
        let root = P.read_uint r in
        (name, root))
  in
  (next_page, tables)

let create (store : Tdb_platform.Untrusted_store.t) ~(cache_pages : int) : t =
  let t =
    {
      store;
      frames = Hashtbl.create 256;
      capacity = max 16 cache_pages;
      tick = 0;
      next_page = 1;
      meta_tables = [];
      pages_written = 0;
      page_misses = 0;
    }
  in
  if Tdb_platform.Untrusted_store.size store >= Page.page_size then begin
    let meta = Bytes.to_string (Tdb_platform.Untrusted_store.read store ~off:0 ~len:Page.page_size) in
    let next_page, tables = decode_meta meta in
    t.next_page <- next_page;
    t.meta_tables <- tables
  end;
  t

let write_page t (f : frame) =
  Tdb_platform.Untrusted_store.write t.store ~off:(f.page_id * Page.page_size) (Page.serialize f.node);
  f.dirty <- false;
  t.pages_written <- t.pages_written + 1

(* Strict LRU eviction: the least-recently-used frame goes, dirty or not;
   a dirty victim is written back in place first (the "steal" policy of a
   conventional engine — these are the random in-place page writes the
   paper's comparison hinges on). *)
let evict_clean t =
  if Hashtbl.length t.frames > t.capacity then begin
    let all = Hashtbl.fold (fun _ f acc -> f :: acc) t.frames [] in
    let sorted = List.sort (fun a b -> Int.compare a.lru_tick b.lru_tick) all in
    let excess = Hashtbl.length t.frames - t.capacity in
    List.iteri
      (fun i f ->
        if i < excess then begin
          if f.dirty then write_page t f;
          Hashtbl.remove t.frames f.page_id
        end)
      sorted
  end

let read_page t (page_id : int) : Page.node =
  Page.deserialize
    (Bytes.to_string
       (Tdb_platform.Untrusted_store.read t.store ~off:(page_id * Page.page_size) ~len:Page.page_size))

let get t (page_id : int) : frame =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
      f.lru_tick <- t.tick;
      f
  | None ->
      t.page_misses <- t.page_misses + 1;
      let f = { page_id; node = read_page t page_id; dirty = false; lru_tick = t.tick } in
      Hashtbl.replace t.frames page_id f;
      evict_clean t;
      f

let alloc t (node : Page.node) : frame =
  let page_id = t.next_page in
  t.next_page <- t.next_page + 1;
  t.tick <- t.tick + 1;
  let f = { page_id; node; dirty = true; lru_tick = t.tick } in
  Hashtbl.replace t.frames page_id f;
  f

let mark_dirty (f : frame) = f.dirty <- true
let dirty_count t = Hashtbl.fold (fun _ f acc -> if f.dirty then acc + 1 else acc) t.frames 0

(** Flush every dirty page and the meta page, then sync — the data-file
    half of a checkpoint. *)
let flush_all t : unit =
  Hashtbl.iter (fun _ f -> if f.dirty then write_page t f) t.frames;
  Tdb_platform.Untrusted_store.write t.store ~off:0 (encode_meta t);
  Tdb_platform.Untrusted_store.sync t.store;
  evict_clean t

let table_root t (name : string) : int option = List.assoc_opt name t.meta_tables

let set_table_root t (name : string) (root : int) : unit =
  t.meta_tables <- (name, root) :: List.remove_assoc name t.meta_tables

let data_size t = Tdb_platform.Untrusted_store.size t.store
