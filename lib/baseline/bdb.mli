(** The baseline embedded database engine — an architectural stand-in for
    Berkeley DB 3.x (paper Section 7), built from the classic ingredients:
    4 KiB pages, a buffer pool with LRU steal, per-table B+trees, a
    write-ahead log carrying before+after images with per-commit force,
    and checkpoints that flush dirty pages and truncate the log.

    It deliberately matches the data-model limits the paper leans on: one
    map per table, untyped byte keys/values, and no protection whatsoever
    against a malicious store. By default it never checkpoints on its own —
    Berkeley DB "does not checkpoint the log during the benchmark" — which
    is what makes its on-disk footprint balloon (Figure 11, right).

    Recovery caveat (benchmark comparator, not a product): redo-only
    logical recovery is exact when the pool has not stolen dirty pages
    since the last checkpoint; long benchmark runs steal. *)

type config = {
  cache_bytes : int;
  checkpoint_wal_bytes : int option;  (** auto-checkpoint threshold; [None] = manual only *)
}

val default_config : config

type t = {
  pager : Pager.t;
  wal : Wal.t;
  cfg : config;
  mutable commits : int;
  mutable checkpoints : int;
}
(** Exposed so the benchmark harness can read pool/WAL statistics. *)

val open_ :
  ?config:config ->
  data:Tdb_platform.Untrusted_store.t ->
  wal:Tdb_platform.Untrusted_store.t ->
  unit ->
  t
(** Open (or create), replaying every intact committed WAL record over the
    last checkpointed page image. *)

val checkpoint : t -> unit
(** Flush all dirty pages + the meta page, then truncate the log. *)

val close : t -> unit

(** {1 Transactions} *)

type txn

val begin_ : t -> txn
val put : txn -> table:string -> key:string -> value:string -> unit
val del : txn -> table:string -> key:string -> unit

val get : txn -> table:string -> key:string -> string option
(** Sees the transaction's own uncommitted writes. *)

val commit : ?durable:bool -> txn -> unit
(** WAL append (+force if [durable]) then apply to the page image. *)

val abort : txn -> unit

(** {1 Cursors and introspection} *)

val fold :
  t -> table:string -> ?min:string -> ?max:string -> f:('a -> string -> string -> 'a) -> 'a -> 'a
(** In-order fold over a table (inclusive bounds). *)

val db_size : t -> int
(** Data file plus log — the footprint Figure 11 reports. *)

val stats : t -> int * int * int
(** (commits, checkpoints, pages written). *)
