(** Write-ahead log for the baseline engine: one checksummed record per
    committed transaction carrying before+after images (as Berkeley DB's
    undo/redo records do — this reproduces its per-transaction log volume),
    forced on durable commit, truncated at checkpoints. *)

type op =
  | Put of { table : string; key : string; old : string option; value : string }
  | Del of { table : string; key : string; old : string option }

type t = { store : Tdb_platform.Untrusted_store.t; mutable tail : int; mutable records : int }

val create : Tdb_platform.Untrusted_store.t -> t
val append : t -> durable:bool -> op list -> unit

val replay : t -> f:(op list -> unit) -> unit
(** All intact records from the start; stops at the first torn record. *)

val reset : t -> unit
(** Truncate after a checkpoint made the page image durable. *)

val size : t -> int
