(** Page layout for the baseline engine: fixed 4 KiB pages holding
    serialized B+tree nodes — the unit of I/O, so a 100-byte record update
    eventually costs a full-page write (the overhead the paper measures
    against). *)

val page_size : int
val content_budget : int

type node =
  | Leaf of { mutable items : (string * string) list; mutable next : int (** 0 = none *) }
  | Internal of { mutable keys : string list; mutable kids : int list }

val estimate : node -> int
(** Serialized-size estimate for split decisions. *)

val serialize : node -> string
(** Exactly {!page_size} bytes. @raise Failure on overflow. *)

val deserialize : string -> node
