(** The baseline embedded database engine — an architectural stand-in for
    Berkeley DB 3.x (paper Section 7), built from the classic ingredients:
    4 KiB pages, a buffer pool, per-table B+trees, a write-ahead log with
    per-commit fsync, and periodic checkpoints that flush dirty pages and
    truncate the log.

    Matches Berkeley DB's *data model* limits the paper leans on: one map
    per table (single index, immutable keys), untyped byte keys/values, and
    no protection whatsoever against a malicious store.

    By default the engine does not checkpoint on its own — Berkeley DB
    "does not checkpoint the log during the benchmark" (paper Figure 11
    discussion), which is what makes its database footprint balloon; set
    [checkpoint_wal_bytes] to opt into automatic checkpoints. *)

type config = {
  cache_bytes : int;
  checkpoint_wal_bytes : int option; (* auto-checkpoint threshold; None = manual only *)
}

let default_config = { cache_bytes = 4 * 1024 * 1024; checkpoint_wal_bytes = None }

type t = {
  pager : Pager.t;
  wal : Wal.t;
  cfg : config;
  mutable commits : int;
  mutable checkpoints : int;
}

type txn = {
  env : t;
  mutable ops_rev : Wal.op list;
  overlay : (string * string, string option) Hashtbl.t; (* (table,key) -> value/deleted *)
  mutable active : bool;
}

let apply_op (t : t) (op : Wal.op) : unit =
  match op with
  | Wal.Put { table; key; value; _ } ->
      let root =
        match Pager.table_root t.pager table with
        | Some r -> r
        | None ->
            let f = Pager.alloc t.pager (Page.Leaf { items = []; next = 0 }) in
            Pager.set_table_root t.pager table f.Pager.page_id;
            f.Pager.page_id
      in
      let root' = Btree.insert t.pager ~root key value in
      if not (Int.equal root' root) then Pager.set_table_root t.pager table root'
  | Wal.Del { table; key; _ } -> (
      match Pager.table_root t.pager table with None -> () | Some root -> Btree.delete t.pager root key )

(** Open (or create) a database over a data store and a WAL store, running
    redo recovery: replay every intact committed transaction over the last
    checkpointed page image. *)
let open_ ?(config = default_config) ~(data : Tdb_platform.Untrusted_store.t)
    ~(wal : Tdb_platform.Untrusted_store.t) () : t =
  let pager = Pager.create data ~cache_pages:(config.cache_bytes / Page.page_size) in
  let w = Wal.create wal in
  let t = { pager; wal = w; cfg = config; commits = 0; checkpoints = 0 } in
  Wal.replay w ~f:(fun ops -> List.iter (apply_op t) ops);
  t

(** Checkpoint: flush all dirty pages + meta, then truncate the log. *)
let checkpoint (t : t) : unit =
  Pager.flush_all t.pager;
  Wal.reset t.wal;
  t.checkpoints <- t.checkpoints + 1

let close (t : t) : unit =
  checkpoint t;
  Tdb_platform.Untrusted_store.close t.pager.Pager.store;
  Tdb_platform.Untrusted_store.close t.wal.Wal.store

let begin_ (t : t) : txn = { env = t; ops_rev = []; overlay = Hashtbl.create 16; active = true }

let check_active (x : txn) = if not x.active then invalid_arg "Bdb: transaction is finished"

let tree_value (t : t) ~table ~key : string option =
  match Pager.table_root t.pager table with None -> None | Some root -> Btree.search t.pager root key

let put (x : txn) ~(table : string) ~(key : string) ~(value : string) : unit =
  check_active x;
  (* records must fit comfortably in a page (no overflow pages in this
     baseline); reject early rather than corrupt a B-tree node *)
  if String.length key + String.length value > Page.content_budget / 2 then
    invalid_arg "Bdb.put: record too large for a page";
  (* before-image logging, as Berkeley DB's undo/redo records do *)
  let old = tree_value x.env ~table ~key in
  x.ops_rev <- Wal.Put { table; key; old; value } :: x.ops_rev;
  Hashtbl.replace x.overlay (table, key) (Some value)

let del (x : txn) ~(table : string) ~(key : string) : unit =
  check_active x;
  let old = tree_value x.env ~table ~key in
  x.ops_rev <- Wal.Del { table; key; old } :: x.ops_rev;
  Hashtbl.replace x.overlay (table, key) None

let get (x : txn) ~(table : string) ~(key : string) : string option =
  check_active x;
  match Hashtbl.find_opt x.overlay (table, key) with
  | Some v -> v
  | None -> (
      match Pager.table_root x.env.pager table with
      | None -> None
      | Some root -> Btree.search x.env.pager root key )

let commit ?(durable = true) (x : txn) : unit =
  check_active x;
  x.active <- false;
  let ops = List.rev x.ops_rev in
  if ops <> [] then begin
    (* WAL first, then apply to the (in-memory) page image *)
    Wal.append x.env.wal ~durable ops;
    List.iter (apply_op x.env) ops;
    x.env.commits <- x.env.commits + 1;
    match x.env.cfg.checkpoint_wal_bytes with
    | Some limit when Wal.size x.env.wal > limit -> checkpoint x.env
    | _ -> ()
  end

let abort (x : txn) : unit =
  check_active x;
  x.active <- false

(** In-order fold over a table (cursor equivalent). The accumulator is the
    (positional) last argument so the optional bounds get erased at full
    application. *)
let fold (t : t) ~(table : string) ?min ?max ~(f : 'a -> string -> string -> 'a) (init : 'a) : 'a =
  match Pager.table_root t.pager table with
  | None -> init
  | Some root -> Btree.fold t.pager ~root ?min ?max ~init ~f

(** Total on-disk footprint: data file plus log (the paper's Figure 11
    "database size" for Berkeley DB includes its uncheckpointed log). *)
let db_size (t : t) : int =
  Pager.data_size t.pager + Tdb_platform.Untrusted_store.size t.wal.Wal.store

let stats (t : t) = (t.commits, t.checkpoints, t.pager.Pager.pages_written)
