(** Crashpoint sweep harness: replay a deterministic TPC-B-style chunk
    workload, crash it at every write/sync boundary (database store and
    one-way-counter store alike) under seeded subsets of surviving unsynced
    writes, reopen, and check invariant oracles against a shadow model —
    plus a bit-flip tamper sweep over the committed image. See DESIGN.md,
    "Crash model", for the admissibility rule the oracles enforce. *)

type trace_cfg = {
  accounts : int;
  tellers : int;
  branches : int;
  txns : int;
  durable_every : int;  (** every n-th transaction commits durably *)
  history_keep : int;  (** history chunks retained before deallocation *)
  epilogue_txns : int;  (** post-recovery phase-B transactions *)
  seed : string;
}

val default_trace : trace_cfg
val smoke_trace : trace_cfg

type violation = { v_run : string; v_kind : string; v_detail : string }

type crash_report = {
  boundaries : int;  (** write/sync boundaries in the recorded trace *)
  crashpoints : int;  (** boundaries actually swept (stride) *)
  seeds : int;
  runs : int;
  crashes : int;
  recoveries : int;
  violations : violation list;  (** empty on a healthy implementation *)
}

type tamper_report = {
  image_bytes : int;
  flips : int;
  detected : int;
  harmless : int;
  silent : int;  (** must be 0: a flip produced wrong data undetected *)
  silent_offsets : int list;
}

val sweep_crashpoints :
  ?progress:(int -> int -> unit) -> trace:trace_cfg -> seeds:int -> stride:int -> unit -> crash_report
(** Record the trace's boundary count [n], then for every [k < n] (step
    [stride]) and every seed: crash phase A at boundary [k], recover and
    check oracles, run the epilogue with a second seeded crashpoint,
    recover and check again, then probe usability. [progress] is called
    with [(k, n)] before each crashpoint. *)

val sweep_group_commit :
  ?progress:(int -> int -> unit) -> trace:trace_cfg -> seeds:int -> stride:int -> unit -> crash_report
(** Same sweep, but phase A replays the server's group-commit schedule:
    batches of nondurable session commits made durable by a staged
    barrier ({!Tdb_chunk.Chunk_store.barrier_begin} / [barrier_sync] /
    [barrier_finish]) with further commits landing inside the barrier's
    sync window — so every boundary of a coalesced multi-session barrier
    is crashed, including the window commits' interaction with segment
    reclamation. *)

val sweep_commit_flush :
  ?progress:(int -> int -> unit) -> trace:trace_cfg -> seeds:int -> stride:int -> unit -> crash_report
(** Same sweep, but phase A makes every commit a large durable
    multi-chunk commit, so each flush is one coalesced vectored write of
    many fragments (record headers, sealed payloads, chain markers). The
    fault plan decomposes vectored writes into per-fragment boundaries,
    so this sweep crashes at every fragment boundary of a coalesced
    commit flush — any fragment-suffix loss must recover as an ordinary
    torn tail. *)

val sweep_demote :
  ?progress:(int -> int -> unit) -> trace:trace_cfg -> seeds:int -> stride:int -> unit -> crash_report
(** Same sweep over a {e tiered} store ([Config.tiers] forced to at least
    2, deeper if TDB_TIERS asks for more): phase A churns a Zipf-style
    hot head over a settled population and drives explicit
    {!Tdb_chunk.Chunk_store.clean} passes, so cold survivors are
    re-appended one tier colder on every pass. With stride 1 this crashes
    at every I/O boundary of a demotion pass — mid-relocation, between a
    survivor's re-append and its location-map update, and inside the
    checkpoint sealing the pass. Relocation is logical-state-neutral
    (chunk versions are preserved), so the unchanged durability oracle
    doubles as the demotion-correctness oracle. *)

val sweep_replica :
  ?progress:(int -> int -> unit) -> trace:trace_cfg -> seeds:int -> stride:int -> unit -> crash_report
(** Replication-ingest sweep: build a primary archive (full, incrementals,
    a mid-sequence full, more incrementals), then replay it into a fresh
    follower through {!Tdb_backup.Backup_store.apply_stream} and crash the
    follower's database and counter stores at every write/sync boundary of
    the ingest. The oracle enforces the staged-apply guarantee: the
    recovered follower must sit at exactly the backup boundary before or
    after the stream being applied — chain state and chunk contents
    agreeing — and the remaining streams must then re-apply to
    convergence with the primary. *)

val sweep_shard_2pc :
  ?progress:(int -> int -> unit) ->
  ?shards:int ->
  trace:trace_cfg ->
  seeds:int ->
  stride:int ->
  unit ->
  crash_report
(** Cross-shard 2PC sweep: the workload runs through a
    {!Tdb_chunk.Shard_store} router over [shards] shards (default:
    [max 2 TDB_SHARDS]) — [shards] database stores and [shards] counter
    stores instrumented by one shared fault plan — and most transactions
    transfer value between two shards with a durable commit, driving the
    cross-shard two-phase path. With stride 1 the sweep crashes at every
    store boundary between prepare and commit: inside a participant's
    durable prepare, during the coordinator's decision write, between
    apply commits, and in cleanup. After recovery all shards must agree
    on each transaction's outcome — the recovered global state must sit
    at one admissible commit boundary (a batch half-applied on one shard
    matches none and is reported), with no false tampering and no
    per-shard counter rollback. *)

val sweep_tamper : ?stride:int -> ?mask:int -> trace:trace_cfg -> unit -> tamper_report
(** Build a committed image from the trace, then XOR [mask] into every
    [stride]-th byte (one at a time): each flip must be detected
    ([Tamper_detected] / [Recovery_failed]) or harmless (all reads return
    the original values) — never silently wrong data. *)

val sweep_replica_tamper : ?stride:int -> ?mask:int -> trace:trace_cfg -> unit -> tamper_report
(** Stream-tamper sweep for replication: XOR [mask] into every
    [stride]-th byte of each primary archive stream (and truncate each
    stream at four prefix lengths) before feeding it to a follower
    positioned just before that stream. Every damaged frame must be
    rejected with the follower still readable at its previous boundary,
    after which the genuine sequence must still apply to convergence —
    never silently wrong data. *)

val sweep_shard_tamper :
  ?stride:int -> ?mask:int -> ?shards:int -> trace:trace_cfg -> unit -> tamper_report
(** Tamper companion for the shard sweep, in two parts: bit-flips over
    each shard's cleanly-closed image (covering the decision-table chunk,
    its chain MAC and the width metadata at rest), then bit-flips over
    images crashed mid-2PC with every write retained — live staged
    prepares and decision entries. A flip must be detected or leave
    recovery at an admissible commit boundary (commit or presumed abort
    for a transaction that never returned); steering recovery to any
    other state is silent tampering and must never happen. *)

val json_summary :
  ?group_commit:crash_report ->
  ?commit_flush:crash_report ->
  ?demote:crash_report ->
  ?replica:crash_report ->
  ?replica_tamper:tamper_report ->
  ?shard_2pc:crash_report ->
  ?shard_tamper:tamper_report ->
  trace:trace_cfg ->
  crash:crash_report ->
  tamper:tamper_report ->
  unit ->
  string
(** Machine-readable summary for the [tdb_crashfuzz] CLI.
    [group_commit], when present, is the {!sweep_group_commit} report;
    [commit_flush] the {!sweep_commit_flush} report; [demote] the
    {!sweep_demote} report; [replica] the
    {!sweep_replica} report and [replica_tamper] its tamper companion;
    [shard_2pc] the {!sweep_shard_2pc} report and [shard_tamper] its
    tamper companion. *)
