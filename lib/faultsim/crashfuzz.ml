(** Crashpoint sweep harness (see DESIGN.md, "Crash model").

    The harness replays a deterministic TPC-B-style chunk workload and
    crashes it — via {!Fault_plan} — at {e every} write/sync boundary of
    both the database store and the one-way-counter store, under several
    seeded choices of which unsynced writes survive
    ({!Tdb_platform.Untrusted_store.Mem.crash}). After each crash it
    reopens the database and checks invariant oracles against a shadow
    model:

    - {b durability}: the recovered chunk state equals the shadow state at
      some admissible commit boundary — no earlier than the last commit
      known durable (durable commit returned, or a checkpoint was observed
      after a nondurable commit returned), no later than the last commit
      issued; in particular every durably committed batch is fully visible
      and every batch is all-or-nothing;
    - {b honesty}: an honest crash never raises [Tamper_detected] (no
      false tampering) and never loses the anchor ([Recovery_failed]);
    - {b counter monotonicity}: the one-way counter never reads below the
      highest value previously observed after a completed operation;
    - {b usability}: after recovery the store accepts a write + durable
      commit and its utilization accounting stays within bounds.

    Each crashed run continues into a second phase: an epilogue workload
    against the recovered store with a second seeded crashpoint, which
    exercises the crash behaviour of freshly-reopened state (notably the
    counter slot-targeting window). A companion {!sweep_tamper} bit-flips
    every stride-th byte of a committed image and checks the
    detected/harmless/silent trichotomy: silent wrong data must never
    happen. *)

module US = Tdb_platform.Untrusted_store
module OWC = Tdb_platform.One_way_counter
module Drbg = Tdb_crypto.Drbg
open Tdb_chunk

(* ------------------------------------------------------------------ *)
(* Configuration *)

type trace_cfg = {
  accounts : int;
  tellers : int;
  branches : int;
  txns : int;
  durable_every : int;  (** every n-th transaction commits durably *)
  history_keep : int;  (** history chunks retained before deallocation *)
  epilogue_txns : int;  (** post-recovery phase-B transactions *)
  seed : string;
}

let default_trace =
  {
    accounts = 12;
    tellers = 4;
    branches = 2;
    txns = 24;
    durable_every = 4;
    history_keep = 10;
    epilogue_txns = 6;
    seed = "tdb-crashfuzz";
  }

let smoke_trace = { default_trace with accounts = 6; tellers = 2; branches = 1; txns = 8; epilogue_txns = 4 }

(* Small segments force chained sub-commits and frequent checkpoints;
   Aes128/Sha1 keeps thousands of runs fast. *)
let store_config =
  {
    Config.default with
    Config.cipher = Config.Aes128;
    hash = Config.Sha1;
    segment_size = 2048;
    anchor_slot_size = 1024;
    initial_segments = 4;
    checkpoint_every = 8;
    checkpoint_residual_bytes = 4 * 2048;
    clean_batch = 2;
  }

(* ------------------------------------------------------------------ *)
(* Reports *)

type violation = { v_run : string; v_kind : string; v_detail : string }

type crash_report = {
  boundaries : int;  (** write/sync boundaries in the recorded trace *)
  crashpoints : int;  (** boundaries actually swept (stride) *)
  seeds : int;
  runs : int;
  crashes : int;
  recoveries : int;
  violations : violation list;
}

type tamper_report = {
  image_bytes : int;
  flips : int;
  detected : int;
  harmless : int;
  silent : int;  (** must be 0: a flip produced wrong data without detection *)
  silent_offsets : int list;
}

(* ------------------------------------------------------------------ *)
(* Shadow model *)

type chunk_state = (int, string) Hashtbl.t

type shadow = {
  model : chunk_state;  (* live state, including the open batch *)
  all_cids : (int, unit) Hashtbl.t;  (* every id ever written, across phases *)
  states : (int, chunk_state) Hashtbl.t;  (* snapshot at each issued commit *)
  mutable issued : int;  (* commits issued since the base state *)
  mutable durable_lo : int;  (* highest commit index known durable *)
}

let shadow_create () =
  { model = Hashtbl.create 64; all_cids = Hashtbl.create 64; states = Hashtbl.create 16; issued = 0; durable_lo = 0 }

let shadow_write sh cid data =
  Hashtbl.replace sh.model cid data;
  Hashtbl.replace sh.all_cids cid ()

let shadow_dealloc sh cid = Hashtbl.remove sh.model cid

(* Declare the current model state the durable base (index 0). *)
let shadow_base sh =
  Hashtbl.reset sh.states;
  Hashtbl.replace sh.states 0 (Hashtbl.copy sh.model);
  sh.issued <- 0;
  sh.durable_lo <- 0

(* Reset the base to a previously snapshotted state (post-recovery). *)
let shadow_reset_to sh d =
  (match Hashtbl.find_opt sh.states d with
  | Some st ->
      Hashtbl.reset sh.model;
      Hashtbl.iter (fun k v -> Hashtbl.replace sh.model k v) st
  | None -> ());
  shadow_base sh

exception Harness_violation of string * string

(* Commit the open batch, snapshotting the shadow at the commit boundary
   and tracking which boundary is known durable. A checkpoint observed
   after a nondurable commit promotes every earlier commit to durable
   (conservatively: up to the previous boundary — the checkpoint may have
   run before this batch was appended). *)
let commit_shadow ~durable ~cs ~sh ~cp_seen ~ctr ~hw_floor =
  sh.issued <- sh.issued + 1;
  Hashtbl.replace sh.states sh.issued (Hashtbl.copy sh.model);
  Chunk_store.commit ~durable cs;
  if durable then begin
    sh.durable_lo <- sh.issued;
    let hw = OWC.read ctr in
    if Int64.compare hw !hw_floor > 0 then hw_floor := hw
  end
  else begin
    let cps = (Chunk_store.stats cs).Chunk_store.checkpoints in
    if cps > !cp_seen then begin
      let c = sh.issued - 1 in
      if c > sh.durable_lo then sh.durable_lo <- c
    end
  end;
  cp_seen := (Chunk_store.stats cs).Chunk_store.checkpoints

(* ------------------------------------------------------------------ *)
(* Workload *)

let record_len = 96

let pad s =
  let n = String.length s in
  if n >= record_len then String.sub s 0 record_len else s ^ String.make (record_len - n) '.'

let check_read cs sh cid =
  let got = Chunk_store.read cs cid in
  match Hashtbl.find_opt sh.model cid with
  | Some want when String.equal want got -> ()
  | _ -> raise (Harness_violation ("live-read-mismatch", Printf.sprintf "chunk %d" cid))

(* Phase A: bulk load (one durable commit, chained into sub-commits by the
   small segment budget) followed by TPC-B-style transactions — update an
   account, a teller and a branch record, append a history chunk, retire
   old history. Raises [Fault_plan.Crash_point] when the plan fires. *)
let run_phase_a ~trace ~cs ~sh ~rng ~cp_seen ~ctr ~hw_floor =
  let n_base = trace.accounts + trace.tellers + trace.branches in
  let base = Array.init n_base (fun _ -> Chunk_store.allocate cs) in
  Array.iteri
    (fun i cid ->
      let data = pad (Printf.sprintf "base:%03d:init:%d" i (Drbg.int rng 1_000_000)) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data)
    base;
  commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor;
  let history = Queue.create () in
  for i = 1 to trace.txns do
    let a = base.(Drbg.int rng trace.accounts) in
    let t = base.(trace.accounts + Drbg.int rng trace.tellers) in
    let b = base.(trace.accounts + trace.tellers + Drbg.int rng trace.branches) in
    let delta = Drbg.int rng 10_000 in
    List.iter
      (fun cid ->
        check_read cs sh cid;
        let data = pad (Printf.sprintf "upd:%03d:txn:%04d:delta:%d" cid i delta) in
        Chunk_store.write cs cid data;
        shadow_write sh cid data)
      [ a; t; b ];
    let h = Chunk_store.allocate cs in
    let hdata = pad (Printf.sprintf "hist:%04d:%d:%d:%d:%d" i a t b delta) in
    Chunk_store.write cs h hdata;
    shadow_write sh h hdata;
    Queue.add h history;
    if Queue.length history > trace.history_keep then begin
      let old = Queue.pop history in
      Chunk_store.deallocate cs old;
      shadow_dealloc sh old
    end;
    let durable = Int.equal (i mod trace.durable_every) 0 in
    commit_shadow ~durable ~cs ~sh ~cp_seen ~ctr ~hw_floor
  done

(* Group-commit phase A: batches of nondurable session commits made
   durable by a *staged* barrier ({!Chunk_store.barrier_begin} /
   [barrier_sync] / [barrier_finish]), with further commits landing
   inside the sync window and between sync and finish — the exact
   interleaving the server's group-commit coordinator produces, replayed
   deterministically so the sweep can crash at every boundary of a
   coalesced multi-session barrier. Window commits land after the
   barrier's commit record, so they are not covered by it: [durable_lo]
   advances only to the commits issued before [barrier_begin]. This also
   exercises the barrier's restricted segment reclamation — a window
   commit may obsolete a chunk version that recovery (to the barrier
   point) still needs. *)
let run_phase_gc ~trace ~cs ~sh ~rng ~cp_seen ~ctr ~hw_floor =
  let n_base = trace.accounts + trace.tellers + trace.branches in
  let base = Array.init n_base (fun _ -> Chunk_store.allocate cs) in
  Array.iteri
    (fun i cid ->
      let data = pad (Printf.sprintf "base:%03d:init:%d" i (Drbg.int rng 1_000_000)) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data)
    base;
  commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor;
  (* Two segment-sized chunks: rewriting one obsoletes (almost) a whole
     segment at once, so window commits regularly empty segments — the
     reclamation case the barrier's eligible set must exclude. *)
  let fat_len = store_config.Config.segment_size * 3 / 4 in
  let fat = Array.init 2 (fun _ -> Chunk_store.allocate cs) in
  let fat_data i v =
    let s = Printf.sprintf "fat:%d:v:%04d:" i v in
    s ^ String.make (fat_len - String.length s) (Char.chr (Char.code 'a' + (v mod 26)))
  in
  Array.iteri
    (fun i cid ->
      Chunk_store.write cs cid (fat_data i 0);
      shadow_write sh cid (fat_data i 0))
    fat;
  commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor;
  let txn = ref 0 in
  let session_commit tag =
    incr txn;
    if Int.equal (Drbg.int rng 3) 0 then begin
      let i = Drbg.int rng (Array.length fat) in
      check_read cs sh fat.(i);
      let data = fat_data i !txn in
      Chunk_store.write cs fat.(i) data;
      shadow_write sh fat.(i) data
    end
    else begin
      let cid = base.(Drbg.int rng n_base) in
      check_read cs sh cid;
      let data = pad (Printf.sprintf "%s:%03d:txn:%04d:%d" tag cid !txn (Drbg.int rng 10_000)) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data
    end;
    commit_shadow ~durable:false ~cs ~sh ~cp_seen ~ctr ~hw_floor
  in
  while !txn < trace.txns do
    (* sessions that committed before the leader took the barrier *)
    for _ = 0 to Drbg.int rng 3 do
      session_commit "gc"
    done;
    let covered = sh.issued in
    let tok = Chunk_store.barrier_begin cs in
    (* sessions landing while the leader syncs: after the barrier record.
       Weighted heavy so window commits regularly empty a segment — the
       reclamation case the barrier's eligible set must exclude. *)
    for _ = 1 to Drbg.int rng 6 do
      session_commit "win"
    done;
    Chunk_store.barrier_sync cs tok;
    (* the state lock can be retaken between sync and finish *)
    if Int.equal (Drbg.int rng 2) 0 then session_commit "gap";
    Chunk_store.barrier_finish cs tok;
    if covered > sh.durable_lo then sh.durable_lo <- covered;
    let hw = OWC.read ctr in
    if Int64.compare hw !hw_floor > 0 then hw_floor := hw;
    cp_seen := (Chunk_store.stats cs).Chunk_store.checkpoints
  done

(* Commit-flush phase A: every commit is a *large* durable commit — a
   batch of chunk writes that the log's tail buffer coalesces into a
   single vectored flush of many fragments (record headers, sealed
   payloads, Next_segment markers). [Fault_plan.instrument] decomposes
   each vectored write back into per-fragment crash boundaries, so with
   stride 1 this sweep crashes at every fragment boundary of a coalesced
   commit flush: between a record's header and its payload, between
   adjacent records, and at the chain markers of a flush that spills
   across segments. Recovery must treat any fragment-suffix loss as an
   ordinary torn tail. *)
let run_phase_flush ~trace ~cs ~sh ~rng ~cp_seen ~ctr ~hw_floor =
  let n_base = trace.accounts + trace.tellers + trace.branches in
  let base = Array.init n_base (fun _ -> Chunk_store.allocate cs) in
  Array.iteri
    (fun i cid ->
      let data = pad (Printf.sprintf "base:%03d:init:%d" i (Drbg.int rng 1_000_000)) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data)
    base;
  commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor;
  let fresh = Queue.create () in
  for i = 1 to trace.txns do
    (* rewrite several base chunks: many records in one commit flush *)
    for j = 1 to 3 + Drbg.int rng 3 do
      let cid = base.(Drbg.int rng n_base) in
      check_read cs sh cid;
      let data = pad (Printf.sprintf "flu:%03d:txn:%04d:%d:%d" cid i j (Drbg.int rng 10_000)) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data
    done;
    (* allocate a few new chunks and retire old ones, so flushes also
       carry allocation records and the cleaner keeps segments moving *)
    for j = 1 to 2 + Drbg.int rng 2 do
      let c = Chunk_store.allocate cs in
      let data = pad (Printf.sprintf "flunew:%04d:%d" i j) in
      Chunk_store.write cs c data;
      shadow_write sh c data;
      Queue.add c fresh
    done;
    while Queue.length fresh > trace.history_keep do
      let old = Queue.pop fresh in
      Chunk_store.deallocate cs old;
      shadow_dealloc sh old
    done;
    (* all-durable: each iteration is exactly one coalesced commit flush *)
    commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor
  done

(* Phase B: generic epilogue against whatever state recovery produced —
   rewrite existing chunks, allocate new ones, occasionally deallocate. *)
let run_epilogue ~trace ~cs ~sh ~rng ~cp_seen ~ctr ~hw_floor =
  for i = 1 to trace.epilogue_txns do
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) sh.model [] in
    let keys = Array.of_list (List.sort Int.compare keys) in
    let nkeys = Array.length keys in
    if nkeys > 0 then begin
      let cid = keys.(Drbg.int rng nkeys) in
      check_read cs sh cid;
      let data = pad (Printf.sprintf "epi:%03d:txn:%04d" cid i) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data
    end;
    let c = Chunk_store.allocate cs in
    let data = pad (Printf.sprintf "epinew:%04d" i) in
    Chunk_store.write cs c data;
    shadow_write sh c data;
    if nkeys > 4 && Int.equal (Drbg.int rng 4) 0 then begin
      let victim = keys.(Drbg.int rng nkeys) in
      if Hashtbl.mem sh.model victim then begin
        Chunk_store.deallocate cs victim;
        shadow_dealloc sh victim
      end
    end;
    (* All-durable: the epilogue exists to exercise the freshly-reopened
       store's durable-commit path, counter increments included. *)
    commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor
  done

(* Demotion phase A: drive explicit cleaning passes over a tiered store
   ([demote_config] forces [tiers >= 2]) so the sweep crashes at every
   I/O boundary of a demotion pass — mid-relocation, between a survivor's
   re-append and the map update, and inside the checkpoint that seals the
   pass. A skewed churn keeps hot-tier segments garbage-heavy while the
   cold tail survives each pass, so every {!Chunk_store.clean} call
   re-appends survivors one tier colder. [clean] is logical-state-neutral
   (chunk versions are preserved across relocation), so the shadow
   oracles apply unchanged; it ends in a checkpoint, which promotes every
   issued commit to durable and bumps the one-way counter. *)
let run_phase_demote ~trace ~cs ~sh ~rng ~cp_seen ~ctr ~hw_floor =
  let n_base = trace.accounts + trace.tellers + trace.branches in
  let base = Array.init n_base (fun _ -> Chunk_store.allocate cs) in
  Array.iteri
    (fun i cid ->
      let data = pad (Printf.sprintf "base:%03d:init:%d" i (Drbg.int rng 1_000_000)) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data)
    base;
  commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor;
  let clean_now () =
    Chunk_store.clean ~max_segments:store_config.Config.clean_batch cs;
    (* checkpoint + pass + checkpoint: everything issued is now durable *)
    sh.durable_lo <- sh.issued;
    let hw = OWC.read ctr in
    if Int64.compare hw !hw_floor > 0 then hw_floor := hw;
    cp_seen := (Chunk_store.stats cs).Chunk_store.checkpoints
  in
  (* the hot head: overwrites concentrate here, so the segments holding
     the cold tail accumulate garbage around live survivors — the exact
     shape a demotion pass relocates *)
  let hot = max 1 (n_base / 3) in
  for i = 1 to trace.txns do
    for j = 1 to 2 + Drbg.int rng 3 do
      let cid = base.(Drbg.int rng hot) in
      check_read cs sh cid;
      let data = pad (Printf.sprintf "dem:%03d:txn:%04d:%d:%d" cid i j (Drbg.int rng 10_000)) in
      Chunk_store.write cs cid data;
      shadow_write sh cid data
    done;
    let durable = Int.equal (i mod trace.durable_every) 0 in
    commit_shadow ~durable ~cs ~sh ~cp_seen ~ctr ~hw_floor;
    if Int.equal (i mod 3) 0 then clean_now ()
  done

(* ------------------------------------------------------------------ *)
(* Oracles *)

let add violations run kind detail = violations := { v_run = run; v_kind = kind; v_detail = detail } :: !violations

(* Does the recovered store hold exactly the chunk state [st]?  Every id
   ever used must either match [st] or be unreadable when absent from
   [st]; a [Tamper_detected] anywhere is reported upward (honest runs must
   never see one). [read] abstracts the store so the same oracle serves
   both a single chunk store and a shard router. *)
let state_matches_read ~(read : int -> string) st all_cids =
  Hashtbl.fold
    (fun cid () acc ->
      match acc with
      | Error _ | Ok false -> acc
      | Ok true -> (
          match Hashtbl.find_opt st cid with
          | Some want -> (
              match read cid with
              | got -> Ok (String.equal got want)
              | exception Types.Not_written _ -> Ok false
              | exception Types.Not_allocated _ -> Ok false
              | exception Types.Tamper_detected m -> Error m)
          | None -> (
              match read cid with
              | _ -> Ok false
              | exception Types.Not_written _ -> Ok true
              | exception Types.Not_allocated _ -> Ok true
              | exception Types.Tamper_detected m -> Error m)))
    all_cids (Ok true)

let state_matches cs st all_cids = state_matches_read ~read:(Chunk_store.read cs) st all_cids

(* Try every admissible boundary, newest first. *)
let match_candidates_read ~read sh =
  let rec go d =
    if d < sh.durable_lo then Error "recovered state matches no admissible commit boundary"
    else
      match Hashtbl.find_opt sh.states d with
      | None -> go (d - 1)
      | Some st -> (
          match state_matches_read ~read st sh.all_cids with
          | Ok true -> Ok d
          | Ok false -> go (d - 1)
          | Error m -> Error ("tamper during state check: " ^ m))
  in
  go sh.issued

let match_candidates cs sh = match_candidates_read ~read:(Chunk_store.read cs) sh

(* Reopen after a crash and run the recovery oracles. Returns the reopened
   store (with its counter) unless reopening itself failed. *)
let reopen_and_check ~config ~run ~violations ~env_db ~env_ctr ~secret ~sh ~hw_floor =
  match
    let ctr = OWC.open_store env_ctr in
    let cs = Chunk_store.open_existing ~config ~secret ~counter:ctr env_db in
    (ctr, cs)
  with
  | exception Types.Tamper_detected m -> add violations run "false-tamper" m; None
  | exception Chunk_store.Recovery_failed m -> add violations run "recovery-failed" m; None
  | exception e -> add violations run "recovery-exception" (Printexc.to_string e); None
  | ctr, cs ->
      let hw = OWC.read ctr in
      if Int64.compare hw !hw_floor < 0 then
        add violations run "counter-rollback" (Printf.sprintf "read %Ld, floor %Ld" hw !hw_floor);
      if Int64.compare hw !hw_floor > 0 then hw_floor := hw;
      (match match_candidates cs sh with
      | Ok d -> shadow_reset_to sh d
      | Error detail ->
          add violations run "durability-violation" detail;
          (* keep going from the live model so later oracles still run *)
          shadow_base sh);
      Some (ctr, cs)

(* Post-recovery usability probe: the store must accept a write + durable
   commit, serve it back, and keep its utilization accounting sane. *)
let probe ~run ~violations ~cs ~sh ~cp_seen ~ctr ~hw_floor =
  match
    let c = Chunk_store.allocate cs in
    let data = pad (Printf.sprintf "probe:%06d" c) in
    Chunk_store.write cs c data;
    shadow_write sh c data;
    commit_shadow ~durable:true ~cs ~sh ~cp_seen ~ctr ~hw_floor;
    let got = Chunk_store.read cs c in
    if not (String.equal got data) then add violations run "probe-read-mismatch" (Printf.sprintf "chunk %d" c);
    let u = Chunk_store.utilization cs in
    if u < 0.0 || u > 1.0001 then add violations run "utilization-out-of-range" (Printf.sprintf "%f" u);
    let live = Chunk_store.live_bytes cs and cap = Chunk_store.capacity cs in
    if live < 0 || live > cap then
      add violations run "accounting-inconsistent" (Printf.sprintf "live %d capacity %d" live cap)
  with
  | () -> ()
  | exception e -> add violations run "probe-exception" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Sweep driver *)

type env = {
  db_mem : US.Mem.handle;
  db : US.t;  (* instrumented *)
  ctr_mem : US.Mem.handle;
  ctr_store : US.t;  (* instrumented *)
  plan : Fault_plan.t;
  secret : Tdb_platform.Secret_store.t;
}

let make_env () =
  let plan = Fault_plan.create () in
  let db_mem, db_raw = US.open_mem () in
  let ctr_mem, ctr_raw = US.open_mem () in
  {
    db_mem;
    db = Fault_plan.instrument plan db_raw;
    ctr_mem;
    ctr_store = Fault_plan.instrument plan ctr_raw;
    plan;
    secret = Tdb_platform.Secret_store.of_seed "crashfuzz-device";
  }

let persist_probs = [| 0.0; 1.0; 0.5; 0.25; 0.75; 0.1; 0.9; 0.35 |]
let tears = [| Fault_plan.Skip; Fault_plan.Torn; Fault_plan.Applied |]

(* Run the trace once with the plan armed past the horizon to count the
   write/sync boundaries of the armed region. *)
let record_boundaries ~config ~phase_a ~trace =
  let env = make_env () in
  let sh = shadow_create () in
  let rng = Drbg.create ~seed:(trace.seed ^ ":trace") in
  let ctr = OWC.open_store env.ctr_store in
  let cs = Chunk_store.create ~config ~secret:env.secret ~counter:ctr env.db in
  shadow_base sh;
  Fault_plan.arm env.plan ~at:max_int ~tear:Fault_plan.Skip;
  let hw_floor = ref (OWC.read ctr) in
  phase_a ~trace ~cs ~sh ~rng ~cp_seen:(ref 0) ~ctr ~hw_floor;
  let n = Fault_plan.ops env.plan in
  Fault_plan.reset env.plan;
  Chunk_store.close cs;
  n

(* One sweep cell: crash phase A at boundary [k], recover under the
   seeded persistence subset, then run the epilogue with a second seeded
   crashpoint and recover again. *)
let one_run ~config ~phase_a ~trace ~violations ~crashes ~recoveries ~k ~seed_idx =
  let env = make_env () in
  let sh = shadow_create () in
  let trace_rng = Drbg.create ~seed:(trace.seed ^ ":trace") in
  let fault_rng = Drbg.create ~seed:(Printf.sprintf "%s:fault:%d:%d" trace.seed k seed_idx) in
  let persist_prob = persist_probs.(seed_idx mod Array.length persist_probs) in
  let crash_rng n = Drbg.int fault_rng n in
  let run = Printf.sprintf "k=%d seed=%d" k seed_idx in
  let ctr0 = OWC.open_store env.ctr_store in
  let cs0 = Chunk_store.create ~config ~secret:env.secret ~counter:ctr0 env.db in
  shadow_base sh;
  let hw_floor = ref (OWC.read ctr0) in
  let cp_seen = ref 0 in
  Fault_plan.arm env.plan ~at:k ~tear:tears.(Drbg.int fault_rng (Array.length tears));
  let finish_on cs ctr cp_seen = probe ~run:(run ^ ":probe") ~violations ~cs ~sh ~cp_seen ~ctr ~hw_floor; Chunk_store.close cs in
  let crash_and_check ~phase =
    Fault_plan.reset env.plan;
    US.Mem.crash ~persist_prob ~rng:crash_rng env.db_mem;
    US.Mem.crash ~persist_prob ~rng:crash_rng env.ctr_mem;
    let r =
      reopen_and_check ~config ~run:(run ^ ":" ^ phase) ~violations ~env_db:env.db
        ~env_ctr:env.ctr_store ~secret:env.secret ~sh ~hw_floor
    in
    if Option.is_some r then incr recoveries;
    r
  in
  match phase_a ~trace ~cs:cs0 ~sh ~rng:trace_rng ~cp_seen ~ctr:ctr0 ~hw_floor with
  | () ->
      (* crashpoint beyond the trace: close cleanly and verify the full state *)
      Fault_plan.reset env.plan;
      Chunk_store.close cs0;
      shadow_base sh;
      (match
         reopen_and_check ~config ~run:(run ^ ":clean") ~violations ~env_db:env.db
           ~env_ctr:env.ctr_store ~secret:env.secret ~sh ~hw_floor
       with
      | Some (ctr, cs) -> finish_on cs ctr (ref 0)
      | None -> ())
  | exception Harness_violation (kind, detail) -> add violations run kind detail
  | exception Fault_plan.Crash_point -> (
      incr crashes;
      match crash_and_check ~phase:"A" with
      | None -> ()
      | Some (ctr1, cs1) -> (
          let cp_seen1 = ref 0 in
          (* Odd seeds focus the second crashpoint on the start of the
             epilogue with a torn tear: the first durable commit after a
             reopen is where the counter's slot-targeting protocol is most
             exposed (a fresh handle has not yet written either slot). *)
          let counter_focus = Int.equal (seed_idx land 1) 1 in
          let k2 = Drbg.int fault_rng (if counter_focus then 24 else 120) in
          let tear2 =
            if counter_focus then Fault_plan.Torn else tears.(Drbg.int fault_rng (Array.length tears))
          in
          Fault_plan.arm env.plan ~at:k2 ~tear:tear2;
          match run_epilogue ~trace ~cs:cs1 ~sh ~rng:trace_rng ~cp_seen:cp_seen1 ~ctr:ctr1 ~hw_floor with
          | () -> (
              Fault_plan.reset env.plan;
              Chunk_store.close cs1;
              shadow_base sh;
              match
                reopen_and_check ~config ~run:(run ^ ":B-clean") ~violations ~env_db:env.db
                  ~env_ctr:env.ctr_store ~secret:env.secret ~sh ~hw_floor
              with
              | Some (ctr, cs) -> finish_on cs ctr (ref 0)
              | None -> ())
          | exception Harness_violation (kind, detail) -> add violations (run ^ ":B") kind detail
          | exception Fault_plan.Crash_point -> (
              incr crashes;
              match crash_and_check ~phase:"B" with
              | Some (ctr, cs) -> finish_on cs ctr (ref 0)
              | None -> ())
          | exception e -> add violations (run ^ ":B") "workload-exception" (Printexc.to_string e)))
  | exception e -> add violations run "workload-exception" (Printexc.to_string e)

let sweep ?(config = store_config) ~phase_a ?(progress = fun _ _ -> ()) ~trace ~seeds ~stride () =
  let boundaries = record_boundaries ~config ~phase_a ~trace in
  let violations = ref [] in
  let runs = ref 0 and crashes = ref 0 and recoveries = ref 0 and crashpoints = ref 0 in
  let k = ref 0 in
  while !k < boundaries do
    progress !k boundaries;
    incr crashpoints;
    for seed_idx = 0 to seeds - 1 do
      incr runs;
      one_run ~config ~phase_a ~trace ~violations ~crashes ~recoveries ~k:!k ~seed_idx
    done;
    k := !k + stride
  done;
  {
    boundaries;
    crashpoints = !crashpoints;
    seeds;
    runs = !runs;
    crashes = !crashes;
    recoveries = !recoveries;
    violations = List.rev !violations;
  }

let sweep_crashpoints ?progress ~trace ~seeds ~stride () =
  sweep ~phase_a:run_phase_a ?progress ~trace ~seeds ~stride ()

let sweep_group_commit ?progress ~trace ~seeds ~stride () =
  sweep ~phase_a:run_phase_gc ?progress ~trace ~seeds ~stride ()

let sweep_commit_flush ?progress ~trace ~seeds ~stride () =
  sweep ~phase_a:run_phase_flush ?progress ~trace ~seeds ~stride ()

(* The demote sweep must see a tiered cleaner even when the ambient
   [Config.tiers] (TDB_TIERS) is 1; with more tiers configured it sweeps
   the deeper lattice as-is. *)
let demote_config = { store_config with Config.tiers = max 2 store_config.Config.tiers }

let sweep_demote ?progress ~trace ~seeds ~stride () =
  sweep ~config:demote_config ~phase_a:run_phase_demote ?progress ~trace ~seeds ~stride ()

(* ------------------------------------------------------------------ *)
(* Tamper sweep *)

let sweep_tamper ?(stride = 7) ?(mask = 0x10) ~trace () =
  let env = make_env () in
  let sh = shadow_create () in
  let rng = Drbg.create ~seed:(trace.seed ^ ":trace") in
  let ctr = OWC.open_store env.ctr_store in
  let cs = Chunk_store.create ~config:store_config ~secret:env.secret ~counter:ctr env.db in
  shadow_base sh;
  let hw_floor = ref (OWC.read ctr) in
  run_phase_a ~trace ~cs ~sh ~rng ~cp_seen:(ref 0) ~ctr ~hw_floor;
  Chunk_store.close cs;
  shadow_base sh;
  let db0 = US.Mem.snapshot env.db_mem in
  let ctr0 = US.Mem.snapshot env.ctr_mem in
  let image_bytes = Bytes.length db0 in
  let detected = ref 0 and harmless = ref 0 and silent = ref 0 in
  let silent_offs = ref [] in
  let flips = ref 0 in
  let off = ref 0 in
  while !off < image_bytes do
    incr flips;
    US.Mem.corrupt env.db_mem ~off:!off ~len:1 ~mask;
    (match
       let c2 = OWC.open_store env.ctr_store in
       Chunk_store.open_existing ~config:store_config ~secret:env.secret ~counter:c2 env.db
     with
    | exception Types.Tamper_detected _ -> incr detected
    | exception Chunk_store.Recovery_failed _ -> incr detected
    | cs2 -> (
        match state_matches cs2 (Hashtbl.copy sh.model) sh.all_cids with
        | Ok true -> incr harmless
        | Ok false ->
            incr silent;
            silent_offs := !off :: !silent_offs
        | Error _ -> incr detected));
    US.Mem.restore env.db_mem db0;
    US.Mem.restore env.ctr_mem ctr0;
    off := !off + stride
  done;
  {
    image_bytes;
    flips = !flips;
    detected = !detected;
    harmless = !harmless;
    silent = !silent;
    silent_offsets = List.rev !silent_offs;
  }

(* ------------------------------------------------------------------ *)
(* Replica-ingest sweep *)

module BK = Tdb_backup.Backup_store
module AS = Tdb_platform.Archival_store

(* A primary's archive built once per sweep: a bootstrap full, a run of
   incrementals, a mid-sequence full (the in-place re-bootstrap a stale
   follower gets) and more incrementals — with the primary's chunk state
   snapshotted at every backup boundary. The follower sweep replays these
   streams through {!Tdb_backup.Backup_store.apply_stream} and crashes the
   follower's stores at every write/sync boundary of the ingest. *)
type replica_fixture = {
  r_streams : string array;  (* archive streams, in application order *)
  r_ids : int array;  (* r_ids.(i) = backup id carried by stream i *)
  r_states : chunk_state array;  (* r_states.(b) = state after b streams; (0) = empty *)
  r_cids : (int, unit) Hashtbl.t;  (* every workload chunk id the primary used *)
}

let replica_backups_total = 6
let replica_mid_full = 4 (* this backup id is a full against a live follower *)

let build_replica_fixture ~trace : replica_fixture =
  let secret = Tdb_platform.Secret_store.of_seed "crashfuzz-device" in
  let _, db = US.open_mem () in
  let _, ctr_s = US.open_mem () in
  let _, archive = AS.open_mem () in
  let ctr = OWC.open_store ctr_s in
  let cs = Chunk_store.create ~config:store_config ~secret ~counter:ctr db in
  let bs = BK.create ~secret ~archive (Shard_store.wrap cs) in
  let model : chunk_state = Hashtbl.create 64 in
  let r_cids = Hashtbl.create 64 in
  let rng = Drbg.create ~seed:(trace.seed ^ ":replica") in
  let n_base = trace.accounts + trace.tellers + trace.branches in
  let base = Array.init n_base (fun _ -> Chunk_store.allocate cs) in
  Array.iteri
    (fun i cid ->
      let data = pad (Printf.sprintf "rbase:%03d:%d" i (Drbg.int rng 1_000_000)) in
      Chunk_store.write cs cid data;
      Hashtbl.replace model cid data;
      Hashtbl.replace r_cids cid ())
    base;
  Chunk_store.commit ~durable:true cs;
  let boundaries = ref [] (* (id, state), newest first *) in
  let record id = boundaries := (id, Hashtbl.copy model) :: !boundaries in
  record (BK.backup_full bs);
  let fresh = Queue.create () in
  let txn = ref 0 in
  for b = 2 to replica_backups_total do
    for i = 1 to trace.durable_every do
      incr txn;
      let cid = base.(Drbg.int rng n_base) in
      let data = pad (Printf.sprintf "rupd:%03d:%04d:%d" cid !txn (Drbg.int rng 10_000)) in
      Chunk_store.write cs cid data;
      Hashtbl.replace model cid data;
      let c = Chunk_store.allocate cs in
      let hdata = pad (Printf.sprintf "rhist:%04d" !txn) in
      Chunk_store.write cs c hdata;
      Hashtbl.replace model c hdata;
      Hashtbl.replace r_cids c ();
      Queue.add c fresh;
      if Queue.length fresh > trace.history_keep then begin
        let old = Queue.pop fresh in
        Chunk_store.deallocate cs old;
        Hashtbl.remove model old
      end;
      Chunk_store.commit ~durable:(Int.equal i trace.durable_every) cs
    done;
    record (if Int.equal b replica_mid_full then BK.backup_full bs else BK.backup_incremental bs)
  done;
  let entries =
    AS.list archive
    |> List.filter_map (fun name ->
           match BK.parse_name name with
           | Some (id, _) -> (
               match AS.get archive ~name with Some s -> Some (id, s) | None -> None)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let r_streams = Array.of_list (List.map snd entries) in
  let r_ids = Array.of_list (List.map fst entries) in
  let r_states = Array.make (Array.length r_streams + 1) (Hashtbl.create 0) in
  List.iteri (fun i (_, st) -> r_states.(i + 1) <- st) (List.rev !boundaries);
  Chunk_store.close cs;
  { r_streams; r_ids; r_states; r_cids }

let replica_boundary_id fx b = if Int.equal b 0 then 0 else fx.r_ids.(b - 1)

(* Count the ingest's write/sync boundaries (follower store + counter),
   with the plan armed past the horizon. *)
let replica_boundaries ~fx =
  let env = make_env () in
  let _, f_archive = AS.open_mem () in
  let ctr = OWC.open_store env.ctr_store in
  let cs = Chunk_store.create ~config:store_config ~secret:env.secret ~counter:ctr env.db in
  let bs = BK.create ~secret:env.secret ~archive:f_archive (Shard_store.wrap cs) in
  Fault_plan.arm env.plan ~at:max_int ~tear:Fault_plan.Skip;
  Array.iter (fun s -> ignore (BK.apply_stream bs s)) fx.r_streams;
  let n = Fault_plan.ops env.plan in
  Fault_plan.reset env.plan;
  Chunk_store.close cs;
  n

(* One cell: crash the follower at ingest boundary [k] under a seeded
   persistence subset, reopen, and check the staged-apply oracle — the
   recovered follower must sit at exactly the boundary before or after the
   stream being applied (each apply is one durable commit: earlier
   boundaries are already durable, later ones were never issued) with a
   chain state matching its contents, and the remaining streams must then
   re-apply to convergence with the primary. *)
let replica_one_run ~fx ~violations ~crashes ~recoveries ~k ~seed_idx =
  let env = make_env () in
  let _, f_archive = AS.open_mem () in
  let fault_rng = Drbg.create ~seed:(Printf.sprintf "replica:fault:%d:%d" k seed_idx) in
  let persist_prob = persist_probs.(seed_idx mod Array.length persist_probs) in
  let crash_rng n = Drbg.int fault_rng n in
  let run = Printf.sprintf "replica k=%d seed=%d" k seed_idx in
  let ctr = OWC.open_store env.ctr_store in
  let cs = Chunk_store.create ~config:store_config ~secret:env.secret ~counter:ctr env.db in
  let bs = BK.create ~secret:env.secret ~archive:f_archive (Shard_store.wrap cs) in
  let n = Array.length fx.r_streams in
  let matches cs b =
    match state_matches cs fx.r_states.(b) fx.r_cids with
    | Ok ok -> Ok ok
    | Error m -> Error m
  in
  Fault_plan.arm env.plan ~at:k ~tear:tears.(Drbg.int fault_rng (Array.length tears));
  let applying = ref 0 in
  match
    for i = 0 to n - 1 do
      applying := i;
      ignore (BK.apply_stream bs fx.r_streams.(i))
    done
  with
  | () -> (
      (* crashpoint beyond the ingest: the live follower must equal the
         primary's newest boundary *)
      Fault_plan.reset env.plan;
      (match matches cs n with
      | Ok true ->
          if not (Int.equal (BK.chain_state bs).BK.last_id (replica_boundary_id fx n)) then
            add violations run "replica-final-chain" "chain state disagrees with converged contents"
      | Ok false -> add violations run "replica-diverged" "follower does not match primary after full ingest"
      | Error m -> add violations run "tamper-during-check" m);
      Chunk_store.close cs)
  | exception BK.Invalid_backup m -> add violations run "replica-live-reject" m
  | exception Harness_violation (kind, detail) -> add violations run kind detail
  | exception e when not (match e with Fault_plan.Crash_point -> true | _ -> false) ->
      add violations run "workload-exception" (Printexc.to_string e)
  | exception Fault_plan.Crash_point -> (
      incr crashes;
      Fault_plan.reset env.plan;
      US.Mem.crash ~persist_prob ~rng:crash_rng env.db_mem;
      US.Mem.crash ~persist_prob ~rng:crash_rng env.ctr_mem;
      match
        let ctr2 = OWC.open_store env.ctr_store in
        Chunk_store.open_existing ~config:store_config ~secret:env.secret ~counter:ctr2 env.db
      with
      | exception Types.Tamper_detected m -> add violations run "false-tamper" m
      | exception Chunk_store.Recovery_failed m -> add violations run "recovery-failed" m
      | exception e -> add violations run "recovery-exception" (Printexc.to_string e)
      | cs2 -> (
          incr recoveries;
          let bs2 = BK.create ~secret:env.secret ~archive:f_archive (Shard_store.wrap cs2) in
          let i = !applying in
          let st = (BK.chain_state bs2).BK.last_id in
          let b =
            if Int.equal st (replica_boundary_id fx (i + 1)) then Some (i + 1)
            else if Int.equal st (replica_boundary_id fx i) then Some i
            else None
          in
          match b with
          | None ->
              add violations run "replica-chain-state"
                (Printf.sprintf "recovered chain last_id %d is neither boundary %d nor %d" st
                   (replica_boundary_id fx i)
                   (replica_boundary_id fx (i + 1)));
              Chunk_store.close cs2
          | Some b -> (
              match matches cs2 b with
              | Error m -> add violations run "tamper-during-check" m; Chunk_store.close cs2
              | Ok false ->
                  add violations run "replica-torn-apply"
                    (Printf.sprintf "chain state says boundary %d but chunk contents disagree" b);
                  Chunk_store.close cs2
              | Ok true ->
                  (match
                     for j = b to n - 1 do
                       ignore (BK.apply_stream bs2 fx.r_streams.(j))
                     done
                   with
                  | exception e -> add violations run "replica-resume" (Printexc.to_string e)
                  | () -> (
                      match matches cs2 n with
                      | Ok true ->
                          if not (Int.equal (BK.chain_state bs2).BK.last_id (replica_boundary_id fx n))
                          then add violations run "replica-final-chain" "chain state disagrees after resume"
                      | Ok false ->
                          add violations run "replica-diverged" "resumed follower does not match primary"
                      | Error m -> add violations run "tamper-during-check" m));
                  Chunk_store.close cs2)))

let sweep_replica ?(progress = fun _ _ -> ()) ~trace ~seeds ~stride () =
  let fx = build_replica_fixture ~trace in
  let boundaries = replica_boundaries ~fx in
  let violations = ref [] in
  let runs = ref 0 and crashes = ref 0 and recoveries = ref 0 and crashpoints = ref 0 in
  let k = ref 0 in
  while !k < boundaries do
    progress !k boundaries;
    incr crashpoints;
    for seed_idx = 0 to seeds - 1 do
      incr runs;
      replica_one_run ~fx ~violations ~crashes ~recoveries ~k:!k ~seed_idx
    done;
    k := !k + stride
  done;
  {
    boundaries;
    crashpoints = !crashpoints;
    seeds;
    runs = !runs;
    crashes = !crashes;
    recoveries = !recoveries;
    violations = List.rev !violations;
  }

(* Stream-tamper sweep: flip every [stride]-th byte of each archive
   stream (and truncate it at four prefix lengths) before feeding it to a
   follower positioned just before that stream. Every damaged frame must
   be rejected with the follower still readable at its previous boundary,
   and the genuine sequence must then still apply to convergence; a
   damaged frame that is accepted is only tolerable if it leaves the
   follower exactly at the next boundary. *)
let sweep_replica_tamper ?(stride = 37) ?(mask = 0x10) ~trace () =
  let fx = build_replica_fixture ~trace in
  let n = Array.length fx.r_streams in
  let secret = Tdb_platform.Secret_store.of_seed "crashfuzz-device" in
  let detected = ref 0 and harmless = ref 0 and silent = ref 0 and flips = ref 0 in
  let silent_offs = ref [] in
  let total_bytes = Array.fold_left (fun a s -> a + String.length s) 0 fx.r_streams in
  for i = 0 to n - 1 do
    let _, f_archive = AS.open_mem () in
    let _, db = US.open_mem () in
    let _, ctr_s = US.open_mem () in
    let ctr = OWC.open_store ctr_s in
    let cs = Chunk_store.create ~config:store_config ~secret ~counter:ctr db in
    let bs = BK.create ~secret ~archive:f_archive (Shard_store.wrap cs) in
    for j = 0 to i - 1 do
      ignore (BK.apply_stream bs fx.r_streams.(j))
    done;
    let len = String.length fx.r_streams.(i) in
    let mark_silent off = incr silent; silent_offs := ((i * 1_000_000) + off) :: !silent_offs in
    let at b =
      Int.equal (BK.chain_state bs).BK.last_id (replica_boundary_id fx b)
      && (match state_matches cs fx.r_states.(b) fx.r_cids with Ok true -> true | _ -> false)
    in
    (* returns true if the follower advanced past boundary [i] *)
    let attempt stream off =
      incr flips;
      match BK.apply_stream bs stream with
      | _ -> if at (i + 1) then (incr harmless; true) else (mark_silent off; true)
      | exception BK.Invalid_backup _ | exception Tdb_pickle.Pickle.Error _ ->
          if at i then incr detected else mark_silent off;
          false
    in
    let advanced = ref false in
    let off = ref 0 in
    while (not !advanced) && !off < len do
      let b = Bytes.of_string fx.r_streams.(i) in
      Bytes.set b !off (Char.chr (Char.code (Bytes.get b !off) lxor mask));
      advanced := attempt (Bytes.to_string b) !off;
      off := !off + stride
    done;
    (* torn frames: truncation at four prefix lengths, empty included *)
    List.iter
      (fun quarter ->
        if not !advanced then
          let l = len * quarter / 4 in
          if l < len then advanced := attempt (String.sub fx.r_streams.(i) 0 l) (-(l + 1)))
      [ 0; 1; 2; 3 ];
    (* after surviving every rejection the genuine tail must still apply *)
    if not !advanced then begin
      match
        for j = i to n - 1 do
          ignore (BK.apply_stream bs fx.r_streams.(j))
        done
      with
      | () -> if not (at n) then mark_silent 999_998
      | exception _ -> mark_silent 999_999
    end;
    Chunk_store.close cs
  done;
  {
    image_bytes = total_bytes;
    flips = !flips;
    detected = !detected;
    harmless = !harmless;
    silent = !silent;
    silent_offsets = List.rev !silent_offs;
  }

(* ------------------------------------------------------------------ *)
(* Cross-shard 2PC sweep *)

(* The sharded variant of the crashpoint sweep: the workload runs through
   a {!Shard_store} router over [n] shards — [n] database stores and [n]
   one-way-counter stores, all instrumented by ONE shared fault plan, so
   the global boundary counter interleaves every shard's writes and syncs.
   Most transactions transfer value between two shards and commit durably,
   which drives the cross-shard 2PC; with stride 1 the sweep therefore
   crashes at every store boundary {e between prepare and commit} — inside
   a participant's durable prepare, during the coordinator's decision
   (dtab) write, between apply commits, and in cleanup.

   Oracles after recovery ({!Shard_store.open_existing}, which resolves
   in-doubt transactions): the global chunk state must sit at one
   admissible commit boundary — a cross-shard batch half-applied on one
   shard matches {e no} boundary and is reported (all shards agree on the
   outcome, no partial application); recovery must never raise a false
   [Tamper_detected]; each shard's counter never reads below its floor. *)

let default_shard_width () = max 2 (Config.default_shards ())
let shard_cfg n = { store_config with Config.shards = n }

type shard_env = {
  s_db_mem : US.Mem.handle array;
  s_db : US.t array;  (* instrumented *)
  s_ctr_mem : US.Mem.handle array;
  s_ctr : US.t array;  (* instrumented *)
  s_plan : Fault_plan.t;
  s_secret : Tdb_platform.Secret_store.t;
}

let make_shard_env n =
  let plan = Fault_plan.create () in
  let db = Array.init n (fun _ -> US.open_mem ()) in
  let ctr = Array.init n (fun _ -> US.open_mem ()) in
  {
    s_db_mem = Array.map fst db;
    s_db = Array.map (fun (_, r) -> Fault_plan.instrument plan r) db;
    s_ctr_mem = Array.map fst ctr;
    s_ctr = Array.map (fun (_, r) -> Fault_plan.instrument plan r) ctr;
    s_plan = plan;
    s_secret = Tdb_platform.Secret_store.of_seed "crashfuzz-device";
  }

let shard_of_gid n g = if g < 8 then 0 else (g - 8) mod n

(* Commit through the router. [durable] is what the workload {e observes}:
   the router upgrades any multi-shard batch to durable, so callers pass
   the effective flag (requested || cross-shard). Durable commits raise
   every shard's counter floor. No checkpoint promotion here: a checkpoint
   on one shard says nothing about another shard's nondurable commits, so
   nondurable boundaries simply stay in the admissible window. *)
let commit_shadow_shard ~durable ~ss ~sh ~ctrs ~hw_floors =
  sh.issued <- sh.issued + 1;
  Hashtbl.replace sh.states sh.issued (Hashtbl.copy sh.model);
  Shard_store.commit ~durable ss;
  if durable then begin
    sh.durable_lo <- sh.issued;
    Array.iteri
      (fun i c ->
        let hw = OWC.read c in
        if Int64.compare hw hw_floors.(i) > 0 then hw_floors.(i) <- hw)
      ctrs
  end

let check_read_shard ss sh cid =
  let got = Shard_store.read ss cid in
  match Hashtbl.find_opt sh.model cid with
  | Some want when String.equal want got -> ()
  | _ -> raise (Harness_violation ("live-read-mismatch", Printf.sprintf "chunk %d" cid))

(* Phase A: per-shard balance chunks loaded in one all-shard durable
   commit (itself a 2PC), then transfers — 3/4 pick a distinct source and
   destination shard, rewrite one balance chunk on each, append a history
   chunk on the source and retire old history (whose shard the batch also
   joins). Cross-shard batches are always durable; same-shard transfers
   follow the trace's durable cadence. *)
let run_phase_shard ~n ~trace ~ss ~sh ~rng ~ctrs ~hw_floors =
  let per = max 2 ((trace.accounts + n - 1) / n) in
  let base = Array.init n (fun s -> Array.init per (fun _ -> Shard_store.allocate ~shard:s ss)) in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun i cid ->
          let data = pad (Printf.sprintf "sbase:%d:%02d:%d" s i (Drbg.int rng 1_000_000)) in
          Shard_store.write ss cid data;
          shadow_write sh cid data)
        row)
    base;
  commit_shadow_shard ~durable:true ~ss ~sh ~ctrs ~hw_floors;
  let history = Queue.create () in
  for i = 1 to trace.txns do
    let src = Drbg.int rng n in
    let dst =
      if Int.equal (Drbg.int rng 4) 0 then src
      else begin
        let d = Drbg.int rng (n - 1) in
        if d >= src then d + 1 else d
      end
    in
    let touched = ref [] in
    let touch cid = touched := shard_of_gid n cid :: !touched in
    let a = base.(src).(Drbg.int rng per) in
    let b = base.(dst).(Drbg.int rng per) in
    let delta = Drbg.int rng 10_000 in
    List.iter
      (fun cid ->
        check_read_shard ss sh cid;
        let data = pad (Printf.sprintf "xfer:%04d:%03d:%d" i cid delta) in
        Shard_store.write ss cid data;
        shadow_write sh cid data;
        touch cid)
      (if Int.equal a b then [ a ] else [ a; b ]);
    let h = Shard_store.allocate ~shard:src ss in
    let hdata = pad (Printf.sprintf "xhist:%04d:%d.%d:%d" i src dst delta) in
    Shard_store.write ss h hdata;
    shadow_write sh h hdata;
    touch h;
    Queue.add h history;
    if Queue.length history > trace.history_keep then begin
      let old = Queue.pop history in
      Shard_store.deallocate ss old;
      shadow_dealloc sh old;
      touch old
    end;
    let cross =
      match !touched with
      | [] -> false
      | t0 :: rest -> List.exists (fun s -> not (Int.equal s t0)) rest
    in
    let durable = cross || Int.equal (i mod trace.durable_every) 0 in
    commit_shadow_shard ~durable ~ss ~sh ~ctrs ~hw_floors
  done

(* Phase B: epilogue against whatever state recovery produced — rewrites,
   fresh allocations (round-robin, so durable commits keep spanning
   shards), occasional deallocation. All durable. *)
let run_epilogue_shard ~trace ~ss ~sh ~rng ~ctrs ~hw_floors =
  for i = 1 to trace.epilogue_txns do
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) sh.model [] in
    let keys = Array.of_list (List.sort Int.compare keys) in
    let nkeys = Array.length keys in
    if nkeys > 0 then begin
      let cid = keys.(Drbg.int rng nkeys) in
      check_read_shard ss sh cid;
      let data = pad (Printf.sprintf "sepi:%03d:txn:%04d" cid i) in
      Shard_store.write ss cid data;
      shadow_write sh cid data
    end;
    let c = Shard_store.allocate ss in
    let data = pad (Printf.sprintf "sepinew:%04d" i) in
    Shard_store.write ss c data;
    shadow_write sh c data;
    if nkeys > 4 && Int.equal (Drbg.int rng 4) 0 then begin
      let victim = keys.(Drbg.int rng nkeys) in
      if Hashtbl.mem sh.model victim then begin
        Shard_store.deallocate ss victim;
        shadow_dealloc sh victim
      end
    end;
    commit_shadow_shard ~durable:true ~ss ~sh ~ctrs ~hw_floors
  done

(* Reopen all shards after a crash and run the recovery oracles. *)
let reopen_and_check_shard ~n ~run ~violations ~(env : shard_env) ~sh ~hw_floors =
  match
    let ctrs = Array.map OWC.open_store env.s_ctr in
    let ss = Shard_store.open_existing ~config:(shard_cfg n) ~secret:env.s_secret ~counters:ctrs env.s_db in
    (ctrs, ss)
  with
  | exception Types.Tamper_detected m -> add violations run "false-tamper" m; None
  | exception Chunk_store.Recovery_failed m -> add violations run "recovery-failed" m; None
  | exception e -> add violations run "recovery-exception" (Printexc.to_string e); None
  | ctrs, ss ->
      Array.iteri
        (fun i c ->
          let hw = OWC.read c in
          if Int64.compare hw hw_floors.(i) < 0 then
            add violations run "counter-rollback"
              (Printf.sprintf "shard %d: read %Ld, floor %Ld" i hw hw_floors.(i));
          if Int64.compare hw hw_floors.(i) > 0 then hw_floors.(i) <- hw)
        ctrs;
      (match match_candidates_read ~read:(Shard_store.read ss) sh with
      | Ok d -> shadow_reset_to sh d
      | Error detail ->
          (* a cross-shard batch applied on some shards but not others
             matches no boundary: this is the atomicity oracle *)
          add violations run "atomicity-violation" detail;
          shadow_base sh);
      Some (ctrs, ss)

(* Post-recovery usability probe: a write on the first and last shard plus
   a durable commit — i.e. a fresh cross-shard 2PC — must succeed and
   serve the data back. *)
let probe_shard ~n ~run ~violations ~ss ~sh ~ctrs ~hw_floors =
  match
    let c1 = Shard_store.allocate ~shard:0 ss in
    let c2 = Shard_store.allocate ~shard:(n - 1) ss in
    List.iter
      (fun c ->
        let data = pad (Printf.sprintf "sprobe:%06d" c) in
        Shard_store.write ss c data;
        shadow_write sh c data)
      [ c1; c2 ];
    commit_shadow_shard ~durable:true ~ss ~sh ~ctrs ~hw_floors;
    List.iter
      (fun c ->
        let got = Shard_store.read ss c in
        match Hashtbl.find_opt sh.model c with
        | Some want when String.equal want got -> ()
        | _ -> add violations run "probe-read-mismatch" (Printf.sprintf "chunk %d" c))
      [ c1; c2 ];
    let u = Shard_store.utilization ss in
    if u < 0.0 || u > 1.0001 then add violations run "utilization-out-of-range" (Printf.sprintf "%f" u)
  with
  | () -> ()
  | exception e -> add violations run "probe-exception" (Printexc.to_string e)

let record_boundaries_shard ~n ~trace =
  let env = make_shard_env n in
  let sh = shadow_create () in
  let rng = Drbg.create ~seed:(trace.seed ^ ":shard-trace") in
  let ctrs = Array.map OWC.open_store env.s_ctr in
  let ss = Shard_store.create ~config:(shard_cfg n) ~secret:env.s_secret ~counters:ctrs env.s_db in
  shadow_base sh;
  Fault_plan.arm env.s_plan ~at:max_int ~tear:Fault_plan.Skip;
  let hw_floors = Array.map OWC.read ctrs in
  run_phase_shard ~n ~trace ~ss ~sh ~rng ~ctrs ~hw_floors;
  let k = Fault_plan.ops env.s_plan in
  Fault_plan.reset env.s_plan;
  Shard_store.close ss;
  k

(* One cell: crash phase A at global boundary [k], recover every shard
   under the seeded persistence subset, epilogue with a second seeded
   crashpoint, recover again, probe with a cross-shard commit. *)
let one_run_shard ~n ~trace ~violations ~crashes ~recoveries ~k ~seed_idx =
  let env = make_shard_env n in
  let sh = shadow_create () in
  let trace_rng = Drbg.create ~seed:(trace.seed ^ ":shard-trace") in
  let fault_rng = Drbg.create ~seed:(Printf.sprintf "%s:shard-fault:%d:%d" trace.seed k seed_idx) in
  let persist_prob = persist_probs.(seed_idx mod Array.length persist_probs) in
  let crash_rng m = Drbg.int fault_rng m in
  let run = Printf.sprintf "shard k=%d seed=%d" k seed_idx in
  let ctrs0 = Array.map OWC.open_store env.s_ctr in
  let ss0 = Shard_store.create ~config:(shard_cfg n) ~secret:env.s_secret ~counters:ctrs0 env.s_db in
  shadow_base sh;
  let hw_floors = Array.map OWC.read ctrs0 in
  Fault_plan.arm env.s_plan ~at:k ~tear:tears.(Drbg.int fault_rng (Array.length tears));
  let finish_on ss ctrs =
    probe_shard ~n ~run:(run ^ ":probe") ~violations ~ss ~sh ~ctrs ~hw_floors;
    Shard_store.close ss
  in
  let crash_and_check ~phase =
    Fault_plan.reset env.s_plan;
    Array.iter (US.Mem.crash ~persist_prob ~rng:crash_rng) env.s_db_mem;
    Array.iter (US.Mem.crash ~persist_prob ~rng:crash_rng) env.s_ctr_mem;
    let r = reopen_and_check_shard ~n ~run:(run ^ ":" ^ phase) ~violations ~env ~sh ~hw_floors in
    if Option.is_some r then incr recoveries;
    r
  in
  match run_phase_shard ~n ~trace ~ss:ss0 ~sh ~rng:trace_rng ~ctrs:ctrs0 ~hw_floors with
  | () -> (
      Fault_plan.reset env.s_plan;
      Shard_store.close ss0;
      shadow_base sh;
      match reopen_and_check_shard ~n ~run:(run ^ ":clean") ~violations ~env ~sh ~hw_floors with
      | Some (ctrs, ss) -> finish_on ss ctrs
      | None -> ())
  | exception Harness_violation (kind, detail) -> add violations run kind detail
  | exception Fault_plan.Crash_point -> (
      incr crashes;
      match crash_and_check ~phase:"A" with
      | None -> ()
      | Some (ctrs1, ss1) -> (
          let counter_focus = Int.equal (seed_idx land 1) 1 in
          let k2 = Drbg.int fault_rng (if counter_focus then 24 else 120) in
          let tear2 =
            if counter_focus then Fault_plan.Torn else tears.(Drbg.int fault_rng (Array.length tears))
          in
          Fault_plan.arm env.s_plan ~at:k2 ~tear:tear2;
          match run_epilogue_shard ~trace ~ss:ss1 ~sh ~rng:trace_rng ~ctrs:ctrs1 ~hw_floors with
          | () -> (
              Fault_plan.reset env.s_plan;
              Shard_store.close ss1;
              shadow_base sh;
              match reopen_and_check_shard ~n ~run:(run ^ ":B-clean") ~violations ~env ~sh ~hw_floors with
              | Some (ctrs, ss) -> finish_on ss ctrs
              | None -> ())
          | exception Harness_violation (kind, detail) -> add violations (run ^ ":B") kind detail
          | exception Fault_plan.Crash_point -> (
              incr crashes;
              match crash_and_check ~phase:"B" with
              | Some (ctrs, ss) -> finish_on ss ctrs
              | None -> ())
          | exception e -> add violations (run ^ ":B") "workload-exception" (Printexc.to_string e)))
  | exception e -> add violations run "workload-exception" (Printexc.to_string e)

let sweep_shard_2pc ?(progress = fun _ _ -> ()) ?shards ~trace ~seeds ~stride () =
  let n = match shards with Some n -> n | None -> default_shard_width () in
  if n < 2 then invalid_arg "sweep_shard_2pc: shards must be >= 2";
  let boundaries = record_boundaries_shard ~n ~trace in
  let violations = ref [] in
  let runs = ref 0 and crashes = ref 0 and recoveries = ref 0 and crashpoints = ref 0 in
  let k = ref 0 in
  while !k < boundaries do
    progress !k boundaries;
    incr crashpoints;
    for seed_idx = 0 to seeds - 1 do
      incr runs;
      one_run_shard ~n ~trace ~violations ~crashes ~recoveries ~k:!k ~seed_idx
    done;
    k := !k + stride
  done;
  {
    boundaries;
    crashpoints = !crashpoints;
    seeds;
    runs = !runs;
    crashes = !crashes;
    recoveries = !recoveries;
    violations = List.rev !violations;
  }

(* Shard tamper sweep, two parts.

   Part 1 — committed image: run the workload, close cleanly, then flip
   every [stride]-th byte of each shard's image in turn and reopen the
   whole router. Detected ([Tamper_detected] / [Recovery_failed]) or
   harmless (state still exact) are fine; wrong data without an exception
   is silent. This covers each shard's decision-table chunk — its chain
   MAC and the width metadata — at rest.

   Part 2 — in-doubt decision flips: crash the workload mid-trace at a
   few boundaries (most land inside a 2PC, between a participant's
   prepare and the final apply), keep {e every} write (persist_prob 1 —
   the richest image: staged prepares and live decision entries), flip
   bytes across the shard images and reopen. Recovery may detect the
   flip, or resolve the in-doubt transaction to {e some admissible
   boundary} (commit or presumed abort — the commit never returned); a
   flipped decision record that steers recovery to a state matching no
   admissible boundary is silent. *)
let sweep_shard_tamper ?(stride = 7) ?(mask = 0x10) ?shards ~trace () =
  let n = match shards with Some n -> n | None -> default_shard_width () in
  if n < 2 then invalid_arg "sweep_shard_tamper: shards must be >= 2";
  let detected = ref 0 and harmless = ref 0 and silent = ref 0 and flips = ref 0 in
  let silent_offs = ref [] in
  let image_bytes = ref 0 in
  let flip_sweep ~(env : shard_env) ~sh ~stride ~off_tag =
    let db0 = Array.map US.Mem.snapshot env.s_db_mem in
    let ctr0 = Array.map US.Mem.snapshot env.s_ctr_mem in
    for s = 0 to n - 1 do
      let len = Bytes.length db0.(s) in
      image_bytes := !image_bytes + len;
      let off = ref 0 in
      while !off < len do
        incr flips;
        US.Mem.corrupt env.s_db_mem.(s) ~off:!off ~len:1 ~mask;
        (match
           let ctrs = Array.map OWC.open_store env.s_ctr in
           Shard_store.open_existing ~config:(shard_cfg n) ~secret:env.s_secret ~counters:ctrs env.s_db
         with
        | exception Types.Tamper_detected _ -> incr detected
        | exception Chunk_store.Recovery_failed _ -> incr detected
        | ss2 -> (
            match match_candidates_read ~read:(Shard_store.read ss2) sh with
            | Ok _ -> incr harmless
            | Error m when String.length m >= 6 && String.equal (String.sub m 0 6) "tamper" -> incr detected
            | Error _ ->
                incr silent;
                silent_offs := (off_tag + (s * 1_000_000) + !off) :: !silent_offs));
        Array.iteri (fun i img -> US.Mem.restore env.s_db_mem.(i) img) db0;
        Array.iteri (fun i img -> US.Mem.restore env.s_ctr_mem.(i) img) ctr0;
        off := !off + stride
      done
    done
  in
  (* part 1: clean committed image *)
  let env = make_shard_env n in
  let sh = shadow_create () in
  let rng = Drbg.create ~seed:(trace.seed ^ ":shard-trace") in
  let ctrs = Array.map OWC.open_store env.s_ctr in
  let ss = Shard_store.create ~config:(shard_cfg n) ~secret:env.s_secret ~counters:ctrs env.s_db in
  shadow_base sh;
  let hw_floors = Array.map OWC.read ctrs in
  run_phase_shard ~n ~trace ~ss ~sh ~rng ~ctrs ~hw_floors;
  Shard_store.close ss;
  shadow_base sh;
  flip_sweep ~env ~sh ~stride ~off_tag:0;
  (* part 2: images crashed mid-2PC, with live decision entries *)
  let total = record_boundaries_shard ~n ~trace in
  let in_doubt_points = [ total / 2; total * 3 / 4 ] in
  List.iter
    (fun kp ->
      let env = make_shard_env n in
      let sh = shadow_create () in
      let rng = Drbg.create ~seed:(trace.seed ^ ":shard-trace") in
      let ctrs = Array.map OWC.open_store env.s_ctr in
      let ss = Shard_store.create ~config:(shard_cfg n) ~secret:env.s_secret ~counters:ctrs env.s_db in
      shadow_base sh;
      let hw_floors = Array.map OWC.read ctrs in
      Fault_plan.arm env.s_plan ~at:kp ~tear:Fault_plan.Applied;
      match run_phase_shard ~n ~trace ~ss ~sh ~rng ~ctrs ~hw_floors with
      | () -> Fault_plan.reset env.s_plan; Shard_store.close ss
      | exception Fault_plan.Crash_point ->
          Fault_plan.reset env.s_plan;
          (* keep every write: the image retains staged prepares and any
             not-yet-cleaned decision entry *)
          let keep _ = 0 in
          Array.iter (US.Mem.crash ~persist_prob:1.0 ~rng:keep) env.s_db_mem;
          Array.iter (US.Mem.crash ~persist_prob:1.0 ~rng:keep) env.s_ctr_mem;
          flip_sweep ~env ~sh ~stride:(stride * 5) ~off_tag:((kp + 1) * 100_000_000))
    in_doubt_points;
  {
    image_bytes = !image_bytes;
    flips = !flips;
    detected = !detected;
    harmless = !harmless;
    silent = !silent;
    silent_offsets = List.rev !silent_offs;
  }

(* ------------------------------------------------------------------ *)
(* JSON summary *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_summary ?group_commit ?commit_flush ?demote ?replica ?replica_tamper ?shard_2pc ?shard_tamper
    ~trace ~(crash : crash_report) ~(tamper : tamper_report) () : string =
  let b = Buffer.create 1024 in
  let add_crash_report key (r : crash_report) =
    Buffer.add_string b
      (Printf.sprintf
         "  \"%s\": {\"boundaries\": %d, \"crashpoints\": %d, \"seeds\": %d, \"runs\": %d, \"crashes\": %d, \"recoveries\": %d, \"violations\": ["
         key r.boundaries r.crashpoints r.seeds r.runs r.crashes r.recoveries);
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b
          (Printf.sprintf "{\"run\": \"%s\", \"kind\": \"%s\", \"detail\": \"%s\"}" (json_escape v.v_run)
             (json_escape v.v_kind) (json_escape v.v_detail)))
      r.violations;
    Buffer.add_string b "]},\n"
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"trace\": {\"seed\": \"%s\", \"txns\": %d, \"accounts\": %d, \"tellers\": %d, \"branches\": %d},\n"
       (json_escape trace.seed) trace.txns trace.accounts trace.tellers trace.branches);
  add_crash_report "crash" crash;
  (match group_commit with None -> () | Some r -> add_crash_report "group_commit" r);
  (match commit_flush with None -> () | Some r -> add_crash_report "commit_flush" r);
  (match demote with None -> () | Some r -> add_crash_report "demote" r);
  (match replica with None -> () | Some r -> add_crash_report "replica" r);
  (match shard_2pc with None -> () | Some r -> add_crash_report "shard_2pc" r);
  let tamper_json key (r : tamper_report) =
    Printf.sprintf
      "  \"%s\": {\"image_bytes\": %d, \"flips\": %d, \"detected\": %d, \"harmless\": %d, \"silent\": %d, \"silent_offsets\": [%s]}"
      key r.image_bytes r.flips r.detected r.harmless r.silent
      (String.concat ", " (List.map string_of_int r.silent_offsets))
  in
  Buffer.add_string b (tamper_json "tamper" tamper);
  (match replica_tamper with
  | None -> ()
  | Some r ->
      Buffer.add_string b ",\n";
      Buffer.add_string b (tamper_json "replica_tamper" r));
  (match shard_tamper with
  | None -> ()
  | Some r ->
      Buffer.add_string b ",\n";
      Buffer.add_string b (tamper_json "shard_tamper" r));
  Buffer.add_string b "\n}";
  Buffer.contents b
