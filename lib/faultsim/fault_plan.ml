(** Deterministic crashpoint injection.

    A fault plan counts the write/sync boundaries of every store it
    instruments (several stores — e.g. the database image and the one-way
    counter file emulation — may share one plan, so their boundaries
    interleave into a single global sequence, exactly as the devices of one
    machine share one power supply). Arming the plan at boundary [k] makes
    the k-th mutating operation raise {!Crash_point} instead of executing;
    what happens to that very operation is governed by the {!tear} mode:

    - {!Skip}: the operation never reaches the medium (classic power cut);
    - {!Torn}: a write lands only its first half — a torn sector, the case
      recovery code most often forgets;
    - {!Applied}: the operation completes and the crash hits immediately
      after it (e.g. after a sync, before the counter increment).

    After the crash every further operation raises {!Crash_point} too (the
    machine is down) until {!reset}. Combining an armed plan with
    {!Tdb_platform.Untrusted_store.Mem.crash}'s seeded partial persistence
    of unsynced writes yields the full sweep space: crash at every boundary
    x every subset of surviving cached writes.

    Vectored writes lose no coverage: {!Tdb_platform.Untrusted_store.interpose}
    decomposes a [writev] into one [Op_write] boundary per fragment, with
    earlier fragments individually applied — so the plan can crash at every
    record edge inside a coalesced flush, and the {!Torn} mode still tears
    the fragment at the crash point in half. *)

exception Crash_point

type tear = Skip | Torn | Applied

type t = {
  mutable ops : int; (* boundaries seen since the last arm/reset *)
  mutable armed : bool;
  mutable crash_at : int;
  mutable tear : tear;
  mutable crashed : bool;
}

let create () = { ops = 0; armed = false; crash_at = 0; tear = Skip; crashed = false }

let arm t ~(at : int) ~(tear : tear) : unit =
  t.ops <- 0;
  t.armed <- true;
  t.crash_at <- at;
  t.tear <- tear;
  t.crashed <- false

let reset t : unit =
  t.ops <- 0;
  t.armed <- false;
  t.crashed <- false

let ops t = t.ops
let crashed t = t.crashed

let instrument (p : t) (s : Tdb_platform.Untrusted_store.t) : Tdb_platform.Untrusted_store.t =
  (* The tear modes need the operation's payload, so the hook re-issues the
     (possibly truncated) operation against the underlying store before
     raising; the wrapper itself never runs the original call on a crash. *)
  let underlying = s in
  let before (op : Tdb_platform.Untrusted_store.op) =
    if p.crashed then raise Crash_point;
    if p.armed && Int.equal p.ops p.crash_at then begin
      p.crashed <- true;
      (match (p.tear, op) with
      | Skip, _ -> ()
      | Torn, Tdb_platform.Untrusted_store.Op_write { off; data } ->
          (* Half-programmed sector: the first half holds the new bytes,
             the rest garbage — neither the old nor the new content. *)
          let len = String.length data in
          let half = len / 2 in
          if len > 0 then
            Tdb_platform.Untrusted_store.write underlying ~off
              (String.sub data 0 half ^ String.make (len - half) '\xA5')
      | Torn, Tdb_platform.Untrusted_store.Op_set_size n ->
          Tdb_platform.Untrusted_store.set_size underlying n
      | Torn, Tdb_platform.Untrusted_store.Op_sync -> ()
      | Applied, Tdb_platform.Untrusted_store.Op_write { off; data } ->
          Tdb_platform.Untrusted_store.write underlying ~off data
      | Applied, Tdb_platform.Untrusted_store.Op_set_size n ->
          Tdb_platform.Untrusted_store.set_size underlying n
      | Applied, Tdb_platform.Untrusted_store.Op_sync -> Tdb_platform.Untrusted_store.sync underlying);
      raise Crash_point
    end;
    p.ops <- p.ops + 1
  in
  Tdb_platform.Untrusted_store.interpose ~before s
