(** Deterministic crashpoint injection over {!Tdb_platform.Untrusted_store}
    wrappers.

    A plan counts write/sync boundaries across {e all} stores it instruments
    (they share one global sequence, like devices sharing one power supply)
    and, when armed, raises {!Crash_point} at the chosen boundary. Sweep
    usage: run the workload once with the plan armed at [max_int] to record
    the boundary count [n], then re-run armed at each [k < n]. *)

exception Crash_point
(** Raised by an instrumented store at (and after) the armed boundary. *)

(** What happens to the operation at the crash boundary itself. *)
type tear =
  | Skip  (** the operation never reaches the medium *)
  | Torn  (** a write persists only its first half (torn sector) *)
  | Applied  (** the operation completes, then the crash hits *)

type t

val create : unit -> t
(** A disarmed plan: counts nothing, never crashes. *)

val arm : t -> at:int -> tear:tear -> unit
(** Reset the boundary counter to zero and crash at boundary [at]
    (0-based). [at = max_int] records boundaries without crashing. *)

val reset : t -> unit
(** Disarm after a crash so recovery can run against the instrumented
    stores; also zeroes the boundary counter. *)

val ops : t -> int
(** Boundaries seen since the last {!arm}/{!reset}. *)

val crashed : t -> bool

val instrument : t -> Tdb_platform.Untrusted_store.t -> Tdb_platform.Untrusted_store.t
(** Wrap a store so its mutating operations hit this plan's boundary
    counter. Reads pass through untouched. A vectored write counts one
    boundary {e per fragment} (earlier fragments apply individually), so
    coalesced flushes expose the same crash points as the equivalent
    sequence of plain writes. *)
