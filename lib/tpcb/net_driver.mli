(** Multi-client TPC-B over the network service: N client threads drive a
    {!Tdb_server.Server} through the RPC client, measuring throughput
    scaling vs client count with group commit on or off. Durable-commit
    latency (log force + one-way counter bump) is emulated with real
    wall-clock delays so coalescing is measurable across threads. *)

type result = {
  clients : int;
  group_commit : bool;
  committed : int;  (** transactions committed across all clients *)
  retries : int;  (** lock-timeout retries *)
  elapsed : float;  (** wall-clock seconds of the drive phase *)
  tps : float;
  durable_requests : int;  (** durable commits requested by clients *)
  barriers : int;  (** sync + counter bumps actually paid during the drive *)
  counter : int64;  (** one-way counter at the end *)
  balance_ok : bool;  (** branch balances sum to the deltas applied *)
}

val pp_result : Format.formatter -> result -> unit

val net_scale : Workload.scale
(** Default table sizes for network runs (1 000 / 100 / 10). *)

val run :
  ?security:bool ->
  ?sync_ms:float ->
  ?counter_ms:float ->
  ?scale:Workload.scale ->
  ?lock_timeout:float ->
  clients:int ->
  txns_per_client:int ->
  group_commit:bool ->
  unit ->
  result
(** Build a fresh TPC-B database, serve it on a loopback TCP socket, and
    drive it with [clients] concurrent sessions committing durably.
    [sync_ms]/[counter_ms] are the emulated log-force and counter-bump
    latencies. Raises whatever a client thread raised, if any. *)
