(** Simulated-disk timing for the benchmark harness: the container has
    neither the paper's 7200 rpm EIDE disk nor NTFS write-through, so each
    store operation charges a calibrated time model into a shared clock and
    the runner adds the accumulated simulated I/O time to measured CPU.
    The model anchors exactly one number — the baseline's response time —
    and everything else falls out of the implementations (EXPERIMENTS.md). *)

type model = {
  position_s : float;  (** penalty for a non-sequential write (or bulk read) *)
  force_s : float;  (** log force: sync with pending writes *)
  counter_force_s : float;  (** one-way-counter file update *)
  transfer_bytes_per_s : float;
}

val paper_platform : model

type clock = { mutable elapsed : float }

val clock : unit -> clock

val wrap_store : model -> clock -> Tdb_platform.Untrusted_store.t -> Tdb_platform.Untrusted_store.t
val wrap_counter : model -> clock -> Tdb_platform.One_way_counter.t -> Tdb_platform.One_way_counter.t
