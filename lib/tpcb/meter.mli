(** Metering workload (DRM usage meters): a large population of tiny
    chunks updated with Zipf-skewed traffic on a database far larger than
    the chunk-cache budget — the workload that measures cleaner write
    amplification as a function of skew and [Config.tiers]. *)

type scale = {
  meters : int;  (** population of tiny meter objects *)
  updates : int;  (** total meter updates to run *)
  batch : int;  (** meter updates per commit *)
  cache_bytes : int;  (** chunk-cache budget; DB size is many times this *)
}

val default_scale : scale
val quick_scale : scale

type zipf
(** Cumulative Zipf(alpha) distribution over ranks [0..n-1]. *)

val zipf : alpha:float -> int -> zipf
(** [alpha = 0] degenerates to uniform. *)

val sample : zipf -> Tdb_crypto.Drbg.t -> int

type result = {
  m_alpha : float;
  m_tiers : int;
  m_meters : int;
  m_updates : int;
  m_write_amp : float;
      (** cleaner bytes relocated / meter bytes committed, update phase
          only (the bulk load is excluded from both sides) *)
  m_bytes_relocated : int;
  m_bytes_committed : int;
  m_clean_passes : int;
  m_segments_cleaned : int;
  m_chunks_relocated : int;
  m_tier_segments : int list;
  m_db_size : int;
  m_live_bytes : int;
  m_cache_hit_rate : float;
  m_cpu_s : float;  (** wall-clock compute time for the update phase *)
  m_io_s : float;  (** simulated device I/O time for the update phase *)
}

val run : ?security:bool -> ?tiers:int -> alpha:float -> scale -> result
(** Build the meter store (Sim_disk-wrapped, TPC-B bench configuration),
    bulk-load the population, run the Zipf update phase and report. *)

val pp_result : Format.formatter -> result -> unit
