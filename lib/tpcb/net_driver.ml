(** Multi-client TPC-B over the network service: N client threads drive a
    {!Tdb_server.Server} through the RPC client, so throughput-vs-clients
    can be measured with group commit on or off.

    The database lives in an in-memory untrusted store whose [sync] — and
    the one-way counter's [increment] — are given real wall-clock latency
    ([sync_ms]/[counter_ms]), emulating the paper's platform (a log force
    plus a counter bump per durable commit, Section 7.2) in a way that
    works across threads ({!Sim_disk}'s virtual clock is single-threaded
    by design). Without group commit every durable commit pays that
    latency under the store's state mutex, so adding clients cannot help;
    with group commit one barrier covers every session that committed in
    the window, and throughput scales until the barrier saturates.

    Each TPC-B read-modify-write travels as a server-side ["add"] mutation
    (one round trip, no lock-upgrade window); lock timeouts — the paper's
    deadlock breaker, surfaced as aborted transactions over the wire — are
    retried client-side. *)

open Tdb_platform
open Tdb_chunk
open Tdb_objstore
open Tdb_collection
open Tdb_server

type result = {
  clients : int;
  group_commit : bool;
  committed : int;  (** transactions committed across all clients *)
  retries : int;  (** lock-timeout retries *)
  elapsed : float;  (** wall-clock seconds of the drive phase *)
  tps : float;
  durable_requests : int;  (** durable commits requested by clients *)
  barriers : int;  (** sync + counter bumps actually paid during the drive *)
  counter : int64;  (** one-way counter at the end *)
  balance_ok : bool;  (** branch balances sum to the deltas applied *)
}

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "%d client%s, group commit %s: %d txns in %.2fs = %.0f tps (%d retries, %d durable requests, %d barriers)"
    r.clients
    (if r.clients > 1 then "s" else "")
    (if r.group_commit then "on" else "off")
    r.committed r.elapsed r.tps r.retries r.durable_requests r.barriers

let net_scale : Workload.scale =
  { Workload.accounts = 1_000; tellers = 100; branches = 10; transactions = 0; measured = 0;
    cache_bytes = 256 * 1024 }

let id_ix () : (Workload.record, int) Indexer.t =
  Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (r : Workload.record) -> r.Workload.id)
    ~unique:true ~impl:Indexer.Hash ()

let hid_ix () : (Workload.history, int) Indexer.t =
  Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (h : Workload.history) -> h.Workload.h_id)
    ~unique:false ~impl:Indexer.List ()

(* Wrap the platform with wall-clock latency: syncs cost [sync_ms],
   counter bumps [counter_ms]. [Thread.delay] releases the runtime lock,
   so other sessions keep running — which is the point. *)
let delayed_platform ~sync_ms ~counter_ms =
  let _, raw_store = Untrusted_store.open_mem () in
  let store =
    if sync_ms > 0. then
      Untrusted_store.interpose raw_store
        ~before:(fun op ->
          match op with
          | Untrusted_store.Op_sync -> Thread.delay (sync_ms /. 1000.)
          | Untrusted_store.Op_write _ | Untrusted_store.Op_set_size _ -> ())
    else raw_store
  in
  let _, raw_counter = One_way_counter.open_mem () in
  let counter =
    if counter_ms > 0. then
      {
        One_way_counter.read = raw_counter.One_way_counter.read;
        increment =
          (fun () ->
            Thread.delay (counter_ms /. 1000.);
            raw_counter.One_way_counter.increment ());
      }
    else raw_counter
  in
  (store, counter)

type setup = {
  os : Object_store.t;
  cs : Chunk_store.t;
  srv : Server.t;
  server_addr : Server.addr;
}

let setup_server ~security ~sync_ms ~counter_ms ~group_commit ~lock_timeout (scale : Workload.scale) :
    setup =
  let store, counter = delayed_platform ~sync_ms ~counter_ms in
  let secret = Secret_store.of_seed "tpcb-net" in
  let config = { Config.default with Config.security; checkpoint_every = 1_000_000 } in
  let cs = Chunk_store.create ~config ~secret ~counter store in
  let os =
    Object_store.of_chunk_store
      ~config:
        { Object_store.cache_budget = scale.Workload.cache_bytes; locking = true; lock_timeout }
      cs
  in
  (* build and populate the four tables locally, then checkpoint so the
     drive phase starts from a clean log *)
  let accounts, tellers, branches =
    Cstore.with_ctxn ~durable:false os (fun ct ->
        let accounts = Cstore.create_collection ct ~name:"account" ~schema:Workload.account_cls (id_ix ()) in
        let tellers = Cstore.create_collection ct ~name:"teller" ~schema:Workload.teller_cls (id_ix ()) in
        let branches = Cstore.create_collection ct ~name:"branch" ~schema:Workload.branch_cls (id_ix ()) in
        ignore (Cstore.create_collection ct ~name:"history" ~schema:Workload.history_cls (hid_ix ()));
        (accounts, tellers, branches))
  in
  let load coll n =
    Cstore.with_ctxn ~durable:false os (fun ct ->
        for id = 0 to n - 1 do
          ignore (Cstore.insert ct coll (Workload.make_record ~id ~balance:0))
        done)
  in
  load accounts scale.Workload.accounts;
  load tellers scale.Workload.tellers;
  load branches scale.Workload.branches;
  Chunk_store.checkpoint cs;
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.group_commit }
      os (Server.Tcp ("127.0.0.1", 0))
  in
  let add (r : Workload.record) rd = r.Workload.balance <- r.Workload.balance + Tdb_pickle.Pickle.read_int rd in
  List.iter
    (fun (name, schema) ->
      Server.expose_collection srv ~name ~schema
        ~indexers:[ Indexer.Generic (id_ix ()) ]
        ~mutations:[ ("add", add) ] ())
    [ ("account", Workload.account_cls); ("teller", Workload.teller_cls); ("branch", Workload.branch_cls) ];
  Server.expose_collection srv ~name:"history" ~schema:Workload.history_cls
    ~indexers:[ Indexer.Generic (hid_ix ()) ]
    ();
  Server.start srv;
  { os; cs; srv; server_addr = Server.Tcp ("127.0.0.1", Server.port srv) }

(* One TPC-B transaction through the wire; retried on lock timeout (the
   server aborts the transaction before reporting, so a retry is a fresh
   transaction). Returns the number of retries it took. *)
let drive_txn (c : Client.t) (input : Workload.txn_input) ~(h_id : int) : int =
  let retries = ref 0 in
  let rec attempt () =
    match
      Client.begin_ c;
      let add coll cls id delta =
        ignore
          (Client.coll_mutate c ~coll ~index:"id" ~mutation:"add" Gkey.int id cls
             ~arg:(fun w -> Tdb_pickle.Pickle.int w delta))
      in
      add "account" Workload.account_cls input.Workload.account input.Workload.delta;
      add "teller" Workload.teller_cls input.Workload.teller input.Workload.delta;
      add "branch" Workload.branch_cls input.Workload.branch input.Workload.delta;
      ignore
        (Client.coll_insert c ~coll:"history" Workload.history_cls (Workload.make_history ~h_id ~input));
      Client.commit ~durable:true c
    with
    | () -> !retries
    | exception Client.Server_error { tag; msg = _ } when String.equal tag "lock_timeout" ->
        incr retries;
        attempt ()
  in
  attempt ()

(** Run [clients] concurrent client sessions, each committing
    [txns_per_client] TPC-B transactions durably, and report wall-clock
    throughput plus how many durable barriers the store actually paid. *)
let run ?(security = true) ?(sync_ms = 2.0) ?(counter_ms = 1.0) ?(scale = net_scale)
    ?(lock_timeout = 0.25) ~clients ~txns_per_client ~group_commit () : result =
  let s = setup_server ~security ~sync_ms ~counter_ms ~group_commit ~lock_timeout scale in
  let stats0 = Chunk_store.stats s.cs in
  let durable0 = stats0.Chunk_store.durable_commits in
  let retries = Array.make clients 0 in
  let deltas = Array.make clients 0 in
  let errors = Mutex.create () in
  let failure = ref None in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            match
              let c = Client.connect s.server_addr in
              let rng = Tdb_crypto.Drbg.create ~seed:(Printf.sprintf "net-client-%d" i) in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  for j = 0 to txns_per_client - 1 do
                    let input = Workload.gen_txn rng scale in
                    let h_id = i + (j * clients) in
                    retries.(i) <- retries.(i) + drive_txn c input ~h_id;
                    deltas.(i) <- deltas.(i) + input.Workload.delta
                  done)
            with
            | () -> ()
            | exception e ->
                Mutex.lock errors;
                (match !failure with None -> failure := Some e | Some _ -> ());
                Mutex.unlock errors)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  (match !failure with Some e -> raise e | None -> ());
  (* verification pass: branch balances must sum to the deltas applied *)
  let check = Client.connect s.server_addr in
  let balance_sum =
    Client.with_txn ~durable:false check (fun () ->
        List.fold_left
          (fun acc (_, r) -> acc + r.Workload.balance)
          0
          (Client.coll_scan check ~coll:"branch" ~index:"id" Gkey.int Workload.branch_cls))
  in
  let wire_stats = Client.stats check in
  Client.close check;
  Server.stop s.srv;
  let stats1 = Chunk_store.stats s.cs in
  let committed = clients * txns_per_client in
  {
    clients;
    group_commit;
    committed;
    retries = Array.fold_left ( + ) 0 retries;
    elapsed;
    tps = (if elapsed > 0. then float_of_int committed /. elapsed else 0.);
    durable_requests = committed;
    barriers = stats1.Chunk_store.durable_commits - durable0;
    counter = wire_stats.Proto.s_counter;
    balance_ok = Int.equal balance_sum (Array.fold_left ( + ) 0 deltas);
  }
