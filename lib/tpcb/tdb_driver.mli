(** TPC-B driver for TDB: four collection-store collections with a unique
    hash index on the 4-byte id (History uses a list index: cheap
    append-only maintenance). The benchmark configuration mirrors the
    paper's Section 7.3: SHA-1 hashing and a three-pass 64-bit-block
    cipher (Triple-XTEA standing in for 3DES), 60% default utilization. *)

type t = {
  os : Tdb_objstore.Object_store.t;
  cs : Tdb_chunk.Chunk_store.t;
  store : Tdb_platform.Untrusted_store.t;  (** unwrapped, for byte stats *)
  clock : Sim_disk.clock;
  accounts : Workload.record Tdb_collection.Cstore.collection;
  tellers : Workload.record Tdb_collection.Cstore.collection;
  branches : Workload.record Tdb_collection.Cstore.collection;
  history : Workload.history Tdb_collection.Cstore.collection;
  mutable next_history : int;
}

val setup :
  ?security:bool -> ?max_utilization:float -> ?model:Sim_disk.model -> ?domains:int ->
  Workload.scale -> t
(** Build and bulk-load a TPC-B database on an in-memory store whose I/O
    charges the simulated clock. [domains] sets the seal/unseal pipeline
    width (default: {!Tdb_parallel.Pool.default_domains}). *)

val txn : t -> Workload.txn_input -> int
(** One TPC-B transaction (durable commit); returns the account balance. *)

val idle_clean : t -> unit
(** Idle-period maintenance (uncharged by the runner). *)

val bytes_written : t -> int

val store_writes : t -> int
(** Cumulative store write calls (a vectored flush counts once). *)

val db_size : t -> int
val live_bytes : t -> int
val sim_time : t -> float
val stats : t -> Tdb_chunk.Chunk_store.stats
