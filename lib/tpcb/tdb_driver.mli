(** TPC-B driver for TDB: four collection-store collections with a unique
    hash index on the 4-byte id (History uses a list index: cheap
    append-only maintenance). The benchmark configuration mirrors the
    paper's Section 7.3: SHA-1 hashing and a three-pass 64-bit-block
    cipher (Triple-XTEA standing in for 3DES), 60% default utilization.

    With [shards > 1] the database is branch-partitioned: branch [b], its
    tellers, its contiguous account block and its own history collection
    live on shard [b mod shards], so home-branch transactions commit
    through a single shard while remote-account transactions take the
    cross-shard two-phase path. *)

type t = {
  os : Tdb_objstore.Object_store.t;
  cs : Tdb_chunk.Shard_store.t;
  stores : Tdb_platform.Untrusted_store.t array;  (** unwrapped, for byte stats *)
  clock : Sim_disk.clock;
  scale : Workload.scale;
  nshards : int;
  accounts : Workload.record Tdb_collection.Cstore.collection;
  tellers : Workload.record Tdb_collection.Cstore.collection;
  branches : Workload.record Tdb_collection.Cstore.collection;
  history : Workload.history Tdb_collection.Cstore.collection array;
      (** one per shard ([history.s]); a single ["history"] when unsharded *)
  mutable next_history : int;
}

val setup :
  ?security:bool -> ?max_utilization:float -> ?model:Sim_disk.model -> ?domains:int ->
  ?shards:int -> Workload.scale -> t
(** Build and bulk-load a TPC-B database on [shards] in-memory stores
    (default 1) whose I/O charges the simulated clock. [domains] sets the
    seal/unseal pipeline width (default:
    {!Tdb_parallel.Pool.default_domains}). *)

val txn : t -> Workload.txn_input -> int
(** One TPC-B transaction (durable commit); returns the account balance. *)

val idle_clean : t -> unit
(** Idle-period maintenance (uncharged by the runner). *)

val bytes_written : t -> int
(** Summed over all shards. *)

val store_writes : t -> int
(** Cumulative store write calls, summed over all shards (a vectored
    flush counts once). *)

val db_size : t -> int
val live_bytes : t -> int
val sim_time : t -> float
val stats : t -> Tdb_chunk.Chunk_store.stats
(** Aggregated over shards (see {!Tdb_chunk.Shard_store.stats}). *)

val shards : t -> int

val txn_commits : t -> int
(** Transactions committed through the router since setup. *)

val cross_commits : t -> int
(** The subset of {!txn_commits} that spanned more than one shard
    (two-phase commits). *)
