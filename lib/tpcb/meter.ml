(** Metering workload: the DRM traffic shape the paper motivates TDB with
    (Section 1) — a large population of tiny usage meters, updated with a
    Zipf-skewed hot head and a long cold tail, on a database far larger
    than the chunk-cache budget. Unlike TPC-B (uniform over four mid-size
    tables), this is the workload where single-population log cleaning
    recopies cold data over and over; it exists to measure cleaner write
    amplification as a function of skew (alpha) and [Config.tiers].

    The driver talks straight to the chunk store (one meter = one tiny
    chunk): no collection/index layer, so bytes relocated by the cleaner
    are the only write overhead besides the meters themselves and the
    location map. *)

open Tdb_platform
open Tdb_chunk

type scale = {
  meters : int;  (** population of tiny meter objects *)
  updates : int;  (** total meter updates to run *)
  batch : int;  (** meter updates per commit *)
  cache_bytes : int;  (** chunk-cache budget; DB size is many times this *)
}

let default_scale = { meters = 50_000; updates = 300_000; batch = 16; cache_bytes = 256 * 1024 }
let quick_scale = { meters = 5_000; updates = 15_000; batch = 16; cache_bytes = 32 * 1024 }

(* --- Zipf(alpha) sampler over ranks 0..n-1 ------------------------- *)

(** Cumulative Zipf distribution; [alpha = 0] degenerates to uniform. *)
type zipf = { cum : float array }

let zipf ~(alpha : float) (n : int) : zipf =
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** alpha));
    cum.(i) <- !acc
  done;
  let total = !acc in
  Array.iteri (fun i v -> cum.(i) <- v /. total) cum;
  { cum }

let sample (z : zipf) (rng : Tdb_crypto.Drbg.t) : int =
  let u = float_of_int (Tdb_crypto.Drbg.int rng 1_000_000_000) /. 1e9 in
  (* first rank whose cumulative mass covers u *)
  let lo = ref 0 and hi = ref (Array.length z.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cum.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- meter payloads ------------------------------------------------ *)

(** Tiny fixed-size payload: meter id, a use count and a timestamp-like
    value — the shape of a usage-metering record. *)
let meter_payload ~(id : int) ~(count : int) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.int32_fixed w id;
  P.int64 w (Int64.of_int count);
  P.int64 w (Int64.of_int (id * 7 + count));
  P.contents w

(* --- results ------------------------------------------------------- *)

type result = {
  m_alpha : float;
  m_tiers : int;
  m_meters : int;
  m_updates : int;
  m_write_amp : float;
      (** cleaner bytes relocated / meter bytes committed, both counted
          over the update phase only (the bulk load is excluded) *)
  m_bytes_relocated : int;
  m_bytes_committed : int;
  m_clean_passes : int;
  m_segments_cleaned : int;
  m_chunks_relocated : int;
  m_tier_segments : int list;
  m_db_size : int;
  m_live_bytes : int;
  m_cache_hit_rate : float;
  m_cpu_s : float;  (** wall-clock compute time for the update phase *)
  m_io_s : float;  (** simulated device I/O time for the update phase *)
}

(** Run the metering workload. [tiers] overrides [Config.tiers] for this
    store; the cipher class matches the TPC-B bench (paper Section 7.3:
    Triple-XTEA + SHA-1) at 75% max utilization — space pressure high
    enough that cleaner policy, not raw growth, sets the write bill. *)
let run ?(security = true) ?(tiers = Config.default.Config.tiers) ~(alpha : float) (s : scale) : result =
  let clock = Sim_disk.clock () in
  let store = Sim_disk.wrap_store Sim_disk.paper_platform clock (snd (Untrusted_store.open_mem ())) in
  let counter = Sim_disk.wrap_counter Sim_disk.paper_platform clock (snd (One_way_counter.open_mem ())) in
  let secret = Secret_store.of_seed "meter-device" in
  let config =
    { Config.default with Config.security; tiers; max_utilization = 0.75;
      checkpoint_every = 100_000; checkpoint_residual_bytes = max (384 * 1024) (4 * s.cache_bytes);
      chunk_cache_bytes = s.cache_bytes; cipher = Config.Triple_xtea; hash = Config.Sha1;
      domains = 1; shards = 1 }
  in
  let cs = Shard_store.create ~config ~secret ~counters:[| counter |] [| store |] in
  (* Bulk-load the meter population (nondurable batches, like the TPC-B
     load), then checkpoint into a settled state. *)
  let cids = Array.make s.meters 0 in
  let loaded = ref 0 in
  while !loaded < s.meters do
    let upto = min s.meters (!loaded + 2_000) in
    for id = !loaded to upto - 1 do
      let cid = Shard_store.allocate cs in
      cids.(id) <- cid;
      Shard_store.write cs cid (meter_payload ~id ~count:0)
    done;
    Shard_store.commit ~durable:false cs;
    loaded := upto
  done;
  Shard_store.checkpoint cs;
  (* Hot ranks must not map to adjacent meter ids: a deterministic shuffle
     scatters the Zipf head across the load-order segments, the realistic
     hard case for the cleaner. *)
  (* Seeded by alpha only: every tiers value must face the identical
     shuffle and update stream, or the rows aren't comparable. *)
  let rng = Tdb_crypto.Drbg.create ~seed:(Printf.sprintf "meter-%f" alpha) in
  let rank_to_id = Array.init s.meters Fun.id in
  for i = s.meters - 1 downto 1 do
    let j = Tdb_crypto.Drbg.int rng (i + 1) in
    let tmp = rank_to_id.(i) in
    rank_to_id.(i) <- rank_to_id.(j);
    rank_to_id.(j) <- tmp
  done;
  let z = zipf ~alpha s.meters in
  let counts = Array.make s.meters 0 in
  (* baseline after load: write amplification measures the update phase *)
  let st0 = Shard_store.stats cs in
  let data0 = st0.Chunk_store.bytes_data and rel0 = st0.Chunk_store.bytes_relocated in
  let io0 = clock.Sim_disk.elapsed in
  let t0 = Unix.gettimeofday () in
  let done_ = ref 0 and batch_no = ref 0 in
  while !done_ < s.updates do
    let upto = min s.updates (!done_ + s.batch) in
    for _ = !done_ to upto - 1 do
      let id = rank_to_id.(sample z rng) in
      (* read-modify-write, like a real meter bump: the read is what makes
         the chunk-cache budget (DB many times larger) visible in the hit
         rate — hot meters hit, the cold tail misses *)
      ignore (Shard_store.read cs cids.(id));
      counts.(id) <- counts.(id) + 1;
      Shard_store.write cs cids.(id) (meter_payload ~id ~count:counts.(id))
    done;
    incr batch_no;
    (* mostly-nondurable metering bursts with a periodic durable point *)
    Shard_store.commit ~durable:(!batch_no mod 16 = 0) cs;
    done_ := upto
  done;
  Shard_store.checkpoint cs;
  let cpu_s = Unix.gettimeofday () -. t0 in
  let st = Shard_store.stats cs in
  let relocated = st.Chunk_store.bytes_relocated - rel0 in
  (* [bytes_data] counts cleaner relocations too (they ride the same
     append path), so committed fresh bytes are the difference *)
  let committed = max 1 (st.Chunk_store.bytes_data - data0 - relocated) in
  let hits = st.Chunk_store.cache_hits and misses = st.Chunk_store.cache_misses in
  {
    m_alpha = alpha;
    m_tiers = tiers;
    m_meters = s.meters;
    m_updates = s.updates;
    m_write_amp = float_of_int relocated /. float_of_int committed;
    m_bytes_relocated = relocated;
    m_bytes_committed = committed;
    m_clean_passes = st.Chunk_store.clean_passes;
    m_segments_cleaned = st.Chunk_store.segments_cleaned;
    m_chunks_relocated = st.Chunk_store.chunks_relocated;
    m_tier_segments = st.Chunk_store.tier_segments;
    m_db_size = Shard_store.store_size cs;
    m_live_bytes = Shard_store.live_bytes cs;
    m_cache_hit_rate =
      (if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses));
    m_cpu_s = cpu_s;
    m_io_s = clock.Sim_disk.elapsed -. io0;
  }

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "alpha %.1f  tiers %d  write-amp %5.2f  (%7.2f MB relocated / %6.2f MB committed)  %3d passes  db %6.2f MB  cache %.0f%%  [%s]"
    r.m_alpha r.m_tiers r.m_write_amp
    (float_of_int r.m_bytes_relocated /. 1048576.)
    (float_of_int r.m_bytes_committed /. 1048576.)
    r.m_clean_passes
    (float_of_int r.m_db_size /. 1048576.)
    (100. *. r.m_cache_hit_rate)
    (String.concat " " (List.map string_of_int r.m_tier_segments))
