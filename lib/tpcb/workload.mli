(** TPC-B workload definition (paper Section 7.1, Figure 9): four tables
    of 100-byte records with 4-byte ids; each transaction updates a random
    Account, Teller and Branch record and inserts a History record. *)

type scale = {
  accounts : int;
  tellers : int;
  branches : int;
  transactions : int;
  measured : int;  (** trailing transactions that count toward the average *)
  cache_bytes : int;  (** both engines get the same cache budget *)
}

val paper_scale : scale
(** Figure 9 exactly: 100 000 / 1 000 / 100, 200 000 txns, 4 MB cache. *)

val default_scale : scale
(** 10× reduction preserving the cache:database ratio. *)

val quick_scale : scale

type txn_input = { account : int; teller : int; branch : int; delta : int }

val gen_txn : Tdb_crypto.Drbg.t -> scale -> txn_input
(** Uniform inputs (account, teller and branch drawn independently). *)

val gen_txn_affine : Tdb_crypto.Drbg.t -> scale -> txn_input
(** TPC-B's branch-affine inputs (clause 5.3.5): uniform teller fixes the
    branch; the account comes from that branch 85% of the time, uniformly
    from the others otherwise. Branches own contiguous account/teller id
    blocks — see {!branch_of_account}. *)

val branch_of_account : scale -> int -> int
(** Home branch of an account id under [gen_txn_affine]'s layout. *)

val tellers_per_branch : scale -> int
val accounts_per_branch : scale -> int

(** {1 Records} *)

val record_size : int

type record = { id : int; mutable balance : int; filler : string }

val make_record : id:int -> balance:int -> record
val pickle_record : Tdb_pickle.Pickle.writer -> record -> unit
val unpickle_record : version:int -> Tdb_pickle.Pickle.reader -> record

val account_cls : record Tdb_objstore.Obj_class.t
val teller_cls : record Tdb_objstore.Obj_class.t
val branch_cls : record Tdb_objstore.Obj_class.t

type history = {
  h_id : int;
  h_account : int;
  h_teller : int;
  h_branch : int;
  h_delta : int;
  h_filler : string;
}

val make_history : h_id:int -> input:txn_input -> history
val history_cls : history Tdb_objstore.Obj_class.t

(** {1 Flat encodings for the baseline engine} *)

val flat_of_record : record -> string
val record_of_flat : string -> record
val key_of_id : int -> string
