(** TPC-B driver for the Berkeley DB-style baseline: four B+tree tables
    keyed by decimal id, flat 100-byte values, per-commit log force. As in
    the paper's runs, the engine does not checkpoint during the benchmark,
    so its log keeps growing (Figure 11, right). *)

open Tdb_platform
open Tdb_baseline

type t = {
  db : Bdb.t;
  data : Untrusted_store.t; (* unwrapped stores, for byte stats *)
  wal : Untrusted_store.t;
  clock : Sim_disk.clock;
  mutable next_history : int;
}

let tables = [ "account"; "teller"; "branch" ]

let setup ?(model = Sim_disk.paper_platform) (scale : Workload.scale) : t =
  let clock = Sim_disk.clock () in
  let _, raw_data = Untrusted_store.open_mem () in
  let _, raw_wal = Untrusted_store.open_mem () in
  let data = Sim_disk.wrap_store model clock raw_data in
  let wal = Sim_disk.wrap_store model clock raw_wal in
  let db =
    Bdb.open_
      ~config:{ Bdb.cache_bytes = scale.Workload.cache_bytes; checkpoint_wal_bytes = None }
      ~data ~wal ()
  in
  let load table n =
    let batch = 2_000 in
    let loaded = ref 0 in
    while !loaded < n do
      let upto = min n (!loaded + batch) in
      let x = Bdb.begin_ db in
      for id = !loaded to upto - 1 do
        Bdb.put x ~table ~key:(Workload.key_of_id id)
          ~value:(Workload.flat_of_record (Workload.make_record ~id ~balance:0))
      done;
      Bdb.commit ~durable:false x;
      loaded := upto
    done
  in
  load "account" scale.Workload.accounts;
  load "teller" scale.Workload.tellers;
  load "branch" scale.Workload.branches;
  ignore tables;
  (* load complete: flush pages and start the benchmark with an empty log *)
  Bdb.checkpoint db;
  { db; data = raw_data; wal = raw_wal; clock; next_history = 0 }

let update x ~table ~id ~delta : int =
  let key = Workload.key_of_id id in
  match Bdb.get x ~table ~key with
  | None -> failwith (Printf.sprintf "tpcb: missing %s %d" table id)
  | Some flat ->
      let r = Workload.record_of_flat flat in
      r.Workload.balance <- r.Workload.balance + delta;
      Bdb.put x ~table ~key ~value:(Workload.flat_of_record r);
      r.Workload.balance

(** One TPC-B transaction (durable commit). *)
let txn (t : t) (input : Workload.txn_input) : int =
  let x = Bdb.begin_ t.db in
  let balance = update x ~table:"account" ~id:input.Workload.account ~delta:input.Workload.delta in
  ignore (update x ~table:"teller" ~id:input.Workload.teller ~delta:input.Workload.delta);
  ignore (update x ~table:"branch" ~id:input.Workload.branch ~delta:input.Workload.delta);
  let h = Workload.make_history ~h_id:t.next_history ~input in
  (* flatten the history record into 100 bytes *)
  let flat =
    Workload.flat_of_record
      (Workload.make_record ~id:h.Workload.h_id ~balance:h.Workload.h_delta)
  in
  Bdb.put x ~table:"history" ~key:(Workload.key_of_id h.Workload.h_id) ~value:flat;
  t.next_history <- t.next_history + 1;
  Bdb.commit ~durable:true x;
  balance

let bytes_written (t : t) : int =
  (Untrusted_store.stats t.data).Untrusted_store.bytes_written
  + (Untrusted_store.stats t.wal).Untrusted_store.bytes_written

let store_writes (t : t) : int =
  (Untrusted_store.stats t.data).Untrusted_store.writes
  + (Untrusted_store.stats t.wal).Untrusted_store.writes

let db_size (t : t) : int = Untrusted_store.size t.data + Untrusted_store.size t.wal
let sim_time (t : t) : float = t.clock.Sim_disk.elapsed
