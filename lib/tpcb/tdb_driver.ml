(** TPC-B driver for TDB: the four tables are collection-store collections
    with a unique hash index on the 4-byte id (History uses a B-tree, whose
    monotonically growing ids make inserts cheap rightmost appends).

    With [shards > 1] the database is partitioned per branch (paper
    Section 7's natural TPC-B partitioning): branch [b] lives on shard
    [b mod shards] together with its tellers, its contiguous block of
    accounts and its own history collection, so a home-branch transaction
    commits entirely through one shard's log while a remote-account
    transaction (15% under {!Workload.gen_txn_affine}) exercises the
    cross-shard two-phase commit. *)

open Tdb_platform
open Tdb_chunk
open Tdb_objstore
open Tdb_collection

type t = {
  os : Object_store.t;
  cs : Shard_store.t;
  stores : Untrusted_store.t array; (* unwrapped, for byte stats *)
  clock : Sim_disk.clock;
  scale : Workload.scale;
  nshards : int;
  accounts : Workload.record Cstore.collection;
  tellers : Workload.record Cstore.collection;
  branches : Workload.record Cstore.collection;
  history : Workload.history Cstore.collection array; (* one per shard *)
  mutable next_history : int;
}

let id_ix () : (Workload.record, int) Indexer.t =
  Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (r : Workload.record) -> r.Workload.id) ~unique:true
    ~impl:Indexer.Hash ()

(* History is append-only: a list index keeps the per-insert index write a
   small head-node delta (the role the paper's list indexes serve). *)
let hid_ix () : (Workload.history, int) Indexer.t =
  Indexer.make ~name:"id" ~key:Gkey.int ~extract:(fun (h : Workload.history) -> h.Workload.h_id) ~unique:false
    ~impl:Indexer.List ()

(* Branch-block row placement: branch [b] and everything belonging to it
   live on shard [b mod n]. *)
let shard_of_branch n b = b mod n

let history_name n s = if n <= 1 then "history" else Printf.sprintf "history.%d" s

(** Build and populate a TPC-B database in an in-memory untrusted store
    whose I/O is charged to [clock] (see {!Sim_disk}). *)
let setup ?(security = true) ?(max_utilization = 0.6) ?(model = Sim_disk.paper_platform)
    ?(domains = Tdb_parallel.Pool.default_domains ()) ?(shards = 1) (scale : Workload.scale) : t =
  let clock = Sim_disk.clock () in
  let raw_stores = Array.init shards (fun _ -> snd (Untrusted_store.open_mem ())) in
  let stores = Array.map (Sim_disk.wrap_store model clock) raw_stores in
  let counters =
    Array.init shards (fun _ -> Sim_disk.wrap_counter model clock (snd (One_way_counter.open_mem ())))
  in
  let secret = Secret_store.of_seed "tpcb-device" in
  (* Benchmark configuration parity with the paper (Section 7.3): SHA-1
     hashing and a three-pass 64-bit-block cipher standing in for 3DES
     (Triple-XTEA: same block size and pass count; see DESIGN.md).
     Checkpoints fire on the residual-byte trigger, modelling the paper's
     idle-time map checkpointing without an idle generator in the
     workload. *)
  let config =
    { Config.default with Config.security; max_utilization; checkpoint_every = 100_000;
      (* map checkpoints are idle-time work (the runner's idle maintenance
         checkpoints + cleans); the residual trigger is a backstop scaled
         with the configuration so it does not fire between idle windows *)
      checkpoint_residual_bytes = max (384 * 1024) scale.Workload.cache_bytes;
      (* two-level cache, one budget: the workload's cache allowance is
         split so the chunk store's verified-chunk cache (the paper's
         cleartext-chunk cache) holds the bulk of it, with a small object
         cache above for the pinned/unpickled working set. An equal-size
         second level under LRU inclusion would duplicate the first and
         capture nothing; total memory stays at BDB parity. *)
      chunk_cache_bytes = scale.Workload.cache_bytes * 3 / 4;
      cipher = Config.Triple_xtea; hash = Config.Sha1; domains; shards }
  in
  let cs = Shard_store.create ~config ~secret ~counters stores in
  let os =
    Object_store.of_shard_store
      ~config:{ Object_store.default_config with Object_store.cache_budget = scale.Workload.cache_bytes / 4; locking = false }
      cs
  in
  (* create collections; each history collection is pinned to its shard *)
  let handles =
    Cstore.with_ctxn ~durable:false os (fun ct ->
        let accounts = Cstore.create_collection ct ~name:"account" ~schema:Workload.account_cls (id_ix ()) in
        let tellers = Cstore.create_collection ct ~name:"teller" ~schema:Workload.teller_cls (id_ix ()) in
        let branches = Cstore.create_collection ct ~name:"branch" ~schema:Workload.branch_cls (id_ix ()) in
        let history =
          Array.init shards (fun s ->
              Cstore.create_collection ~shard:s ct ~name:(history_name shards s)
                ~schema:Workload.history_cls (hid_ix ()))
        in
        (accounts, tellers, branches, history))
  in
  let accounts, tellers, branches, history = handles in
  (* bulk load in batches to bound transaction size; [place] routes each
     row to its home branch's shard *)
  let load coll n place =
    let batch = 2_000 in
    let loaded = ref 0 in
    while !loaded < n do
      let upto = min n (!loaded + batch) in
      Cstore.with_ctxn ~durable:false os (fun ct ->
          for id = !loaded to upto - 1 do
            if shards > 1 then Object_store.set_alloc_shard (Cstore.txn ct) (Some (place id));
            ignore (Cstore.insert ct coll (Workload.make_record ~id ~balance:0))
          done);
      loaded := upto
    done
  in
  let shard_of_account id = shard_of_branch shards (Workload.branch_of_account scale id) in
  let tpb = Workload.tellers_per_branch scale in
  load accounts scale.Workload.accounts shard_of_account;
  load tellers scale.Workload.tellers (fun id ->
      shard_of_branch shards (min (scale.Workload.branches - 1) (id / tpb)));
  load branches scale.Workload.branches (shard_of_branch shards);
  Shard_store.checkpoint cs;
  { os; cs; stores = raw_stores; clock; scale; nshards = shards; accounts; tellers; branches; history;
    next_history = 0 }

let update_balance ct coll id delta =
  let it = Cstore.exact ct coll (id_ix ()) id in
  if Cstore.at_end it then begin
    Cstore.close it;
    failwith (Printf.sprintf "tpcb: missing record %d" id)
  end;
  let r = Cstore.write it in
  r.Workload.balance <- r.Workload.balance + delta;
  let balance = r.Workload.balance in
  Cstore.advance it;
  Cstore.close it;
  balance

(** One TPC-B transaction (durable commit). Returns the account balance, as
    the benchmark requires the read value. The history record goes to the
    teller's home shard; a remote account makes the commit span two shards
    and take the cross-shard two-phase path. *)
let txn (t : t) (input : Workload.txn_input) : int =
  let home = shard_of_branch t.nshards input.Workload.branch in
  Cstore.with_ctxn ~durable:true t.os (fun ct ->
      if t.nshards > 1 then Object_store.set_alloc_shard (Cstore.txn ct) (Some home);
      let balance = update_balance ct t.accounts input.Workload.account input.Workload.delta in
      ignore (update_balance ct t.tellers input.Workload.teller input.Workload.delta);
      ignore (update_balance ct t.branches input.Workload.branch input.Workload.delta);
      let h = Workload.make_history ~h_id:t.next_history ~input in
      ignore (Cstore.insert ct t.history.(home) h);
      t.next_history <- t.next_history + 1;
      balance)

(** Idle-period maintenance (the paper defers cleaning to idle time). A
    bounded pass per idle window keeps each pause short, like a real
    device's background task. *)
let idle_clean (t : t) : unit = Shard_store.clean ~max_segments:16 t.cs

let sum_stats (t : t) (f : Untrusted_store.stats -> int) : int =
  Array.fold_left (fun acc s -> acc + f (Untrusted_store.stats s)) 0 t.stores

let bytes_written (t : t) : int = sum_stats t (fun s -> s.Untrusted_store.bytes_written)
let store_writes (t : t) : int = sum_stats t (fun s -> s.Untrusted_store.writes)
let db_size (t : t) : int = Shard_store.store_size t.cs
let live_bytes (t : t) : int = Shard_store.live_bytes t.cs
let sim_time (t : t) : float = t.clock.Sim_disk.elapsed
let stats (t : t) = Shard_store.stats t.cs
let shards (t : t) : int = t.nshards
let txn_commits (t : t) : int = Shard_store.txn_commits t.cs
let cross_commits (t : t) : int = Shard_store.cross_commits t.cs
