(** Experiment runner: drives the TPC-B workload against either engine and
    reports what the paper reports — steady-state average response time,
    foreground bytes written per transaction, and final database size. *)

type result = {
  label : string;
  txns : int;
  avg_ms : float;  (** measured CPU + simulated I/O *)
  p95_ms : float;
  cpu_avg_ms : float;
  io_avg_ms : float;
  bytes_per_txn : float;  (** foreground (transaction-path) writes only *)
  store_writes_per_txn : float;
      (** foreground store write {e calls} — a vectored flush counts once *)
  store_bytes_per_txn : float;  (** foreground store bytes, same window *)
  db_size : int;
  live_bytes : int;  (** TDB only *)
  alloc_words_per_txn : float;  (** GC words allocated per measured txn *)
  cache_hits : int;  (** TDB only: verified-chunk cache *)
  cache_misses : int;
  shards : int;  (** chunk-store shard width (1 = unsharded) *)
  cross_txn_fraction : float;
      (** fraction of commits that spanned more than one shard (two-phase
          commits); 0 when unsharded *)
}

val hit_rate : result -> float
(** Verified-chunk cache hit rate in [0,1] (0 when the cache saw no traffic). *)

val percentile : float array -> float -> float
val mean : float array -> float

val run_tdb :
  ?security:bool -> ?max_utilization:float -> ?model:Sim_disk.model -> ?idle_every:int ->
  ?domains:int -> ?shards:int -> ?affine:bool -> Workload.scale -> result
(** [idle_every] injects idle-period maintenance (uncharged cleaning) every
    N transactions — the paper's DRM workload shape. [domains] sets the
    seal/unseal pipeline width (default:
    {!Tdb_parallel.Pool.default_domains}). [shards] (default 1) runs the
    benchmark over a branch-partitioned sharded store; [affine] switches
    the input generator to {!Workload.gen_txn_affine} (use it for shard
    sweeps at {e every} width so cross-shard fractions are comparable). *)

val run_bdb : ?model:Sim_disk.model -> Workload.scale -> result

val pp_result : Format.formatter -> result -> unit
