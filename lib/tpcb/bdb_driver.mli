(** TPC-B driver for the Berkeley DB-style baseline: four B+tree tables
    keyed by decimal id, flat 100-byte values, per-commit log force, and —
    as in the paper's runs — no checkpointing during the benchmark. *)

type t = {
  db : Tdb_baseline.Bdb.t;
  data : Tdb_platform.Untrusted_store.t;
  wal : Tdb_platform.Untrusted_store.t;
  clock : Sim_disk.clock;
  mutable next_history : int;
}

val setup : ?model:Sim_disk.model -> Workload.scale -> t
val txn : t -> Workload.txn_input -> int
val bytes_written : t -> int

val store_writes : t -> int
(** Cumulative write calls across data + WAL stores. *)

val db_size : t -> int
val sim_time : t -> float
