(** Simulated-disk timing for the benchmark harness.

    The container this reproduction runs in has neither the paper's 7200 rpm
    EIDE disk nor NTFS write-through semantics, and wall-clock I/O here is
    dominated by page-cache memcpys. To reproduce the paper's *response
    times* (which are dominated by positioning and log-force latency) we
    charge a calibrated time model for each store operation and add the
    accumulated simulated I/O time to the measured CPU time:

    - sequential writes pay transfer time only (the log tail; BDB's WAL);
    - non-sequential writes pay a positioning penalty (BDB's in-place page
      writebacks when the buffer pool steals dirty pages);
    - a sync with pending writes pays a log-force latency (both engines
      force their log once per durable transaction — the paper's
      WRITE_THROUGH log files);
    - bulk reads (>= 32 KiB: the cleaner scanning cold segments) pay
      positioning plus transfer; small reads are free (warm caches);
    - the one-way counter file costs a small force of its own per update
      ("emulated as a file on the same NTFS partition", Section 7.2) —
      this is the dominant cost TDB-S adds over TDB.

    Defaults are calibrated against the paper's platform (8.9/10.9 ms
    seeks, 4.2 ms average rotational latency, 2 MB controller cache and the
    NT lazy writer smoothing random write-backs): positioning 3.3 ms, log
    force 3.5 ms, counter force 2.0 ms, 20 MB/s transfer. The calibration
    anchors one point — the baseline's absolute response time — and every
    other number (TDB, TDB-S, the utilization sweep) falls out of the
    implementations. Reads are not charged (both systems run with warm
    caches in steady state; the paper's working sets are cacheable). *)

type model = {
  position_s : float; (* penalty for a non-sequential write *)
  force_s : float; (* log force: sync with pending writes *)
  counter_force_s : float; (* one-way-counter file update *)
  transfer_bytes_per_s : float;
}

let paper_platform =
  { position_s = 0.0033; force_s = 0.0035; counter_force_s = 0.002; transfer_bytes_per_s = 20e6 }

(** Shared simulated clock: all wrapped devices of one experiment add into
    the same clock. *)
type clock = { mutable elapsed : float }

let clock () = { elapsed = 0.0 }

(** Wrap a store so its writes/syncs advance [clock] per [model]. *)
let wrap_store (m : model) (c : clock) (s : Tdb_platform.Untrusted_store.t) : Tdb_platform.Untrusted_store.t
    =
  let last_end = ref (-1) in
  let pending = ref false in
  {
    s with
    Tdb_platform.Untrusted_store.read =
      (fun ~off ~len ->
        if len >= 32 * 1024 then begin
          c.elapsed <- c.elapsed +. m.position_s +. (float_of_int len /. m.transfer_bytes_per_s);
          last_end := off + len
        end;
        s.Tdb_platform.Untrusted_store.read ~off ~len);
    Tdb_platform.Untrusted_store.write =
      (fun ~off data ->
        if not (Int.equal off !last_end) then c.elapsed <- c.elapsed +. m.position_s;
        c.elapsed <- c.elapsed +. (float_of_int (String.length data) /. m.transfer_bytes_per_s);
        last_end := off + String.length data;
        pending := true;
        s.Tdb_platform.Untrusted_store.write ~off data);
    Tdb_platform.Untrusted_store.writev =
      (fun ~off frags ->
        (* one contiguous device write: at most one positioning charge,
           then the summed transfer *)
        let total = List.fold_left (fun n f -> n + String.length f) 0 frags in
        if total > 0 then begin
          if not (Int.equal off !last_end) then c.elapsed <- c.elapsed +. m.position_s;
          c.elapsed <- c.elapsed +. (float_of_int total /. m.transfer_bytes_per_s);
          last_end := off + total;
          pending := true
        end;
        s.Tdb_platform.Untrusted_store.writev ~off frags);
    Tdb_platform.Untrusted_store.sync =
      (fun () ->
        if !pending then c.elapsed <- c.elapsed +. m.force_s;
        pending := false;
        s.Tdb_platform.Untrusted_store.sync ());
  }

(** Wrap a one-way counter so increments charge the counter-file force. *)
let wrap_counter (m : model) (c : clock) (ctr : Tdb_platform.One_way_counter.t) :
    Tdb_platform.One_way_counter.t =
  {
    Tdb_platform.One_way_counter.read = (fun () -> Tdb_platform.One_way_counter.read ctr);
    increment =
      (fun () ->
        c.elapsed <- c.elapsed +. m.counter_force_s;
        Tdb_platform.One_way_counter.increment ctr);
  }
