(** Experiment runner: executes the TPC-B workload against either engine
    and reports the figures the paper reports — average response time over
    the trailing (steady-state) half of the run, bytes written per
    transaction, and final database size. *)

type result = {
  label : string;
  txns : int;
  avg_ms : float; (* cpu + simulated I/O *)
  p95_ms : float;
  cpu_avg_ms : float;
  io_avg_ms : float;
  bytes_per_txn : float; (* steady-state *)
  store_writes_per_txn : float; (* store write calls; a vectored flush counts once *)
  store_bytes_per_txn : float; (* same accounting window as store_writes_per_txn *)
  db_size : int; (* final on-disk footprint, bytes *)
  live_bytes : int; (* TDB only: live data *)
  alloc_words_per_txn : float; (* GC words allocated per measured txn *)
  cache_hits : int; (* TDB only: verified-chunk cache *)
  cache_misses : int;
  shards : int; (* chunk-store shard width (1 = unsharded) *)
  cross_txn_fraction : float; (* fraction of commits that spanned >1 shard *)
}

let hit_rate (r : result) : float =
  let n = r.cache_hits + r.cache_misses in
  if n = 0 then 0.0 else float_of_int r.cache_hits /. float_of_int n

let percentile (samples : float array) (p : float) : float =
  if Array.length samples = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    sorted.(min (Array.length sorted - 1) (int_of_float (p *. float_of_int (Array.length sorted))))
  end

let mean (samples : float array) : float =
  if Array.length samples = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)

(** Drive [txn] for [scale.transactions] inputs; measure the trailing
    [scale.measured]. [sim_time] reads the simulated-I/O clock; [bytes]
    reads cumulative bytes written; [writes] reads cumulative store write
    calls (same foreground-only accounting window). *)
let drive ?idle_every ?(idle : (unit -> unit) option) ?(gen = Workload.gen_txn)
    (scale : Workload.scale) ~(seed : string)
    ~(txn : Workload.txn_input -> unit) ~(sim_time : unit -> float) ~(bytes : unit -> int)
    ~(writes : unit -> int) :
    float array * float array * float array * float * float * float =
  let rng = Tdb_crypto.Drbg.create ~seed in
  let n = scale.Workload.transactions in
  let measured = min n scale.Workload.measured in
  let warmup = n - measured in
  let total = Array.make measured 0.0 in
  let cpu = Array.make measured 0.0 in
  let io = Array.make measured 0.0 in
  let fg_bytes = ref 0 in
  let fg_writes = ref 0 in
  let alloc = ref 0.0 in
  for i = 0 to n - 1 do
    (* DRM workloads are "short sequences of transactions separated by long
       idle periods" (paper Section 1); with [idle_every], maintenance runs
       between bursts and neither its time nor its writes are charged to
       any transaction *)
    (match (idle_every, idle) with
    | Some k, Some f when i > 0 && i mod k = 0 -> f ()
    | _ -> ());
    let input = gen rng scale in
    let t0 = Unix.gettimeofday () and s0 = sim_time () and b0 = bytes () and w0 = writes () in
    let a0 = Gc.allocated_bytes () in
    txn input;
    let t1 = Unix.gettimeofday () and s1 = sim_time () in
    let a1 = Gc.allocated_bytes () in
    if i >= warmup then begin
      let j = i - warmup in
      cpu.(j) <- t1 -. t0;
      io.(j) <- s1 -. s0;
      total.(j) <- (t1 -. t0) +. (s1 -. s0);
      fg_bytes := !fg_bytes + (bytes () - b0);
      fg_writes := !fg_writes + (writes () - w0);
      alloc := !alloc +. (a1 -. a0)
    end
  done;
  let bytes_per_txn = float_of_int !fg_bytes /. float_of_int measured in
  let writes_per_txn = float_of_int !fg_writes /. float_of_int measured in
  let alloc_per_txn = !alloc /. float_of_int (Sys.word_size / 8) /. float_of_int measured in
  (total, cpu, io, bytes_per_txn, writes_per_txn, alloc_per_txn)

let run_tdb ?(security = true) ?(max_utilization = 0.6) ?model ?idle_every ?domains
    ?(shards = 1) ?(affine = false) (scale : Workload.scale) :
    result =
  let t = Tdb_driver.setup ~security ~max_utilization ?model ?domains ~shards scale in
  let gen = if affine then Workload.gen_txn_affine else Workload.gen_txn in
  let total, cpu, io, bytes_per_txn, writes_per_txn, alloc_words_per_txn =
    drive ?idle_every ~idle:(fun () -> Tdb_driver.idle_clean t) ~gen scale ~seed:"tpcb-run"
      ~txn:(fun input -> ignore (Tdb_driver.txn t input))
      ~sim_time:(fun () -> Tdb_driver.sim_time t)
      ~bytes:(fun () -> Tdb_driver.bytes_written t)
      ~writes:(fun () -> Tdb_driver.store_writes t)
  in
  let st = Tdb_driver.stats t in
  let commits = Tdb_driver.txn_commits t in
  {
    label = (if security then "TDB-S" else "TDB");
    txns = Array.length total;
    avg_ms = 1000. *. mean total;
    p95_ms = 1000. *. percentile total 0.95;
    cpu_avg_ms = 1000. *. mean cpu;
    io_avg_ms = 1000. *. mean io;
    bytes_per_txn;
    store_writes_per_txn = writes_per_txn;
    store_bytes_per_txn = bytes_per_txn;
    db_size = Tdb_driver.db_size t;
    live_bytes = Tdb_driver.live_bytes t;
    alloc_words_per_txn;
    cache_hits = st.Tdb_chunk.Chunk_store.cache_hits;
    cache_misses = st.Tdb_chunk.Chunk_store.cache_misses;
    shards = Tdb_driver.shards t;
    cross_txn_fraction =
      (if commits = 0 then 0.0
       else float_of_int (Tdb_driver.cross_commits t) /. float_of_int commits);
  }

let run_bdb ?model (scale : Workload.scale) : result =
  let t = Bdb_driver.setup ?model scale in
  let total, cpu, io, bytes_per_txn, writes_per_txn, alloc_words_per_txn =
    drive scale ~seed:"tpcb-run"
      ~txn:(fun input -> ignore (Bdb_driver.txn t input))
      ~sim_time:(fun () -> Bdb_driver.sim_time t)
      ~bytes:(fun () -> Bdb_driver.bytes_written t)
      ~writes:(fun () -> Bdb_driver.store_writes t)
  in
  {
    label = "BerkeleyDB";
    txns = Array.length total;
    avg_ms = 1000. *. mean total;
    p95_ms = 1000. *. percentile total 0.95;
    cpu_avg_ms = 1000. *. mean cpu;
    io_avg_ms = 1000. *. mean io;
    bytes_per_txn;
    store_writes_per_txn = writes_per_txn;
    store_bytes_per_txn = bytes_per_txn;
    db_size = Bdb_driver.db_size t;
    live_bytes = 0;
    alloc_words_per_txn;
    cache_hits = 0;
    cache_misses = 0;
    shards = 1;
    cross_txn_fraction = 0.0;
  }

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "%-12s avg %6.2f ms  (cpu %5.2f + io %5.2f)  p95 %6.2f ms  %7.0f B/txn  %5.1f w/txn  db %6.2f MB"
    r.label r.avg_ms r.cpu_avg_ms r.io_avg_ms r.p95_ms r.bytes_per_txn r.store_writes_per_txn
    (float_of_int r.db_size /. 1048576.);
  if r.cache_hits + r.cache_misses > 0 then
    Format.fprintf ppf "  cache %.0f%%" (100. *. hit_rate r)
