(** TPC-B workload definition (paper Section 7.1, Figure 9).

    "The benchmark schema consists of four collections: Account, Teller,
    Branch and History. Objects in all four collections are 100 bytes long
    and contain 4-byte unique ids. A transaction reads and updates a random
    object from each of the Account, Branch and Teller collections and
    inserts a new object into the History collection."

    Scales: [paper_scale] reproduces Figure 9 exactly (100 000 accounts,
    200 000 transactions); [default_scale] is a 10× reduction so the full
    harness runs in seconds while preserving the cache-to-database ratio
    that drives the results (the cache is scaled with the data). *)

type scale = {
  accounts : int;
  tellers : int;
  branches : int;
  transactions : int; (* total txns to run *)
  measured : int; (* how many trailing txns count toward the average *)
  cache_bytes : int; (* both engines get the same cache budget *)
}

let paper_scale =
  { accounts = 100_000; tellers = 1_000; branches = 100; transactions = 200_000; measured = 100_000;
    cache_bytes = 4 * 1024 * 1024 }

let default_scale =
  { accounts = 10_000; tellers = 100; branches = 10; transactions = 20_000; measured = 10_000;
    cache_bytes = 400 * 1024 }

let quick_scale =
  { accounts = 1_000; tellers = 10; branches = 2; transactions = 2_000; measured = 1_000;
    cache_bytes = 64 * 1024 }

(** One TPC-B transaction's inputs. *)
type txn_input = { account : int; teller : int; branch : int; delta : int }

let gen_txn (rng : Tdb_crypto.Drbg.t) (s : scale) : txn_input =
  {
    account = Tdb_crypto.Drbg.int rng s.accounts;
    teller = Tdb_crypto.Drbg.int rng s.tellers;
    branch = Tdb_crypto.Drbg.int rng s.branches;
    delta = Tdb_crypto.Drbg.int rng 1_999_999 - 999_999;
  }

(* --- branch-affine inputs (TPC-B clause 5.3.5 shape) --- *)

let tellers_per_branch (s : scale) = max 1 (s.tellers / s.branches)
let accounts_per_branch (s : scale) = max 1 (s.accounts / s.branches)

(** Home branch of an account id under the contiguous-block layout
    [gen_txn_affine] draws from. *)
let branch_of_account (s : scale) (account : int) : int =
  min (s.branches - 1) (account / accounts_per_branch s)

(** TPC-B's branch-affine input distribution (clause 5.3.5): the teller is
    uniform and fixes the branch; the account is drawn from the teller's
    home branch 85% of the time and uniformly from the {e other} branches
    the remaining 15%. Branches own contiguous id blocks
    ([accounts / branches] accounts each). Under a sharded store, remote
    accounts are what make a transaction span two shards. *)
let gen_txn_affine (rng : Tdb_crypto.Drbg.t) (s : scale) : txn_input =
  let tpb = tellers_per_branch s and apb = accounts_per_branch s in
  let branch = Tdb_crypto.Drbg.int rng s.branches in
  let teller = min (s.tellers - 1) ((branch * tpb) + Tdb_crypto.Drbg.int rng tpb) in
  let account_branch =
    if s.branches > 1 && Tdb_crypto.Drbg.int rng 100 < 15 then begin
      let ob = Tdb_crypto.Drbg.int rng (s.branches - 1) in
      if ob >= branch then ob + 1 else ob
    end
    else branch
  in
  let account = min (s.accounts - 1) ((account_branch * apb) + Tdb_crypto.Drbg.int rng apb) in
  { account; teller; branch; delta = Tdb_crypto.Drbg.int rng 1_999_999 - 999_999 }

(* ------------------------------------------------------------------ *)
(* Records: 100 bytes, 4-byte ids                                      *)
(* ------------------------------------------------------------------ *)

let record_size = 100

type record = { id : int; mutable balance : int; filler : string }

(** Pad so one pickled record (id 4 B fixed + balance 8 B fixed + filler
    with 1-byte length prefix) is exactly [record_size] bytes. *)
let filler_len = record_size - 4 - 8 - 1

let make_record ~id ~balance = { id; balance; filler = String.make filler_len '\x2a' }

let pickle_record w (r : record) =
  let module P = Tdb_pickle.Pickle in
  P.int32_fixed w r.id;
  P.int64 w (Int64.of_int r.balance);
  P.string w r.filler

let unpickle_record ~version:_ r =
  let module P = Tdb_pickle.Pickle in
  let id = P.read_int32_fixed r in
  let balance = Int64.to_int (P.read_int64 r) in
  let filler = P.read_string r in
  { id; balance; filler }

(* One class per table, as the paper has one collection schema class each. *)
let account_cls : record Tdb_objstore.Obj_class.t =
  Tdb_objstore.Obj_class.define ~name:"tpcb.account" ~pickle:pickle_record ~unpickle:unpickle_record ()

let teller_cls : record Tdb_objstore.Obj_class.t =
  Tdb_objstore.Obj_class.define ~name:"tpcb.teller" ~pickle:pickle_record ~unpickle:unpickle_record ()

let branch_cls : record Tdb_objstore.Obj_class.t =
  Tdb_objstore.Obj_class.define ~name:"tpcb.branch" ~pickle:pickle_record ~unpickle:unpickle_record ()

(* History record: 100 bytes incl. the ids it references. *)
type history = { h_id : int; h_account : int; h_teller : int; h_branch : int; h_delta : int; h_filler : string }

let history_filler_len = record_size - (4 * 4) - 8 - 1

let make_history ~h_id ~(input : txn_input) =
  {
    h_id;
    h_account = input.account;
    h_teller = input.teller;
    h_branch = input.branch;
    h_delta = input.delta;
    h_filler = String.make history_filler_len '\x2a';
  }

let history_cls : history Tdb_objstore.Obj_class.t =
  let module P = Tdb_pickle.Pickle in
  Tdb_objstore.Obj_class.define ~name:"tpcb.history"
    ~pickle:(fun w h ->
      P.int32_fixed w h.h_id;
      P.int32_fixed w h.h_account;
      P.int32_fixed w h.h_teller;
      P.int32_fixed w h.h_branch;
      P.int64 w (Int64.of_int h.h_delta);
      P.string w h.h_filler)
    ~unpickle:(fun ~version:_ r ->
      let h_id = P.read_int32_fixed r in
      let h_account = P.read_int32_fixed r in
      let h_teller = P.read_int32_fixed r in
      let h_branch = P.read_int32_fixed r in
      let h_delta = Int64.to_int (P.read_int64 r) in
      let h_filler = P.read_string r in
      { h_id; h_account; h_teller; h_branch; h_delta; h_filler })
    ()

(* --- flat 100-byte encoding for the baseline engine (untyped values) --- *)

let flat_of_record (r : record) : string =
  let b = Bytes.make record_size '\x2a' in
  Bytes.set b 0 (Char.chr ((r.id lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((r.id lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((r.id lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (r.id land 0xff));
  for i = 0 to 7 do
    Bytes.set b (4 + i) (Char.chr ((r.balance asr (8 * (7 - i))) land 0xff))
  done;
  Bytes.to_string b

let record_of_flat (s : string) : record =
  let id =
    (Char.code s.[0] lsl 24) lor (Char.code s.[1] lsl 16) lor (Char.code s.[2] lsl 8) lor Char.code s.[3]
  in
  let balance = ref 0L in
  for i = 0 to 7 do
    balance := Int64.logor (Int64.shift_left !balance 8) (Int64.of_int (Char.code s.[4 + i]))
  done;
  { id; balance = Int64.to_int !balance; filler = String.sub s 12 (record_size - 12) }

let key_of_id (id : int) : string = Printf.sprintf "%010d" id
