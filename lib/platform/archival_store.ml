(** The archival store (paper Figure 1): a stream-based sink for backups,
    e.g. staged locally and opportunistically migrated to a remote server.
    Like the untrusted store, its contents are attacker-controlled — the
    backup store must validate everything it reads back.

    Backups are named streams written once and read back whole. *)

type t = {
  put : name:string -> string -> unit;
  get : name:string -> string option;
  list : unit -> string list; (* sorted *)
  delete : name:string -> unit;
}

let put t = t.put
let get t = t.get
let list t = t.list ()
let delete t = t.delete

(** Attacker-visible in-memory archive. [corrupt] models offline tampering
    with a stored backup. *)
module Mem = struct
  type handle = (string, string) Hashtbl.t

  let corrupt (h : handle) ~name ~pos ~mask =
    match Hashtbl.find_opt h name with
    | None -> ()
    | Some s when pos < String.length s ->
        let b = Bytes.of_string s in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
        Hashtbl.replace h name (Bytes.to_string b)
    | Some _ -> ()
end

let open_mem () : Mem.handle * t =
  let h : Mem.handle = Hashtbl.create 16 in
  ( h,
    {
      put = (fun ~name data -> Hashtbl.replace h name data);
      get = (fun ~name -> Hashtbl.find_opt h name);
      list = (fun () -> List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h []));
      delete = (fun ~name -> Hashtbl.remove h name);
    } )

(** Directory-backed archive: one file per backup stream. *)
let open_dir (dir : string) : t =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o700;
  let path name =
    if String.exists (fun c -> c = '/' || c = '\000') name then invalid_arg "Archival_store: bad name";
    Filename.concat dir name
  in
  {
    put =
      (fun ~name data ->
        let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600 (path name) in
        output_string oc data;
        close_out oc);
    get =
      (fun ~name ->
        let p = path name in
        if Sys.file_exists p then begin
          let ic = open_in_bin p in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Some s
        end
        else None);
    list = (fun () -> Sys.readdir dir |> Array.to_list |> List.sort String.compare);
    delete = (fun ~name -> try Sys.remove (path name) with Sys_error _ -> ());
  }
