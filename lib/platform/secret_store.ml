(** The platform secret store (paper Figure 1): a small trusted-read store
    holding the secret key — ROM/battery-backed SRAM on real devices.

    Only "authorized programs" (anything holding a [t]) can read it; the
    attacker model gives no access. Keys for specific purposes are derived
    from the master secret with HMAC-SHA256, so compromising one derived key
    does not reveal the others. *)

type t = { master : string }

let key_size = 32

(** In-memory secret store seeded deterministically (tests, benchmarks). *)
let of_seed (seed : string) : t = { master = Tdb_crypto.Sha256.digest ("tdb-master:" ^ seed) }

(** Load from (or initialize into) a key file — the "ROM image". *)
let of_file (path : string) : t =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    if String.length s <> key_size then failwith "Secret_store.of_file: corrupt key file";
    { master = s }
  end
  else begin
    let master =
      Tdb_crypto.Sha256.digest (Printf.sprintf "init:%f:%d:%s" (Unix.gettimeofday ()) (Unix.getpid ()) path)
    in
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o600 path in
    output_string oc master;
    close_out oc;
    { master }
  end

(** [derive t purpose] is a 32-byte key bound to [purpose]
    (e.g. ["chunk-encryption"], ["anchor-mac"], ["backup-mac"]). *)
let derive (t : t) (purpose : string) : string = Tdb_crypto.Hmac.sha256 ~key:t.master purpose

(** Derive a key of exactly [len] bytes (block ciphers want 16/48). *)
let derive_len (t : t) (purpose : string) (len : int) : string =
  let buf = Buffer.create len in
  let i = ref 0 in
  while Buffer.length buf < len do
    Buffer.add_string buf (derive t (Printf.sprintf "%s#%d" purpose !i));
    incr i
  done;
  Buffer.sub buf 0 len

(** Zeroization on tamper response (battery-backed SRAM behaviour). After
    this, all derived keys are unrecoverable. *)
let zeroize (t : t) : t = ignore t; { master = String.make key_size '\000' }
