(** The untrusted store (paper Figure 1): a random-access byte store
    holding the database, which the attacker — the device's owner — may
    arbitrarily read and modify, including offline.

    Everything above this interface (the chunk store) must assume its
    contents are hostile. Two implementations:
    - {!open_file}: a real file (the paper's database lived in an NTFS
      file);
    - {!open_mem}: in-memory with {e fault injection} — crashes losing an
      arbitrary subset of unsynced writes, plus the attacker primitives
      (scan, corrupt, snapshot, replay) the test suites use. *)

type stats = {
  mutable reads : int;
  mutable writes : int;  (** write calls; a [writev] counts once *)
  mutable fragments : int;  (** fragments written; a [writev] counts its list length *)
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable syncs : int;
}

type t = {
  read : off:int -> len:int -> bytes;
  write : off:int -> string -> unit;
  writev : off:int -> string list -> unit;
  size : unit -> int;
  set_size : int -> unit;
  sync : unit -> unit;
  close : unit -> unit;
  stats : stats;
}
(** A store as a record of operations, so wrappers (e.g. the benchmark's
    simulated disk) can interpose per-call behaviour. *)

val read : t -> off:int -> len:int -> bytes
(** @raise Invalid_argument when the range exceeds the store. *)

val write : t -> off:int -> string -> unit
(** Extends the store as needed; holes read as zeros. *)

val writev : t -> off:int -> string list -> unit
(** Write the concatenation of the fragments contiguously at [off]: one
    store operation (one seek + one kernel write on the file backend, one
    blit run on the mem backend). Empty fragments are skipped; an empty (or
    all-empty) list is a no-op. Crash semantics are those of the equivalent
    sequence of per-fragment {!write}s: a crash may persist an arbitrary
    subset of fragments, and {!interpose} hooks observe each fragment as a
    separate [Op_write] boundary. *)

val size : t -> int

val set_size : t -> int -> unit
(** Truncate or zero-extend. *)

val sync : t -> unit
(** Make all preceding writes crash-durable. *)

val close : t -> unit
val stats : t -> stats

(** {1 Fault-plan hook} *)

type op = Op_write of { off : int; data : string } | Op_set_size of int | Op_sync
(** A mutating operation about to hit the store. [Op_write] carries the
    payload so a hook can model a torn write (persist a prefix, then
    crash). *)

val interpose : before:(op -> unit) -> t -> t
(** Wrap a store so [before] observes every mutating operation at its
    write/sync boundary, before it executes. The hook may raise to model a
    crash arrested exactly at that boundary (see {!Tdb_faultsim.Fault_plan});
    reads pass through untouched. A [writev] is decomposed into per-fragment
    [Op_write] boundaries (fragments before a crash point reach the
    underlying store individually), so coalescing writes never removes crash
    points the fault harness could otherwise hit. *)

(** {1 In-memory store with fault injection} *)

module Mem : sig
  type handle

  val crash : ?persist_prob:float -> rng:(int -> int) -> handle -> unit
  (** Simulate a crash: synced state survives; each unsynced write
      independently survives with [persist_prob]; size changes always
      survive (journaled metadata). *)

  val crash_hard : handle -> unit
  (** Crash losing every unsynced write. *)

  val corrupt : handle -> off:int -> len:int -> mask:int -> unit
  (** Attacker: XOR [mask] over a byte range (offline modification). *)

  val snapshot : handle -> Bytes.t
  (** Attacker: copy the full image (to replay later). *)

  val restore : handle -> Bytes.t -> unit
  (** Attacker: replay a previously saved image. *)

  val contents : handle -> string
  (** Attacker: raw view for offline analysis. *)
end

val open_mem : unit -> Mem.handle * t
val open_file : string -> t
