(** The untrusted store (paper Figure 1): a random-access byte store holding
    the database, which an attacker may arbitrarily read or modify.

    Two implementations are provided:
    - {!open_file}: a real file (the paper's evaluation stores the database
      in an NTFS file and opens logs write-through; we sync on demand).
    - {!open_mem}: an in-memory store with *fault injection* — it models a
      crash that loses an arbitrary subset of unsynced writes, and exposes
      tampering hooks that model the paper's attacker (offline analysis and
      modification of removable media). Used heavily by the recovery and
      tamper-detection tests.

    The store is dumb on purpose: everything above it (chunk store) must
    assume its contents are hostile. *)

type stats = {
  mutable reads : int;
  mutable writes : int; (* write calls: a writev counts once *)
  mutable fragments : int; (* fragments written: a writev counts its list length *)
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable syncs : int;
}

let fresh_stats () = { reads = 0; writes = 0; fragments = 0; bytes_read = 0; bytes_written = 0; syncs = 0 }

type t = {
  read : off:int -> len:int -> bytes;
  write : off:int -> string -> unit;
  writev : off:int -> string list -> unit;
  size : unit -> int;
  set_size : int -> unit;
  sync : unit -> unit;
  close : unit -> unit;
  stats : stats;
}

let read t = t.read
let write t = t.write
let writev t = t.writev
let size t = t.size ()
let set_size t n = t.set_size n
let sync t = t.sync ()
let close t = t.close ()
let stats t = t.stats

(** A mutating operation about to hit the store, as seen by an
    {!interpose} hook. *)
type op = Op_write of { off : int; data : string } | Op_set_size of int | Op_sync

(** Wrap a store so [before] observes every mutating operation at its
    write/sync boundary, before it reaches the underlying store. The hook
    may raise to model a crash arrested exactly at that boundary (the
    fault-injection harness does); reads pass through untouched. *)
let interpose ~(before : op -> unit) (s : t) : t =
  {
    s with
    write =
      (fun ~off data ->
        before (Op_write { off; data });
        s.write ~off data);
    writev =
      (fun ~off frags ->
        (* Decompose a vectored write into per-fragment boundaries: the hook
           observes (and may crash at) every fragment edge, and fragments
           before the crash point reach the underlying store individually —
           so a torn writev loses an arbitrary fragment suffix, exactly like
           the equivalent sequence of plain writes. *)
        let _ =
          List.fold_left
            (fun off frag ->
              if String.length frag > 0 then begin
                before (Op_write { off; data = frag });
                s.write ~off frag
              end;
              off + String.length frag)
            off frags
        in
        ());
    set_size =
      (fun n ->
        before (Op_set_size n);
        s.set_size n);
    sync =
      (fun () ->
        before Op_sync;
        s.sync ());
  }

(* ------------------------------------------------------------------ *)
(* In-memory store with crash and tamper injection                     *)
(* ------------------------------------------------------------------ *)

(** Unsynced operation: a write, or a size change (truncate/extend). Size
    changes are metadata updates that survive crashes deterministically;
    data writes may or may not (see {!Mem.crash}). *)
type mem_op = W of int * string | T of int

type mem = {
  mutable cur : Bytes.t; (* current contents, including unsynced writes *)
  mutable cur_size : int;
  mutable stable : Bytes.t; (* contents as of the last sync *)
  mutable stable_size : int;
  mutable pending : mem_op list; (* unsynced ops, newest first *)
}

let ensure_capacity m n =
  if Bytes.length m.cur < n then begin
    let cap = max n (2 * Bytes.length m.cur) in
    let nb = Bytes.make cap '\000' in
    Bytes.blit m.cur 0 nb 0 m.cur_size;
    m.cur <- nb
  end

(* Apply one op to a (buffer, size) image, growing the buffer as needed.
   Returns the new (buffer, size). *)
let apply_op (buf, size) = function
  | T n ->
      let buf =
        if Bytes.length buf < n then begin
          let grown = Bytes.make (max n (2 * Bytes.length buf)) '\000' in
          Bytes.blit buf 0 grown 0 size;
          grown
        end
        else buf
      in
      if n > size then Bytes.fill buf size (n - size) '\000';
      (buf, n)
  | W (off, s) ->
      let need = off + String.length s in
      let buf =
        if Bytes.length buf < need then begin
          let grown = Bytes.make (max need (2 * Bytes.length buf)) '\000' in
          Bytes.blit buf 0 grown 0 size;
          grown
        end
        else buf
      in
      Bytes.blit_string s 0 buf off (String.length s);
      (buf, max size need)

let mem_handle () : mem * t =
  let m =
    { cur = Bytes.make 4096 '\000'; cur_size = 0; stable = Bytes.create 0; stable_size = 0; pending = [] }
  in
  let stats = fresh_stats () in
  let read ~off ~len =
    if off < 0 || len < 0 || off + len > m.cur_size then
      invalid_arg (Printf.sprintf "Untrusted_store.read: [%d,%d) out of [0,%d)" off (off + len) m.cur_size);
    stats.reads <- stats.reads + 1;
    stats.bytes_read <- stats.bytes_read + len;
    Bytes.sub m.cur off len
  in
  let pending_count = ref 0 in
  let destage_old () =
    (* A real disk destages its cache lazily: writes that have sat unsynced
       for a long time are almost certainly on the platter. Folding the
       oldest half of a very large pending journal into the stable image
       models that and bounds memory on stores that never sync (e.g. a
       page file without checkpoints). *)
    if !pending_count > 50_000 then begin
      let ops = List.rev m.pending in
      let keep = !pending_count / 2 in
      let oldest = List.filteri (fun i _ -> i < !pending_count - keep) ops in
      let newest = List.filteri (fun i _ -> i >= !pending_count - keep) ops in
      let buf, size = List.fold_left apply_op (m.stable, m.stable_size) oldest in
      m.stable <- buf;
      m.stable_size <- size;
      m.pending <- List.rev newest;
      pending_count := keep
    end
  in
  let blit_one ~off s =
    let len = String.length s in
    ensure_capacity m (off + len);
    (* writing past the current end extends the store; the hole (if any)
       reads as zeros, like a sparse file *)
    if off > m.cur_size then Bytes.fill m.cur m.cur_size (off - m.cur_size) '\000';
    Bytes.blit_string s 0 m.cur off len;
    if off + len > m.cur_size then m.cur_size <- off + len;
    m.pending <- W (off, s) :: m.pending;
    incr pending_count
  in
  let write ~off s =
    if off < 0 then invalid_arg "Untrusted_store.write: negative offset";
    blit_one ~off s;
    destage_old ();
    stats.writes <- stats.writes + 1;
    stats.fragments <- stats.fragments + 1;
    stats.bytes_written <- stats.bytes_written + String.length s
  in
  let writev ~off frags =
    if off < 0 then invalid_arg "Untrusted_store.writev: negative offset";
    (* One store operation, but each fragment stays a separate pending entry
       so a crash can lose an arbitrary subset of fragments (a torn vectored
       write), matching the per-fragment boundaries [interpose] exposes. *)
    let total =
      List.fold_left
        (fun o frag ->
          if String.length frag > 0 then blit_one ~off:o frag;
          o + String.length frag)
        off frags
      - off
    in
    if total > 0 then begin
      destage_old ();
      stats.writes <- stats.writes + 1;
      stats.fragments <- stats.fragments + List.length (List.filter (fun f -> String.length f > 0) frags);
      stats.bytes_written <- stats.bytes_written + total
    end
  in
  let sync () =
    stats.syncs <- stats.syncs + 1;
    (* apply pending ops to the stable image incrementally: O(bytes written
       since the last sync), not O(store size) *)
    let buf, size =
      List.fold_left apply_op (m.stable, m.stable_size) (List.rev m.pending)
    in
    m.stable <- buf;
    m.stable_size <- size;
    m.pending <- [];
    pending_count := 0
  in
  let set_size n =
    ensure_capacity m n;
    if n > m.cur_size then Bytes.fill m.cur m.cur_size (n - m.cur_size) '\000';
    m.cur_size <- n;
    m.pending <- T n :: m.pending;
    incr pending_count
  in
  ( m,
    {
      read;
      write;
      writev;
      size = (fun () -> m.cur_size);
      set_size;
      sync;
      close = (fun () -> ());
      stats;
    } )

(** Attacker's and fault-injector's view of an in-memory store. *)
module Mem = struct
  type handle = mem

  (** Simulate a crash: all synced state survives; each unsynced write
      independently survives with probability [persist_prob] (drawn from
      [rng]), modelling a disk that may or may not have destaged its cache.
      The store is afterwards in the post-crash state. *)
  let crash ?(persist_prob = 0.5) ~(rng : int -> int) (m : handle) : unit =
    (* size changes (journaled metadata) always survive; each unsynced data
       write independently survives with [persist_prob] *)
    let survivors =
      List.filter
        (function
          | T _ -> true
          | W _ -> rng 1000 < int_of_float (persist_prob *. 1000.))
        (List.rev m.pending)
    in
    let buf, size = List.fold_left apply_op (Bytes.sub m.stable 0 m.stable_size, m.stable_size) survivors in
    m.cur <- buf;
    m.cur_size <- size;
    m.stable <- Bytes.sub buf 0 size;
    m.stable_size <- size;
    m.pending <- []

  (** Crash losing *all* unsynced writes (clean power cut). *)
  let crash_hard (m : handle) : unit = crash ~persist_prob:0.0 ~rng:(fun _ -> 0) m

  (** Attacker primitive: overwrite [len] bytes at [off] by xoring a mask —
      i.e. offline modification of removable media. *)
  let corrupt (m : handle) ~off ~len ~(mask : int) : unit =
    for i = off to min (off + len) m.cur_size - 1 do
      Bytes.set m.cur i (Char.chr (Char.code (Bytes.get m.cur i) lxor mask));
      if i < m.stable_size then Bytes.set m.stable i (Char.chr (Char.code (Bytes.get m.stable i) lxor mask))
    done

  (** Attacker primitive: full image copy (save for later replay). *)
  let snapshot (m : handle) : Bytes.t = Bytes.sub m.cur 0 m.cur_size

  (** Attacker primitive: replay a previously saved image. *)
  let restore (m : handle) (img : Bytes.t) : unit =
    m.cur <- Bytes.copy img;
    m.cur_size <- Bytes.length img;
    m.stable <- Bytes.copy img;
    m.stable_size <- Bytes.length img;
    m.pending <- []

  (** Raw view, for scanning the image (attacker "analysis"). *)
  let contents (m : handle) : string = Bytes.sub_string m.cur 0 m.cur_size
end

let open_mem () : Mem.handle * t = mem_handle ()

(* ------------------------------------------------------------------ *)
(* File-backed store                                                   *)
(* ------------------------------------------------------------------ *)

let open_file (path : string) : t =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o600 in
  let stats = fresh_stats () in
  let size = ref (Unix.fstat fd).Unix.st_size in
  let read ~off ~len =
    if off < 0 || len < 0 || off + len > !size then
      invalid_arg (Printf.sprintf "Untrusted_store.read: [%d,%d) out of [0,%d)" off (off + len) !size);
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    let buf = Bytes.create len in
    let rec fill pos =
      if pos < len then begin
        let n = Unix.read fd buf pos (len - pos) in
        if n = 0 then invalid_arg "Untrusted_store.read: short read";
        fill (pos + n)
      end
    in
    fill 0;
    stats.reads <- stats.reads + 1;
    stats.bytes_read <- stats.bytes_read + len;
    buf
  in
  let write_bytes ~off b =
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    let rec drain pos =
      if pos < Bytes.length b then drain (pos + Unix.write fd b pos (Bytes.length b - pos))
    in
    drain 0;
    if off + Bytes.length b > !size then size := off + Bytes.length b
  in
  let write ~off s =
    write_bytes ~off (Bytes.unsafe_of_string s);
    stats.writes <- stats.writes + 1;
    stats.fragments <- stats.fragments + 1;
    stats.bytes_written <- stats.bytes_written + String.length s
  in
  let writev ~off frags =
    let total = List.fold_left (fun n f -> n + String.length f) 0 frags in
    if total > 0 then begin
      (* coalesce into one contiguous kernel write: one seek, one syscall run *)
      let buf = Bytes.create total in
      let _ =
        List.fold_left
          (fun pos f ->
            Bytes.blit_string f 0 buf pos (String.length f);
            pos + String.length f)
          0 frags
      in
      write_bytes ~off buf;
      stats.writes <- stats.writes + 1;
      stats.fragments <- stats.fragments + List.length (List.filter (fun f -> String.length f > 0) frags);
      stats.bytes_written <- stats.bytes_written + total
    end
  in
  {
    read;
    write;
    writev;
    size = (fun () -> !size);
    set_size =
      (fun n ->
        Unix.ftruncate fd n;
        size := n);
    sync =
      (fun () ->
        stats.syncs <- stats.syncs + 1;
        Unix.fsync fd);
    close = (fun () -> Unix.close fd);
    stats;
  }
