(** The platform secret store (paper Figure 1): a small trusted-read store
    holding the device's secret — ROM or battery-backed SRAM on real
    hardware. Only "authorized programs" (anything holding a [t]) can read
    it; the attacker model gives no access. *)

type t

val key_size : int

val of_seed : string -> t
(** In-memory secret store, deterministically seeded (tests, simulations). *)

val of_file : string -> t
(** Load from — or initialize into — a key file (the "ROM image"). *)

val derive : t -> string -> string
(** [derive t purpose] is a 32-byte key bound to [purpose]
    (["chunk-cipher"], ["anchor-mac"], ["backup-mac"], ...): compromising
    one derived key reveals nothing about the others. *)

val derive_len : t -> string -> int -> string
(** Derive exactly [len] bytes (block ciphers want 16/48). *)

val zeroize : t -> t
(** Tamper response (battery-backed SRAM behaviour): after this, all
    derived keys are unrecoverable. *)
