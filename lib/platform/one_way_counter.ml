(** The one-way persistent counter (paper Figure 1): readable by anyone,
    incrementable, never decrementable. Real devices use dedicated hardware
    (the paper cites the Infineon Eurochip); the paper's own evaluation
    emulates it "as a file on the same NTFS partition" (Section 7.2), and we
    provide the same file emulation plus an in-memory one for tests.

    The chunk store compares this counter against the signed value stored
    with the database to detect replay attacks (Section 3). *)

type t = {
  read : unit -> int64;
  increment : unit -> int64; (* returns the new value *)
}

let read t = t.read ()
let increment t = t.increment ()

(** In-memory counter; [rollback] deliberately violates one-wayness so the
    test suite can model a *broken* counter and check that TDB treats the
    resulting mismatch as tampering. *)
module Mem = struct
  type handle = { mutable v : int64 }

  let rollback (h : handle) (v : int64) = h.v <- v
end

let open_mem ?(initial = 0L) () : Mem.handle * t =
  let h = { Mem.v = initial } in
  ( h,
    {
      read = (fun () -> h.Mem.v);
      increment =
        (fun () ->
          h.Mem.v <- Int64.add h.Mem.v 1L;
          h.Mem.v);
    } )

(** File-backed counter. The value is stored with a checksum in two slots
    written alternately, so a torn write of one slot never loses
    monotonicity: on read we take the highest valid slot. *)
let open_file (path : string) : t =
  let checksum v = String.sub (Tdb_crypto.Sha256.digest (Printf.sprintf "owc:%Ld" v)) 0 8 in
  let encode v = Printf.sprintf "%020Ld:%s" v (Tdb_crypto.Hex.of_string (checksum v)) in
  let slot_len = String.length (encode 0L) in
  let decode s =
    match String.index_opt s ':' with
    | None -> None
    | Some i ->
        let v = Int64.of_string_opt (String.sub s 0 i) in
        ( match v with
        | Some v
          when String.equal
                 (String.sub s (i + 1) (String.length s - i - 1))
                 (Tdb_crypto.Hex.of_string (checksum v)) ->
            Some v
        | _ -> None )
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o600 in
  let read_slots () =
    let sz = (Unix.fstat fd).Unix.st_size in
    if sz < 2 * slot_len then []
    else begin
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let buf = Bytes.create (2 * slot_len) in
      let rec fill pos = if pos < Bytes.length buf then fill (pos + Unix.read fd buf pos (Bytes.length buf - pos)) in
      fill 0;
      List.filter_map decode [ Bytes.sub_string buf 0 slot_len; Bytes.sub_string buf slot_len slot_len ]
    end
  in
  let current () = List.fold_left max 0L (read_slots ()) in
  let write_slot i v =
    ignore (Unix.lseek fd (i * slot_len) Unix.SEEK_SET);
    let s = encode v in
    let b = Bytes.of_string s in
    let rec drain pos = if pos < Bytes.length b then drain (pos + Unix.write fd b pos (Bytes.length b - pos)) in
    drain 0;
    Unix.fsync fd
  in
  (* Initialize both slots if empty. *)
  if read_slots () = [] then begin
    write_slot 0 0L;
    write_slot 1 0L
  end;
  let next_slot = ref 0 in
  {
    read = current;
    increment =
      (fun () ->
        let v = Int64.add (current ()) 1L in
        write_slot !next_slot v;
        next_slot := 1 - !next_slot;
        v);
  }
