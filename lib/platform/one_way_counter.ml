(** The one-way persistent counter (paper Figure 1): readable by anyone,
    incrementable, never decrementable. Real devices use dedicated hardware
    (the paper cites the Infineon Eurochip); the paper's own evaluation
    emulates it "as a file on the same NTFS partition" (Section 7.2), and we
    provide the same file emulation plus an in-memory one for tests.

    The chunk store compares this counter against the signed value stored
    with the database to detect replay attacks (Section 3). *)

type t = {
  read : unit -> int64;
  increment : unit -> int64; (* returns the new value *)
}

let read t = t.read ()
let increment t = t.increment ()

(** In-memory counter; [rollback] deliberately violates one-wayness so the
    test suite can model a *broken* counter and check that TDB treats the
    resulting mismatch as tampering. *)
module Mem = struct
  type handle = { mutable v : int64 }

  let rollback (h : handle) (v : int64) = h.v <- v
end

let open_mem ?(initial = 0L) () : Mem.handle * t =
  let h = { Mem.v = initial } in
  ( h,
    {
      read = (fun () -> h.Mem.v);
      increment =
        (fun () ->
          h.Mem.v <- Int64.add h.Mem.v 1L;
          h.Mem.v);
    } )

(** Counter emulated on top of an untrusted byte store (the paper stores it
    "as a file on the same NTFS partition"; tests and the fault-injection
    harness run it over an in-memory store). The value is stored with a
    checksum in two slots, so a torn write of one slot never loses
    monotonicity: on read we take the highest valid slot. *)
let open_store (store : Untrusted_store.t) : t =
  let checksum v = String.sub (Tdb_crypto.Sha256.digest (Printf.sprintf "owc:%Ld" v)) 0 8 in
  let encode v = Printf.sprintf "%020Ld:%s" v (Tdb_crypto.Hex.of_string (checksum v)) in
  let slot_len = String.length (encode 0L) in
  let decode s =
    match String.index_opt s ':' with
    | None -> None
    | Some i ->
        let v = Int64.of_string_opt (String.sub s 0 i) in
        ( match v with
        | Some v
          when String.equal
                 (String.sub s (i + 1) (String.length s - i - 1))
                 (Tdb_crypto.Hex.of_string (checksum v)) ->
            Some v
        | _ -> None )
  in
  (* Per-slot view: which value (if any) each slot currently holds. *)
  let slot_values () : int64 option * int64 option =
    let sz = Untrusted_store.size store in
    if sz < 2 * slot_len then (None, None)
    else begin
      let buf = Untrusted_store.read store ~off:0 ~len:(2 * slot_len) in
      (decode (Bytes.sub_string buf 0 slot_len), decode (Bytes.sub_string buf slot_len slot_len))
    end
  in
  let current () =
    match slot_values () with
    | None, None -> 0L
    | Some v, None | None, Some v -> v
    | Some a, Some b -> if Int64.compare a b >= 0 then a else b
  in
  let write_slot i v =
    Untrusted_store.write store ~off:(i * slot_len) (encode v);
    Untrusted_store.sync store
  in
  (* Initialize both slots if empty. *)
  (match slot_values () with
  | None, None ->
      write_slot 0 0L;
      write_slot 1 0L
  | _ -> ());
  {
    read = current;
    increment =
      (fun () ->
        (* Always write the slot NOT holding the current maximum: if the
           write tears, the surviving slot still holds the pre-increment
           value and the counter stays monotone. (Alternating slots blindly
           would, after a reopen, overwrite the max-holding slot and let a
           torn write roll the counter back.) *)
        let v0, v1 = slot_values () in
        let v = Int64.add (current ()) 1L in
        let target =
          match (v0, v1) with
          | None, _ -> 0
          | _, None -> 1
          | Some a, Some b -> if Int64.compare a b >= 0 then 1 else 0
        in
        write_slot target v;
        v);
  }

(** File-backed counter (paper Section 7.2), via {!open_store} over a
    file-backed untrusted store. *)
let open_file (path : string) : t = open_store (Untrusted_store.open_file path)
