(** The one-way persistent counter (paper Figure 1): readable by anyone,
    incrementable, never decrementable. Real devices use dedicated
    hardware (the paper cites the Infineon Eurochip); the paper's own
    evaluation emulates it "as a file on the same NTFS partition" (§7.2)
    and {!open_file} reproduces exactly that, torn-write-safe via two
    checksummed slots. The chunk store compares this counter with the
    authenticated database state to detect replay attacks. *)

type t = { read : unit -> int64; increment : unit -> int64 (** returns the new value *) }

val read : t -> int64
val increment : t -> int64

module Mem : sig
  type handle

  val rollback : handle -> int64 -> unit
  (** Deliberately violates one-wayness so tests can model a {e broken}
      counter and check that TDB flags the mismatch as tampering. *)
end

val open_mem : ?initial:int64 -> unit -> Mem.handle * t
val open_file : string -> t
