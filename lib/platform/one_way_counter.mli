(** The one-way persistent counter (paper Figure 1): readable by anyone,
    incrementable, never decrementable. Real devices use dedicated
    hardware (the paper cites the Infineon Eurochip); the paper's own
    evaluation emulates it "as a file on the same NTFS partition" (§7.2)
    and {!open_file} reproduces exactly that, torn-write-safe via two
    checksummed slots. The chunk store compares this counter with the
    authenticated database state to detect replay attacks. *)

type t = { read : unit -> int64; increment : unit -> int64 (** returns the new value *) }

val read : t -> int64
val increment : t -> int64

module Mem : sig
  type handle

  val rollback : handle -> int64 -> unit
  (** Deliberately violates one-wayness so tests can model a {e broken}
      counter and check that TDB flags the mismatch as tampering. *)
end

val open_mem : ?initial:int64 -> unit -> Mem.handle * t

val open_store : Untrusted_store.t -> t
(** Counter emulated over an untrusted byte store: the value sits in two
    checksummed slots; each increment writes the slot {e not} holding the
    current maximum and syncs, so a torn slot write never rolls the counter
    back. The fault-injection harness instruments this store to crash the
    counter protocol at every write/sync boundary. *)

val open_file : string -> t
(** {!open_store} over a file-backed store — the paper's NTFS-file
    emulation (Section 7.2). *)
