(** The archival store (paper Figure 1): a stream-based sink for backups —
    e.g. staged locally and opportunistically migrated to a server. Like
    the untrusted store, its contents are attacker-controlled; the backup
    store validates everything it reads back. *)

type t = {
  put : name:string -> string -> unit;
  get : name:string -> string option;
  list : unit -> string list;  (** sorted *)
  delete : name:string -> unit;
}

val put : t -> name:string -> string -> unit
val get : t -> name:string -> string option
val list : t -> string list
val delete : t -> name:string -> unit

module Mem : sig
  type handle

  val corrupt : handle -> name:string -> pos:int -> mask:int -> unit
  (** Attacker: flip bits inside a stored backup stream. *)
end

val open_mem : unit -> Mem.handle * t

val open_dir : string -> t
(** One file per backup stream under the directory.
    @raise Invalid_argument on names containing path separators. *)
