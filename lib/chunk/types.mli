(** Shared types for the chunk store. *)

type chunk_id = int
(** Chunk names handed out by {!Chunk_store.allocate}. Non-negative; never
    recycled by this implementation. *)

val pp_chunk_id : Format.formatter -> chunk_id -> unit

val reserved_ids : int
(** Ids [0, reserved_ids) are never handed out by [allocate]; upper layers
    claim them as well-known roots (0: backup-store state, 1: object-store
    catalog). *)

type entry = {
  seg : int;  (** segment holding the record *)
  off : int;  (** byte offset of the payload within the segment *)
  len : int;  (** stored (possibly encrypted) payload length *)
  hash : string;  (** digest of the stored bytes — the Merkle label *)
  version : int;  (** sequence number of the commit that wrote it *)
}
(** Location of a stored record in the log. *)

val pp_entry : Format.formatter -> entry -> unit
val entry_equal : entry -> entry -> bool

exception Tamper_detected of string
(** Validation failed in a way a crash cannot explain: bad Merkle hash,
    bad MAC, or a one-way-counter mismatch (replay / rollback). *)

exception Not_allocated of chunk_id
exception Not_written of chunk_id
exception Chunk_too_large of { cid : chunk_id; size : int; max : int }

val tamper : ('a, unit, string, 'b) format4 -> 'a
(** [tamper fmt ...] raises {!Tamper_detected} with a formatted message. *)

(** Record kinds in the log. *)
type record_kind = Data_chunk | Map_node | Commit | Next_segment

val kind_to_byte : record_kind -> int
val kind_of_byte : int -> record_kind

(** Why a commit record was written. *)
type commit_kind = App of { durable : bool } | Clean | Checkpoint
