(** The chunk store (paper Section 3): trusted storage for named,
    variable-sized byte sequences on top of an untrusted store.

    Guarantees:
    - secrecy: every stored payload is encrypted (when security is on);
    - tamper detection: payloads are validated against the Merkle tree
      embedded in the location map, whose root lives in the MAC'd anchor;
    - replay detection: durable commits advance the platform one-way
      counter, and recovery cross-checks it against the committed state;
    - atomicity: a batch of writes/deallocates commits atomically with
      respect to crashes, durably or nondurably;
    - log-structured storage with cleaning, bounded by a configurable
      maximum utilization (grow-vs-clean policy, paper Section 7.3);
    - cheap copy-on-write snapshots, foldable and diffable (the substrate
      for full/incremental backups).

    Concurrency: the chunk store itself is single-threaded; the object
    store serializes access with its state mutex (paper Section 4.2.3). *)

open Types
module Pool = Tdb_parallel.Pool

type op = Op_write of string | Op_dealloc

type snapshot = { snap_root : entry option (* None = empty database *); snap_seq : int; snap_segs : int list }

type stats = {
  mutable commits : int;
  mutable durable_commits : int;
  mutable checkpoints : int;
  mutable clean_passes : int;
  mutable segments_cleaned : int;
  mutable chunks_relocated : int;
  mutable bytes_relocated : int; (* chunk ciphertext bytes the cleaner recopied *)
  mutable tier_segments : int list; (* live-segment count per cleaning tier, gauge *)
  mutable tampers : int;
  mutable bytes_data : int; (* chunk-record payload bytes appended *)
  mutable bytes_map : int; (* map-node payload bytes appended *)
  mutable bytes_commit : int; (* commit-record payload bytes appended *)
  mutable grow_policy : int;
  mutable grow_fallback : int;
  mutable grow_backstop : int;
  mutable cache_hits : int; (* verified-chunk cache counters, mirrored *)
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable par_batches : int; (* pool batches this store fanned out *)
  mutable par_tasks : int; (* items executed through the pool *)
  mutable par_wait_ns : int; (* coordinator time parked on pool workers *)
  mutable backup_last_id : int; (* backup/replication position, published *)
  mutable backup_base_snapshot : int; (* by Backup_store; -1 = no base *)
  mutable backup_chain : string; (* current backup hash-chain value *)
}

type t = {
  cfg : Config.t;
  sec : Security.t;
  domains : int; (* seal/unseal pipeline width; 1 = never touch the pool *)
  counter : Tdb_platform.One_way_counter.t;
  store : Tdb_platform.Untrusted_store.t;
  log : Log.t;
  map : Location_map.t;
  pending : (chunk_id, op) Hashtbl.t; (* current batch *)
  allocated : (chunk_id, unit) Hashtbl.t; (* allocated, never yet written *)
  cache : Chunk_cache.t; (* verified-chunk read cache (committed state only) *)
  mutable next_id : chunk_id;
  mutable seq : int; (* last commit sequence number *)
  mutable chain : string; (* commit-chain MAC value *)
  mutable last_counter : int64;
  mutable epoch : int; (* anchor epoch *)
  mutable commits_since_cp : int;
  mutable snapshots : (int * snapshot) list;
  mutable next_snap_id : int;
  mutable cleaning : bool;
  mutable promotable : bool;
      (* nondurable commits sit above the last durable point; the next
         checkpoint will promote them and must bump the one-way counter *)
  mutable barrier_inflight : bool;
      (* a staged barrier is between [barrier_begin] and [barrier_finish]:
         its counter increment is pending, so checkpoints (whose promote
         protocol needs the hardware counter in step) are deferred *)
  stats : stats;
}

let fresh_stats () =
  { commits = 0; durable_commits = 0; checkpoints = 0; clean_passes = 0; segments_cleaned = 0;
    chunks_relocated = 0; bytes_relocated = 0; tier_segments = []; tampers = 0;
    bytes_data = 0; bytes_map = 0; bytes_commit = 0; grow_policy = 0; grow_fallback = 0; grow_backstop = 0;
    cache_hits = 0; cache_misses = 0; cache_evictions = 0; par_batches = 0; par_tasks = 0; par_wait_ns = 0;
    backup_last_id = 0; backup_base_snapshot = -1; backup_chain = "" }

(* ------------------------------------------------------------------ *)
(* Low-level record I/O                                                *)
(* ------------------------------------------------------------------ *)

(** Validated fetch used by the location map: read, check Merkle label,
    decrypt. *)
let fetch t : Location_map.fetch =
 fun ~what (e : entry) ->
  let stored = Log.read_payload t.log e in
  (try Security.check_label t.sec ~expected:e.hash stored ~what with
  | Tamper_detected _ as exn ->
      t.stats.tampers <- t.stats.tampers + 1;
      raise exn);
  Security.unseal t.sec stored

(** Fan a batch of pure jobs out over the process-wide domain pool,
    honoring the store's configured width and mirroring the pool's
    counters into this store's [stats]. [domains = 1] (or a batch of one)
    computes inline and never touches the pool — the exact sequential
    behavior the {!Config.t.domains} contract promises. *)
let par_map (t : t) (jobs : 'a array) (f : 'a -> 'b) : 'b array =
  if t.domains <= 1 || Array.length jobs <= 1 then Array.map f jobs
  else begin
    let s0 = Pool.stats () in
    Fun.protect
      ~finally:(fun () ->
        let s1 = Pool.stats () in
        t.stats.par_tasks <- t.stats.par_tasks + (s1.Pool.p_tasks - s0.Pool.p_tasks);
        t.stats.par_batches <- t.stats.par_batches + (s1.Pool.p_batches - s0.Pool.p_batches);
        t.stats.par_wait_ns <- t.stats.par_wait_ns + (s1.Pool.p_wait_ns - s0.Pool.p_wait_ns))
      (fun () -> Pool.map ~domains:t.domains jobs f)
  end

(* Grow conservatively: the utilization policy (ensure_space) is the only
   place that deliberately trades space for cleaning effort; this backstop
   merely keeps appends total without inflating the store. *)
let grow_step _t = 2

(** Append, growing the store if the free list runs dry. The clean-vs-grow
    *policy* runs before commits; this is the backstop that keeps appends
    total. [tier > 0] routes the record through the cold-tier cursor
    ({!Log.append_tier}) — the generational cleaner's demotion path. *)
let rec append_rec ?(live = true) ?(tier = 0) t kind sealed : int * int =
  match
    if tier <= 0 then Log.append ~live t.log kind sealed
    else Log.append_tier ~live t.log ~tier kind sealed
  with
  | pos ->
      (match kind with
      | Data_chunk -> t.stats.bytes_data <- t.stats.bytes_data + String.length sealed
      | Map_node -> t.stats.bytes_map <- t.stats.bytes_map + String.length sealed
      | Commit -> t.stats.bytes_commit <- t.stats.bytes_commit + String.length sealed
      | Next_segment -> ());
      pos
  | exception Log.Need_segment ->
      t.stats.grow_backstop <- t.stats.grow_backstop + grow_step t;
      Log.grow t.log ~segments:(grow_step t);
      append_rec ~live ~tier t kind sealed

(** Seal and append a payload, returning its location entry. *)
let append_payload t (kind : record_kind) ~(version : int) (plain : string) : entry =
  let sealed = Security.seal t.sec plain in
  let hash = Security.label t.sec sealed in
  let seg, off = append_rec t kind sealed in
  { seg; off; len = String.length sealed; hash; version }

let data_payload ~(cid : chunk_id) ~(version : int) (data : string) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.uint w cid;
  P.uint w version;
  P.string w data;
  P.contents w

let parse_data_payload (plain : string) : chunk_id * int * string =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader plain in
  let cid = P.read_uint r in
  let version = P.read_uint r in
  let data = P.read_string r in
  P.expect_end r;
  (cid, version, data)

(* ------------------------------------------------------------------ *)
(* Commit records                                                      *)
(* ------------------------------------------------------------------ *)

type commit_body = {
  c_seq : int;
  c_kind : commit_kind;
  c_counter : int64;
  c_writes : (chunk_id * entry) list;
  c_deallocs : chunk_id list;
}

let encode_commit_body (b : commit_body) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.uint w b.c_seq;
  P.byte w (match b.c_kind with App { durable = false } -> 0 | App { durable = true } -> 1 | Clean -> 2 | Checkpoint -> 3);
  P.int64 w b.c_counter;
  P.list w
    (fun w (cid, e) ->
      P.uint w cid;
      Location_map.write_entry w e)
    b.c_writes;
  P.list w (fun w cid -> P.uint w cid) b.c_deallocs;
  P.contents w

let decode_commit_body (s : string) : commit_body =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  let c_seq = P.read_uint r in
  let c_kind =
    match P.read_byte r with
    | 0 -> App { durable = false }
    | 1 -> App { durable = true }
    | 2 -> Clean
    | 3 -> Checkpoint
    | n -> tamper "unknown commit kind %d" n
  in
  let c_counter = P.read_int64 r in
  let c_writes =
    P.read_list r (fun r ->
        let cid = P.read_uint r in
        let e = Location_map.read_entry r in
        (cid, e))
  in
  let c_deallocs = P.read_list r (fun r -> P.read_uint r) in
  P.expect_end r;
  { c_seq; c_kind; c_counter; c_writes; c_deallocs }

(** Write a commit record: body plus the new chain-MAC link, sealed. *)
let append_commit_record t (body : commit_body) : unit =
  let encoded = encode_commit_body body in
  let link = Security.mac t.sec (t.chain ^ encoded) in
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.string w encoded;
  P.string w link;
  let sealed = Security.seal t.sec (P.contents w) in
  ignore (append_rec ~live:false t Commit sealed);
  t.chain <- link

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let write_anchor t ~(root : entry option) : unit =
  t.epoch <- t.epoch + 1;
  let tail_seg, tail_off = Log.tail_pos t.log in
  Anchor.write t.sec t.store ~slot_size:t.cfg.Config.anchor_slot_size
    {
      Anchor.epoch = t.epoch;
      segment_size = t.cfg.Config.segment_size;
      map_fanout = t.cfg.Config.map_fanout;
      map_depth = t.cfg.Config.map_depth;
      seq = t.seq;
      root;
      tail_seg;
      tail_off;
      counter = t.last_counter;
      next_id = t.next_id;
      chain = t.chain;
      snapshots = List.map (fun (id, s) -> (id, s.snap_root, s.snap_seq)) t.snapshots;
      tiers = Log.tier_table t.log;
    }

(** Checkpoint: flush dirty map nodes bottom-up, then re-anchor. Runs
    "opportunistically" — every [checkpoint_every] commits, after cleaning
    passes, at snapshots and at close (the paper defers this work to idle
    periods). *)
let do_checkpoint t : unit =
  (* A checkpoint *promotes*: once the anchor captures state that includes
     nondurable commits, recovery reproduces them even though no durable
     commit vouched for them. Promotion is a durability event, so it must
     advance the one-way counter like a durable commit does — otherwise
     destroying the freshest anchor slot rolls the store back to the
     previous checkpoint without tripping the replay check (found by the
     tamper sweep at --txns 10: 17 silent flips, all in the newest anchor
     frame). Protocol mirrors [commit]: bump the expected value, write it
     durably (the anchor write syncs), then increment the hardware — a
     crash between the two is repaired by recovery's hw = c_last - 1 path. *)
  if t.barrier_inflight then
    invalid_arg "Chunk_store.checkpoint: staged barrier in flight";
  let promote = t.promotable && t.sec.Security.enabled in
  if promote then t.last_counter <- Int64.add t.last_counter 1L;
  let root =
    Location_map.checkpoint t.map
      ~write_node:(fun payload -> append_payload t Map_node ~version:t.seq payload)
      ~obsolete:(fun e -> Log.obsolete_entry t.log e)
  in
  (* all dirty map nodes (and any cleaner relocations that triggered this
     checkpoint) coalesce into one vectored flush before the sync *)
  Log.flush t.log;
  Tdb_platform.Untrusted_store.sync t.store;
  write_anchor t ~root;
  if promote then begin
    let hw = Tdb_platform.One_way_counter.increment t.counter in
    if not (Int64.equal hw t.last_counter) then
      tamper "one-way counter advanced externally (%Ld, expected %Ld)" hw t.last_counter
  end;
  t.promotable <- false;
  Log.end_checkpoint t.log;
  t.commits_since_cp <- 0;
  t.stats.checkpoints <- t.stats.checkpoints + 1

let checkpoint t : unit =
  if Hashtbl.length t.pending > 0 then invalid_arg "Chunk_store.checkpoint: commit or abort the batch first";
  do_checkpoint t

(* ------------------------------------------------------------------ *)
(* Cleaning                                                            *)
(* ------------------------------------------------------------------ *)

(** Reclaim up to [max_segments] of the least-utilized segments by copying
    their live records to the tail (ciphertext is position-independent, so
    bytes are copied verbatim, hashes unchanged) and dirtying live map
    nodes so the next checkpoint rewrites them. Ends with a checkpoint,
    which is the barrier that actually frees the segments. *)
let clean_pass ?(max_segments = max_int) ?candidates t : unit =
  if t.cleaning then invalid_arg "Chunk_store.clean: reentrant call";
  t.cleaning <- true;
  Fun.protect
    ~finally:(fun () -> t.cleaning <- false)
    (fun () ->
      let candidates = match candidates with Some c -> c | None -> Log.clean_candidates t.log in
      let batch = List.filteri (fun i _ -> i < max_segments) candidates in
      if batch <> [] then begin
        let relocated = ref [] in
        let tiers = t.cfg.Config.tiers in
        List.iter
          (fun seg ->
            (* Demotion rule: survivors of a cleaning pass move one tier
               colder (capped at the coldest), so data that keeps proving
               itself long-lived migrates out of the hot tier's way. With
               [tiers = 1] the destination is tier 0 — the classic
               copy-to-the-tail cleaner, byte path unchanged. *)
            let dest_tier = if tiers > 1 then min (Log.tier_of_seg t.log seg + 1) (tiers - 1) else 0 in
            let records = Log.scan_segment t.log seg in
            List.iter
              (fun (kind, poff, sealed) ->
                match kind with
                | Commit | Next_segment -> ()
                | Data_chunk -> (
                    match
                      (try Some (parse_data_payload (Security.unseal t.sec sealed))
                       with Tamper_detected _ | Tdb_pickle.Pickle.Error _ -> None)
                    with
                    | None -> () (* stale garbage that no longer decrypts cleanly *)
                    | Some (cid, _version, _data) -> (
                        match Location_map.find t.map (fetch t) cid with
                        | Some e when Int.equal e.seg seg && Int.equal e.off poff ->
                            (* live: relocate ciphertext verbatim (the entry
                               keeps its version and hash, so cache entries
                               and Merkle labels survive the move) *)
                            let nseg, noff = append_rec ~tier:dest_tier t Data_chunk sealed in
                            let e' = { e with seg = nseg; off = noff } in
                            let old, obsolete_nodes = Location_map.set t.map (fetch t) cid e' in
                            (match old with Some o -> Log.obsolete_entry t.log o | None -> ());
                            List.iter (Log.obsolete_entry t.log) obsolete_nodes;
                            relocated := (cid, e') :: !relocated;
                            t.stats.chunks_relocated <- t.stats.chunks_relocated + 1;
                            t.stats.bytes_relocated <- t.stats.bytes_relocated + String.length sealed
                        | _ -> () ))
                | Map_node -> (
                    match
                      (try Some (Location_map.node_of_payload ~fanout:t.cfg.Config.map_fanout (Security.unseal t.sec sealed))
                       with Tamper_detected _ | Tdb_pickle.Pickle.Error _ -> None)
                    with
                    | None -> ()
                    | Some parsed -> (
                        (* live iff the current map's node at (level, base)
                           still points here; dirty it so the checkpoint
                           relocates it *)
                        match Location_map.find_node t.map (fetch t) ~level:parsed.Location_map.level ~base:parsed.Location_map.base with
                        | Some live_node -> (
                            match live_node.Location_map.disk with
                            | Some e when Int.equal e.seg seg && Int.equal e.off poff ->
                                live_node.Location_map.disk <- None;
                                Log.obsolete_entry t.log e
                            | _ -> () )
                        | None -> () )))
              records;
            t.stats.segments_cleaned <- t.stats.segments_cleaned + 1)
          batch;
        (* Record relocations for recovery (split to fit segments), then
           checkpoint (the barrier). *)
        let group_size = max 8 (t.cfg.Config.segment_size / 4 / 64) in
        let rec emit = function
          | [] -> ()
          | batch ->
              let group = List.filteri (fun i _ -> i < group_size) batch in
              let rest = List.filteri (fun i _ -> i >= group_size) batch in
              t.seq <- t.seq + 1;
              append_commit_record t
                { c_seq = t.seq; c_kind = Clean; c_counter = t.last_counter; c_writes = group; c_deallocs = [] };
              emit rest
        in
        emit (List.rev !relocated);
        t.stats.clean_passes <- t.stats.clean_passes + 1;
        do_checkpoint t
      end)

(** The grow-vs-clean policy (paper Section 7.3). [ensure_free t ~segs]
    makes at least [segs] segments available before a batch of appends:
    while the store is below the configured maximum utilization, space
    comes from cleaning (relocating the garbage-heaviest segments); once
    live data alone exceeds [max_utilization] of the capacity, the store
    grows instead.

    This gating is what produces the paper's Figure 11 dynamics: the store
    floats at roughly [live / max_utilization] bytes, so the garbage
    fraction available to the cleaner is [1 - max_utilization] — cheap,
    half-empty segments at 50%, expensive nearly-full ones at 90%. *)
let ensure_free t ~(segs : int) : unit =
  if not t.cleaning then begin
    (* Hysteresis: only act when free space is genuinely low, then refill
       well past the trigger so cleaning bursts (and the map checkpoints
       they entail) amortize over many commits. The high mark doubles as
       the cleaner's copy reserve. *)
    let trigger = segs + 2 in
    let high = segs + (2 * t.cfg.Config.clean_batch) + 2 in
    if Log.free_count t.log < trigger then begin
    let segs = high in
    let rounds = ref 0 in
    while Log.free_count t.log < segs && !rounds < 8 do
      incr rounds;
      if Log.utilization t.log >= t.cfg.Config.max_utilization then begin
        let n = max (grow_step t) (segs - Log.free_count t.log) in
        t.stats.grow_policy <- t.stats.grow_policy + n;
        Log.grow t.log ~segments:n
      end
      else if t.barrier_inflight then begin
        (* checkpoints (and hence cleaning passes, which end in one) are
           deferred while a staged barrier's counter increment is pending;
           just grow, the window is short *)
        let n = max (grow_step t) (segs - Log.free_count t.log) in
        t.stats.grow_fallback <- t.stats.grow_fallback + n;
        Log.grow t.log ~segments:n
      end
      else begin
        (* if everything cleanable is still in the residual window,
           checkpoint first: that frees empty segments and unlocks the
           fragmented ones *)
        if Log.clean_candidates t.log = [] && t.commits_since_cp > 0 then do_checkpoint t;
        match Log.clean_candidates t.log with
        | [] ->
            let n = max (grow_step t) (segs - Log.free_count t.log) in
            t.stats.grow_fallback <- t.stats.grow_fallback + n;
            Log.grow t.log ~segments:n
        | _ -> clean_pass ~max_segments:t.cfg.Config.clean_batch t
      end
    done;
    if Log.free_count t.log < trigger then begin
      t.stats.grow_fallback <- t.stats.grow_fallback + (trigger - Log.free_count t.log);
      Log.grow t.log ~segments:(trigger - Log.free_count t.log)
    end
    end
  end

(* ------------------------------------------------------------------ *)
(* Public chunk operations                                             *)
(* ------------------------------------------------------------------ *)

let is_allocated t cid =
  match Hashtbl.find_opt t.pending cid with
  | Some (Op_write _) -> true
  | Some Op_dealloc -> false
  | None ->
      (cid >= 0 && cid < reserved_ids)
      || Hashtbl.mem t.allocated cid
      || Location_map.find t.map (fetch t) cid <> None

let allocate t : chunk_id =
  let cid = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.allocated cid ();
  cid

(** Restore-mode write: claim a specific chunk id and buffer data for it —
    used by the backup store to rebuild a database with its original ids
    (full backup lays chunks down, incrementals overwrite them). *)
let check_chunk_size t cid data =
  let max = Config.max_chunk_size t.cfg - Security.seal_overhead t.sec (String.length data) - 32 in
  if String.length data > max then raise (Chunk_too_large { cid; size = String.length data; max })

let restore_chunk t (cid : chunk_id) (data : string) : unit =
  if cid < 0 then invalid_arg "Chunk_store.restore_chunk: negative id";
  (* Same bound as [write]: a backup stream is untrusted input, and an
     oversized record must surface here as [Chunk_too_large], not blow up
     mid-commit after growing the store. *)
  check_chunk_size t cid data;
  t.next_id <- max t.next_id (cid + 1);
  Hashtbl.replace t.pending cid (Op_write data)

let write t (cid : chunk_id) (data : string) : unit =
  if not (is_allocated t cid) then raise (Not_allocated cid);
  check_chunk_size t cid data;
  Hashtbl.replace t.pending cid (Op_write data)

let read t (cid : chunk_id) : string =
  match Hashtbl.find_opt t.pending cid with
  | Some (Op_write data) -> data
  | Some Op_dealloc -> raise (Not_written cid)
  | None -> (
      match Location_map.find t.map (fetch t) cid with
      | None -> raise (Not_written cid)
      | Some e -> (
          (* The map entry's version is the coherence token: a cached
             payload is served only at the exact committed version, so
             writes, deallocations and recovery need no explicit
             invalidation sweep — and cleaning, which preserves versions,
             costs the cache nothing. *)
          match Chunk_cache.find t.cache cid ~version:e.version with
          | Some data -> data
          | None ->
              let plain = fetch t ~what:(Printf.sprintf "chunk %d" cid) e in
              let cid', version, data = try parse_data_payload plain with Tdb_pickle.Pickle.Error _ -> tamper "malformed chunk %d" cid in
              if (not (Int.equal cid' cid)) || not (Int.equal version e.version) then tamper "chunk %d identity mismatch" cid;
              Chunk_cache.put t.cache cid ~version:e.version data;
              data ) )

(** Batched read with parallel unseal. The sequential stages — map
    lookups, cache probes, raw log reads, cache inserts — run on the
    coordinator; the label verification, decryption and payload parsing
    of every cache miss fan out over the domain pool. Results come back
    in input order, and failures raise the same exception {!read} would
    have raised at the lowest failing index. Counter note: all cache
    probes happen before any insert, so a batch listing the same missing
    chunk twice counts two misses where sequential {!read}s would count a
    miss then a hit. *)
let read_many t (cids : chunk_id list) : string list =
  (* phase 1 (sequential): resolve each id to buffered data, a cache hit,
     or the stored bytes that need unsealing *)
  let staged =
    List.map
      (fun cid ->
        match Hashtbl.find_opt t.pending cid with
        | Some (Op_write data) -> (cid, `Ready data)
        | Some Op_dealloc -> raise (Not_written cid)
        | None -> (
            match Location_map.find t.map (fetch t) cid with
            | None -> raise (Not_written cid)
            | Some e -> (
                match Chunk_cache.find t.cache cid ~version:e.version with
                | Some data -> (cid, `Ready data)
                | None -> (cid, `Unseal (e, Log.read_payload t.log e)))))
      cids
  in
  (* phase 2 (parallel, pure): verify + decrypt + parse the misses *)
  let jobs =
    Array.of_list
      (List.filter_map
         (function cid, `Unseal ((e : entry), stored) -> Some (cid, e, stored) | _, `Ready _ -> None)
         staged)
  in
  let unseal_one (cid, (e : entry), stored) =
    Security.check_label t.sec ~expected:e.hash stored ~what:(Printf.sprintf "chunk %d" cid);
    let plain = Security.unseal t.sec stored in
    let cid', version, data =
      try parse_data_payload plain with Tdb_pickle.Pickle.Error _ -> tamper "malformed chunk %d" cid
    in
    if (not (Int.equal cid' cid)) || not (Int.equal version e.version) then
      tamper "chunk %d identity mismatch" cid;
    data
  in
  let plains =
    try par_map t jobs unseal_one
    with Tamper_detected _ as exn ->
      t.stats.tampers <- t.stats.tampers + 1;
      raise exn
  in
  (* phase 3 (sequential): the coordinator owns the cache — insert the
     fresh payloads and assemble results in input order *)
  let next_plain = ref 0 in
  List.map
    (fun (cid, stage) ->
      match stage with
      | `Ready data -> data
      | `Unseal ((e : entry), _) ->
          let data = plains.(!next_plain) in
          incr next_plain;
          Chunk_cache.put t.cache cid ~version:e.version data;
          data)
    staged

let deallocate t (cid : chunk_id) : unit =
  if not (is_allocated t cid) then raise (Not_allocated cid);
  if Hashtbl.mem t.allocated cid && Location_map.find t.map (fetch t) cid = None then begin
    (* never written: nothing persistent to do *)
    Hashtbl.remove t.allocated cid;
    Hashtbl.remove t.pending cid
  end
  else Hashtbl.replace t.pending cid Op_dealloc

(** Discard the current (uncommitted) batch. *)
let abort_batch t : unit = Hashtbl.reset t.pending

(* Commit records must fit in one segment. Very large batches (bulk loads)
   are split into chained sub-commits: every sub-commit but the last is
   nondurable, so recovery applies the whole chain iff the final record —
   the only durable barrier — landed; atomicity of the batch is
   preserved. *)
let max_commit_record_bytes t = t.cfg.Config.segment_size / 4

let commit ?(durable = true) t : unit =
  if Hashtbl.length t.pending = 0 then ()
  else begin
    (* reserve space for the batch, its commit records and checkpoint
       map writes that may piggyback on it *)
    let batch_bytes =
      Hashtbl.fold
        (fun _ op acc -> match op with Op_write d -> acc + String.length d + 128 | Op_dealloc -> acc + 16)
        t.pending 0
    in
    ensure_free t ~segs:(2 + (batch_bytes * 3 / 2 / t.cfg.Config.segment_size));
    t.seq <- t.seq + 1;
    (* Replay-protection protocol: the commit record carries the counter
       value this commit *will* advance the one-way counter to; the
       increment itself happens only after the record is durable. Recovery
       then accepts exactly hw = c_last (normal) or hw = c_last - 1 (crash
       between sync and increment — repaired by incrementing), so replaying
       any saved image on which a later durable commit happened makes
       hw > c_last and is detected. *)
    if durable && t.sec.Security.enabled then t.last_counter <- Int64.add t.last_counter 1L;
    let budget = max_commit_record_bytes t in
    (* Plan the batch: freeze it in table order and precompute the commit
       sequence number every op will land under, replicating the
       sub-commit split arithmetic of [note_cost] below. The plan is what
       makes parallel sealing deterministic: IVs are pre-drawn
       sequentially in op order and every byte of every sealed record is
       fixed before any pool worker runs, so the store image is identical
       at every [domains] setting. *)
    let planned =
      let cur = ref t.seq and body = ref 0 in
      List.map
        (fun (cid, op) ->
          let v = !cur in
          let cost = match op with Op_write _ -> 48 + t.sec.Security.hash_len | Op_dealloc -> 10 in
          body := !body + cost;
          if !body >= budget then begin
            incr cur;
            body := 0
          end;
          (cid, op, v))
        (List.rev (Hashtbl.fold (fun cid op acc -> (cid, op) :: acc) t.pending []))
    in
    (* Seal the writes: the IV draw is the only effectful step, done here
       on the coordinator; the encrypt + Merkle label fan out over the
       domain pool (inline when [domains = 1] or security is off). *)
    let seal_jobs =
      Array.of_list
        (List.filter_map
           (function
             | cid, Op_write data, v -> Some (cid, data, v, Security.draw_iv t.sec)
             | _, Op_dealloc, _ -> None)
           planned)
    in
    let sealed_writes =
      par_map t seal_jobs (fun (cid, data, v, iv) ->
          let sealed = Security.seal_iv t.sec ~iv (data_payload ~cid ~version:v data) in
          (sealed, Security.label t.sec sealed))
    in
    let next_sealed = ref 0 in
    let writes = ref [] and deallocs = ref [] and body_bytes = ref 0 in
    let flush_group ~last =
      append_commit_record t
        {
          c_seq = t.seq;
          c_kind = App { durable = durable && last };
          c_counter = t.last_counter;
          c_writes = List.rev !writes;
          c_deallocs = List.rev !deallocs;
        };
      writes := [];
      deallocs := [];
      body_bytes := 0;
      if not last then t.seq <- t.seq + 1
    in
    let note_cost n =
      body_bytes := !body_bytes + n;
      if !body_bytes >= budget then flush_group ~last:false
    in
    List.iter
      (fun (cid, op, v) ->
        match op with
        | Op_write data ->
            (* the plan must agree with the live sub-commit sequence *)
            assert (Int.equal v t.seq);
            let sealed, hash = sealed_writes.(!next_sealed) in
            incr next_sealed;
            let seg, off = append_rec t Data_chunk sealed in
            let e = { seg; off; len = String.length sealed; hash; version = v } in
            let old, obsolete_nodes = Location_map.set t.map (fetch t) cid e in
            (match old with Some o -> Log.obsolete_entry t.log o | None -> ());
            List.iter (Log.obsolete_entry t.log) obsolete_nodes;
            Hashtbl.remove t.allocated cid;
            (* write-through: refresh the verified cache at the new
               committed version so read-after-write stays a hit *)
            Chunk_cache.put t.cache cid ~version:e.version data;
            writes := (cid, e) :: !writes;
            note_cost (48 + String.length e.hash)
        | Op_dealloc ->
            assert (Int.equal v t.seq);
            let old, obsolete_nodes = Location_map.remove t.map (fetch t) cid in
            (match old with Some o -> Log.obsolete_entry t.log o | None -> ());
            List.iter (Log.obsolete_entry t.log) obsolete_nodes;
            Chunk_cache.remove t.cache cid;
            deallocs := cid :: !deallocs;
            note_cost 10)
      planned;
    Hashtbl.reset t.pending;
    flush_group ~last:true;
    (* One store write pass per commit: everything the batch appended —
       chunk records, sub-commit chain, the final commit record — lands as
       a single vectored flush, before the durability point below. *)
    Log.flush t.log;
    (* a durable commit covers every nondurable one before it; a
       nondurable commit leaves state the next checkpoint would promote *)
    t.promotable <- not durable;
    t.stats.commits <- t.stats.commits + 1;
    if durable then begin
      Tdb_platform.Untrusted_store.sync t.store;
      if t.sec.Security.enabled then begin
        let hw = Tdb_platform.One_way_counter.increment t.counter in
        if not (Int64.equal hw t.last_counter) then
          tamper "one-way counter advanced externally (%Ld, expected %Ld)" hw t.last_counter
      end;
      Log.barrier t.log;
      t.stats.durable_commits <- t.stats.durable_commits + 1
    end;
    t.commits_since_cp <- t.commits_since_cp + 1;
    if
      (not t.barrier_inflight)
      && (t.commits_since_cp >= t.cfg.Config.checkpoint_every
         || Log.residual_bytes t.log >= t.cfg.Config.checkpoint_residual_bytes)
    then begin
      (* reserve space for the map nodes the checkpoint will write, so
         checkpoints never have to grow the store outside the policy *)
      let est_bytes =
        Location_map.count_dirty t.map * t.cfg.Config.map_fanout * (16 + t.sec.Security.hash_len)
      in
      ensure_free t ~segs:(min 16 (2 + (est_bytes / t.cfg.Config.segment_size)));
      checkpoint t
    end
  end

(** Durable barrier without a batch: an empty durable commit record that
    forces the log and advances the one-way counter, promoting every
    nondurable commit before it to durable (recovery keeps the prefix up
    to the last durable commit). This is the group-commit hook: many
    transactions commit nondurably, then one barrier makes them all
    durable at the cost of a single sync + counter bump. *)
type barrier_token = {
  bt_counter : int64;  (** counter value the barrier's commit record claims *)
  bt_eligible : (int, unit) Hashtbl.t;  (** segments reclaimable once the barrier is durable *)
  bt_flush : Log.flush_token;  (** the barrier record's buffered bytes, written during the sync stage *)
}

(** First stage: append the empty durable commit record and pre-advance
    the counter expectation. Must run under the store's state lock. The
    eligible-segment snapshot is taken here: commits that land while the
    sync stage runs (outside the lock) sit {e after} this record in the
    log, are not covered by this barrier, and may not have their garbage
    reclaimed by it. *)
let barrier_begin t : barrier_token =
  if Hashtbl.length t.pending > 0 then
    invalid_arg "Chunk_store.durable_barrier: commit or abort the batch first";
  if t.barrier_inflight then invalid_arg "Chunk_store.barrier_begin: barrier already in flight";
  ensure_free t ~segs:2;
  t.seq <- t.seq + 1;
  if t.sec.Security.enabled then t.last_counter <- Int64.add t.last_counter 1L;
  append_commit_record t
    { c_seq = t.seq; c_kind = App { durable = true }; c_counter = t.last_counter; c_writes = []; c_deallocs = [] };
  (* the barrier record covers everything before it; commits landing
     during the sync window set the flag again *)
  t.promotable <- false;
  t.barrier_inflight <- true;
  t.stats.commits <- t.stats.commits + 1;
  (* Detach the barrier record's buffered bytes: the store I/O moves to the
     sync stage, outside the state lock. Window commits flush their own
     appends (at disjoint, later offsets) under the lock. *)
  {
    bt_counter = t.last_counter;
    bt_eligible = Log.zero_usage_segments t.log;
    bt_flush = Log.flush_prepare t.log;
  }

(** Second stage: the physical wait — force the store and bump the
    hardware counter. Safe to run {e without} the state lock provided no
    other durable commit or barrier is in flight (the group-commit
    coordinator's single-leader rule): nondurable commits may append
    concurrently, and the records they add land after the barrier record,
    so durability of the prefix is unaffected. *)
let barrier_sync t (tok : barrier_token) : unit =
  Log.flush_write t.log tok.bt_flush;
  Tdb_platform.Untrusted_store.sync t.store;
  if t.sec.Security.enabled then begin
    let hw = Tdb_platform.One_way_counter.increment t.counter in
    if not (Int64.equal hw tok.bt_counter) then
      tamper "one-way counter advanced externally (%Ld, expected %Ld)" hw tok.bt_counter
  end

(** Third stage: reclaim space and account. Back under the state lock.
    Reclamation is restricted to the begin-time snapshot: a segment
    emptied by a commit that ran during the sync window must survive
    until the next barrier, because a crash now recovers to a state
    (prefix through this barrier's record) that still reads it. *)
let barrier_finish t (tok : barrier_token) : unit =
  t.barrier_inflight <- false;
  Log.barrier ~eligible:tok.bt_eligible t.log;
  t.stats.durable_commits <- t.stats.durable_commits + 1;
  t.commits_since_cp <- t.commits_since_cp + 1;
  if
    t.commits_since_cp >= t.cfg.Config.checkpoint_every
    || Log.residual_bytes t.log >= t.cfg.Config.checkpoint_residual_bytes
  then begin
    let est_bytes =
      Location_map.count_dirty t.map * t.cfg.Config.map_fanout * (16 + t.sec.Security.hash_len)
    in
    ensure_free t ~segs:(min 16 (2 + (est_bytes / t.cfg.Config.segment_size)));
    checkpoint t
  end

let durable_barrier t : unit =
  let tok = barrier_begin t in
  barrier_sync t tok;
  barrier_finish t tok

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(** Segments referenced by a tree rooted at [root]. *)
let tree_segments t (root : entry option) : int list =
  match root with
  | None -> []
  | Some root ->
      let segs = Hashtbl.create 64 in
      Location_map.walk_tree ~fanout:t.cfg.Config.map_fanout (fetch t) ~root
        ~data:(fun _ e -> Hashtbl.replace segs e.seg ())
        ~node:(fun e -> Hashtbl.replace segs e.seg ());
      Hashtbl.fold (fun s () acc -> s :: acc) segs []

(** Take a copy-on-write snapshot of the committed state: checkpoint, then
    pin the segments the checkpointed tree lives in. O(map) time, no data
    copying — the paper's "inexpensively snapshot using copy-on-write". *)
let snapshot t : int =
  checkpoint t;
  let root = Location_map.root_entry t.map in
  let id = t.next_snap_id in
  t.next_snap_id <- t.next_snap_id + 1;
  let segs = tree_segments t root in
  List.iter (fun s -> Log.pin t.log s) segs;
  t.snapshots <- (id, { snap_root = root; snap_seq = t.seq; snap_segs = segs }) :: t.snapshots;
  write_anchor t ~root;
  id

let find_snapshot t id =
  match List.assoc_opt id t.snapshots with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Chunk_store: unknown snapshot %d" id)

let release_snapshot t (id : int) : unit =
  let s = find_snapshot t id in
  t.snapshots <- List.remove_assoc id t.snapshots;
  List.iter (fun seg -> Log.unpin t.log seg) s.snap_segs;
  (* Re-anchor without the snapshot and let the barrier reclaim its
     segments. *)
  checkpoint t

let snapshot_seq t id = (find_snapshot t id).snap_seq
let snapshot_ids t = List.sort Int.compare (List.map fst t.snapshots)
let next_snapshot_id t = t.next_snap_id
let align_snapshot_id t id = if id > t.next_snap_id then t.next_snap_id <- id

let read_in_snapshot t (e : entry) : chunk_id * string =
  let plain = fetch t ~what:"snapshot chunk" e in
  let cid, version, data = try parse_data_payload plain with Tdb_pickle.Pickle.Error _ -> tamper "malformed snapshot chunk" in
  if not (Int.equal version e.version) then tamper "snapshot chunk version mismatch";
  (cid, data)

(** Fold over every chunk in a snapshot (full-backup substrate). *)
let fold_snapshot t (id : int) ~(init : 'a) ~(f : 'a -> chunk_id -> string -> 'a) : 'a =
  let s = find_snapshot t id in
  match s.snap_root with
  | None -> init
  | Some root ->
      let acc = ref init in
      Location_map.walk_tree ~fanout:t.cfg.Config.map_fanout (fetch t) ~root
        ~data:(fun cid e ->
          let cid', data = read_in_snapshot t e in
          if not (Int.equal cid' cid) then tamper "snapshot chunk id mismatch";
          acc := f !acc cid data)
        ~node:(fun _ -> ());
      !acc

(** Stream the differences between two snapshots (incremental-backup
    substrate): [changed] for added/updated chunks, [removed] for
    deallocated ones. Identical subtrees are pruned by Merkle hash. *)
let diff_snapshots t ~(old_id : int) ~(new_id : int) ~(changed : chunk_id -> string -> unit)
    ~(removed : chunk_id -> unit) : unit =
  let old_s = find_snapshot t old_id and new_s = find_snapshot t new_id in
  Location_map.diff_trees ~fanout:t.cfg.Config.map_fanout (fetch t) ~old_root:old_s.snap_root
    ~new_root:new_s.snap_root
    ~changed:(fun cid e ->
      let cid', data = read_in_snapshot t e in
      if not (Int.equal cid' cid) then tamper "snapshot chunk id mismatch";
      changed cid data)
    ~removed

(* ------------------------------------------------------------------ *)
(* Creation, recovery, close                                           *)
(* ------------------------------------------------------------------ *)

let make_empty (cfg : Config.t) (sec : Security.t) counter store : t =
  {
    cfg;
    sec;
    domains = cfg.Config.domains;
    counter;
    store;
    log = Log.create store cfg;
    map = Location_map.create ~fanout:cfg.Config.map_fanout ~depth:cfg.Config.map_depth;
    pending = Hashtbl.create 16;
    allocated = Hashtbl.create 16;
    cache = Chunk_cache.create ~budget:cfg.Config.chunk_cache_bytes;
    next_id = reserved_ids;
    seq = 0;
    chain = "";
    last_counter = 0L;
    epoch = 0;
    commits_since_cp = 0;
    snapshots = [];
    next_snap_id = 1;
    cleaning = false;
    promotable = false;
    barrier_inflight = false;
    stats = fresh_stats ();
  }

(** Create a fresh database, overwriting whatever the store held. *)
let create ?(config = Config.default) ~(secret : Tdb_platform.Secret_store.t)
    ~(counter : Tdb_platform.One_way_counter.t) (store : Tdb_platform.Untrusted_store.t) : t =
  Config.validate config;
  let sec = Security.create config secret in
  let t = make_empty config sec counter store in
  t.last_counter <- Tdb_platform.One_way_counter.read counter;
  t.chain <- Security.mac sec "tdb-chain-genesis";
  (* Invalidate both anchor slots, then write the initial one. *)
  Tdb_platform.Untrusted_store.write store ~off:0 (String.make (2 * config.Config.anchor_slot_size) '\000');
  write_anchor t ~root:None;
  t

exception Recovery_failed of string

(** Open an existing database, running crash recovery and tamper checks.
    @raise Recovery_failed if no valid anchor is found (wiped or never
    created store);
    @raise Types.Tamper_detected on MAC/hash/counter violations. *)
let open_existing ?(config = Config.default) ~(secret : Tdb_platform.Secret_store.t)
    ~(counter : Tdb_platform.One_way_counter.t) (store : Tdb_platform.Untrusted_store.t) : t =
  Config.validate config;
  let sec = Security.create config secret in
  let anchor =
    match Anchor.read sec store ~slot_size:config.Config.anchor_slot_size with
    | Some a -> a
    | None -> raise (Recovery_failed "no valid anchor (store is empty, wiped, or tampered)")
  in
  (* the layout parameters the database was written with must match the
     configuration it is opened with *)
  if
    (not (Int.equal anchor.Anchor.segment_size config.Config.segment_size))
    || (not (Int.equal anchor.Anchor.map_fanout config.Config.map_fanout))
    || not (Int.equal anchor.Anchor.map_depth config.Config.map_depth)
  then
    raise
      (Recovery_failed
         (Printf.sprintf
            "layout mismatch: database uses segment_size=%d fanout=%d depth=%d, configuration says %d/%d/%d"
            anchor.Anchor.segment_size anchor.Anchor.map_fanout anchor.Anchor.map_depth
            config.Config.segment_size config.Config.map_fanout config.Config.map_depth));
  let t = make_empty config sec counter store in
  t.epoch <- anchor.Anchor.epoch;
  t.seq <- anchor.Anchor.seq;
  t.chain <- anchor.Anchor.chain;
  t.last_counter <- anchor.Anchor.counter;
  t.next_id <- anchor.Anchor.next_id;
  t.next_snap_id <- List.fold_left (fun acc (id, _, _) -> max acc (id + 1)) 1 anchor.Anchor.snapshots;
  (* Rebind the log to recovery mode: tail from the anchor, usage rebuilt
     below. *)
  let usage = Hashtbl.create 64 in
  let log =
    Log.of_recovery store config ~tail_seg:anchor.Anchor.tail_seg ~tail_off:anchor.Anchor.tail_off ~usage
  in
  let t = { t with log } in
  (* Restore segment tier tags, clamped to this configuration's tier count
     (a store written with more tiers degrades gracefully; at [tiers = 1]
     every tag clears and cleaning is single-population again). *)
  List.iter
    (fun (seg, tier) -> Log.set_tier log seg (min tier (config.Config.tiers - 1)))
    anchor.Anchor.tiers;
  (* Load the map root. *)
  (match anchor.Anchor.root with
  | None -> ()
  | Some root_e ->
      let payload = fetch t ~what:"map root" root_e in
      let root = Location_map.node_of_payload ~fanout:config.Config.map_fanout payload in
      root.Location_map.disk <- Some root_e;
      t.map.Location_map.root <- root);
  (* Scan the residual log: verify the commit chain, collect commits. *)
  let commits = ref [] in
  let chain = ref t.chain in
  let expected_seq = ref (t.seq + 1) in
  let module P = Tdb_pickle.Pickle in
  (try
     Log.scan_chain t.log ~seg:anchor.Anchor.tail_seg ~off:(anchor.Anchor.tail_off)
       ~f:(fun kind (seg, poff) payload ->
         match kind with
         | Data_chunk | Map_node -> () (* applied via commit records *)
         | Next_segment -> ()
         | Commit -> (
             match
               (let plain = Security.unseal t.sec payload in
                let r = P.reader plain in
                let encoded = P.read_string r in
                let link = P.read_string r in
                P.expect_end r;
                if not (Tdb_crypto.Ct.equal_string link (Security.mac t.sec (!chain ^ encoded))) then None
                else
                  let body = decode_commit_body encoded in
                  if not (Int.equal body.c_seq !expected_seq) then None else Some (body, link))
             with
             | exception _ -> raise Exit
             | None -> raise Exit
             | Some (body, link) ->
                 chain := link;
                 incr expected_seq;
                 let end_pos = (seg, poff + String.length payload) in
                 commits := (body, link, end_pos) :: !commits ))
   with Exit -> ());
  let commits = List.rev !commits in
  (* Validate the data each commit references, in order, truncating the
     residual log at the first commit that fails — that commit and
     everything after it are casualties of the crash, not evidence of
     tampering. Not only the literal final record can be torn: a bulk
     load splits one batch into a chain of nondurable sub-commits, and
     any of them may reference writes that never reached the media, since
     only the closing durable sync vouches for the data before it.
     Truncation cannot silently roll back a genuinely durable commit: its
     counter increment would leave the hardware counter ahead of the
     recovered state, which the replay check below rejects. *)
  let validated =
    (* The raw payload reads stay on the coordinator (the log is mutable
       state); the Merkle-label digests — recovery's CPU — fan out over
       the domain pool. An unreadable payload fails its commit exactly as
       the sequential path did. *)
    let check_jobs =
      Array.of_list
        (List.concat_map
           (fun (body, _, _) ->
             List.map
               (fun (_cid, (e : entry)) ->
                 match Log.read_payload t.log e with
                 | stored -> Some (e.hash, stored)
                 | exception _ -> None)
               body.c_writes)
           commits)
    in
    let ok_flags =
      par_map t check_jobs (fun job ->
          match job with
          | None -> false
          | Some (hash, stored) ->
              (not t.sec.Security.enabled) || Tdb_crypto.Ct.equal_string hash (Security.label t.sec stored))
    in
    let next_flag = ref 0 in
    let rec keep = function
      | [] -> []
      | ((body, _, _) as c) :: rest ->
          let ok =
            List.for_all
              (fun (_cid, (_e : entry)) ->
                let v = ok_flags.(!next_flag) in
                incr next_flag;
                v)
              body.c_writes
          in
          if ok then c :: keep rest else []
    in
    keep commits
  in
  (* Keep the prefix up to the last durable commit. *)
  let last_durable =
    List.fold_left
      (fun (idx, best) (body, _, _) ->
        match body.c_kind with App { durable = true } -> (idx + 1, idx) | _ -> (idx + 1, best))
      (0, -1) validated
    |> snd
  in
  let applied = List.filteri (fun i _ -> i <= last_durable) validated in
  List.iter
    (fun (body, link, end_pos) ->
      List.iter
        (fun (cid, e) ->
          let old, obsolete_nodes = Location_map.set t.map (fetch t) cid e in
          ignore old;
          ignore obsolete_nodes;
          t.next_id <- max t.next_id (cid + 1))
        body.c_writes;
      List.iter (fun cid -> ignore (Location_map.remove t.map (fetch t) cid)) body.c_deallocs;
      t.seq <- body.c_seq;
      t.chain <- link;
      t.last_counter <- (match body.c_kind with App { durable = true } -> body.c_counter | _ -> t.last_counter);
      let seg, off = end_pos in
      t.log.Log.tail_seg <- seg;
      t.log.Log.tail_off <- off)
    applied;
  (* Replay-attack check against the one-way counter. hw = c_last is
     normal; hw = c_last - 1 means the last durable commit synced but the
     counter increment was lost to a crash — repair by incrementing;
     anything else is tampering (in particular, hw > c_last means durable
     commits happened on a state that was later replayed). *)
  if t.sec.Security.enabled then begin
    let hw = Tdb_platform.One_way_counter.read counter in
    if Int64.equal (Int64.add hw 1L) t.last_counter then
      ignore (Tdb_platform.One_way_counter.increment counter)
    else if not (Int64.equal hw t.last_counter) then
      tamper "one-way counter mismatch (counter=%Ld, database=%Ld): %s" hw t.last_counter
        (if hw > t.last_counter then "replay of stale state detected" else "counter rollback detected")
  end;
  (* Rebuild usage from the recovered map (data entries + clean nodes);
     dirty nodes from replay have no on-disk copy yet. *)
  Location_map.iter t.map (fetch t)
    ~data:(fun _cid e -> Hashtbl.replace usage e.seg (Option.value ~default:0 (Hashtbl.find_opt usage e.seg) + Log.record_space e.len))
    ~node:(fun e -> Hashtbl.replace usage e.seg (Option.value ~default:0 (Hashtbl.find_opt usage e.seg) + Log.record_space e.len));
  (* Re-pin snapshot segments. *)
  t.snapshots <-
    List.map
      (fun (id, root, sseq) ->
        let segs = tree_segments t root in
        List.iter (fun s -> Log.pin t.log s) segs;
        (id, { snap_root = root; snap_seq = sseq; snap_segs = segs }))
      anchor.Anchor.snapshots;
  Log.barrier t.log;
  (* Settle into a clean checkpointed state. *)
  checkpoint t;
  t

(** Checkpoint and sync; the database can be reopened with
    {!open_existing}. *)
let close t : unit =
  if Hashtbl.length t.pending > 0 then abort_batch t;
  checkpoint t;
  Tdb_platform.Untrusted_store.close t.store

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let stats t =
  let hits, misses, evictions = Chunk_cache.stats t.cache in
  t.stats.cache_hits <- hits;
  t.stats.cache_misses <- misses;
  t.stats.cache_evictions <- evictions;
  t.stats.tier_segments <- Log.tier_segment_counts t.log ~tiers:t.cfg.Config.tiers;
  t.stats

let cache_resident t = Chunk_cache.resident t.cache
let cache_bytes t = Chunk_cache.total_size t.cache
let cache_budget t = Chunk_cache.budget t.cache

let set_cache_budget t b =
  if b < 0 then invalid_arg "Chunk_store.set_cache_budget: negative";
  Chunk_cache.set_budget t.cache b

let counter_value t = t.last_counter
let commit_seq t = t.seq

(** Chunk ids present in the last committed location map (pending batch
    writes excluded), in ascending id order — the committed footprint a
    full backup captures and a replica ingest must reconcile against. *)
let live_ids t : chunk_id list =
  let acc = ref [] in
  Location_map.iter t.map (fetch t) ~data:(fun cid _ -> acc := cid :: !acc) ~node:(fun _ -> ());
  List.sort Int.compare !acc

let utilization t = Log.utilization t.log
let live_bytes t = Log.live_bytes t.log
let capacity t = Log.capacity t.log
let store_size t = Tdb_platform.Untrusted_store.size t.store
let security_enabled t = t.sec.Security.enabled
let config t = t.cfg
let domains t = t.domains

(** Explicit idle-time cleaning (paper: "some of the database
    reorganization can be deferred until idle time"). Checkpoints first so
    the whole log (minus the fresh tail) is eligible. *)
let clean ?max_segments t =
  checkpoint t;
  clean_pass ?max_segments t
