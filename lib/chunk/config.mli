(** Chunk store configuration.

    TDB is modular (paper Section 2): security can be switched off entirely
    (the paper's plain "TDB" vs "TDB-S" configurations), the cipher and
    hash are pluggable, and every size/cadence is tunable for the
    embedding device. *)

type cipher_choice =
  | Aes128  (** one-pass AES (verified against FIPS-197) *)
  | Triple_aes  (** three-pass EDE AES: a 3DES-cost configuration *)
  | Triple_xtea
      (** three-pass XTEA: DES-sized 8-byte blocks, smallest footprint —
          the closest shape to the paper's 3DES (see DESIGN.md) *)

type hash_choice = Sha1 | Sha256

type t = {
  security : bool;
      (** When false, chunks are stored in plaintext, no hashing/MACs are
          performed and the one-way counter is never touched — the paper's
          plain "TDB" configuration. *)
  cipher : cipher_choice;
  hash : hash_choice;
  segment_size : int;  (** log segment size in bytes *)
  anchor_slot_size : int;  (** each of the two anchor slots *)
  initial_segments : int;
  max_utilization : float;
      (** maximal fraction of the store occupied by live chunks; the
          grow-vs-clean decision point (paper Section 7.3, default 0.6) *)
  checkpoint_every : int;
      (** checkpoint the location map after this many commits... *)
  checkpoint_residual_bytes : int;
      (** ...or once this many bytes of residual log accumulate, whichever
          comes first: bounds both recovery time and the log region the
          cleaner cannot touch *)
  map_fanout : int;
  map_depth : int;  (** the map covers [map_fanout ^ map_depth] chunk ids *)
  clean_batch : int;  (** max segments reclaimed per cleaning pass *)
  chunk_cache_bytes : int;
      (** budget for the verified-chunk read cache ({!Chunk_cache}):
          decrypted, hash-verified payloads held inside the trusted
          boundary so repeated reads skip the fetch/verify/decrypt path;
          0 disables it *)
  domains : int;
      (** width of the seal/unseal pipeline: how many OCaml domains
          (including the caller) may work on one commit's seals or one
          batched read's unseals. 1 = exact sequential behavior (the
          domain pool is never touched). Defaults to the available cores,
          overridable via [TDB_DOMAINS]. Store images are byte-identical
          at every width. *)
  replica_interval_commits : int;
      (** When a server has a backup store attached, auto-emit an
          incremental backup every this many durable commits (feeding the
          replication stream). 0 = off (the default); [TDB_REPLICA_EVERY]
          overrides the default. *)
  shards : int;
      (** Number of independent chunk-store shards a {!Shard_store} router
          composes (each with its own log, location map, anchor and
          one-way counter). 1 = single spine, byte-compatible with the
          unsharded store format; [TDB_SHARDS] overrides the default. *)
  tiers : int;
      (** Number of cleaning generations (hot → cold) the log is composed
          of: fresh commit writes land in tier 0, cleaning survivors are
          demoted one tier colder, and candidates are scored per tier by
          cost-benefit instead of pure utilization. 1 = the classic
          single-population cleaner, byte-identical to the untiered store
          format; [TDB_TIERS] overrides the default. *)
}

val default : t
(** Security on, Triple-AES + SHA-1 (the paper's TDB-S algorithm class),
    64 KiB segments, 60% maximum utilization. *)

val default_shards : unit -> int
(** The default shard count: [TDB_SHARDS] when set (validated to [1, 64]),
    else 1. *)

val default_tiers : unit -> int
(** The default tier count: [TDB_TIERS] when set (validated to [1, 8]),
    else 1. *)

val max_chunk_size : t -> int
(** Largest storable chunk payload (one record must fit in a segment). *)

val validate : t -> unit
(** @raise Invalid_argument on inconsistent settings. *)
