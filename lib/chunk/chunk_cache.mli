(** LRU cache of decrypted, hash-verified chunk payloads (see DESIGN.md,
    "Caching").

    Sits inside the chunk store, below the object cache: a hit skips the
    log read, the Merkle-label check and the decryption that
    {!Chunk_store.read} otherwise pays on every access. Entries are keyed
    by chunk id and guarded by the committed version number — a lookup
    only hits when the cached version matches the one the location map
    currently holds, so stale data can never be served and cleaning
    relocation (which preserves versions) invalidates nothing.

    The cache is single-writer: it belongs to the domain that created it,
    and every mutating operation asserts it runs there. Pool workers must
    hand payloads back to the coordinator for insertion — see DESIGN.md,
    "Parallelism model". *)

type t

val create : budget:int -> t
(** An empty cache holding at most [budget] bytes of plaintext (plus a
    small per-entry overhead). A budget of 0 disables caching: [put]
    becomes a no-op and every [find] misses. The calling domain becomes
    the cache's owner; [find]/[put]/[remove]/[clear]/[set_budget] from
    any other domain fail the ownership assertion. *)

val find : t -> int -> version:int -> string option
(** [find t cid ~version] returns the cached payload iff an entry for
    [cid] exists at exactly [version]; a version mismatch drops the stale
    entry and counts as a miss. *)

val put : t -> int -> version:int -> string -> unit
(** Insert or refresh the payload for [cid] at [version], evicting
    least-recently-used entries until within budget. *)

val remove : t -> int -> unit
(** Forget [cid] (deallocation). *)

val clear : t -> unit
(** Drop every entry (recovery/restore). Counters are preserved. *)

val stats : t -> int * int * int
(** [(hits, misses, evictions)] since creation. *)

val resident : t -> int
(** Number of cached entries. *)

val total_size : t -> int
(** Budget-accounted bytes currently held. *)

val budget : t -> int

val set_budget : t -> int -> unit
(** Change the budget, evicting immediately if now over. *)
