(** The hierarchical location map with the Merkle hash tree embedded in it
    (paper Section 3.2.1): a fixed-fanout radix tree over chunk ids whose
    leaf slots hold data-chunk location entries and whose interior slots
    hold child-node entries. Every entry carries the one-way hash of the
    bytes it points at, so validating a chunk read validates one
    root-to-leaf path and the root entry (in the MAC'd anchor)
    authenticates the whole database.

    Nodes load lazily through a [fetch] callback (which reads the
    untrusted store, checks the recorded hash and decrypts); dirty nodes
    live in memory until {!checkpoint} writes them bottom-up. *)

open Types

type kid = Entry of entry | Node of node | Unloaded of entry

and node = {
  level : int;  (** 0 = leaf *)
  base : int;  (** first chunk id covered *)
  kids : kid option array;
  mutable disk : entry option;  (** on-disk copy, iff clean *)
}

type t = { fanout : int; depth : int; mutable root : node }

type fetch = what:string -> entry -> string
(** Validated, decrypted payload at an entry.
    @raise Tamper_detected on validation failure. *)

val create : fanout:int -> depth:int -> t
val capacity : t -> int

(** {1 Node serialization} *)

val write_entry : Tdb_pickle.Pickle.writer -> entry -> unit
val read_entry : Tdb_pickle.Pickle.reader -> entry
val node_payload : node -> string
val node_of_payload : fanout:int -> string -> node

(** {1 Point operations} *)

val find : t -> fetch -> chunk_id -> entry option

val set : t -> fetch -> chunk_id -> entry -> entry option * entry list
(** Install an entry; returns the replaced data entry and the on-disk node
    copies obsoleted by dirtying the path (for usage accounting). *)

val remove : t -> fetch -> chunk_id -> entry option * entry list

val find_node : t -> fetch -> level:int -> base:int -> node option
(** Used by the cleaner to test map-node liveness. *)

val root_entry : t -> entry option
(** The root's on-disk entry; [None] while dirty or empty. *)

val count_dirty : t -> int

(** {1 Checkpoint and whole-tree walks} *)

val checkpoint : t -> write_node:(string -> entry) -> obsolete:(entry -> unit) -> entry option
(** Write dirty nodes bottom-up; returns the new root entry. *)

val iter : t -> fetch -> data:(chunk_id -> entry -> unit) -> node:(entry -> unit) -> unit
(** Walk the current tree (loads everything): every data entry and every
    clean node's on-disk entry — recovery's usage rebuild. *)

val walk_tree :
  fanout:int -> fetch -> root:entry -> data:(chunk_id -> entry -> unit) -> node:(entry -> unit) -> unit
(** Walk a tree straight off the disk (snapshot reads). *)

val diff_trees :
  fanout:int ->
  fetch ->
  old_root:entry option ->
  new_root:entry option ->
  changed:(chunk_id -> entry -> unit) ->
  removed:(chunk_id -> unit) ->
  unit
(** Structural diff pruning identical subtrees by hash — the basis of
    incremental backups. *)
