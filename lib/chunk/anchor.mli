(** The anchor: the known location where TDB keeps "the resulting hash
    value along with the current value of the one-way counter ... signed
    with the secret key" (paper Section 3). Two fixed slots written
    alternately by epoch parity, so a torn anchor write leaves the previous
    anchor intact; readers pick the valid slot with the highest epoch. *)

type payload = {
  epoch : int;
  segment_size : int;  (** layout parameters, checked at open *)
  map_fanout : int;
  map_depth : int;
  seq : int;  (** last commit sequence at checkpoint *)
  root : Types.entry option;  (** location-map root; None = empty database *)
  tail_seg : int;
  tail_off : int;
  counter : int64;  (** one-way counter value at checkpoint *)
  next_id : int;
  chain : string;  (** commit-chain MAC value at checkpoint *)
  snapshots : (int * Types.entry option * int) list;  (** id, root, seq *)
  tiers : (int * int) list;
      (** [(segment, cleaning tier)] for tier > 0 segments; encoded only
          when nonempty, so single-tier anchors stay byte-identical to the
          pre-tier format (and old anchors decode to an empty table) *)
}

val encode : payload -> string
val decode : string -> payload

val write : Security.t -> Tdb_platform.Untrusted_store.t -> slot_size:int -> payload -> unit
(** Write into the slot selected by the epoch, then sync. *)

val read : Security.t -> Tdb_platform.Untrusted_store.t -> slot_size:int -> payload option
(** The valid slot with the highest epoch; [None] when neither validates. *)
