(** The log: segment allocation, tail appends, usage accounting.

    The chunk store is log-structured (paper Section 3.2.1): the log is the
    *only* storage; records are appended at the tail and never updated in
    place. The store is divided into fixed-size segments; the tail fills one
    segment, then chains to the next free one via a [Next_segment] marker so
    recovery can follow the residual log.

    Usage accounting tracks live payload bytes per segment. A segment whose
    usage drops to zero becomes reusable only at the next *barrier* (durable
    commit or checkpoint): before that, its garbage may still be needed — a
    chunk version obsoleted by a nondurable commit must survive until the
    commit becomes durable (paper Section 3.2.2), and records written since
    the last checkpoint form the residual log that recovery replays. *)

open Types

let header_size = 6 (* magic, kind, 4-byte length *)
let magic_byte = '\xC5'
let marker_size = header_size + 4 (* Next_segment record *)

(** One contiguous buffered byte range at the tail, not yet written to the
    store. [run_frags] is kept newest-first; each element stays a separate
    fragment so the store's [writev] (and the fault harness interposing on
    it) sees every record edge as a tear boundary. *)
type run = {
  run_off : int; (* absolute store offset of the run's first byte *)
  mutable run_frags : string list; (* reversed: newest fragment first *)
  mutable run_len : int;
}

type t = {
  store : Tdb_platform.Untrusted_store.t;
  cfg : Config.t;
  log_base : int;
  mutable nsegments : int;
  usage : (int, int) Hashtbl.t; (* seg -> live bytes (header + payload) *)
  mutable free : int list;
  mutable nfree : int; (* List.length free, maintained *)
  pinned : (int, int) Hashtbl.t; (* seg -> pin count, held by snapshots *)
  residual : (int, unit) Hashtbl.t; (* segments written since last checkpoint *)
  mutable residual_bytes : int; (* bytes appended since last checkpoint *)
  mutable tail_seg : int;
  mutable tail_off : int; (* offset within tail segment *)
  mutable tail_buf : run list; (* buffered appends, newest run first *)
  mutable grown : int; (* segments added since open (stats) *)
  (* Generational cleaning state (all in-memory hints; Config.tiers = 1
     leaves every table empty and every byte path identical): *)
  tier_of : (int, int) Hashtbl.t; (* seg -> tier; absent = 0 (hot) *)
  age_of : (int, int) Hashtbl.t; (* seg -> clock stamp when it became an append target *)
  cold_tails : (int, int * int) Hashtbl.t; (* tier (>= 1) -> open (seg, off) cursor *)
  mutable clock : int; (* segment-allocation clock driving age scores *)
}

let seg_start t seg = t.log_base + (seg * t.cfg.Config.segment_size)
let segment_size t = t.cfg.Config.segment_size
let usage_of t seg = Option.value ~default:0 (Hashtbl.find_opt t.usage seg)
let capacity t = t.nsegments * segment_size t
let live_bytes t = Hashtbl.fold (fun _ v acc -> acc + v) t.usage 0
let utilization t = float_of_int (live_bytes t) /. float_of_int (max 1 (capacity t))
let is_pinned t seg = match Hashtbl.find_opt t.pinned seg with Some n -> n > 0 | None -> false
let free_count t = t.nfree
let tail_pos t = (t.tail_seg, t.tail_off)
let nsegments t = t.nsegments

(* ------------------------------------------------------------------ *)
(* Tier accounting                                                     *)
(* ------------------------------------------------------------------ *)

let tier_of_seg t seg = Option.value ~default:0 (Hashtbl.find_opt t.tier_of seg)

(** Stamp [seg] as becoming an append target now (its age baseline). *)
let stamp t seg =
  Hashtbl.replace t.age_of seg t.clock;
  t.clock <- t.clock + 1

let age_of_seg t seg = t.clock - Option.value ~default:t.clock (Hashtbl.find_opt t.age_of seg)

(** Tag [seg] with [tier]; tier 0 clears the tag, keeping the table empty
    on untiered stores. Recovery seeds ages through here too: a recovered
    tier-[k] segment is backdated by [k] ticks so colder reads as older
    until real appends re-stamp things. *)
let set_tier t seg tier =
  if tier <= 0 then Hashtbl.remove t.tier_of seg else Hashtbl.replace t.tier_of seg tier;
  if not (Hashtbl.mem t.age_of seg) then Hashtbl.replace t.age_of seg (-tier)

let is_cold_tail t seg = Hashtbl.fold (fun _ (s, _) acc -> acc || Int.equal s seg) t.cold_tails false

(** (seg, tier) pairs worth persisting: cold-tagged segments still holding
    live bytes (or serving as a cold cursor). Empty at [tiers = 1], so the
    anchor payload is byte-identical to the untiered format. *)
let tier_table t : (int * int) list =
  Hashtbl.fold
    (fun seg tier acc ->
      if tier > 0 && (usage_of t seg > 0 || is_cold_tail t seg) then (seg, tier) :: acc else acc)
    t.tier_of []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(** Segments holding live bytes, bucketed by tier (index 0 = hot). *)
let tier_segment_counts t ~(tiers : int) : int list =
  let counts = Array.make (max 1 tiers) 0 in
  Hashtbl.iter
    (fun seg u ->
      if u > 0 then begin
        let k = min (tier_of_seg t seg) (Array.length counts - 1) in
        counts.(k) <- counts.(k) + 1
      end)
    t.usage;
  Array.to_list counts

(** Cleaning threshold for a tier's segments, as a live fraction: hot
    segments are always worth scoring (threshold 1), while colder tiers
    demand progressively more garbage — down to [max_utilization * 1/tiers]
    at the coldest. Cold data is exactly what the generational cleaner is
    trying to stop recopying, so a settled cold segment is only reclaimed
    once it is mostly dead. *)
let tier_threshold (cfg : Config.t) tier =
  let tiers = cfg.Config.tiers in
  if tiers <= 1 then cfg.Config.max_utilization
  else begin
    let mu = cfg.Config.max_utilization in
    let k = min tier (tiers - 1) in
    if k = 0 then 1.0
    else mu *. 0.5 *. (float_of_int (tiers - k) /. float_of_int tiers)
  end

(* ------------------------------------------------------------------ *)
(* Tail write buffer                                                   *)
(* ------------------------------------------------------------------ *)

(** Buffer [frag] for writing at absolute offset [off]: extends the newest
    run when contiguous with it, else opens a new run (appends are
    monotonic within a segment, so at most one run per segment visited
    since the last flush). *)
let buf_push t ~off frag =
  match t.tail_buf with
  | r :: _ when Int.equal (r.run_off + r.run_len) off ->
      r.run_frags <- frag :: r.run_frags;
      r.run_len <- r.run_len + String.length frag
  | _ -> t.tail_buf <- { run_off = off; run_frags = [ frag ]; run_len = String.length frag } :: t.tail_buf

type flush_token = { fr_runs : (int * string list) list (* (abs off, in-order fragments) *) }

(** Detach the buffered tail: the token owns the pending ranges and the
    buffer is empty afterwards. Splitting prepare from write lets the
    staged group-commit barrier perform the store I/O outside the store
    mutex (the token only touches [t.store], never [t]'s mutable state). *)
let flush_prepare t : flush_token =
  let runs = List.rev_map (fun r -> (r.run_off, List.rev r.run_frags)) t.tail_buf in
  t.tail_buf <- [];
  { fr_runs = runs }

(** Write a detached token's runs: one vectored store write per run. *)
let flush_write t (tok : flush_token) : unit =
  List.iter (fun (off, frags) -> Tdb_platform.Untrusted_store.writev t.store ~off frags) tok.fr_runs

(** Flush the buffered tail to the store. *)
let flush t = flush_write t (flush_prepare t)

let buf_overlaps t ~lo ~hi =
  List.exists (fun r -> r.run_off < hi && lo < r.run_off + r.run_len) t.tail_buf

(* Reads must see buffered appends: flush first if the requested range
   overlaps a pending run (cheap — the buffer rarely holds more than a few
   runs, and hot reads target cold, already-flushed segments). *)
let prepare_read t ~lo ~hi = if buf_overlaps t ~lo ~hi then flush t

(* [Untrusted_store.read] hands back a freshly allocated buffer with no
   other owner, so freezing it in place is sound: no one mutates it after
   this point. Saves a full copy on every record read. *)
let string_of_read t ~off ~len : string =
  Bytes.unsafe_to_string (Tdb_platform.Untrusted_store.read t.store ~off ~len)

let pin t seg = Hashtbl.replace t.pinned seg (1 + Option.value ~default:0 (Hashtbl.find_opt t.pinned seg))

let unpin t seg =
  match Hashtbl.find_opt t.pinned seg with
  | Some 1 -> Hashtbl.remove t.pinned seg
  | Some n when n > 1 -> Hashtbl.replace t.pinned seg (n - 1)
  | _ -> invalid_arg "Log.unpin: not pinned"

let ensure_store_size t =
  let need = t.log_base + (t.nsegments * segment_size t) in
  if Tdb_platform.Untrusted_store.size t.store < need then Tdb_platform.Untrusted_store.set_size t.store need

let create (store : Tdb_platform.Untrusted_store.t) (cfg : Config.t) : t =
  let t =
    {
      store;
      cfg;
      log_base = 2 * cfg.Config.anchor_slot_size;
      nsegments = cfg.Config.initial_segments;
      usage = Hashtbl.create 64;
      free = List.init (cfg.Config.initial_segments - 1) (fun i -> i + 1);
      nfree = cfg.Config.initial_segments - 1;
      pinned = Hashtbl.create 8;
      residual = Hashtbl.create 16;
      residual_bytes = 0;
      tail_seg = 0;
      tail_off = 0;
      tail_buf = [];
      grown = 0;
      tier_of = Hashtbl.create 16;
      age_of = Hashtbl.create 16;
      cold_tails = Hashtbl.create 4;
      clock = 0;
    }
  in
  stamp t t.tail_seg;
  ensure_store_size t;
  t

(** Reconstruct log state after recovery: the usage table is rebuilt by the
    chunk store (walking the recovered map), then it calls this to derive
    the free list. Fresh recovery counts as a barrier. *)
let of_recovery (store : Tdb_platform.Untrusted_store.t) (cfg : Config.t) ~(tail_seg : int) ~(tail_off : int)
    ~(usage : (int, int) Hashtbl.t) : t =
  let log_base = 2 * cfg.Config.anchor_slot_size in
  let store_size = Tdb_platform.Untrusted_store.size store in
  let nsegments = max cfg.Config.initial_segments ((store_size - log_base) / cfg.Config.segment_size) in
  let t =
    {
      store;
      cfg;
      log_base;
      nsegments;
      usage;
      free = [];
      nfree = 0;
      pinned = Hashtbl.create 8;
      residual = Hashtbl.create 16;
      residual_bytes = 0;
      tail_seg;
      tail_off;
      tail_buf = [];
      grown = 0;
      tier_of = Hashtbl.create 16;
      age_of = Hashtbl.create 16;
      cold_tails = Hashtbl.create 4;
      clock = 0;
    }
  in
  stamp t t.tail_seg;
  ensure_store_size t;
  t

(** Promote empty segments to the free list — callable only at barriers
    (durable commit, checkpoint, recovery); see the module comment.
    Trailing free segments are handed back to the untrusted store: the
    paper notes the chunk store "can increase or decrease the space
    allocated for storage" (Section 3.2.1), and shrinking is what lets the
    database settle at the configured utilization. *)
let zero_usage_segments t =
  let h = Hashtbl.create 64 in
  for seg = 0 to t.nsegments - 1 do
    if usage_of t seg = 0 then Hashtbl.replace h seg ()
  done;
  h

let barrier ?eligible t =
  (* Barriers follow the durability point; anything still buffered belongs
     to the log and must land before segment accounting is recomputed. *)
  flush t;
  let candidate seg = match eligible with None -> true | Some h -> Hashtbl.mem h seg in
  let free = ref [] and nfree = ref 0 in
  for seg = 0 to t.nsegments - 1 do
    if
      (not (Int.equal seg t.tail_seg))
      && usage_of t seg = 0 && candidate seg
      && (not (is_pinned t seg))
      && (not (Hashtbl.mem t.residual seg))
      && not (is_cold_tail t seg)
    then begin
      free := seg :: !free;
      Hashtbl.remove t.tier_of seg;
      incr nfree
    end
  done;
  (* [!free] is descending (seg 0 pushed first), so trailing free segments
     sit at its head: shrink is a single walk dropping head elements while
     they coincide with the last segment, keeping the cleaner's copy
     reserve. *)
  let reserve = (2 * t.cfg.Config.clean_batch) + 6 in
  let rec drop_trailing = function
    | l :: rest
      when Int.equal l (t.nsegments - 1)
           && t.nsegments > t.cfg.Config.initial_segments
           && !nfree > reserve ->
        t.nsegments <- t.nsegments - 1;
        decr nfree;
        drop_trailing rest
    | fl -> fl
  in
  t.free <- List.rev (drop_trailing !free);
  t.nfree <- !nfree;
  Tdb_platform.Untrusted_store.set_size t.store (t.log_base + (t.nsegments * segment_size t))

(** Checkpoint completion: the residual log is no longer needed. *)
let end_checkpoint t =
  Hashtbl.reset t.residual;
  t.residual_bytes <- 0;
  barrier t

let residual_bytes t = t.residual_bytes

let grow t ~(segments : int) =
  let first = t.nsegments in
  t.nsegments <- t.nsegments + segments;
  t.grown <- t.grown + segments;
  ensure_store_size t;
  t.free <- t.free @ List.init segments (fun i -> first + i);
  t.nfree <- t.nfree + segments

(** Record that [len] live bytes at [seg] became garbage. *)
let obsolete_bytes t ~(seg : int) ~(payload_len : int) =
  let v = usage_of t seg - (header_size + payload_len) in
  if v < 0 then failwith (Printf.sprintf "Log: usage underflow on segment %d" seg);
  if v = 0 then Hashtbl.remove t.usage seg else Hashtbl.replace t.usage seg v

let obsolete_entry t (e : entry) = obsolete_bytes t ~seg:e.seg ~payload_len:e.len

let header_string (kind : record_kind) (len : int) : string =
  let h = Bytes.create header_size in
  Bytes.set h 0 magic_byte;
  Bytes.set h 1 (Char.chr (kind_to_byte kind));
  Bytes.set h 2 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set h 3 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set h 4 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set h 5 (Char.chr (len land 0xff));
  (* freshly built, uniquely owned *)
  Bytes.unsafe_to_string h

(** How many bytes of log space an [n]-byte payload consumes. *)
let record_space n = header_size + n

exception Need_segment

(** Append a record at the tail. The caller must have ensured free space
    (via {!Chunk_store}'s clean-or-grow policy); if the free list runs dry
    anyway, raises [Need_segment]. Returns the *payload* position.

    The record is only {e buffered}: header, payload and chain markers
    accumulate in the tail buffer and reach the store at the next {!flush}
    as one vectored write per contiguous run. The payload string is
    referenced, not copied.

    [live] records (chunk data, map nodes) are charged to the segment's
    usage; transient records (commits) are not — they die with their
    segment once the residual window has passed. *)
let append ?(live = true) t (kind : record_kind) (sealed : string) : int * int =
  let len = String.length sealed in
  if record_space len + marker_size > segment_size t then
    invalid_arg (Printf.sprintf "Log.append: record of %d bytes exceeds segment size" len);
  (* Switch segments if this record would not leave room for a marker. *)
  if t.tail_off + record_space len + marker_size > segment_size t then begin
    match t.free with
    | [] -> raise Need_segment
    | next :: rest ->
        t.free <- rest;
        t.nfree <- t.nfree - 1;
        (* Chain: Next_segment marker holding the successor's id. *)
        let m = Bytes.create 4 in
        Bytes.set m 0 (Char.chr ((next lsr 24) land 0xff));
        Bytes.set m 1 (Char.chr ((next lsr 16) land 0xff));
        Bytes.set m 2 (Char.chr ((next lsr 8) land 0xff));
        Bytes.set m 3 (Char.chr (next land 0xff));
        buf_push t ~off:(seg_start t t.tail_seg + t.tail_off) (header_string Next_segment 4);
        buf_push t
          ~off:(seg_start t t.tail_seg + t.tail_off + header_size)
          ((* freshly built, uniquely owned *) Bytes.unsafe_to_string m);
        Hashtbl.replace t.residual t.tail_seg ();
        t.tail_seg <- next;
        t.tail_off <- 0;
        (* the fresh tail is a hot (tier 0) segment, whatever it once was *)
        Hashtbl.remove t.tier_of next;
        stamp t next
  end;
  let payload_off_abs = seg_start t t.tail_seg + t.tail_off + header_size in
  buf_push t ~off:(seg_start t t.tail_seg + t.tail_off) (header_string kind len);
  buf_push t ~off:payload_off_abs sealed;
  let pos = (t.tail_seg, t.tail_off + header_size) in
  t.tail_off <- t.tail_off + record_space len;
  if live then Hashtbl.replace t.usage t.tail_seg (usage_of t t.tail_seg + record_space len);
  Hashtbl.replace t.residual t.tail_seg ();
  t.residual_bytes <- t.residual_bytes + record_space len;
  pos

(** Append into a cold tier's open segment (the generational cleaner's
    demotion path); [tier <= 0] is the ordinary hot-tail {!append}. Each
    cold tier keeps its own cursor: segments fill from offset 0 and carry
    no [Next_segment] chaining — cold records are covered by the Clean
    commit records (and the checkpoint) the cleaning pass emits at the hot
    tail, never replayed positionally, so the cursors need no persistence
    (recovery simply opens fresh cold segments on the next demotion).
    Accounting (usage, residual, residual_bytes) matches {!append}.
    @raise Need_segment when a fresh cold segment is needed and the free
    list is dry (the caller grows, exactly as for the hot tail). *)
let append_tier ?(live = true) t ~(tier : int) (kind : record_kind) (sealed : string) : int * int =
  if tier <= 0 then append ~live t kind sealed
  else begin
    let len = String.length sealed in
    if record_space len + marker_size > segment_size t then
      invalid_arg (Printf.sprintf "Log.append_tier: record of %d bytes exceeds segment size" len);
    let seg, off =
      match Hashtbl.find_opt t.cold_tails tier with
      | Some (seg, off) when off + record_space len <= segment_size t -> (seg, off)
      | _ -> (
          match t.free with
          | [] -> raise Need_segment
          | next :: rest ->
              t.free <- rest;
              t.nfree <- t.nfree - 1;
              set_tier t next tier;
              stamp t next;
              (next, 0))
    in
    buf_push t ~off:(seg_start t seg + off) (header_string kind len);
    buf_push t ~off:(seg_start t seg + off + header_size) sealed;
    Hashtbl.replace t.cold_tails tier (seg, off + record_space len);
    if live then Hashtbl.replace t.usage seg (usage_of t seg + record_space len);
    Hashtbl.replace t.residual seg ();
    t.residual_bytes <- t.residual_bytes + record_space len;
    (seg, off + header_size)
  end

(** Read the payload bytes an entry points at (no validation here). *)
let read_payload t (e : entry) : string =
  let off = seg_start t e.seg + e.off in
  prepare_read t ~lo:off ~hi:(off + e.len);
  string_of_read t ~off ~len:e.len

(** Parse one record at [(seg, off)] (header offset). Returns
    [(kind, payload_off, payload)] or [None] if no valid record starts
    there. *)
let parse_record t ~(seg : int) ~(off : int) : (record_kind * int * string) option =
  if off + header_size > segment_size t then None
  else begin
    let abs = seg_start t seg + off in
    (* guard the whole rest of the segment: header + payload in one check *)
    prepare_read t ~lo:abs ~hi:(seg_start t seg + segment_size t);
    if abs + header_size > Tdb_platform.Untrusted_store.size t.store then None
    else begin
      let h = string_of_read t ~off:abs ~len:header_size in
      if not (Char.equal h.[0] magic_byte) then None
      else
        match kind_of_byte (Char.code h.[1]) with
        | exception Invalid_argument _ -> None
        | kind ->
            let len =
              (Char.code h.[2] lsl 24) lor (Char.code h.[3] lsl 16) lor (Char.code h.[4] lsl 8) lor Char.code h.[5]
            in
            if len < 0 || off + header_size + len > segment_size t then None
            else if abs + header_size + len > Tdb_platform.Untrusted_store.size t.store then None
            else
              Some (kind, off + header_size, string_of_read t ~off:(abs + header_size) ~len)
    end
  end

(** Scan all parseable records of one segment from its start: used by the
    cleaner. Reads the whole segment in one I/O (a cleaner reads cold
    segments sequentially), then parses in memory. Stops at the first
    invalid header. *)
let scan_segment t (seg : int) : (record_kind * int * string) list =
  let size = segment_size t in
  let base = seg_start t seg in
  prepare_read t ~lo:base ~hi:(base + size);
  let avail = max 0 (min size (Tdb_platform.Untrusted_store.size t.store - base)) in
  if avail < header_size then []
  else begin
    let img = string_of_read t ~off:base ~len:avail in
    let acc = ref [] and off = ref 0 and stop = ref false in
    while not !stop do
      if !off + header_size > avail then stop := true
      else if not (Char.equal img.[!off] magic_byte) then stop := true
      else
        match kind_of_byte (Char.code img.[!off + 1]) with
        | exception Invalid_argument _ -> stop := true
        | kind ->
            let len =
              (Char.code img.[!off + 2] lsl 24) lor (Char.code img.[!off + 3] lsl 16)
              lor (Char.code img.[!off + 4] lsl 8) lor Char.code img.[!off + 5]
            in
            if len < 0 || !off + header_size + len > avail then stop := true
            else begin
              acc := (kind, !off + header_size, String.sub img (!off + header_size) len) :: !acc;
              off := !off + header_size + len
            end
    done;
    List.rev !acc
  end

(** Fold records following the tail chain from [(seg, off)]: recovery's
    residual-log scan. [f] receives the record kind, its payload position
    and payload; folding stops at the first invalid record. *)
let scan_chain t ~(seg : int) ~(off : int) ~(f : record_kind -> int * int -> string -> unit) : unit =
  (* A segment joins the tail chain at most once between checkpoints, so a
     marker leading to an already-visited segment is stale debris from a
     previous incarnation of that segment (a crash can preserve old bytes
     that still parse) — following it would loop forever. Treat it like
     any other invalid record: the chain ends there and recovery's
     durable-prefix rule truncates accordingly. *)
  let visited = Array.make t.nsegments false in
  let seg = ref seg and off = ref off and stop = ref false in
  if !seg >= 0 && !seg < t.nsegments then visited.(!seg) <- true;
  while not !stop do
    match parse_record t ~seg:!seg ~off:!off with
    | None -> stop := true
    | Some (Next_segment, _, payload) ->
        if String.length payload <> 4 then stop := true
        else begin
          let next =
            (Char.code payload.[0] lsl 24) lor (Char.code payload.[1] lsl 16) lor (Char.code payload.[2] lsl 8)
            lor Char.code payload.[3]
          in
          if next < 0 || next >= t.nsegments || visited.(next) then stop := true
          else begin
            visited.(next) <- true;
            seg := next;
            off := 0
          end
        end
    | Some (kind, poff, payload) ->
        f kind (!seg, poff) payload;
        off := poff + String.length payload
  done

(** Segments eligible for cleaning. With [Config.tiers <= 1] this is the
    classic single-population order: least-utilized first, so each pass
    frees the most space for the fewest relocations. With [tiers > 1]
    candidates are ranked by an LFS-style cost-benefit score —
    [(1-u) * (1 + age_boost) / (1+u)], where [age_boost] is 0 in the hot
    tier (pure minimum-utilization there: age reordering would harvest
    segments before their churn has died) and the saturating
    [age/(age+256)] in colder tiers — and gated per tier by
    {!tier_threshold}: tier 0 cleans at any utilization while colder
    tiers demand progressively more garbage, so settled cold data is
    rarely recopied. The age term is deliberately bounded (at most 2x):
    an unbounded age would let an old, half-live cold segment outscore a
    nearly-empty hot one, which is precisely the recopying the tiers
    exist to avoid. Only the hottest tier with gated work is returned,
    so a cheap hot batch is never padded with expensive cold segments;
    when nothing is gated the list is empty and the store grows instead,
    exactly as the untiered cleaner does. Tail segments (the hot tail
    and every cold-tier cursor), pinned segments and residual segments
    are never candidates. *)
let clean_candidates t : int list =
  let eligible seg =
    let u = usage_of t seg in
    (not (Int.equal seg t.tail_seg))
    && u > 0
    && (not (is_pinned t seg))
    && (not (Hashtbl.mem t.residual seg))
    && not (is_cold_tail t seg)
  in
  let tiers = t.cfg.Config.tiers in
  if tiers <= 1 then begin
    let all = ref [] in
    for seg = 0 to t.nsegments - 1 do
      if eligible seg then all := (usage_of t seg, seg) :: !all
    done;
    List.map snd
      (List.sort
         (fun (u1, s1) (u2, s2) ->
           match Int.compare u1 u2 with 0 -> Int.compare s1 s2 | c -> c)
         !all)
  end
  else begin
    let seg_bytes = float_of_int (segment_size t) in
    let gated = ref [] in
    for seg = 0 to t.nsegments - 1 do
      if eligible seg then begin
        let u_frac = float_of_int (usage_of t seg) /. seg_bytes in
        let tier = tier_of_seg t seg in
        let age = float_of_int (max 0 (age_of_seg t seg)) in
        let age_boost = if Int.equal tier 0 then 0. else age /. (age +. 256.) in
        let score = (1. -. u_frac) *. (1. +. age_boost) /. (1. +. u_frac) in
        if u_frac <= tier_threshold t.cfg tier then gated := (tier, score, seg) :: !gated
      end
    done;
    (* Hottest tier with work first: cleaning a churned hot segment is
       almost free and feeds the demotion pipeline; a cold segment — even
       a gated one — is only worth touching when no hotter tier has any
       candidate, so each pass is restricted to one tier rather than
       padding a cheap hot batch with expensive cold segments. Within the
       tier, cost-benefit order. Segments over their tier's threshold are
       not candidates at all — when nothing is gated the store grows
       instead, exactly as the untiered cleaner does on an empty list;
       cleaning a mostly-live cold segment is never cheaper than buying
       the same free space with a fresh segment. *)
    let order (t1, sc1, s1) (t2, sc2, s2) =
      match Int.compare t1 t2 with
      | 0 -> ( match Float.compare sc2 sc1 with 0 -> Int.compare s1 s2 | c -> c)
      | c -> c
    in
    match List.sort order !gated with
    | [] -> []
    | (top_tier, _, _) :: _ as sorted ->
        List.filter_map
          (fun (tier, _, s) -> if Int.equal tier top_tier then Some s else None)
          sorted
  end
