(** The chunk store (paper Section 3): trusted storage for named,
    variable-sized byte sequences — {e chunks} — on top of a store the
    attacker fully controls.

    {1 Guarantees}

    - {b Secrecy}: every stored payload is encrypted (when
      {!Config.t.security} is on) under keys derived from the platform
      secret store.
    - {b Tamper detection}: payloads are validated against the Merkle tree
      embedded in the location map, whose root lives in the MAC'd anchor.
      Violations raise {!Types.Tamper_detected}.
    - {b Replay detection}: durable commits advance the platform one-way
      counter; {!open_existing} cross-checks it and rejects replayed
      images.
    - {b Atomicity}: a batch of {!write}/{!deallocate} operations commits
      atomically with respect to crashes — durably, or nondurably (the
      nondurable batch survives only once a later durable barrier lands).
    - {b Log-structured storage} with cleaning bounded by the
      [max_utilization] knob (grow-vs-clean policy, paper Section 7.3),
      and cheap copy-on-write {!snapshot}s, foldable and diffable — the
      substrate for full/incremental backups.

    Concurrency: the chunk store itself is single-threaded; the object
    store serializes access with its state mutex (paper Section 4.2.3).
    Internally it fans the {e pure} halves of its work — sealing a
    commit's writes, unsealing a batched read's misses, verifying Merkle
    labels during recovery — out over a process-wide domain pool,
    {!Config.t.domains} wide. All mutable state (log, map, cache, DRBG)
    stays on the calling domain; store images are byte-identical at every
    width (see DESIGN.md, "Parallelism model"). *)

type t
(** An open chunk store. *)

(** {1 Lifecycle} *)

val create :
  ?config:Config.t ->
  secret:Tdb_platform.Secret_store.t ->
  counter:Tdb_platform.One_way_counter.t ->
  Tdb_platform.Untrusted_store.t ->
  t
(** Create a fresh database, overwriting whatever the store held. *)

exception Recovery_failed of string
(** No valid anchor: the store is empty, wiped, or its anchors destroyed. *)

val open_existing :
  ?config:Config.t ->
  secret:Tdb_platform.Secret_store.t ->
  counter:Tdb_platform.One_way_counter.t ->
  Tdb_platform.Untrusted_store.t ->
  t
(** Open an existing database: verifies the anchor, replays the residual
    log (verifying the commit-chain MAC and every referenced payload),
    discards trailing nondurable commits, and checks the one-way counter.
    @raise Recovery_failed when no valid anchor exists.
    @raise Types.Tamper_detected on MAC/hash/counter violations (including
    replayed images). *)

val close : t -> unit
(** Checkpoint, sync and close the underlying store. *)

(** {1 Chunk operations} (paper Figure 2)

    Writes and deallocations are buffered into the current batch and
    applied atomically by {!commit}. *)

val allocate : t -> Types.chunk_id
(** Returns a previously unallocated chunk id. *)

val write : t -> Types.chunk_id -> string -> unit
(** Buffer a new state for the chunk (any size, including empty).
    @raise Types.Not_allocated if the id was never allocated.
    @raise Types.Chunk_too_large if the state cannot fit in a segment. *)

val read : t -> Types.chunk_id -> string
(** Last written state (buffered batch included), validated against the
    Merkle path and decrypted.
    @raise Types.Not_written if the chunk has no state.
    @raise Types.Tamper_detected if validation fails. *)

val read_many : t -> Types.chunk_id list -> string list
(** Batched {!read}: cache misses are label-verified, decrypted and
    parsed in parallel on the domain pool ({!Config.t.domains} wide).
    Results are in input order; a failure raises the exception {!read}
    would have raised at the lowest failing index. With [domains = 1]
    this is sequential and allocates nothing on the pool. *)

val deallocate : t -> Types.chunk_id -> unit
(** Buffer removal of the chunk and release of its id.
    @raise Types.Not_allocated if the id is not allocated. *)

val restore_chunk : t -> Types.chunk_id -> string -> unit
(** Restore-mode write: claim a {e specific} id and buffer data for it —
    used by the backup store to rebuild a database with its original ids.
    @raise Types.Chunk_too_large under the same bound as {!write}: a
    backup stream is untrusted input and oversized records are rejected
    before they can derail a commit. *)

val commit : ?durable:bool -> t -> unit
(** Apply the buffered batch atomically. [durable] (default [true]) forces
    the log and advances the one-way counter; a nondurable commit is
    guaranteed to be atomic with the next durable barrier. *)

val abort_batch : t -> unit
(** Discard the buffered batch. *)

val durable_barrier : t -> unit
(** A durable commit with an empty batch: forces the log and advances the
    one-way counter, promoting every earlier nondurable commit to durable.
    The group-commit hook — many transactions commit nondurably, then one
    barrier buys durability for all of them with a single sync + counter
    bump.
    @raise Invalid_argument while a batch is buffered. *)

(** {2 Staged barrier}

    {!durable_barrier} split into its three stages so a server can release
    its state lock during the physical wait (the sync and the counter
    bump), letting other sessions land nondurable commits that the {e
    next} barrier will cover. Contract: [begin] and [finish] run under the
    caller's state lock; [sync] may run outside it, but at most one staged
    barrier may be in flight and no other durable commit may run
    concurrently (the group-commit coordinator's single-leader rule). *)

type barrier_token

val barrier_begin : t -> barrier_token
(** Append the empty durable commit record; snapshot reclaimable segments.
    @raise Invalid_argument while a batch is buffered. *)

val barrier_sync : t -> barrier_token -> unit
(** Force the store and advance the one-way counter.
    @raise Types.Tamper_detected on a counter mismatch. *)

val barrier_finish : t -> barrier_token -> unit
(** Reclaim begin-time garbage, account the durable commit, and trigger a
    checkpoint if due. *)

(** {1 Maintenance} *)

val checkpoint : t -> unit
(** Write dirty location-map nodes and re-anchor; bounds recovery to the
    (now empty) residual log. Runs automatically on the residual-bytes /
    commit-count triggers in {!Config.t}. *)

val clean : ?max_segments:int -> t -> unit
(** Explicit idle-time log cleaning (paper: reorganization is deferred to
    idle periods). Checkpoints first so the whole log is eligible. *)

(** {1 Snapshots} (copy-on-write; the substrate for backups) *)

val snapshot : t -> int
(** Checkpoint and pin the current committed state; O(map), no copying. *)

val release_snapshot : t -> int -> unit
val snapshot_seq : t -> int -> int

val snapshot_ids : t -> int list
(** Ids of the currently pinned snapshots, ascending. The shard router
    uses this at open to reconcile snapshots taken in lockstep across
    shards (a crash between per-shard snapshot calls may leave one shard
    with an extra pinned snapshot to release). *)

val next_snapshot_id : t -> int
(** The id the next {!snapshot} will return. *)

val align_snapshot_id : t -> int -> unit
(** Raise the next snapshot id to at least [id] (never lowers it). The
    shard router aligns id generators after reconciling a torn lockstep
    snapshot so subsequent snapshots keep returning equal ids on every
    shard. *)

val fold_snapshot : t -> int -> init:'a -> f:('a -> Types.chunk_id -> string -> 'a) -> 'a
(** Iterate every chunk of a snapshot (validated + decrypted). *)

val diff_snapshots :
  t ->
  old_id:int ->
  new_id:int ->
  changed:(Types.chunk_id -> string -> unit) ->
  removed:(Types.chunk_id -> unit) ->
  unit
(** Stream the difference between two snapshots, pruning identical
    subtrees by Merkle hash — the incremental-backup primitive. *)

(** {1 Introspection} *)

type stats = {
  mutable commits : int;
  mutable durable_commits : int;
  mutable checkpoints : int;
  mutable clean_passes : int;
  mutable segments_cleaned : int;
  mutable chunks_relocated : int;
  mutable bytes_relocated : int;
      (** chunk ciphertext bytes the cleaner recopied — the numerator of
          cleaner write amplification (relative to [bytes_data] committed) *)
  mutable tier_segments : int list;
      (** live-segment count per cleaning tier (gauge, refreshed by
          {!stats}); a singleton list when [Config.tiers = 1] *)
  mutable tampers : int;
  mutable bytes_data : int;  (** chunk-record payload bytes appended *)
  mutable bytes_map : int;  (** map-node payload bytes appended *)
  mutable bytes_commit : int;  (** commit-record payload bytes appended *)
  mutable grow_policy : int;  (** segments added because utilization ≥ max *)
  mutable grow_fallback : int;  (** segments added when nothing was cleanable *)
  mutable grow_backstop : int;  (** segments added by the append backstop *)
  mutable cache_hits : int;  (** verified-chunk cache hits (reads served
                                 without fetch/verify/decrypt) *)
  mutable cache_misses : int;  (** verified-chunk cache misses *)
  mutable cache_evictions : int;  (** LRU evictions under budget pressure *)
  mutable par_batches : int;  (** batches fanned out over the domain pool *)
  mutable par_tasks : int;  (** items executed through the pool *)
  mutable par_wait_ns : int;  (** coordinator time parked waiting on pool
                                  workers (contention signal) *)
  mutable backup_last_id : int;
      (** id of the last backup emitted or applied (0 = none); published
          by {!Tdb_backup.Backup_store} so operators can read the
          backup/replication position off plain store stats *)
  mutable backup_base_snapshot : int;
      (** snapshot id the next incremental backup will diff against; -1
          when there is none (no backups yet, or a replication follower) *)
  mutable backup_chain : string;  (** current backup hash-chain value *)
}

val stats : t -> stats

(** {2 Verified-chunk read cache}

    {!read} consults a budgeted LRU of decrypted, hash-verified payloads
    ({!Chunk_cache}) before paying the full fetch/verify/decrypt path.
    Coherence is by committed version: entries are served only at the
    exact version the location map holds, refreshed write-through at
    commit, dropped on deallocation, and naturally void after recovery
    (the cache is rebuilt empty). Budget comes from
    {!Config.t.chunk_cache_bytes}. *)

val cache_resident : t -> int
(** Entries currently cached. *)

val cache_bytes : t -> int
(** Budget-accounted bytes currently cached. *)

val cache_budget : t -> int

val set_cache_budget : t -> int -> unit
(** Adjust the cache budget at runtime (evicts immediately if over).
    @raise Invalid_argument on a negative budget. *)

val counter_value : t -> int64
(** The database's view of the one-way counter (advanced by durable
    commits and {!durable_barrier}s while security is on). *)

val commit_seq : t -> int
(** Sequence number of the last commit (durable or not); snapshots carry
    the sequence current when they were taken. *)

val live_ids : t -> Types.chunk_id list
(** Chunk ids present in the last committed location map, ascending.
    Pending batch writes are excluded. This is the committed footprint a
    full backup captures, and what a replica ingest reconciles a stale
    follower against. *)

val utilization : t -> float
val live_bytes : t -> int
val capacity : t -> int
val store_size : t -> int
val security_enabled : t -> bool
val config : t -> Config.t

val domains : t -> int
(** Effective seal/unseal pipeline width ({!Config.t.domains} at open). *)
