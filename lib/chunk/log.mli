(** The log: segment allocation, tail appends, usage accounting. The chunk
    store is log-structured (paper Section 3.2.1): the log is the {e only}
    storage; records append at the tail and never update in place. The
    store divides into fixed segments chained by [Next_segment] markers so
    recovery can follow the residual log.

    Segments whose live usage drops to zero become reusable only at
    {e barriers} (durable commit / checkpoint / recovery): before that
    their garbage may still be needed — versions obsoleted by nondurable
    commits must survive until durability (paper Section 3.2.2), and
    records since the last checkpoint form the residual log. Barriers also
    return trailing free segments to the untrusted store (the paper's
    "increase or decrease the space allocated"). *)

open Types

val header_size : int
val magic_byte : char
val marker_size : int

type run = {
  run_off : int;
  mutable run_frags : string list;  (** reversed: newest fragment first *)
  mutable run_len : int;
}
(** A contiguous buffered byte range at the tail, not yet on the store. *)

type t = {
  store : Tdb_platform.Untrusted_store.t;
  cfg : Config.t;
  log_base : int;
  mutable nsegments : int;
  usage : (int, int) Hashtbl.t;
  mutable free : int list;
  mutable nfree : int;  (** [List.length free], maintained *)
  pinned : (int, int) Hashtbl.t;
  residual : (int, unit) Hashtbl.t;
  mutable residual_bytes : int;
  mutable tail_seg : int;
  mutable tail_off : int;
  mutable tail_buf : run list;  (** buffered appends, newest run first *)
  mutable grown : int;
  tier_of : (int, int) Hashtbl.t;  (** seg -> cleaning tier; absent = 0 (hot) *)
  age_of : (int, int) Hashtbl.t;
      (** seg -> allocation-clock stamp when it last became an append
          target; drives the cost-benefit age term *)
  cold_tails : (int, int * int) Hashtbl.t;
      (** tier (>= 1) -> open [(seg, off)] append cursor for demotions;
          in-memory only, reset at recovery *)
  mutable clock : int;  (** segment-allocation clock *)
}

val create : Tdb_platform.Untrusted_store.t -> Config.t -> t

val of_recovery :
  Tdb_platform.Untrusted_store.t -> Config.t -> tail_seg:int -> tail_off:int ->
  usage:(int, int) Hashtbl.t -> t
(** Recovery-mode construction: tail from the anchor; the caller rebuilds
    [usage] by walking the recovered map, then calls {!barrier}. *)

(** {1 Accounting} *)

val segment_size : t -> int
val usage_of : t -> int -> int
val capacity : t -> int
val live_bytes : t -> int
val utilization : t -> float
val free_count : t -> int
val nsegments : t -> int
val tail_pos : t -> int * int
val record_space : int -> int
val residual_bytes : t -> int
val obsolete_bytes : t -> seg:int -> payload_len:int -> unit
val obsolete_entry : t -> entry -> unit

(** {1 Tier accounting (generational cleaning)} *)

val tier_of_seg : t -> int -> int
(** The cleaning tier a segment currently belongs to (0 = hot). *)

val set_tier : t -> int -> int -> unit
(** [set_tier t seg tier] tags a segment's tier (recovery path: restores
    tier tags read from the anchor). Tier [<= 0] clears the tag. *)

val age_of_seg : t -> int -> int
(** Allocation-clock distance since the segment last became an append
    target (0 for the current tail). *)

val tier_threshold : Config.t -> int -> float
(** Per-tier cleaning threshold: tier 0 cleans at any utilization (1.0);
    tier [k > 0] demands utilization at or below
    [max_utilization * (tiers - k) / (2 * tiers)], descending toward the
    coldest tier — settled cold data is only reclaimed once mostly dead.
    With [tiers <= 1] this is just [max_utilization]. *)

val tier_table : t -> (int * int) list
(** [(seg, tier)] for every live or cursor-open segment tagged with a
    nonzero tier, sorted by segment — the anchor's persisted tier table. *)

val tier_segment_counts : t -> tiers:int -> int list
(** Live-segment count per tier, a [tiers]-length list (tiers beyond the
    configured count are clamped into the last bucket). *)

(** {1 Barriers, growth, pinning} *)

val barrier : ?eligible:(int, unit) Hashtbl.t -> t -> unit
(** Recompute the free list and shrink trailing free segments. With
    [eligible], only segments in the set are considered for promotion —
    used by a staged (group-commit) barrier whose commit record was
    appended before other commits ran: segments whose last live bytes
    were obsoleted by those later, not-yet-durable commits must survive
    until the {e next} barrier, or a crash could recover to a state that
    still needs them. *)

val zero_usage_segments : t -> (int, unit) Hashtbl.t
(** Snapshot of segments currently holding no live bytes — the candidate
    set to pass as [eligible] to a later {!barrier}. *)

val end_checkpoint : t -> unit
val grow : t -> segments:int -> unit
val pin : t -> int -> unit
val unpin : t -> int -> unit
val is_pinned : t -> int -> bool

(** {1 Record I/O} *)

exception Need_segment

val append : ?live:bool -> t -> record_kind -> string -> int * int
(** Append at the tail; returns the payload position. The record is only
    {e buffered} (header, payload and chain markers accumulate in the tail
    buffer) and reaches the store at the next {!flush} as one vectored
    write per contiguous run. [live] records are charged to segment usage;
    transient (commit) records are not.
    @raise Need_segment when the free list is empty (caller grows). *)

val append_tier : ?live:bool -> t -> tier:int -> record_kind -> string -> int * int
(** Append into a cold tier's open segment — the generational cleaner's
    demotion path. [tier <= 0] is the ordinary hot-tail {!append}. Cold
    segments fill from offset 0 with no [Next_segment] chaining: cold
    records are covered by the Clean commit records and checkpoint the
    cleaning pass emits at the hot tail, never replayed positionally.
    @raise Need_segment when a fresh cold segment is needed and the free
    list is dry. *)

type flush_token
(** Detached pending tail ranges (see {!flush_prepare}). *)

val flush : t -> unit
(** Write all buffered appends to the store, one {!Tdb_platform.Untrusted_store.writev}
    per contiguous run. Callers must flush before any durability point
    ([sync]); {!barrier} and the record-read paths flush on their own as a
    backstop. *)

val flush_prepare : t -> flush_token
(** Detach the buffered tail into a token, leaving the buffer empty. The
    token only references [t.store] — {!flush_write} on it is safe outside
    the lock protecting [t]'s mutable state, which is how the staged
    group-commit barrier moves commit I/O out of the store mutex. Records
    held by a detached token are unreadable until {!flush_write}; the only
    records a staged barrier detaches are its own commit record and chain
    markers, which nothing reads back before recovery. *)

val flush_write : t -> flush_token -> unit
(** Write a detached token's runs to the store. *)

val read_payload : t -> entry -> string
val parse_record : t -> seg:int -> off:int -> (record_kind * int * string) option
val scan_segment : t -> int -> (record_kind * int * string) list
val scan_chain : t -> seg:int -> off:int -> f:(record_kind -> int * int -> string -> unit) -> unit

val clean_candidates : t -> int list
(** Cleanable segments (never tail / cold cursor / pinned / residual /
    empty). With [Config.tiers <= 1], least-utilized first; with more
    tiers, only the hottest tier with work under its {!tier_threshold} is
    returned, ranked by cost-benefit score — when no tier is gated the
    list is empty and the store grows instead of recopying settled data. *)
