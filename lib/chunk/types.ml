(** Shared types for the chunk store. *)

type chunk_id = int
(** Chunk names handed out by {!Chunk_store.allocate}. Positive integers;
    ids are never recycled by this implementation (the 24-bit-years supply
    of a fanout-64 depth-4 map makes reuse pointless complexity). *)

let pp_chunk_id = Format.pp_print_int

(** Location of a stored record: [off] is the byte offset of the payload
    within the untrusted store, [len] its (possibly encrypted) length,
    [hash] the digest of the payload bytes as stored (the Merkle label),
    [version] the sequence number of the commit that wrote it. *)
type entry = { seg : int; off : int; len : int; hash : string; version : int }

let pp_entry ppf e =
  Format.fprintf ppf "{seg=%d; off=%d; len=%d; ver=%d}" e.seg e.off e.len e.version

let entry_equal a b =
  Int.equal a.seg b.seg && Int.equal a.off b.off && Int.equal a.len b.len
  && Int.equal a.version b.version && String.equal a.hash b.hash

(** Chunk ids [0, reserved_ids) are never handed out by [allocate]; upper
    layers claim them as well-known roots (0: backup-store state, 1:
    object-store catalog; per shard under a {!Shard_store} router — 2:
    cross-shard 2PC decision table, 3: 2PC participant status). *)
let reserved_ids = 8

exception Tamper_detected of string
(** Raised whenever validation fails in a way that cannot be explained by a
    crash: bad Merkle hash, bad MAC, one-way-counter mismatch. *)

exception Not_allocated of chunk_id
exception Not_written of chunk_id
exception Chunk_too_large of { cid : chunk_id; size : int; max : int }

let tamper fmt = Printf.ksprintf (fun s -> raise (Tamper_detected s)) fmt

(** Record types in the log. *)
type record_kind =
  | Data_chunk (* application chunk state *)
  | Map_node (* serialized location-map node *)
  | Commit (* commit record: seals a batch of writes *)
  | Next_segment (* tail moved to another segment *)

let kind_to_byte = function Data_chunk -> 1 | Map_node -> 2 | Commit -> 3 | Next_segment -> 4

let kind_of_byte = function
  | 1 -> Data_chunk
  | 2 -> Map_node
  | 3 -> Commit
  | 4 -> Next_segment
  | n -> invalid_arg (Printf.sprintf "unknown record kind %d" n)

(** Why a commit record was written. *)
type commit_kind =
  | App of { durable : bool } (* application commit *)
  | Clean (* cleaner relocation (never durable by itself) *)
  | Checkpoint (* seals a checkpoint *)
