(** Security context: the keys and algorithms the chunk store uses, or
    no-ops when security is disabled (the paper's plain "TDB" mode).
    Payloads are encrypted (CBC, fresh IV) and labelled by a one-way hash
    of the stored bytes (encrypt-then-hash — the Merkle labels); the
    anchor and commit chain carry HMAC-SHA256 under separate derived keys. *)

type t = {
  enabled : bool;
  cipher : Tdb_crypto.Cbc.cipher option;
  hash : (module Tdb_crypto.Hash.S);
  hash_len : int;
  mac_key : string;
  mac_pre : Tdb_crypto.Hmac.key;  (** [mac_key] with the HMAC key pads
                                      precompressed — the per-commit MAC
                                      fast path *)
  iv_gen : Tdb_crypto.Drbg.t;
}

val create : Config.t -> Tdb_platform.Secret_store.t -> t

val seal : t -> string -> string
(** Encrypt for storage (identity when security is off). Equivalent to
    [seal_iv ~iv:(draw_iv t)]. *)

val draw_iv : t -> string option
(** Draw the IV for one {!seal_iv} — the only effectful step of sealing.
    Coordinator-only: IV draws must happen in deterministic operation
    order. [None] iff security is off. *)

val seal_iv : t -> iv:string option -> string -> string
(** Pure seal under a pre-drawn IV; safe to run on any domain.
    @raise Invalid_argument if the IV's presence contradicts the
    security mode. *)

val unseal : t -> string -> string
(** Pure ({!t} is immutable); safe to run on any domain.
    @raise Types.Tamper_detected on malformed padding. *)

val label : t -> string -> string
(** Digest of stored bytes — the Merkle label ("" when disabled). *)

val check_label : t -> expected:string -> string -> what:string -> unit
(** @raise Types.Tamper_detected on mismatch (no-op when disabled). *)

val mac : t -> string -> string
(** HMAC under the anchor key; degrades to a plain digest when security is
    off (torn-write detection only, no forgery resistance). *)

val mac_len : int
val check_mac : t -> expected:string -> string -> what:string -> bool

val seal_overhead : t -> int -> int
(** Storage overhead (IV + padding) of sealing an n-byte payload. *)
