(** Shard router: compose [N] independent chunk stores — each with its own
    log, location map, anchor, one-way counter, cleaner and group-commit
    barrier — behind the single-store API, with a tamper-evident two-phase
    commit for batches that span shards.

    {1 Why}

    Every commit in a single chunk store serializes through one anchor,
    one counter bump and one log tail. Sharding gives each partition its
    own spine, so single-shard commits — the common case under a
    branch-affine workload — never contend on another shard's tail:
    {!durable_barrier} and the staged barrier touch only the shards that
    actually committed since the last barrier (per-shard barrier counts
    are exported in {!shard_barriers}).

    {1 Chunk-id routing}

    Global chunk ids are striped over shards: reserved ids ([0, 8)) live
    on shard 0, and an allocation on shard [s] with local id [l ≥ 8] is
    published as global id [(l - 8) * n + s + 8]. With [n = 1] the
    encoding is the identity and every operation is a passthrough, so a
    1-shard router is byte-compatible with the unsharded store format.

    Each shard additionally owns two {e local} reserved ids the router
    never exposes: local 2 holds the shard's 2PC decision table (for
    transactions it coordinated) and local 3 its participant status
    (staged prepare + applied high-water marks). Shard 0's decision-table
    record doubles as the router metadata (the shard count), so opening a
    shard file standalone, or at the wrong width, is rejected instead of
    serving partial data.

    {1 Cross-shard commit (2PC, presumed abort)}

    A commit whose batch touches several shards is always made durable and
    runs two-phase commit built {e entirely} out of ordinary chunk
    operations — every record rides a shard's existing commit/barrier
    machinery and inherits its sealing, Merkle labelling, MAC'd anchor and
    one-way counter:

    + {b Prepare} (each participant, ascending): the staged batch is
      rewritten as a redo payload into freshly allocated chunks, and the
      participant's status chunk records [(coordinator, gtid, redo ids)] —
      one durable commit per participant.
    + {b Decision} (the coordinator = lowest participant): the decision
      table gains an entry [(gtid, participants)] MAC'd under the device
      secret and chained to the previous decision — one durable commit.
      This is the commit point.
    + {b Apply} (each participant): replay the redo payload, advance the
      per-coordinator high-water mark, release the staging chunks — one
      durable commit each, idempotent across crashes.
    + {b Cleanup}: the decision entry is dropped (nondurably; recovery
      re-drops it if it resurrects).

    Recovery at {!open_existing} resolves in-doubt transactions: a staged
    prepare whose decision entry exists is rolled forward; one whose
    gtid was never decided is presumed aborted and discarded. The outcome
    is {e provable}, not guessable: a flipped or forged decision entry
    fails its MAC ([Tamper_detected]); a coordinator shard rolled back to
    before a decision is caught both by its own one-way counter and by
    any participant whose high-water mark exceeds the coordinator's
    [next_gtid]; a participant whose durable prepare vanished while the
    decision stands is likewise reported as tampering rather than
    silently resolved to abort. *)

type t

exception Vetoed of int
(** A participant shard refused to prepare (see {!set_prepare_hook}); the
    cross-shard transaction was rolled back on every participant. *)

(** {1 Lifecycle} *)

val create :
  ?config:Config.t ->
  secret:Tdb_platform.Secret_store.t ->
  counters:Tdb_platform.One_way_counter.t array ->
  Tdb_platform.Untrusted_store.t array ->
  t
(** Create a fresh [n]-shard database over [n] untrusted stores and [n]
    one-way counters, where [n = config.shards] must equal both array
    lengths. Each shard receives [chunk_cache_bytes / n] of the cache
    budget so the configured total is preserved. *)

val open_existing :
  ?config:Config.t ->
  secret:Tdb_platform.Secret_store.t ->
  counters:Tdb_platform.One_way_counter.t array ->
  Tdb_platform.Untrusted_store.t array ->
  t
(** Open every shard, check the persisted shard count against the number
    of stores supplied, reconcile snapshots taken in lockstep, and resolve
    in-doubt cross-shard transactions (roll forward decided ones, discard
    undecided prepares, verify decision MACs and high-water marks).
    @raise Chunk_store.Recovery_failed on a shard-count mismatch or an
    unrecoverable shard.
    @raise Types.Tamper_detected on a forged/flipped decision record, a
    rolled-back coordinator, or a vanished prepare. *)

val wrap : Chunk_store.t -> t
(** A 1-shard router over an already-open store: pure passthrough. *)

val close : t -> unit

(** {1 Chunk operations} — same contracts as {!Chunk_store}, with global
    chunk ids. *)

val allocate : ?shard:int -> t -> Types.chunk_id
(** Allocate on [shard] (default: round-robin across shards). *)

val write : t -> Types.chunk_id -> string -> unit
val read : t -> Types.chunk_id -> string
val read_many : t -> Types.chunk_id list -> string list
val deallocate : t -> Types.chunk_id -> unit
val restore_chunk : t -> Types.chunk_id -> string -> unit

val commit : ?durable:bool -> t -> unit
(** Apply the buffered batch atomically. A batch confined to one shard
    commits exactly as an unsharded store would; a batch spanning shards
    runs the cross-shard 2PC above and is {e always durable} (atomicity
    across independently-recovering shards requires durable prepare and
    decision records).
    @raise Vetoed if a prepare hook refused; the batch is rolled back. *)

val abort_batch : t -> unit
val durable_barrier : t -> unit
(** Barrier only the shards that committed since their last durable
    point (all shards when [n = 1], preserving unsharded semantics). *)

(** {2 Staged barrier} — the three-stage split of {!durable_barrier},
    applied per dirty shard (see {!Chunk_store.barrier_begin}). *)

type barrier_token

val barrier_begin : t -> barrier_token
val barrier_sync : t -> barrier_token -> unit
val barrier_finish : t -> barrier_token -> unit

(** {1 Maintenance} *)

val checkpoint : t -> unit
val clean : ?max_segments:int -> t -> unit

(** {1 Snapshots} — taken in lockstep on every shard, so one id names a
    consistent cross-shard cut (callers must quiesce commits first, which
    the object store's state mutex already guarantees). *)

val snapshot : t -> int
val release_snapshot : t -> int -> unit
val snapshot_seq : t -> int -> int
val fold_snapshot : t -> int -> init:'a -> f:('a -> Types.chunk_id -> string -> 'a) -> 'a

val diff_snapshots :
  t ->
  old_id:int ->
  new_id:int ->
  changed:(Types.chunk_id -> string -> unit) ->
  removed:(Types.chunk_id -> unit) ->
  unit

(** {1 Introspection} *)

val stats : t -> Chunk_store.stats
(** Per-shard stats summed into one record ([backup_*] fields are taken
    from shard 0, where the backup store publishes them). The returned
    record is a fresh aggregate — do not mutate it. *)

val shards : t -> int
val shard_store : t -> int -> Chunk_store.t
(** Direct access to one shard (read-only introspection; mutating a shard
    behind the router's back voids the 2PC bookkeeping). *)

val txn_commits : t -> int
(** Router-level commits (a cross-shard 2PC counts once). *)

val cross_commits : t -> int
(** Commits that spanned more than one shard. *)

val shard_barriers : t -> int array
(** Durable barriers each shard has run — the proof that single-shard
    commits on other shards skip it. *)

val shard_counters : t -> int64 array
val shard_seqs : t -> int array
val shard_sizes : t -> int array
val shard_commit_counts : t -> int array

val set_prepare_hook : t -> (int -> bool) option -> unit
(** Test hook: called with each participant shard during 2PC prepare;
    returning [false] makes that shard vote no, aborting the transaction
    on every participant ({!Vetoed}). *)

val counter_value : t -> int64
(** Sum of the shards' one-way counters (the single counter at [n = 1]). *)

val commit_seq : t -> int
(** Sum of the shards' commit sequence numbers. *)

val live_ids : t -> Types.chunk_id list
val utilization : t -> float
val live_bytes : t -> int
val capacity : t -> int
val store_size : t -> int
val security_enabled : t -> bool
val config : t -> Config.t
val domains : t -> int
