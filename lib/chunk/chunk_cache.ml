(** LRU cache of decrypted, hash-verified chunk payloads, below the object
    cache and above the log (see DESIGN.md, "Caching").

    Entries are keyed by chunk id and carry the committed version (the
    commit sequence number baked into the chunk's location-map entry).
    A lookup hits only when the cached version equals the version the
    location map currently holds, so a stale entry can never be served:
    whatever path changed the mapping — write, deallocate, recovery — the
    version comparison rejects the leftover. Cleaning relocates ciphertext
    verbatim (seg/off change, version and hash do not), so cached entries
    survive a [clean_pass] untouched.

    Trust note: the cache stores only plaintext that already passed the
    Merkle-path check, inside the trusted boundary; it never caches
    ciphertext or unvalidated bytes.

    Ownership: the cache is {e single-writer by design} — hit/miss
    counters and the LRU links mutate on every [find], with no internal
    synchronization. All access belongs to the domain that created the
    cache (the chunk store's coordinator, under the object store's state
    mutex); pool workers return payloads and the coordinator inserts
    them. [owner_check] pins that discipline: every mutating entry point
    asserts it runs on the creating domain, so a worker that reaches in
    dies loudly instead of corrupting the links. *)

type entry = {
  cid : int;
  mutable version : int;
  mutable data : string;
  mutable prev : entry option; (* towards MRU *)
  mutable next : entry option; (* towards LRU *)
}

type t = {
  owner : int; (* creating domain; see "Ownership" above *)
  table : (int, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable total_size : int;
  mutable budget : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* Per-entry bookkeeping overhead charged against the budget, so a flood
   of tiny chunks cannot blow past it on header weight alone. *)
let entry_overhead = 64

let entry_size e = String.length e.data + entry_overhead

let owner_check t = assert (Int.equal ((Domain.self () :> int)) t.owner)

let create ~(budget : int) : t =
  {
    owner = (Domain.self () :> int);
    table = Hashtbl.create 256;
    mru = None;
    lru = None;
    total_size = 0;
    budget;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_mru t e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let touch t e =
  unlink t e;
  push_mru t e

let drop t e =
  unlink t e;
  Hashtbl.remove t.table e.cid;
  t.total_size <- t.total_size - entry_size e

let evict_until_within t =
  while t.total_size > t.budget && t.lru <> None do
    (match t.lru with
    | Some e ->
        drop t e;
        t.evictions <- t.evictions + 1
    | None -> ())
  done

let find t (cid : int) ~(version : int) : string option =
  owner_check t;
  match Hashtbl.find_opt t.table cid with
  | Some e when Int.equal e.version version ->
      t.hits <- t.hits + 1;
      touch t e;
      Some e.data
  | Some e ->
      (* stale version: the mapping moved on without us; drop the corpse *)
      t.misses <- t.misses + 1;
      drop t e;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let put t (cid : int) ~(version : int) (data : string) : unit =
  owner_check t;
  if t.budget <= 0 then ()
  else begin
    (match Hashtbl.find_opt t.table cid with
    | Some e ->
        t.total_size <- t.total_size - entry_size e;
        e.version <- version;
        e.data <- data;
        t.total_size <- t.total_size + entry_size e;
        touch t e
    | None ->
        let e = { cid; version; data; prev = None; next = None } in
        Hashtbl.replace t.table cid e;
        push_mru t e;
        t.total_size <- t.total_size + entry_size e);
    evict_until_within t
  end

let remove t (cid : int) : unit =
  owner_check t;
  match Hashtbl.find_opt t.table cid with None -> () | Some e -> drop t e

let clear t : unit =
  owner_check t;
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None;
  t.total_size <- 0

let stats t = (t.hits, t.misses, t.evictions)
let resident t = Hashtbl.length t.table
let total_size t = t.total_size
let budget t = t.budget

let set_budget t b =
  owner_check t;
  t.budget <- b;
  evict_until_within t
