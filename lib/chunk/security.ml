(** Security context: bundles the keys and algorithms the chunk store uses,
    or a no-op version when security is disabled (plain "TDB").

    - every stored payload is encrypted (CBC, fresh IV) with a key derived
      from the platform secret store;
    - payloads are labelled by a one-way hash of the stored bytes
      (encrypt-then-hash), forming the Merkle tree when combined with the
      location map;
    - the anchor and the commit chain are authenticated with HMAC-SHA256
      under separate derived keys. *)

open Tdb_crypto

type t = {
  enabled : bool;
  cipher : Cbc.cipher option;
  hash : (module Hash.S);
  hash_len : int;
  mac_key : string; (* anchor + commit chain MAC *)
  mac_pre : Hmac.key; (* same key, ipad/opad precompressed (hot path) *)
  iv_gen : Drbg.t;
}

let create (config : Config.t) (secret : Tdb_platform.Secret_store.t) : t =
  let module H = (val match config.Config.hash with Config.Sha1 -> (module Sha1 : Hash.S) | Config.Sha256 -> (module Sha256)) in
  let cipher =
    if not config.Config.security then None
    else
      Some
        (match config.Config.cipher with
        | Config.Aes128 ->
            Cbc.make (module Aes) ~secret:(Tdb_platform.Secret_store.derive_len secret "chunk-cipher" Aes.key_size)
        | Config.Triple_aes ->
            Cbc.make
              (module Triple.Aes3)
              ~secret:(Tdb_platform.Secret_store.derive_len secret "chunk-cipher" Triple.Aes3.key_size)
        | Config.Triple_xtea ->
            Cbc.make
              (module Triple.Xtea3)
              ~secret:(Tdb_platform.Secret_store.derive_len secret "chunk-cipher" Triple.Xtea3.key_size))
  in
  let mac_key = Tdb_platform.Secret_store.derive secret "anchor-mac" in
  {
    enabled = config.Config.security;
    cipher;
    hash = (module H);
    hash_len = (if config.Config.security then H.digest_size else 0);
    mac_key;
    mac_pre = Hmac.precompute (module Sha256) ~key:mac_key;
    iv_gen = Drbg.create ~seed:(Tdb_platform.Secret_store.derive secret "iv-seed");
  }

(** Draw the IV for one {!seal_iv}. Advances the DRBG: this is the {e only}
    effectful step of sealing, so the coordinator pre-draws IVs in
    deterministic operation order and hands the pure remainder to pool
    workers. [None] when security is off. *)
let draw_iv (t : t) : string option =
  match t.cipher with None -> None | Some c -> Some (Drbg.generate t.iv_gen (Cbc.block_size c))

(** Pure seal under a pre-drawn IV: no mutable state is touched, so this
    is safe to fan out across domains. [iv] must come from {!draw_iv} on
    the same context (in particular it must be [None] iff security is
    off). *)
let seal_iv (t : t) ~(iv : string option) (plain : string) : string =
  match (t.cipher, iv) with
  | None, None -> plain
  | Some c, Some iv -> Cbc.encrypt c ~iv plain
  | None, Some _ -> invalid_arg "Security.seal_iv: IV with security off"
  | Some _, None -> invalid_arg "Security.seal_iv: missing IV"

(** Encrypt a payload for storage (identity when security is off). *)
let seal (t : t) (plain : string) : string = seal_iv t ~iv:(draw_iv t) plain

(** Decrypt a stored payload.
    @raise Types.Tamper_detected when padding is malformed. *)
let unseal (t : t) (stored : string) : string =
  match t.cipher with
  | None -> stored
  | Some c -> ( try Cbc.decrypt c stored with Cbc.Bad_padding -> Types.tamper "bad padding in stored chunk" )

(** Digest of stored bytes — the Merkle label. Empty when security is off
    (validation is skipped entirely, as in the paper's plain TDB). *)
let label (t : t) (stored : string) : string =
  if not t.enabled then ""
  else
    let module H = (val t.hash) in
    H.digest stored

let check_label (t : t) ~(expected : string) (stored : string) ~(what : string) : unit =
  if t.enabled && not (Ct.equal_string expected (label t stored)) then
    Types.tamper "hash mismatch on %s" what

(** MAC used for the anchor and commit chain. With security off this
    degrades to a plain digest: it still detects *accidental* corruption
    (torn anchor writes) but offers no protection against forgery — exactly
    the paper's TDB-without-security mode. *)
let mac (t : t) (data : string) : string =
  if t.enabled then Hmac.mac t.mac_pre data else Sha256.digest data

let mac_len = Sha256.digest_size

let check_mac (t : t) ~(expected : string) (data : string) ~(what : string) : bool =
  ignore what;
  Ct.equal_string expected (mac t data)

(** Storage overhead of sealing an [n]-byte payload (IV + padding). *)
let seal_overhead (t : t) (n : int) : int =
  match t.cipher with None -> 0 | Some c -> Cbc.block_size c + Cbc.padded_len c n - n
