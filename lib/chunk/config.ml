(** Chunk store configuration.

    TDB is modular (paper Section 2): security can be switched off entirely
    (the paper's "TDB" vs "TDB-S" configurations), the cipher is pluggable,
    and sizes are tunable for the embedding device. *)

type cipher_choice =
  | Aes128 (* one-pass AES *)
  | Triple_aes (* three-pass EDE AES: the 3DES-cost configuration *)
  | Triple_xtea (* three-pass XTEA: small-footprint option, 8-byte blocks like DES *)

type hash_choice = Sha1 | Sha256

type t = {
  security : bool;
      (** When false, chunks are stored in plaintext, no hashing/MACs are
          performed and the one-way counter is never touched — the paper's
          plain "TDB" configuration. *)
  cipher : cipher_choice;
  hash : hash_choice;
  segment_size : int; (** log segment size in bytes *)
  anchor_slot_size : int; (** each of the two anchor slots *)
  initial_segments : int;
  max_utilization : float;
      (** maximal fraction of the store occupied by live chunks; the
          grow-vs-clean decision point (paper Section 7.3, default 0.6) *)
  checkpoint_every : int;
      (** checkpoint the location map after this many commits *)
  checkpoint_residual_bytes : int;
      (** ... or once this many bytes of residual log accumulate, whichever
          comes first: bounds both recovery time and the log space the
          cleaner cannot touch *)
  map_fanout : int;
  map_depth : int; (** map covers [map_fanout ^ map_depth] chunk ids *)
  clean_batch : int; (** max segments reclaimed per cleaning pass *)
  chunk_cache_bytes : int;
      (** budget for the verified-chunk read cache (decrypted plaintext
          held inside the trusted boundary); 0 disables it *)
  domains : int;
      (** width of the seal/unseal pipeline: how many OCaml domains
          (including the caller) may work on one commit's seals or one
          batched read's unseals. 1 = exact sequential behavior, never
          touching the domain pool. Defaults to the available cores
          ([TDB_DOMAINS] overrides; see {!Tdb_parallel.Pool}). Any width
          produces byte-identical store images — parallelism never
          reorders appends or IV draws. *)
  replica_interval_commits : int;
      (** When a server has a backup store attached, auto-emit an
          incremental backup every this many durable commits, feeding the
          replication stream without manual [backup_incremental] calls.
          0 disables auto-emission (the default, so standalone stores and
          benches are unchanged). [TDB_REPLICA_EVERY] overrides. *)
  shards : int;
      (** Number of independent chunk-store shards a {!Shard_store} router
          composes: each shard has its own log, location map, anchor and
          one-way counter, so single-shard commits never contend on
          another shard's tail. 1 = a single spine, byte-compatible with
          the unsharded store format. [TDB_SHARDS] overrides the
          default. *)
  tiers : int;
      (** Number of cleaning generations the log is composed of. Fresh
          commit writes land in tier 0 (hot); chunks that survive a
          cleaning pass are demoted one tier colder, and candidate
          segments are picked per tier by a cost-benefit score instead of
          pure utilization — so under skewed traffic cold data settles
          into rarely-cleaned segments and write amplification stays
          flat. 1 = the classic single-population cleaner, byte-identical
          to the untiered store format. [TDB_TIERS] overrides the
          default. *)
}

let default_tiers () =
  match Sys.getenv_opt "TDB_TIERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= 8 -> n
      | _ -> invalid_arg "TDB_TIERS must be an integer in [1, 8]" )
  | None -> 1

let default_shards () =
  match Sys.getenv_opt "TDB_SHARDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= 64 -> n
      | _ -> invalid_arg "TDB_SHARDS must be an integer in [1, 64]" )
  | None -> 1

let default_replica_interval () =
  match Sys.getenv_opt "TDB_REPLICA_EVERY" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> invalid_arg "TDB_REPLICA_EVERY must be an integer >= 0" )
  | None -> 0

let default =
  {
    security = true;
    cipher = Triple_aes;
    hash = Sha1;
    segment_size = 64 * 1024;
    anchor_slot_size = 8 * 1024;
    initial_segments = 8;
    max_utilization = 0.6;
    checkpoint_every = 4096;
    checkpoint_residual_bytes = 768 * 1024;
    map_fanout = 64;
    map_depth = 4;
    clean_batch = 8;
    chunk_cache_bytes = 1024 * 1024;
    domains = Tdb_parallel.Pool.default_domains ();
    replica_interval_commits = default_replica_interval ();
    shards = default_shards ();
    tiers = default_tiers ();
  }

(** Largest chunk payload storable with this configuration (one record must
    fit within a segment, leaving room for headers and the next-segment
    marker). *)
let max_chunk_size (c : t) = c.segment_size - 64

let validate (c : t) =
  if c.segment_size < 1024 then invalid_arg "Config: segment_size too small";
  if c.initial_segments < 4 then invalid_arg "Config: need at least 4 segments";
  if not (c.max_utilization > 0.05 && c.max_utilization < 0.98) then
    invalid_arg "Config: max_utilization out of (0.05, 0.98)";
  if c.map_fanout < 2 || c.map_depth < 2 then invalid_arg "Config: map too small";
  if c.checkpoint_every < 1 then invalid_arg "Config: checkpoint_every < 1";
  if c.checkpoint_residual_bytes < 4 * c.segment_size then
    invalid_arg "Config: checkpoint_residual_bytes must cover a few segments";
  if c.chunk_cache_bytes < 0 then invalid_arg "Config: chunk_cache_bytes negative";
  if c.domains < 1 || c.domains > 128 then invalid_arg "Config: domains out of [1, 128]";
  if c.replica_interval_commits < 0 then invalid_arg "Config: replica_interval_commits negative";
  if c.shards < 1 || c.shards > 64 then invalid_arg "Config: shards out of [1, 64]";
  if c.tiers < 1 || c.tiers > 8 then invalid_arg "Config: tiers out of [1, 8]"
