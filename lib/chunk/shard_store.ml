(** Shard router over [N] independent chunk stores, with a tamper-evident
    cross-shard two-phase commit. See the interface for the protocol and
    the trust argument; everything here is built out of ordinary chunk
    operations, so each shard's existing sealing, Merkle labelling,
    anchor MAC and one-way counter protect the 2PC records too. *)

open Types
module P = Tdb_pickle.Pickle

(* Per-shard local reserved ids the router owns (Types.reserved_ids
   documents the full reserved range). *)
let dtab_cid = 2 (* decision table: transactions this shard coordinated *)
let ptab_cid = 3 (* participant status: staged prepare + high-water marks *)

type op = Rwrite of string | Rdealloc

(* A decision-table entry: transaction [gtid] (coordinator-local,
   monotone) over [parts], MAC'd under the device secret and chained to
   the previous decision via [prev]. *)
type dentry = { e_gtid : int; e_parts : int list; e_prev : string; e_mac : string }

type dtab = {
  mutable d_chain : string; (* MAC of the most recently appended entry *)
  mutable d_next : int; (* next gtid this coordinator will assign *)
  mutable d_entries : dentry list; (* in-flight/uncleaned decisions, ascending *)
}

type ptab = {
  mutable p_staged : (int * int * int list) option; (* coord, gtid, redo piece cids *)
  p_hw : (int, int) Hashtbl.t; (* coordinator shard -> highest gtid applied *)
}

type t = {
  n : int;
  cfg : Config.t; (* the caller's config (undivided cache budget) *)
  shards : Chunk_store.t array;
  sec : Security.t option; (* decision-entry MAC context; None at n = 1 *)
  mirror : (chunk_id, op) Hashtbl.t array; (* per-shard copy of the open batch (n > 1) *)
  dirty : bool array; (* shard has nondurable commits since its last durable point *)
  dtabs : dtab array;
  ptabs : ptab array;
  barriers : int array; (* durable barriers run, per shard *)
  mutable rr : int; (* round-robin cursor for unpinned allocations *)
  mutable txn_commits : int; (* router-level commits (a 2PC counts once) *)
  mutable cross_commits : int; (* commits spanning > 1 shard *)
  mutable hook : (int -> bool) option; (* prepare veto hook (tests) *)
}

exception Vetoed of int

(* ------------------------------------------------------------------ *)
(* Global chunk-id routing                                             *)
(* ------------------------------------------------------------------ *)

let shard_of t g = if Int.equal t.n 1 || g < reserved_ids then 0 else (g - reserved_ids) mod t.n
let local_of t g = if Int.equal t.n 1 || g < reserved_ids then g else ((g - reserved_ids) / t.n) + reserved_ids

let global_of t s l =
  if Int.equal t.n 1 then l
  else if l < reserved_ids then l (* only reachable for shard 0 *)
  else ((l - reserved_ids) * t.n) + s + reserved_ids

(* ------------------------------------------------------------------ *)
(* Persistent 2PC record encodings                                     *)
(* ------------------------------------------------------------------ *)

let encode_dtab ~n (dt : dtab) : string =
  let w = P.writer () in
  P.byte w 1;
  P.uint w n;
  P.string w dt.d_chain;
  P.uint w dt.d_next;
  P.list w
    (fun w e ->
      P.uint w e.e_gtid;
      P.list w P.uint e.e_parts;
      P.string w e.e_prev;
      P.string w e.e_mac)
    dt.d_entries;
  P.contents w

let decode_dtab (s : string) : int * dtab =
  let r = P.reader s in
  (match P.read_byte r with 1 -> () | v -> tamper "decision table version %d" v);
  let n = P.read_uint r in
  let chain = P.read_string r in
  let next = P.read_uint r in
  let entries =
    P.read_list r (fun r ->
        let g = P.read_uint r in
        let parts = P.read_list r P.read_uint in
        let prev = P.read_string r in
        let mac = P.read_string r in
        { e_gtid = g; e_parts = parts; e_prev = prev; e_mac = mac })
  in
  P.expect_end r;
  (n, { d_chain = chain; d_next = next; d_entries = entries })

let encode_ptab (pt : ptab) : string =
  let w = P.writer () in
  P.byte w 1;
  P.option w
    (fun w (c, g, cids) ->
      P.uint w c;
      P.uint w g;
      P.list w P.uint cids)
    pt.p_staged;
  let hw = Hashtbl.fold (fun c g acc -> (c, g) :: acc) pt.p_hw [] in
  let hw = List.sort (fun (a, _) (b, _) -> Int.compare a b) hw in
  P.list w
    (fun w (c, g) ->
      P.uint w c;
      P.uint w g)
    hw;
  P.contents w

let decode_ptab (s : string) : ptab =
  let r = P.reader s in
  (match P.read_byte r with 1 -> () | v -> tamper "participant status version %d" v);
  let staged =
    P.read_option r (fun r ->
        let c = P.read_uint r in
        let g = P.read_uint r in
        let cids = P.read_list r P.read_uint in
        (c, g, cids))
  in
  let hw = Hashtbl.create 4 in
  List.iter (fun (c, g) -> Hashtbl.replace hw c g)
    (P.read_list r (fun r ->
         let c = P.read_uint r in
         let g = P.read_uint r in
         (c, g)));
  P.expect_end r;
  { p_staged = staged; p_hw = hw }

(* Redo payload: the batch's net per-chunk operations, sorted by local id
   for a deterministic image. *)
let encode_redo (ops : (chunk_id, op) Hashtbl.t) : string =
  let w = P.writer () in
  P.byte w 1;
  let l = Hashtbl.fold (fun cid op acc -> (cid, op) :: acc) ops [] in
  let l = List.sort (fun (a, _) (b, _) -> Int.compare a b) l in
  P.list w
    (fun w (cid, op) ->
      P.uint w cid;
      match op with
      | Rwrite d ->
          P.byte w 0;
          P.string w d
      | Rdealloc -> P.byte w 1)
    l;
  P.contents w

let decode_redo (s : string) : (chunk_id * op) list =
  let r = P.reader s in
  (match P.read_byte r with 1 -> () | v -> tamper "redo payload version %d" v);
  let l =
    P.read_list r (fun r ->
        let cid = P.read_uint r in
        match P.read_byte r with
        | 0 -> (cid, Rwrite (P.read_string r))
        | 1 -> (cid, Rdealloc)
        | b -> tamper "redo op tag %d" b)
  in
  P.expect_end r;
  l

let entry_mac t ~coord ~gtid ~parts ~prev : string =
  match t.sec with
  | None -> ""
  | Some sec ->
      let w = P.writer () in
      P.string w "tdb-2pc";
      P.uint w coord;
      P.uint w gtid;
      P.list w P.uint parts;
      P.string w prev;
      Security.mac sec (P.contents w)

let check_entry_mac t ~coord (e : dentry) : unit =
  match t.sec with
  | None -> ()
  | Some sec ->
      let w = P.writer () in
      P.string w "tdb-2pc";
      P.uint w coord;
      P.uint w e.e_gtid;
      P.list w P.uint e.e_parts;
      P.string w e.e_prev;
      if not (Security.check_mac sec ~expected:e.e_mac (P.contents w) ~what:"2pc decision entry") then
        tamper "cross-shard decision entry failed its MAC (coordinator %d, gtid %d)" coord e.e_gtid

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let shard_config (cfg : Config.t) n =
  if Int.equal n 1 then cfg else { cfg with Config.chunk_cache_bytes = cfg.Config.chunk_cache_bytes / n }

let make ~cfg ~sec shards =
  let n = Array.length shards in
  {
    n;
    cfg;
    shards;
    sec;
    mirror = Array.init n (fun _ -> Hashtbl.create 16);
    dirty = Array.make n false;
    dtabs = Array.init n (fun _ -> { d_chain = ""; d_next = 1; d_entries = [] });
    ptabs = Array.init n (fun _ -> { p_staged = None; p_hw = Hashtbl.create 4 });
    barriers = Array.make n 0;
    rr = 0;
    txn_commits = 0;
    cross_commits = 0;
    hook = None;
  }

let read_reserved sh cid =
  match Chunk_store.read sh cid with
  | s -> Some s
  | exception Not_written _ -> None

let persist_dtab t s ~durable =
  Chunk_store.write t.shards.(s) dtab_cid (encode_dtab ~n:t.n t.dtabs.(s));
  Chunk_store.commit ~durable t.shards.(s);
  if not durable then t.dirty.(s) <- true

let wrap (cs : Chunk_store.t) : t = make ~cfg:(Chunk_store.config cs) ~sec:None [| cs |]

let create ?(config = Config.default) ~secret ~counters stores : t =
  let n = config.Config.shards in
  if not (Int.equal (Array.length stores) n && Int.equal (Array.length counters) n) then
    invalid_arg "Shard_store.create: config.shards disagrees with the stores/counters supplied";
  let scfg = shard_config config n in
  let shards = Array.init n (fun i -> Chunk_store.create ~config:scfg ~secret ~counter:counters.(i) stores.(i)) in
  let sec = if n > 1 then Some (Security.create config secret) else None in
  let t = make ~cfg:config ~sec shards in
  if n > 1 then
    (* every shard self-identifies its width, so opening a shard file
       standalone (or at the wrong width) is rejected up front *)
    Array.iteri (fun s _ -> persist_dtab t s ~durable:true) t.shards;
  t

(* --- recovery-time resolution of in-doubt cross-shard transactions --- *)

let replay_redo sh (ops : (chunk_id * op) list) : unit =
  List.iter
    (fun (cid, op) ->
      match op with
      | Rwrite d -> Chunk_store.restore_chunk sh cid d
      | Rdealloc -> (
          (* replay is idempotent: a dealloc target may already be gone *)
          match Chunk_store.deallocate sh cid with
          | () -> ()
          | exception Not_allocated _ -> ()))
    ops

let persist_ptab_shard t p ~also_dealloc =
  let sh = t.shards.(p) in
  List.iter (fun cid -> Chunk_store.deallocate sh cid) also_dealloc;
  Chunk_store.write sh ptab_cid (encode_ptab t.ptabs.(p));
  Chunk_store.commit ~durable:true sh;
  t.dirty.(p) <- false

(* Roll a decided transaction forward on participant [p] from its durable
   staging (recovery path: the in-memory mirror is gone). *)
let roll_forward t ~coord ~(e : dentry) p =
  let pt = t.ptabs.(p) in
  match pt.p_staged with
  | Some (c, g, cids) when Int.equal c coord && Int.equal g e.e_gtid ->
      let sh = t.shards.(p) in
      let payload = String.concat "" (List.map (fun cid -> Chunk_store.read sh cid) cids) in
      replay_redo sh (decode_redo payload);
      pt.p_staged <- None;
      Hashtbl.replace pt.p_hw coord e.e_gtid;
      persist_ptab_shard t p ~also_dealloc:cids
  | _ ->
      let hw = Option.value ~default:0 (Hashtbl.find_opt pt.p_hw coord) in
      if hw < e.e_gtid then
        tamper
          "participant shard %d lost its durable prepare for decided transaction %d/%d (applied high-water %d)"
          p coord e.e_gtid hw

let resolve_in_doubt t =
  (* 1. verify every surviving decision entry's MAC, and catch a
     coordinator rolled back below a participant's high-water mark *)
  Array.iteri
    (fun c dt -> List.iter (fun e -> check_entry_mac t ~coord:c e) dt.d_entries)
    t.dtabs;
  Array.iteri
    (fun p pt ->
      Hashtbl.iter
        (fun c g ->
          if g >= t.dtabs.(c).d_next then
            tamper "coordinator shard %d rolled back: participant %d already applied its gtid %d" c p g)
        pt.p_hw)
    t.ptabs;
  (* 2. roll decided transactions forward *)
  Array.iteri
    (fun c dt ->
      List.iter (fun e -> List.iter (roll_forward t ~coord:c ~e) e.e_parts) dt.d_entries;
      if dt.d_entries <> [] then begin
        dt.d_entries <- [];
        persist_dtab t c ~durable:true
      end)
    t.dtabs;
  (* 3. presumed abort: discard prepares whose gtid was never decided *)
  Array.iteri
    (fun p pt ->
      match pt.p_staged with
      | None -> ()
      | Some (c, g, cids) ->
          if g < t.dtabs.(c).d_next then
            tamper "stale prepare on shard %d: transaction %d/%d was decided and cleaned without it" p c g;
          pt.p_staged <- None;
          persist_ptab_shard t p ~also_dealloc:cids)
    t.ptabs

(* Snapshots are taken in lockstep, so after a crash between per-shard
   snapshot calls some shards may hold an extra pinned id: release
   anything not pinned everywhere, then align the id generators. *)
let reconcile_snapshots t =
  let ids = Array.map Chunk_store.snapshot_ids t.shards in
  let common = Array.fold_left (fun acc l -> List.filter (fun id -> List.mem id l) acc) ids.(0) ids in
  Array.iteri
    (fun s l -> List.iter (fun id -> if not (List.mem id common) then Chunk_store.release_snapshot t.shards.(s) id) l)
    ids;
  let m = Array.fold_left (fun acc sh -> max acc (Chunk_store.next_snapshot_id sh)) 1 t.shards in
  Array.iter (fun sh -> Chunk_store.align_snapshot_id sh m) t.shards

let open_existing ?(config = Config.default) ~secret ~counters stores : t =
  let n = Array.length stores in
  if not (Int.equal (Array.length counters) n) then
    invalid_arg "Shard_store.open_existing: counters/stores length mismatch";
  if not (Int.equal config.Config.shards n) then
    raise
      (Chunk_store.Recovery_failed
         (Printf.sprintf "configured for %d shards but %d shard stores supplied" config.Config.shards n));
  let scfg = shard_config config n in
  let shards =
    Array.init n (fun i -> Chunk_store.open_existing ~config:scfg ~secret ~counter:counters.(i) stores.(i))
  in
  let sec = if n > 1 then Some (Security.create config secret) else None in
  let t = make ~cfg:config ~sec shards in
  (* width check: shard 0's decision-table record carries the shard count;
     a legacy (unsharded) store has none and opens only at n = 1 *)
  (match read_reserved shards.(0) dtab_cid with
  | None ->
      if n > 1 then
        raise (Chunk_store.Recovery_failed "store is unsharded (or shard 0 of a different layout); open it with shards = 1")
  | Some s ->
      let stored_n, _ = decode_dtab s in
      if not (Int.equal stored_n n) then
        raise
          (Chunk_store.Recovery_failed
             (Printf.sprintf "store was created with %d shards but %d were supplied" stored_n n)));
  if n > 1 then begin
    Array.iteri
      (fun i sh ->
        (match read_reserved sh dtab_cid with
        | None -> ()
        | Some s ->
            let stored_n, dt = decode_dtab s in
            if not (Int.equal stored_n n) then
              raise (Chunk_store.Recovery_failed (Printf.sprintf "shard %d was created at width %d, not %d" i stored_n n));
            t.dtabs.(i) <- dt);
        match read_reserved sh ptab_cid with
        | None -> ()
        | Some s -> t.ptabs.(i) <- decode_ptab s)
      shards;
    reconcile_snapshots t;
    resolve_in_doubt t
  end;
  t

let close t = Array.iter Chunk_store.close t.shards

(* ------------------------------------------------------------------ *)
(* Chunk operations                                                    *)
(* ------------------------------------------------------------------ *)

let allocate ?shard t : chunk_id =
  if Int.equal t.n 1 then Chunk_store.allocate t.shards.(0)
  else begin
    let s =
      match shard with
      | Some s ->
          if s < 0 || s >= t.n then invalid_arg "Shard_store.allocate: shard out of range";
          s
      | None ->
          let s = t.rr in
          t.rr <- (t.rr + 1) mod t.n;
          s
    in
    global_of t s (Chunk_store.allocate t.shards.(s))
  end

(* Re-raise per-chunk errors with the global id the caller used. *)
let reglobal t g (f : unit -> 'a) : 'a =
  if Int.equal t.n 1 then f ()
  else
    match f () with
    | v -> v
    | exception Not_allocated _ -> raise (Not_allocated g)
    | exception Not_written _ -> raise (Not_written g)
    | exception Chunk_too_large c -> raise (Chunk_too_large { c with cid = g })

let write t g data : unit =
  let s = shard_of t g and l = local_of t g in
  reglobal t g (fun () -> Chunk_store.write t.shards.(s) l data);
  if t.n > 1 then Hashtbl.replace t.mirror.(s) l (Rwrite data)

let read t g : string =
  let s = shard_of t g and l = local_of t g in
  reglobal t g (fun () -> Chunk_store.read t.shards.(s) l)

let read_many t (gids : chunk_id list) : string list =
  if Int.equal t.n 1 then Chunk_store.read_many t.shards.(0) gids
  else begin
    (* group by shard preserving order, batch per shard, then stitch *)
    let per = Array.make t.n [] in
    List.iter (fun g -> per.(shard_of t g) <- local_of t g :: per.(shard_of t g)) gids;
    let res = Array.map (fun _ -> ref []) t.shards in
    Array.iteri (fun s l -> res.(s) := Chunk_store.read_many t.shards.(s) (List.rev l)) per;
    List.map
      (fun g ->
        let s = shard_of t g in
        match !(res.(s)) with
        | d :: rest ->
            res.(s) := rest;
            d
        | [] -> tamper "read_many stitch underflow")
      gids
  end

let deallocate t g : unit =
  let s = shard_of t g and l = local_of t g in
  reglobal t g (fun () -> Chunk_store.deallocate t.shards.(s) l);
  if t.n > 1 then Hashtbl.replace t.mirror.(s) l Rdealloc

let restore_chunk t g data : unit =
  let s = shard_of t g and l = local_of t g in
  reglobal t g (fun () -> Chunk_store.restore_chunk t.shards.(s) l data);
  if t.n > 1 then Hashtbl.replace t.mirror.(s) l (Rwrite data)

let abort_batch t : unit =
  Array.iter Chunk_store.abort_batch t.shards;
  Array.iter Hashtbl.reset t.mirror

(* ------------------------------------------------------------------ *)
(* Commit: single-shard passthrough, or cross-shard 2PC                *)
(* ------------------------------------------------------------------ *)

(* Redo payloads are split into chunk-sized pieces; leave headroom for
   the record framing the store adds. *)
let split_pieces t (payload : string) : string list =
  let max_piece = Config.max_chunk_size (shard_config t.cfg t.n) - 64 in
  let len = String.length payload in
  if Int.equal len 0 then [ "" ]
  else begin
    let rec go off acc =
      if off >= len then List.rev acc
      else
        let l = min max_piece (len - off) in
        go (off + l) (String.sub payload off l :: acc)
    in
    go 0 []
  end

(* Roll back a partially-prepared transaction: discard every already
   durable prepare, abort every still-buffered batch, clear mirrors. *)
let abort_prepared t ~prepared ~parts =
  List.iter
    (fun (p, cids) ->
      t.ptabs.(p).p_staged <- None;
      persist_ptab_shard t p ~also_dealloc:cids)
    prepared;
  List.iter
    (fun p ->
      Chunk_store.abort_batch t.shards.(p);
      Hashtbl.reset t.mirror.(p))
    parts

let two_phase t ~coord:c (parts : int list) : unit =
  let gtid = t.dtabs.(c).d_next in
  (* phase 1: prepare each participant — one durable commit apiece *)
  let prepared = ref [] in
  List.iter
    (fun p ->
      let sh = t.shards.(p) in
      (match t.hook with
      | Some f when not (f p) ->
          Chunk_store.abort_batch sh;
          abort_prepared t ~prepared:(List.rev !prepared) ~parts;
          raise (Vetoed p)
      | _ -> ());
      Chunk_store.abort_batch sh;
      let pieces = split_pieces t (encode_redo t.mirror.(p)) in
      let cids = List.map (fun _ -> Chunk_store.allocate sh) pieces in
      List.iter2 (fun cid piece -> Chunk_store.write sh cid piece) cids pieces;
      t.ptabs.(p).p_staged <- Some (c, gtid, cids);
      Chunk_store.write sh ptab_cid (encode_ptab t.ptabs.(p));
      Chunk_store.commit ~durable:true sh;
      t.dirty.(p) <- false;
      prepared := (p, cids) :: !prepared)
    parts;
  let prepared = List.rev !prepared in
  (* commit point: the coordinator's MAC'd, chained decision record *)
  let dt = t.dtabs.(c) in
  let prev = dt.d_chain in
  let mac = entry_mac t ~coord:c ~gtid ~parts ~prev in
  dt.d_entries <- dt.d_entries @ [ { e_gtid = gtid; e_parts = parts; e_prev = prev; e_mac = mac } ];
  dt.d_chain <- mac;
  dt.d_next <- gtid + 1;
  persist_dtab t c ~durable:true;
  t.dirty.(c) <- false;
  (* phase 2: apply each participant from its (mirrored) batch *)
  List.iter
    (fun (p, cids) ->
      let sh = t.shards.(p) in
      let ops = Hashtbl.fold (fun cid op acc -> (cid, op) :: acc) t.mirror.(p) [] in
      replay_redo sh (List.sort (fun (a, _) (b, _) -> Int.compare a b) ops);
      t.ptabs.(p).p_staged <- None;
      Hashtbl.replace t.ptabs.(p).p_hw c gtid;
      persist_ptab_shard t p ~also_dealloc:cids;
      Hashtbl.reset t.mirror.(p))
    prepared;
  (* cleanup: drop the decision entry; nondurable is fine — recovery
     re-drops a resurrected entry once every high-water mark covers it *)
  dt.d_entries <- List.filter (fun e -> not (Int.equal e.e_gtid gtid)) dt.d_entries;
  persist_dtab t c ~durable:false

let commit ?(durable = true) t : unit =
  if Int.equal t.n 1 then begin
    Chunk_store.commit ~durable t.shards.(0);
    t.txn_commits <- t.txn_commits + 1
  end
  else begin
    let parts = ref [] in
    for s = t.n - 1 downto 0 do
      if Hashtbl.length t.mirror.(s) > 0 then parts := s :: !parts
    done;
    match !parts with
    | [] -> ()
    | [ s ] ->
        Chunk_store.commit ~durable t.shards.(s);
        Hashtbl.reset t.mirror.(s);
        t.dirty.(s) <- not durable;
        t.txn_commits <- t.txn_commits + 1
    | c :: _ :: _ as parts ->
        (* spanning shards: always durable — atomicity across
           independently-recovering shards needs durable prepare/decision *)
        two_phase t ~coord:c parts;
        t.txn_commits <- t.txn_commits + 1;
        t.cross_commits <- t.cross_commits + 1
  end

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)
(* ------------------------------------------------------------------ *)

type barrier_token = (int * Chunk_store.barrier_token) list

let barrier_shards t : int list =
  if Int.equal t.n 1 then [ 0 ]
  else begin
    let l = ref [] in
    for s = t.n - 1 downto 0 do
      if t.dirty.(s) then l := s :: !l
    done;
    !l
  end

let barrier_begin t : barrier_token =
  List.map
    (fun s ->
      let tok = Chunk_store.barrier_begin t.shards.(s) in
      t.dirty.(s) <- false;
      t.barriers.(s) <- t.barriers.(s) + 1;
      (s, tok))
    (barrier_shards t)

let barrier_sync t (toks : barrier_token) : unit =
  List.iter (fun (s, tok) -> Chunk_store.barrier_sync t.shards.(s) tok) toks

let barrier_finish t (toks : barrier_token) : unit =
  List.iter (fun (s, tok) -> Chunk_store.barrier_finish t.shards.(s) tok) toks

let durable_barrier t : unit =
  List.iter
    (fun s ->
      Chunk_store.durable_barrier t.shards.(s);
      t.dirty.(s) <- false;
      t.barriers.(s) <- t.barriers.(s) + 1)
    (barrier_shards t)

(* ------------------------------------------------------------------ *)
(* Maintenance, snapshots                                              *)
(* ------------------------------------------------------------------ *)

let checkpoint t = Array.iter Chunk_store.checkpoint t.shards
let clean ?max_segments t = Array.iter (fun sh -> Chunk_store.clean ?max_segments sh) t.shards

let snapshot t : int =
  let ids = Array.map Chunk_store.snapshot t.shards in
  Array.iter
    (fun id -> if not (Int.equal id ids.(0)) then invalid_arg "Shard_store.snapshot: shards out of lockstep")
    ids;
  ids.(0)

let release_snapshot t id = Array.iter (fun sh -> Chunk_store.release_snapshot sh id) t.shards
let snapshot_seq t id = Array.fold_left (fun acc sh -> acc + Chunk_store.snapshot_seq sh id) 0 t.shards

(* The router's own records (decision table, participant status) are
   infrastructure, not data: backups and replication must not carry them
   (a follower has its own), so folds/diffs/live-id sets skip them. *)
let router_local t l = t.n > 1 && (Int.equal l dtab_cid || Int.equal l ptab_cid)

let fold_snapshot t id ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun s sh ->
      acc :=
        Chunk_store.fold_snapshot sh id ~init:!acc ~f:(fun acc l data ->
            if router_local t l then acc else f acc (global_of t s l) data))
    t.shards;
  !acc

let diff_snapshots t ~old_id ~new_id ~changed ~removed =
  Array.iteri
    (fun s sh ->
      Chunk_store.diff_snapshots sh ~old_id ~new_id
        ~changed:(fun l data -> if not (router_local t l) then changed (global_of t s l) data)
        ~removed:(fun l -> if not (router_local t l) then removed (global_of t s l)))
    t.shards

let live_ids t : chunk_id list =
  if Int.equal t.n 1 then Chunk_store.live_ids t.shards.(0)
  else begin
    let all = ref [] in
    Array.iteri
      (fun s sh ->
        List.iter (fun l -> if not (router_local t l) then all := global_of t s l :: !all) (Chunk_store.live_ids sh))
      t.shards;
    List.sort Int.compare !all
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let shards t = t.n
let shard_store t s = t.shards.(s)
let txn_commits t = if Int.equal t.n 1 then (Chunk_store.stats t.shards.(0)).Chunk_store.commits else t.txn_commits
let cross_commits t = t.cross_commits
let shard_barriers t = Array.copy t.barriers
let shard_counters t = Array.map Chunk_store.counter_value t.shards
let shard_seqs t = Array.map Chunk_store.commit_seq t.shards
let shard_sizes t = Array.map Chunk_store.store_size t.shards
let shard_commit_counts t = Array.map (fun sh -> (Chunk_store.stats sh).Chunk_store.commits) t.shards
let set_prepare_hook t h = t.hook <- h

let stats t : Chunk_store.stats =
  let open Chunk_store in
  let agg =
    {
      commits = 0; durable_commits = 0; checkpoints = 0; clean_passes = 0; segments_cleaned = 0;
      chunks_relocated = 0; bytes_relocated = 0; tier_segments = [];
      tampers = 0; bytes_data = 0; bytes_map = 0; bytes_commit = 0;
      grow_policy = 0; grow_fallback = 0; grow_backstop = 0; cache_hits = 0; cache_misses = 0;
      cache_evictions = 0; par_batches = 0; par_tasks = 0; par_wait_ns = 0;
      backup_last_id = (Chunk_store.stats t.shards.(0)).backup_last_id;
      backup_base_snapshot = (Chunk_store.stats t.shards.(0)).backup_base_snapshot;
      backup_chain = (Chunk_store.stats t.shards.(0)).backup_chain;
    }
  in
  Array.iter
    (fun sh ->
      let s = Chunk_store.stats sh in
      agg.commits <- agg.commits + s.commits;
      agg.durable_commits <- agg.durable_commits + s.durable_commits;
      agg.checkpoints <- agg.checkpoints + s.checkpoints;
      agg.clean_passes <- agg.clean_passes + s.clean_passes;
      agg.segments_cleaned <- agg.segments_cleaned + s.segments_cleaned;
      agg.chunks_relocated <- agg.chunks_relocated + s.chunks_relocated;
      agg.bytes_relocated <- agg.bytes_relocated + s.bytes_relocated;
      (agg.tier_segments <-
        (* element-wise sum; every shard shares [t.cfg.tiers], so the lists
           line up (pad defensively if one differs) *)
        (let a = agg.tier_segments and b = s.tier_segments in
         let n = max (List.length a) (List.length b) in
         List.init n (fun i ->
             (match List.nth_opt a i with Some v -> v | None -> 0)
             + match List.nth_opt b i with Some v -> v | None -> 0)));
      agg.tampers <- agg.tampers + s.tampers;
      agg.bytes_data <- agg.bytes_data + s.bytes_data;
      agg.bytes_map <- agg.bytes_map + s.bytes_map;
      agg.bytes_commit <- agg.bytes_commit + s.bytes_commit;
      agg.grow_policy <- agg.grow_policy + s.grow_policy;
      agg.grow_fallback <- agg.grow_fallback + s.grow_fallback;
      agg.grow_backstop <- agg.grow_backstop + s.grow_backstop;
      agg.cache_hits <- agg.cache_hits + s.cache_hits;
      agg.cache_misses <- agg.cache_misses + s.cache_misses;
      agg.cache_evictions <- agg.cache_evictions + s.cache_evictions;
      agg.par_batches <- agg.par_batches + s.par_batches;
      agg.par_tasks <- agg.par_tasks + s.par_tasks;
      agg.par_wait_ns <- agg.par_wait_ns + s.par_wait_ns)
    t.shards;
  agg

let counter_value t = Array.fold_left (fun acc sh -> Int64.add acc (Chunk_store.counter_value sh)) 0L t.shards
let commit_seq t = Array.fold_left (fun acc sh -> acc + Chunk_store.commit_seq sh) 0 t.shards
let live_bytes t = Array.fold_left (fun acc sh -> acc + Chunk_store.live_bytes sh) 0 t.shards
let capacity t = Array.fold_left (fun acc sh -> acc + Chunk_store.capacity sh) 0 t.shards
let store_size t = Array.fold_left (fun acc sh -> acc + Chunk_store.store_size sh) 0 t.shards
let utilization t = float_of_int (live_bytes t) /. float_of_int (max 1 (capacity t))
let security_enabled t = Chunk_store.security_enabled t.shards.(0)
let config t = t.cfg
let domains t = Chunk_store.domains t.shards.(0)
