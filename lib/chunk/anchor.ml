(** The anchor: the known location in the untrusted store where TDB keeps
    "the resulting hash value along with the current value of the one-way
    counter ... signed with the secret key" (paper Section 3).

    Two fixed-size slots at the start of the store are written alternately
    (epoch parity picks the slot), so a crash during an anchor write leaves
    the previous anchor intact; readers pick the valid slot with the highest
    epoch. Validity is an HMAC under the anchor key (a plain digest when
    security is off — still torn-write-proof, just not attacker-proof). *)

open Types

type payload = {
  epoch : int;
  segment_size : int; (* layout parameters, checked at open *)
  map_fanout : int;
  map_depth : int;
  seq : int; (* last commit sequence at checkpoint *)
  root : entry option; (* location map root; None for empty database *)
  tail_seg : int;
  tail_off : int;
  counter : int64; (* one-way counter value at checkpoint *)
  next_id : int;
  chain : string; (* commit-chain MAC value at checkpoint *)
  snapshots : (int * entry option * int) list; (* id, root (None = empty db), seq *)
  tiers : (int * int) list;
      (* (segment, cleaning tier) for tier > 0 segments; encoded only when
         nonempty, so single-tier anchors stay byte-identical to the seed
         format and old anchors decode with an empty table *)
}

let magic = "TDBA"

let encode (p : payload) : string =
  let module P = Tdb_pickle.Pickle in
  let w = P.writer () in
  P.uint w p.epoch;
  P.uint w p.segment_size;
  P.uint w p.map_fanout;
  P.uint w p.map_depth;
  P.uint w p.seq;
  P.option w (fun w e -> Location_map.write_entry w e) p.root;
  P.uint w p.tail_seg;
  P.uint w p.tail_off;
  P.int64 w p.counter;
  P.uint w p.next_id;
  P.string w p.chain;
  P.list w
    (fun w (id, e, seq) ->
      P.uint w id;
      P.option w (fun w e -> Location_map.write_entry w e) e;
      P.uint w seq)
    p.snapshots;
  if p.tiers <> [] then
    P.list w
      (fun w (seg, tier) ->
        P.uint w seg;
        P.uint w tier)
      p.tiers;
  P.contents w

let decode (s : string) : payload =
  let module P = Tdb_pickle.Pickle in
  let r = P.reader s in
  let epoch = P.read_uint r in
  let segment_size = P.read_uint r in
  let map_fanout = P.read_uint r in
  let map_depth = P.read_uint r in
  let seq = P.read_uint r in
  let root = P.read_option r Location_map.read_entry in
  let tail_seg = P.read_uint r in
  let tail_off = P.read_uint r in
  let counter = P.read_int64 r in
  let next_id = P.read_uint r in
  let chain = P.read_string r in
  let snapshots =
    P.read_list r (fun r ->
        let id = P.read_uint r in
        let e = P.read_option r Location_map.read_entry in
        let seq = P.read_uint r in
        (id, e, seq))
  in
  let tiers =
    if P.at_end r then []
    else
      P.read_list r (fun r ->
          let seg = P.read_uint r in
          let tier = P.read_uint r in
          (seg, tier))
  in
  P.expect_end r;
  { epoch; segment_size; map_fanout; map_depth; seq; root; tail_seg; tail_off; counter; next_id; chain; snapshots;
    tiers }

(** Write the anchor into the slot selected by its epoch, then sync. *)
let write (sec : Security.t) (store : Tdb_platform.Untrusted_store.t) ~(slot_size : int) (p : payload) : unit =
  let body = encode p in
  let mac = Security.mac sec body in
  let framed =
    let module P = Tdb_pickle.Pickle in
    let w = P.writer () in
    Buffer.add_string w.P.buf magic;
    P.int32_fixed w (String.length body);
    Buffer.add_string w.P.buf body;
    Buffer.add_string w.P.buf mac;
    P.contents w
  in
  if String.length framed > slot_size then failwith "Anchor.write: anchor exceeds slot size";
  let slot = p.epoch land 1 in
  Tdb_platform.Untrusted_store.write store ~off:(slot * slot_size) framed;
  Tdb_platform.Untrusted_store.sync store

let read_slot (sec : Security.t) (store : Tdb_platform.Untrusted_store.t) ~(slot_size : int) (slot : int)
    : payload option =
  let size = Tdb_platform.Untrusted_store.size store in
  let off = slot * slot_size in
  if size < off + 8 then None
  else begin
    let header = Bytes.to_string (Tdb_platform.Untrusted_store.read store ~off ~len:8) in
    if not (String.equal (String.sub header 0 4) magic) then None
    else begin
      let blen =
        (Char.code header.[4] lsl 24) lor (Char.code header.[5] lsl 16) lor (Char.code header.[6] lsl 8)
        lor Char.code header.[7]
      in
      if blen < 0 || off + 8 + blen + Security.mac_len > size || blen > slot_size then None
      else begin
        let body = Bytes.to_string (Tdb_platform.Untrusted_store.read store ~off:(off + 8) ~len:blen) in
        let mac = Bytes.to_string (Tdb_platform.Untrusted_store.read store ~off:(off + 8 + blen) ~len:Security.mac_len) in
        if not (Security.check_mac sec ~expected:mac body ~what:"anchor") then None
        else match decode body with p -> Some p | exception _ -> None
      end
    end
  end

(** Read the current anchor: the valid slot with the highest epoch.
    Returns [None] when neither slot is valid (fresh store — or a wipe;
    the caller distinguishes the two with the one-way counter). *)
let read (sec : Security.t) (store : Tdb_platform.Untrusted_store.t) ~(slot_size : int) : payload option =
  match (read_slot sec store ~slot_size 0, read_slot sec store ~slot_size 1) with
  | None, None -> None
  | Some p, None | None, Some p -> Some p
  | Some a, Some b -> Some (if a.epoch >= b.epoch then a else b)
