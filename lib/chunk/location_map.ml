(** The hierarchical location map with the Merkle hash tree embedded in it
    (paper Section 3.2.1).

    The map is a radix tree over chunk ids with a fixed fanout and depth.
    Leaf slots hold the location entries of data chunks; interior slots hold
    the location entries of child map nodes. Every entry carries the one-way
    hash of the bytes it points at, so the tree doubles as a Merkle tree:
    validating a chunk read validates exactly one root-to-leaf path, and the
    root entry (kept in the MAC-protected anchor) authenticates the whole
    database.

    Nodes are loaded lazily through a [fetch] callback supplied by the chunk
    store (which reads the untrusted store, checks the recorded hash and
    decrypts). Dirty nodes live only in memory until the next checkpoint
    writes them out bottom-up — the paper's "modified portions of the
    location map ... written opportunistically at checkpoints". *)

open Types

type kid =
  | Entry of entry (* level 0: a data chunk's location *)
  | Node of node (* level > 0: loaded child node *)
  | Unloaded of entry (* level > 0: child node still on disk *)

and node = {
  level : int; (* 0 = leaf *)
  base : int; (* first chunk id covered by this node *)
  kids : kid option array;
  mutable disk : entry option; (* location of the on-disk copy, iff clean *)
}

type t = { fanout : int; depth : int; mutable root : node }

type fetch = what:string -> entry -> string
(** [fetch ~what e] returns the validated, decrypted payload stored at [e].
    @raise Tamper_detected on validation failure. *)

let fresh_node ~fanout ~level ~base = { level; base; kids = Array.make fanout None; disk = None }

let create ~fanout ~depth =
  { fanout; depth; root = fresh_node ~fanout ~level:(depth - 1) ~base:0 }

let capacity t =
  let rec pow b = function 0 -> 1 | n -> b * pow b (n - 1) in
  pow t.fanout t.depth

let span t level =
  let rec pow b = function 0 -> 1 | n -> b * pow b (n - 1) in
  pow t.fanout (level + 1)

(* ------------------------------------------------------------------ *)
(* Node (de)serialization                                              *)
(* ------------------------------------------------------------------ *)

let write_entry w (e : entry) =
  Tdb_pickle.Pickle.uint w e.seg;
  Tdb_pickle.Pickle.uint w e.off;
  Tdb_pickle.Pickle.uint w e.len;
  Tdb_pickle.Pickle.string w e.hash;
  Tdb_pickle.Pickle.uint w e.version

let read_entry r =
  let seg = Tdb_pickle.Pickle.read_uint r in
  let off = Tdb_pickle.Pickle.read_uint r in
  let len = Tdb_pickle.Pickle.read_uint r in
  let hash = Tdb_pickle.Pickle.read_string r in
  let version = Tdb_pickle.Pickle.read_uint r in
  { seg; off; len; hash; version }

(** Serialize a node for storage. Only slots holding entries are written
    ([Node]/[Unloaded] kids are represented by their entries; the caller
    must checkpoint children first so every loaded child is clean). *)
let node_payload (n : node) : string =
  let w = Tdb_pickle.Pickle.writer () in
  Tdb_pickle.Pickle.uint w n.level;
  Tdb_pickle.Pickle.uint w n.base;
  let slots = ref [] in
  Array.iteri
    (fun i kid ->
      match kid with
      | None -> ()
      | Some (Entry e) -> slots := (i, e) :: !slots
      | Some (Unloaded e) -> slots := (i, e) :: !slots
      | Some (Node child) -> (
          match child.disk with
          | Some e -> slots := (i, e) :: !slots
          | None -> invalid_arg "Location_map.node_payload: dirty child"))
    n.kids;
  Tdb_pickle.Pickle.list w
    (fun w (i, e) ->
      Tdb_pickle.Pickle.uint w i;
      write_entry w e)
    (List.rev !slots);
  Tdb_pickle.Pickle.contents w

let node_of_payload ~fanout (payload : string) : node =
  let r = Tdb_pickle.Pickle.reader payload in
  let level = Tdb_pickle.Pickle.read_uint r in
  let base = Tdb_pickle.Pickle.read_uint r in
  let n = fresh_node ~fanout ~level ~base in
  let slots =
    Tdb_pickle.Pickle.read_list r (fun r ->
        let i = Tdb_pickle.Pickle.read_uint r in
        let e = read_entry r in
        (i, e))
  in
  Tdb_pickle.Pickle.expect_end r;
  List.iter
    (fun (i, e) ->
      if i >= fanout then tamper "map node slot out of range";
      n.kids.(i) <- Some (if level = 0 then Entry e else Unloaded e))
    slots;
  n

(* ------------------------------------------------------------------ *)
(* Path navigation                                                     *)
(* ------------------------------------------------------------------ *)

let slot_of t (cid : chunk_id) (level : int) =
  let rec pow b = function 0 -> 1 | n -> b * pow b (n - 1) in
  cid / pow t.fanout level mod t.fanout

let check_cid t cid =
  if cid < 0 || cid >= capacity t then invalid_arg (Printf.sprintf "chunk id %d out of map range" cid)

let load_child t (fetch : fetch) (parent : node) (i : int) : node option =
  match parent.kids.(i) with
  | None -> None
  | Some (Node n) -> Some n
  | Some (Unloaded e) ->
      let payload = fetch ~what:(Printf.sprintf "map node (level %d)" (parent.level - 1)) e in
      let n = node_of_payload ~fanout:t.fanout payload in
      if n.level <> parent.level - 1 then tamper "map node level mismatch";
      n.disk <- Some e;
      parent.kids.(i) <- Some (Node n);
      Some n
  | Some (Entry _) -> tamper "data entry at interior map level"

(** Descend to the leaf covering [cid]. [create_path] materializes missing
    interior nodes (for writes). *)
let rec descend t fetch (n : node) ~create_path (cid : chunk_id) : node option =
  if n.level = 0 then Some n
  else begin
    let i = slot_of t cid n.level in
    match load_child t fetch n i with
    | Some child -> descend t fetch child ~create_path cid
    | None ->
        if not create_path then None
        else begin
          let child_span = span t (n.level - 1) in
          let child = fresh_node ~fanout:t.fanout ~level:(n.level - 1) ~base:(n.base + (i * child_span)) in
          n.kids.(i) <- Some (Node child);
          descend t fetch child ~create_path cid
        end
  end

(** Locate the in-memory node covering [(level, base)], loading the path if
    necessary; used by the cleaner to test map-node liveness. *)
let find_node t (fetch : fetch) ~(level : int) ~(base : int) : node option =
  let rec go (n : node) =
    if Int.equal n.level level then if Int.equal n.base base then Some n else None
    else if n.level < level then None
    else
      match load_child t fetch n (slot_of t base n.level) with
      | Some child -> go child
      | None -> None
  in
  if level >= t.depth then None else go t.root

(** The root's on-disk entry; [None] if the tree is dirty or empty. *)
let root_entry t : entry option = t.root.disk

let find t (fetch : fetch) (cid : chunk_id) : entry option =
  check_cid t cid;
  match descend t fetch t.root ~create_path:false cid with
  | None -> None
  | Some leaf -> (
      match leaf.kids.(slot_of t cid 0) with
      | Some (Entry e) -> Some e
      | None -> None
      | Some _ -> tamper "node entry at leaf map level" )

(** Mark every node on the path to [cid] dirty, returning their obsoleted
    on-disk entries (for usage accounting). *)
let dirty_path t fetch (cid : chunk_id) : entry list =
  let obsoleted = ref [] in
  let rec go n =
    (match n.disk with
    | Some e ->
        obsoleted := e :: !obsoleted;
        n.disk <- None
    | None -> ());
    if n.level > 0 then
      match load_child t fetch n (slot_of t cid n.level) with Some child -> go child | None -> ()
  in
  go t.root;
  !obsoleted

(** [set t fetch cid e] installs [e] and returns [(old_data_entry,
    obsoleted_node_entries)]. *)
let set t (fetch : fetch) (cid : chunk_id) (e : entry) : entry option * entry list =
  check_cid t cid;
  let obsoleted_nodes = dirty_path t fetch cid in
  match descend t fetch t.root ~create_path:true cid with
  | None -> assert false
  | Some leaf ->
      let i = slot_of t cid 0 in
      let old = match leaf.kids.(i) with Some (Entry o) -> Some o | None -> None | Some _ -> tamper "bad leaf" in
      leaf.kids.(i) <- Some (Entry e);
      (old, obsoleted_nodes)

let remove t (fetch : fetch) (cid : chunk_id) : entry option * entry list =
  check_cid t cid;
  match descend t fetch t.root ~create_path:false cid with
  | None -> (None, [])
  | Some leaf -> (
      let i = slot_of t cid 0 in
      match leaf.kids.(i) with
      | Some (Entry o) ->
          let obsoleted_nodes = dirty_path t fetch cid in
          leaf.kids.(i) <- None;
          (Some o, obsoleted_nodes)
      | None -> (None, [])
      | Some _ -> tamper "bad leaf" )

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

(** Write out every dirty node bottom-up. [write_node] appends a map-node
    record to the log and returns its new location entry. Superseded on-disk
    node copies are reported to [obsolete]: most were already cleared when
    {!set}/{!remove} dirtied the path, but a clean ancestor of a node the
    cleaner dirtied directly is obsoleted here, when it is rewritten.
    Returns the root's entry (None if the tree is completely empty). *)
let checkpoint t ~(write_node : string -> entry) ~(obsolete : entry -> unit) : entry option =
  let rec flush (n : node) : entry option =
    (* Flush loaded children first so our serialized slots are fresh. *)
    let child_changed = ref false in
    if n.level > 0 then
      Array.iteri
        (fun i kid ->
          match kid with
          | Some (Node child) when child.disk = None || has_dirty child ->
              let before = child.disk in
              (match flush child with
              | Some _ -> ()
              | None ->
                  n.kids.(i) <- None;
                  child_changed := true);
              let moved =
                match (child.disk, before) with
                | None, None -> false
                | Some a, Some b -> not (entry_equal a b)
                | None, Some _ | Some _, None -> true
              in
              if moved then child_changed := true
          | _ -> ())
        n.kids;
    let is_empty = Array.for_all (fun k -> k = None) n.kids in
    if is_empty then begin
      n.disk <- None;
      None
    end
    else if n.disk <> None && not !child_changed then n.disk
    else begin
      (match n.disk with Some e -> obsolete e | None -> ());
      let e = write_node (node_payload n) in
      n.disk <- Some e;
      Some e
    end
  and has_dirty (n : node) : bool =
    n.disk = None
    || (n.level > 0
       && Array.exists (function Some (Node c) -> has_dirty c | _ -> false) n.kids)
  in
  flush t.root

(** Number of dirty (in-memory-only) nodes — used to pre-reserve log space
    before a checkpoint. *)
let count_dirty t : int =
  let rec go (n : node) =
    (if n.disk = None then 1 else 0)
    + (if n.level = 0 then 0
       else
         Array.fold_left
           (fun acc kid -> match kid with Some (Node c) -> acc + go c | _ -> acc)
           0 n.kids)
  in
  go t.root

(* ------------------------------------------------------------------ *)
(* Whole-tree walks (usage rebuild, snapshots, backups)                *)
(* ------------------------------------------------------------------ *)

(** Iterate over the *current* in-memory tree: [data] for every data chunk
    entry, [node] for every clean node's on-disk entry. Loads everything. *)
let iter t (fetch : fetch) ~(data : chunk_id -> entry -> unit) ~(node : entry -> unit) : unit =
  let rec go (n : node) =
    (match n.disk with Some e -> node e | None -> ());
    Array.iteri
      (fun i kid ->
        match kid with
        | None -> ()
        | Some (Entry e) -> data (n.base + i) e
        | Some (Node _) | Some (Unloaded _) -> (
            match load_child t fetch n i with Some child -> go child | None -> () ))
      n.kids
  in
  go t.root

(** Walk a tree straight off the disk, given its root entry — used for
    snapshot reads, which must not disturb (or depend on) the live map. *)
let walk_tree ~fanout (fetch : fetch) ~(root : entry) ~(data : chunk_id -> entry -> unit)
    ~(node : entry -> unit) : unit =
  let rec go (e : entry) =
    node e;
    let n = node_of_payload ~fanout (fetch ~what:"snapshot map node" e) in
    Array.iteri
      (fun i kid ->
        match kid with
        | None -> ()
        | Some (Entry de) -> data (n.base + i) de
        | Some (Unloaded ce) -> go ce
        | Some (Node _) -> assert false)
      n.kids
  in
  go root

(** Structural diff of two on-disk trees, pruning identical subtrees by
    hash — the basis of incremental backups (paper Section 3.2.1).
    [changed] fires for ids added or modified in [new_root]; [removed] for
    ids present under [old_root] only. *)
let diff_trees ~fanout (fetch : fetch) ~(old_root : entry option) ~(new_root : entry option)
    ~(changed : chunk_id -> entry -> unit) ~(removed : chunk_id -> unit) : unit =
  let load e = node_of_payload ~fanout (fetch ~what:"diff map node" e) in
  let entries_equal (a : entry) (b : entry) = entry_equal a b in
  let rec subtree_all f = function
    | None -> ()
    | Some (e : entry) ->
        let n = load e in
        Array.iteri
          (fun i kid ->
            match kid with
            | None -> ()
            | Some (Entry de) -> f (n.base + i) (Some de)
            | Some (Unloaded ce) -> subtree_all f (Some ce)
            | Some (Node _) -> assert false)
          n.kids
  in
  let rec go (old_e : entry option) (new_e : entry option) =
    match (old_e, new_e) with
    | None, None -> ()
    | None, Some _ -> subtree_all (fun cid e -> match e with Some e -> changed cid e | None -> ()) new_e
    | Some _, None -> subtree_all (fun cid _ -> removed cid) old_e
    | Some oe, Some ne ->
        if entries_equal oe ne then ()
        else begin
          let on = load oe and nn = load ne in
          if (not (Int.equal on.level nn.level)) || not (Int.equal on.base nn.base) then tamper "diff: incompatible map nodes";
          for i = 0 to fanout - 1 do
            match (on.kids.(i), nn.kids.(i)) with
            | None, None -> ()
            | Some (Entry a), Some (Entry b) -> if not (entries_equal a b) then changed (nn.base + i) b
            | Some (Entry _), None -> removed (on.base + i)
            | None, Some (Entry b) -> changed (nn.base + i) b
            | Some (Unloaded a), Some (Unloaded b) -> go (Some a) (Some b)
            | Some (Unloaded a), None -> go (Some a) None
            | None, Some (Unloaded b) -> go None (Some b)
            | _ -> tamper "diff: mixed node kinds"
          done
        end
  in
  go old_root new_root
