(** Annotation tables for the interprocedural analyses (R6 secret-taint,
    R7 lock discipline).

    These tables *are* the machine-checked statement of TDB's trust
    boundary: which values are secret (taint sources), which operations
    ship bytes across the trusted/untrusted line (sinks), which
    transformations make a secret safe to ship (sanitizers), and which
    mutexes coordinate the threaded layers (lock discipline). When a new
    module introduces a key, a boundary write or a mutex, it gets a row
    here — DESIGN.md ("Static analysis") walks through how.

    Matching is by the *tail* of a dotted path: [("Security", "unseal")]
    matches [Security.unseal], [Tdb_chunk.Security.unseal] and, within
    [security.ml] itself, a bare [unseal] call resolved by the dataflow
    layer. An empty module component matches any qualifier as well as a
    bare (stdlib) identifier. *)

type fn_key = {
  k_module : string;  (** "" = any qualifier, including none *)
  k_name : string;
  k_why : string;  (** one-line rationale, surfaced in violations *)
}

let key m n why = { k_module = m; k_name = n; k_why = why }

(* ------------------------------------------------------------------ *)
(* R6: secret taint                                                    *)
(* ------------------------------------------------------------------ *)

(** Function results that are secret: key material derived from the
    platform secret store, and plaintext recovered from sealed storage. *)
let taint_sources =
  [
    key "Secret_store" "derive" "key derived from the platform secret";
    key "Secret_store" "derive_len" "key derived from the platform secret";
    key "Security" "unseal" "decrypted chunk payload";
    key "Cbc" "decrypt" "CBC plaintext";
    key "Chunk_cache" "find" "cached decrypted chunk payload";
  ]

(** Record fields holding key material: projecting one taints the result
    even though the carrying record (an opaque context) does not. *)
let sensitive_fields = [ "mac_key" ]

(** Applications whose result is safe to ship across the boundary no
    matter how secret the inputs: encryption, MACs and one-way digests.
    [generic_sanitizer_names] additionally matches any path tail, so the
    functor-style [H.digest] sanitizes without a per-instance row. *)
let taint_sanitizers =
  [
    key "Security" "seal" "";
    key "Security" "mac" "";
    key "Security" "label" "";
    key "Security" "check_label" "";
    key "Security" "check_mac" "";
    key "Hmac" "mac" "";
    key "Hmac" "sha256" "";
    key "Hmac" "precompute" "ipad/opad state stays inside Hmac";
    key "Cbc" "encrypt" "";
    key "Gkey" "hash_bytes" "";
    key "Ct" "equal_string" "";
    key "Ct" "equal_bytes" "";
  ]

let generic_sanitizer_names = [ "digest" ]

(** Writes that cross the trust boundary: the untrusted store and the
    archival store (attacker-readable media), the raw log append (bytes
    land in the untrusted store verbatim at the next flush — framing is
    the caller's job, sealing must happen first), the wire encoders, and
    plain file/socket/console output. *)
let taint_sinks =
  [
    key "Untrusted_store" "write" "untrusted store write";
    key "Untrusted_store" "writev" "untrusted store write";
    key "Untrusted_store" "interpose" "untrusted store hook";
    key "Archival_store" "put" "archival (backup) media write";
    key "Log" "append" "raw log append (flushed to the untrusted store)";
    key "Proto" "write_frame" "wire write";
    key "Proto" "encode_request" "wire encoding";
    key "Proto" "encode_response" "wire encoding";
    key "Unix" "write" "file/socket write";
    key "Unix" "single_write" "file/socket write";
    key "Unix" "send" "socket write";
    key "" "output_string" "channel write";
    key "" "output_bytes" "channel write";
    key "" "print_string" "console write";
    key "" "print_endline" "console write";
    key "" "prerr_string" "console write";
    key "" "prerr_endline" "console write";
  ]

(** Where R6 violations are reported. Taint *propagates* through every
    scanned file; it is only an error when a tainted value reaches a sink
    from the seal-pipeline layers or the executables. [lib/platform] is
    deliberately absent: it implements the boundary (the untrusted store
    itself, the secret-store ROM image), so its writes are below the line
    the analysis enforces. *)
let taint_report_dirs = [ "lib/crypto"; "lib/chunk"; "lib/backup"; "lib/core"; "bin" ]

(* ------------------------------------------------------------------ *)
(* R7: lock discipline                                                 *)
(* ------------------------------------------------------------------ *)

(** Calls that can block for an unbounded or I/O-scale time: holding a
    choreography mutex across one of these stalls every thread that needs
    the mutex (and [Condition] signalling through it). *)
let blocking_calls =
  [
    key "Unix" "read" "blocking read";
    key "Unix" "write" "blocking write";
    key "Unix" "single_write" "blocking write";
    key "Unix" "select" "blocking select";
    key "Unix" "accept" "blocking accept";
    key "Unix" "connect" "blocking connect";
    key "Unix" "recv" "blocking recv";
    key "Unix" "send" "blocking send";
    key "Unix" "sleepf" "sleep";
    key "Unix" "sleep" "sleep";
    key "Thread" "delay" "sleep";
    key "Thread" "join" "thread join";
    key "Domain" "join" "domain join";
    key "Pool" "map" "parks the coordinator until every pool worker drains";
    key "Untrusted_store" "read" "store read (disk I/O)";
    key "Untrusted_store" "write" "store write (disk I/O)";
    key "Untrusted_store" "writev" "store write (disk I/O)";
    key "Untrusted_store" "sync" "store sync (durability barrier)";
  ]

(** Mutexes under which blocking I/O is the *documented design*, exempt
    from the blocking-call rule (they still participate in lock ordering
    and the [Condition.wait] rule):

    - [Object_store.mu] — the paper's single store state mutex (Section
      4.2.3): chunk reads, buffered log appends and nondurable commits
      run under it by construction; the staged barrier exists precisely
      to keep the expensive part (the durable sync) outside it, and
      [Lock_manager] releases it while parked on an object lock.
    - [Client.mu] — serializes whole request/response round trips on one
      connection; holding it across the socket I/O is its purpose.

    Adding a lock here is an architectural decision: record the
    justification in DESIGN.md alongside the entry. *)
let io_locks = [ "Object_store.mu"; "Client.mu" ]

(** Where R7 violations are reported: the threaded layers grown by the
    service/group-commit work. *)
let lock_report_dirs = [ "lib/server"; "lib/objstore"; "lib/chunk"; "lib/parallel" ]

(** Effectful calls that must stay on the coordinator domain: anything
    that draws from or advances shared randomness / sealing state. Safe
    under a mutex (Drbg locks internally) but {e order-destroying} when it
    runs inside a [Domain.spawn] body or a pool worker: commit
    determinism depends on IVs being drawn sequentially in operation
    order, so the R7 walker flags these (and anything that transitively
    calls them) inside spawned code. *)
let coordinator_only =
  [
    key "Drbg" "generate" "DRBG draw (IV order must be deterministic)";
    key "Drbg" "int" "DRBG draw (IV order must be deterministic)";
    key "Drbg" "split" "DRBG reseed (stream order must be deterministic)";
    key "Security" "seal" "draws an IV from the store DRBG";
    key "Security" "draw_iv" "draws an IV from the store DRBG";
  ]

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

let strip_stdlib = function ("Stdlib" | "Pervasives") :: rest -> rest | p -> p

(** Does dotted path [p] (already flattened) match [k]? The name must be
    the path tail; a nonempty [k_module] must be the immediately
    preceding component, an empty one matches any prefix including a
    bare identifier. *)
let matches (k : fn_key) (p : string list) : bool =
  match List.rev (strip_stdlib p) with
  | [] -> false
  | name :: rev_prefix -> (
      String.equal name k.k_name
      &&
      match rev_prefix with
      | [] -> String.equal k.k_module ""
      | m :: _ -> String.equal k.k_module "" || String.equal k.k_module m)

let find_in table p = List.find_opt (fun k -> matches k p) table

let is_source p = Option.is_some (find_in taint_sources p)

let is_sanitizer p =
  Option.is_some (find_in taint_sanitizers p)
  ||
  match List.rev (strip_stdlib p) with
  | name :: _ -> List.exists (String.equal name) generic_sanitizer_names
  | [] -> false

let sink_of p = find_in taint_sinks p
let blocking_of p = find_in blocking_calls p
let coordinator_only_of p = find_in coordinator_only p
let is_sensitive_field name = List.exists (String.equal name) sensitive_fields
let is_io_lock name = List.exists (String.equal name) io_locks

let path_under dir path =
  let prefix = dir ^ "/" in
  let n = String.length prefix in
  String.length path >= n && String.equal (String.sub path 0 n) prefix

let in_dirs dirs path = List.exists (fun d -> path_under d path) dirs
let taint_reported path = in_dirs taint_report_dirs path
let lock_reported path = in_dirs lock_report_dirs path
