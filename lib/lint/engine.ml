(** Syntactic lint rules enforcing TDB's trusted-code-base invariants.

    The security argument of the paper (Sections 3-5) rests on a small
    trusted layer whose invariants — constant-time MAC comparison, no
    ambient randomness, stable key orderings — are easy to break silently
    in a refactor. This engine parses the repo's own sources with
    compiler-libs ([Parse] + [Ast_iterator], no type information) and
    flags violations of five rules:

    - R1: polymorphic [=] / [<>] / [compare] / [Hashtbl.hash] —
      timing-unsafe on strings and version-unstable.
      Comparisons where one operand is syntactically immediate (an
      int/char/float literal, [true]/[false]/[()]/[None]/[[]], or a
      known int-returning primitive such as [String.length]) are exempt:
      those are monomorphic in effect and timing-safe.
    - R2: in the cryptographic layers, equality on values whose
      identifiers look like MAC/tag/digest/hmac/label material must go
      through {!Tdb_crypto.Ct}, never [String.equal] or [=].
    - R3: [Obj], [Marshal] and [Random] are banned in trusted layers;
      randomness must come from [Drbg], serialization from [Pickle].
    - R4: partial functions ([List.hd]/[tl]/[nth], [Option.get],
      [Bytes.unsafe_*], [String.unsafe_*], [Array.unsafe_*]) and
      catch-all [try ... with _ ->] handlers.
    - R5: every module under [lib/] must expose an [.mli] (checked by
      {!Driver}, which sees the file system; {!missing_interface} builds
      the violation).

    Two further rules are interprocedural and live in their own modules,
    sharing this [rule]/[violation] vocabulary and the allowlist:

    - R6 ({!Taint}): a secret-tainted value (key material, decrypted
      payloads — {!Sources.taint_sources}) reaches an untrusted sink
      (store/archival/wire/console writes) without passing a sanitizer
      (seal/MAC/digest).
    - R7 ({!Lockcheck}): lock-order cycles, re-locking a held mutex,
      [Condition.wait] on the wrong mutex or with extra locks held, and
      blocking I/O under a non-exempt mutex.

    The passes are purely syntactic: they see the parsetree, not types,
    so the rules err on the side of flagging and rely on [lint_allow.txt]
    (see {!Allowlist}) for the rare justified exception. *)

open Parsetree

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"

let rule_of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | _ -> None

let rule_equal a b =
  match (a, b) with
  | R1, R1 | R2, R2 | R3, R3 | R4, R4 | R5, R5 | R6, R6 | R7, R7 -> true
  | (R1 | R2 | R3 | R4 | R5 | R6 | R7), _ -> false

let rule_doc = function
  | R1 -> "polymorphic comparison/hash (timing-unsafe, version-unstable)"
  | R2 -> "MAC/digest comparison must be constant-time (Ct.equal_string/Ct.equal_bytes)"
  | R3 -> "Obj/Marshal/Random are banned in trusted layers (randomness comes from Drbg)"
  | R4 -> "partial or unsafe function / catch-all exception handler"
  | R5 -> "module lacks an .mli interface"
  | R6 -> "secret-tainted value reaches an untrusted sink unsanitized (seal/MAC/digest first)"
  | R7 -> "lock discipline: ordering cycle, wrong-mutex wait, or blocking call under a mutex"

type violation = {
  v_file : string;
  v_line : int;
  v_col : int;
  v_rule : rule;
  v_msg : string;
}

(* ------------------------------------------------------------------ *)
(* Layer classification                                                *)
(* ------------------------------------------------------------------ *)

(** Layers inside the paper's trusted code base: everything an attacker
    must not be able to influence. *)
let trusted_dirs =
  [ "lib/chunk"; "lib/crypto"; "lib/objstore"; "lib/backup"; "lib/platform"; "lib/server"; "bin" ]

(** Layers where R2 (constant-time comparison of secret-derived values)
    applies: the crypto primitives and their direct consumers. *)
let ct_dirs = [ "lib/crypto"; "lib/chunk"; "lib/backup" ]

let path_under dir path =
  let prefix = dir ^ "/" in
  let n = String.length prefix in
  String.length path >= n && String.equal (String.sub path 0 n) prefix

let in_layer dirs path = List.exists (fun d -> path_under d path) dirs

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)
(* ------------------------------------------------------------------ *)

let flatten lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> [] (* functor applications never name banned values *)
  in
  go [] lid

let strip_stdlib = function ("Stdlib" | "Pervasives") :: rest -> rest | p -> p

(* [min]/[max] are deliberately not banned: they are routinely shadowed
   as range-bound parameter names ([?min]/[?max]), and an unscoped
   syntactic pass cannot tell the two apart. *)
let is_poly_compare_path p =
  match strip_stdlib p with [ ("=" | "<>" | "compare") ] -> true | _ -> false

let is_poly_hash_path p =
  match strip_stdlib p with
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "seeded_hash_param") ] -> true
  | _ -> false

(** Equality-shaped functions R2 audits in the crypto layers. *)
let is_equality_path p =
  match strip_stdlib p with
  | [ ("=" | "<>" | "compare") ] -> true
  | [ ("String" | "Bytes"); ("equal" | "compare") ] -> true
  | _ -> false

let banned_trusted_head = function "Obj" | "Marshal" | "Random" -> true | _ -> false

let partial_name p =
  match strip_stdlib p with
  | [ "List"; (("hd" | "tl" | "nth") as f) ] -> Some ("List." ^ f)
  | [ "Option"; "get" ] -> Some "Option.get"
  | [ (("Bytes" | "String" | "Array") as m); f ]
    when String.length f >= 7 && String.equal (String.sub f 0 7) "unsafe_" ->
      Some (m ^ "." ^ f)
  | _ -> None

(** Syntactically immediate operands: comparing against these with a
    polymorphic operator is monomorphic in effect, timing-safe and
    version-stable, so R1 exempts the comparison. *)
let int_function_path p =
  match strip_stdlib p with
  | [ ("+" | "-" | "*" | "/" | "mod" | "land" | "lor" | "lxor" | "lsl" | "lsr" | "asr"
      | "~-" | "abs" | "succ" | "pred") ] ->
      true
  | [ ("String" | "Bytes" | "List" | "Array"); "length" ] -> true
  | [ "Char"; "code" ] -> true
  | [ ("Int" | "Float" | "String" | "Bytes" | "Char" | "Bool" | "Int32" | "Int64"); "compare" ] ->
      true
  | _ -> false

let rec immediate_ish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _ | Pconst_float _) -> true
  | Pexp_construct ({ txt; _ }, None) -> (
      match flatten txt with [ ("true" | "false" | "()" | "None" | "[]") ] -> true | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> int_function_path (flatten txt)
  | Pexp_constraint (inner, _) -> immediate_ish inner
  | Pexp_open (_, inner) -> immediate_ish inner
  | _ -> false

(* ------------------------------------------------------------------ *)
(* R2: sensitive-identifier detection                                  *)
(* ------------------------------------------------------------------ *)

let sensitive_component = function
  | "mac" | "hmac" | "tag" | "digest" | "label" -> true
  | _ -> false

let ident_sensitive name =
  List.exists sensitive_component (String.split_on_char '_' (String.lowercase_ascii name))

let last_component p = match List.rev p with c :: _ -> Some c | [] -> None

(** First identifier (variable, path tail or record field) inside [e]
    whose name looks like MAC/digest material. *)
let find_sensitive_ident e =
  let found = ref None in
  let note name =
    match !found with
    | Some _ -> ()
    | None -> if ident_sensitive name then found := Some name
  in
  let note_path txt = match last_component (flatten txt) with Some n -> note n | None -> () in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } -> note_path txt
          | Pexp_field (_, { txt; _ }) -> note_path txt
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let pos_of (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let check_source ~path source =
  let trusted = in_layer trusted_dirs path in
  let ct_scope = in_layer ct_dirs path in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  let str = Parse.implementation lexbuf in
  let violations = ref [] in
  (* Ident locations already judged by the application-site logic, so the
     generic ident walk must not re-flag them. *)
  let consumed = Hashtbl.create 16 in
  let add loc rule msg =
    let line, col = pos_of loc in
    violations := { v_file = path; v_line = line; v_col = col; v_rule = rule; v_msg = msg } :: !violations
  in
  let bare_ident loc lid =
    if not (Hashtbl.mem consumed (pos_of loc)) then begin
      let p = flatten lid in
      let name = String.concat "." p in
      (match p with
      | head :: _ :: _ when trusted && banned_trusted_head head ->
          add loc R3
            (Printf.sprintf "%s is banned in trusted layers (randomness: Drbg; serialization: Pickle)" name)
      | _ -> ());
      (match partial_name p with
      | Some f -> add loc R4 (Printf.sprintf "partial/unsafe function %s; use a total alternative" f)
      | None -> ());
      if is_poly_compare_path p then
        add loc R1
          (Printf.sprintf "polymorphic %s; use a monomorphic comparator (String.equal, Int.compare, ...)" name);
      if is_poly_hash_path p then add loc R1 (name ^ " is version-unstable; use Gkey.hash_bytes")
    end
  in
  let handle_apply fn_loc fn_lid args =
    let p = flatten fn_lid in
    let exempt = List.exists immediate_ish args in
    if ct_scope && is_equality_path p && not exempt then begin
      match List.find_map find_sensitive_ident args with
      | Some name ->
          Hashtbl.replace consumed (pos_of fn_loc) ();
          add fn_loc R2
            (Printf.sprintf "comparison involving %S must use Ct.equal_string/Ct.equal_bytes" name)
      | None -> ()
    end;
    if (not (Hashtbl.mem consumed (pos_of fn_loc)))
       && (is_poly_compare_path p || is_poly_hash_path p)
    then begin
      Hashtbl.replace consumed (pos_of fn_loc) ();
      if not exempt then begin
        let name = String.concat "." p in
        if is_poly_hash_path p then add fn_loc R1 (name ^ " is version-unstable; use Gkey.hash_bytes")
        else
          add fn_loc R1
            (Printf.sprintf "polymorphic %s on non-immediate operands; use a monomorphic comparator"
               name)
      end
    end
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
              handle_apply loc txt (List.map snd args)
          | Pexp_ident { txt; loc } -> bare_ident loc txt
          | Pexp_try (_, cases) ->
              List.iter
                (fun c ->
                  match c.pc_lhs.ppat_desc with
                  | Ppat_any ->
                      add c.pc_lhs.ppat_loc R4
                        "catch-all 'with _ ->' swallows Tamper_detected and Out_of_memory alike; match specific exceptions"
                  | _ -> ())
                cases
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      open_declaration =
        (fun it od ->
          (if trusted then
             match od.popen_expr.pmod_desc with
             | Pmod_ident { txt; loc } -> (
                 match flatten txt with
                 | head :: _ when banned_trusted_head head ->
                     add loc R3 ("open " ^ head ^ " is banned in trusted layers")
                 | _ -> ())
             | _ -> ());
          Ast_iterator.default_iterator.open_declaration it od);
    }
  in
  iter.structure iter str;
  List.stable_sort
    (fun a b ->
      match Int.compare a.v_line b.v_line with 0 -> Int.compare a.v_col b.v_col | c -> c)
    (List.rev !violations)

let missing_interface ~path =
  {
    v_file = path;
    v_line = 1;
    v_col = 0;
    v_rule = R5;
    v_msg = "module has no .mli; every module under lib/ must declare its public surface";
  }
