(** Syntactic lint rules enforcing TDB's trusted-code-base invariants.

    Five rules, checked over the parsetree (no type information):

    - R1 — polymorphic [=]/[<>]/[compare]/[Hashtbl.hash]
      anywhere under [lib/], except against syntactically immediate
      operands (int/char/float literals, [true]/[false]/[()]/[None]/[[]],
      known int-returning primitives).
    - R2 — in [lib/crypto], [lib/chunk] and [lib/backup], equality on
      values whose
      identifiers look like [mac]/[tag]/[digest]/[hmac]/[label] material
      must use [Ct.equal_string]/[Ct.equal_bytes].
    - R3 — [Obj], [Marshal], [Random] banned in the trusted layers
      ([lib/chunk], [lib/crypto], [lib/objstore], [lib/backup],
      [lib/platform]).
    - R4 — partial/unsafe functions ([List.hd]/[tl]/[nth], [Option.get],
      [Bytes.unsafe_*], [String.unsafe_*], [Array.unsafe_*]) and
      catch-all [try ... with _ ->].
    - R5 — every module under [lib/] must expose an [.mli].

    R6 (secret taint, {!Taint}) and R7 (lock discipline, {!Lockcheck})
    are interprocedural; they share this [rule]/[violation] vocabulary
    and the allowlist but run from {!Driver} over the whole program. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7

val rule_id : rule -> string
(** ["R1"] ... ["R7"]. *)

val rule_of_id : string -> rule option
val rule_equal : rule -> rule -> bool

val rule_doc : rule -> string
(** One-line rationale, for [--explain]-style output. *)

type violation = {
  v_file : string;  (** repo-relative path, '/'-separated *)
  v_line : int;  (** 1-based *)
  v_col : int;  (** 0-based *)
  v_rule : rule;
  v_msg : string;
}

val trusted_dirs : string list
(** Directories forming the paper's trusted code base (R3 scope). *)

val ct_dirs : string list
(** Directories where R2 (constant-time comparison) applies. *)

val check_source : path:string -> string -> violation list
(** [check_source ~path source] parses [source] as an implementation and
    returns its violations sorted by position. [path] is the
    repo-relative path used both for layer classification and for
    [v_file]. @raise Syntaxerr.Error on unparsable input. *)

val missing_interface : path:string -> violation
(** The R5 violation for an [.ml] with no sibling [.mli]; the caller
    ({!Driver}) decides when a module is missing its interface. *)
