(** Whole-program view for the interprocedural rules: parsed units, the
    top-level definition table, and name-based call resolution (a
    parsetree approximation of the call graph — see the .ml header for
    its contract and limits). *)

type unit_ = {
  u_path : string;  (** repo-relative, '/'-separated *)
  u_module : string;
  u_str : Parsetree.structure;
}

val module_of_path : string -> string
(** ["lib/chunk/chunk_store.ml"] -> ["Chunk_store"]. *)

val parse_unit : path:string -> string -> unit_
(** @raise Syntaxerr.Error on unparsable input. *)

type param = { p_label : string; p_pat : Parsetree.pattern }

type def = {
  d_id : int;
  d_path : string;
  d_module : string;
  d_name : string;
  d_params : param list;  (** empty for plain values *)
  d_body : Parsetree.expression;
  d_loc : Location.t;
}

type program = {
  units : unit_ list;
  defs : def list;
  by_key : (string * string, def) Hashtbl.t;
}

val build : unit_ list -> program

val flatten : Longident.t -> string list
(** [[]] for functor applications. *)

val resolve : program -> current_module:string -> string list -> def option

val match_args :
  def -> (Asttypes.arg_label * Parsetree.expression) list -> (int * Parsetree.expression) list
(** Pair arguments with parameter positions; unmatched arguments get
    [-1]. *)

val pattern_vars : Parsetree.pattern -> string list
val pos_of : Location.t -> int * int
