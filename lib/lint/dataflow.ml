(** Whole-program view for the interprocedural rules (R6/R7): parsed
    compilation units, the table of top-level value definitions, and
    name-based call resolution.

    The lint pass sees parsetrees, not types, so "the call graph" here is
    a name-resolution approximation: a definition is keyed by its
    enclosing module name (derived from the file name, plus nested
    [module M = struct ... end] blocks) and its value name; an
    application [M.f x] resolves by the tail of the dotted path, an
    unqualified [f x] by the current module. That is exact for this
    repository's idiom (every library module is one file, aliases like
    [module P = Tdb_pickle.Pickle] only shorten prefixes, and the tail
    components survive aliasing) and degrades to "unknown call" — which
    both analyses treat conservatively — where it is not. *)

open Parsetree

type unit_ = {
  u_path : string;  (** repo-relative, '/'-separated *)
  u_module : string;  (** "chunk_store.ml" -> "Chunk_store" *)
  u_str : structure;
}

let module_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

let parse_unit ~path source : unit_ =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  { u_path = path; u_module = module_of_path path; u_str = Parse.implementation lexbuf }

(* ------------------------------------------------------------------ *)
(* Definitions                                                         *)
(* ------------------------------------------------------------------ *)

type param = { p_label : string;  (** "" for unlabeled *) p_pat : pattern }

type def = {
  d_id : int;
  d_path : string;  (** file of the definition *)
  d_module : string;  (** innermost enclosing module name *)
  d_name : string;  (** "_" for non-variable patterns (e.g. [let () = ...]) *)
  d_params : param list;  (** empty for plain values *)
  d_body : expression;
  d_loc : Location.t;
}

type program = {
  units : unit_ list;
  defs : def list;
  by_key : (string * string, def) Hashtbl.t;  (** (module, name) -> def *)
}

(** Peel the curried parameter spine off a binding's expression. Optional
    arguments keep their label; [function]-style bodies contribute no
    named parameter (the scrutinee is anonymous). *)
let rec peel_params acc e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _default, pat, body) ->
      let label =
        match lbl with Asttypes.Nolabel -> "" | Asttypes.Labelled l | Asttypes.Optional l -> l
      in
      peel_params ({ p_label = label; p_pat = pat } :: acc) body
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) when acc <> [] -> peel_params acc body
  | _ -> (List.rev acc, e)

let binding_name vb =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> txt
    | Ppat_constraint (p, _) -> go p
    | _ -> "_"
  in
  go vb.pvb_pat

let build (units : unit_ list) : program =
  let defs = ref [] in
  let next = ref 0 in
  let add u modname vb =
    let params, body = peel_params [] vb.pvb_expr in
    incr next;
    defs :=
      {
        d_id = !next;
        d_path = u.u_path;
        d_module = modname;
        d_name = binding_name vb;
        d_params = params;
        d_body = body;
        d_loc = vb.pvb_loc;
      }
      :: !defs
  in
  let rec items u modname str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (add u modname) vbs
        | Pstr_module { pmb_name = { txt = Some inner; _ }; pmb_expr; _ } -> mod_expr u inner pmb_expr
        | Pstr_recmodule mbs ->
            List.iter
              (fun mb ->
                match mb.pmb_name.txt with Some inner -> mod_expr u inner mb.pmb_expr | None -> ())
              mbs
        | _ -> ())
      str
  and mod_expr u inner me =
    match me.pmod_desc with
    | Pmod_structure str -> items u inner str
    | Pmod_constraint (me, _) -> mod_expr u inner me
    | _ -> ()
  in
  List.iter (fun u -> items u u.u_module u.u_str) units;
  let defs = List.rev !defs in
  let by_key = Hashtbl.create 256 in
  (* Later definitions shadow earlier ones of the same name, matching
     OCaml's scoping for the common [let f ... let f ...] redefinition. *)
  List.iter
    (fun d -> if not (String.equal d.d_name "_") then Hashtbl.replace by_key (d.d_module, d.d_name) d)
    defs;
  { units; defs; by_key }

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)
(* ------------------------------------------------------------------ *)

let flatten lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> []
  in
  go [] lid

(** Resolve a dotted path to a definition: qualified paths by their last
    module component, bare names in the current module. *)
let resolve (p : program) ~current_module (path : string list) : def option =
  match List.rev path with
  | [] -> None
  | [ name ] -> Hashtbl.find_opt p.by_key (current_module, name)
  | name :: m :: _ -> Hashtbl.find_opt p.by_key (m, name)

(** Pair call-site arguments with the callee's parameter positions:
    labeled arguments by label, unlabeled ones filling the unlabeled
    parameters in order. Surplus arguments (partial knowledge of a
    curried chain, or resolution noise) map to [-1]. *)
let match_args (d : def) (args : (Asttypes.arg_label * expression) list) : (int * expression) list =
  let params = Array.of_list d.d_params in
  let taken = Array.make (Array.length params) false in
  let next_unlabeled = ref 0 in
  List.map
    (fun (lbl, e) ->
      match lbl with
      | Asttypes.Labelled l | Asttypes.Optional l ->
          let idx = ref (-1) in
          Array.iteri
            (fun i p -> if !idx < 0 && (not taken.(i)) && String.equal p.p_label l then idx := i)
            params;
          if !idx >= 0 then taken.(!idx) <- true;
          (!idx, e)
      | Asttypes.Nolabel ->
          let rec find i =
            if i >= Array.length params then (-1)
            else if (not taken.(i)) && String.equal params.(i).p_label "" then i
            else find (i + 1)
          in
          let idx = find !next_unlabeled in
          if idx >= 0 then begin
            taken.(idx) <- true;
            next_unlabeled := idx + 1
          end;
          (idx, e))
    args

(** All variable names bound by a pattern (tuple/record/constructor
    components included): the dataflow layers bind each to the taint of
    the matched expression. *)
let pattern_vars (pat : pattern) : string list =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it pat;
  !acc

let pos_of (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
