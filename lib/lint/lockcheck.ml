(** R7 — lock-discipline analysis for the threaded layers.

    Three rules over a static lock-order graph:

    - {b ordering}: an edge [a -> b] is recorded whenever [b] is acquired
      while [a] is held — directly, through a callee (summaries carry the
      transitive set of locks a function acquires), or through a wrapper
      like [Object_store.with_mu] (the wrapped thunk's body is analyzed
      with the wrapper's lock held). A cycle in the graph, or a self-edge
      (re-locking a held mutex), is a deadlock and fails the lint.
    - {b Condition.wait}: waiting releases exactly one mutex. Waiting on
      a mutex other than the one held is a lost-wakeup/deadlock bug;
      waiting while a {e second} mutex is held parks the thread with that
      mutex locked. Waits under no statically-held lock (the
      caller-supplies-the-mutex idiom, e.g. [Lock_manager.acquire ~mu])
      are out of scope for a per-function analysis and stay silent.
    - {b blocking under a lock}: calls that block for I/O-scale time
      ({!Sources.blocking_calls}, or any callee whose summary says it may
      block) while holding a mutex stall every contending thread. Locks in
      {!Sources.io_locks} are exempt from this rule only — holding them
      across store I/O is the documented design.

    Lock identity is syntactic: [t.mu] in [server.ml] is canonicalized to
    ["Server.mu"], a bare or qualified identifier to
    ["Module.name"]. That conflates instances (every [Server.t] shares
    one graph node) — the right coarsening for discipline checking, since
    the discipline is per-class, not per-instance.

    Domains (OCaml 5): [Domain.spawn] bodies are analyzed like
    [Thread.create] bodies — empty held set, summaries muted — plus two
    domain-specific rules:

    - {b coordinator-only effects}: calls in
      {!Sources.coordinator_only} (DRBG draws, [Security.seal]) are
      order-destroying off the coordinator domain — commit determinism
      depends on IVs being drawn sequentially in operation order — so a
      direct or transitive call to one inside a spawned body is flagged
      (summaries carry an [l_draws] witness).
    - {b atomic spinning}: a [while] loop whose condition reads
      [Atomic.get] while a (non-I/O) mutex is held burns the lock's
      whole hold time busy-waiting; use [Condition.wait].

    Control flow is approximated: sequences and let-bindings thread the
    held set, branches are each analyzed under the incoming set and the
    join discards branch-local imbalance, loop bodies are analyzed once,
    and a lambda passed to an unknown function is analyzed under the
    caller's current held set ([Thread.create] and [Domain.spawn] bodies
    start empty). *)

open Parsetree
module SSet = Set.Make (String)

type summary = {
  mutable l_acquires : SSet.t;  (** locks (transitively) acquired inside *)
  mutable l_blocks : string option;  (** witness if the def may block *)
  mutable l_draws : string option;
      (** witness if the def (transitively) performs a coordinator-only
          effect ({!Sources.coordinator_only}) *)
  mutable l_wrappers : (int * SSet.t) list;
      (** parameters applied as thunks while holding locks *)
}

type state = {
  prog : Dataflow.program;
  summaries : (int, summary) Hashtbl.t;
  edges : (string * string, string * int * int) Hashtbl.t;  (** witness site *)
  mutable changed : bool;
  mutable report : bool;
  mutable violations : Engine.violation list;
}

type ctx = {
  cur : Dataflow.def;
  csum : summary;
  params : string list;
  mute : bool;  (** inside a spawned body: don't charge the spawner *)
  in_domain : bool;  (** inside a [Domain.spawn] body *)
}

let summary_of st (d : Dataflow.def) : summary =
  match Hashtbl.find_opt st.summaries d.d_id with
  | Some s -> s
  | None ->
      let s = { l_acquires = SSet.empty; l_blocks = None; l_draws = None; l_wrappers = [] } in
      Hashtbl.replace st.summaries d.d_id s;
      s

let add_violation st ctx loc msg =
  if st.report && Sources.lock_reported ctx.cur.d_path then begin
    let line, col = Dataflow.pos_of loc in
    st.violations <-
      {
        Engine.v_file = ctx.cur.d_path;
        v_line = line;
        v_col = col;
        v_rule = Engine.R7;
        v_msg = msg;
      }
      :: st.violations
  end

(* Summary updates, flagging fixpoint progress. *)

let note_acquire st ctx l =
  if (not ctx.mute) && not (SSet.mem l ctx.csum.l_acquires) then begin
    ctx.csum.l_acquires <- SSet.add l ctx.csum.l_acquires;
    st.changed <- true
  end

let note_blocks st ctx w =
  if ctx.mute then ()
  else
    match ctx.csum.l_blocks with
    | Some _ -> ()
    | None ->
      ctx.csum.l_blocks <- Some w;
      st.changed <- true

let note_draws st ctx w =
  if ctx.mute then ()
  else
    match ctx.csum.l_draws with
    | Some _ -> ()
    | None ->
      ctx.csum.l_draws <- Some w;
      st.changed <- true

let note_wrapper st ctx i locks =
  if
    (not ctx.mute)
    && not
      (List.exists (fun (j, ls) -> Int.equal i j && SSet.equal ls locks) ctx.csum.l_wrappers)
  then begin
    ctx.csum.l_wrappers <- (i, locks) :: ctx.csum.l_wrappers;
    st.changed <- true
  end

let add_edge st ctx held l loc =
  SSet.iter
    (fun h ->
      if not (String.equal h l) && not (Hashtbl.mem st.edges (h, l)) then begin
        let line, col = Dataflow.pos_of loc in
        Hashtbl.replace st.edges (h, l) (ctx.cur.d_path, line, col)
      end)
    held

(** Canonical name of a mutex expression: [t.mu] -> "<Module>.mu",
    [A.m] -> "A.m", bare [m] -> "<Module>.m". Anything more complex is an
    unknown lock and goes untracked. *)
let lock_name ctx (e : expression) : string option =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (Dataflow.flatten txt) with
      | f :: _ -> Some (ctx.cur.d_module ^ "." ^ f)
      | [] -> None)
  | Pexp_ident { txt; _ } -> (
      match List.rev (Dataflow.flatten txt) with
      | [ x ] -> Some (ctx.cur.d_module ^ "." ^ x)
      | x :: m :: _ -> Some (m ^ "." ^ x)
      | [] -> None)
  | _ -> None

let non_io held = SSet.filter (fun l -> not (Sources.is_io_lock l)) held
let path_str p = String.concat "." p

(** Does a while-loop condition read an [Atomic.t]? Shallow but total:
    covers the shapes a spin condition actually takes (an application,
    possibly negated or compared, threaded through lets/sequences). *)
let rec mentions_atomic_get (e : expression) : bool =
  match e.pexp_desc with
  | Pexp_apply (f, args) ->
      (match f.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match Dataflow.flatten txt with [ "Atomic"; "get" ] -> true | _ -> false)
      | _ -> false)
      || mentions_atomic_get f
      || List.exists (fun (_, a) -> mentions_atomic_get a) args
  | Pexp_ifthenelse (c, e1, e2) ->
      mentions_atomic_get c || mentions_atomic_get e1
      || (match e2 with Some x -> mentions_atomic_get x | None -> false)
  | Pexp_sequence (e1, e2) -> mentions_atomic_get e1 || mentions_atomic_get e2
  | Pexp_let (_, vbs, body) ->
      List.exists (fun vb -> mentions_atomic_get vb.pvb_expr) vbs || mentions_atomic_get body
  | Pexp_field (b, _) | Pexp_constraint (b, _) | Pexp_open (_, b) -> mentions_atomic_get b
  | _ -> false

let param_index ctx name =
  let rec go i = function
    | [] -> None
    | n :: rest -> if String.equal n name then Some i else go (i + 1) rest
  in
  go 0 ctx.params

(* ------------------------------------------------------------------ *)
(* The walk: threads the held set through an expression                *)
(* ------------------------------------------------------------------ *)

let rec walk st ctx (held : SSet.t) (e : expression) : SSet.t =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> apply st ctx held e f args
  | Pexp_sequence (e1, e2) ->
      let h = walk st ctx held e1 in
      walk st ctx h e2
  | Pexp_let (_, vbs, body) ->
      let h =
        List.fold_left
          (fun h vb ->
            match vb.pvb_expr.pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
                walk_fn st ctx h vb.pvb_expr;
                h
            | _ -> walk st ctx h vb.pvb_expr)
          held vbs
      in
      walk st ctx h body
  | Pexp_ifthenelse (c, e1, e2) ->
      let h = walk st ctx held c in
      ignore (walk st ctx h e1);
      (match e2 with Some x -> ignore (walk st ctx h x) | None -> ());
      h
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let h = walk st ctx held scrut in
      List.iter
        (fun c ->
          (match c.pc_guard with Some g -> ignore (walk st ctx h g) | None -> ());
          ignore (walk st ctx h c.pc_rhs))
        cases;
      h
  | Pexp_fun _ | Pexp_function _ ->
      walk_fn st ctx held e;
      held
  | Pexp_while (c, b) ->
      (if mentions_atomic_get c then
         let bad = non_io held in
         if not (SSet.is_empty bad) then
           add_violation st ctx c.pexp_loc
             (Printf.sprintf
                "spinning on Atomic.get under mutex %s — busy-waiting burns the lock's hold time; \
                 use Condition.wait"
                (String.concat ", " (SSet.elements bad))));
      ignore (walk st ctx held c);
      ignore (walk st ctx held b);
      held
  | Pexp_for (_, lo, hi, _, b) ->
      ignore (walk st ctx held lo);
      ignore (walk st ctx held hi);
      ignore (walk st ctx held b);
      held
  | Pexp_tuple es | Pexp_array es ->
      List.iter (fun x -> ignore (walk st ctx held x)) es;
      held
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      (match arg with Some a -> ignore (walk st ctx held a) | None -> ());
      held
  | Pexp_record (fields, base) ->
      (match base with Some b -> ignore (walk st ctx held b) | None -> ());
      List.iter (fun (_, fe) -> ignore (walk st ctx held fe)) fields;
      held
  | Pexp_field (b, _) ->
      ignore (walk st ctx held b);
      held
  | Pexp_setfield (b, _, v) ->
      ignore (walk st ctx held b);
      ignore (walk st ctx held v);
      held
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_lazy x | Pexp_open (_, x) ->
      walk st ctx held x
  | Pexp_assert x ->
      ignore (walk st ctx held x);
      held
  | Pexp_letmodule (_, _, x) | Pexp_letexception (_, x) | Pexp_newtype (_, x) ->
      walk st ctx held x
  | _ -> held

(** Analyze a lambda's body under [held] (its parameters are irrelevant
    to lock state). *)
and walk_fn st ctx held (e : expression) : unit =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> walk_fn st ctx held body
  | Pexp_function cases -> List.iter (fun c -> ignore (walk st ctx held c.pc_rhs)) cases
  | _ -> ignore (walk st ctx held e)

(** A value applied as a thunk while [held] locks are held: a literal
    lambda is analyzed under them; a bare parameter makes the current
    definition a wrapper. *)
and as_thunk st ctx held (e : expression) : unit =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> walk_fn st ctx held e
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match param_index ctx x with
      | Some i -> if not (SSet.is_empty held) then note_wrapper st ctx i held
      | None -> ())
  | _ -> ignore (walk st ctx held e)

and apply st ctx held app f args =
  ignore app;
  match f.pexp_desc with
  | Pexp_ident { txt; loc } -> (
      let path = Dataflow.flatten txt in
      match (path, args) with
      | [ "Mutex"; "lock" ], [ (_, m) ] -> (
          match lock_name ctx m with
          | Some l ->
              if SSet.mem l held then
                add_violation st ctx loc
                  (Printf.sprintf "mutex %s locked while already held (self-deadlock)" l)
              else add_edge st ctx held l loc;
              note_acquire st ctx l;
              SSet.add l held
          | None -> held)
      | [ "Mutex"; "unlock" ], [ (_, m) ] -> (
          match lock_name ctx m with Some l -> SSet.remove l held | None -> held)
      | ([ "Mutex"; "protect" ] | [ "Mutex"; "with_lock" ]), (_, m) :: rest -> (
          match lock_name ctx m with
          | Some l ->
              if SSet.mem l held then
                add_violation st ctx loc
                  (Printf.sprintf "mutex %s locked while already held (self-deadlock)" l)
              else add_edge st ctx held l loc;
              note_acquire st ctx l;
              List.iter (fun (_, a) -> as_thunk st ctx (SSet.add l held) a) rest;
              held
          | None ->
              List.iter (fun (_, a) -> as_thunk st ctx held a) rest;
              held)
      | [ "Condition"; "wait" ], [ (_, _c); (_, m) ] ->
          note_blocks st ctx "Condition.wait (indefinite wait)";
          (if not (SSet.is_empty held) then
             match lock_name ctx m with
             | Some l ->
                 if not (SSet.mem l held) then
                   add_violation st ctx loc
                     (Printf.sprintf
                        "Condition.wait on mutex %s while holding %s — wait releases a mutex the \
                         thread does not hold"
                        l
                        (String.concat ", " (SSet.elements held)))
                 else begin
                   let extra = SSet.remove l held in
                   if not (SSet.is_empty extra) then
                     add_violation st ctx loc
                       (Printf.sprintf
                          "Condition.wait releases only %s but %s still held across the wait" l
                          (String.concat ", " (SSet.elements extra)))
                 end
             | None -> ());
          held
      | [ "Thread"; "create" ], (_, fn) :: rest ->
          (* The new thread starts with no locks held, and whatever it
             acquires or blocks on is its own business — mute summary
             updates so the spawner is not blamed for it. *)
          as_thunk st { ctx with mute = true } SSet.empty fn;
          List.iter (fun (_, a) -> ignore (walk st ctx held a)) rest;
          held
      | [ "Domain"; "spawn" ], (_, fn) :: rest ->
          (* Like Thread.create, plus [in_domain]: the body runs off the
             coordinator, where order-destroying effects (DRBG draws,
             Security.seal) are flagged. *)
          as_thunk st { ctx with mute = true; in_domain = true } SSet.empty fn;
          List.iter (fun (_, a) -> ignore (walk st ctx held a)) rest;
          held
      | [ "Fun"; "protect" ], _ ->
          (* main thunk runs first, then ~finally (which typically
             releases): thread the finally body's effect outward *)
          let fin, rest =
            List.partition
              (fun (lbl, _) ->
                match lbl with Asttypes.Labelled "finally" -> true | _ -> false)
              args
          in
          List.iter (fun (_, a) -> as_thunk st ctx held a) rest;
          List.fold_left
            (fun h (_, a) ->
              match a.pexp_desc with
              | Pexp_fun (_, _, _, body) -> walk st ctx h body
              | _ ->
                  as_thunk st ctx h a;
                  h)
            held fin
      | _, _ ->
          let held =
            List.fold_left (fun h (_, a) -> arg_walk st ctx h a) held args
          in
          (match Sources.blocking_of path with
          | Some k ->
              note_blocks st ctx (Printf.sprintf "%s (%s)" (path_str path) k.Sources.k_why);
              let bad = non_io held in
              if not (SSet.is_empty bad) then
                add_violation st ctx loc
                  (Printf.sprintf "blocking call %s (%s) under mutex %s" (path_str path)
                     k.Sources.k_why
                     (String.concat ", " (SSet.elements bad)))
          | None -> ());
          (match Sources.coordinator_only_of path with
          | Some k ->
              note_draws st ctx (Printf.sprintf "%s (%s)" (path_str path) k.Sources.k_why);
              if ctx.in_domain then
                add_violation st ctx loc
                  (Printf.sprintf
                     "%s inside a Domain.spawn body (%s) — coordinator-only effect off the \
                      coordinator domain"
                     (path_str path) k.Sources.k_why)
          | None -> ());
          (match Dataflow.resolve st.prog ~current_module:ctx.cur.d_module path with
          | Some d ->
              let s = summary_of st d in
              SSet.iter
                (fun l ->
                  if not (SSet.mem l held) then add_edge st ctx held l loc;
                  note_acquire st ctx l)
                s.l_acquires;
              (match s.l_blocks with
              | Some w ->
                  note_blocks st ctx (Printf.sprintf "%s.%s: %s" d.d_module d.d_name w);
                  let bad = non_io held in
                  if not (SSet.is_empty bad) then
                    add_violation st ctx loc
                      (Printf.sprintf "call to %s.%s may block (%s) under mutex %s" d.d_module
                         d.d_name w
                         (String.concat ", " (SSet.elements bad)))
              | None -> ());
              (match s.l_draws with
              | Some w ->
                  note_draws st ctx (Printf.sprintf "%s.%s: %s" d.d_module d.d_name w);
                  if ctx.in_domain then
                    add_violation st ctx loc
                      (Printf.sprintf
                         "call to %s.%s inside a Domain.spawn body (%s) — coordinator-only \
                          effect off the coordinator domain"
                         d.d_module d.d_name w)
              | None -> ());
              let pairs = Dataflow.match_args d args in
              List.iter
                (fun (i, locks) ->
                  List.iter
                    (fun (j, (a : expression)) ->
                      if Int.equal i j then as_thunk st ctx (SSet.union held locks) a)
                    pairs)
                s.l_wrappers;
              held
          | None -> held))
  | _ ->
      let h = walk st ctx held f in
      List.fold_left (fun h (_, a) -> arg_walk st ctx h a) h args

(* An argument expression: lambdas are analyzed under the current held
   set unless a wrapper summary already claimed them (handled above —
   unknown callees have no summaries, so here only the unknown-HOF case
   remains); other expressions thread normally. *)
and arg_walk st ctx held (a : expression) : SSet.t =
  match a.pexp_desc with
  | Pexp_fun _ | Pexp_function _ ->
      walk_fn st ctx held a;
      held
  | _ -> walk st ctx held a

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let analyze_def st (d : Dataflow.def) =
  let s = summary_of st d in
  let params =
    List.concat_map (fun (p : Dataflow.param) -> Dataflow.pattern_vars p.p_pat) d.d_params
  in
  let ctx = { cur = d; csum = s; params; mute = false; in_domain = false } in
  ignore (walk st ctx SSet.empty d.d_body)

(** One violation per lock-order cycle, reported at the witness site of
    an edge that closes it (skipped when no edge in the cycle was
    recorded in a reported directory). *)
let cycle_violations st =
  let adj = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, b) _ ->
      Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    st.edges;
  let path_to target start =
    (* DFS from [start] looking for [target]; returns the node path *)
    let visited = Hashtbl.create 16 in
    let rec go node trail =
      if Hashtbl.mem visited node then None
      else begin
        Hashtbl.replace visited node ();
        if String.equal node target then Some (List.rev (node :: trail))
        else
          List.fold_left
            (fun acc next -> match acc with Some _ -> acc | None -> go next (node :: trail))
            None
            (Option.value ~default:[] (Hashtbl.find_opt adj node))
      end
    in
    go start []
  in
  Hashtbl.iter
    (fun (a, b) (file, line, col) ->
      if Sources.lock_reported file then
        match path_to a b with
        | Some path ->
            st.violations <-
              {
                Engine.v_file = file;
                v_line = line;
                v_col = col;
                v_rule = Engine.R7;
                v_msg =
                  Printf.sprintf "lock-order cycle: %s"
                    (String.concat " -> " ((a :: path) @ [ a ]));
              }
              :: st.violations
        | None -> ())
    st.edges

type stats = { k_edges : (string * string) list  (** the lock-order graph *) }

let run (prog : Dataflow.program) : Engine.violation list * stats =
  let st =
    {
      prog;
      summaries = Hashtbl.create 256;
      edges = Hashtbl.create 64;
      changed = false;
      report = false;
      violations = [];
    }
  in
  let rec fix n =
    st.changed <- false;
    List.iter (analyze_def st) prog.defs;
    if st.changed && n < 20 then fix (n + 1)
  in
  fix 0;
  st.report <- true;
  List.iter (analyze_def st) prog.defs;
  cycle_violations st;
  let cmp (a : Engine.violation) (b : Engine.violation) =
    match String.compare a.v_file b.v_file with
    | 0 -> (
        match Int.compare a.v_line b.v_line with
        | 0 -> ( match Int.compare a.v_col b.v_col with 0 -> String.compare a.v_msg b.v_msg | c -> c)
        | c -> c)
    | c -> c
  in
  let violations = List.sort_uniq cmp st.violations in
  let edges = Hashtbl.fold (fun e _ acc -> e :: acc) st.edges [] in
  let edges =
    List.sort
      (fun (a1, b1) (a2, b2) ->
        match String.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c)
      edges
  in
  (violations, { k_edges = edges })
