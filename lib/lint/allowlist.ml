(** The checked-in lint allowlist: [file:line:RULE  # justification]
    entries that suppress individual violations.

    Entries are exact (file, line, rule) triples, so an edit that moves a
    justified site forces the allowlist to be re-audited — intentional
    friction for the trusted layers. Stale entries (matching nothing) are
    reported so the file never accumulates dead grants. *)

type entry = {
  a_file : string;
  a_line : int;
  a_rule : Engine.rule;
  a_source : string;  (** "allowfile:lineno", for diagnostics *)
}

let parse_line ~source ~lnum raw : entry option =
  let line =
    match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
  in
  let line = String.trim line in
  if String.equal line "" then None
  else
    let malformed () =
      failwith
        (Printf.sprintf "%s:%d: malformed allowlist entry %S (want file:line:RULE  # why)" source
           lnum raw)
    in
    match String.split_on_char ':' line with
    | [ f; l; r ] -> (
        match (int_of_string_opt (String.trim l), Engine.rule_of_id (String.trim r)) with
        | Some a_line, Some a_rule ->
            Some
              {
                a_file = String.trim f;
                a_line;
                a_rule;
                a_source = Printf.sprintf "%s:%d" source lnum;
              }
        | _ -> malformed ())
    | _ -> malformed ()

let load fname =
  let ic = open_in fname in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lnum acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some raw -> (
            match parse_line ~source:fname ~lnum raw with
            | None -> go (lnum + 1) acc
            | Some e -> go (lnum + 1) (e :: acc))
      in
      go 1 [])

let matches e (v : Engine.violation) =
  String.equal e.a_file v.Engine.v_file
  && Int.equal e.a_line v.Engine.v_line
  && Engine.rule_equal e.a_rule v.Engine.v_rule

(* ------------------------------------------------------------------ *)
(* Refresh                                                             *)
(* ------------------------------------------------------------------ *)

type refresh_result = {
  r_lines : string list;  (** the regenerated file, line by line *)
  r_updated : int;  (** entries whose line number moved *)
  r_unmatched : entry list;  (** entries matching no current violation *)
}

(** Rewrite an entry's raw line with a new source line number, preserving
    the surrounding layout (the [# justification] suffix and its
    spacing). *)
let rewrite_raw raw ~file ~rule ~line =
  let suffix =
    match String.index_opt raw '#' with
    | None -> ""
    | Some i ->
        let j = ref i in
        while !j > 0 && (Char.equal raw.[!j - 1] ' ' || Char.equal raw.[!j - 1] '\t') do
          decr j
        done;
        String.sub raw !j (String.length raw - !j)
  in
  Printf.sprintf "%s:%d:%s%s" file line (Engine.rule_id rule) suffix

(** Re-point the allowlist at the current violation set: comments and
    blank lines are preserved verbatim; each entry keeps its (file, rule)
    and justification but gets the line number of the violation it
    covers — its exact match if one still exists, otherwise the nearest
    unclaimed violation of the same (file, rule). Entries covering
    nothing at all are kept verbatim and reported in [r_unmatched] so a
    dead grant is an explicit decision, never a silent drop. *)
let refresh fname (violations : Engine.violation list) : refresh_result =
  let raws =
    let ic = open_in fname in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_lines ic)
  in
  let vs = Array.of_list violations in
  let claimed = Array.make (Array.length vs) false in
  let parsed =
    List.mapi (fun i raw -> (raw, parse_line ~source:fname ~lnum:(i + 1) raw)) raws
  in
  (* Pass 1: exact (file, line, rule) matches keep their violation. *)
  let exact =
    List.map
      (fun (raw, entry) ->
        match entry with
        | None -> (raw, None, None)
        | Some e ->
            let hit = ref None in
            Array.iteri
              (fun i v -> if Option.is_none !hit && (not claimed.(i)) && matches e v then hit := Some i)
              vs;
            (match !hit with Some i -> claimed.(i) <- true | None -> ());
            (raw, Some e, !hit))
      parsed
  in
  (* Pass 2: drifted entries claim the nearest unclaimed violation of the
     same file and rule. *)
  let updated = ref 0 in
  let unmatched = ref [] in
  let lines =
    List.map
      (fun (raw, entry, hit) ->
        match (entry, hit) with
        | None, _ -> raw
        | Some _, Some _ -> raw
        | Some e, None -> (
            let best = ref None in
            Array.iteri
              (fun i (v : Engine.violation) ->
                if
                  (not claimed.(i))
                  && String.equal e.a_file v.Engine.v_file
                  && Engine.rule_equal e.a_rule v.Engine.v_rule
                then
                  let d = abs (v.Engine.v_line - e.a_line) in
                  match !best with
                  | Some (_, bd) when bd <= d -> ()
                  | _ -> best := Some (i, d))
              vs;
            match !best with
            | Some (i, _) ->
                claimed.(i) <- true;
                incr updated;
                rewrite_raw raw ~file:e.a_file ~rule:e.a_rule ~line:vs.(i).Engine.v_line
            | None ->
                unmatched := e :: !unmatched;
                raw))
      exact
  in
  { r_lines = lines; r_updated = !updated; r_unmatched = List.rev !unmatched }

let filter entries violations =
  let arr = Array.of_list entries in
  let used = Array.make (Array.length arr) false in
  let kept =
    List.filter
      (fun v ->
        let suppressed = ref false in
        Array.iteri
          (fun i e ->
            if matches e v then begin
              used.(i) <- true;
              suppressed := true
            end)
          arr;
        not !suppressed)
      violations
  in
  let stale = List.filteri (fun i _ -> not used.(i)) entries in
  (kept, stale)
