(** The checked-in lint allowlist: [file:line:RULE  # justification]
    entries that suppress individual violations.

    Entries are exact (file, line, rule) triples, so an edit that moves a
    justified site forces the allowlist to be re-audited — intentional
    friction for the trusted layers. Stale entries (matching nothing) are
    reported so the file never accumulates dead grants. *)

type entry = {
  a_file : string;
  a_line : int;
  a_rule : Engine.rule;
  a_source : string;  (** "allowfile:lineno", for diagnostics *)
}

let parse_line ~source ~lnum raw : entry option =
  let line =
    match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
  in
  let line = String.trim line in
  if String.equal line "" then None
  else
    let malformed () =
      failwith
        (Printf.sprintf "%s:%d: malformed allowlist entry %S (want file:line:RULE  # why)" source
           lnum raw)
    in
    match String.split_on_char ':' line with
    | [ f; l; r ] -> (
        match (int_of_string_opt (String.trim l), Engine.rule_of_id (String.trim r)) with
        | Some a_line, Some a_rule ->
            Some
              {
                a_file = String.trim f;
                a_line;
                a_rule;
                a_source = Printf.sprintf "%s:%d" source lnum;
              }
        | _ -> malformed ())
    | _ -> malformed ()

let load fname =
  let ic = open_in fname in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lnum acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some raw -> (
            match parse_line ~source:fname ~lnum raw with
            | None -> go (lnum + 1) acc
            | Some e -> go (lnum + 1) (e :: acc))
      in
      go 1 [])

let matches e (v : Engine.violation) =
  String.equal e.a_file v.Engine.v_file
  && Int.equal e.a_line v.Engine.v_line
  && Engine.rule_equal e.a_rule v.Engine.v_rule

let filter entries violations =
  let arr = Array.of_list entries in
  let used = Array.make (Array.length arr) false in
  let kept =
    List.filter
      (fun v ->
        let suppressed = ref false in
        Array.iteri
          (fun i e ->
            if matches e v then begin
              used.(i) <- true;
              suppressed := true
            end)
          arr;
        not !suppressed)
      violations
  in
  let stale = List.filteri (fun i _ -> not used.(i)) entries in
  (kept, stale)
