(** Driver for the lint pass: runs the per-file syntactic rules and the
    interprocedural analyses (R6 taint, R7 lock discipline) over a
    program — either an in-memory unit list ({!check_program}, used by
    the tests) or source trees on disk ({!scan}, which adds R5). *)

type stats = {
  st_defs : int;  (** top-level definitions in the dataflow program *)
  st_call_edges : int;  (** resolved call-graph edges (R6 traversal) *)
  st_lock_edges : (string * string) list;  (** lock-order graph (R7) *)
}

type report = { files_checked : int; violations : Engine.violation list; stats : stats }

val check_program : (string * string) list -> report
(** [check_program [(path, source); ...]] — all rules except R5 (which
    needs the file system). Violations are sorted by position.
    @raise Failure on unparsable input, naming the file. *)

val scan : root:string -> string list -> report
(** [scan ~root dirs] walks [dirs] (paths relative to [root]; hidden
    entries and [_build] are skipped), checks every [.ml] found with
    {!check_program}, and adds R5 interface presence for [lib/] modules.
    Violations carry repo-relative paths. @raise Failure on unreadable
    or unparsable input, naming the file. *)
