(** File-system driver for the lint pass. *)

type report = { files_checked : int; violations : Engine.violation list }

val scan : root:string -> string list -> report
(** [scan ~root dirs] lints every [.ml] under each of [dirs] (paths
    relative to [root]; hidden entries and [_build] are skipped) and
    checks each for a sibling [.mli] (R5). Violations carry
    repo-relative paths. @raise Failure on unreadable or unparsable
    input, naming the file. *)
