(** R6 — interprocedural secret-taint analysis.

    The paper's security argument is a dataflow claim: plaintext chunk
    payloads and key material must never reach the untrusted store except
    through the seal pipeline. This pass checks it over the whole scanned
    program. Taint is seeded at the declared sources ({!Sources}: keys
    derived from the platform secret, decrypted payloads), propagated
    through let-bindings, tuples, function arguments and returns, and
    copies, and reported when a tainted value reaches a declared sink
    (untrusted-store/archival writes, raw log appends, wire encoders,
    file/socket/console output) without passing through a declared
    sanitizer (seal, MAC, digest).

    The lattice, chosen to keep the pass useful rather than merely sound:

    - a value is [clean], tainted outright ([direct]), or tainted iff one
      of the enclosing function's parameters is (the [params] set) —
      the last is what makes function summaries compose;
    - tuple construction and destructuring propagate; record construction
      does {e not} (a context like [Security.t] carries its keys opaquely
      — taint re-emerges only when a {!Sources.sensitive_fields}
      projection pulls the key back out);
    - applications of unknown functions join their arguments' taint into
      the result {e and} smear it into any bare mutable-carrier argument
      ([Buffer.add_string b secret] taints [b], so [Buffer.contents b]
      is tainted), which covers builder/copy idioms without modelling
      mutation;
    - per-definition summaries (return taint as a function of parameters,
      parameters that reach a sink inside the callee) are iterated to a
      fixpoint over the call graph, so a helper that forwards its
      argument to a store write taints its call sites, however deep.

    Known limits (documented in DESIGN.md): flows through record fields
    other than the declared sensitive ones, through closures stored in
    data structures, and through the pickle writer when the writer itself
    escapes the current function are invisible. *)

open Parsetree
module ISet = Set.Make (Int)

type taint = { direct : bool; params : ISet.t }

let clean = { direct = false; params = ISet.empty }
let tainted = { direct = true; params = ISet.empty }
let is_clean t = (not t.direct) && ISet.is_empty t.params
let join a b = { direct = a.direct || b.direct; params = ISet.union a.params b.params }
let taint_equal a b = Bool.equal a.direct b.direct && ISet.equal a.params b.params

type summary = { mutable s_ret : taint; mutable s_sinks : (int * string) list }

type state = {
  prog : Dataflow.program;
  summaries : (int, summary) Hashtbl.t;
  edge_set : (int * int, unit) Hashtbl.t;
  mutable changed : bool;
  mutable report : bool;
  mutable violations : Engine.violation list;
}

type ctx = { cur : Dataflow.def; csum : summary }

let summary_of st (d : Dataflow.def) : summary =
  match Hashtbl.find_opt st.summaries d.d_id with
  | Some s -> s
  | None ->
      let s = { s_ret = clean; s_sinks = [] } in
      Hashtbl.replace st.summaries d.d_id s;
      s

let add_violation st ctx loc msg =
  if st.report && Sources.taint_reported ctx.cur.d_path then begin
    let line, col = Dataflow.pos_of loc in
    st.violations <-
      {
        Engine.v_file = ctx.cur.d_path;
        v_line = line;
        v_col = col;
        v_rule = Engine.R6;
        v_msg = msg;
      }
      :: st.violations
  end

(* A tainted value arrives at a sink: parameter taint becomes a summary
   obligation (the caller is judged), direct taint a violation here. *)
let sink_hit st ctx loc ~(sink : string) t =
  if not (is_clean t) then begin
    ISet.iter
      (fun i ->
        if not (List.exists (fun (j, _) -> Int.equal i j) ctx.csum.s_sinks) then begin
          ctx.csum.s_sinks <- (i, sink) :: ctx.csum.s_sinks;
          st.changed <- true
        end)
      t.params;
    if t.direct then
      add_violation st ctx loc
        (Printf.sprintf
           "secret-tainted value reaches untrusted sink %s; seal/MAC/digest it first (R6 tables: \
            lib/lint/sources.ml)"
           sink)
  end

(* ------------------------------------------------------------------ *)
(* Environment: lexical scope of local taints                          *)
(* ------------------------------------------------------------------ *)

type env = (string, taint ref) Hashtbl.t

let bind (env : env) names t =
  List.iter (fun n -> Hashtbl.add env n (ref t)) names;
  fun () -> List.iter (fun n -> Hashtbl.remove env n) names

let lookup (env : env) n = Hashtbl.find_opt env n

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let path_str p = String.concat "." p

let rec eval st ctx (env : env) (e : expression) : taint =
  match e.pexp_desc with
  | Pexp_constant _ -> clean
  | Pexp_ident { txt; _ } -> (
      match Dataflow.flatten txt with
      | [ x ] when Option.is_some (lookup env x) -> !(Option.value ~default:(ref clean) (lookup env x))
      | path -> (
          match Dataflow.resolve st.prog ~current_module:ctx.cur.d_module path with
          | Some d when d.d_params = [] -> (summary_of st d).s_ret
          | Some _ | None -> clean))
  | Pexp_let (rf, vbs, body) ->
      let pops =
        match rf with
        | Asttypes.Recursive ->
            (* names visible (clean) while evaluating the right-hand sides *)
            let pre =
              List.map (fun vb -> bind env (Dataflow.pattern_vars vb.pvb_pat) clean) vbs
            in
            let ts = List.map (fun vb -> eval st ctx env vb.pvb_expr) vbs in
            List.iter (fun pop -> pop ()) pre;
            List.map2 (fun vb t -> bind env (Dataflow.pattern_vars vb.pvb_pat) t) vbs ts
        | Asttypes.Nonrecursive ->
            List.map
              (fun vb ->
                let t = eval st ctx env vb.pvb_expr in
                bind env (Dataflow.pattern_vars vb.pvb_pat) t)
              vbs
      in
      let t = eval st ctx env body in
      List.iter (fun pop -> pop ()) pops;
      t
  | Pexp_fun (_, default, pat, body) ->
      (match default with Some d -> ignore (eval st ctx env d) | None -> ());
      let pop = bind env (Dataflow.pattern_vars pat) clean in
      ignore (eval st ctx env body);
      pop ();
      clean
  | Pexp_function cases ->
      eval_cases st ctx env clean cases
  | Pexp_apply (f, args) -> eval_apply st ctx env e f args
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let t = eval st ctx env scrut in
      eval_cases st ctx env t cases
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun acc x -> join acc (eval st ctx env x)) clean es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> eval st ctx env a | None -> clean)
  | Pexp_record (fields, base) ->
      (match base with Some b -> ignore (eval st ctx env b) | None -> ());
      List.iter (fun (_, fe) -> ignore (eval st ctx env fe)) fields;
      clean (* contexts carry keys opaquely; see the header *)
  | Pexp_field (b, { txt; _ }) -> (
      ignore (eval st ctx env b);
      match List.rev (Dataflow.flatten txt) with
      | fname :: _ when Sources.is_sensitive_field fname -> tainted
      | _ -> clean)
  | Pexp_setfield (b, _, v) ->
      ignore (eval st ctx env b);
      ignore (eval st ctx env v);
      clean
  | Pexp_ifthenelse (c, e1, e2) ->
      ignore (eval st ctx env c);
      let t1 = eval st ctx env e1 in
      let t2 = match e2 with Some x -> eval st ctx env x | None -> clean in
      join t1 t2
  | Pexp_sequence (e1, e2) ->
      ignore (eval st ctx env e1);
      eval st ctx env e2
  | Pexp_while (c, b) ->
      ignore (eval st ctx env c);
      (* twice: smearing into carriers converges after a second look *)
      ignore (eval st ctx env b);
      ignore (eval st ctx env b);
      clean
  | Pexp_for ({ ppat_desc = Ppat_var { txt; _ }; _ }, lo, hi, _, b) ->
      ignore (eval st ctx env lo);
      ignore (eval st ctx env hi);
      let pop = bind env [ txt ] clean in
      ignore (eval st ctx env b);
      ignore (eval st ctx env b);
      pop ();
      clean
  | Pexp_for (_, lo, hi, _, b) ->
      ignore (eval st ctx env lo);
      ignore (eval st ctx env hi);
      ignore (eval st ctx env b);
      clean
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_lazy x | Pexp_open (_, x) -> eval st ctx env x
  | Pexp_assert x ->
      ignore (eval st ctx env x);
      clean
  | Pexp_letmodule (_, _, x) | Pexp_letexception (_, x) | Pexp_newtype (_, x) -> eval st ctx env x
  | _ -> clean

and eval_cases st ctx env scrut_taint cases =
  List.fold_left
    (fun acc c ->
      let pop = bind env (Dataflow.pattern_vars c.pc_lhs) scrut_taint in
      (match c.pc_guard with Some g -> ignore (eval st ctx env g) | None -> ());
      let t = eval st ctx env c.pc_rhs in
      pop ();
      join acc t)
    clean cases

and eval_apply st ctx env _app f args =
  let arg_taints = List.map (fun (_, a) -> eval st ctx env a) args in
  let joined = List.fold_left join clean arg_taints in
  (* Taint smeared into bare mutable-carrier arguments of unknown calls:
     [P.string w secret] taints [w]. *)
  let smear () =
    if not (is_clean joined) then
      List.iter
        (fun (_, (a : expression)) ->
          match a.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } -> (
              match lookup env x with Some r -> r := join !r joined | None -> ())
          | _ -> ())
        args
  in
  match f.pexp_desc with
  | Pexp_ident { txt; loc } -> (
      let path = Dataflow.flatten txt in
      if Sources.is_sanitizer path then clean
      else if Sources.is_source path then tainted
      else begin
        (match Sources.sink_of path with
        | Some k ->
            List.iter2
              (fun (_, (a : expression)) t ->
                ignore a;
                sink_hit st ctx loc
                  ~sink:(Printf.sprintf "%s (%s)" (path_str path) k.Sources.k_why)
                  t)
              args arg_taints
        | None -> ());
        match Dataflow.resolve st.prog ~current_module:ctx.cur.d_module path with
        | Some d ->
            Hashtbl.replace st.edge_set (ctx.cur.d_id, d.d_id) ();
            let s = summary_of st d in
            let pairs = Dataflow.match_args d args in
            (* arguments feeding a parameter that reaches a sink inside
               the callee are themselves judged at this call site *)
            List.iter
              (fun (i, sink) ->
                List.iter2
                  (fun (j, _) t ->
                    if Int.equal i j then
                      sink_hit st ctx loc ~sink:(Printf.sprintf "%s.%s -> %s" d.d_module d.d_name sink) t)
                  pairs arg_taints)
              s.s_sinks;
            (* return taint: the callee's, with parameter taint replaced
               by the matching arguments' taint *)
            let r = if s.s_ret.direct then tainted else clean in
            let r =
              ISet.fold
                (fun i acc ->
                  List.fold_left2
                    (fun acc (j, _) t -> if Int.equal i j then join acc t else acc)
                    acc pairs arg_taints)
                s.s_ret.params r
            in
            (* surplus arguments applied to the callee's result (curried
               closures we do not model) propagate conservatively *)
            let surplus =
              List.fold_left2
                (fun acc (j, _) t -> if j < 0 then join acc t else acc)
                clean pairs arg_taints
            in
            join r surplus
        | None ->
            smear ();
            joined
      end)
  | _ ->
      let ft = eval st ctx env f in
      smear ();
      join ft joined

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let analyze_def st (d : Dataflow.def) =
  let s = summary_of st d in
  let env : env = Hashtbl.create 16 in
  List.iteri
    (fun i (p : Dataflow.param) ->
      List.iter
        (fun n -> Hashtbl.add env n (ref { direct = false; params = ISet.singleton i }))
        (Dataflow.pattern_vars p.p_pat))
    d.d_params;
  let ctx = { cur = d; csum = s } in
  let ret = eval st ctx env d.d_body in
  let ret' = join s.s_ret ret in
  if not (taint_equal ret' s.s_ret) then begin
    s.s_ret <- ret';
    st.changed <- true
  end

type stats = { t_defs : int; t_edges : int }

let run (prog : Dataflow.program) : Engine.violation list * stats =
  let st =
    {
      prog;
      summaries = Hashtbl.create 256;
      edge_set = Hashtbl.create 1024;
      changed = false;
      report = false;
      violations = [];
    }
  in
  let rec fix n =
    st.changed <- false;
    List.iter (analyze_def st) prog.defs;
    if st.changed && n < 20 then fix (n + 1)
  in
  fix 0;
  st.report <- true;
  List.iter (analyze_def st) prog.defs;
  let cmp (a : Engine.violation) (b : Engine.violation) =
    match String.compare a.v_file b.v_file with
    | 0 -> (
        match Int.compare a.v_line b.v_line with
        | 0 -> ( match Int.compare a.v_col b.v_col with 0 -> String.compare a.v_msg b.v_msg | c -> c)
        | c -> c)
    | c -> c
  in
  let violations =
    List.sort_uniq cmp st.violations
  in
  (violations, { t_defs = List.length prog.defs; t_edges = Hashtbl.length st.edge_set })
