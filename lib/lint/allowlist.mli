(** The checked-in lint allowlist ([lint_allow.txt]).

    Line format: [file:line:RULE  # justification]. Blank lines and
    [#]-comment lines are ignored. Paths are repo-relative with forward
    slashes, matching {!Engine.violation.v_file}. *)

type entry = {
  a_file : string;
  a_line : int;
  a_rule : Engine.rule;
  a_source : string;  (** "allowfile:lineno", for diagnostics *)
}

val load : string -> entry list
(** @raise Failure on a malformed entry, naming the offending line. *)

val filter : entry list -> Engine.violation list -> Engine.violation list * entry list
(** [filter entries vs] is [(kept, stale)]: violations not covered by any
    entry, and entries that matched no violation (dead grants the caller
    should report). *)
