(** The checked-in lint allowlist ([lint_allow.txt]).

    Line format: [file:line:RULE  # justification]. Blank lines and
    [#]-comment lines are ignored. Paths are repo-relative with forward
    slashes, matching {!Engine.violation.v_file}. *)

type entry = {
  a_file : string;
  a_line : int;
  a_rule : Engine.rule;
  a_source : string;  (** "allowfile:lineno", for diagnostics *)
}

val load : string -> entry list
(** @raise Failure on a malformed entry, naming the offending line. *)

val filter : entry list -> Engine.violation list -> Engine.violation list * entry list
(** [filter entries vs] is [(kept, stale)]: violations not covered by any
    entry, and entries that matched no violation (dead grants the caller
    should report). *)

type refresh_result = {
  r_lines : string list;  (** the regenerated file, line by line *)
  r_updated : int;  (** entries whose line number moved *)
  r_unmatched : entry list;  (** entries matching no current violation *)
}

val refresh : string -> Engine.violation list -> refresh_result
(** [refresh fname violations] regenerates the allowlist at [fname]
    against the current violation set: comments, blank lines and
    justifications are preserved; entries whose site drifted get the line
    number of the nearest unclaimed violation of the same (file, rule);
    entries covering nothing are kept verbatim and reported in
    [r_unmatched] — deleting a dead grant is an explicit decision.
    Does not write the file. @raise Failure on a malformed entry. *)
