(** R6 — interprocedural secret-taint analysis (see the .ml header for
    the lattice and its documented limits). Taint propagates through
    every definition in the program; violations are reported only for
    files under {!Sources.taint_report_dirs}. *)

type stats = { t_defs : int;  (** top-level definitions analyzed *) t_edges : int;  (** resolved call edges *) }

val run : Dataflow.program -> Engine.violation list * stats
