(** Driver for the lint pass.

    Two layers:

    - {!check_program} runs every rule over an in-memory set of
      [(path, source)] units: the per-file syntactic rules (R1-R4) via
      {!Engine.check_source}, then the interprocedural passes — the
      units are parsed once into a {!Dataflow.program} and handed to
      {!Taint} (R6) and {!Lockcheck} (R7). Tests feed fixture programs
      through this entry point directly.
    - {!scan} walks source trees on disk, adds R5 (interface presence,
      which needs the sibling [.mli] set) and feeds the [.ml] contents to
      {!check_program}.

    Both return a {!report} carrying the violations plus the analysis
    statistics (definition count, resolved call edges, the lock-order
    graph) that the CLI exports as JSON/DOT artifacts. *)

type stats = {
  st_defs : int;  (** top-level definitions in the dataflow program *)
  st_call_edges : int;  (** resolved call-graph edges (R6 traversal) *)
  st_lock_edges : (string * string) list;  (** lock-order graph (R7) *)
}

type report = { files_checked : int; violations : Engine.violation list; stats : stats }

let sort_violations (vs : Engine.violation list) =
  List.stable_sort
    (fun (a : Engine.violation) (b : Engine.violation) ->
      match String.compare a.v_file b.v_file with
      | 0 -> (
          match Int.compare a.v_line b.v_line with
          | 0 -> Int.compare a.v_col b.v_col
          | c -> c)
      | c -> c)
    vs

let check_program (units : (string * string) list) : report =
  let parsed =
    List.map
      (fun (path, source) ->
        match Dataflow.parse_unit ~path source with
        | u -> (path, source, u)
        | exception Syntaxerr.Error _ -> failwith (path ^ ": syntax error (does it compile?)")
        | exception Lexer.Error (_, _) -> failwith (path ^ ": lexing error (does it compile?)"))
      units
  in
  let per_file =
    List.concat_map (fun (path, source, _) -> Engine.check_source ~path source) parsed
  in
  let prog = Dataflow.build (List.map (fun (_, _, u) -> u) parsed) in
  let taint_vs, tstats = Taint.run prog in
  let lock_vs, lstats = Lockcheck.run prog in
  {
    files_checked = List.length units;
    violations = sort_violations (per_file @ taint_vs @ lock_vs);
    stats =
      {
        st_defs = tstats.Taint.t_defs;
        st_call_edges = tstats.Taint.t_edges;
        st_lock_edges = lstats.Lockcheck.k_edges;
      };
  }

(* ------------------------------------------------------------------ *)
(* File-system walk                                                    *)
(* ------------------------------------------------------------------ *)

let read_file fname =
  let ic = open_in_bin fname in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hidden name = String.length name > 0 && Char.equal name.[0] '.'

let skip_dir name = hidden name || String.equal name "_build"

(** Collect repo-relative [.ml] and [.mli] paths under [rel] (itself
    relative to [root]), depth-first, deterministic order. *)
let rec collect ~root rel (mls, mlis) =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then begin
    let names = Sys.readdir abs in
    Array.sort String.compare names;
    Array.fold_left
      (fun acc name -> if skip_dir name then acc else collect ~root (rel ^ "/" ^ name) acc)
      (mls, mlis) names
  end
  else if Filename.check_suffix rel ".ml" then (rel :: mls, mlis)
  else if Filename.check_suffix rel ".mli" then (mls, rel :: mlis)
  else (mls, mlis)

let scan ~root dirs : report =
  let mls, mlis = List.fold_left (fun acc d -> collect ~root d acc) ([], []) dirs in
  let mls = List.sort String.compare mls in
  let has_mli ml = List.exists (String.equal (ml ^ "i")) mlis in
  (* R5 applies to library modules; executables (bin/) and the benchmark
     harness have no interface *)
  let wants_mli ml = String.length ml >= 4 && String.equal (String.sub ml 0 4) "lib/" in
  let units = List.map (fun rel -> (rel, read_file (Filename.concat root rel))) mls in
  let r = check_program units in
  let r5 =
    List.filter_map
      (fun rel ->
        if has_mli rel || not (wants_mli rel) then None
        else Some (Engine.missing_interface ~path:rel))
      mls
  in
  { r with violations = sort_violations (r.violations @ r5) }
