(** File-system driver for the lint pass: walks source trees, runs
    {!Engine.check_source} on every [.ml], and checks R5 (interface
    presence) against the sibling [.mli] set. *)

type report = { files_checked : int; violations : Engine.violation list }

let read_file fname =
  let ic = open_in_bin fname in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hidden name = String.length name > 0 && Char.equal name.[0] '.'

let skip_dir name = hidden name || String.equal name "_build"

(** Collect repo-relative [.ml] and [.mli] paths under [rel] (itself
    relative to [root]), depth-first, deterministic order. *)
let rec collect ~root rel (mls, mlis) =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then begin
    let names = Sys.readdir abs in
    Array.sort String.compare names;
    Array.fold_left
      (fun acc name -> if skip_dir name then acc else collect ~root (rel ^ "/" ^ name) acc)
      (mls, mlis) names
  end
  else if Filename.check_suffix rel ".ml" then (rel :: mls, mlis)
  else if Filename.check_suffix rel ".mli" then (mls, rel :: mlis)
  else (mls, mlis)

let scan ~root dirs : report =
  let mls, mlis = List.fold_left (fun acc d -> collect ~root d acc) ([], []) dirs in
  let mls = List.sort String.compare mls in
  let has_mli ml = List.exists (String.equal (ml ^ "i")) mlis in
  (* R5 applies to library modules; executables (bin/) have no interface *)
  let wants_mli ml = String.length ml >= 4 && String.equal (String.sub ml 0 4) "lib/" in
  let violations =
    List.concat_map
      (fun rel ->
        let source = read_file (Filename.concat root rel) in
        let vs =
          match Engine.check_source ~path:rel source with
          | vs -> vs
          | exception Syntaxerr.Error _ -> failwith (rel ^ ": syntax error (does it compile?)")
          | exception Lexer.Error (_, _) -> failwith (rel ^ ": lexing error (does it compile?)")
        in
        if has_mli rel || not (wants_mli rel) then vs else vs @ [ Engine.missing_interface ~path:rel ])
      mls
  in
  { files_checked = List.length mls; violations }
