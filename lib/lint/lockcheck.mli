(** R7 — lock-discipline analysis (see the .ml header for the rules and
    the control-flow approximation). Summaries are computed for every
    definition in the program; violations are reported only for files
    under {!Sources.lock_report_dirs}. *)

type stats = { k_edges : (string * string) list  (** the lock-order graph *) }

val run : Dataflow.program -> Engine.violation list * stats
