(** Annotation tables for the interprocedural analyses: R6 taint
    sources/sinks/sanitizers and R7 lock-discipline primitives. The
    tables are the machine-checked statement of TDB's trust boundary;
    DESIGN.md ("Static analysis") explains how to extend them when a new
    module introduces a key, a boundary write or a mutex. *)

type fn_key = {
  k_module : string;  (** "" = any qualifier, including none *)
  k_name : string;
  k_why : string;  (** one-line rationale, surfaced in violations *)
}

val taint_sources : fn_key list
val sensitive_fields : string list
val taint_sanitizers : fn_key list
val generic_sanitizer_names : string list
val taint_sinks : fn_key list
val taint_report_dirs : string list
val blocking_calls : fn_key list
val io_locks : string list
val lock_report_dirs : string list

val coordinator_only : fn_key list
(** Effectful calls that must stay on the coordinator domain (shared
    randomness / sealing state whose {e order} is part of the store-image
    determinism contract); flagged inside [Domain.spawn] bodies. *)

val matches : fn_key -> string list -> bool
(** [matches k path] — [path] is a flattened dotted path; the name must
    be its tail and a nonempty [k_module] the preceding component. *)

val is_source : string list -> bool
val is_sanitizer : string list -> bool
val sink_of : string list -> fn_key option
val blocking_of : string list -> fn_key option
val coordinator_only_of : string list -> fn_key option
val is_sensitive_field : string -> bool
val is_io_lock : string -> bool
val taint_reported : string -> bool
val lock_reported : string -> bool

val in_dirs : string list -> string -> bool
(** [in_dirs dirs path] — is [path] under one of [dirs]? *)
