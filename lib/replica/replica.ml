(** The replication follower: tails a primary's archive feed and keeps a
    local store converged on the primary's snapshots.

    Trust model — the follower shares the primary's platform secret (it is
    the same *device* in the paper's sense, scaled out) but trusts nothing
    it receives: every frame's MAC and hash-chain value is re-verified
    against the follower's own persisted chain state before a byte of the
    store changes ({!Tdb_backup.Backup_store.apply_stream}). The publisher,
    the network and the follower's archive are all untrusted transport.

    Crash model — an apply is one durable chunk-store commit carrying the
    restored chunks, the deallocations and the advanced chain state, so a
    crash mid-ingest (or a torn/tampered frame) leaves the follower at the
    previous consistent snapshot; on restart it re-subscribes from its
    persisted chain position and catches up.

    Convergence — a frame that cannot extend the follower's chain raises
    {!Tdb_backup.Backup_store.Invalid_backup}; the follower drops the
    connection and alternates resubscription positions on consecutive
    rejects: first from its own chain state (a tampered frame in the
    primary's archive may be transient — retry it), then from genesis (a
    diverged history needs the publisher to restart it from the newest
    full, which {!Tdb_backup.Backup_store.apply_stream} applies as an
    in-place re-bootstrap). A follower *ahead* of its primary refuses the
    rollback forever — [frames_rejected] climbs and an operator must
    re-seed it. Applies run through {!Tdb_objstore.Object_store.ingest},
    which waits for read transactions to drain (2PL quiesce) and flushes
    the object cache, so read-only sessions served over the same store
    stay serializable across snapshot switches. *)

module B = Tdb_backup.Backup_store

type config = {
  poll : float;  (** reconnect/backoff delay, seconds *)
  keep_archive : bool;  (** store verified frames in the follower's own archive *)
}

let default_config = { poll = 0.2; keep_archive = true }

type status = {
  applied_id : int;  (** last backup id applied (0 = none yet) *)
  applied_seq : int;  (** primary commit sequence the store reflects *)
  primary_id : int;  (** newest archive id, per the last heartbeat *)
  primary_seq : int;  (** primary commit sequence, per the last heartbeat *)
  frames_applied : int;
  frames_rejected : int;  (** frames that failed verification *)
  reconnects : int;
  connected : bool;
}

type t = {
  os : Tdb_objstore.Object_store.t;
  bs : B.t;
  from : Tdb_server.Server.addr;
  cfg : config;
  mu : Mutex.t;
  mutable st : status;
  mutable fd : Unix.file_descr option;  (** live feed socket, for stop *)
  mutable stopping : bool;
  mutable reject_streak : int;  (** consecutive connections ended by a bad frame *)
  mutable thread : Thread.t option;
}

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let status t = with_mu t (fun () -> t.st)
let update t f = with_mu t (fun () -> t.st <- f t.st)

let connect (addr : Tdb_server.Server.addr) : Unix.file_descr =
  match addr with
  | Tdb_server.Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tdb_server.Server.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      fd

exception Bad_frame

(* Apply one verified frame. [Object_store.ingest] refuses while a read
   transaction holds locks; wait it out — readers are short-lived and the
   frame is already in hand. *)
let apply_frame (t : t) (stream : string) : unit =
  let rec go () =
    if with_mu t (fun () -> t.stopping) then ()
    else
      match Tdb_objstore.Object_store.ingest t.os (fun _cs -> B.apply_stream t.bs stream) with
      | None ->
          Thread.delay 0.002;
          go ()
      | Some h ->
          if t.cfg.keep_archive then
            Tdb_platform.Archival_store.put (B.archive t.bs) ~name:(B.stream_name h) stream;
          t.reject_streak <- 0;
          update t (fun st ->
              {
                st with
                applied_id = h.B.id;
                applied_seq = h.B.seq;
                frames_applied = st.frames_applied + 1;
              })
  in
  go ()

let feed_loop (t : t) (fd : Unix.file_descr) : unit =
  (* Odd streak: retry from our own chain state (the bad frame may have
     been transient). Even nonzero streak: start over from genesis so the
     publisher re-seeds us from the newest full. *)
  let sub =
    if t.reject_streak > 0 && Int.equal (t.reject_streak land 1) 0 then
      { B.last_id = 0; chain = "genesis"; base_snapshot = None }
    else B.chain_state t.bs
  in
  Tdb_server.Proto.write_frame fd
    (Tdb_server.Proto.encode_request
       (Tdb_server.Proto.Subscribe { r_last_id = sub.B.last_id; r_chain = sub.B.chain }));
  let rec loop () =
    if with_mu t (fun () -> t.stopping) then ()
    else begin
      (match Tdb_server.Proto.decode_response (Tdb_server.Proto.read_frame fd) with
      | Tdb_server.Proto.Rep_frame { f_name = _; f_stream } -> (
          match apply_frame t f_stream with
          | () -> ()
          | exception B.Invalid_backup _ ->
              (* a frame that does not extend our chain: tampered feed or
                 diverged history. Drop the connection; the next
                 subscription alternates between retrying our position and
                 a genesis restart (see [feed_loop]). *)
              update t (fun st -> { st with frames_rejected = st.frames_rejected + 1 });
              t.reject_streak <- t.reject_streak + 1;
              raise Bad_frame)
      | Tdb_server.Proto.Rep_heartbeat { h_last_id; h_seq; h_counter = _ } ->
          update t (fun st -> { st with primary_id = h_last_id; primary_seq = h_seq })
      | Tdb_server.Proto.Error_ { tag; msg } -> failwith (Printf.sprintf "subscribe refused: %s: %s" tag msg)
      | _ -> raise Bad_frame);
      loop ()
    end
  in
  loop ()

let run (t : t) : unit =
  let rec go () =
    if not (with_mu t (fun () -> t.stopping)) then begin
      (match connect t.from with
      | fd ->
          with_mu t (fun () ->
              t.fd <- Some fd;
              t.st <- { t.st with connected = true });
          Fun.protect
            ~finally:(fun () ->
              with_mu t (fun () ->
                  t.fd <- None;
                  t.st <- { t.st with connected = false });
              match Unix.close fd with () -> () | exception Unix.Unix_error (_, _, _) -> ())
            (fun () ->
              (* Hello handshake, then switch the connection to the feed *)
              Tdb_server.Proto.write_frame fd
                (Tdb_server.Proto.encode_request
                   (Tdb_server.Proto.Hello
                      { r_magic = Tdb_server.Proto.magic; r_version = Tdb_server.Proto.version }));
              (match Tdb_server.Proto.decode_response (Tdb_server.Proto.read_frame fd) with
              | Tdb_server.Proto.Hello_ok _ -> ()
              | _ -> raise Bad_frame);
              match feed_loop t fd with
              | () -> ()
              | exception End_of_file -> ()
              | exception Bad_frame -> ()
              | exception Tdb_server.Proto.Proto_error _ -> ()
              | exception Tdb_pickle.Pickle.Error _ -> ()
              | exception Unix.Unix_error (_, _, _) -> ())
      | exception Unix.Unix_error (_, _, _) -> ());
      if not (with_mu t (fun () -> t.stopping)) then begin
        update t (fun st -> { st with reconnects = st.reconnects + 1 });
        Thread.delay t.cfg.poll;
        go ()
      end
    end
  in
  go ()

let start ?(config = default_config) ~(os : Tdb_objstore.Object_store.t) ~(backups : B.t)
    ~(from : Tdb_server.Server.addr) () : t =
  (* subscription writes can race a primary shutting down; surface EPIPE
     as a Unix_error (handled by the reconnect loop), not a fatal signal *)
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception Invalid_argument _ -> ());
  let st0 = B.chain_state backups in
  let t =
    {
      os;
      bs = backups;
      from;
      cfg = config;
      mu = Mutex.create ();
      st =
        {
          applied_id = st0.B.last_id;
          applied_seq = 0;
          primary_id = 0;
          primary_seq = 0;
          frames_applied = 0;
          frames_rejected = 0;
          reconnects = 0;
          connected = false;
        };
      fd = None;
      stopping = false;
      reject_streak = 0;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create (fun () -> run t) ());
  t

let stop (t : t) : unit =
  let fd =
    with_mu t (fun () ->
        t.stopping <- true;
        t.fd)
  in
  (match fd with
  | Some fd -> ( match Unix.shutdown fd Unix.SHUTDOWN_ALL with () -> () | exception Unix.Unix_error (_, _, _) -> ())
  | None -> ());
  match t.thread with None -> () | Some th -> Thread.join th

(* Wait (bounded) until the follower has applied through the primary's
   newest archive id as reported by heartbeats — the convergence predicate
   tests and the CLI poll on. *)
let converged (t : t) : bool =
  let st = status t in
  st.connected && st.primary_id > 0 && st.applied_id >= st.primary_id

let wait_converged ?(timeout = 30.) (t : t) : bool =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if converged t then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()
