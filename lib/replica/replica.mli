(** The replication follower: tails a primary's archive feed
    ([Subscribe] on the wire protocol) and keeps a local store converged
    on the primary's snapshots.

    The follower shares the primary's platform secret but trusts nothing
    it receives: every frame's MAC and hash-chain value is re-verified
    against the follower's own persisted chain state before anything is
    applied, and each apply is a single durable commit
    ({!Tdb_backup.Backup_store.apply_stream}) — a crash or a torn/tampered
    frame leaves the follower at the previous consistent snapshot. On a
    frame that cannot extend its chain, the follower drops the connection
    and alternates resubscribing from its own chain state (retrying a
    transiently tampered frame) and from genesis (letting the publisher
    restart a diverged follower from the newest full backup).

    Serve reads from the same store with a [read_only] {!Tdb_server.Server}:
    applies quiesce behind open read transactions
    ({!Tdb_objstore.Object_store.ingest}), so sessions stay serializable
    across snapshot switches. *)

type config = {
  poll : float;  (** reconnect/backoff delay, seconds *)
  keep_archive : bool;
      (** keep verified frames in the follower's own archive, preserving
          point-in-time restore from the follower *)
}

val default_config : config
(** 200 ms poll, archive kept. *)

type status = {
  applied_id : int;  (** last backup id applied (0 = none yet) *)
  applied_seq : int;  (** primary commit sequence the store reflects *)
  primary_id : int;  (** newest archive id, per the last heartbeat *)
  primary_seq : int;  (** primary commit sequence, per the last heartbeat *)
  frames_applied : int;
  frames_rejected : int;  (** frames that failed verification *)
  reconnects : int;
  connected : bool;
}

type t

val start :
  ?config:config ->
  os:Tdb_objstore.Object_store.t ->
  backups:Tdb_backup.Backup_store.t ->
  from:Tdb_server.Server.addr ->
  unit ->
  t
(** Spawn the ingest thread: connect to the primary, subscribe from the
    follower's persisted chain position, verify and apply frames as they
    arrive, reconnecting (with [config.poll] backoff) until {!stop}.
    [backups] must be built over [os]'s chunk store with the shared
    device secret. *)

val status : t -> status

val converged : t -> bool
(** Connected and applied through the newest archive id the primary has
    advertised. *)

val wait_converged : ?timeout:float -> t -> bool
(** Poll {!converged} up to [timeout] seconds (default 30). *)

val stop : t -> unit
(** Stop the ingest thread and join it (idempotent). *)
