(** The object cache (paper Section 4.2.2): an LRU cache of unpickled
    objects indexed by object id. Objects enter decrypted, validated,
    unpickled and type-checked — "ready for direct access by the
    application". Entries referenced by live transactions are pinned
    (reference-counted); dirty objects stay pinned until their transaction
    ends (no-steal). Over-budget unpinned LRU entries are evicted. *)

type entry = {
  oid : int;
  mutable value : Obj_class.packed_value;
  mutable size : int;
  mutable pins : int;
  mutable prev : entry option;
  mutable next : entry option;
}

type t

val create : budget:int -> t

val find : t -> int -> entry option
(** Hit moves the entry to MRU. *)

val put : t -> int -> Obj_class.packed_value -> size:int -> entry
(** Insert or replace (pins preserved on replace); may evict. *)

val pin : entry -> unit
val unpin : t -> entry -> unit
val remove : t -> int -> unit
(** Drop outright (transaction abort evicts its dirty objects). *)

val drop_all : t -> unit
(** Drop every entry (after a replication ingest rewrites the chunks
    underneath). @raise Invalid_argument if any entry is pinned. *)

val update_size : t -> entry -> size:int -> unit
val stats : t -> int * int * int
(** (hits, misses, evictions). *)

val resident : t -> int
val total_size : t -> int
val set_budget : t -> int -> unit
