(** Shared/exclusive object locks with timeout-based deadlock breaking
    (paper Section 4.2.3). The store's single state mutex is released
    while a thread waits on a transactional lock — exactly the behaviour
    the paper describes to avoid spurious deadlocks. Waiting is
    condition-signalled (a release wakes blocked acquirers immediately; an
    on-demand timer thread enforces the timeout that breaks deadlocks), so
    contention burns no cycles polling. Geared to low concurrency on
    purpose: no granular locks, no escalation. *)

exception Lock_timeout of { oid : int; txn : int }

type mode = Shared | Exclusive

type t

val create : unit -> t
val mode_of : t -> txn:int -> oid:int -> mode option

val acquire : t -> mu:Mutex.t -> txn:int -> oid:int -> mode:mode -> timeout:float -> unit
(** Acquire (or upgrade to) [mode]; [mu] is the caller-held state mutex,
    released while blocked. Re-entrant; shared locks are compatible;
    upgrades need sole ownership. @raise Lock_timeout after [timeout]s. *)

val release_all : t -> txn:int -> unit
(** Strict two-phase locking: everything releases together at txn end. *)

val held_count : t -> int
