(** Shared/exclusive object locks with timeout-based deadlock breaking
    (paper Section 4.2.3).

    The object store provides "transactional isolation using strict
    two-phase locking"; a blocked open "raises an exception after a timeout
    interval, thus breaking potential deadlocks". The store's single state
    mutex is *released* while a thread waits on a lock — acquire here takes
    that mutex and parks on a {!Condition} tied to it, exactly the
    behaviour the paper describes for avoiding spurious deadlocks between
    the state mutex and transactional locks.

    Waiting is signal-driven, not polled: {!release_all} broadcasts the
    condition, so a waiter wakes the moment a lock becomes free instead of
    spinning on a sleep loop. Timeouts (the deadlock breaker) are driven by
    an on-demand timer thread that sleeps until the earliest waiter
    deadline and broadcasts; it exists only while someone is waiting, so an
    idle or uncontended store runs no background work at all.

    Geared to low concurrency on purpose: no granular locks, no lock
    escalation, a plain hash table of per-object queues. *)

exception Lock_timeout of { oid : int; txn : int }

type mode = Shared | Exclusive

let mode_shared = function Shared -> true | Exclusive -> false

type entry = { mutable holders : (int * mode) list (* txn id, mode *) }

type t = {
  table : (int, entry) Hashtbl.t;
  by_txn : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* txn -> oids held *)
  cond : Condition.t; (* broadcast on every release (and by the timer) *)
  deadlines : (int, float) Hashtbl.t; (* waiter ticket -> absolute deadline *)
  mutable next_ticket : int;
  mutable timer_running : bool;
}

let create () =
  {
    table = Hashtbl.create 64;
    by_txn = Hashtbl.create 8;
    cond = Condition.create ();
    deadlines = Hashtbl.create 8;
    next_ticket = 0;
    timer_running = false;
  }

let mode_of t ~txn ~oid =
  match Hashtbl.find_opt t.table oid with
  | None -> None
  | Some e -> List.assoc_opt txn e.holders

(** Can [txn] acquire [mode] on the entry right now? *)
let grantable (e : entry) ~txn ~mode =
  match mode with
  | Shared -> List.for_all (fun (t', m) -> Int.equal t' txn || mode_shared m) e.holders
  | Exclusive -> List.for_all (fun (t', _) -> Int.equal t' txn) e.holders

let note_held t ~txn ~oid =
  let oids =
    match Hashtbl.find_opt t.by_txn txn with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.replace t.by_txn txn h;
        h
  in
  Hashtbl.replace oids oid ()

(* The deadline timer: sleeps (without holding [mu]) until the earliest
   waiter deadline, then broadcasts so expired waiters can raise
   [Lock_timeout]. Spawned on demand by the first waiter; exits as soon as
   nobody waits. The sleep is capped so a surprisingly early new deadline
   is noticed within a bounded window. *)
let rec timer_loop t (mu : Mutex.t) =
  Mutex.lock mu;
  if Int.equal (Hashtbl.length t.deadlines) 0 then begin
    t.timer_running <- false;
    Mutex.unlock mu
  end
  else begin
    let earliest = Hashtbl.fold (fun _ d acc -> Float.min d acc) t.deadlines infinity in
    Mutex.unlock mu;
    let wait = earliest -. Unix.gettimeofday () in
    if wait > 0.0 then Thread.delay (Float.min wait 0.25);
    Mutex.lock mu;
    Condition.broadcast t.cond;
    Mutex.unlock mu;
    timer_loop t mu
  end

let ensure_timer t (mu : Mutex.t) =
  if not t.timer_running then begin
    t.timer_running <- true;
    ignore (Thread.create (fun () -> timer_loop t mu) ())
  end

(** Acquire (or upgrade to) [mode] on [oid] for [txn]. [mu] is the store's
    state mutex, held by the caller; it is released while waiting (via
    [Condition.wait]).
    @raise Lock_timeout after [timeout] seconds. *)
let acquire t ~(mu : Mutex.t) ~(txn : int) ~(oid : int) ~(mode : mode) ~(timeout : float) : unit =
  (* The entry must be re-resolved after every wait: [release_all] drops
     entries whose holder list empties, so an entry captured before
     parking can be replaced in the table while we sleep — granting
     ourselves on the stale one would hand two transactions the same
     exclusive lock. *)
  let entry () =
    match Hashtbl.find_opt t.table oid with
    | Some e -> e
    | None ->
        let e = { holders = [] } in
        Hashtbl.replace t.table oid e;
        e
  in
  let try_grant () =
    let e = entry () in
    match List.assoc_opt txn e.holders with
    | Some Exclusive -> true (* already strongest *)
    | Some Shared when mode_shared mode -> true
    | _ ->
        if grantable e ~txn ~mode then begin
          e.holders <- (txn, mode) :: List.remove_assoc txn e.holders;
          true
        end
        else false
  in
  if not (try_grant ()) then begin
    let deadline = Unix.gettimeofday () +. timeout in
    let ticket = t.next_ticket in
    t.next_ticket <- t.next_ticket + 1;
    Hashtbl.replace t.deadlines ticket deadline;
    ensure_timer t mu;
    Fun.protect
      ~finally:(fun () -> Hashtbl.remove t.deadlines ticket)
      (fun () ->
        let rec wait () =
          if not (try_grant ()) then
            if Unix.gettimeofday () >= deadline then begin
              (* drop the entry if we were the only party interested, so a
                 timed-out wait leaves no empty entry behind *)
              (match Hashtbl.find_opt t.table oid with
              | Some e when e.holders = [] -> Hashtbl.remove t.table oid
              | Some _ | None -> ());
              raise (Lock_timeout { oid; txn })
            end
            else begin
              (* parks the thread and releases the state mutex atomically,
                 as the paper requires; a release or the deadline timer
                 wakes it *)
              Condition.wait t.cond mu;
              wait ()
            end
        in
        wait ())
  end;
  note_held t ~txn ~oid

(** Strict two-phase locking: all locks are released together at the end of
    the transaction. Waiters are woken so they can re-check grantability. *)
let release_all t ~(txn : int) : unit =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some oids ->
      Hashtbl.iter
        (fun oid () ->
          match Hashtbl.find_opt t.table oid with
          | None -> ()
          | Some e ->
              e.holders <- List.remove_assoc txn e.holders;
              if e.holders = [] then Hashtbl.remove t.table oid)
        oids;
      Hashtbl.remove t.by_txn txn;
      Condition.broadcast t.cond

let held_count t = Hashtbl.length t.table
