(** Shared/exclusive object locks with timeout-based deadlock breaking
    (paper Section 4.2.3).

    The object store provides "transactional isolation using strict
    two-phase locking"; a blocked open "raises an exception after a timeout
    interval, thus breaking potential deadlocks". The store's single state
    mutex is *released* while a thread waits on a lock — acquire here takes
    that mutex and waits by unlock/sleep/relock, exactly the behaviour the
    paper describes for avoiding spurious deadlocks between the state mutex
    and transactional locks.

    Geared to low concurrency on purpose: no granular locks, no lock
    escalation, a plain hash table of per-object queues. *)

exception Lock_timeout of { oid : int; txn : int }

type mode = Shared | Exclusive

let mode_shared = function Shared -> true | Exclusive -> false

type entry = { mutable holders : (int * mode) list (* txn id, mode *) }

type t = {
  table : (int, entry) Hashtbl.t;
  by_txn : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* txn -> oids held *)
}

let create () = { table = Hashtbl.create 64; by_txn = Hashtbl.create 8 }

let mode_of t ~txn ~oid =
  match Hashtbl.find_opt t.table oid with
  | None -> None
  | Some e -> List.assoc_opt txn e.holders

(** Can [txn] acquire [mode] on the entry right now? *)
let grantable (e : entry) ~txn ~mode =
  match mode with
  | Shared -> List.for_all (fun (t', m) -> Int.equal t' txn || mode_shared m) e.holders
  | Exclusive -> List.for_all (fun (t', _) -> Int.equal t' txn) e.holders

let note_held t ~txn ~oid =
  let oids =
    match Hashtbl.find_opt t.by_txn txn with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.replace t.by_txn txn h;
        h
  in
  Hashtbl.replace oids oid ()

(** Acquire (or upgrade to) [mode] on [oid] for [txn]. [mu] is the store's
    state mutex, held by the caller; it is released while waiting.
    @raise Lock_timeout after [timeout] seconds. *)
let acquire t ~(mu : Mutex.t) ~(txn : int) ~(oid : int) ~(mode : mode) ~(timeout : float) : unit =
  let e =
    match Hashtbl.find_opt t.table oid with
    | Some e -> e
    | None ->
        let e = { holders = [] } in
        Hashtbl.replace t.table oid e;
        e
  in
  (match List.assoc_opt txn e.holders with
  | Some Exclusive -> () (* already strongest *)
  | Some Shared when mode_shared mode -> ()
  | _ ->
      let deadline = Unix.gettimeofday () +. timeout in
      let rec wait () =
        if grantable e ~txn ~mode then begin
          e.holders <- (txn, mode) :: List.remove_assoc txn e.holders
        end
        else if Unix.gettimeofday () >= deadline then raise (Lock_timeout { oid; txn })
        else begin
          (* release the state mutex while blocked, as the paper requires *)
          Mutex.unlock mu;
          Thread.delay 0.0005;
          Mutex.lock mu;
          wait ()
        end
      in
      wait ());
  note_held t ~txn ~oid

(** Strict two-phase locking: all locks are released together at the end of
    the transaction. *)
let release_all t ~(txn : int) : unit =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some oids ->
      Hashtbl.iter
        (fun oid () ->
          match Hashtbl.find_opt t.table oid with
          | None -> ()
          | Some e ->
              e.holders <- List.remove_assoc txn e.holders;
              if e.holders = [] then Hashtbl.remove t.table oid)
        oids;
      Hashtbl.remove t.by_txn txn

let held_count t = Hashtbl.length t.table
