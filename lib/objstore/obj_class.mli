(** Persistent class descriptors and the class registry (paper Section 4.1).

    Applications define a class per persistent type, supplying a unique
    persistent [name] (the paper's class id), a [version], and
    pickle/unpickle functions; the registry lets the store find the right
    unpickler when loading an object, and the per-class type witness makes
    typed opens sound (the paper's RTTI-checked [Ref<T>] construction). *)

exception Duplicate_class of string
exception Unknown_class of string

exception Type_mismatch of { expected : string; actual : string }
(** An object was opened at the wrong class. *)

type 'a t = {
  name : string;  (** the persistent class id, unique across all classes *)
  version : int;
  pickle : Tdb_pickle.Pickle.writer -> 'a -> unit;
  unpickle : version:int -> Tdb_pickle.Pickle.reader -> 'a;
  witness : 'a Witness.t;
}
(** Descriptor for a persistent class of values of type ['a]. Construct
    with {!define} (which registers it), never by hand. *)

val define :
  name:string ->
  ?version:int ->
  pickle:(Tdb_pickle.Pickle.writer -> 'a -> unit) ->
  unpickle:(version:int -> Tdb_pickle.Pickle.reader -> 'a) ->
  unit ->
  'a t
(** Define and register a class. [unpickle] receives the {e stored}
    version, enabling schema evolution by branching on it.
    @raise Duplicate_class if [name] is already registered. *)

val undefine : string -> unit
(** Remove a class from the registry (tests / upgrade flows only). *)

(** {1 Dynamic values} *)

type packed_value = Value : 'a t * 'a -> packed_value
(** A value packaged with its dynamic class. *)

val pickle_value : 'a t -> 'a -> string
(** Serialize with the class tag ([name] + [version]) embedded. *)

val unpickle_value : string -> packed_value
(** Deserialize, dispatching on the embedded class name.
    @raise Unknown_class if the class is not registered.
    @raise Tdb_pickle.Pickle.Error on malformed bytes. *)

val cast : 'a t -> packed_value -> 'a
(** Recover the static type, checking the type witness.
    @raise Type_mismatch when the classes differ. *)

val name_of : packed_value -> string
